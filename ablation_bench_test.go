// Ablation benchmarks for the design choices DESIGN.md calls out: the
// Steiner subroutine (KMB vs Takahashi–Matsuyama vs exact) and the
// k-stroll solver (exact DP vs cheapest-insertion vs color coding).
package sof

import (
	"math"
	"math/rand"
	"testing"

	"sof/internal/graph"
	"sof/internal/kstroll"
	"sof/internal/steiner"
)

func ablationGraph(seed int64) (*graph.Graph, []graph.NodeID) {
	g := graph.RandomConnected(graph.RandomConfig{
		Nodes: 60, ExtraEdges: 90, VMFraction: 0.3, MaxEdge: 10, MaxSetup: 5,
	}, seed)
	rng := rand.New(rand.NewSource(seed))
	pool := make([]graph.NodeID, g.NumNodes())
	for i := range pool {
		pool[i] = graph.NodeID(i)
	}
	return g, graph.SampleDistinct(rng, pool, 8)
}

// BenchmarkAblationSteiner compares the Steiner subroutines on identical
// instances, reporting average tree cost.
func BenchmarkAblationSteiner(b *testing.B) {
	type solver struct {
		name string
		run  func(*graph.Graph, []graph.NodeID) (*steiner.Tree, error)
	}
	for _, s := range []solver{
		{"KMB", steiner.KMB},
		{"TakahashiMatsuyama", steiner.TakahashiMatsuyama},
		{"Exact", steiner.Exact},
	} {
		b.Run(s.name, func(b *testing.B) {
			var costSum float64
			for i := 0; i < b.N; i++ {
				g, terms := ablationGraph(int64(i % 16))
				tr, err := s.run(g, terms)
				if err != nil {
					b.Fatal(err)
				}
				costSum += tr.Cost
			}
			b.ReportMetric(costSum/float64(b.N), "tree-cost")
		})
	}
}

func ablationStrollInstance(seed int64) *kstroll.Instance {
	rng := rand.New(rand.NewSource(seed))
	const n = 14
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			cost[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return &kstroll.Instance{N: n, Cost: cost, Start: 0, End: n - 1, K: 6}
}

// BenchmarkAblationKStroll compares the k-stroll solvers on identical
// metric instances, reporting average walk cost.
func BenchmarkAblationKStroll(b *testing.B) {
	for _, s := range []kstroll.Solver{
		&kstroll.ExactSolver{},
		&kstroll.InsertionSolver{},
		&kstroll.ColorCodingSolver{Trials: 200, Seed: 1},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			var costSum float64
			for i := 0; i < b.N; i++ {
				in := ablationStrollInstance(int64(i % 16))
				w, err := s.Solve(in)
				if err != nil {
					b.Fatal(err)
				}
				costSum += w.Cost
			}
			b.ReportMetric(costSum/float64(b.N), "walk-cost")
		})
	}
}
