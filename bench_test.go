// Benchmarks regenerating the paper's tables and figures at reduced sizes;
// run cmd/experiments for the full sweeps. Each benchmark reports the
// figure's headline quantity as a custom metric so `go test -bench` output
// doubles as a results table.
//
// The file lives in the external test package: it exercises internal
// packages (online, exp, emu) that themselves import the public sof API,
// which an in-package test file would turn into an import cycle.
package sof_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"sof"
	"sof/internal/baseline"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/costmodel"
	"sof/internal/dist"
	"sof/internal/emu"
	"sof/internal/exp"
	"sof/internal/graph"
	"sof/internal/online"
	"sof/internal/sofexact"
	"sof/internal/topology"
)

// BenchmarkFig7CostFunction samples the Fortz–Thorup pricing curve.
func BenchmarkFig7CostFunction(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for u := 0.0; u <= 1.2; u += 0.01 {
			sink += costmodel.Cost(u, 1)
		}
	}
	b.ReportMetric(costmodel.Cost(1.0, 1), "cost@100%")
	_ = sink
}

// benchSweepPoint embeds one paper-default request with every algorithm
// and reports the average costs as metrics.
func benchSweepPoint(b *testing.B, kind exp.NetKind, withOpt bool) {
	b.Helper()
	sums := map[string]float64{}
	runs := 0
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		var net *topology.Network
		var err error
		switch kind {
		case exp.NetSoftLayer:
			net = topology.SoftLayer(topology.Config{NumVMs: exp.DefaultVMs, Seed: seed})
		case exp.NetCogent:
			net = topology.Cogent(topology.Config{NumVMs: exp.DefaultVMs, Seed: seed})
		default:
			net, err = topology.Inet(1000, 2000, 100, topology.Config{NumVMs: exp.DefaultVMs, Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		req := core.Request{
			Sources:  net.RandomNodes(rng, exp.DefaultSources),
			Dests:    net.RandomNodes(rng, exp.DefaultDests),
			ChainLen: exp.DefaultChain,
		}
		opts := &core.Options{VMs: net.VMs}
		f, err := core.SOFDA(net.G, req, opts)
		if err != nil {
			b.Fatal(err)
		}
		sums["SOFDA"] += f.TotalCost()
		if f, err = baseline.ENEMP(net.G, req, opts); err == nil {
			sums["eNEMP"] += f.TotalCost()
		}
		if f, err = baseline.EST(net.G, req, opts); err == nil {
			sums["eST"] += f.TotalCost()
		}
		if f, err = baseline.ST(net.G, req, opts); err == nil {
			sums["ST"] += f.TotalCost()
		}
		if withOpt {
			// Small branch budget: report the optimum only where it is
			// proven quickly (see internal/exp).
			if f, err := sofexact.Solve(net.G, req, &sofexact.Options{VMs: net.VMs, MaxBranchNodes: 400}); err == nil {
				sums["OPT"] += f.TotalCost()
			}
		}
		runs++
	}
	for name, s := range sums {
		b.ReportMetric(s/float64(runs), name+"-cost")
	}
}

// BenchmarkFig8SoftLayer reproduces Fig. 8's default point on SoftLayer,
// including the exact optimum (the paper's CPLEX line).
func BenchmarkFig8SoftLayer(b *testing.B) { benchSweepPoint(b, exp.NetSoftLayer, true) }

// BenchmarkFig9Cogent reproduces Fig. 9's default point on Cogent.
func BenchmarkFig9Cogent(b *testing.B) { benchSweepPoint(b, exp.NetCogent, false) }

// BenchmarkFig10Inet reproduces Fig. 10's default point on a 1000-node
// Inet-style graph (5000 nodes in cmd/experiments).
func BenchmarkFig10Inet(b *testing.B) { benchSweepPoint(b, exp.NetInet, false) }

// BenchmarkFig11SetupCost reproduces Fig. 11 at multipliers 1x and 9x.
func BenchmarkFig11SetupCost(b *testing.B) {
	for _, mult := range []float64{1, 9} {
		b.Run(fmt.Sprintf("mult%.0fx", mult), func(b *testing.B) {
			var cost, vms float64
			runs := 0
			for i := 0; i < b.N; i++ {
				net := topology.SoftLayer(topology.Config{
					NumVMs: exp.DefaultVMs, Seed: int64(i), SetupCostMultiplier: mult,
				})
				rng := rand.New(rand.NewSource(int64(i)))
				req := core.Request{
					Sources:  net.RandomNodes(rng, exp.DefaultSources),
					Dests:    net.RandomNodes(rng, exp.DefaultDests),
					ChainLen: exp.DefaultChain,
				}
				f, err := core.SOFDA(net.G, req, &core.Options{VMs: net.VMs})
				if err != nil {
					b.Fatal(err)
				}
				cost += f.TotalCost()
				vms += float64(len(f.UsedVMs()))
				runs++
			}
			b.ReportMetric(cost/float64(runs), "cost")
			b.ReportMetric(vms/float64(runs), "used-vms")
		})
	}
}

// BenchmarkTable1Runtime measures SOFDA's wall time on Inet graphs
// (|V|=1000 here; the full 1000–5000 sweep lives in cmd/experiments).
func BenchmarkTable1Runtime(b *testing.B) {
	for _, srcs := range []int{2, 14, 26} {
		b.Run(fmt.Sprintf("V1000_S%d", srcs), func(b *testing.B) {
			net, err := topology.Inet(1000, 2000, 200, topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(srcs)))
			req := core.Request{
				Sources:  net.RandomNodes(rng, srcs),
				Dests:    net.RandomNodes(rng, exp.DefaultDests),
				ChainLen: exp.DefaultChain,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SOFDA(net.G, req, &core.Options{VMs: net.VMs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCandidateGeneration measures the candidate-chain fan-out of
// Procedure 3 (all |S|·|M| (source, last VM) pairs) sequentially versus on
// the full worker pool. The par1/parN wall-clock ratio is the headline
// speedup of the concurrent pipeline; a fresh oracle per iteration makes
// every run pay the Dijkstra-tree build, as a cold embedding would.
func BenchmarkCandidateGeneration(b *testing.B) {
	net := topology.Cogent(topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	sources := net.RandomNodes(rng, exp.DefaultSources)
	pairs := chain.Pairs(sources, net.VMs)
	for _, par := range parallelismLevels() {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oracle := chain.NewOracle(net.G, chain.Options{})
				results, err := oracle.Chains(context.Background(), net.VMs, pairs, exp.DefaultChain, par)
				if err != nil {
					b.Fatal(err)
				}
				feasible := 0
				for _, r := range results {
					if r.Err == nil {
						feasible++
					}
				}
				if feasible == 0 {
					b.Fatal("no feasible candidate chain")
				}
			}
		})
	}
}

// BenchmarkSOFDAParallelism measures the end-to-end SOFDA embedding at
// Parallelism 1 versus the full worker pool on Cogent (the Steiner and
// assembly phases are shared, so the delta isolates the candidate stage).
func BenchmarkSOFDAParallelism(b *testing.B) {
	net := topology.Cogent(topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	req := core.Request{
		Sources:  net.RandomNodes(rng, exp.DefaultSources),
		Dests:    net.RandomNodes(rng, exp.DefaultDests),
		ChainLen: exp.DefaultChain,
	}
	for _, par := range parallelismLevels() {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SOFDA(net.G, req, &core.Options{VMs: net.VMs, Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelismLevels is {1, NumCPU}, collapsed on single-core machines.
func parallelismLevels() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkDistributedSOFDA measures the multi-domain pipeline end to end:
// per-domain candidate generation plus the leader's merge and completion.
func BenchmarkDistributedSOFDA(b *testing.B) {
	net := topology.Cogent(topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	req := core.Request{
		Sources:  net.RandomNodes(rng, exp.DefaultSources),
		Dests:    net.RandomNodes(rng, exp.DefaultDests),
		ChainLen: exp.DefaultChain,
	}
	opts := &core.Options{VMs: net.VMs}
	for _, domains := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("domains%d", domains), func(b *testing.B) {
			cluster := dist.NewCluster(net.G, domains, chain.Options{})
			defer cluster.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamedJoin compares the two leader↔domain join modes on one
// instance: the one-shot batch exchange (the leader waits for every
// domain's whole response before touching the aux graph) against
// server-streamed fragment joins (candidates are spliced into the aux
// graph as they land, dominated ones pruned before allocating state).
// Streamed runs report fragments/op, pruned/op, and overlap-ms/op — the
// per-embedding window in which the leader was assembling while the
// slowest domain was still solving. A positive overlap is the point of
// the exchange: batch mode's equivalent is identically zero.
func BenchmarkStreamedJoin(b *testing.B) {
	net := topology.Cogent(topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	req := core.Request{
		Sources:  net.RandomNodes(rng, exp.DefaultSources),
		Dests:    net.RandomNodes(rng, exp.DefaultDests),
		ChainLen: exp.DefaultChain,
	}
	opts := &core.Options{VMs: net.VMs}
	for _, mode := range []struct {
		name string
		cfg  dist.Config
	}{
		{"batch", dist.Config{}},
		{"stream", dist.Config{Streaming: true}},
		{"eager", dist.Config{Streaming: true, EagerClosure: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cluster := dist.NewClusterWith(net.G, 3, mode.cfg)
			defer cluster.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode.cfg.Streaming {
				st := cluster.StreamStats()
				n := float64(b.N)
				b.ReportMetric(float64(st.StreamedFragments)/n, "frags/op")
				b.ReportMetric(float64(st.PrunedCandidates)/n, "pruned/op")
				b.ReportMetric(float64(st.OverlapNS)/n/1e6, "overlap-ms/op")
				if st.OverlapNS <= 0 {
					b.Fatal("streamed join reported zero leader overlap — the aux graph was not built incrementally")
				}
				if mode.cfg.EagerClosure {
					b.ReportMetric(float64(st.EarlyClosures)/n, "closures-early/op")
					if st.EarlyClosures == 0 {
						b.Fatal("eager join closed nothing before the completion phase")
					}
				}
			}
		})
	}
}

// BenchmarkDijkstraBatch is the batched many-source SSSP claim in
// isolation: one DijkstraBatch call over k sources against k independent
// pooled Dijkstra runs on the same graph. Both share the arena pool; the
// batch variant additionally carves all per-source result arrays from
// three batch-wide allocations and fetches the CSR once, so allocs/op is
// the headline — it must sit well under the independent variant's.
func BenchmarkDijkstraBatch(b *testing.B) {
	net := topology.Cogent(topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
	sources := net.VMs[:16]
	b.Run("independent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				graph.Dijkstra(net.G, s)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.DijkstraBatch(net.G, sources, nil)
		}
	})
}

// BenchmarkDeltaStepping races the three single-source SSSP variants on
// Inet graphs: the indexed heap, the calendar bucket queue, and the
// delta-stepping relaxer behind the same Arena gate. Each op runs 16
// distinct sources so a -benchtime 1x CI pass still measures a stable
// multi-run sample; ms/run is the per-source wall clock. The CI gate
// requires delta at no more than half the heap's and the bucket queue's
// ns/op on the 10k-node graph — ratios within one run, so runner speed
// cancels out.
func BenchmarkDeltaStepping(b *testing.B) {
	for _, nodes := range []int{1000, 10000} {
		net, err := topology.Inet(nodes, 2*nodes, nodes/10, topology.Config{NumVMs: 50, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		srcs := net.RandomNodes(rand.New(rand.NewSource(7)), 16)
		for _, v := range []struct {
			name string
			cfg  graph.Config
		}{
			{"heap", graph.Config{BucketQueueMinNodes: -1, DeltaSteppingMinNodes: -1}},
			{"bucket", graph.Config{BucketQueueMinNodes: 1, DeltaSteppingMinNodes: -1}},
			{"delta", graph.Config{DeltaSteppingMinNodes: 1}},
		} {
			b.Run(fmt.Sprintf("V%d/%s", nodes, v.name), func(b *testing.B) {
				b.ReportAllocs()
				a := graph.NewArenaWith(v.cfg)
				a.Dijkstra(net.G, srcs[0]) // warm the CSR and cost layouts
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, s := range srcs {
						a.Dijkstra(net.G, s)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(srcs))/1e6, "ms/run")
			})
		}
	}
}

// BenchmarkOnlineArrivals measures the session cache against the seed's
// per-request re-derivation on an unchanged-cost arrival stream: "cold"
// opens a fresh Solver per request (exactly what Network.Embed does),
// "warm" drives every request through one shared session whose
// epoch-keyed Dijkstra cache persists across arrivals. The dijkstras/op
// metric is the cache effect itself; the wall-clock ratio is the headline
// speedup.
func BenchmarkOnlineArrivals(b *testing.B) {
	const arrivals = 50
	net := topology.SoftLayer(topology.Config{NumVMs: exp.DefaultVMs, Seed: 1})
	snet := sof.FromGraph(net.G)
	rng := rand.New(rand.NewSource(42))
	reqs := make([]sof.Request, arrivals)
	for i := range reqs {
		reqs[i] = sof.Request{
			Sources:      net.RandomNodes(rng, 4+rng.Intn(4)),
			Destinations: net.RandomNodes(rng, 4+rng.Intn(4)),
			ChainLength:  exp.DefaultChain,
		}
	}
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		var dijkstras uint64
		for i := 0; i < b.N; i++ {
			dijkstras = 0
			for _, req := range reqs {
				solver := sof.NewSolver(snet, sof.WithVMs(net.VMs...))
				if _, err := solver.Embed(ctx, req); err != nil {
					b.Fatal(err)
				}
				dijkstras += solver.CacheStats().Misses
			}
		}
		b.ReportMetric(float64(dijkstras), "dijkstras/op")
	})
	b.Run("warm", func(b *testing.B) {
		var stats sof.CacheStats
		for i := 0; i < b.N; i++ {
			solver := sof.NewSolver(snet, sof.WithVMs(net.VMs...))
			in := make(chan sof.Request)
			go func() {
				defer close(in)
				for _, req := range reqs {
					in <- req
				}
			}()
			for res := range solver.EmbedStream(ctx, in) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			stats = solver.CacheStats()
		}
		b.ReportMetric(float64(stats.Misses), "dijkstras/op")
		b.ReportMetric(float64(stats.ChainMisses), "kstrolls/op")
		if total := stats.ChainHits + stats.ChainMisses; total > 0 {
			b.ReportMetric(100*float64(stats.ChainHits)/float64(total), "chainhit-%")
		}
	})
}

// BenchmarkFig12Online reproduces the accumulative-cost experiment over a
// short arrival prefix on SoftLayer.
func BenchmarkFig12Online(b *testing.B) {
	for _, algo := range []online.Algorithm{online.AlgoSOFDA, online.AlgoST} {
		b.Run(string(algo), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				net := topology.SoftLayer(topology.Config{NumVMs: 85, Seed: 1})
				cfg := online.DefaultSoftLayerConfig()
				cfg.Seed = 42
				sim := online.NewSimulator(net, algo, cfg)
				sim.Run(10)
				acc += sim.Accumulated()
			}
			b.ReportMetric(acc/float64(b.N), "accumulated-cost")
		})
	}
}

// BenchmarkLifecycle soaks the capacitated lifecycle session with seeded
// Inet arrival/departure streams in two regimes.
//
// "classic" is the PR 9 scenario unchanged: 5000 requests on a 300-node
// graph with per-accept repricing, driven into the saturation regime
// where masks divert arrivals and the session turns requests away. The
// scenario is fully deterministic, so accept-% and departed/op are
// exact-gated against the committed record.
//
// "scaled" is the million-user direction: a 10k-node Inet graph, 100k
// single-source requests through SOFDA-SS (whose embeds run on the real
// network via the session oracle — no per-request auxiliary clone),
// endpoints drawn from a 64-node access pool, and repricing batched every
// 512 accepts so the session's warm shortest-path state survives between
// passes. The headline metrics are ms/arrival (sub-millisecond) and
// dijkstras/arrival — the amortized SSSP work the delta-stepping relaxer
// plus the warm cache leave per request. accept-% and dijkstras/op are
// deterministic and exact-gated; wall clock is informational.
func BenchmarkLifecycle(b *testing.B) {
	run := func(b *testing.B, algo online.Algorithm, nodes, access, vms, arrivals int, cfg online.Config) {
		var accepted, departed, live, dijkstras float64
		var latencies []time.Duration
		for i := 0; i < b.N; i++ {
			net, err := topology.Inet(nodes, 2*nodes, access, topology.Config{NumVMs: vms, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			sim := online.NewSimulator(net, algo, cfg)
			sim.Run(arrivals)
			st := sim.Lifecycle()
			if st.Arrivals != arrivals {
				b.Fatalf("ran %d arrivals, want %d", st.Arrivals, arrivals)
			}
			accepted += float64(st.Accepted)
			departed += float64(st.Departed)
			live += float64(len(sim.Solver().Leases()))
			dijkstras += float64(st.Dijkstras)
			latencies = append(latencies, st.EmbedLatencies...)
		}
		n := float64(b.N)
		b.ReportMetric(100*accepted/(n*float64(arrivals)), "accept-%")
		b.ReportMetric(departed/n, "departed/op")
		b.ReportMetric(live/n, "live-leases/op")
		b.ReportMetric(dijkstras/n, "dijkstras/op")
		b.ReportMetric(dijkstras/(n*float64(arrivals)), "dijkstras/arrival")
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/(n*float64(arrivals)), "ms/arrival")
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p99 := latencies[(len(latencies)*99+99)/100-1]
		b.ReportMetric(float64(p99.Microseconds())/1e3, "p99-embed-ms")
	}
	b.Run("classic", func(b *testing.B) {
		run(b, online.AlgoSOFDA, 300, 30, 30, 5000, online.Config{
			LinkCapacity: 30, Demand: 5, VMCapacity: 3,
			SrcRange: [2]int{2, 4}, DstRange: [2]int{4, 8},
			ChainLen: 2, Seed: 42, TTLRange: [2]int{30, 90},
		})
	})
	b.Run("scaled", func(b *testing.B) {
		run(b, online.AlgoSOFDASS, 10000, 1000, 30, 100000, online.Config{
			LinkCapacity: 1000, Demand: 5, VMCapacity: 100,
			SrcRange: [2]int{1, 1}, DstRange: [2]int{3, 6},
			ChainLen: 2, Seed: 42, TTLRange: [2]int{30, 90},
			RepriceEvery: 512, AccessPool: 64,
		})
	})
}

// BenchmarkTable2QoE reproduces the video QoE experiment on both profiles.
func BenchmarkTable2QoE(b *testing.B) {
	for _, algo := range []online.Algorithm{online.AlgoSOFDA, online.AlgoENEMP, online.AlgoEST} {
		b.Run(string(algo), func(b *testing.B) {
			var startup, rebuf float64
			runs := 0
			for i := 0; i < b.N; i++ {
				q, err := emu.EvaluateAveraged(algo, emu.Testbed, 5)
				if err != nil {
					b.Fatal(err)
				}
				startup += q.AvgStartupSec
				rebuf += q.AvgRebufferSec
				runs++
			}
			b.ReportMetric(startup/float64(runs), "startup-sec")
			b.ReportMetric(rebuf/float64(runs), "rebuffer-sec")
		})
	}
}

// BenchmarkFailureRecovery measures the survivable-forest repair path
// against re-embedding the damaged services from scratch under the same
// failure state. The deterministic counters are the headline: fast-path
// recoveries as a share of reattachments, and the oracle Dijkstra misses
// repair needed versus what scratch re-embeds of the same requests cost —
// grafting from the break point should re-derive far fewer trees.
// p99-recovery-ms is wall clock and informational only.
func BenchmarkFailureRecovery(b *testing.B) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 3})
	snet := sof.FromGraph(net.G)
	rng := rand.New(rand.NewSource(21))
	reqs := make([]sof.Request, 8)
	for i := range reqs {
		reqs[i] = sof.Request{
			Sources:      net.RandomNodes(rng, 2+rng.Intn(2)),
			Destinations: net.RandomNodes(rng, 3+rng.Intn(2)),
			ChainLength:  2,
		}
	}
	ctx := context.Background()
	var (
		repairDij, scratchDij   float64
		fastPath, reattached    float64
		blast                   float64
		repairCost, scratchCost float64
		latencies               []time.Duration
	)
	for i := 0; i < b.N; i++ {
		solver := sof.NewSolver(snet, sof.WithVMs(net.VMs...), sof.WithRecovery())
		for _, req := range reqs {
			if _, err := solver.Embed(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		// Sever half the forests at their deepest carried link (a leaf-side
		// cut keeps the rest of the network routable, so repair has a
		// fighting chance and the fast-path rate is meaningful).
		for fi, f := range solver.LiveForests() {
			if fi%2 != 0 {
				continue
			}
			cf := f.Internal()
			for id := cf.NumClones() - 1; id >= 0; id-- {
				c := cf.Clone(core.CloneID(id))
				if !cf.CloneDeleted(core.CloneID(id)) && c.ParentEdge != graph.NoEdge {
					solver.FailLink(c.ParentEdge)
					break
				}
			}
		}
		base := solver.CacheStats().Misses
		start := time.Now()
		rep, err := solver.RepairAll(ctx)
		if err != nil && !errors.Is(err, sof.ErrUnrecoverable) {
			b.Fatal(err)
		}
		latencies = append(latencies, time.Since(start))
		repairDij += float64(solver.CacheStats().Misses - base)
		fastPath += float64(rep.FastPath)
		reattached += float64(rep.Reattached)
		blast += float64(rep.ForestsTouched)
		// Scratch baseline: a cold session re-embeds each touched forest's
		// current request under the identical failure state.
		scratch := sof.NewSolver(snet, sof.WithVMs(net.VMs...))
		for _, fr := range rep.Forests {
			repairCost += fr.Forest.TotalCost()
			if sf, err := scratch.Embed(ctx, fr.Forest.Request()); err == nil {
				scratchCost += sf.TotalCost()
			}
		}
		scratchDij += float64(scratch.CacheStats().Misses)
		solver.RestoreAllFailures()
	}
	n := float64(b.N)
	b.ReportMetric(repairDij/n, "repair-dijkstras/op")
	b.ReportMetric(scratchDij/n, "scratch-dijkstras/op")
	if reattached > 0 {
		b.ReportMetric(100*fastPath/reattached, "fastpath-%")
	}
	b.ReportMetric(blast/n, "blast-radius/op")
	b.ReportMetric(repairCost/n, "repair-cost/op")
	b.ReportMetric(scratchCost/n, "scratch-cost/op")
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[(len(latencies)*99+99)/100-1]
	b.ReportMetric(float64(p99.Microseconds())/1e3, "p99-recovery-ms")
}
