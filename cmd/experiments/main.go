// Command experiments regenerates every table and figure of the paper's
// evaluation (Section VIII) on the reconstructed topologies and prints the
// series as text tables.
//
// Usage:
//
//	experiments -fig 8            # Fig. 8 (SoftLayer, with exact optimum)
//	experiments -fig 12 -steps 30 # online accumulative cost
//	experiments -table 1          # SOFDA runtime
//	experiments -dist             # distributed vs centralized SOFDA (Section VI)
//	experiments -failures -quick  # failure injection + recovery table
//	experiments -lifecycle -quick # capacitated arrival/departure lifecycle table
//	experiments -dist -transport rpc  # same, over net/rpc loopback domains
//	experiments -all -quick       # everything, reduced sizes
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sof/internal/core"
	"sof/internal/dist"
	distrpc "sof/internal/dist/rpc"
	"sof/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig         = flag.Int("fig", 0, "figure to regenerate (7–12), 0 = none")
		table       = flag.Int("table", 0, "table to regenerate (1 or 2), 0 = none")
		all         = flag.Bool("all", false, "regenerate everything")
		quick       = flag.Bool("quick", false, "reduced sizes/runs for a fast pass")
		runs        = flag.Int("runs", 3, "random requests averaged per data point")
		steps       = flag.Int("steps", 30, "arrivals for Fig. 12")
		distrib     = flag.Bool("dist", false, "distributed SOFDA comparison (Section VI)")
		failures    = flag.Bool("failures", false, "failure recovery under live load (survivable forests)")
		lifecycle   = flag.Bool("lifecycle", false, "capacitated arrival/departure run: acceptance, departures, adaptive admission")
		lcNodes     = flag.Int("nodes", 0, "with -lifecycle: run the scaled soak on an Inet graph of this many nodes instead of SoftLayer/Cogent (0 = classic kinds)")
		lcRequests  = flag.Int("requests", 0, "with -lifecycle: arrivals per setting (0 = derive from -steps)")
		failEvents  = flag.Int("fail-events", 60, "failures injected per -failures run")
		stream      = flag.Bool("stream", false, "with -dist: compare server-streamed fragment joins against batch joins (with -domain-addrs: use the streamed exchange)")
		transport   = flag.String("transport", "inproc", "distributed transport: inproc (channel) or rpc (net/rpc over loopback)")
		domainAddrs = flag.String("domain-addrs", "", "comma-separated addresses of running sofdomain processes; with -dist, embeds against them instead of spinning loopback servers")
		domainNet   = flag.String("domain-net", "softlayer", "topology the sofdomain processes were started with (-domain-addrs mode)")
		domainSeed  = flag.Int64("domain-seed", 0, "seed the sofdomain processes were started with (-domain-addrs mode)")
		domainInet  = flag.Int("domain-inet-nodes", 1000, "node count the sofdomain processes were started with for -domain-net inet (sofdomain's -inet-nodes default)")
	)
	flag.Parse()

	r := *runs
	inet := 5000
	t1Sizes := []int{1000, 2000, 3000, 4000, 5000}
	if *quick {
		r = 1
		inet = 600
		t1Sizes = []int{300, 600}
	}
	ran := false
	run := func(n int, f func() error) {
		if *all || *fig == n || (*table == n-100 && n > 100) {
			ran = true
			if err := f(); err != nil {
				log.Fatalf("figure/table %d: %v", n, err)
			}
		}
	}

	run(7, func() error {
		fmt.Println(exp.Fig7().Format())
		return nil
	})
	run(8, func() error {
		for _, p := range []exp.SweepParam{exp.ParamSources, exp.ParamDests, exp.ParamVMs, exp.ParamChain} {
			s, err := exp.CostSweep(exp.NetSoftLayer, p, r, true, 0)
			if err != nil {
				return err
			}
			fmt.Println("Fig 8:", s.Format())
		}
		return nil
	})
	run(9, func() error {
		for _, p := range []exp.SweepParam{exp.ParamSources, exp.ParamDests, exp.ParamVMs, exp.ParamChain} {
			s, err := exp.CostSweep(exp.NetCogent, p, r, false, 0)
			if err != nil {
				return err
			}
			fmt.Println("Fig 9:", s.Format())
		}
		return nil
	})
	run(10, func() error {
		for _, p := range []exp.SweepParam{exp.ParamSources, exp.ParamDests, exp.ParamVMs, exp.ParamChain} {
			s, err := exp.CostSweep(exp.NetInet, p, r, false, inet)
			if err != nil {
				return err
			}
			fmt.Println("Fig 10:", s.Format())
		}
		return nil
	})
	run(11, func() error {
		costS, vmS, err := exp.Fig11(r)
		if err != nil {
			return err
		}
		fmt.Println(costS.Format())
		fmt.Println(vmS.Format())
		return nil
	})
	run(12, func() error {
		for _, kind := range []exp.NetKind{exp.NetSoftLayer, exp.NetCogent} {
			n := *steps
			if kind == exp.NetCogent && !*quick {
				n = 45
			}
			s, err := exp.Fig12(kind, n)
			if err != nil {
				return err
			}
			fmt.Println(s.Format())
		}
		return nil
	})
	run(101, func() error {
		rows, err := exp.Table1(t1Sizes, exp.SweepSources)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable1(rows))
		return nil
	})
	run(102, func() error {
		rows, err := exp.Table2(10 * r)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable2(rows))
		return nil
	})
	if *all || *failures {
		ran = true
		kinds := []exp.NetKind{exp.NetSoftLayer, exp.NetCogent}
		if *quick {
			kinds = kinds[:1]
		}
		for _, kind := range kinds {
			n, ev := *steps, *failEvents
			if *quick {
				n, ev = 15, 30
			}
			rows, err := exp.FailureTable(kind, n, ev)
			if err != nil {
				log.Fatalf("failure recovery (%s): %v", kind, err)
			}
			fmt.Println(exp.FormatFailureTable(kind, rows))
		}
	}
	if *all || *lifecycle {
		ran = true
		kinds := []exp.NetKind{exp.NetSoftLayer, exp.NetCogent}
		n := 12 * *steps // departures need a long stream to reach steady state
		if *quick {
			kinds = kinds[:1]
			n = 4 * *steps
		}
		inetNodes := 0
		if *lcNodes > 0 {
			// The scaled soak: one Inet graph of -nodes nodes, -requests
			// arrivals per setting — the CLI form of BenchmarkLifecycle/scaled
			// (e.g. -lifecycle -nodes 10000 -requests 100000).
			kinds = []exp.NetKind{exp.NetInet}
			inetNodes = *lcNodes
		}
		if *lcRequests > 0 {
			n = *lcRequests
		}
		for _, kind := range kinds {
			rows, err := exp.LifecycleTable(kind, n, inetNodes)
			if err != nil {
				log.Fatalf("lifecycle (%s): %v", kind, err)
			}
			fmt.Println(exp.FormatLifecycleTable(kind, rows))
		}
	}
	if *all || *distrib {
		ran = true
		if *domainAddrs != "" {
			if err := runAgainstDomains(strings.Split(*domainAddrs, ","), exp.NetKind(*domainNet), *domainSeed, *domainInet, *stream); err != nil {
				log.Fatalf("distributed embedding against %s: %v", *domainAddrs, err)
			}
		} else {
			kinds := []exp.NetKind{exp.NetSoftLayer, exp.NetCogent}
			if *quick {
				kinds = kinds[:1]
			}
			// -stream compares both join modes over the chosen transport;
			// without it only the batch exchange runs, as before.
			modes := []bool{false}
			if *stream {
				modes = []bool{false, true}
			}
			var rows []exp.DistRow
			for _, streamed := range modes {
				mrows, err := exp.DistTable(kinds, []int{1, 3, 5}, r, inet, exp.DistTransport(*transport), streamed)
				if err != nil {
					log.Fatalf("distributed comparison: %v", err)
				}
				rows = append(rows, mrows...)
			}
			fmt.Println(exp.FormatDistTable(rows))
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runAgainstDomains embeds the default request through running sofdomain
// processes and compares against the centralized solve — the leader half
// of the README's two-terminal quickstart. The fallback is deliberately
// disabled: this command exists to prove the RPC path works, so a dead or
// misconfigured domain must fail loudly instead of being silently papered
// over by a leader-local solve that never touched the wire.
func runAgainstDomains(addrs []string, kind exp.NetKind, seed int64, inetNodes int, streamed bool) error {
	network, req, err := exp.DefaultRequest(kind, seed, inetNodes)
	if err != nil {
		return err
	}
	opts := &core.Options{VMs: network.VMs}
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		return fmt.Errorf("centralized: %w", err)
	}
	tr := distrpc.NewTransport(addrs)
	defer tr.Close()
	cluster := dist.NewClusterWith(network.G, len(addrs), dist.Config{
		Transport: tr, RetryBudget: 1, DisableFallback: true, Streaming: streamed,
	})
	defer cluster.Close()
	start := time.Now()
	f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
	if err != nil {
		return fmt.Errorf("%w\n(are the sofdomain processes running, and started with -net %s -seed %d and the default -vms/-inet-nodes? every topology flag must match, or the graph-digest handshake refuses)",
			err, kind, seed)
	}
	join := "batch"
	if streamed {
		join = "streamed"
	}
	fmt.Printf("distributed SOFDA over %d sofdomain processes, %s joins (%v): cost=%.2f in %.2fms\n",
		len(addrs), join, addrs, f.TotalCost(), float64(time.Since(start).Microseconds())/1e3)
	fmt.Printf("centralized SOFDA:                                   cost=%.2f (match=%v)\n",
		central.TotalCost(), central.TotalCost() == f.TotalCost())
	if streamed {
		st := cluster.StreamStats()
		fmt.Printf("streaming: %d fragments, %d results, %d pruned, overlap %.2fms\n",
			st.StreamedFragments, st.StreamedResults, st.PrunedCandidates, float64(st.OverlapNS)/1e6)
	}
	return nil
}
