// Command experiments regenerates every table and figure of the paper's
// evaluation (Section VIII) on the reconstructed topologies and prints the
// series as text tables.
//
// Usage:
//
//	experiments -fig 8            # Fig. 8 (SoftLayer, with exact optimum)
//	experiments -fig 12 -steps 30 # online accumulative cost
//	experiments -table 1          # SOFDA runtime
//	experiments -dist             # distributed vs centralized SOFDA (Section VI)
//	experiments -all -quick       # everything, reduced sizes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sof/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig     = flag.Int("fig", 0, "figure to regenerate (7–12), 0 = none")
		table   = flag.Int("table", 0, "table to regenerate (1 or 2), 0 = none")
		all     = flag.Bool("all", false, "regenerate everything")
		quick   = flag.Bool("quick", false, "reduced sizes/runs for a fast pass")
		runs    = flag.Int("runs", 3, "random requests averaged per data point")
		steps   = flag.Int("steps", 30, "arrivals for Fig. 12")
		distrib = flag.Bool("dist", false, "distributed SOFDA comparison (Section VI)")
	)
	flag.Parse()

	r := *runs
	inet := 5000
	t1Sizes := []int{1000, 2000, 3000, 4000, 5000}
	if *quick {
		r = 1
		inet = 600
		t1Sizes = []int{300, 600}
	}
	ran := false
	run := func(n int, f func() error) {
		if *all || *fig == n || (*table == n-100 && n > 100) {
			ran = true
			if err := f(); err != nil {
				log.Fatalf("figure/table %d: %v", n, err)
			}
		}
	}

	run(7, func() error {
		fmt.Println(exp.Fig7().Format())
		return nil
	})
	run(8, func() error {
		for _, p := range []exp.SweepParam{exp.ParamSources, exp.ParamDests, exp.ParamVMs, exp.ParamChain} {
			s, err := exp.CostSweep(exp.NetSoftLayer, p, r, true, 0)
			if err != nil {
				return err
			}
			fmt.Println("Fig 8:", s.Format())
		}
		return nil
	})
	run(9, func() error {
		for _, p := range []exp.SweepParam{exp.ParamSources, exp.ParamDests, exp.ParamVMs, exp.ParamChain} {
			s, err := exp.CostSweep(exp.NetCogent, p, r, false, 0)
			if err != nil {
				return err
			}
			fmt.Println("Fig 9:", s.Format())
		}
		return nil
	})
	run(10, func() error {
		for _, p := range []exp.SweepParam{exp.ParamSources, exp.ParamDests, exp.ParamVMs, exp.ParamChain} {
			s, err := exp.CostSweep(exp.NetInet, p, r, false, inet)
			if err != nil {
				return err
			}
			fmt.Println("Fig 10:", s.Format())
		}
		return nil
	})
	run(11, func() error {
		costS, vmS, err := exp.Fig11(r)
		if err != nil {
			return err
		}
		fmt.Println(costS.Format())
		fmt.Println(vmS.Format())
		return nil
	})
	run(12, func() error {
		for _, kind := range []exp.NetKind{exp.NetSoftLayer, exp.NetCogent} {
			n := *steps
			if kind == exp.NetCogent && !*quick {
				n = 45
			}
			s, err := exp.Fig12(kind, n)
			if err != nil {
				return err
			}
			fmt.Println(s.Format())
		}
		return nil
	})
	run(101, func() error {
		rows, err := exp.Table1(t1Sizes, exp.SweepSources)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable1(rows))
		return nil
	})
	run(102, func() error {
		rows, err := exp.Table2(10 * r)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable2(rows))
		return nil
	})
	if *all || *distrib {
		ran = true
		kinds := []exp.NetKind{exp.NetSoftLayer, exp.NetCogent}
		if *quick {
			kinds = kinds[:1]
		}
		rows, err := exp.DistTable(kinds, []int{1, 3, 5}, r, inet)
		if err != nil {
			log.Fatalf("distributed comparison: %v", err)
		}
		fmt.Println(exp.FormatDistTable(rows))
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
