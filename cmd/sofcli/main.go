// Command sofcli embeds a single request on one of the built-in topologies
// and prints the resulting forest, comparing algorithms side by side. All
// algorithms run through one sof.Solver session, so the shortest-path work
// over the topology is paid once and shared by the whole comparison.
//
// Usage:
//
//	sofcli -net softlayer -sources 8 -dests 6 -chain 3 -vms 25 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"sof"
	"sof/internal/exp"
	"sof/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sofcli: ")
	var (
		netKind = flag.String("net", "softlayer", "topology: softlayer|cogent|inet")
		sources = flag.Int("sources", exp.DefaultSources, "candidate sources")
		dests   = flag.Int("dests", exp.DefaultDests, "destinations")
		chain   = flag.Int("chain", exp.DefaultChain, "VNF chain length")
		vms     = flag.Int("vms", exp.DefaultVMs, "available VMs")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact", false, "also run the exact solver (small instances)")
	)
	flag.Parse()

	cfg := topology.Config{NumVMs: *vms, Seed: *seed}
	var net *topology.Network
	var err error
	switch *netKind {
	case "softlayer":
		net = topology.SoftLayer(cfg)
	case "cogent":
		net = topology.Cogent(cfg)
	case "inet":
		net, err = topology.Inet(1000, 2000, 200, cfg)
	default:
		log.Fatalf("unknown network %q", *netKind)
	}
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	req := sof.Request{
		Sources:      net.RandomNodes(rng, *sources),
		Destinations: net.RandomNodes(rng, *dests),
		ChainLength:  *chain,
	}
	solver := sof.NewSolver(sof.FromGraph(net.G), sof.WithVMs(net.VMs...))
	fmt.Printf("network=%s nodes=%d links=%d vms=%d | request: %d sources, %d dests, |C|=%d\n\n",
		*netKind, net.G.NumNodes(), net.G.NumEdges(), len(net.VMs),
		len(req.Sources), len(req.Destinations), req.ChainLength)
	fmt.Printf("%-8s %10s %10s %10s %7s %7s\n", "algo", "total", "setup", "conn", "trees", "vms")
	run := func(algo sof.Algorithm) {
		f, err := solver.EmbedAlgorithm(context.Background(), req, algo)
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", algo, err)
			return
		}
		setup, conn := f.Cost()
		fmt.Printf("%-8s %10.2f %10.2f %10.2f %7d %7d\n",
			algo, f.TotalCost(), setup, conn, f.Trees(), len(f.UsedVMs()))
	}
	run(sof.AlgorithmSOFDA)
	run(sof.AlgorithmENEMP)
	run(sof.AlgorithmEST)
	run(sof.AlgorithmST)
	if *exact {
		run(sof.AlgorithmExact)
	}
	stats := solver.CacheStats()
	fmt.Printf("\nsession cache: %d Dijkstra computations, %d warm hits; %d k-stroll solves, %d solved-chain hits\n",
		stats.Misses, stats.Hits, stats.ChainMisses, stats.ChainHits)
}
