// Command sofcli embeds a single request on one of the built-in topologies
// and prints the resulting forest, comparing algorithms side by side.
//
// Usage:
//
//	sofcli -net softlayer -sources 8 -dests 6 -chain 3 -vms 25 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"sof/internal/baseline"
	"sof/internal/core"
	"sof/internal/exp"
	"sof/internal/sofexact"
	"sof/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sofcli: ")
	var (
		netKind = flag.String("net", "softlayer", "topology: softlayer|cogent|inet")
		sources = flag.Int("sources", exp.DefaultSources, "candidate sources")
		dests   = flag.Int("dests", exp.DefaultDests, "destinations")
		chain   = flag.Int("chain", exp.DefaultChain, "VNF chain length")
		vms     = flag.Int("vms", exp.DefaultVMs, "available VMs")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact", false, "also run the exact solver (small instances)")
	)
	flag.Parse()

	cfg := topology.Config{NumVMs: *vms, Seed: *seed}
	var net *topology.Network
	var err error
	switch *netKind {
	case "softlayer":
		net = topology.SoftLayer(cfg)
	case "cogent":
		net = topology.Cogent(cfg)
	case "inet":
		net, err = topology.Inet(1000, 2000, 200, cfg)
	default:
		log.Fatalf("unknown network %q", *netKind)
	}
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	req := core.Request{
		Sources:  net.RandomNodes(rng, *sources),
		Dests:    net.RandomNodes(rng, *dests),
		ChainLen: *chain,
	}
	opts := &core.Options{VMs: net.VMs}
	fmt.Printf("network=%s nodes=%d links=%d vms=%d | request: %d sources, %d dests, |C|=%d\n\n",
		*netKind, net.G.NumNodes(), net.G.NumEdges(), len(net.VMs),
		len(req.Sources), len(req.Dests), req.ChainLen)
	fmt.Printf("%-8s %10s %10s %10s %7s %7s\n", "algo", "total", "setup", "conn", "trees", "vms")
	report := func(name string, f *core.Forest, err error) {
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", name, err)
			return
		}
		st := f.Stats()
		fmt.Printf("%-8s %10.2f %10.2f %10.2f %7d %7d\n",
			name, st.TotalCost, st.SetupCost, st.ConnCost, st.Trees, st.UsedVMs)
	}
	f, err := core.SOFDA(net.G, req, opts)
	report("SOFDA", f, err)
	f, err = baseline.ENEMP(net.G, req, opts)
	report("eNEMP", f, err)
	f, err = baseline.EST(net.G, req, opts)
	report("eST", f, err)
	f, err = baseline.ST(net.G, req, opts)
	report("ST", f, err)
	if *exact {
		f, err = sofexact.Solve(net.G, req, &sofexact.Options{VMs: net.VMs})
		report("OPT", f, err)
	}
}
