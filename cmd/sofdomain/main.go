// Command sofdomain runs one SOF domain controller as a standalone OS
// process: it reconstructs the evaluation network deterministically from
// flags (so the leader and every domain agree on the graph and its cost
// epoch without shipping topology over the wire) and serves candidate
// service-chain requests on one listener speaking both protocols — the
// net/rpc batch exchange with the gob codec, and the framed-gob streaming
// exchange, where candidates leave as fragments the moment they are
// solved and a leader that hangs up cancels the batch mid-flight.
//
// A three-domain deployment is three sofdomain processes plus one leader
// pointing a dist/rpc.Transport at them (the leader must be built with
// the same -net and -seed; the protocol's cost-epoch + topology-digest
// handshake refuses mismatched domains):
//
//	sofdomain -listen 127.0.0.1:9101 -net softlayer -seed 0 &
//	sofdomain -listen 127.0.0.1:9102 -net softlayer -seed 0 &
//	sofdomain -listen 127.0.0.1:9103 -net softlayer -seed 0 &
//	experiments -dist -domain-addrs 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103 -stream
//
// (drop -stream for the one-shot batch exchange; the same servers answer
// both). Every domain answers any (source, last VM) pairs it is sent;
// which pairs a domain owns is the leader's partitioning decision, so the
// same server binary works for any domain count.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"sof/internal/chain"
	distrpc "sof/internal/dist/rpc"
	"sof/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sofdomain: ")
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "TCP address to serve net/rpc on")
		netKind     = flag.String("net", "softlayer", "topology: softlayer|cogent|inet")
		vms         = flag.Int("vms", exp.DefaultVMs, "number of VM nodes")
		seed        = flag.Int64("seed", 0, "topology seed (must match the leader's)")
		inetNodes   = flag.Int("inet-nodes", 1000, "node count for -net inet")
		sourceSetup = flag.Bool("source-setup", false, "include source setup costs in chains (Appendix D)")
	)
	flag.Parse()

	network, err := exp.BuildNet(exp.NetKind(*netKind), *vms, *seed, *inetNodes)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	ds := distrpc.NewDomainServer(network.G, chain.Options{SourceSetupCost: *sourceSetup})
	srv, err := distrpc.Serve(lis, ds)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s (seed %d, %d nodes, %d VMs, cost epoch %d) on %s",
		*netKind, *seed, network.G.NumNodes(), len(network.VMs), network.G.CostEpoch(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
