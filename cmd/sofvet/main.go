// Command sofvet is the repository's invariant checker: a multichecker
// over the custom passes in internal/analysis, enforcing the determinism,
// cost-epoch, context-propagation, pool-hygiene and atomic-access rules
// the SOFDA bit-identical-cost guarantee depends on.
//
// Usage:
//
//	go run ./cmd/sofvet ./...
//	go run ./cmd/sofvet -list
//
// It exits 0 when the tree is clean and 1 when any diagnostic survives.
// Deliberate exceptions carry `//sofvet:ignore <pass> <reason>` pragmas
// (one per diagnostic, on the flagged line or directly above it); the
// driver reports malformed, unknown-pass and unused pragmas as findings
// of their own, so every suppression stays greppable and justified.
package main

import (
	"flag"
	"fmt"
	"os"

	"sof/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sofvet [-list] [package patterns, default ./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fatal(err)
	}
	findings := analysis.RunAnalyzers(loader.Fset, pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sofvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sofvet:", err)
	os.Exit(2)
}
