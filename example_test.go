package sof_test

import (
	"fmt"

	"sof"
)

// ExampleNetwork_Embed embeds a two-VNF chain on a line network with the
// paper's main algorithm.
func ExampleNetwork_Embed() {
	b := sof.NewNetworkBuilder()
	src := b.AddSwitch("src")
	transcoder := b.AddVM("transcoder", 2)
	watermark := b.AddVM("watermark", 3)
	dst := b.AddSwitch("dst")
	b.Link(src, transcoder, 1)
	b.Link(transcoder, watermark, 1)
	b.Link(watermark, dst, 1)
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	forest, err := net.Embed(sof.Request{
		Sources:      []sof.NodeID{src},
		Destinations: []sof.NodeID{dst},
		ChainLength:  2,
	}, sof.AlgorithmSOFDA)
	if err != nil {
		panic(err)
	}
	setup, conn := forest.Cost()
	fmt.Printf("total=%.0f setup=%.0f connection=%.0f trees=%d\n",
		forest.TotalCost(), setup, conn, forest.Trees())
	// Output: total=8 setup=5 connection=3 trees=1
}

// ExampleForest_Leave shows dynamic membership: a destination leaves and
// its exclusive branch is reclaimed.
func ExampleForest_Leave() {
	b := sof.NewNetworkBuilder()
	src := b.AddSwitch("src")
	vm := b.AddVM("vnf", 1)
	hub := b.AddSwitch("hub")
	d1 := b.AddSwitch("d1")
	d2 := b.AddSwitch("d2")
	b.Link(src, vm, 1)
	b.Link(vm, hub, 1)
	b.Link(hub, d1, 1)
	b.Link(hub, d2, 5)
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	forest, err := net.Embed(sof.Request{
		Sources:      []sof.NodeID{src},
		Destinations: []sof.NodeID{d1, d2},
		ChainLength:  1,
	}, sof.AlgorithmSOFDA)
	if err != nil {
		panic(err)
	}
	before := forest.TotalCost()
	delta, err := forest.Leave(d2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("before=%.0f delta=%.0f after=%.0f\n", before, delta, forest.TotalCost())
	// Output: before=9 delta=-5 after=4
}
