// CDN scenario: a live channel with two regional source servers on the
// SoftLayer inter-data-center network. Compares SOFDA against the
// baselines and against the exact optimum, demonstrating why a multi-tree
// forest beats one consolidated tree when viewers cluster in different
// regions (the motivation of Fig. 1 in the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sof/internal/baseline"
	"sof/internal/core"
	"sof/internal/sofexact"
	"sof/internal/topology"
)

func main() {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 7})
	rng := rand.New(rand.NewSource(7))
	req := core.Request{
		Sources:  net.RandomNodes(rng, 8), // regional headends
		Dests:    net.RandomNodes(rng, 6), // edge PoPs with viewers
		ChainLen: 3,                       // transcode, ad-insert, watermark
	}
	opts := &core.Options{VMs: net.VMs}

	fmt.Println("live channel on SoftLayer: 8 candidate headends, 6 viewer PoPs, |C|=3")
	fmt.Printf("%-8s %10s %7s %7s\n", "algo", "cost", "trees", "vms")
	type result struct {
		name string
		run  func() (*core.Forest, error)
	}
	for _, r := range []result{
		{"SOFDA", func() (*core.Forest, error) { return core.SOFDA(net.G, req, opts) }},
		{"eNEMP", func() (*core.Forest, error) { return baseline.ENEMP(net.G, req, opts) }},
		{"eST", func() (*core.Forest, error) { return baseline.EST(net.G, req, opts) }},
		{"ST", func() (*core.Forest, error) { return baseline.ST(net.G, req, opts) }},
	} {
		f, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		if err := f.Validate(req.Sources, req.Dests); err != nil {
			log.Fatalf("%s produced an infeasible forest: %v", r.name, err)
		}
		st := f.Stats()
		fmt.Printf("%-8s %10.2f %7d %7d\n", r.name, st.TotalCost, st.Trees, st.UsedVMs)
	}

	// Exact optimum on a reduced instance (the branch-and-bound proves
	// optimality comfortably with a smaller VM pool and chain).
	small := core.Request{Sources: req.Sources, Dests: req.Dests[:4], ChainLen: 2}
	vms := net.VMs[:10]
	opt, err := sofexact.Solve(net.G, small, &sofexact.Options{VMs: vms})
	if err != nil {
		log.Fatalf("exact: %v", err)
	}
	heur, err := core.SOFDA(net.G, small, &core.Options{VMs: vms})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduced instance (4 dests, |C|=2, 10 VMs): OPT=%.2f SOFDA=%.2f (gap %.1f%%)\n",
		opt.TotalCost(), heur.TotalCost(), 100*(heur.TotalCost()/opt.TotalCost()-1))
}
