// CDN scenario: a live channel with two regional source servers on the
// SoftLayer inter-data-center network. Compares SOFDA against the
// baselines and against the exact optimum through one Solver session
// (every algorithm reuses the same cached shortest-path state),
// demonstrating why a multi-tree forest beats one consolidated tree when
// viewers cluster in different regions (the motivation of Fig. 1 in the
// paper).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"sof"
	"sof/internal/topology"
)

func main() {
	ctx := context.Background()
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 7})
	rng := rand.New(rand.NewSource(7))
	req := sof.Request{
		Sources:      net.RandomNodes(rng, 8), // regional headends
		Destinations: net.RandomNodes(rng, 6), // edge PoPs with viewers
		ChainLength:  3,                       // transcode, ad-insert, watermark
	}
	solver := sof.NewSolver(sof.FromGraph(net.G), sof.WithVMs(net.VMs...))

	fmt.Println("live channel on SoftLayer: 8 candidate headends, 6 viewer PoPs, |C|=3")
	fmt.Printf("%-8s %10s %7s %7s\n", "algo", "cost", "trees", "vms")
	for _, algo := range []sof.Algorithm{
		sof.AlgorithmSOFDA, sof.AlgorithmENEMP, sof.AlgorithmEST, sof.AlgorithmST,
	} {
		f, err := solver.EmbedAlgorithm(ctx, req, algo)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		if err := f.Validate(); err != nil {
			log.Fatalf("%s produced an infeasible forest: %v", algo, err)
		}
		fmt.Printf("%-8s %10.2f %7d %7d\n", algo, f.TotalCost(), f.Trees(), len(f.UsedVMs()))
	}

	// Exact optimum on a reduced instance (the branch-and-bound proves
	// optimality comfortably with a smaller VM pool and chain). The
	// reduced session restricts the VM pool; its forests remember the
	// restriction, so later dynamic operations could not leak onto the
	// excluded VMs either.
	small := sof.Request{Sources: req.Sources, Destinations: req.Destinations[:4], ChainLength: 2}
	reduced := sof.NewSolver(sof.FromGraph(net.G), sof.WithVMs(net.VMs[:10]...))
	opt, err := reduced.EmbedAlgorithm(ctx, small, sof.AlgorithmExact)
	if err != nil {
		log.Fatalf("exact: %v", err)
	}
	heur, err := reduced.EmbedAlgorithm(ctx, small, sof.AlgorithmSOFDA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduced instance (4 dests, |C|=2, 10 VMs): OPT=%.2f SOFDA=%.2f (gap %.1f%%)\n",
		opt.TotalCost(), heur.TotalCost(), 100*(heur.TotalCost()/opt.TotalCost()-1))
}
