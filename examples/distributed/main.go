// Distributed scenario: the SoftLayer network is split into three
// controller domains; the leader gathers per-domain candidate chains and
// completes SOFDA (Section VI). Confirms the distributed result matches
// the centralized embedding, with the centralized side solved through the
// public Solver session. The domain oracles share the network's cost
// epoch, so a cost change invalidates their caches lazily, exactly like
// the centralized session's.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"sof"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/dist"
	"sof/internal/topology"
)

func main() {
	net := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: 11})
	rng := rand.New(rand.NewSource(11))
	sources := net.RandomNodes(rng, 6)
	dests := net.RandomNodes(rng, 5)

	solver := sof.NewSolver(sof.FromGraph(net.G), sof.WithVMs(net.VMs...))
	central, err := solver.Embed(context.Background(), sof.Request{
		Sources: sources, Destinations: dests, ChainLength: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	req := core.Request{Sources: sources, Dests: dests, ChainLen: 2}
	cluster := dist.NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	distributed, err := cluster.SOFDA(context.Background(), req, dist.Options{
		Core: &core.Options{VMs: net.VMs},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("centralized SOFDA:  cost=%.2f trees=%d\n", central.TotalCost(), central.Trees())
	fmt.Printf("distributed SOFDA:  cost=%.2f trees=%d (3 controller domains)\n",
		distributed.TotalCost(), distributed.NumTrees())
	if err := distributed.Validate(req.Sources, req.Dests); err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed forest is feasible and matches the centralized cost:",
		central.TotalCost() == distributed.TotalCost())
}
