// Distributed scenario: the SoftLayer network is split into three
// controller domains and embedded three times (Section VI) — once with
// the in-process channel transport (domains are worker goroutines), once
// with domains behind real net/rpc servers on loopback listeners, each
// owning its own reconstruction of the network, the way separate OS
// processes would (see cmd/sofdomain for the standalone binary), and once
// with the same rpc servers but server-streamed fragment joins: domains
// emit candidates as they complete, the leader assembles the auxiliary
// graph while slower domains are still solving, and dominated candidates
// are pruned before allocating any aux-graph state. All runs must match
// the centralized embedding bit for bit: transport and join mode change
// where and when the candidate chains are computed, not what is computed.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"

	"sof"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/dist"
	distrpc "sof/internal/dist/rpc"
	"sof/internal/topology"
)

func main() {
	const (
		seed    = 11
		domains = 3
	)
	build := func() *topology.Network {
		return topology.SoftLayer(topology.Config{NumVMs: 20, Seed: seed})
	}
	leaderNet := build()
	rng := rand.New(rand.NewSource(seed))
	sources := leaderNet.RandomNodes(rng, 6)
	dests := leaderNet.RandomNodes(rng, 5)

	solver := sof.NewSolver(sof.FromGraph(leaderNet.G), sof.WithVMs(leaderNet.VMs...))
	central, err := solver.Embed(context.Background(), sof.Request{
		Sources: sources, Destinations: dests, ChainLength: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized SOFDA:        cost=%.2f trees=%d\n", central.TotalCost(), central.Trees())

	req := core.Request{Sources: sources, Dests: dests, ChainLen: 2}
	opts := dist.Options{Core: &core.Options{VMs: leaderNet.VMs}}

	// In-process transport: domains are worker goroutines with private
	// oracles, fed through channels.
	cluster := dist.NewCluster(leaderNet.G, domains, chain.Options{})
	inproc, err := cluster.SOFDA(context.Background(), req, opts)
	cluster.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed (inproc):     cost=%.2f trees=%d (%d channel domains)\n",
		inproc.TotalCost(), inproc.NumTrees(), domains)

	// RPC transport: each domain server rebuilds the network from the same
	// seed — sharing nothing with the leader but the wire — and answers
	// candidate batches over net/rpc with the gob codec.
	addrs := make([]string, domains)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv, err := distrpc.Serve(lis, distrpc.NewDomainServer(build().G, chain.Options{}))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}
	tr := distrpc.NewTransport(addrs)
	defer tr.Close()
	rpcCluster := dist.NewClusterWith(leaderNet.G, domains, dist.Config{Transport: tr, RetryBudget: 1})
	overRPC, err := rpcCluster.SOFDA(context.Background(), req, opts)
	rpcCluster.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed (net/rpc):    cost=%.2f trees=%d (%d servers on %v)\n",
		overRPC.TotalCost(), overRPC.NumTrees(), domains, addrs)

	// Streamed joins over the same servers: candidates cross the wire as
	// fragments, the leader splices them into the aux graph as they land,
	// and dominated candidates never allocate aux-graph state.
	streamCluster := dist.NewClusterWith(leaderNet.G, domains, dist.Config{Transport: tr, RetryBudget: 1, Streaming: true})
	streamed, err := streamCluster.SOFDA(context.Background(), req, opts)
	stats := streamCluster.StreamStats()
	streamCluster.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed (streamed):   cost=%.2f trees=%d (%d fragments, %d pruned, overlap %.2fms)\n",
		streamed.TotalCost(), streamed.NumTrees(), stats.StreamedFragments, stats.PrunedCandidates,
		float64(stats.OverlapNS)/1e6)

	if err := overRPC.Validate(req.Sources, req.Dests); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all four costs identical:",
		central.TotalCost() == inproc.TotalCost() && inproc.TotalCost() == overRPC.TotalCost() &&
			overRPC.TotalCost() == streamed.TotalCost())
}
