// Distributed scenario: the SoftLayer network is split into three
// controller domains; the leader gathers per-domain candidate chains and
// completes SOFDA (Section VI). Confirms the distributed result matches
// the centralized embedding.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/dist"
	"sof/internal/topology"
)

func main() {
	net := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: 11})
	rng := rand.New(rand.NewSource(11))
	req := core.Request{
		Sources:  net.RandomNodes(rng, 6),
		Dests:    net.RandomNodes(rng, 5),
		ChainLen: 2,
	}
	opts := &core.Options{VMs: net.VMs}

	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		log.Fatal(err)
	}

	cluster := dist.NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	distributed, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("centralized SOFDA:  cost=%.2f trees=%d\n", central.TotalCost(), central.NumTrees())
	fmt.Printf("distributed SOFDA:  cost=%.2f trees=%d (3 controller domains)\n",
		distributed.TotalCost(), distributed.NumTrees())
	if err := distributed.Validate(req.Sources, req.Dests); err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed forest is feasible and matches the centralized cost:",
		central.TotalCost() == distributed.TotalCost())
}
