// Dynamic scenario: viewers join and leave a running service forest and
// the VNF chain itself is reconfigured (Section VII-C). The forest is
// re-validated after every operation. All operations reuse the Solver
// session's cached shortest-path trees — with no cost changes between
// them, nothing is recomputed.
package main

import (
	"context"
	"fmt"
	"log"

	"sof"
)

func main() {
	b := sof.NewNetworkBuilder()
	src := b.AddSwitch("src")
	var vms []sof.NodeID
	prev := src
	for i := 0; i < 4; i++ {
		v := b.AddVM(fmt.Sprintf("vm%d", i), float64(1+i))
		b.Link(prev, v, 1)
		vms = append(vms, v)
		prev = v
	}
	hub := b.AddSwitch("hub")
	b.Link(prev, hub, 1)
	var viewers []sof.NodeID
	for i := 0; i < 4; i++ {
		w := b.AddSwitch(fmt.Sprintf("viewer%d", i))
		b.Link(hub, w, 1)
		viewers = append(viewers, w)
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	solver := sof.NewSolver(net)
	forest, err := solver.Embed(context.Background(), sof.Request{
		Sources:      []sof.NodeID{src},
		Destinations: viewers[:2],
		ChainLength:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	check := func(what string) {
		if err := forest.Validate(); err != nil {
			log.Fatalf("after %s: %v", what, err)
		}
		fmt.Printf("%-22s cost=%6.1f dests=%d vms=%v\n",
			what, forest.TotalCost(), len(forest.Destinations()), forest.UsedVMs())
	}
	check("initial embedding")

	if _, err := forest.Join(viewers[2]); err != nil {
		log.Fatal(err)
	}
	check("viewer2 joins")

	if _, err := forest.Leave(viewers[0]); err != nil {
		log.Fatal(err)
	}
	check("viewer0 leaves")

	if err := forest.InsertVNF(2); err != nil {
		log.Fatal(err)
	}
	check("VNF inserted at f2")

	if err := forest.RemoveVNF(1); err != nil {
		log.Fatal(err)
	}
	check("VNF f1 removed")

	stats := solver.CacheStats()
	fmt.Printf("session cache after all operations: %d Dijkstras, %d warm hits\n",
		stats.Misses, stats.Hits)
}
