// Online scenario: requests arrive one at a time on the Cogent backbone,
// each priced by the current Fortz–Thorup congestion costs (Section
// VIII-C / Fig. 12). Prints the accumulated cost of SOFDA vs the single-
// tree baseline over the same arrival sequence.
package main

import (
	"fmt"
	"log"

	"sof/internal/online"
	"sof/internal/topology"
)

func main() {
	const arrivals = 15
	for _, algo := range []online.Algorithm{online.AlgoSOFDA, online.AlgoST} {
		net := topology.Cogent(topology.Config{NumVMs: 200, Seed: 3})
		cfg := online.DefaultCogentConfig()
		cfg.Seed = 99 // same request stream for both algorithms
		sim := online.NewSimulator(net, algo, cfg)
		results := sim.Run(arrivals)
		last := results[len(results)-1]
		rejected := 0
		for _, r := range results {
			if r.Rejected {
				rejected++
			}
		}
		if rejected == arrivals {
			log.Fatalf("%s: every request rejected", algo)
		}
		fmt.Printf("%-6s after %2d arrivals: accumulated cost %10.1f (rejected %d)\n",
			algo, arrivals, last.Accumulated, rejected)
	}
}
