// Online scenario: requests arrive one at a time on the Cogent backbone,
// each priced by the current Fortz–Thorup congestion costs (Section
// VIII-C / Fig. 12). Every arrival is embedded through the simulator's
// long-lived Solver session, so shortest-path state persists across
// requests and is invalidated only by actual cost changes (via the
// network's cost epoch). Prints the accumulated cost of SOFDA vs the
// single-tree baseline over the same arrival sequence, plus each
// session's cache counters.
package main

import (
	"context"
	"fmt"
	"log"

	"sof/internal/online"
	"sof/internal/topology"
)

func main() {
	const arrivals = 15
	ctx := context.Background()
	for _, algo := range []online.Algorithm{online.AlgoSOFDA, online.AlgoST} {
		net := topology.Cogent(topology.Config{NumVMs: 200, Seed: 3})
		cfg := online.DefaultCogentConfig()
		cfg.Seed = 99 // same request stream for both algorithms
		sim := online.NewSimulator(net, algo, cfg)
		results, err := sim.RunCtx(ctx, arrivals)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		last := results[len(results)-1]
		rejected := 0
		for _, r := range results {
			if r.Rejected {
				rejected++
			}
		}
		if rejected == arrivals {
			log.Fatalf("%s: every request rejected", algo)
		}
		stats := sim.Solver().CacheStats()
		fmt.Printf("%-6s after %2d arrivals: accumulated cost %10.1f (rejected %d) | cache: %d Dijkstras, %d hits\n",
			algo, arrivals, last.Accumulated, rejected, stats.Misses, stats.Hits)
	}
}
