// Quickstart: build a tiny network, open a Solver session, embed a 2-VNF
// multicast service with SOFDA, let a third viewer join dynamically, and
// print the forest.
package main

import (
	"context"
	"fmt"
	"log"

	"sof"
)

func main() {
	b := sof.NewNetworkBuilder()
	src := b.AddSwitch("headend")
	transcoder := b.AddVM("transcoder", 2)
	watermark := b.AddVM("watermark", 3)
	edge := b.AddSwitch("edge")
	viewerA := b.AddSwitch("viewer-a")
	viewerB := b.AddSwitch("viewer-b")
	viewerC := b.AddSwitch("viewer-c")
	b.Link(src, transcoder, 1)
	b.Link(transcoder, watermark, 1)
	b.Link(watermark, edge, 1)
	b.Link(edge, viewerA, 1)
	b.Link(edge, viewerB, 1)
	b.Link(edge, viewerC, 2)
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The Solver session owns a shortest-path cache shared by every embed
	// and dynamic operation that follows.
	solver := sof.NewSolver(net)
	forest, err := solver.Embed(context.Background(), sof.Request{
		Sources:      []sof.NodeID{src},
		Destinations: []sof.NodeID{viewerA, viewerB},
		ChainLength:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	setup, conn := forest.Cost()
	fmt.Printf("embedded service forest: total=%.1f (setup=%.1f, connection=%.1f)\n",
		forest.TotalCost(), setup, conn)
	fmt.Printf("trees=%d, VNFs on VMs %v, serving %v\n",
		forest.Trees(), forest.UsedVMs(), forest.Destinations())

	// The join reuses the session's cached trees: no cost changed, so no
	// shortest-path work is repeated.
	delta, err := forest.Join(viewerC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewer-c joined for +%.1f; now serving %d destinations at total %.1f\n",
		delta, len(forest.Destinations()), forest.TotalCost())
	if err := forest.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("forest remains feasible")
}
