module sof

go 1.24
