package analysis

// All returns sofvet's full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		CtxFlow,
		DetOrder,
		EpochSafe,
		PoolBalance,
	}
}
