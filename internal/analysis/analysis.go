// Package analysis is sofvet's static-analysis kernel: a small,
// dependency-free reimplementation of the golang.org/x/tools go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a package loader and a pragma-
// aware driver, built only on the standard library's go/ast, go/types and
// the go command.
//
// Why not x/tools: this module is deliberately dependency-free, and the
// container builds offline. The subset implemented here is exactly what the
// five sofvet passes need: per-package syntax + full type information, a
// Report sink, and deterministic diagnostic ordering. Analyzer facts,
// SSA, and result passing between analyzers are out of scope.
//
// The invariants the passes enforce exist to protect the repository's
// central correctness claim: SOFDA's 3ρ-approximation argument (Kuo et al.,
// ICDCS 2017) and the PR 5 dominated-candidate prune rule are proven
// against *bit-identical* forest costs, which in turn require deterministic
// tie-breaking (detorder), strict cost-epoch hygiene (epochsafe), honest
// cancellation (ctxflow), panic-safe arena recycling (poolbalance) and
// race-free counters (atomicfield).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer closely enough that a future
// migration to the real framework is mechanical.
type Analyzer struct {
	// Name is the pass name used in diagnostics and //sofvet:ignore
	// pragmas. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: what the pass enforces and why.
	Doc string
	// Run analyzes one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and types to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed non-test Go files, in file-name
	// order. Test files are excluded on purpose: the invariants guard
	// production code paths, and tests legitimately break several of them
	// (plain reads of counters, Background contexts, ad-hoc ordering).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// objectOf resolves an identifier to its object via Uses then Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgPathOf returns the import path of an object's package, "" for
// builtins and package-less objects.
func pkgPathOf(o types.Object) string {
	if o == nil || o.Pkg() == nil {
		return ""
	}
	return o.Pkg().Path()
}

// isPkgFunc reports whether call is a call of the package-level function
// pkgPath.name (e.g. context.Background).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := objectOf(info, sel.Sel)
	f, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return f.Name() == name && pkgPathOf(f) == pkgPath
}

// namedOrPointee unwraps pointers and aliases down to a *types.Named, or
// nil when t is not (a pointer to) a named type.
func namedOrPointee(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPointee(t)
	if n == nil {
		return false
	}
	o := n.Obj()
	return o.Name() == name && pkgPathOf(o) == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}

// firstParamIsContext reports whether sig's first parameter is a
// context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// hasContextParam reports whether any parameter of sig (including
// variadic) is a context.Context.
func hasContextParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
