// Package analysistest runs sofvet analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` expectations — a
// stdlib-only re-creation of golang.org/x/tools' package of the same name
// (which this module deliberately does not depend on).
//
// Fixture packages live under testdata/src/<importpath> next to the test,
// following the upstream convention, so the go tool never builds them and
// their deliberate violations cannot leak into the real tree. A line that
// should be flagged carries a trailing comment of the form
//
//	code() // want "first diagnostic regexp" "second regexp"
//
// Each diagnostic reported on that line must match one unconsumed want
// pattern, each pattern must be matched exactly once, and diagnostics on
// lines with no want comment are failures — so fixtures pin both the
// positive and the negative behavior of a pass.
package analysistest

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sof/internal/analysis"
)

// moduleRoot locates the enclosing module's root directory (the fixture
// loader needs it to harvest export data for real packages fixtures import).
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("analysistest: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		t.Fatalf("analysistest: not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod)
}

// NewLoader builds a fixture-aware loader rooted at testdata/src under dir
// (usually analysis' own package directory).
func NewLoader(t *testing.T, dir string) *analysis.Loader {
	t.Helper()
	l, err := analysis.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l.FixtureRoot = filepath.Join(dir, "testdata", "src")
	return l
}

// Run loads the fixture package at testdata/src/<path>, runs one analyzer
// over it raw (no //sofvet:ignore suppression — that is the driver's job,
// tested separately), and checks the diagnostics against the fixture's
// want comments.
func Run(t *testing.T, loader *analysis.Loader, a *analysis.Analyzer, path string) {
	t.Helper()
	pkg, err := loader.LoadFixture(path)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	var got []analysis.Finding
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      loader.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			got = append(got, analysis.Finding{
				Analyzer: a.Name,
				Pos:      loader.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, loader, pkg)
	for _, f := range got {
		key := lineKey{file: f.Pos.Filename, line: f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: %s:%d: no diagnostic matched want %q", a.Name, key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the quoted patterns out of a want comment. Patterns are
// Go-quoted-ish: double-quoted with no embedded escapes needed for our
// fixtures (keep them simple).
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, loader *analysis.Loader, pkg *analysis.Package) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				ms := wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1)
				if len(ms) == 0 {
					t.Fatalf("analysistest: %s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// Findings is a convenience for driver-level tests: it loads a fixture and
// runs the full suppression-aware driver over it, returning finding strings
// of the form "file:line:col: [pass] message" with the testdata path prefix
// trimmed for stable comparison.
func Findings(t *testing.T, loader *analysis.Loader, analyzers []*analysis.Analyzer, path string) []string {
	t.Helper()
	pkg, err := loader.LoadFixture(path)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fs := analysis.RunAnalyzers(loader.Fset, []*analysis.Package{pkg}, analyzers)
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		s := f.String()
		if rel, err := filepath.Rel(loader.FixtureRoot, f.Pos.Filename); err == nil {
			s = fmt.Sprintf("%s:%d:%d: [%s] %s", filepath.ToSlash(rel), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
		out = append(out, s)
	}
	return out
}
