package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicField flags struct fields that are accessed through sync/atomic
// functions somewhere and read or written plainly somewhere else in the
// same package.
//
// A field like a hit counter that is atomic.AddUint64'd on the hot path
// and `s.hits` elsewhere is a data race the moment two goroutines touch
// it — exactly the bug class -race catches only when a test happens to
// interleave. The repository's counters (the chain oracle's hit/miss
// pair, dist's StreamStats) migrated to typed atomics (atomic.Uint64),
// which are safe by construction; this pass keeps any future
// function-style atomic from regressing into mixed access. The analysis
// is per package, which covers every unexported field; struct-literal
// keys are exempt (initialization before publication).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Sweep 1: fields whose address feeds a sync/atomic call, and the
	// exact selector nodes already inside such calls.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic site
	inAtomic := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := objectOf(info, sel.Sel).(*types.Func)
			if !ok || pkgPathOf(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(info, fsel); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
					inAtomic[fsel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Sweep 2: every other selector resolving to one of those fields is a
	// plain (racy) access.
	type plain struct {
		pos token.Pos
		fld *types.Var
	}
	var plains []plain
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fsel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomic[fsel] {
				return true
			}
			fld := fieldOf(info, fsel)
			if fld == nil {
				return true
			}
			if _, isAtomic := atomicFields[fld]; isAtomic {
				plains = append(plains, plain{pos: fsel.Pos(), fld: fld})
			}
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
	for _, p := range plains {
		pass.Reportf(p.pos,
			"field %s is accessed with sync/atomic at %s but plainly here: this races; use sync/atomic (or a typed atomic) everywhere",
			p.fld.Name(), pass.Fset.Position(atomicFields[p.fld]))
	}
	return nil
}

// fieldOf resolves sel to a struct field object, nil otherwise.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := objectOf(info, sel.Sel).(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
