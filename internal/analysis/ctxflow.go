package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxflowScope lists the import-path prefixes the pass polices. The four
// internal packages are the ones every embed request flows through: a
// context dropped there severs cancellation for the whole pipeline
// (PR 2 made every solver observe ctx at branch granularity; PR 4/5 lean
// on prompt cancellation to abort in-flight RPC exchanges). The bare
// "ctxflow" prefix admits the analysistest fixtures.
var ctxflowScope = []string{
	"sof/internal/core",
	"sof/internal/chain",
	"sof/internal/dist",
	"sof/internal/graph",
	"ctxflow",
}

// CtxFlow enforces context propagation in the solver's internal packages:
//
//   - context.Background()/context.TODO() must not be introduced inside
//     internal/{core,chain,dist,graph} call paths. The only admitted shape
//     is the nil-guard idiom (`if ctx == nil { ctx = context.Background() }`
//     or `... { return context.Background() }`), which normalizes a
//     caller-supplied nil rather than severing a live context.
//   - an exported function or method that itself calls a context-taking
//     function must accept a context.Context and forward it; otherwise its
//     callers can never cancel the work it starts. The one exempt shape is
//     the documented compat wrapper `func F(...)` delegating to its own
//     `FCtx`/`FContext` sibling — the Background it passes is still
//     flagged by the first rule, so each wrapper carries exactly one
//     pragma.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "internal solver/cluster code must accept and forward context.Context, never mint context.Background()/TODO()",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	path := pass.Pkg.Path()
	inScope := false
	for _, p := range ctxflowScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		checkBackgroundCalls(pass, f)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				checkExportedEntryPoint(pass, fd)
			}
		}
	}
	return nil
}

// checkBackgroundCalls flags context.Background()/TODO() calls outside
// the nil-guard idiom.
func checkBackgroundCalls(pass *Pass, f *ast.File) {
	// Walk with an explicit parent stack so the nil-guard shape can be
	// recognized from the call site upward.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case isPkgFunc(pass.TypesInfo, call, "context", "Background"):
			name = "context.Background"
		case isPkgFunc(pass.TypesInfo, call, "context", "TODO"):
			name = "context.TODO"
		default:
			return true
		}
		if isNilGuard(pass, stack, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s() introduced in %s: accept and forward the caller's context instead (only the `if ctx == nil` guard may mint one)",
			name, pass.Pkg.Path())
		return true
	}
	ast.Inspect(f, visit)
}

// isNilGuard reports whether the Background/TODO call at the top of stack
// is the nil-normalization idiom: directly inside an `if x == nil` whose
// x is a context.Context, as either `x = context.Background()` or
// `return context.Background()`.
func isNilGuard(pass *Pass, stack []ast.Node, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	var guarded *ast.Ident // the nil-checked context variable, if found

	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			continue
		}
		var id *ast.Ident
		if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && x.Name != "nil" {
			id = x
		} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && y.Name != "nil" {
			id = y
		}
		if id == nil {
			continue
		}
		if obj := objectOf(info, id); obj != nil && isContextType(obj.Type()) {
			guarded = id
			break
		}
	}
	if guarded == nil {
		return false
	}
	// The call must be the sole RHS of `guarded = <call>` or the value of
	// a return statement within the guard.
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			for j, rhs := range s.Rhs {
				if ast.Unparen(rhs) == call && j < len(s.Lhs) {
					if lhs, ok := ast.Unparen(s.Lhs[j]).(*ast.Ident); ok {
						return objectOf(info, lhs) == objectOf(info, guarded)
					}
				}
			}
			return false
		case *ast.ReturnStmt:
			return true
		}
	}
	return false
}

// checkExportedEntryPoint flags exported functions that start context-
// aware work without accepting a context themselves.
func checkExportedEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	if hasContextParam(obj.Signature()) {
		return
	}
	var offending *ast.CallExpr
	var calleeName string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if offending != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return true
		}
		t := pass.TypesInfo.Types[call.Fun].Type
		sig, ok := t.(*types.Signature)
		if !ok || !firstParamIsContext(sig) {
			return true
		}
		// The sanctioned compat-wrapper idiom: F delegates to FCtx or
		// FContext. The Background argument it passes is still policed
		// by the other rule.
		if name == fd.Name.Name+"Ctx" || name == fd.Name.Name+"Context" {
			return true
		}
		offending = call
		calleeName = name
		return false
	})
	if offending != nil {
		pass.Reportf(fd.Name.Pos(),
			"exported %s calls context-taking %s but accepts no context.Context; callers cannot cancel the work it starts",
			fd.Name.Name, calleeName)
	}
}
