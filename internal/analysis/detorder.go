package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder flags map iteration whose per-iteration effects land in an
// ordered structure, making the output depend on Go's randomized map
// order.
//
// The SOFDA pipeline's equivalence proofs (distributed == centralized,
// streamed == batch, eager == inline) and the dominated-candidate prune
// rule all assume deterministic tie-breaking; a map-ordered append or
// winner selection silently breaks bit-identical costs on retry. Flagged
// shapes, for `range m` where m is a map:
//
//   - an append to a slice declared outside the loop (directly, or through
//     a closure called from the body) with no sort of that slice later in
//     the function;
//   - a send on a channel declared outside the loop;
//   - the range *key* assigned to a variable declared outside the loop
//     (nondeterministic winner selection among ties).
//
// Value-only aggregation (sums, maxima of the values) is not flagged:
// those are order-independent. The fix is almost always to collect and
// sort the keys, then range over the sorted slice.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "map iteration must not feed ordered output without a deterministic sort between",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapOrder(pass, fd)
		}
	}
	return nil
}

func checkFuncMapOrder(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Closures bound to a variable whose body appends to state declared
	// outside themselves: calling one per map iteration writes in map
	// order just as surely as an inline append.
	appendingClosures := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			fl, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := objectOf(info, id)
			if obj != nil && closureWritesOrderedState(pass, fl) {
				appendingClosures[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs, appendingClosures)
		return true
	})
}

// declaredOutside reports whether obj was declared outside the [lo,hi]
// source range (i.e. outside the loop whose effects we are judging).
func declaredOutside(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && (obj.Pos() < lo || obj.Pos() > hi)
}

func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, appendingClosures map[types.Object]bool) {
	info := pass.TypesInfo
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = objectOf(info, id)
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objectOf(info, id)
				if !declaredOutside(obj, rs.Pos(), rs.End()) {
					continue
				}
				// s = append(s, ...): ordered output accumulation.
				if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) {
					if !sortedAfter(pass, fd, rs, obj) {
						pass.Reportf(n.Pos(),
							"append to %q inside map iteration: output order follows randomized map order; sort the keys first or sort %q afterwards",
							id.Name, id.Name)
					}
					continue
				}
				// conflict = k: winner selection tie-broken by map order.
				if keyObj != nil && n.Tok == token.ASSIGN && i < len(n.Rhs) && exprIsObject(info, n.Rhs[i], keyObj) {
					pass.Reportf(n.Pos(),
						"map key %q assigned to outer variable %q inside map iteration: winner selection among ties follows randomized map order; iterate sorted keys",
						keyObj.Name(), id.Name)
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Chan).(*ast.Ident); ok {
				obj := objectOf(info, id)
				if declaredOutside(obj, rs.Pos(), rs.End()) {
					pass.Reportf(n.Pos(),
						"send on %q inside map iteration: emission order follows randomized map order; iterate sorted keys", id.Name)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj := objectOf(info, id); obj != nil && appendingClosures[obj] {
					pass.Reportf(n.Pos(),
						"call to %q inside map iteration appends to ordered state declared outside it; iterate sorted keys", id.Name)
				}
			}
		}
		return true
	})
}

// closureWritesOrderedState reports whether fl's body appends to a slice
// or sends on a channel declared outside the closure itself.
func closureWritesOrderedState(pass *Pass, fl *ast.FuncLit) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				target := ast.Unparen(lhs)
				var obj types.Object
				switch t := target.(type) {
				case *ast.Ident:
					obj = objectOf(info, t)
				case *ast.SelectorExpr:
					obj = objectOf(info, t.Sel)
				}
				if obj == nil && target != nil {
					continue
				}
				if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) && declaredOutside(obj, fl.Pos(), fl.End()) {
					found = true
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Chan).(*ast.Ident); ok {
				if obj := objectOf(info, id); declaredOutside(obj, fl.Pos(), fl.End()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isAppendCall reports whether e is a call of the append builtin.
func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// exprIsObject reports whether e is (possibly parenthesized or wrapped in
// a single-argument conversion of) an identifier denoting obj.
func exprIsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		// T(k) conversions keep the key's identity for ordering purposes.
		if info.Types[call.Fun].IsType() {
			e = ast.Unparen(call.Args[0])
		}
	}
	id, ok := e.(*ast.Ident)
	return ok && objectOf(info, id) == obj
}

// sortedAfter reports whether, lexically after the loop within the same
// function, obj appears as an argument of a sort/slices ordering call —
// the canonical "collect then sort" repair.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := objectOf(info, sel.Sel).(*types.Func)
		if !ok {
			return true
		}
		if p := pkgPathOf(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && objectOf(info, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
