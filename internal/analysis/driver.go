package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// PragmaPrefix marks an in-source suppression. The full form is
//
//	//sofvet:ignore <pass> <reason...>
//
// placed either at the end of the offending line or on its own line
// directly above it. One pragma suppresses exactly one diagnostic of the
// named pass; a second diagnostic on the same line needs a second pragma.
// Malformed pragmas (missing pass or reason), pragmas naming a pass the
// driver is not running, and pragmas that suppress nothing are themselves
// findings — every suppression in the tree stays greppable, justified,
// and alive.
const PragmaPrefix = "//sofvet:ignore"

// DriverName is the analyzer name under which the driver reports pragma
// hygiene findings. Driver findings cannot be suppressed by pragmas.
const DriverName = "sofvet"

// Finding is one post-suppression diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// pragma is one parsed //sofvet:ignore comment.
type pragma struct {
	pos    token.Position // of the comment itself
	pass   string
	reason string
	used   bool
}

// RunAnalyzers runs every analyzer over every package, applies
// //sofvet:ignore suppressions, and returns the surviving findings plus
// any pragma-hygiene findings, sorted by position.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, runOne(fset, pkg, analyzers, known)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func runOne(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, known map[string]bool) []Finding {
	var diags []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			diags = append(diags, Finding{Analyzer: name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Finding{
				Analyzer: DriverName,
				Pos:      token.Position{Filename: pkg.Path},
				Message:  fmt.Sprintf("analyzer %s failed: %v", name, err),
			})
		}
	}

	pragmas, hygiene := collectPragmas(fset, pkg, known)

	// Suppression: walk diagnostics in source order; each one consumes the
	// first unused pragma of its pass that targets its line. A pragma on
	// line L targets lines L (trailing comment) and L+1 (standalone
	// comment above the flagged statement).
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	var kept []Finding
	for _, d := range diags {
		if d.Analyzer == DriverName {
			kept = append(kept, d)
			continue
		}
		suppressed := false
		for _, pr := range pragmas {
			if pr.used || pr.pass != d.Analyzer || pr.pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == pr.pos.Line || d.Pos.Line == pr.pos.Line+1 {
				pr.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, pr := range pragmas {
		if !pr.used {
			kept = append(kept, Finding{
				Analyzer: DriverName,
				Pos:      pr.pos,
				Message:  fmt.Sprintf("unused %s pragma for pass %q: no diagnostic on this or the next line to suppress", PragmaPrefix, pr.pass),
			})
		}
	}
	return append(kept, hygiene...)
}

// collectPragmas scans a package's comments for //sofvet:ignore pragmas.
// Well-formed pragmas naming a known pass are returned for suppression
// matching; everything malformed comes back as hygiene findings.
func collectPragmas(fset *token.FileSet, pkg *Package, known map[string]bool) ([]*pragma, []Finding) {
	var pragmas []*pragma
	var hygiene []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, PragmaPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, PragmaPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //sofvet:ignoreepochsafe — not a pragma.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					hygiene = append(hygiene, Finding{
						Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("malformed %s pragma: want %q", PragmaPrefix, PragmaPrefix+" <pass> <reason>"),
					})
				case !known[fields[0]]:
					hygiene = append(hygiene, Finding{
						Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("%s pragma names unknown pass %q (known: %s)", PragmaPrefix, fields[0], knownNames(known)),
					})
				case len(fields) == 1:
					hygiene = append(hygiene, Finding{
						Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("%s pragma for pass %q has no reason; every suppression must say why", PragmaPrefix, fields[0]),
					})
				default:
					pragmas = append(pragmas, &pragma{
						pos:    pos,
						pass:   fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return pragmas, hygiene
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
