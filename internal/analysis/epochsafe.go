package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// graphPkgPath is the package owning the cost-epoch discipline; writes
// inside it are the implementation and exempt.
const graphPkgPath = "sof/internal/graph"

// costMutators are the sanctioned cost-mutation entry points. Any of them
// advances (or may advance) the cost epoch, so epoch values captured
// before a call are stale after it.
var costMutators = map[string]bool{
	"SetEdgeCost":     true,
	"SetNodeCost":     true,
	"BumpCostEpoch":   true,
	"SetLinkCost":     true, // sof.Network wrapper
	"SetVMCost":       true, // sof.Network wrapper
	"InvalidateCache": true, // chain.Oracle / dist.Cluster: thin epoch bump
	// Failure injection changes the effective cost surface (failed elements
	// price as unreachable) and bumps the epoch like any cost write.
	"FailEdge":           true,
	"FailNode":           true,
	"RestoreEdge":        true,
	"RestoreNode":        true,
	"RestoreAll":         true,
	"FailLink":           true, // sof.Solver wrappers
	"FailVM":             true,
	"RestoreLink":        true,
	"RestoreVM":          true,
	"RestoreAllFailures": true,
	// Capacity masks share the failure representation: masking a saturated
	// element reprices it as unreachable, so these bump the epoch too.
	"MaskEdge":   true,
	"MaskNode":   true,
	"UnmaskEdge": true,
	"UnmaskNode": true,
	"UnmaskAll":  true,
}

// EpochSafe flags cost-state writes that bypass the graph package's
// epoch-advancing setters, and cost-epoch values cached across a mutation.
//
// Every epoch-keyed cache (the oracle's Dijkstra trees, solved chains, the
// CSR max-cost memo) trusts that CostEpoch() identifies the cost surface
// exactly. A write to a Node.Cost/Edge.Cost field outside package graph
// either mutates a stale copy (silent no-op) or, if it ever reached live
// state, would change costs without advancing the epoch — serving
// bit-wrong cached trees. Likewise an epoch read before SetEdgeCost/
// SetNodeCost/BumpCostEpoch names a cost surface that no longer exists.
//
// Failure state is under the same discipline: FailState snapshots are
// immutable by contract (traversals read them lock-free through an atomic
// pointer), so a write to a FailState's Edges/Nodes bitsets outside
// package graph mutates a snapshot concurrent readers may hold and skips
// the epoch bump FailEdge/FailNode/Restore* provide.
var EpochSafe = &Analyzer{
	Name: "epochsafe",
	Doc: "graph cost and failure state must change only through the epoch-advancing " +
		"setters (SetEdgeCost/SetNodeCost/BumpCostEpoch, FailEdge/FailNode/Restore*), " +
		"and a captured CostEpoch value must not be reused across a mutation",
	Run: runEpochSafe,
}

func runEpochSafe(pass *Pass) error {
	path := pass.Pkg.Path()
	inGraph := path == graphPkgPath || path == "graph" || strings.HasSuffix(path, "/graph")
	for _, f := range pass.Files {
		if !inGraph {
			checkCostWrites(pass, f)
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !inGraph {
				checkEpochReuse(pass, fd)
			}
			// The lock-staleness rule runs everywhere, the graph package
			// included: its own epoch-keyed memos (the delta-stepping
			// light/heavy partition) are under the same discipline.
			checkEpochLockStaleness(pass, fd)
		}
	}
	return nil
}

// checkCostWrites flags assignments and ++/-- on Cost fields of
// graph.Node / graph.Edge values, and on the Edges/Nodes failure bitsets
// of a graph.FailState (whole-field or per-element), outside the graph
// package.
func checkCostWrites(pass *Pass, f *ast.File) {
	flag := func(x ast.Expr) {
		x = ast.Unparen(x)
		// fs.Edges[i] = ... writes an element of the bitset; the offending
		// selector is the index expression's base.
		if ix, ok := x.(*ast.IndexExpr); ok {
			x = ast.Unparen(ix.X)
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return
		}
		t := pass.TypesInfo.Types[sel.X].Type
		if t == nil {
			return
		}
		switch sel.Sel.Name {
		case "Cost":
			if isNamedType(t, graphPkgPath, "Node") || isNamedType(t, graphPkgPath, "Edge") {
				pass.Reportf(sel.Pos(),
					"direct write to %s.Cost outside package graph: it mutates a copy and bypasses the cost epoch; use SetEdgeCost/SetNodeCost",
					namedOrPointee(t).Obj().Name())
			}
		case "Edges", "Nodes":
			if isNamedType(t, graphPkgPath, "FailState") {
				pass.Reportf(sel.Pos(),
					"direct write to FailState.%s outside package graph: snapshots are immutable for lock-free readers and the write skips the epoch bump; use FailEdge/FailNode/RestoreEdge/RestoreNode/RestoreAll",
					sel.Sel.Name)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(n.X)
		}
		return true
	})
}

// checkEpochReuse flags, within one function, any use of a variable
// holding a CostEpoch() result lexically after a sanctioned cost-mutation
// call. Lexical order approximates control flow: it is exact for straight-
// line code and conservative-enough in practice for this code base; a
// deliberate reuse takes a //sofvet:ignore pragma.
func checkEpochReuse(pass *Pass, fd *ast.FuncDecl) {
	type capture struct {
		obj types.Object
		pos token.Pos
	}
	var captures []capture
	var mutations []token.Pos
	// LHS idents of the captures themselves: re-reading the epoch into the
	// same variable after a mutation is the repair, not a reuse.
	captureLHS := make(map[token.Pos]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isMethodNamed(call, "CostEpoch") {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := objectOf(pass.TypesInfo, id); obj != nil {
							captures = append(captures, capture{obj: obj, pos: n.Pos()})
							captureLHS[id.Pos()] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && costMutators[sel.Sel.Name] {
				mutations = append(mutations, n.Pos())
			}
		}
		return true
	})
	if len(captures) == 0 || len(mutations) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || captureLHS[id.Pos()] {
			return true
		}
		// The latest capture before this use governs: a re-read after the
		// mutation refreshes the variable and clears the staleness.
		var last token.Pos = token.NoPos
		for _, c := range captures {
			if c.obj == obj && c.pos < id.Pos() && c.pos > last {
				last = c.pos
			}
		}
		if last == token.NoPos {
			return true
		}
		for _, m := range mutations {
			if last < m && m < id.Pos() {
				pass.Reportf(id.Pos(),
					"cost epoch %q captured before a cost mutation is reused after it; re-read CostEpoch() after SetEdgeCost/SetNodeCost/BumpCostEpoch",
					id.Name)
				return true
			}
		}
		return true
	})
}

// isMethodNamed reports whether call is a method call (or selector call)
// with the given name and no arguments.
func isMethodNamed(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name && len(call.Args) == 0
}

// checkEpochLockStaleness flags an epoch value captured before a mutex
// acquisition and used after it without a re-read. The window between the
// capture and the Lock admits a concurrent cost mutation; publishing
// state stamped with the pre-lock epoch then serves the new costs under
// the old epoch's name. The delta-stepping partition memo is the
// canonical shape: deltaLayoutFor re-reads g.epoch.Load() under deltaMu
// before building, and every epoch-keyed cache filled under a lock must
// do the same. A capture feeding only the fast-path check before the
// lock is fine; it is the *reuse after the Lock* that is flagged. Like
// checkEpochReuse, lexical order approximates control flow; a deliberate
// pre-lock epoch takes a //sofvet:ignore pragma.
func checkEpochLockStaleness(pass *Pass, fd *ast.FuncDecl) {
	type capture struct {
		obj types.Object
		pos token.Pos
	}
	var captures []capture
	var locks []token.Pos
	captureLHS := make(map[token.Pos]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isEpochRead(pass, call) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := objectOf(pass.TypesInfo, id); obj != nil {
							captures = append(captures, capture{obj: obj, pos: n.Pos()})
							captureLHS[id.Pos()] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isMutexLock(pass, n) {
				locks = append(locks, n.Pos())
			}
		}
		return true
	})
	if len(captures) == 0 || len(locks) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || captureLHS[id.Pos()] {
			return true
		}
		var last token.Pos = token.NoPos
		for _, c := range captures {
			if c.obj == obj && c.pos < id.Pos() && c.pos > last {
				last = c.pos
			}
		}
		if last == token.NoPos {
			return true
		}
		for _, l := range locks {
			if last < l && l < id.Pos() {
				pass.Reportf(id.Pos(),
					"epoch %q captured before a mutex Lock is used after it; a mutation can land while waiting for the lock — re-read the epoch under the lock before keying cached state on it",
					id.Name)
				return true
			}
		}
		return true
	})
}

// isEpochRead matches the two epoch-read shapes: the public CostEpoch()
// accessor and the graph package's own g.epoch.Load().
func isEpochRead(pass *Pass, call *ast.CallExpr) bool {
	if isMethodNamed(call, "CostEpoch") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "epoch"
}

// isMutexLock matches Lock/RLock calls on sync.Mutex / sync.RWMutex
// receivers (fields included).
func isMutexLock(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") || len(call.Args) != 0 {
		return false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return false
	}
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}
