package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path    string
	Dir     string
	GoFiles []string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages from source, resolving imports
// through compiled export data produced by `go list -export` — the same
// data the go build cache already holds, so a warm run does no compiling.
//
// Two kinds of packages are loaded from source: the analysis targets
// themselves (the passes need syntax trees and per-node type info, which
// export data cannot provide) and, in tests, fixture packages rooted under
// a testdata/src directory (which the go command refuses to list).
// Everything else — the standard library and module packages referenced as
// mere dependencies — comes from export data.
type Loader struct {
	Fset *token.FileSet
	// ModuleDir is the module root the export map was computed in.
	ModuleDir string
	// FixtureRoot, when non-empty, is a directory whose subdirectories
	// are importable as packages by their path relative to it (the
	// analysistest testdata/src convention). Fixture imports win over
	// export data so fixtures can shadow real packages.
	FixtureRoot string

	exports   map[string]string // import path -> export data file
	loaded    map[string]*Package
	importing map[string]bool
	gc        types.Importer
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

func runGoList(moduleDir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// NewLoader builds a loader for the module rooted at moduleDir. It runs
// one `go list -export -deps` over the whole module (plus a few standard-
// library roots fixtures are allowed to import), recording where the go
// build cache keeps each dependency's export data.
func NewLoader(moduleDir string) (*Loader, error) {
	entries, err := runGoList(moduleDir,
		"-e", "-export", "-deps", "-json=ImportPath,Export,Error",
		"./...",
		// Fixture packages may import standard-library packages the
		// module itself happens not to depend on; list the plausible
		// ones explicitly so their export data is on hand.
		"context", "sort", "strings", "sync", "sync/atomic", "fmt", "sort", "strconv")
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:      token.NewFileSet(),
		ModuleDir: moduleDir,
		exports:   make(map[string]string, len(entries)),
		loaded:    make(map[string]*Package),
		importing: make(map[string]bool),
	}
	for _, e := range entries {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("sofvet: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// LoadPatterns expands go package patterns (./..., specific import paths)
// and loads every matched package from source. Patterns with no Go files
// are skipped; listing errors are returned.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	entries, err := runGoList(l.ModuleDir,
		append([]string{"-e", "-json=ImportPath,Dir,Name,GoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("sofvet: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		p, err := l.loadSource(e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadFixture loads the fixture package at FixtureRoot/<path>, where path
// doubles as the package's import path (analysistest convention).
func (l *Loader) LoadFixture(path string) (*Package, error) {
	if l.FixtureRoot == "" {
		return nil, errors.New("sofvet: loader has no FixtureRoot configured")
	}
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sofvet: fixture package %q: %v", path, err)
	}
	var files []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") && !strings.HasSuffix(de.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, de.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("sofvet: fixture package %q has no Go files", path)
	}
	return l.loadSource(path, dir, files)
}

// loadSource parses and type-checks one package from its source files.
func (l *Loader) loadSource(path, dir string, filenames []string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.importing[path] {
		return nil, fmt.Errorf("sofvet: import cycle through %q", path)
	}
	l.importing[path] = true
	defer delete(l.importing, path)

	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("sofvet: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("sofvet: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	p := &Package{Path: path, Dir: dir, GoFiles: filenames, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = p
	return p, nil
}

// loaderImporter adapts Loader to types.Importer for use while
// type-checking: fixtures from source, everything else from export data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Export data first, even for packages this loader has also checked
	// from source: two targets importing a common dependency must see ONE
	// types.Package for it, and the export-data importer's internal cache
	// guarantees that, while mixing source-loaded and export-loaded views
	// of the same path would make identical named types non-identical.
	if _, ok := l.exports[path]; ok {
		return l.gc.Import(path)
	}
	// A fixture package (or one of its siblings), importable by its
	// testdata-relative path. These never have export data.
	if p, ok := l.loaded[path]; ok {
		return p.Types, nil
	}
	if l.FixtureRoot != "" {
		if st, err := os.Stat(filepath.Join(l.FixtureRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
			p, err := l.LoadFixture(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return nil, fmt.Errorf("sofvet: cannot resolve import %q (no export data; not a fixture)", path)
}
