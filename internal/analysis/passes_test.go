package analysis_test

import (
	"strings"
	"sync"
	"testing"

	"sof/internal/analysis"
	"sof/internal/analysis/analysistest"
)

// One loader for the whole test binary: NewLoader shells out to `go list
// -export -deps` over the module, and fixture type-checking is cached per
// import path, so sharing it keeps the suite well under the CI budget.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader = analysistest.NewLoader(t, ".")
	})
	if loader == nil {
		t.Fatal("loader failed to initialize in an earlier test")
	}
	return loader
}

func TestEpochSafe(t *testing.T) {
	analysistest.Run(t, sharedLoader(t), analysis.EpochSafe, "epochsafe")
}

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, sharedLoader(t), analysis.DetOrder, "detorder")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, sharedLoader(t), analysis.CtxFlow, "ctxflow")
}

func TestPoolBalance(t *testing.T) {
	analysistest.Run(t, sharedLoader(t), analysis.PoolBalance, "poolbalance")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, sharedLoader(t), analysis.AtomicField, "atomicfield")
}

// TestDriverPragmas pins the driver contract on the pragmas fixture: a
// well-formed pragma (standalone-above or trailing) suppresses exactly one
// diagnostic of its pass, and every hygiene failure — missing reason,
// unknown pass, unused pragma, bare pragma — is a finding of its own.
func TestDriverPragmas(t *testing.T) {
	got := analysistest.Findings(t, sharedLoader(t), analysis.All(), "pragmas")

	type expect struct {
		line     int
		analyzer string
		substr   string
	}
	expected := []expect{
		// Line 12 (append to a) is suppressed by the pragma on line 11;
		// line 13's identical violation must survive — one pragma, one diag.
		{13, "detorder", `append to "b"`},
		// The reason-less pragma is hygiene...
		{30, "sofvet", "has no reason"},
		// ...and suppresses nothing, so its target survives too.
		{31, "detorder", `append to "out"`},
		{36, "sofvet", `unknown pass "nosuchpass"`},
		{39, "sofvet", "unused"},
		{42, "sofvet", "malformed"},
	}
	if len(got) != len(expected) {
		t.Fatalf("driver produced %d findings, want %d:\n%s", len(got), len(expected), strings.Join(got, "\n"))
	}
	for i, e := range expected {
		f := got[i]
		wantPrefix := "pragmas/pragmas.go:" + itoa(e.line) + ":"
		if !strings.HasPrefix(f, wantPrefix) || !strings.Contains(f, "["+e.analyzer+"]") || !strings.Contains(f, e.substr) {
			t.Errorf("finding %d = %q; want line %d, analyzer %s, containing %q", i, f, e.line, e.analyzer, e.substr)
		}
	}
	// The suppressed diagnostics must be gone entirely.
	for _, f := range got {
		if strings.Contains(f, `append to "a"`) || strings.Contains(f, `send on "ch"`) {
			t.Errorf("suppressed diagnostic leaked through: %q", f)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
