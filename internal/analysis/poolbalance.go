package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolBalance checks that every sync.Pool.Get is balanced by a *deferred*
// Put of the same pool in the same function, unless the value escapes
// (returned, stored into a field/global/element, or sent on a channel) —
// the acquire/release API shape, where the release side owns the Put.
//
// Why deferred: the graph arena code recycles Dijkstra scratch whose heap
// positions and generation marks are self-restoring; a panic between a
// plain Get/Put pair silently drops the arena, and worse, a recovered
// panic can leave a half-restored arena out of the pool on one path and
// re-Put on another. `defer pool.Put(x)` is panic-safe by construction
// and costs nothing measurable on modern Go.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc:  "every sync.Pool.Get must reach a deferred Put on all return paths, unless the value escapes to a release API",
	Run:  runPoolBalance,
}

func runPoolBalance(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkPoolFunc(pass, fn.Body)
				}
				// Nested FuncLits are checked as their own functions
				// below; checkPoolFunc itself skips them.
			case *ast.FuncLit:
				checkPoolFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// poolGet is one pool.Get() call found in a function body.
type poolGet struct {
	call *ast.CallExpr
	pool string       // rendered pool expression, e.g. "arenaPool" or "s.pool"
	obj  types.Object // variable the value is bound to (nil if discarded)
}

// checkPoolFunc audits one function body (excluding nested function
// literals, which are audited separately with their own return paths).
func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var gets []poolGet
	deferredPuts := make(map[string]bool) // pool expr -> has deferred Put
	plainWorkerPuts := make(map[string]token.Pos)

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Worker-pool scratch: scratch handed to a spawned worker is
			// balanced only by a Put *deferred inside that worker* — a
			// plain Put in the goroutine body drops the scratch when the
			// worker panics, exactly like the single-function case.
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.DeferStmt:
						if pool, ok := poolMethodCall(info, m.Call, "Put"); ok {
							deferredPuts[pool] = true
						}
						return false
					case *ast.CallExpr:
						if pool, ok := poolMethodCall(info, m, "Put"); ok {
							if _, seen := plainWorkerPuts[pool]; !seen {
								plainWorkerPuts[pool] = m.Pos()
							}
						}
					}
					return true
				})
			}
		case *ast.DeferStmt:
			// defer pool.Put(x), or defer func() { ...; pool.Put(x); ... }()
			if pool, ok := poolMethodCall(info, n.Call, "Put"); ok {
				deferredPuts[pool] = true
			}
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if pool, ok := poolMethodCall(info, call, "Put"); ok {
							deferredPuts[pool] = true
						}
					}
					return true
				})
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if pool, ok := poolMethodCall(info, call, "Get"); ok {
					gets = append(gets, poolGet{call: call, pool: pool})
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, pool, ok := unwrapGet(info, rhs)
				if !ok {
					continue
				}
				g := poolGet{call: call, pool: pool}
				if i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						g.obj = objectOf(info, id)
					}
				}
				gets = append(gets, g)
			}
		}
		return true
	})

	for _, g := range gets {
		if deferredPuts[g.pool] {
			continue
		}
		if pos, ok := plainWorkerPuts[g.pool]; ok {
			pass.Reportf(pos,
				"%s.Put in a spawned worker is not deferred: a panic in the worker drops the scratch from the pool; use `defer %s.Put(...)` inside the goroutine",
				g.pool, g.pool)
			continue
		}
		if g.obj != nil && escapes(pass, body, g.obj) {
			continue
		}
		what := "its result"
		if g.obj != nil {
			what = g.obj.Name()
		}
		pass.Reportf(g.call.Pos(),
			"%s.Get() without a deferred %s.Put in this function: a panic on any path between Get and Put drops %s from the pool; use `defer %s.Put(...)` or hand the value to a release API",
			g.pool, g.pool, what, g.pool)
	}
}

// inspectShallow walks body but does not descend into function literals:
// their return paths are their own.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// unwrapGet matches `pool.Get()` and `pool.Get().(*T)` expressions.
func unwrapGet(info *types.Info, e ast.Expr) (*ast.CallExpr, string, bool) {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	pool, ok := poolMethodCall(info, call, "Get")
	return call, pool, ok
}

// poolMethodCall reports whether call is sync.Pool method `name` and
// returns the rendered receiver expression as the pool's identity.
func poolMethodCall(info *types.Info, call *ast.CallExpr, name string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	t := info.Types[sel.X].Type
	if t == nil || !isNamedType(t, "sync", "Pool") {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// escapes reports whether obj leaves the function through a return, a
// store into a field/index/global, a channel send, or a composite
// literal — the shapes under which Put responsibility moves elsewhere.
func escapes(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objectOf(info, id) == obj
	}
	// Only the value itself leaving counts: `return a` escapes, but
	// `return len(a.buf)` reads a and still owes the Put here.
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isObj(r) {
					found = true
				}
			}
		case *ast.SendStmt:
			if isObj(n.Value) {
				found = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) || !isObj(n.Rhs[i]) {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					found = true
				case *ast.Ident:
					if o := objectOf(info, target); o != nil && o.Parent() == pass.Pkg.Scope() {
						found = true // stored into a package-level variable
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isObj(el) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
