// Package atomicfield is the fixture for the atomicfield pass: a field
// touched through sync/atomic anywhere must be touched that way
// everywhere in the package.
package atomicfield

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	// label is never atomic; plain access is fine.
	label string
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) hitCount() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) racyRead() int64 {
	return s.hits // want "field hits is accessed with sync/atomic"
}

func (s *stats) racyWrite() {
	s.hits = 0 // want "field hits is accessed with sync/atomic"
}

// misses is only ever touched plainly in this fixture, so it is not an
// atomic field and plain access carries no finding.
func (s *stats) missCount() int64 {
	return s.misses
}

func (s *stats) name() string {
	return s.label
}

// newStats uses struct-literal keys, which are initialization before
// publication and exempt by construction (keys are not selectors).
func newStats() *stats {
	return &stats{hits: 0, misses: 0, label: "fresh"}
}
