// Package ctxflow is the fixture for the ctxflow pass: minted Background/
// TODO contexts and context-less exported entry points are flagged; the
// nil-guard idiom and the documented compat-wrapper shape are not.
package ctxflow

import "context"

func work(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Bad mints a Background where a caller context belongs, and as an
// exported entry point calling context-taking work it is flagged twice.
func Bad(n int) int { // want "exported Bad calls context-taking work but accepts no context.Context"
	return work(context.Background(), n) // want "context.Background.. introduced in ctxflow"
}

func badTODO(n int) int {
	return work(context.TODO(), n) // want "context.TODO.. introduced in ctxflow"
}

// Good accepts and forwards.
func Good(ctx context.Context, n int) int {
	return work(ctx, n)
}

// nilGuardAssign is the sanctioned normalization shape.
func nilGuardAssign(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx, n)
}

// nilGuardReturn is the helper-function variant of the guard.
func nilGuardReturn(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// RunCtx is the context-taking implementation behind the compat wrapper.
func RunCtx(ctx context.Context, n int) int {
	return work(ctx, n)
}

// Run is the compat-wrapper idiom: delegating to its own Ctx sibling is
// exempt from the entry-point rule, but the Background it passes is still
// a finding of the other rule — exactly one pragma per wrapper.
func Run(n int) int {
	return RunCtx(context.Background(), n) // want "context.Background.. introduced in ctxflow"
}
