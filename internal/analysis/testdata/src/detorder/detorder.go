// Package detorder is the fixture for the detorder pass: map-range loops
// feeding ordered output are flagged; value aggregation and the
// collect-then-sort repair are not.
package detorder

import "sort"

func badAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want "append to .out. inside map iteration"
	}
	return out
}

func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func badWinner(m map[int][]int) int {
	best := -1
	for k, list := range m {
		if len(list) > 1 {
			best = k // want "map key .k. assigned to outer variable .best."
		}
	}
	return best
}

func badSend(m map[int]string, ch chan string) {
	for _, v := range m {
		ch <- v // want "send on .ch. inside map iteration"
	}
}

func badClosure(m map[int]string) []string {
	var out []string
	add := func(s string) {
		out = append(out, s)
	}
	for _, v := range m {
		add(v) // want "call to .add. inside map iteration appends"
	}
	return out
}

// valueAggregation is order-independent: sums and maxima of the values do
// not depend on iteration order.
func valueAggregation(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// innerSlice appends to a slice declared inside the loop — each iteration
// gets a fresh one, so order cannot leak out.
func innerSlice(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

// sliceRange is not a map range at all.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
