// Package epochsafe is the fixture for the epochsafe pass: direct cost
// writes and stale epoch reuse are flagged; the sanctioned setters and
// re-read epochs are not.
package epochsafe

import "sof/internal/graph"

func directNodeWrite(g *graph.Graph) {
	n := g.Node(0)
	n.Cost = 5 // want "direct write to Node.Cost outside package graph"
}

func directEdgeWrite(g *graph.Graph) {
	e := g.Edge(0)
	e.Cost = 2.5 // want "direct write to Edge.Cost outside package graph"
}

func incDecWrite(g *graph.Graph) {
	n := g.Node(1)
	n.Cost++ // want "direct write to Node.Cost outside package graph"
}

func sanctionedWrites(g *graph.Graph) {
	g.SetNodeCost(0, 5)
	g.SetEdgeCost(0, 2.5)
	g.BumpCostEpoch()
}

// unrelatedCost proves the pass keys on the receiver type, not the field
// name: a Cost field on a local struct is nobody's business.
type pricing struct{ Cost float64 }

func unrelatedCost(p *pricing) {
	p.Cost = 9
}

func staleEpochReuse(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	g.SetNodeCost(0, 7)
	return epoch // want "captured before a cost mutation is reused after it"
}

func epochRereadIsFine(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	_ = epoch
	g.SetNodeCost(0, 7)
	epoch = g.CostEpoch()
	return epoch
}

func epochNoMutation(g *graph.Graph) (uint64, float64) {
	epoch := g.CostEpoch()
	c := g.NodeCost(0)
	return epoch, c
}
