// Package epochsafe is the fixture for the epochsafe pass: direct cost
// writes, stale epoch reuse, and epoch values carried across a mutex
// acquisition are flagged; the sanctioned setters and re-read epochs are
// not.
package epochsafe

import (
	"sync"
	"sync/atomic"

	"sof/internal/graph"
)

func directNodeWrite(g *graph.Graph) {
	n := g.Node(0)
	n.Cost = 5 // want "direct write to Node.Cost outside package graph"
}

func directEdgeWrite(g *graph.Graph) {
	e := g.Edge(0)
	e.Cost = 2.5 // want "direct write to Edge.Cost outside package graph"
}

func incDecWrite(g *graph.Graph) {
	n := g.Node(1)
	n.Cost++ // want "direct write to Node.Cost outside package graph"
}

func sanctionedWrites(g *graph.Graph) {
	g.SetNodeCost(0, 5)
	g.SetEdgeCost(0, 2.5)
	g.BumpCostEpoch()
}

// unrelatedCost proves the pass keys on the receiver type, not the field
// name: a Cost field on a local struct is nobody's business.
type pricing struct{ Cost float64 }

func unrelatedCost(p *pricing) {
	p.Cost = 9
}

func staleEpochReuse(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	g.SetNodeCost(0, 7)
	return epoch // want "captured before a cost mutation is reused after it"
}

func epochRereadIsFine(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	_ = epoch
	g.SetNodeCost(0, 7)
	epoch = g.CostEpoch()
	return epoch
}

func epochNoMutation(g *graph.Graph) (uint64, float64) {
	epoch := g.CostEpoch()
	c := g.NodeCost(0)
	return epoch, c
}

func directFailStateFieldWrite(fs *graph.FailState) {
	fs.Edges = nil               // want "direct write to FailState.Edges outside package graph"
	fs.Nodes = make([]uint64, 4) // want "direct write to FailState.Nodes outside package graph"
}

func directFailStateElementWrite(fs *graph.FailState) {
	fs.Edges[0] |= 1 // want "direct write to FailState.Edges outside package graph"
	fs.Nodes[2] = 0  // want "direct write to FailState.Nodes outside package graph"
}

func sanctionedFailureWrites(g *graph.Graph) {
	g.FailEdge(0)
	g.FailNode(1)
	g.RestoreEdge(0)
	g.RestoreNode(1)
	g.RestoreAll()
}

func readFailStateIsFine(fs *graph.FailState) bool {
	return fs.EdgeFailed(0) || len(fs.Edges) > 0
}

// unrelatedEdges proves the bitset check keys on the receiver type: an
// Edges field elsewhere is untouched.
type mesh struct{ Edges []uint64 }

func unrelatedEdges(m *mesh) {
	m.Edges = nil
	m.Edges = append(m.Edges, 7)
}

func staleEpochAcrossFailure(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	g.FailEdge(3)
	return epoch // want "captured before a cost mutation is reused after it"
}

func staleEpochAcrossRestore(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	g.RestoreAll()
	return epoch // want "captured before a cost mutation is reused after it"
}

func epochRereadAfterFailureIsFine(g *graph.Graph) uint64 {
	epoch := g.CostEpoch()
	_ = epoch
	g.FailNode(2)
	epoch = g.CostEpoch()
	return epoch
}

// layoutMemo mirrors the epoch-keyed, mutex-rebuilt cache shape the
// lock-staleness rule exists for (the delta-stepping partition memo).
type layoutMemo struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	epoch atomic.Uint64
	built uint64
}

func staleEpochAcrossLock(m *layoutMemo, g *graph.Graph) {
	epoch := g.CostEpoch()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.built = epoch // want "captured before a mutex Lock is used after it"
}

func staleEpochAcrossRLock(m *layoutMemo, g *graph.Graph) bool {
	epoch := g.CostEpoch()
	m.rw.RLock()
	defer m.rw.RUnlock()
	return m.built == epoch // want "captured before a mutex Lock is used after it"
}

// staleLoadAcrossLock covers the graph package's own idiom: the epoch is
// an atomic field read with .Load(), not the public accessor.
func staleLoadAcrossLock(m *layoutMemo) {
	epoch := m.epoch.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.built = epoch // want "captured before a mutex Lock is used after it"
}

// rereadUnderLockIsFine is the sanctioned shape, deltaLayoutFor's: the
// pre-lock read serves the fast path; the build re-reads under the lock.
func rereadUnderLockIsFine(m *layoutMemo) {
	epoch := m.epoch.Load()
	if m.built == epoch {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	epoch = m.epoch.Load()
	m.built = epoch
}

// fastPathOnlyIsFine uses the captured epoch strictly before the lock.
func fastPathOnlyIsFine(m *layoutMemo) {
	epoch := m.epoch.Load()
	if m.built == epoch {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.built = 0
}
