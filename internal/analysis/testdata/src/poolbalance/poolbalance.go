// Package poolbalance is the fixture for the poolbalance pass: a pool.Get
// without a deferred Put leaks on panic; escapes to a release API are the
// sanctioned alternative.
package poolbalance

import "sync"

type arena struct{ buf []byte }

var pool = sync.Pool{New: func() any { return new(arena) }}

type holder struct{ a *arena }

func leakPlain() int {
	a := pool.Get().(*arena) // want "pool.Get.. without a deferred pool.Put"
	return len(a.buf)
}

// unbalancedPut mirrors the Dijkstra bug this pass caught in the real
// tree: a plain Put before return leaks the arena if anything between
// Get and Put panics.
func unbalancedPut() int {
	a := pool.Get().(*arena) // want "pool.Get.. without a deferred pool.Put"
	n := len(a.buf)
	pool.Put(a)
	return n
}

func discarded() {
	pool.Get() // want "pool.Get.. without a deferred pool.Put"
}

func balancedDefer() int {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	return len(a.buf)
}

func balancedDeferClosure() int {
	a := pool.Get().(*arena)
	defer func() {
		a.buf = a.buf[:0]
		pool.Put(a)
	}()
	return len(a.buf)
}

// escapeReturn hands the value to the caller: the release side owns Put.
func escapeReturn() *arena {
	a := pool.Get().(*arena)
	return a
}

// escapeField stores the value into a struct: the holder owns Put.
func escapeField(h *holder) {
	a := pool.Get().(*arena)
	h.a = a
}

// twoPools must not let one pool's deferred Put cover the other's Get.
var other = sync.Pool{New: func() any { return new(arena) }}

func twoPools() int {
	a := pool.Get().(*arena)
	defer pool.Put(a)
	b := other.Get().(*arena) // want "other.Get.. without a deferred other.Put"
	return len(a.buf) + len(b.buf)
}

// workerDeferredPut is the sanctioned worker-pool shape: scratch fetched
// in the dispatcher, released by a Put deferred inside the worker that
// consumed it.
func workerDeferredPut(n int, wg *sync.WaitGroup) {
	for k := 0; k < n; k++ {
		a := pool.Get().(*arena)
		wg.Add(1)
		go func(a *arena) {
			defer wg.Done()
			defer pool.Put(a)
			a.buf = a.buf[:0]
		}(a)
	}
	wg.Wait()
}

// workerPlainPut drops the scratch when the worker panics between its
// work and the trailing Put.
func workerPlainPut(n int, wg *sync.WaitGroup) {
	for k := 0; k < n; k++ {
		a := pool.Get().(*arena)
		wg.Add(1)
		go func(a *arena) {
			defer wg.Done()
			a.buf = a.buf[:0]
			pool.Put(a) // want "Put in a spawned worker is not deferred"
		}(a)
	}
	wg.Wait()
}

// workerOwnGet: a worker that fetches its own scratch is audited as its
// own function — the deferred Put inside its body balances it.
func workerOwnGet(n int, wg *sync.WaitGroup) {
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := pool.Get().(*arena)
			defer pool.Put(a)
			a.buf = a.buf[:0]
		}()
	}
	wg.Wait()
}
