// Package pragmas is the fixture for the sofvet driver: suppression scope
// (one pragma, one diagnostic), both pragma placements, and every pragma
// hygiene failure mode.
package pragmas

// suppressedOne holds two detorder violations; the standalone pragma above
// the first suppresses exactly that one, the second must survive.
func suppressedOne(m map[int]string) ([]string, []string) {
	var a, b []string
	for _, v := range m {
		//sofvet:ignore detorder fixture: order deliberately unstable here
		a = append(a, v)
		b = append(b, v)
	}
	return a, b
}

// suppressedTrailing uses the same-line pragma placement.
func suppressedTrailing(m map[int]string, ch chan string) {
	for _, v := range m {
		ch <- v //sofvet:ignore detorder fixture: emission order is irrelevant here
	}
}

// noReason is an invalid suppression: the pragma is a hygiene finding and
// the diagnostic it meant to cover survives.
func noReason(m map[int]string) []string {
	var out []string
	for _, v := range m {
		//sofvet:ignore detorder
		out = append(out, v)
	}
	return out
}

//sofvet:ignore nosuchpass the named pass does not exist
var unknownPass = 1

//sofvet:ignore detorder nothing on the next line needs suppressing
var unusedPragma = 2

//sofvet:ignore
var malformed = 3
