// Package baseline implements the comparison algorithms of Section VIII-A:
//
//   - ST: a single Steiner tree from the best source connected with one
//     service chain (the paper's "special case with only one Steiner tree
//     connected with a service chain").
//   - eST (enhanced Steiner Tree): picks the minimum-cost Steiner tree
//     among all sources, builds the shortest service chain closest to the
//     tree, and connects it at minimum cost; extended to multiple sources
//     by the paper's iterative tree-addition heuristic.
//   - eNEMP (enhanced NEMP [27]): like eST, but the chain must terminate
//     on a VM already inside the tree.
//
// The multi-source extension follows the paper: iteratively add the
// cheapest candidate tree rooted at an unused source, assigning every
// destination to its closest tree, while the total cost decreases. Each
// added tree runs its VNFs on VMs unused by earlier trees.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/steiner"
)

// Kind selects a baseline algorithm.
type Kind uint8

// Baseline algorithm identifiers.
const (
	KindST Kind = iota + 1
	KindEST
	KindENEMP
)

func (k Kind) String() string {
	switch k {
	case KindST:
		return "ST"
	case KindEST:
		return "eST"
	case KindENEMP:
		return "eNEMP"
	default:
		return fmt.Sprintf("baseline(%d)", uint8(k))
	}
}

// ST embeds the request with a single Steiner tree plus one service chain,
// choosing the best single source.
func ST(g *graph.Graph, req core.Request, opts *core.Options) (*core.Forest, error) {
	return run(context.Background(), g, req, opts, KindST)
}

// EST embeds the request with the enhanced Steiner tree heuristic.
func EST(g *graph.Graph, req core.Request, opts *core.Options) (*core.Forest, error) {
	return run(context.Background(), g, req, opts, KindEST)
}

// ENEMP embeds the request with the enhanced NEMP heuristic.
func ENEMP(g *graph.Graph, req core.Request, opts *core.Options) (*core.Forest, error) {
	return run(context.Background(), g, req, opts, KindENEMP)
}

// Solve dispatches on kind (convenience for the experiment harness).
func Solve(g *graph.Graph, req core.Request, opts *core.Options, kind Kind) (*core.Forest, error) {
	return run(context.Background(), g, req, opts, kind)
}

// SolveCtx is Solve with cancellation: ctx is observed between candidate
// trees, mirroring the context support of the core algorithms so the whole
// stack can be driven under one deadline.
func SolveCtx(ctx context.Context, g *graph.Graph, req core.Request, opts *core.Options, kind Kind) (*core.Forest, error) {
	return run(ctx, g, req, opts, kind)
}

// candidate is one service tree rooted at a source, spanning all
// destinations, with its service chain and attachment.
type candidate struct {
	source graph.NodeID
	sc     *chain.ServiceChain // nil when chainLen == 0
	tree   *steiner.Tree
	attach graph.NodeID
	// extension path from the chain's last VM to the attach node
	// (pass-through); empty when the last VM is the attach node.
	extNodes []graph.NodeID
	extEdges []graph.EdgeID
	extCost  float64
	// per-destination path data within the tree, rooted at attach.
	dist       map[graph.NodeID]float64
	parent     map[graph.NodeID]graph.NodeID
	parentEdge map[graph.NodeID]graph.EdgeID
	// costFn prices tree edges (injected to avoid carrying the graph).
	costFn func(graph.EdgeID) float64
}

// chainCost is the candidate's fixed cost (chain + extension).
func (c *candidate) chainCost() float64 {
	if c.sc == nil {
		return c.extCost
	}
	return c.sc.TotalCost() + c.extCost
}

// prunedTree returns the edges of the tree restricted to the union of
// attach→d paths for the assigned destinations plus the path to the
// tree's own source, with their total cost. The source branch is kept
// even though the chain re-enters the tree at the attach node: the
// baseline trees are rooted at their source (that structural rigidity is
// the weakness SOFDA removes).
func (c *candidate) prunedTree(assigned []graph.NodeID) ([]graph.EdgeID, float64) {
	seen := make(map[graph.EdgeID]bool)
	var edges []graph.EdgeID
	var cost float64
	targets := append([]graph.NodeID{c.source}, assigned...)
	for _, d := range targets {
		for cur := d; cur != c.attach; cur = c.parent[cur] {
			e := c.parentEdge[cur]
			if seen[e] {
				break // the rest of the path is already included
			}
			seen[e] = true
			edges = append(edges, e)
			cost += c.edgeCostOf(e)
		}
	}
	return edges, cost
}

func (c *candidate) edgeCostOf(e graph.EdgeID) float64 { return c.costFn(e) }

type builder struct {
	ctx    context.Context
	g      *graph.Graph
	req    core.Request
	oracle *chain.Oracle
	vms    []graph.NodeID
	kind   Kind
}

func run(ctx context.Context, g *graph.Graph, req core.Request, opts *core.Options, kind Kind) (*core.Forest, error) {
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	o := core.Options{}
	if opts != nil {
		o = *opts
	}
	vms := o.VMs
	if vms == nil {
		vms = g.VMs()
	}
	oracle := o.Oracle
	if oracle == nil {
		oracle = chain.NewOracle(g, o.Chain)
	}
	b := &builder{
		ctx:    ctx,
		g:      g,
		req:    req,
		oracle: oracle,
		vms:    vms,
		kind:   kind,
	}
	return b.solve()
}

func (b *builder) solve() (*core.Forest, error) {
	used := make(map[graph.NodeID]bool)
	usedSrc := make(map[graph.NodeID]bool)

	first, err := b.bestCandidate(used, usedSrc)
	if err != nil {
		return nil, err
	}
	chosen := []*candidate{first}
	markUsed(first, used)
	usedSrc[first.source] = true

	if b.kind != KindST {
		for len(usedSrc) < countDistinct(b.req.Sources) {
			if err := b.ctx.Err(); err != nil {
				return nil, err
			}
			curCost, _ := b.totalCost(chosen)
			cand, err := b.bestCandidate(used, usedSrc)
			if err != nil {
				break // no feasible additional tree (e.g. VMs exhausted)
			}
			newCost, _ := b.totalCost(append(chosen, cand))
			if newCost >= curCost-1e-9 {
				break
			}
			chosen = append(chosen, cand)
			markUsed(cand, used)
			usedSrc[cand.source] = true
		}
	}
	_, assign := b.totalCost(chosen)
	return b.assemble(chosen, assign)
}

func countDistinct(ns []graph.NodeID) int {
	m := make(map[graph.NodeID]bool, len(ns))
	for _, n := range ns {
		m[n] = true
	}
	return len(m)
}

func markUsed(c *candidate, used map[graph.NodeID]bool) {
	if c.sc != nil {
		for _, v := range c.sc.VMs {
			used[v] = true
		}
	}
}

// bestCandidate builds a candidate for every unused source and returns the
// cheapest (by standalone cost: chain + extension + full tree).
func (b *builder) bestCandidate(used, usedSrc map[graph.NodeID]bool) (*candidate, error) {
	var best *candidate
	bestCost := math.Inf(1)
	var lastErr error
	for _, s := range b.req.Sources {
		if usedSrc[s] {
			continue
		}
		if err := b.ctx.Err(); err != nil {
			return nil, err
		}
		c, err := b.buildCandidate(s, used)
		if err != nil {
			lastErr = err
			continue
		}
		cost := c.chainCost() + b.treeCost(c.tree)
		if cost < bestCost {
			best = c
			bestCost = cost
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = errors.New("baseline: no unused source")
		}
		return nil, lastErr
	}
	return best, nil
}

func (b *builder) treeCost(t *steiner.Tree) float64 { return t.Cost }

// buildCandidate constructs the service tree rooted at s with its chain.
func (b *builder) buildCandidate(s graph.NodeID, used map[graph.NodeID]bool) (*candidate, error) {
	terminals := append([]graph.NodeID{s}, b.req.Dests...)
	// Oracle-backed KMB: the per-source trees and the destination trees
	// come from the session's epoch-keyed cache, shared with the chain
	// queries and with the other algorithms of a comparison run.
	tree, err := steiner.KMBWith(b.g, terminals, &steiner.KMBOptions{Provider: b.oracle})
	if err != nil {
		return nil, err
	}
	c := &candidate{source: s, tree: tree}
	if b.req.ChainLen == 0 {
		c.attach = s
	} else {
		free := make([]graph.NodeID, 0, len(b.vms))
		for _, v := range b.vms {
			if !used[v] {
				free = append(free, v)
			}
		}
		if len(free) < b.req.ChainLen {
			return nil, fmt.Errorf("baseline: %d free VMs for chain of %d", len(free), b.req.ChainLen)
		}
		if err := b.attachChain(c, s, free); err != nil {
			return nil, err
		}
	}
	if err := b.rootTreeAt(c); err != nil {
		return nil, err
	}
	return c, nil
}

// attachChain selects the chain and its attachment per the baseline kind.
func (b *builder) attachChain(c *candidate, s graph.NodeID, free []graph.NodeID) error {
	treeNodes := make(map[graph.NodeID]bool, len(c.tree.Nodes))
	for _, n := range c.tree.Nodes {
		treeNodes[n] = true
	}
	// The baselines take their chains from the prior-work heuristics the
	// paper cites ([13][62] for eST, NEMP [27] for eNEMP): a greedy
	// nearest-VM walk from the source, not SOFDA's k-stroll reduction.
	// The chain is constructed first and only then connected to the tree —
	// that myopia is exactly the weakness SOFDA's joint optimization
	// removes.
	var bestSC *chain.ServiceChain
	var bestAttach graph.NodeID
	var bestExtCost float64

	if b.kind == KindENEMP {
		// NEMP: the final VM must be inside the multicast tree. VMs hang
		// off their data-center switches, so "inside" means the VM or its
		// hosting switch is spanned by the tree.
		inside := make(map[graph.NodeID]bool)
		for _, v := range free {
			if treeNodes[v] {
				inside[v] = true
				continue
			}
			for _, a := range b.g.Adj(v) {
				if treeNodes[a.To] {
					inside[v] = true
					break
				}
			}
		}
		if sc, err := b.greedyChain(s, free, inside); err == nil {
			bestSC = sc
			attach, extCost, err := b.nearestTreeNode(sc.LastVM, treeNodes)
			if err == nil {
				bestAttach = attach
				bestExtCost = extCost
			} else {
				bestSC = nil
			}
		}
	}
	if bestSC == nil {
		sc, err := b.greedyChain(s, free, nil)
		if err != nil {
			return err
		}
		bestSC = sc
		attach, extCost, err := b.nearestTreeNode(sc.LastVM, treeNodes)
		if err != nil {
			return err
		}
		bestAttach = attach
		bestExtCost = extCost
	}
	c.sc = bestSC
	c.attach = bestAttach
	c.extCost = bestExtCost
	if bestSC.LastVM != bestAttach {
		nodes, edges, _, err := b.oracle.Path(bestSC.LastVM, bestAttach)
		if err != nil {
			return err
		}
		c.extNodes = nodes
		c.extEdges = edges
	}
	return nil
}

// greedyChain builds a service chain by repeatedly walking to the VM with
// the smallest marginal cost (path + setup) from the current position, in
// the style of the online chain-deployment heuristics [13][62]. When
// lastInside is non-nil the final VM is chosen among tree nodes (NEMP).
func (b *builder) greedyChain(s graph.NodeID, free []graph.NodeID, lastInside map[graph.NodeID]bool) (*chain.ServiceChain, error) {
	sc := &chain.ServiceChain{Source: s}
	sc.Nodes = append(sc.Nodes, s)
	cur := s
	used := make(map[graph.NodeID]bool)
	for i := 0; i < b.req.ChainLen; i++ {
		isLast := i == b.req.ChainLen-1
		bestVM := graph.None
		bestCost := math.Inf(1)
		for _, v := range free {
			if used[v] {
				continue
			}
			if isLast && lastInside != nil && !lastInside[v] {
				continue
			}
			_, _, d, err := b.oracle.Path(cur, v)
			if err != nil {
				continue
			}
			if c := d + b.g.NodeCost(v); c < bestCost {
				bestCost = c
				bestVM = v
			}
		}
		if bestVM == graph.None {
			return nil, fmt.Errorf("baseline: greedy chain stuck at VNF %d from source %d", i+1, s)
		}
		nodes, edges, d, err := b.oracle.Path(cur, bestVM)
		if err != nil {
			return nil, err
		}
		sc.Nodes = append(sc.Nodes, nodes[1:]...)
		sc.Edges = append(sc.Edges, edges...)
		sc.VMs = append(sc.VMs, bestVM)
		sc.VMPos = append(sc.VMPos, len(sc.Nodes)-1)
		sc.SetupCost += b.g.NodeCost(bestVM)
		sc.ConnCost += d
		used[bestVM] = true
		cur = bestVM
	}
	sc.LastVM = cur
	return sc, nil
}

// nearestTreeNode returns the tree node closest to u by shortest path.
func (b *builder) nearestTreeNode(u graph.NodeID, treeNodes map[graph.NodeID]bool) (graph.NodeID, float64, error) {
	// Scan candidates in sorted id order: map order would break ties by
	// whichever equal-distance node the runtime happened to yield first,
	// and the attach node shapes the whole tree.
	nodes := make([]graph.NodeID, 0, len(treeNodes))
	for n := range treeNodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	bestNode := graph.None
	bestDist := math.Inf(1)
	for _, n := range nodes {
		_, _, d, err := b.oracle.Path(u, n)
		if err != nil {
			continue
		}
		if d < bestDist {
			bestDist = d
			bestNode = n
		}
	}
	if bestNode == graph.None {
		return graph.None, 0, graph.ErrDisconnected
	}
	return bestNode, bestDist, nil
}

// rootTreeAt computes per-destination parent pointers and distances within
// the tree, rooted at the attach node.
func (b *builder) rootTreeAt(c *candidate) error {
	adj := make(map[graph.NodeID][]graph.EdgeID)
	for _, e := range c.tree.Edges {
		ed := b.g.Edge(e)
		adj[ed.U] = append(adj[ed.U], e)
		adj[ed.V] = append(adj[ed.V], e)
	}
	c.dist = make(map[graph.NodeID]float64)
	c.parent = make(map[graph.NodeID]graph.NodeID)
	c.parentEdge = make(map[graph.NodeID]graph.EdgeID)
	c.dist[c.attach] = 0
	queue := []graph.NodeID{c.attach}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range adj[n] {
			other := b.g.Edge(e).Other(n)
			if _, ok := c.dist[other]; ok {
				continue
			}
			c.dist[other] = c.dist[n] + b.g.EdgeCost(e)
			c.parent[other] = n
			c.parentEdge[other] = e
			queue = append(queue, other)
		}
	}
	for _, d := range b.req.Dests {
		if _, ok := c.dist[d]; !ok {
			return fmt.Errorf("baseline: destination %d not in tree of source %d", d, c.source)
		}
	}
	c.costFn = func(e graph.EdgeID) float64 { return b.g.EdgeCost(e) }
	return nil
}

// totalCost evaluates a forest of candidates: every destination joins its
// closest tree, trees serving no destination are dropped, and each kept
// tree is pruned to its assigned destinations.
func (b *builder) totalCost(cands []*candidate) (float64, map[graph.NodeID]int) {
	assign := make(map[graph.NodeID]int, len(b.req.Dests))
	for _, d := range b.req.Dests {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].dist[d] < cands[best].dist[d] {
				best = i
			}
		}
		assign[d] = best
	}
	total := 0.0
	for i, c := range cands {
		var mine []graph.NodeID
		for d, idx := range assign {
			if idx == i {
				mine = append(mine, d)
			}
		}
		sort.Slice(mine, func(a, b int) bool { return mine[a] < mine[b] })
		if len(mine) == 0 {
			continue
		}
		_, treeCost := c.prunedTree(mine)
		total += c.chainCost() + treeCost
	}
	return total, assign
}

// assemble builds the final validated forest.
func (b *builder) assemble(cands []*candidate, assign map[graph.NodeID]int) (*core.Forest, error) {
	f := core.NewForest(b.g, b.req.ChainLen)
	for i, c := range cands {
		var mine []graph.NodeID
		for d, idx := range assign {
			if idx == i {
				mine = append(mine, d)
			}
		}
		sort.Slice(mine, func(a, b int) bool { return mine[a] < mine[b] })
		if len(mine) == 0 {
			continue
		}
		var anchor core.CloneID
		if c.sc == nil {
			anchor = f.NewRoot(c.source)
		} else {
			_, last, err := f.AttachChainWalk(c.sc)
			if err != nil {
				return nil, err
			}
			anchor = last
			for j := 1; j < len(c.extNodes); j++ {
				anchor = f.AppendClone(anchor, c.extNodes[j], c.extEdges[j-1])
			}
		}
		destSet := make(map[graph.NodeID]bool, len(mine))
		for _, d := range mine {
			destSet[d] = true
		}
		edges, _ := c.prunedTree(mine)
		if _, err := f.AttachTree(anchor, edges, destSet); err != nil {
			return nil, err
		}
	}
	// No pruning: the baselines pay their source-rooted tree branches in
	// full (see prunedTree); core.Forest.Prune would strip them and make
	// the baselines stronger than the algorithms they reproduce.
	if err := f.Validate(b.req.Sources, b.req.Dests); err != nil {
		return nil, fmt.Errorf("baseline %v produced infeasible forest: %w", b.kind, err)
	}
	return f, nil
}
