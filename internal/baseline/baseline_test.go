package baseline

import (
	"math"
	"math/rand"
	"testing"

	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/topology"
)

func twoIslandNet() (*graph.Graph, core.Request) {
	g := graph.New(10, 10)
	s0 := g.AddSwitch("s0")
	a := g.AddVM("a", 2)
	b := g.AddVM("b", 2)
	d0 := g.AddSwitch("d0")
	s1 := g.AddSwitch("s1")
	c := g.AddVM("c", 2)
	e := g.AddVM("e", 2)
	d1 := g.AddSwitch("d1")
	g.MustAddEdge(s0, a, 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, d0, 1)
	g.MustAddEdge(s1, c, 1)
	g.MustAddEdge(c, e, 1)
	g.MustAddEdge(e, d1, 1)
	g.MustAddEdge(b, c, 20)
	return g, core.Request{
		Sources:  []graph.NodeID{s0, s1},
		Dests:    []graph.NodeID{d0, d1},
		ChainLen: 2,
	}
}

func TestAllBaselinesFeasible(t *testing.T) {
	g, req := twoIslandNet()
	for _, kind := range []Kind{KindST, KindEST, KindENEMP} {
		f, err := Solve(g, req, nil, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := f.Validate(req.Sources, req.Dests); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestSTUsesSingleTree(t *testing.T) {
	g, req := twoIslandNet()
	f, err := ST(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 1 {
		t.Fatalf("ST trees = %d, want 1", f.NumTrees())
	}
	// ST must pay the 20-cost bridge; SOFDA's two trees cost 14.
	if f.TotalCost() < 14 {
		t.Fatalf("ST cost = %v, expected to exceed the forest optimum", f.TotalCost())
	}
}

func TestESTAddsSecondTreeWhenProfitable(t *testing.T) {
	g, req := twoIslandNet()
	est, err := EST(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ST(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.NumTrees() < 2 {
		t.Errorf("eST trees = %d, want 2 on the two-island network", est.NumTrees())
	}
	if est.TotalCost() > st.TotalCost()+1e-9 {
		t.Errorf("eST (%v) should not exceed ST (%v)", est.TotalCost(), st.TotalCost())
	}
}

func TestENEMPLastVMInsideTree(t *testing.T) {
	// Network where the Steiner tree contains a VM: eNEMP must use it.
	g := graph.New(6, 6)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 1)
	v2 := g.AddVM("v2", 1)
	d := g.AddSwitch("d")
	far := g.AddVM("far", 0.1)
	g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(v1, v2, 1)
	g.MustAddEdge(v2, d, 1)
	g.MustAddEdge(s, far, 30)
	req := core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: 1}
	f, err := ENEMP(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	used := f.UsedVMs()
	if len(used) != 1 || (used[0] != v1 && used[0] != v2) {
		t.Fatalf("eNEMP used VMs %v, want one of the on-tree VMs", used)
	}
}

func TestBaselineZeroChain(t *testing.T) {
	g, req := twoIslandNet()
	req.ChainLen = 0
	for _, kind := range []Kind{KindST, KindEST, KindENEMP} {
		f, err := Solve(g, req, nil, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := f.Validate(req.Sources, req.Dests); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(f.UsedVMs()) != 0 {
			t.Fatalf("%v used VMs on zero chain", kind)
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	g, req := twoIslandNet()
	req.ChainLen = 10 // more VNFs than VMs
	if _, err := EST(g, req, nil); err == nil {
		t.Error("infeasible chain accepted")
	}
	bad := req
	bad.Sources = nil
	if _, err := EST(g, bad, nil); err == nil {
		t.Error("empty sources accepted")
	}
}

// TestSOFDABeatsBaselinesOnAverage reproduces the paper's headline
// comparison: over random SoftLayer requests, SOFDA's average cost is
// lower than every baseline's, and every algorithm yields feasible
// forests.
func TestSOFDABeatsBaselinesOnAverage(t *testing.T) {
	sums := map[string]float64{}
	runs := 0
	for seed := int64(0); seed < 12; seed++ {
		net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: seed})
		rng := rand.New(rand.NewSource(seed * 31))
		req := core.Request{
			Sources:  net.RandomNodes(rng, 8),
			Dests:    net.RandomNodes(rng, 6),
			ChainLen: 3,
		}
		opts := &core.Options{VMs: net.VMs}
		sofda, err := core.SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d SOFDA: %v", seed, err)
		}
		sums["SOFDA"] += sofda.TotalCost()
		for _, kind := range []Kind{KindST, KindEST, KindENEMP} {
			f, err := Solve(net.G, req, opts, kind)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			if err := f.Validate(req.Sources, req.Dests); err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			sums[kind.String()] += f.TotalCost()
		}
		runs++
	}
	t.Logf("average costs over %d runs: SOFDA=%.1f eNEMP=%.1f eST=%.1f ST=%.1f",
		runs, sums["SOFDA"]/float64(runs), sums["eNEMP"]/float64(runs),
		sums["eST"]/float64(runs), sums["ST"]/float64(runs))
	for _, k := range []string{"eNEMP", "eST", "ST"} {
		if sums["SOFDA"] > sums[k]+1e-6 {
			t.Errorf("SOFDA average %.2f exceeds %s average %.2f",
				sums["SOFDA"]/float64(runs), k, sums[k]/float64(runs))
		}
	}
	if math.IsNaN(sums["SOFDA"]) {
		t.Error("NaN cost")
	}
}
