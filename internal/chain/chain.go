// Package chain constructs service chains: walks through the network that
// visit a prescribed number of distinct VMs so that the VNFs f1…f|C| can be
// installed in order (Procedures 1 and 2 of the paper).
//
// The central object is the Oracle, which caches shortest-path trees over
// the underlying network and converts (source, last VM, chain length)
// queries into k-stroll instances on the auxiliary complete graph 𝒢 of
// Procedure 1. Solved strolls are materialized back into walks on the real
// network with VNF placements (Procedure 2).
package chain

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"sof/internal/graph"
	"sof/internal/kstroll"
)

// ServiceChain is a materialized walk in the network that realizes a VNF
// chain: VMs[i] hosts the i-th VNF, and the walk Nodes/Edges connects
// Source → VMs[0] → … → VMs[len-1] (= LastVM) through shortest paths.
// The walk may traverse a node several times ("clones" in the paper).
type ServiceChain struct {
	Source graph.NodeID
	LastVM graph.NodeID
	// VMs[i] hosts VNF f_{i+1}; len(VMs) is the chain length.
	VMs []graph.NodeID
	// VMPos[i] is the index into Nodes of the walk position at which
	// VMs[i] performs its VNF (a VM may also appear elsewhere on the walk
	// as pure pass-through).
	VMPos []int
	// Nodes is the full walk Source…LastVM (repetitions allowed).
	Nodes []graph.NodeID
	// Edges[i] joins Nodes[i] and Nodes[i+1]; len(Edges) = len(Nodes)-1.
	Edges []graph.EdgeID
	// SetupCost is the total setup cost of VMs (plus the source when the
	// oracle includes source setup costs).
	SetupCost float64
	// ConnCost is the total connection cost along the walk, counting a
	// link once per traversal.
	ConnCost float64
}

// TotalCost is SetupCost + ConnCost.
func (c *ServiceChain) TotalCost() float64 { return c.SetupCost + c.ConnCost }

// VNFAt returns the 1-based VNF index hosted at VM v, or 0 if v hosts none.
func (c *ServiceChain) VNFAt(v graph.NodeID) int {
	for i, m := range c.VMs {
		if m == v {
			return i + 1
		}
	}
	return 0
}

// Clone returns a deep copy of the chain.
func (c *ServiceChain) Clone() *ServiceChain {
	return &ServiceChain{
		Source:    c.Source,
		LastVM:    c.LastVM,
		VMs:       append([]graph.NodeID(nil), c.VMs...),
		VMPos:     append([]int(nil), c.VMPos...),
		Nodes:     append([]graph.NodeID(nil), c.Nodes...),
		Edges:     append([]graph.EdgeID(nil), c.Edges...),
		SetupCost: c.SetupCost,
		ConnCost:  c.ConnCost,
	}
}

// Validate checks the structural invariants of the chain against g: walk
// continuity, VM placement order along the walk, distinct VMs, and cost
// accounting. chainLen is the expected number of VNFs.
func (c *ServiceChain) Validate(g *graph.Graph, chainLen int) error {
	if len(c.VMs) != chainLen {
		return fmt.Errorf("chain: %d VMs, want %d", len(c.VMs), chainLen)
	}
	if len(c.Nodes) == 0 || c.Nodes[0] != c.Source {
		return fmt.Errorf("chain: walk does not start at source %d", c.Source)
	}
	if len(c.Edges) != len(c.Nodes)-1 {
		return fmt.Errorf("chain: %d edges for %d nodes", len(c.Edges), len(c.Nodes))
	}
	var conn float64
	for i, id := range c.Edges {
		e := g.Edge(id)
		if !(e.U == c.Nodes[i] && e.V == c.Nodes[i+1]) && !(e.V == c.Nodes[i] && e.U == c.Nodes[i+1]) {
			return fmt.Errorf("chain: edge %d does not join walk nodes %d,%d", id, c.Nodes[i], c.Nodes[i+1])
		}
		conn += e.Cost
	}
	if math.Abs(conn-c.ConnCost) > 1e-6 {
		return fmt.Errorf("chain: recorded conn cost %v != edge sum %v", c.ConnCost, conn)
	}
	if len(c.VMPos) != len(c.VMs) {
		return fmt.Errorf("chain: %d VM positions for %d VMs", len(c.VMPos), len(c.VMs))
	}
	seen := make(map[graph.NodeID]bool, len(c.VMs))
	prev := -1
	for i, vm := range c.VMs {
		if seen[vm] {
			return fmt.Errorf("chain: VM %d repeated", vm)
		}
		seen[vm] = true
		if !g.IsVM(vm) {
			return fmt.Errorf("chain: node %d is not a VM", vm)
		}
		pos := c.VMPos[i]
		if pos <= prev || pos >= len(c.Nodes) {
			return fmt.Errorf("chain: VM %d position %d out of order", vm, pos)
		}
		if c.Nodes[pos] != vm {
			return fmt.Errorf("chain: walk node at position %d is %d, want VM %d", pos, c.Nodes[pos], vm)
		}
		prev = pos
	}
	if chainLen > 0 && c.VMs[chainLen-1] != c.LastVM {
		return fmt.Errorf("chain: last VM %d != recorded %d", c.VMs[chainLen-1], c.LastVM)
	}
	return nil
}

// Options configure an Oracle.
type Options struct {
	// Solver is the k-stroll solver (kstroll.Auto() when nil).
	Solver kstroll.Solver
	// SourceSetupCost includes the source's own setup cost in chains
	// (Appendix D). The source must then be a costed node.
	SourceSetupCost bool
}

// Oracle answers service-chain queries over one network. It caches Dijkstra
// trees per origin node; the cache is safe for concurrent use and computes
// each tree exactly once even under concurrent demand (per-origin
// singleflight), so parallel candidate generation does not duplicate
// Dijkstra work or serialize on one lock while trees are being built.
//
// Entries are keyed by the graph's cost epoch: a tree computed at epoch e
// is served only while graph.CostEpoch() == e, so cost mutations through
// SetEdgeCost/SetNodeCost invalidate lazily — the next query at the new
// epoch recomputes exactly the trees it touches, and an Oracle held across
// a stream of unchanged-cost requests keeps answering from warm state.
type Oracle struct {
	g      *graph.Graph
	solver kstroll.Solver
	opts   Options

	// mu guards the trees map itself; each entry synchronizes its own
	// computation through its once, so readers only hold mu for the lookup.
	mu    sync.RWMutex
	trees map[graph.NodeID]*treeEntry

	// hits counts tree lookups answered from a current-epoch cache entry;
	// misses counts Dijkstra computations (cold or stale-epoch lookups).
	hits   atomic.Uint64
	misses atomic.Uint64

	// Solved-chain memoization: Chain() results keyed by (source, last VM,
	// chain length, candidate-set hash) within one cost epoch, with the
	// same singleflight discipline as the tree cache. chainEpoch records
	// the epoch the map was built at; a mismatch drops the map wholesale
	// (unlike trees, solved chains are cheap to lose and expensive to keep
	// per epoch). chainMu guards the map and epoch.
	chainMu    sync.Mutex
	chainEpoch uint64
	chainCache map[chainKey]*chainEntry
	chainHits  atomic.Uint64
	chainMiss  atomic.Uint64
}

// maxSolvedChains bounds the solved-chain cache within one cost epoch: a
// long-lived session under stable costs never sees an epoch bump, so
// without a cap the memo would grow with every distinct query for the
// process lifetime. When the map reaches the cap it is dropped wholesale
// (hot keys re-solve once and re-warm immediately) — crude, but eviction
// never costs more than the solve it saves. Variable, not const, so
// tests can shrink it.
var maxSolvedChains = 1 << 14

// chainKey identifies one solved-chain query within a cost epoch. The
// candidate VM set enters as an order-sensitive hash: the set (and its
// order) determines the k-stroll instance, so two queries agree on the
// key only if they would build the same instance.
type chainKey struct {
	src, last graph.NodeID
	chainLen  int
	vmsHash   uint64
}

// chainEntry is a singleflight slot for one solved chain: the first
// goroutine computes inside once, concurrent same-key queries block on it
// instead of re-solving the k-stroll instance. vms is the candidate set
// the entry was created for, written under chainMu before the entry is
// published — a lookup whose set differs (a 64-bit hash collision)
// bypasses the cache instead of trusting the hash.
type chainEntry struct {
	vms  []graph.NodeID
	once sync.Once
	sc   *ServiceChain
	err  error
}

// hashNodes is FNV-1a over the ids in order, length-mixed. Collisions are
// astronomically unlikely but not trusted: the entry stores the actual
// set and mismatches fall back to an uncached solve.
func hashNodes(ns []graph.NodeID) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range ns {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	h ^= uint64(len(ns))
	h *= prime
	return h
}

// treeEntry is a singleflight slot for one origin's Dijkstra tree at one
// cost epoch: the first goroutine to reach the entry computes the tree
// inside once, any concurrent goroutine blocks on it instead of
// recomputing. A stale-epoch entry is replaced wholesale on next access.
type treeEntry struct {
	epoch uint64
	once  sync.Once
	sp    *graph.ShortestPaths
}

// NewOracle returns an oracle over g.
func NewOracle(g *graph.Graph, opts Options) *Oracle {
	solver := opts.Solver
	if solver == nil {
		solver = kstroll.Auto()
	}
	return &Oracle{
		g:      g,
		solver: solver,
		opts:   opts,
		trees:  make(map[graph.NodeID]*treeEntry),
	}
}

// Graph returns the underlying network.
func (o *Oracle) Graph() *graph.Graph { return o.g }

func (o *Oracle) tree(n graph.NodeID) *graph.ShortestPaths {
	o.mu.RLock()
	epoch := o.g.CostEpoch()
	e, ok := o.trees[n]
	o.mu.RUnlock()
	if !ok || e.epoch != epoch {
		o.mu.Lock()
		// Re-read under the lock: a mutation that landed while waiting
		// must not publish an entry stamped with the epoch observed
		// before it (the costs Dijkstra reads are the post-mutation ones).
		epoch = o.g.CostEpoch()
		if e, ok = o.trees[n]; !ok || e.epoch != epoch {
			e = &treeEntry{epoch: epoch}
			o.trees[n] = e
		}
		o.mu.Unlock()
	}
	hit := true
	e.once.Do(func() {
		hit = false
		o.misses.Add(1)
		e.sp = graph.Dijkstra(o.g, n)
	})
	if hit {
		o.hits.Add(1)
	}
	return e.sp
}

// Tree returns the oracle's cached shortest-path tree rooted at n,
// computing it (singleflight, epoch-keyed) on first demand. It satisfies
// steiner.PathProvider, so KMB runs over the oracle's graph can feed off
// the same cache as the chain queries.
//
// The returned tree is the live cache entry, shared by every consumer of
// the session: callers must treat it as strictly read-only (Dist, Parent,
// and ParentEdge included). Mutating it would silently corrupt every
// later query until the next cost-epoch bump; callers that need a
// scratch copy must take one themselves.
func (o *Oracle) Tree(n graph.NodeID) *graph.ShortestPaths { return o.tree(n) }

// WarmTrees computes the shortest-path trees of every origin in origins
// that is not already cached at the current epoch, in batched Dijkstra
// passes (one shared arena and CSR fetch per chunk) instead of one pooled
// run per origin. It returns the number of trees computed here. Origins
// whose tree another goroutine is already computing are skipped — the
// singleflight entry covers them.
//
// Warming is miss-neutral: each tree computed here counts as exactly the
// one cache miss the first demand lookup would have charged, so
// miss-count invariants (and the benchmarks gating on them) see the same
// totals whether a session warms or faults trees in.
//
// ctx is checked between chunks: on cancellation the remaining entries
// are left unfulfilled, and the next demand lookup computes them through
// the usual singleflight path.
func (o *Oracle) WarmTrees(ctx context.Context, origins []graph.NodeID) int {
	type slot struct {
		n graph.NodeID
		e *treeEntry
	}
	var pending []slot
	seen := make(map[graph.NodeID]bool, len(origins))
	o.mu.Lock()
	// The epoch is read under the lock: entries published here must be
	// stamped with the epoch the batched Dijkstra passes actually see,
	// not one observed before a concurrent mutation.
	epoch := o.g.CostEpoch()
	for _, n := range origins {
		if seen[n] {
			continue
		}
		seen[n] = true
		e, ok := o.trees[n]
		if ok && e.epoch == epoch {
			continue
		}
		e = &treeEntry{epoch: epoch}
		o.trees[n] = e
		pending = append(pending, slot{n: n, e: e})
	}
	o.mu.Unlock()
	if len(pending) == 0 {
		return 0
	}
	const chunk = 16
	arena := graph.NewArena()
	batch := make([]graph.NodeID, 0, chunk)
	computed := 0
	for lo := 0; lo < len(pending); lo += chunk {
		if ctx != nil && ctx.Err() != nil {
			// Abandoned entries stay published with an unfired once; the
			// next Tree() call on them computes as usual.
			return computed
		}
		hi := lo + chunk
		if hi > len(pending) {
			hi = len(pending)
		}
		batch = batch[:0]
		for _, s := range pending[lo:hi] {
			batch = append(batch, s.n)
		}
		sps := graph.DijkstraBatch(o.g, batch, arena)
		for i, s := range pending[lo:hi] {
			sp := sps[i]
			s.e.once.Do(func() {
				o.misses.Add(1)
				s.e.sp = sp
				computed++
			})
		}
	}
	return computed
}

// CacheStats is a point-in-time snapshot of the oracle's cache counters.
// Misses equals the number of Dijkstra computations performed; Hits counts
// tree lookups answered from a current-epoch entry (including waiters
// that shared an in-flight computation). ChainMisses counts k-stroll
// solves (each one instance build + solve + materialization); ChainHits
// counts Chain() calls answered from a current-epoch solved-chain entry.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	ChainHits   uint64
	ChainMisses uint64
}

// Stats returns the cache counters. The fields are loaded separately, so
// under concurrent queries the snapshot is advisory rather than an atomic
// tuple — exact for the quiesced points tests and benchmarks read it at.
func (o *Oracle) Stats() CacheStats {
	return CacheStats{
		Hits:        o.hits.Load(),
		Misses:      o.misses.Load(),
		ChainHits:   o.chainHits.Load(),
		ChainMisses: o.chainMiss.Load(),
	}
}

// InvalidateCache marks every cached shortest-path tree stale by advancing
// the graph's cost epoch; entries are replaced lazily as queries touch
// them. Explicit calls are only needed after cost mutations that bypass
// SetEdgeCost/SetNodeCost (those bump the epoch themselves). Note the bump
// is visible to every epoch-keyed cache over the same graph, not just this
// oracle. Queries already in flight may finish against the trees they have
// resolved; queries started afterwards see fresh trees.
func (o *Oracle) InvalidateCache() {
	o.g.BumpCostEpoch()
}

// Chain finds a low-cost service chain from source s to last VM u visiting
// chainLen distinct VMs drawn from vms (Procedures 1 and 2). u must be in
// vms; s must not be (a source does not host VNFs on its own chain).
//
// Solved chains are memoized per cost epoch: a warm request stream pays
// each distinct (source, last VM, chain length, candidate set) query one
// k-stroll solve, and cost mutations through SetEdgeCost/SetNodeCost
// invalidate lazily, exactly like the tree cache. Callers receive a
// private copy, so mutating the result never corrupts the cache.
func (o *Oracle) Chain(vms []graph.NodeID, s, u graph.NodeID, chainLen int) (*ServiceChain, error) {
	key := chainKey{src: s, last: u, chainLen: chainLen, vmsHash: hashNodes(vms)}
	o.chainMu.Lock()
	// Read under the lock: a mutation landing while waiting must not let
	// this call publish an entry into the pre-mutation epoch's memo.
	epoch := o.g.CostEpoch()
	if o.chainCache == nil || o.chainEpoch != epoch {
		o.chainCache = make(map[chainKey]*chainEntry)
		o.chainEpoch = epoch
	}
	e, ok := o.chainCache[key]
	if ok && !slices.Equal(e.vms, vms) {
		// Hash collision between distinct candidate sets: solve uncached
		// rather than alias the other set's chain.
		o.chainMu.Unlock()
		o.chainMiss.Add(1)
		return o.solveChain(vms, s, u, chainLen)
	}
	if !ok {
		if len(o.chainCache) >= maxSolvedChains {
			o.chainCache = make(map[chainKey]*chainEntry)
		}
		e = &chainEntry{vms: append([]graph.NodeID(nil), vms...)}
		o.chainCache[key] = e
	}
	o.chainMu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		o.chainMiss.Add(1)
		e.sc, e.err = o.solveChain(vms, s, u, chainLen)
	})
	if hit {
		o.chainHits.Add(1)
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.sc.Clone(), nil
}

// solveChain is the uncached Chain computation: build the auxiliary
// instance of Procedure 1, solve the k-stroll, materialize the walk.
// Blocked VMs — failed, or capacity-masked by a saturated session — are
// dropped from the candidate set (they can host nothing, and keeping them
// would make every instance infeasible the moment one VM dies: the
// instance build treats an unreachable candidate as an error).
func (o *Oracle) solveChain(vms []graph.NodeID, s, u graph.NodeID, chainLen int) (*ServiceChain, error) {
	if chainLen < 1 {
		return nil, fmt.Errorf("chain: chain length %d < 1", chainLen)
	}
	fs := o.g.Blocked()
	if fs.NodeFailed(u) {
		return nil, fmt.Errorf("chain: last VM %d is unavailable: %w", u, kstroll.ErrInfeasible)
	}
	cand := make([]graph.NodeID, 0, len(vms))
	uIdx := -1
	for _, v := range vms {
		if v == s || fs.NodeFailed(v) {
			continue
		}
		if v == u {
			uIdx = len(cand)
		}
		cand = append(cand, v)
	}
	if uIdx < 0 {
		return nil, fmt.Errorf("chain: last VM %d not among candidates", u)
	}
	if chainLen > len(cand) {
		return nil, fmt.Errorf("chain: length %d exceeds %d available VMs: %w",
			chainLen, len(cand), kstroll.ErrInfeasible)
	}

	in, err := o.buildInstance(cand, s, uIdx, chainLen)
	if err != nil {
		return nil, err
	}
	w, err := o.solver.Solve(in)
	if err != nil {
		return nil, fmt.Errorf("chain: k-stroll %s→%s: %w", o.g.Node(s).Name, o.g.Node(u).Name, err)
	}
	return o.materialize(cand, s, w)
}

// buildInstance constructs the auxiliary complete graph 𝒢 of Procedure 1.
// Instance node 0 is s; node i+1 is cand[i]. End is the last VM's index.
func (o *Oracle) buildInstance(cand []graph.NodeID, s graph.NodeID, uIdx, chainLen int) (*kstroll.Instance, error) {
	n := len(cand) + 1
	lastCost := o.g.NodeCost(cand[uIdx])
	srcCost := 0.0
	if o.opts.SourceSetupCost {
		srcCost = o.g.NodeCost(s)
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	spS := o.tree(s)
	for i, vi := range cand {
		d := spS.Dist[vi]
		if math.IsInf(d, 1) {
			return nil, fmt.Errorf("chain: VM %d unreachable from source %d: %w", vi, s, graph.ErrDisconnected)
		}
		// Procedure 1: the last VM's setup cost is shared onto the edges
		// incident to s; Appendix D adds the source's own setup cost.
		var share float64
		if i == uIdx {
			share = lastCost + srcCost
		} else {
			share = (lastCost + srcCost + o.g.NodeCost(vi)) / 2
		}
		cost[0][i+1] = d + share
		cost[i+1][0] = cost[0][i+1]
	}
	for i, vi := range cand {
		spI := o.tree(vi)
		for j := i + 1; j < len(cand); j++ {
			vj := cand[j]
			d := spI.Dist[vj]
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("chain: VMs %d and %d disconnected: %w", vi, vj, graph.ErrDisconnected)
			}
			c := d + (o.g.NodeCost(vi)+o.g.NodeCost(vj))/2
			cost[i+1][j+1] = c
			cost[j+1][i+1] = c
		}
	}
	return &kstroll.Instance{
		N:     n,
		Cost:  cost,
		Start: 0,
		End:   uIdx + 1,
		K:     chainLen + 1,
	}, nil
}

// materialize converts a solved stroll on 𝒢 into a walk on the real network
// (Procedure 2): consecutive stroll nodes are joined by shortest paths, and
// VNF f_{j} is installed on the j-th stroll node after the source.
func (o *Oracle) materialize(cand []graph.NodeID, s graph.NodeID, w *kstroll.Walk) (*ServiceChain, error) {
	toNode := func(idx int) graph.NodeID {
		if idx == 0 {
			return s
		}
		return cand[idx-1]
	}
	sc := &ServiceChain{Source: s}
	sc.Nodes = append(sc.Nodes, s)
	for i := 1; i < len(w.Seq); i++ {
		a, b := toNode(w.Seq[i-1]), toNode(w.Seq[i])
		sp := o.tree(a)
		pathNodes := sp.PathTo(b)
		pathEdges := sp.EdgesTo(b)
		if pathNodes == nil {
			return nil, fmt.Errorf("chain: no path %d→%d: %w", a, b, graph.ErrDisconnected)
		}
		sc.Nodes = append(sc.Nodes, pathNodes[1:]...)
		sc.Edges = append(sc.Edges, pathEdges...)
		sc.VMs = append(sc.VMs, b)
		sc.VMPos = append(sc.VMPos, len(sc.Nodes)-1)
		sc.SetupCost += o.g.NodeCost(b)
	}
	if o.opts.SourceSetupCost {
		sc.SetupCost += o.g.NodeCost(s)
	}
	sc.LastVM = sc.VMs[len(sc.VMs)-1]
	for _, e := range sc.Edges {
		sc.ConnCost += o.g.EdgeCost(e)
	}
	return sc, nil
}

// Path returns the cached shortest path a…b as node and edge sequences with
// its connection cost. Used by conflict resolution to splice walks.
func (o *Oracle) Path(a, b graph.NodeID) ([]graph.NodeID, []graph.EdgeID, float64, error) {
	sp := o.tree(a)
	if !sp.Reachable(b) {
		return nil, nil, 0, fmt.Errorf("chain: no path %d→%d: %w", a, b, graph.ErrDisconnected)
	}
	return sp.PathTo(b), sp.EdgesTo(b), sp.Dist[b], nil
}

// Extension finds a low-cost walk from an arbitrary node `from` to an
// arbitrary node `to` that visits nVMs distinct interior VMs from vms.
// It powers the dynamic destination-join and VNF-insertion operations
// (Section VII-C): the interior VMs host the VNFs still missing downstream
// of `from`. With nVMs == 0 it degenerates to a shortest path.
func (o *Oracle) Extension(vms []graph.NodeID, from, to graph.NodeID, nVMs int) (*ServiceChain, error) {
	if nVMs < 0 {
		return nil, fmt.Errorf("chain: negative VM count %d", nVMs)
	}
	if nVMs == 0 {
		sp := o.tree(from)
		pathNodes := sp.PathTo(to)
		if pathNodes == nil {
			return nil, fmt.Errorf("chain: no path %d→%d: %w", from, to, graph.ErrDisconnected)
		}
		sc := &ServiceChain{Source: from, LastVM: to, Nodes: pathNodes, Edges: sp.EdgesTo(to)}
		for _, e := range sc.Edges {
			sc.ConnCost += o.g.EdgeCost(e)
		}
		return sc, nil
	}
	// Blocked VMs (failed or saturated) cannot host the missing VNFs; drop
	// them like solveChain does so one dead VM does not poison the whole
	// extension instance.
	fs := o.g.Blocked()
	cand := make([]graph.NodeID, 0, len(vms))
	for _, v := range vms {
		if v == from || v == to || fs.NodeFailed(v) {
			continue
		}
		cand = append(cand, v)
	}
	if nVMs > len(cand) {
		return nil, fmt.Errorf("chain: extension needs %d VMs, have %d: %w",
			nVMs, len(cand), kstroll.ErrInfeasible)
	}
	// Instance: node 0 = from, 1..m = cand, m+1 = to. Interior VM setup
	// costs are half-shared onto their incident edges; endpoints
	// contribute nothing (they are not newly enabled).
	n := len(cand) + 2
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	nodeAt := func(i int) graph.NodeID {
		switch i {
		case 0:
			return from
		case n - 1:
			return to
		default:
			return cand[i-1]
		}
	}
	halfCost := func(i int) float64 {
		if i == 0 || i == n-1 {
			return 0
		}
		return o.g.NodeCost(cand[i-1]) / 2
	}
	for i := 0; i < n; i++ {
		sp := o.tree(nodeAt(i))
		for j := i + 1; j < n; j++ {
			d := sp.Dist[nodeAt(j)]
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("chain: %d and %d disconnected: %w", nodeAt(i), nodeAt(j), graph.ErrDisconnected)
			}
			c := d + halfCost(i) + halfCost(j)
			cost[i][j] = c
			cost[j][i] = c
		}
	}
	in := &kstroll.Instance{N: n, Cost: cost, Start: 0, End: n - 1, K: nVMs + 2}
	w, err := o.solver.Solve(in)
	if err != nil {
		return nil, fmt.Errorf("chain: extension stroll: %w", err)
	}
	sc := &ServiceChain{Source: from}
	sc.Nodes = append(sc.Nodes, from)
	for i := 1; i < len(w.Seq); i++ {
		a, b := nodeAt(w.Seq[i-1]), nodeAt(w.Seq[i])
		sp := o.tree(a)
		pathNodes := sp.PathTo(b)
		if pathNodes == nil {
			// The instance build proved reachability, but the tree answering
			// here may be a different (fresher) one than the build consulted;
			// degrade to an error instead of indexing a nil path.
			return nil, fmt.Errorf("chain: no path %d→%d: %w", a, b, graph.ErrDisconnected)
		}
		sc.Nodes = append(sc.Nodes, pathNodes[1:]...)
		sc.Edges = append(sc.Edges, sp.EdgesTo(b)...)
		if i < len(w.Seq)-1 {
			sc.VMs = append(sc.VMs, b)
			sc.VMPos = append(sc.VMPos, len(sc.Nodes)-1)
			sc.SetupCost += o.g.NodeCost(b)
		}
	}
	if len(sc.VMs) > 0 {
		sc.LastVM = sc.VMs[len(sc.VMs)-1]
	}
	for _, e := range sc.Edges {
		sc.ConnCost += o.g.EdgeCost(e)
	}
	return sc, nil
}
