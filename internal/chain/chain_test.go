package chain

import (
	"math"
	"math/rand"
	"testing"

	"sof/internal/graph"
	"sof/internal/kstroll"
)

// lineNet builds s - v1 - v2 - v3 - t with VMs v1..v3 (costs 2,3,4) and unit
// edges.
func lineNet() (*graph.Graph, graph.NodeID, []graph.NodeID, graph.NodeID) {
	g := graph.New(5, 4)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 2)
	v2 := g.AddVM("v2", 3)
	v3 := g.AddVM("v3", 4)
	t := g.AddSwitch("t")
	g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(v1, v2, 1)
	g.MustAddEdge(v2, v3, 1)
	g.MustAddEdge(v3, t, 1)
	return g, s, []graph.NodeID{v1, v2, v3}, t
}

func TestChainOnLine(t *testing.T) {
	g, s, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	sc, err := o.Chain(vms, s, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(g, 3); err != nil {
		t.Fatal(err)
	}
	// Forced order v1,v2,v3: setup 9, connection 3.
	if math.Abs(sc.SetupCost-9) > 1e-9 {
		t.Errorf("setup = %v, want 9", sc.SetupCost)
	}
	if math.Abs(sc.ConnCost-3) > 1e-9 {
		t.Errorf("conn = %v, want 3", sc.ConnCost)
	}
	if sc.VNFAt(vms[0]) != 1 || sc.VNFAt(vms[2]) != 3 || sc.VNFAt(s) != 0 {
		t.Errorf("VNF placement wrong: %v", sc.VMs)
	}
}

func TestChainShorterThanVMCount(t *testing.T) {
	g, s, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	// Only 1 VNF: best last VM v1 gives setup 2, conn 1.
	sc, err := o.Chain(vms, s, vms[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.TotalCost()-3) > 1e-9 {
		t.Errorf("total = %v, want 3", sc.TotalCost())
	}
}

func TestChainErrors(t *testing.T) {
	g, s, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	if _, err := o.Chain(vms, s, vms[0], 0); err == nil {
		t.Error("chainLen 0 accepted")
	}
	if _, err := o.Chain(vms, s, s, 1); err == nil {
		t.Error("last VM not in candidates accepted")
	}
	if _, err := o.Chain(vms, s, vms[0], 4); err == nil {
		t.Error("chain longer than VM count accepted")
	}
}

func TestChainDisconnected(t *testing.T) {
	g := graph.New(3, 1)
	s := g.AddSwitch("s")
	v := g.AddVM("v", 1)
	w := g.AddVM("w", 1)
	g.MustAddEdge(s, v, 1)
	o := NewOracle(g, Options{})
	if _, err := o.Chain([]graph.NodeID{v, w}, s, w, 2); err == nil {
		t.Error("disconnected chain accepted")
	}
}

func TestChainWalkRevisitsNodes(t *testing.T) {
	// Star: center c (switch), VMs a,b hang off it. Chain of 2 must go
	// s→c→a→c→b, revisiting c.
	g := graph.New(5, 4)
	s := g.AddSwitch("s")
	c := g.AddSwitch("c")
	a := g.AddVM("a", 1)
	b := g.AddVM("b", 1)
	g.MustAddEdge(s, c, 1)
	g.MustAddEdge(c, a, 1)
	g.MustAddEdge(c, b, 1)
	o := NewOracle(g, Options{})
	sc, err := o.Chain([]graph.NodeID{a, b}, s, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(g, 2); err != nil {
		t.Fatal(err)
	}
	// Walk: s,c,a,c,b — 5 nodes, conn 4, setup 2.
	if math.Abs(sc.ConnCost-4) > 1e-9 || math.Abs(sc.SetupCost-2) > 1e-9 {
		t.Errorf("conn=%v setup=%v, want 4 and 2 (walk %v)", sc.ConnCost, sc.SetupCost, sc.Nodes)
	}
	seen := make(map[graph.NodeID]int)
	for _, n := range sc.Nodes {
		seen[n]++
	}
	if seen[c] != 2 {
		t.Errorf("center visited %d times, want 2 (walk %v)", seen[c], sc.Nodes)
	}
}

// TestInstanceMetricity property-tests Lemma 1: the auxiliary graph 𝒢
// satisfies the triangle inequality on random networks.
func TestInstanceMetricity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 20, ExtraEdges: 25, VMFraction: 0.5, MaxEdge: 8, MaxSetup: 6,
		}, seed)
		vms := g.VMs()
		if len(vms) < 3 {
			continue
		}
		var s graph.NodeID
		for _, sw := range g.Switches() {
			s = sw
			break
		}
		o := NewOracle(g, Options{})
		cand := make([]graph.NodeID, 0, len(vms))
		uIdx := 0
		for _, v := range vms {
			if v != s {
				cand = append(cand, v)
			}
		}
		in, err := o.buildInstance(cand, s, uIdx, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.Metric(1e-9) {
			t.Fatalf("seed %d: auxiliary instance is not metric (Lemma 1 violated)", seed)
		}
	}
}

// TestStrollCostEqualsChainCost verifies the Procedure 1 cost identity: the
// stroll cost in 𝒢 equals setup+connection cost of the materialized chain.
func TestStrollCostEqualsChainCost(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for seed := int64(0); seed < 25; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 18, ExtraEdges: 22, VMFraction: 0.5, MaxEdge: 9, MaxSetup: 7,
		}, seed)
		vms := g.VMs()
		sws := g.Switches()
		if len(vms) < 4 || len(sws) == 0 {
			continue
		}
		s := sws[rng.Intn(len(sws))]
		u := vms[rng.Intn(len(vms))]
		chainLen := 2 + rng.Intn(3)
		if chainLen > len(vms) {
			chainLen = len(vms)
		}
		o := NewOracle(g, Options{})
		sc, err := o.Chain(vms, s, u, chainLen)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sc.Validate(g, chainLen); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sc.LastVM != u {
			t.Fatalf("seed %d: last VM %d, want %d", seed, sc.LastVM, u)
		}
		// Recompute the stroll cost through the instance directly.
		cand := make([]graph.NodeID, 0, len(vms))
		uIdx := -1
		for _, v := range vms {
			if v == s {
				continue
			}
			if v == u {
				uIdx = len(cand)
			}
			cand = append(cand, v)
		}
		in, err := o.buildInstance(cand, s, uIdx, chainLen)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w, err := kstroll.Auto().Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(w.Cost-sc.TotalCost()) > 1e-6 {
			t.Fatalf("seed %d: stroll cost %v != chain cost %v", seed, w.Cost, sc.TotalCost())
		}
	}
}

func TestSourceSetupCostVariant(t *testing.T) {
	g := graph.New(3, 2)
	s := g.AddVM("s", 10) // a costed source (Appendix D)
	v := g.AddVM("v", 2)
	u := g.AddVM("u", 3)
	g.MustAddEdge(s, v, 1)
	g.MustAddEdge(v, u, 1)
	plain := NewOracle(g, Options{})
	withSrc := NewOracle(g, Options{SourceSetupCost: true})
	scPlain, err := plain.Chain([]graph.NodeID{v, u}, s, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	scSrc, err := withSrc.Chain([]graph.NodeID{v, u}, s, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scSrc.TotalCost()-(scPlain.TotalCost()+10)) > 1e-9 {
		t.Fatalf("source setup variant: %v, want %v+10", scSrc.TotalCost(), scPlain.TotalCost())
	}
}

func TestExtensionZeroVMs(t *testing.T) {
	g, s, vms, tgt := lineNet()
	o := NewOracle(g, Options{})
	sc, err := o.Extension(vms, s, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.TotalCost()-4) > 1e-9 {
		t.Fatalf("extension cost = %v, want 4 (plain shortest path)", sc.TotalCost())
	}
	if len(sc.VMs) != 0 {
		t.Fatalf("extension enabled VMs %v, want none", sc.VMs)
	}
}

func TestExtensionWithVMs(t *testing.T) {
	g, s, vms, tgt := lineNet()
	o := NewOracle(g, Options{})
	sc, err := o.Extension(vms, s, tgt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.VMs) != 2 {
		t.Fatalf("extension enabled %d VMs, want 2", len(sc.VMs))
	}
	// Cheapest pair is v1 (2) + v2 (3); the walk s→v1→v2→t costs
	// conn 1+1+2 = 4 (v2→v3→t), setup 5, total 9.
	if math.Abs(sc.TotalCost()-9) > 1e-9 {
		t.Fatalf("extension cost = %v, want 9 (VMs %v, walk %v)", sc.TotalCost(), sc.VMs, sc.Nodes)
	}
}

func TestExtensionInfeasible(t *testing.T) {
	g, s, vms, tgt := lineNet()
	o := NewOracle(g, Options{})
	if _, err := o.Extension(vms, s, tgt, 4); err == nil {
		t.Error("infeasible extension accepted")
	}
	if _, err := o.Extension(vms, s, tgt, -1); err == nil {
		t.Error("negative VM count accepted")
	}
}

func TestInvalidateCache(t *testing.T) {
	g, s, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	before, err := o.Chain(vms, s, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	// Make edge (s,v1) expensive; without invalidation the oracle would
	// keep using the stale tree.
	g.SetEdgeCost(0, 100)
	o.InvalidateCache()
	after, err := o.Chain(vms, s, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if after.TotalCost() <= before.TotalCost() {
		t.Fatalf("cost after price hike %v should exceed %v", after.TotalCost(), before.TotalCost())
	}
}

func TestChainClone(t *testing.T) {
	g, s, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	sc, err := o.Chain(vms, s, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	cp := sc.Clone()
	cp.VMs[0] = 99
	cp.Nodes[0] = 99
	if sc.VMs[0] == 99 || sc.Nodes[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}
