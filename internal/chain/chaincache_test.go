package chain

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"sof/internal/graph"
	"sof/internal/kstroll"
)

// cacheTestInstance is a random network with enough VMs for repeated
// chain queries.
func cacheTestInstance(seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	g := graph.RandomConnected(graph.RandomConfig{
		Nodes: 40, ExtraEdges: 60, VMFraction: 0.4, MaxEdge: 8, MaxSetup: 6,
	}, seed)
	var sources []graph.NodeID
	for i := 0; i < g.NumNodes() && len(sources) < 4; i++ {
		if !g.IsVM(graph.NodeID(i)) {
			sources = append(sources, graph.NodeID(i))
		}
	}
	return g, g.VMs(), sources
}

// TestSolvedChainCacheWarmStream asserts the solved-chain cache returns
// chains structurally identical to cold solves across a warm request
// stream, and that the hit/miss counters account for every query.
func TestSolvedChainCacheWarmStream(t *testing.T) {
	g, vms, sources := cacheTestInstance(3)
	cold := NewOracle(g, Options{})
	warm := NewOracle(g, Options{})
	pairs := Pairs(sources, vms)

	coldRes, err := cold.Chains(context.Background(), vms, pairs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the warm oracle through the same stream several times; every
	// pass must reproduce the cold results exactly.
	for pass := 0; pass < 3; pass++ {
		warmRes, err := warm.Chains(context.Background(), vms, pairs, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range coldRes {
			if (coldRes[i].Err == nil) != (warmRes[i].Err == nil) {
				t.Fatalf("pass %d pair %d: err mismatch: %v vs %v", pass, i, coldRes[i].Err, warmRes[i].Err)
			}
			if coldRes[i].Err != nil {
				continue
			}
			if !reflect.DeepEqual(coldRes[i].Chain, warmRes[i].Chain) {
				t.Fatalf("pass %d pair %d: warm chain differs structurally from cold solve", pass, i)
			}
		}
	}
	stats := warm.Stats()
	if stats.ChainMisses != uint64(len(pairs)) {
		t.Fatalf("chain misses = %d, want one per distinct pair (%d)", stats.ChainMisses, len(pairs))
	}
	if want := uint64(2 * len(pairs)); stats.ChainHits != want {
		t.Fatalf("chain hits = %d, want %d (two warm passes)", stats.ChainHits, want)
	}
}

// TestSolvedChainCacheReturnsPrivateCopies ensures a caller mutating its
// result cannot corrupt later cache answers.
func TestSolvedChainCacheReturnsPrivateCopies(t *testing.T) {
	gg, src, vmset, _ := lineNet()
	o := NewOracle(gg, Options{})
	first, err := o.Chain(vmset, src, vmset[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	first.VMs[0] = 99 // vandalize the returned copy
	first.Nodes[0] = 99
	second, err := o.Chain(vmset, src, vmset[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if second.VMs[0] == 99 || second.Nodes[0] == 99 {
		t.Fatal("cache returned the mutated caller copy")
	}
}

// TestSolvedChainCacheInvalidation asserts SetEdgeCost / SetNodeCost
// (the setters behind the public SetLinkCost / SetVMCost) invalidate the
// solved-chain cache lazily, while no-op writes keep it warm.
func TestSolvedChainCacheInvalidation(t *testing.T) {
	g, src, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	base, err := o.Chain(vms, src, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats().ChainMisses != 1 {
		t.Fatalf("misses = %d, want 1", o.Stats().ChainMisses)
	}

	// No-op write: same value, epoch unchanged, cache stays warm.
	g.SetNodeCost(vms[0], g.NodeCost(vms[0]))
	if _, err := o.Chain(vms, src, vms[2], 3); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.ChainMisses != 1 || st.ChainHits != 1 {
		t.Fatalf("after no-op write: %+v, want 1 miss / 1 hit", st)
	}

	// Real VM-cost change: next query re-solves and prices the new cost.
	g.SetNodeCost(vms[0], g.NodeCost(vms[0])+10)
	upd, err := o.Chain(vms, src, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.ChainMisses != 2 {
		t.Fatalf("after SetNodeCost: misses = %d, want 2", st.ChainMisses)
	}
	if math.Abs(upd.SetupCost-(base.SetupCost+10)) > 1e-9 {
		t.Fatalf("updated setup cost %v, want %v", upd.SetupCost, base.SetupCost+10)
	}

	// Real link-cost change: ditto for connection costs.
	g.SetEdgeCost(0, g.EdgeCost(0)+5)
	upd2, err := o.Chain(vms, src, vms[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.ChainMisses != 3 {
		t.Fatalf("after SetEdgeCost: misses = %d, want 3", st.ChainMisses)
	}
	if math.Abs(upd2.ConnCost-(base.ConnCost+5)) > 1e-9 {
		t.Fatalf("updated conn cost %v, want %v", upd2.ConnCost, base.ConnCost+5)
	}
}

// TestSolvedChainCacheKeysOnCandidateSet ensures two queries that differ
// only in their candidate VM set do not alias.
func TestSolvedChainCacheKeysOnCandidateSet(t *testing.T) {
	g, src, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	full, err := o.Chain(vms, src, vms[2], 2)
	if err != nil {
		t.Fatal(err)
	}
	// Restricting to {v2, v3} forces a different (more expensive) chain.
	restricted, err := o.Chain(vms[1:], src, vms[2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats().ChainMisses != 2 {
		t.Fatalf("misses = %d, want 2 distinct solves", o.Stats().ChainMisses)
	}
	if reflect.DeepEqual(full.VMs, restricted.VMs) {
		t.Fatalf("restricted candidate set returned the unrestricted chain %v", restricted.VMs)
	}
}

// TestSolvedChainCacheBounded shrinks the cap and overflows it: the memo
// must stay bounded, keep answering correctly, and re-warm after the
// wholesale drop.
func TestSolvedChainCacheBounded(t *testing.T) {
	old := maxSolvedChains
	maxSolvedChains = 3
	defer func() { maxSolvedChains = old }()

	g, vms, sources := cacheTestInstance(7)
	o := NewOracle(g, Options{})
	ref := NewOracle(g, Options{})
	for round := 0; round < 2; round++ {
		for _, s := range sources {
			for _, u := range vms[:3] {
				got, err := o.Chain(vms, s, u, 2)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Chain(vms, s, u, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("overflowing cache changed the chain for (%d,%d)", s, u)
				}
				o.chainMu.Lock()
				if n := len(o.chainCache); n > maxSolvedChains {
					o.chainMu.Unlock()
					t.Fatalf("cache grew to %d entries, cap is %d", n, maxSolvedChains)
				}
				o.chainMu.Unlock()
			}
		}
	}
}

// TestSolvedChainCacheHashCollision fabricates a candidate-set hash
// collision by planting an entry under the key another set would compute,
// and checks the lookup detects the set mismatch and solves uncached
// instead of aliasing the planted chain.
func TestSolvedChainCacheHashCollision(t *testing.T) {
	g, src, vms, _ := lineNet()
	o := NewOracle(g, Options{})
	want, err := o.Chain(vms, src, vms[2], 2)
	if err != nil {
		t.Fatal(err)
	}

	// Plant a wrong chain under the key Chain(vms, ...) computes, but
	// recorded as solved for a different candidate set — exactly what a
	// hash collision would leave behind.
	epoch := g.CostEpoch()
	key := chainKey{src: src, last: vms[2], chainLen: 2, vmsHash: hashNodes(vms)}
	bogus := want.Clone()
	bogus.VMs = []graph.NodeID{vms[1], vms[2]}
	e := &chainEntry{vms: []graph.NodeID{vms[1], vms[2]}}
	e.once.Do(func() { e.sc = bogus })
	o.chainMu.Lock()
	o.chainCache = map[chainKey]*chainEntry{key: e}
	o.chainEpoch = epoch
	o.chainMu.Unlock()

	got, err := o.Chain(vms, src, vms[2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("collision lookup returned the planted chain %v, want fresh solve %v", got.VMs, want.VMs)
	}
}

// TestSolvedChainCacheSingleflight hammers one key from many goroutines;
// the k-stroll must be solved exactly once.
func TestSolvedChainCacheSingleflight(t *testing.T) {
	g, vms, sources := cacheTestInstance(5)
	o := NewOracle(g, Options{})
	var wg sync.WaitGroup
	results := make([]*ServiceChain, 16)
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc, err := o.Chain(vms, sources[0], vms[0], 3)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = sc
		}(w)
	}
	wg.Wait()
	if got := o.Stats().ChainMisses; got != 1 {
		t.Fatalf("chain misses = %d, want 1 (singleflight)", got)
	}
	for w := 1; w < len(results); w++ {
		if !reflect.DeepEqual(results[0], results[w]) {
			t.Fatalf("goroutine %d saw a different chain", w)
		}
	}
}

// poisoningSolver wraps a real k-stroll solver and, after solving,
// replaces one VM's cached shortest-path tree with an all-unreachable
// one — fabricating the tree swap that Extension's materialization loop
// must survive (returning ErrDisconnected rather than panicking).
type poisoningSolver struct {
	o      *Oracle
	victim graph.NodeID
	inner  kstroll.Solver
}

func (p *poisoningSolver) Name() string { return "poisoning" }

func (p *poisoningSolver) Solve(in *kstroll.Instance) (*kstroll.Walk, error) {
	w, err := p.inner.Solve(in)
	if err != nil {
		return nil, err
	}
	n := p.o.g.NumNodes()
	sp := &graph.ShortestPaths{
		Source:     p.victim,
		Dist:       make([]float64, n),
		Parent:     make([]graph.NodeID, n),
		ParentEdge: make([]graph.EdgeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = graph.None
		sp.ParentEdge[i] = graph.NoEdge
	}
	e := &treeEntry{epoch: p.o.g.CostEpoch()}
	e.once.Do(func() { e.sp = sp })
	p.o.mu.Lock()
	p.o.trees[p.victim] = e
	p.o.mu.Unlock()
	return w, nil
}

// TestExtensionGuardsNilPath white-boxes the materialization guard: when
// a hop's tree stops answering mid-materialization, Extension must return
// graph.ErrDisconnected instead of panicking on the nil path.
func TestExtensionGuardsNilPath(t *testing.T) {
	g, src, vms, dst := lineNet()
	o := NewOracle(g, Options{})
	o.solver = &poisoningSolver{o: o, victim: vms[0], inner: kstroll.Auto()}
	// The walk src→…→dst must route through vms[0] (the line topology
	// forces it), whose tree the solver poisons after the solve.
	_, err := o.Extension(vms, src, dst, 1)
	if err == nil {
		t.Fatal("expected an error from the poisoned tree")
	}
	if !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("error %v does not wrap graph.ErrDisconnected", err)
	}
}
