package chain

import (
	"context"
	"runtime"
	"sync"

	"sof/internal/graph"
)

// Pair identifies one candidate-chain query: a service chain starting at
// Source and terminating its last VNF on LastVM.
type Pair struct {
	Source graph.NodeID
	LastVM graph.NodeID
}

// Result couples a Pair with the outcome of its query. Exactly one of
// Chain and Err is non-nil.
type Result struct {
	Pair  Pair
	Chain *ServiceChain
	Err   error
}

// Pairs enumerates the candidate (source, lastVM) pairs of Procedure 3 in
// the canonical order buildAuxGraph iterates them: sources outermost (with
// multiplicity), VMs innermost, skipping self-pairs. The distributed
// leader relies on this order to reproduce the centralized auxiliary graph
// bit for bit.
func Pairs(sources, vms []graph.NodeID) []Pair {
	pairs := make([]Pair, 0, len(sources)*len(vms))
	for _, s := range sources {
		for _, u := range vms {
			if u == s {
				continue
			}
			pairs = append(pairs, Pair{Source: s, LastVM: u})
		}
	}
	return pairs
}

// Chains computes a candidate service chain for every pair over a bounded
// worker pool, fanning queries out across parallelism goroutines. Results
// are returned in pair order; per-pair failures (unreachable VMs, too few
// candidates) are recorded in Result.Err rather than aborting the batch.
// The only call-level error is context cancellation, in which case the
// partial results are discarded.
//
// parallelism <= 0 uses GOMAXPROCS; parallelism == 1 runs sequentially on
// the calling goroutine. The oracle's tree cache is shared across workers:
// each origin's Dijkstra tree is computed once (singleflight), whichever
// worker needs it first.
func (o *Oracle) Chains(ctx context.Context, vms []graph.NodeID, pairs []Pair, chainLen, parallelism int) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]Result, len(pairs))
	if len(pairs) == 0 {
		return results, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(pairs) {
		parallelism = len(pairs)
	}

	// Every instance build touches tree(source) and tree(v) for each
	// candidate VM, so the batch's full tree demand is known up front:
	// warm it in one batched pass instead of faulting trees in one pooled
	// Dijkstra at a time. Miss-neutral (see WarmTrees), so cache counters
	// and the benchmarks gating on them are unchanged.
	origins := make([]graph.NodeID, 0, len(pairs)+len(vms))
	seenSrc := make(map[graph.NodeID]bool, len(pairs))
	for _, p := range pairs {
		if !seenSrc[p.Source] {
			seenSrc[p.Source] = true
			origins = append(origins, p.Source)
		}
	}
	origins = append(origins, vms...)
	o.WarmTrees(ctx, origins)

	solve := func(i int) {
		p := pairs[i]
		sc, err := o.Chain(vms, p.Source, p.LastVM, chainLen)
		results[i] = Result{Pair: p, Chain: sc, Err: err}
	}

	if parallelism == 1 {
		for i := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			solve(i)
		}
		return results, nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				solve(i)
			}
		}()
	}
	var cancelled error
feed:
	for i := range pairs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, cancelled
	}
	return results, nil
}
