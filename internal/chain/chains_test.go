package chain

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"sof/internal/graph"
)

// randomNet builds a connected random network with nVMs VMs for fan-out
// tests.
func randomNet(t *testing.T, seed int64, nSwitches, nVMs int) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nSwitches+nVMs, 4*(nSwitches+nVMs))
	switches := make([]graph.NodeID, nSwitches)
	for i := range switches {
		switches[i] = g.AddSwitch("")
	}
	// Spanning path plus random chords keeps the graph connected.
	for i := 1; i < nSwitches; i++ {
		g.MustAddEdge(switches[i-1], switches[i], 1+rng.Float64()*4)
	}
	for i := 0; i < 2*nSwitches; i++ {
		a, b := rng.Intn(nSwitches), rng.Intn(nSwitches)
		if a == b || g.FindEdge(switches[a], switches[b]) != graph.NoEdge {
			continue
		}
		g.MustAddEdge(switches[a], switches[b], 1+rng.Float64()*4)
	}
	vms := make([]graph.NodeID, nVMs)
	for i := range vms {
		vms[i] = g.AddVM("", 1+rng.Float64()*5)
		g.MustAddEdge(switches[rng.Intn(nSwitches)], vms[i], 1+rng.Float64())
	}
	return g, switches, vms
}

func TestPairsEnumeratesCentralizedOrder(t *testing.T) {
	s := []graph.NodeID{0, 1, 0}
	vms := []graph.NodeID{1, 2}
	got := Pairs(s, vms)
	want := []Pair{{0, 1}, {0, 2}, {1, 2}, {0, 1}, {0, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestChainsMatchesSequentialChain checks the fan-out API returns exactly
// what per-pair Chain calls return, in pair order, at any parallelism.
func TestChainsMatchesSequentialChain(t *testing.T) {
	g, switches, vms := randomNet(t, 7, 12, 8)
	sources := switches[:4]
	pairs := Pairs(sources, vms)
	const chainLen = 3

	ref := NewOracle(g, Options{})
	want := make([]*ServiceChain, len(pairs))
	for i, p := range pairs {
		sc, err := ref.Chain(vms, p.Source, p.LastVM, chainLen)
		if err != nil {
			continue
		}
		want[i] = sc
	}

	for _, par := range []int{0, 1, 2, runtime.NumCPU()} {
		o := NewOracle(g, Options{})
		results, err := o.Chains(context.Background(), vms, pairs, chainLen, par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(results) != len(pairs) {
			t.Fatalf("par=%d: %d results for %d pairs", par, len(results), len(pairs))
		}
		for i, r := range results {
			if r.Pair != pairs[i] {
				t.Fatalf("par=%d: result %d is for pair %v, want %v", par, i, r.Pair, pairs[i])
			}
			if (r.Chain == nil) != (want[i] == nil) {
				t.Fatalf("par=%d pair %v: feasibility mismatch (err=%v)", par, pairs[i], r.Err)
			}
			if r.Chain == nil {
				continue
			}
			if err := r.Chain.Validate(g, chainLen); err != nil {
				t.Errorf("par=%d pair %v: invalid chain: %v", par, pairs[i], err)
			}
			if r.Chain.TotalCost() != want[i].TotalCost() {
				t.Errorf("par=%d pair %v: cost %v, want %v", par, pairs[i], r.Chain.TotalCost(), want[i].TotalCost())
			}
		}
	}
}

func TestChainsCancelledContext(t *testing.T) {
	g, switches, vms := randomNet(t, 3, 10, 6)
	o := NewOracle(g, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Chains(ctx, vms, Pairs(switches[:2], vms), 2, 2); err == nil {
		t.Fatal("Chains with cancelled context returned nil error")
	}
}

// TestChainsConcurrentWithInvalidate hammers the fan-out API and the cache
// invalidation path from many goroutines; run with -race. Costs are not
// asserted (invalidations interleave with queries); the point is memory
// safety of the singleflight tree cache under churn.
func TestChainsConcurrentWithInvalidate(t *testing.T) {
	g, switches, vms := randomNet(t, 11, 10, 6)
	o := NewOracle(g, Options{})
	sources := switches[:3]
	pairs := Pairs(sources, vms)

	var wg sync.WaitGroup
	const (
		queriers     = 4
		invalidators = 2
		rounds       = 8
	)
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				results, err := o.Chains(context.Background(), vms, pairs, 2, 2)
				if err != nil {
					t.Errorf("Chains: %v", err)
					return
				}
				for _, res := range results {
					if res.Err == nil {
						if err := res.Chain.Validate(g, 2); err != nil {
							t.Errorf("invalid chain under churn: %v", err)
							return
						}
					}
				}
			}
		}()
	}
	for w := 0; w < invalidators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4*rounds; r++ {
				o.InvalidateCache()
			}
		}()
	}
	wg.Wait()
}

// TestOracleTreeSingleflight checks concurrent cold-cache queries against
// one origin do not tear the cache (and, under -race, that the entry
// synchronization is sound).
func TestOracleTreeSingleflight(t *testing.T) {
	g, switches, _ := randomNet(t, 5, 30, 0)
	o := NewOracle(g, Options{})
	target := switches[len(switches)-1]
	var wg sync.WaitGroup
	dists := make([]float64, 16)
	for i := range dists {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, d, err := o.Path(switches[0], target)
			if err != nil {
				t.Errorf("Path: %v", err)
				return
			}
			dists[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(dists); i++ {
		if dists[i] != dists[0] {
			t.Fatalf("concurrent Path disagreed: %v vs %v", dists[i], dists[0])
		}
	}
}
