package chain

import (
	"testing"

	"sof/internal/graph"
)

// epochTestGraph is a 4-node diamond with one VM on each branch.
func epochTestGraph() (*graph.Graph, graph.NodeID, graph.NodeID, graph.EdgeID) {
	g := graph.New(4, 4)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 1)
	v2 := g.AddVM("v2", 2)
	d := g.AddSwitch("d")
	e := g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(s, v2, 2)
	g.MustAddEdge(v1, d, 1)
	g.MustAddEdge(v2, d, 1)
	return g, s, d, e
}

func TestOracleEpochKeyedCache(t *testing.T) {
	g, s, d, e := epochTestGraph()
	o := NewOracle(g, Options{})

	if _, _, _, err := o.Path(s, d); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Misses != 1 {
		t.Fatalf("first query: misses = %d, want 1", st.Misses)
	}

	if _, _, _, err := o.Path(s, d); err != nil {
		t.Fatal(err)
	}
	st = o.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("same-epoch re-query: stats = %+v, want 1 miss / 1 hit", st)
	}

	// A same-value write keeps the epoch, and the cache, intact.
	g.SetEdgeCost(e, g.EdgeCost(e))
	if _, _, _, err := o.Path(s, d); err != nil {
		t.Fatal(err)
	}
	if st = o.Stats(); st.Misses != 1 {
		t.Fatalf("same-value write: misses = %d, want 1", st.Misses)
	}

	// A real change makes the cached tree stale; the next query recomputes
	// and must see the new cost.
	g.SetEdgeCost(e, 10)
	_, _, cost, err := o.Path(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if st = o.Stats(); st.Misses != 2 {
		t.Fatalf("post-change query: misses = %d, want 2", st.Misses)
	}
	if cost != 3 { // s→v2→d once s→v1 costs 10+1
		t.Errorf("post-change path cost = %v, want 3", cost)
	}

	// InvalidateCache stays a valid explicit flush: one epoch bump.
	o.InvalidateCache()
	if _, _, _, err := o.Path(s, d); err != nil {
		t.Fatal(err)
	}
	if st = o.Stats(); st.Misses != 3 {
		t.Fatalf("post-invalidate query: misses = %d, want 3", st.Misses)
	}
}
