package chain

import (
	"context"
	"testing"

	"sof/internal/graph"
	"sof/internal/topology"
)

// TestWarmTreesMissNeutral pins the warming contract: warming a set of
// origins costs exactly one miss per distinct origin, demand lookups on
// warmed origins are pure hits, and re-warming is free. The miss count
// must equal what a demand-faulted session would pay — the CI benchmark
// gate on dijkstras/op rides on this.
func TestWarmTreesMissNeutral(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 8, Seed: 5})
	o := NewOracle(net.G, Options{})
	origins := append([]graph.NodeID{0, 1, 2, 1, 0}, net.VMs...)
	distinct := make(map[graph.NodeID]bool)
	for _, n := range origins {
		distinct[n] = true
	}

	if got := o.WarmTrees(context.Background(), origins); got != len(distinct) {
		t.Fatalf("WarmTrees computed %d trees, want %d distinct origins", got, len(distinct))
	}
	if st := o.Stats(); st.Misses != uint64(len(distinct)) || st.Hits != 0 {
		t.Fatalf("after warm: misses=%d hits=%d, want misses=%d hits=0", st.Misses, st.Hits, len(distinct))
	}

	// Demand lookups on warmed origins: hits only, and the shared entries.
	for n := range distinct {
		if sp := o.Tree(n); sp.Source != n {
			t.Fatalf("Tree(%d).Source = %d", n, sp.Source)
		}
	}
	if st := o.Stats(); st.Misses != uint64(len(distinct)) {
		t.Fatalf("demand lookups after warm added misses: %d, want %d", st.Misses, len(distinct))
	}

	// Re-warming an already-warm set computes nothing.
	if got := o.WarmTrees(context.Background(), origins); got != 0 {
		t.Fatalf("re-warm computed %d trees, want 0", got)
	}
}

// TestWarmTreesEpochInvalidation: a cost mutation stales every warmed
// tree; the next warm recomputes them at the new epoch and serves fresh
// distances.
func TestWarmTreesEpochInvalidation(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 6, Seed: 9})
	o := NewOracle(net.G, Options{})
	origins := net.VMs[:3]
	if got := o.WarmTrees(context.Background(), origins); got != 3 {
		t.Fatalf("first warm computed %d, want 3", got)
	}
	net.G.SetEdgeCost(0, net.G.EdgeCost(0)+1)
	if got := o.WarmTrees(context.Background(), origins); got != 3 {
		t.Fatalf("warm after re-pricing computed %d, want 3", got)
	}
	want := graph.Dijkstra(net.G, origins[0])
	got := o.Tree(origins[0])
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("stale distance served after re-warm: Dist[%d]=%v want %v", v, got.Dist[v], want.Dist[v])
		}
	}
}

// TestWarmTreesCancellation: a cancelled warm leaves the un-computed
// entries harmless — the next demand lookup computes them through the
// usual singleflight path, with no double counting.
func TestWarmTreesCancellation(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 6, Seed: 13})
	o := NewOracle(net.G, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var origins []graph.NodeID
	for n := 0; n < net.G.NumNodes(); n++ {
		origins = append(origins, graph.NodeID(n))
	}
	if got := o.WarmTrees(ctx, origins); got != 0 {
		t.Fatalf("cancelled warm computed %d trees, want 0", got)
	}
	// Every origin still resolves on demand.
	for _, n := range origins {
		if sp := o.Tree(n); sp == nil || sp.Source != n {
			t.Fatalf("Tree(%d) after cancelled warm is broken", n)
		}
	}
	if st := o.Stats(); st.Misses != uint64(len(origins)) {
		t.Fatalf("misses=%d after demand-faulting %d origins", st.Misses, len(origins))
	}
}
