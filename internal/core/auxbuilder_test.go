package core

import (
	"context"
	"math/rand"
	"testing"

	"sof/internal/chain"
	"sof/internal/graph"
	"sof/internal/topology"
)

// auxBuilderInstance draws a seeded SoftLayer instance plus its full
// centralized candidate set, in the canonical enumeration order.
func auxBuilderInstance(t *testing.T, seed int64) (*topology.Network, Request, *Options, []*chain.ServiceChain) {
	t.Helper()
	net := topology.SoftLayer(topology.Config{NumVMs: 12, Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	req := Request{
		Sources:  net.RandomNodes(rng, 4),
		Dests:    net.RandomNodes(rng, 3),
		ChainLen: 2,
	}
	opts := &Options{VMs: net.VMs}
	oracle := chain.NewOracle(net.G, chain.Options{})
	results, err := oracle.Chains(context.Background(), net.VMs, chain.Pairs(req.Sources, net.VMs), req.ChainLen, 1)
	if err != nil {
		t.Fatalf("seed %d: candidate generation: %v", seed, err)
	}
	var candidates []*chain.ServiceChain
	for _, r := range results {
		if r.Err == nil && r.Chain != nil {
			candidates = append(candidates, r.Chain)
		}
	}
	return net, req, opts, candidates
}

// TestAuxBuilderMatchesBatchPath feeds the centralized candidate set
// through the incremental builder one chain at a time — with and without
// pruning — and pins the forest cost to SOFDAFromCandidates and to the
// direct SOFDA solve.
func TestAuxBuilderMatchesBatchPath(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts, candidates := auxBuilderInstance(t, seed)
		direct, err := SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d: SOFDA: %v", seed, err)
		}
		batch, err := SOFDAFromCandidates(net.G, req, opts, candidates)
		if err != nil {
			t.Fatalf("seed %d: batch from candidates: %v", seed, err)
		}
		if batch.TotalCost() != direct.TotalCost() {
			t.Errorf("seed %d: batch-from-candidates %v != SOFDA %v", seed, batch.TotalCost(), direct.TotalCost())
		}
		for _, prune := range []bool{false, true} {
			b, err := NewAuxGraphBuilder(context.Background(), net.G, req, opts)
			if err != nil {
				t.Fatalf("seed %d: builder: %v", seed, err)
			}
			if prune {
				b.EnablePruning()
			}
			for _, sc := range candidates {
				if _, err := b.AddCandidate(sc); err != nil {
					t.Fatalf("seed %d prune=%v: AddCandidate: %v", seed, prune, err)
				}
			}
			if b.Added()+b.Pruned() != len(candidates) {
				t.Errorf("seed %d prune=%v: added %d + pruned %d != %d candidates",
					seed, prune, b.Added(), b.Pruned(), len(candidates))
			}
			f, err := b.Complete(context.Background())
			if err != nil {
				t.Fatalf("seed %d prune=%v: Complete: %v", seed, prune, err)
			}
			if f.TotalCost() != direct.TotalCost() {
				t.Errorf("seed %d prune=%v: incremental cost %v != SOFDA %v",
					seed, prune, f.TotalCost(), direct.TotalCost())
			}
		}
	}
}

// TestDominatedPairNeverEntersAuxGraph is the white-box prune pin on a
// hand-built instance where dominance is provable by inspection:
//
//	s — u1(1) — d        (cheap VM right next to the source)
//	 \— x — x — x — u2(1)  (same-setup VM behind a long detour)
//
// With chain length 1, candidate (s,u2) costs strictly more than
// candidate (s,u1) plus the u1→u2 path (its own walk runs through u1's
// neighborhood), and its single-tree rank is strictly worse — so with
// pruning armed it must never allocate an aux-graph edge, while prune-off
// admits both and both land on the same forest.
func TestDominatedPairNeverEntersAuxGraph(t *testing.T) {
	g := graph.New(8, 8)
	s := g.AddSwitch("s")
	u1 := g.AddVM("u1", 1)
	d := g.AddSwitch("d")
	x1 := g.AddSwitch("x1")
	x2 := g.AddSwitch("x2")
	u2 := g.AddVM("u2", 2) // costlier setup keeps the dominance inequality strict
	g.MustAddEdge(s, u1, 1)
	g.MustAddEdge(u1, d, 1)
	g.MustAddEdge(u1, x1, 5)
	g.MustAddEdge(x1, x2, 5)
	g.MustAddEdge(x2, u2, 5)
	req := Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: 1}

	oracle := chain.NewOracle(g, chain.Options{})
	chainNear, err := oracle.Chain(g.VMs(), s, u1, 1)
	if err != nil {
		t.Fatal(err)
	}
	chainFar, err := oracle.Chain(g.VMs(), s, u2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the far candidate really is dominated per the rule —
	// strictly costlier than near + dist(u1,u2), and strictly worse in
	// single-tree rank.
	distU1U2 := graph.Dijkstra(g, u1).Dist[u2]
	if !(chainFar.TotalCost() > chainNear.TotalCost()+distU1U2) {
		t.Fatalf("instance not dominated: far %v <= near %v + dist %v",
			chainFar.TotalCost(), chainNear.TotalCost(), distU1U2)
	}

	b, err := NewAuxGraphBuilder(context.Background(), g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.EnablePruning()
	edgesBefore := b.aux.g.NumEdges()
	if ok, err := b.AddCandidate(chainNear); err != nil || !ok {
		t.Fatalf("near candidate not admitted: ok=%v err=%v", ok, err)
	}
	if ok, err := b.AddCandidate(chainFar); err != nil || ok {
		t.Fatalf("dominated candidate admitted: ok=%v err=%v", ok, err)
	}
	if b.Pruned() != 1 || b.Added() != 1 {
		t.Fatalf("added=%d pruned=%d, want 1 and 1", b.Added(), b.Pruned())
	}
	if got := b.aux.g.NumEdges(); got != edgesBefore+1 {
		t.Fatalf("aux graph grew %d edges for 1 admitted candidate — the pruned pair allocated state", got-edgesBefore)
	}
	if len(b.aux.chains) != 1 {
		t.Fatalf("chains map holds %d entries, want 1", len(b.aux.chains))
	}

	pruned, err := b.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	full, err := SOFDAFromCandidates(g, req, nil, []*chain.ServiceChain{chainNear, chainFar})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.TotalCost() != full.TotalCost() {
		t.Errorf("pruned forest %v != unpruned %v", pruned.TotalCost(), full.TotalCost())
	}
}

// TestAuxBuilderRejectsForeignChains pins the builder's validation: chains
// from sources or to last VMs outside the request error instead of
// silently corrupting Ĝ.
func TestAuxBuilderRejectsForeignChains(t *testing.T) {
	net, req, opts, candidates := auxBuilderInstance(t, 7)
	b, err := NewAuxGraphBuilder(context.Background(), net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	srcSet := make(map[graph.NodeID]bool, len(req.Sources))
	for _, s := range req.Sources {
		srcSet[s] = true
	}
	foreign := candidates[0].Clone()
	foreign.Source = graph.None
	for n := 0; n < net.G.NumNodes(); n++ {
		if !srcSet[graph.NodeID(n)] {
			foreign.Source = graph.NodeID(n)
			break
		}
	}
	if _, err := b.AddCandidate(foreign); err == nil {
		t.Error("chain from a non-source admitted")
	}
	// Wrong-length chains are skipped, not errors (mirrors the batch path).
	short := candidates[0].Clone()
	short.VMs = short.VMs[:1]
	if ok, err := b.AddCandidate(short); err != nil || ok {
		t.Errorf("wrong-length chain: ok=%v err=%v, want skipped", ok, err)
	}
	if _, err := NewAuxGraphBuilder(context.Background(), net.G, Request{Sources: req.Sources, Dests: req.Dests, ChainLen: 0}, opts); err == nil {
		t.Error("builder accepted chainLen 0")
	}
}
