package core

import (
	"fmt"

	"sof/internal/chain"
	"sof/internal/graph"
)

// resolver adds candidate service-chain walks to a forest while resolving
// VNF conflicts per Procedure 4 of the paper. It keeps, for every added
// walk, the clones hosting its VNFs so later walks can attach to (share)
// a prefix of an earlier walk.
//
// The three attachment cases of Procedure 4:
//
//  1. The incoming walk W plans f_j at a VM that already runs f_i with
//     j ≤ i: W adopts the owner walk's prefix through f_i and keeps its own
//     suffix from f_{i+1}.
//  2. j > i, but W also crosses a VM of the same owner walk running f_h
//     with h ≥ j: W adopts the owner's prefix through f_h and keeps its own
//     suffix from f_{h+1}.
//  3. Otherwise the OWNER walk is re-rooted onto W's prefix ("attach W1 to
//     W"): the conflicted VM switches from f_i to f_j, the owner's VMs for
//     f_{i+1}…f_j become pass-through, and the owner's old prefix is
//     abandoned (pruned later if unused).
//
// Whenever a precondition for safe surgery fails (a VM that would be
// disabled is shared by another walk, or W's own prefix is already
// entangled), the resolver falls back to re-routing W around all owned VMs,
// which preserves feasibility at a possible cost increase; tests verify the
// fallback stays rare and results stay feasible.
type resolver struct {
	f      *Forest
	oracle *chain.Oracle
	vms    []graph.NodeID
	walks  []*walkInfo
}

// walkInfo records one resolved walk living in the forest.
type walkInfo struct {
	source graph.NodeID
	// vnfClones[i] is the clone hosting f_{i+1}. Clones may be shared with
	// other walks (common prefixes).
	vnfClones []CloneID
	// last is the walk's final clone (the anchor for the tree part); its
	// real node is the walk's last VM.
	last CloneID
}

func newResolver(f *Forest, oracle *chain.Oracle, vms []graph.NodeID) *resolver {
	return &resolver{f: f, oracle: oracle, vms: vms}
}

// ownerWalk returns the walk whose VNF clone for index vnf lives on VM
// node, or nil.
func (r *resolver) ownerWalk(node graph.NodeID) *walkInfo {
	use, ok := r.f.owner[node]
	if !ok {
		return nil
	}
	for _, w := range r.walks {
		if use.vnf >= 1 && use.vnf <= len(w.vnfClones) && w.vnfClones[use.vnf-1] == use.clone {
			return w
		}
	}
	return nil
}

// sharedBeyond reports whether any walk other than w uses any of w's VNF
// clones for indices in [from, to] (1-based, inclusive).
func (r *resolver) sharedBeyond(w *walkInfo, from, to int) bool {
	for _, other := range r.walks {
		if other == w {
			continue
		}
		for idx := from; idx <= to; idx++ {
			if idx-1 < len(other.vnfClones) && idx-1 < len(w.vnfClones) &&
				other.vnfClones[idx-1] == w.vnfClones[idx-1] {
				return true
			}
		}
	}
	return false
}

// AddWalk resolves conflicts for candidate sc and installs it, returning
// the walk's final clone (anchor for the tree part).
func (r *resolver) AddWalk(sc *chain.ServiceChain) (CloneID, error) {
	for iter := 0; ; iter++ {
		if iter > 2*len(r.walks)+4 {
			// Procedure 4 terminates after at most one surgery per owner
			// walk; this guard catches implementation bugs.
			return NoClone, fmt.Errorf("core: conflict resolution did not converge for walk from %d", sc.Source)
		}
		// Backtrack W from the end: first VM with any owner.
		cIdx := -1
		for i := len(sc.VMs) - 1; i >= 0; i-- {
			if _, ok := r.f.owner[sc.VMs[i]]; ok {
				cIdx = i
				break
			}
		}
		if cIdx < 0 {
			return r.install(sc, nil, 0)
		}
		m := sc.VMs[cIdx]
		j := cIdx + 1 // W plans f_j at m
		use := r.f.owner[m]
		i := use.vnf
		wk := r.ownerWalk(m)
		if wk == nil {
			// Owned by something outside the resolver (e.g. a pre-existing
			// forest in dynamic scenarios): re-route around it.
			return r.reroute(sc)
		}
		if j <= i {
			// Case 1 (covers same-index sharing when j == i).
			return r.install(sc, wk, i)
		}
		// Case 2: some other VM of W owned by wk at index h ≥ j.
		h := -1
		for k := len(sc.VMs) - 1; k >= 0; k-- {
			v := sc.VMs[k]
			if v == m {
				continue
			}
			if u2, ok := r.f.owner[v]; ok && u2.vnf >= j && r.ownerWalk(v) == wk {
				if u2.vnf > h {
					h = u2.vnf
				}
			}
		}
		if h >= j {
			return r.install(sc, wk, h)
		}
		// Case 3: re-root wk onto W's prefix. Preconditions: W's prefix VMs
		// (f1…f_{j-1}) are unowned, and wk's clones for f_i…f_j are not
		// shared with other walks.
		safe := true
		for k := 0; k < cIdx; k++ {
			if _, ok := r.f.owner[sc.VMs[k]]; ok {
				safe = false
				break
			}
		}
		if safe && r.sharedBeyond(wk, i, min(j, len(wk.vnfClones))) {
			safe = false
		}
		if !safe {
			return r.reroute(sc)
		}
		if err := r.reroot(wk, sc, cIdx, i, j); err != nil {
			return NoClone, err
		}
		// After surgery m is owned with f_j (== W's plan), so the next
		// iteration resolves via case 1 sharing.
	}
}

// install adds sc to the forest. When prefix is non-nil, the walk shares
// prefix's clones through VNF index prefVNFs and continues with its own
// suffix from f_{prefVNFs+1}; the junction is bridged by the current
// shortest path (the paper's walk-shortening step).
func (r *resolver) install(sc *chain.ServiceChain, prefix *walkInfo, prefVNFs int) (CloneID, error) {
	w := &walkInfo{source: sc.Source}
	var cur CloneID
	var startVM int // chain VNFs already covered
	if prefix == nil {
		cur = r.f.newRoot(sc.Source)
		startVM = 0
	} else {
		if prefVNFs < 1 || prefVNFs > len(prefix.vnfClones) {
			return NoClone, fmt.Errorf("core: bad prefix attach at f%d", prefVNFs)
		}
		cur = prefix.vnfClones[prefVNFs-1]
		w.source = r.rootNodeOf(cur)
		w.vnfClones = append(w.vnfClones, prefix.vnfClones[:prefVNFs]...)
		startVM = prefVNFs
	}
	if prefix == nil {
		// Follow sc's own walk in full.
		vmIdx := 0
		for i := 1; i < len(sc.Nodes); i++ {
			cur = r.f.appendClone(cur, sc.Nodes[i], sc.Edges[i-1])
			if vmIdx < len(sc.VMPos) && sc.VMPos[vmIdx] == i {
				if err := r.f.enable(cur, vmIdx+1); err != nil {
					return NoClone, err
				}
				w.vnfClones = append(w.vnfClones, cur)
				vmIdx++
			}
		}
		if vmIdx != len(sc.VMs) {
			return NoClone, fmt.Errorf("core: walk enabled %d of %d VNFs", vmIdx, len(sc.VMs))
		}
	} else {
		// Bridge from the junction to the next VNF VM (or to the last VM
		// when the prefix already covers the whole chain), then follow sc's
		// suffix.
		junction := r.f.clones[cur].Node
		var target graph.NodeID
		var suffixFromPos int
		if startVM < len(sc.VMs) {
			target = sc.VMs[startVM]
			suffixFromPos = sc.VMPos[startVM]
		} else {
			target = sc.LastVM
			suffixFromPos = len(sc.Nodes) - 1
		}
		pathNodes, pathEdges, _, err := r.oracle.Path(junction, target)
		if err != nil {
			return NoClone, err
		}
		for i := 1; i < len(pathNodes); i++ {
			cur = r.f.appendClone(cur, pathNodes[i], pathEdges[i-1])
		}
		if startVM < len(sc.VMs) {
			if err := r.f.enable(cur, startVM+1); err != nil {
				return NoClone, err
			}
			w.vnfClones = append(w.vnfClones, cur)
			vmIdx := startVM + 1
			for i := suffixFromPos + 1; i < len(sc.Nodes); i++ {
				cur = r.f.appendClone(cur, sc.Nodes[i], sc.Edges[i-1])
				if vmIdx < len(sc.VMPos) && sc.VMPos[vmIdx] == i {
					if err := r.f.enable(cur, vmIdx+1); err != nil {
						return NoClone, err
					}
					w.vnfClones = append(w.vnfClones, cur)
					vmIdx++
				}
			}
			if vmIdx != len(sc.VMs) {
				return NoClone, fmt.Errorf("core: spliced walk enabled %d of %d VNFs", vmIdx, len(sc.VMs))
			}
		}
	}
	w.last = cur
	r.walks = append(r.walks, w)
	return cur, nil
}

// rootNodeOf returns the real node of the root above clone c.
func (r *resolver) rootNodeOf(c CloneID) graph.NodeID {
	for r.f.clones[c].Parent != NoClone {
		c = r.f.clones[c].Parent
	}
	return r.f.clones[c].Node
}

// reroot performs case-3 surgery: the owner walk wk is re-rooted onto sc's
// prefix through sc.VMs[cIdx] (which switches from f_i to f_j).
func (r *resolver) reroot(wk *walkInfo, sc *chain.ServiceChain, cIdx, i, j int) error {
	mClone := r.f.owner[sc.VMs[cIdx]].clone
	// Disable the conflicted VM and wk's now-redundant VMs f_{i+1}…f_j.
	r.f.disable(mClone)
	for idx := i + 1; idx <= j && idx-1 < len(wk.vnfClones); idx++ {
		r.f.disable(wk.vnfClones[idx-1])
	}
	// wk's old prefix VMs f_1…f_{i-1} are abandoned by the re-rooting;
	// disable the ones no other walk shares so pruning can reclaim them.
	for idx := 1; idx < i && idx-1 < len(wk.vnfClones); idx++ {
		if !r.sharedBeyond(wk, idx, idx) {
			r.f.disable(wk.vnfClones[idx-1])
		}
	}
	// Build sc's prefix clones up to (but excluding) position of m.
	root := r.f.newRoot(sc.Source)
	cur := root
	vmIdx := 0
	var newPrefix []CloneID
	mPos := sc.VMPos[cIdx]
	for p := 1; p < mPos; p++ {
		cur = r.f.appendClone(cur, sc.Nodes[p], sc.Edges[p-1])
		if vmIdx < cIdx && sc.VMPos[vmIdx] == p {
			if err := r.f.enable(cur, vmIdx+1); err != nil {
				return err
			}
			newPrefix = append(newPrefix, cur)
			vmIdx++
		}
	}
	if vmIdx != cIdx {
		return fmt.Errorf("core: reroot enabled %d of %d prefix VNFs", vmIdx, cIdx)
	}
	// Re-parent m's clone into the new prefix and give it f_j.
	r.f.clones[mClone].Parent = cur
	r.f.clones[mClone].ParentEdge = sc.Edges[mPos-1]
	if err := r.f.enable(mClone, j); err != nil {
		return err
	}
	newPrefix = append(newPrefix, mClone)

	// wk's VNF clones become: new prefix (f1…f_j) + its own f_{j+1}….
	var tail []CloneID
	if j < len(wk.vnfClones) {
		tail = append(tail, wk.vnfClones[j:]...)
	}
	wk.vnfClones = append(newPrefix, tail...)
	wk.source = sc.Source
	return nil
}

// reroute abandons Procedure 4 for sc and recomputes a fresh chain from
// sc's source to its last VM using only unowned VMs. If the original last
// VM itself is owned with a conflicting index, the chain targets a free VM
// and extends to the last VM by shortest path so the tree anchor is
// preserved.
func (r *resolver) reroute(sc *chain.ServiceChain) (CloneID, error) {
	free := make([]graph.NodeID, 0, len(r.vms))
	for _, v := range r.vms {
		if _, owned := r.f.owner[v]; !owned {
			free = append(free, v)
		}
	}
	chainLen := len(sc.VMs)
	if len(free) < chainLen {
		return r.lastResort(sc)
	}
	target := sc.LastVM
	if _, owned := r.f.owner[target]; !owned {
		fresh, err := r.oracle.Chain(free, sc.Source, target, chainLen)
		if err != nil {
			return r.lastResort(sc)
		}
		return r.install(fresh, nil, 0)
	}
	// Last VM is owned: route to the best free VM, then extend to the
	// original anchor node by shortest path.
	var best *chain.ServiceChain
	bestCost := 0.0
	for _, u := range free {
		fresh, err := r.oracle.Chain(free, sc.Source, u, chainLen)
		if err != nil {
			continue
		}
		_, _, d, err := r.oracle.Path(u, target)
		if err != nil {
			continue
		}
		if best == nil || fresh.TotalCost()+d < bestCost {
			best = fresh
			bestCost = fresh.TotalCost() + d
		}
	}
	if best == nil {
		return r.lastResort(sc)
	}
	last, err := r.install(best, nil, 0)
	if err != nil {
		return NoClone, err
	}
	// Extend pass-through to the anchor node.
	pathNodes, pathEdges, _, err := r.oracle.Path(best.LastVM, target)
	if err != nil {
		return NoClone, err
	}
	cur := last
	for i := 1; i < len(pathNodes); i++ {
		cur = r.f.appendClone(cur, pathNodes[i], pathEdges[i-1])
	}
	r.walks[len(r.walks)-1].last = cur
	return cur, nil
}

// lastResort merges sc's subtree into the existing walk whose completed
// chain is closest to sc's anchor: the new walk shares the full chain of
// that walk and bridges to sc's last VM by shortest path. Always feasible
// once any walk exists; it trades optimality for robustness when VMs are
// exhausted.
func (r *resolver) lastResort(sc *chain.ServiceChain) (CloneID, error) {
	chainLen := len(sc.VMs)
	var best *walkInfo
	bestDist := 0.0
	for _, w := range r.walks {
		if len(w.vnfClones) < chainLen {
			continue
		}
		from := r.f.clones[w.vnfClones[chainLen-1]].Node
		_, _, d, err := r.oracle.Path(from, sc.LastVM)
		if err != nil {
			continue
		}
		if best == nil || d < bestDist {
			best = w
			bestDist = d
		}
	}
	if best == nil {
		return NoClone, fmt.Errorf("core: no feasible resolution for walk %d→%d (no free VMs, no mergeable walk)",
			sc.Source, sc.LastVM)
	}
	return r.install(sc, best, chainLen)
}
