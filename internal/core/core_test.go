package core

import (
	"math"
	"math/rand"
	"testing"

	"sof/internal/chain"
	"sof/internal/graph"
)

// paperStyleNet builds a network in the spirit of Fig. 1: two destinations
// whose chain can be served either by one consolidated tree or by two
// cheaper per-source trees.
//
//	s0 - a(2) - b(2) - d0        s1 - c(2) - e(2) - d1
//	       \____________ expensive bridge ____________/
func paperStyleNet() (*graph.Graph, Request) {
	g := graph.New(10, 10)
	s0 := g.AddSwitch("s0")
	a := g.AddVM("a", 2)
	b := g.AddVM("b", 2)
	d0 := g.AddSwitch("d0")
	s1 := g.AddSwitch("s1")
	c := g.AddVM("c", 2)
	e := g.AddVM("e", 2)
	d1 := g.AddSwitch("d1")
	g.MustAddEdge(s0, a, 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, d0, 1)
	g.MustAddEdge(s1, c, 1)
	g.MustAddEdge(c, e, 1)
	g.MustAddEdge(e, d1, 1)
	g.MustAddEdge(b, c, 20) // expensive bridge between the halves
	return g, Request{
		Sources:  []graph.NodeID{s0, s1},
		Dests:    []graph.NodeID{d0, d1},
		ChainLen: 2,
	}
}

func TestSOFDAForestBeatsSingleTree(t *testing.T) {
	g, req := paperStyleNet()
	forest, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := forest.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	// Two trees, one per source: each costs 3 edges + 2 VMs×2 = 7, total 14.
	if forest.NumTrees() != 2 {
		t.Errorf("NumTrees = %d, want 2", forest.NumTrees())
	}
	if math.Abs(forest.TotalCost()-14) > 1e-9 {
		t.Errorf("forest cost = %v, want 14", forest.TotalCost())
	}
	// The single-source solution must pay the bridge: strictly worse.
	ss, err := SOFDASS(g, req.Sources[0], req.Dests, req.ChainLen, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalCost() <= forest.TotalCost() {
		t.Errorf("single tree %v should exceed forest %v", ss.TotalCost(), forest.TotalCost())
	}
}

func TestSOFDASSLine(t *testing.T) {
	// s - v1(2) - v2(3) - d : chain of 2 → cost = 3 edges + 5 setup = 8.
	g := graph.New(4, 3)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 2)
	v2 := g.AddVM("v2", 3)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(v1, v2, 1)
	g.MustAddEdge(v2, d, 1)
	f, err := SOFDASS(g, s, []graph.NodeID{d}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.TotalCost()-8) > 1e-9 {
		t.Fatalf("cost = %v, want 8", f.TotalCost())
	}
	st := f.Stats()
	if st.UsedVMs != 2 || st.Trees != 1 {
		t.Fatalf("stats = %+v, want 2 VMs in 1 tree", st)
	}
}

func TestSOFDASSRevisit(t *testing.T) {
	// Star: both VMs hang off a central switch; the walk must revisit it.
	g := graph.New(5, 4)
	s := g.AddSwitch("s")
	c := g.AddSwitch("c")
	a := g.AddVM("a", 1)
	b := g.AddVM("b", 1)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, c, 1)
	g.MustAddEdge(c, a, 1)
	g.MustAddEdge(c, b, 1)
	g.MustAddEdge(c, d, 1)
	f, err := SOFDASS(g, s, []graph.NodeID{d}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Walk s,c,a,c,b (4 edges) + tree b,c,d (2 edges) + 2 setup = 8.
	if math.Abs(f.TotalCost()-8) > 1e-9 {
		t.Fatalf("cost = %v, want 8", f.TotalCost())
	}
}

func TestSOFDAZeroChain(t *testing.T) {
	g, req := paperStyleNet()
	req.ChainLen = 0
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	// Pure Steiner forest: 3+3 unit edges, no VMs.
	if math.Abs(f.TotalCost()-6) > 1e-9 {
		t.Errorf("cost = %v, want 6", f.TotalCost())
	}
	if len(f.UsedVMs()) != 0 {
		t.Errorf("used VMs = %v, want none", f.UsedVMs())
	}
}

func TestRequestValidate(t *testing.T) {
	g, req := paperStyleNet()
	if err := req.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := req
	bad.Sources = nil
	if err := bad.Validate(g); err == nil {
		t.Error("empty sources accepted")
	}
	bad = req
	bad.Dests = []graph.NodeID{99}
	if err := bad.Validate(g); err == nil {
		t.Error("out-of-range destination accepted")
	}
	bad = req
	bad.ChainLen = -1
	if err := bad.Validate(g); err == nil {
		t.Error("negative chain accepted")
	}
}

// conflictNet builds the crossing scenario that forces VNF conflicts:
// chains from s1 and s2 naturally claim the shared VMs a and b for
// different VNF indices.
func conflictNet() (*graph.Graph, graph.NodeID, graph.NodeID, graph.NodeID, graph.NodeID, []graph.NodeID) {
	g := graph.New(8, 8)
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	a := g.AddVM("a", 1)
	b := g.AddVM("b", 1)
	d1 := g.AddSwitch("d1")
	d2 := g.AddSwitch("d2")
	g.MustAddEdge(s1, a, 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, d1, 1)
	g.MustAddEdge(s2, b, 1)
	g.MustAddEdge(a, d2, 1)
	return g, s1, s2, d1, d2, []graph.NodeID{a, b}
}

func TestResolverCase1SameIndexSharing(t *testing.T) {
	g, s1, _, _, _, vms := conflictNet()
	oracle := chain.NewOracle(g, chain.Options{})
	f := NewForest(g, 2)
	r := newResolver(f, oracle, vms)

	sc1, err := oracle.Chain(vms, s1, vms[1], 2) // a=f1, b=f2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddWalk(sc1); err != nil {
		t.Fatal(err)
	}
	// A second identical-plan walk (same chain) should share, not conflict.
	sc1b := sc1.Clone()
	last, err := r.AddWalk(sc1b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.walks) != 2 {
		t.Fatalf("walks = %d, want 2", len(r.walks))
	}
	// Shared prefix means the same VNF clones.
	if r.walks[0].vnfClones[0] != r.walks[1].vnfClones[0] ||
		r.walks[0].vnfClones[1] != r.walks[1].vnfClones[1] {
		t.Error("second walk did not share the first walk's VNF clones")
	}
	if f.clones[last].Node != sc1.LastVM {
		t.Errorf("anchor node = %d, want %d", f.clones[last].Node, sc1.LastVM)
	}
	// Setup cost paid once.
	setup, _ := f.Cost()
	if math.Abs(setup-2) > 1e-9 {
		t.Errorf("setup = %v, want 2 (VMs shared)", setup)
	}
}

func TestResolverConflictingWalks(t *testing.T) {
	g, s1, s2, d1, d2, vms := conflictNet()
	oracle := chain.NewOracle(g, chain.Options{})
	f := NewForest(g, 2)
	r := newResolver(f, oracle, vms)

	sc1, err := oracle.Chain(vms, s1, vms[1], 2) // wants a=f1, b=f2
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := oracle.Chain(vms, s2, vms[0], 2) // wants b=f1, a=f2
	if err != nil {
		t.Fatal(err)
	}
	if sc1.VNFAt(vms[0]) != 1 || sc2.VNFAt(vms[0]) != 2 {
		t.Fatalf("test setup: expected crossing plans, got %v / %v", sc1.VMs, sc2.VMs)
	}
	last1, err := r.AddWalk(sc1)
	if err != nil {
		t.Fatal(err)
	}
	last2, err := r.AddWalk(sc2)
	if err != nil {
		t.Fatal(err)
	}
	// Resolution must leave a consistent owner map: a=f1, b=f2 (walk 1's
	// claims stand; walk 2 attaches or reroutes).
	if f.VNFOf(vms[0]) != 1 || f.VNFOf(vms[1]) != 2 {
		t.Fatalf("owners: a=f%d b=f%d, want f1/f2", f.VNFOf(vms[0]), f.VNFOf(vms[1]))
	}
	// Both anchors must deliver the full chain.
	f.MarkDestination(d1, f.appendClone(last1, d1, g.FindEdge(f.clones[last1].Node, d1)))
	f.MarkDestination(d2, f.appendClone(last2, d2, g.FindEdge(f.clones[last2].Node, d2)))
	if err := f.Validate([]graph.NodeID{s1, s2}, []graph.NodeID{d1, d2}); err != nil {
		t.Fatal(err)
	}
}

func TestSOFDAConflictScenarioEndToEnd(t *testing.T) {
	g, s1, s2, d1, d2, _ := conflictNet()
	req := Request{Sources: []graph.NodeID{s1, s2}, Dests: []graph.NodeID{d1, d2}, ChainLen: 2}
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() > 10+1e-9 {
		t.Errorf("conflict scenario cost = %v, want <= 10", f.TotalCost())
	}
}

func TestForestPruneRemovesDeadWood(t *testing.T) {
	g, s1, _, d1, _, vms := conflictNet()
	oracle := chain.NewOracle(g, chain.Options{})
	f := NewForest(g, 2)
	r := newResolver(f, oracle, vms)
	sc, err := oracle.Chain(vms, s1, vms[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	last, err := r.AddWalk(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Dangle an unused branch.
	f.appendClone(last, d1, g.FindEdge(f.clones[last].Node, d1))
	dead := f.appendClone(f.roots[0], vms[0], g.FindEdge(s1, vms[0]))
	f.MarkDestination(d1, f.appendClone(last, d1, g.FindEdge(f.clones[last].Node, d1)))
	before := f.TotalCost()
	f.Prune()
	after := f.TotalCost()
	if after >= before {
		t.Fatalf("prune did not reduce cost: %v -> %v", before, after)
	}
	if !f.clones[dead].deleted {
		t.Error("dead branch survived pruning")
	}
	if err := f.Validate([]graph.NodeID{s1}, []graph.NodeID{d1}); err != nil {
		t.Fatal(err)
	}
}

func TestForestValidateRejectsBadForests(t *testing.T) {
	g, s1, _, d1, _, vms := conflictNet()
	f := NewForest(g, 2)
	root := f.newRoot(s1)
	c := f.appendClone(root, vms[0], g.FindEdge(s1, vms[0]))
	if err := f.enable(c, 1); err != nil {
		t.Fatal(err)
	}
	f.MarkDestination(d1, c)
	// d1's clone is actually a clone of vms[0], and the chain is short.
	if err := f.Validate([]graph.NodeID{s1}, []graph.NodeID{d1}); err == nil {
		t.Error("validate accepted mismatched destination clone")
	}
}

func TestEnableRejectsConflicts(t *testing.T) {
	g, s1, _, _, _, vms := conflictNet()
	f := NewForest(g, 2)
	root := f.newRoot(s1)
	c1 := f.appendClone(root, vms[0], g.FindEdge(s1, vms[0]))
	if err := f.enable(c1, 1); err != nil {
		t.Fatal(err)
	}
	c2 := f.appendClone(c1, vms[1], g.FindEdge(vms[0], vms[1]))
	c3 := f.appendClone(c2, vms[0], g.FindEdge(vms[0], vms[1]))
	if err := f.enable(c3, 2); err == nil {
		t.Error("double-enable of a VM accepted")
	}
	if err := f.enable(c2, 5); err != nil {
		t.Error("enable on fresh VM refused:", err)
	}
	if err := f.enable(root, 1); err == nil {
		t.Error("enable on switch accepted")
	}
}

// TestSOFDARandomFeasibility is the main property test: on random connected
// networks with random requests, SOFDA and SOFDA-SS always produce feasible
// forests with finite cost >= the trivial VM lower bound.
func TestSOFDARandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ok := 0
	for seed := int64(0); seed < 60; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 22, ExtraEdges: 30, VMFraction: 0.45, MaxEdge: 9, MaxSetup: 6,
		}, seed)
		vms := g.VMs()
		sws := g.Switches()
		if len(vms) < 5 || len(sws) < 4 {
			continue
		}
		chainLen := 1 + rng.Intn(3)
		nSrc := 1 + rng.Intn(3)
		nDst := 1 + rng.Intn(3)
		srcs := graph.SampleDistinct(rng, sws, nSrc)
		dsts := graph.SampleDistinct(rng, sws, nDst)
		// Avoid source/dest overlap for clarity.
		overlap := false
		for _, s := range srcs {
			for _, d := range dsts {
				if s == d {
					overlap = true
				}
			}
		}
		if overlap {
			continue
		}
		req := Request{Sources: srcs, Dests: dsts, ChainLen: chainLen}
		f, err := SOFDA(g, req, nil)
		if err != nil {
			t.Fatalf("seed %d: SOFDA: %v", seed, err)
		}
		if err := f.Validate(srcs, dsts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lb := lowerBoundCost(g, vms, chainLen)
		if f.TotalCost() < lb-1e-9 {
			t.Fatalf("seed %d: cost %v below lower bound %v", seed, f.TotalCost(), lb)
		}
		ss, err := SOFDASS(g, srcs[0], dsts, chainLen, nil)
		if err != nil {
			t.Fatalf("seed %d: SOFDA-SS: %v", seed, err)
		}
		if err := ss.Validate(srcs[:1], dsts); err != nil {
			t.Fatalf("seed %d: SOFDA-SS validate: %v", seed, err)
		}
		ok++
	}
	if ok < 30 {
		t.Fatalf("only %d random instances were exercised", ok)
	}
	t.Logf("validated %d random instances", ok)
}

func TestSOFDAUsesMultipleSourcesWhenCheaper(t *testing.T) {
	g, req := paperStyleNet()
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	roots := f.Roots()
	rootNodes := make(map[graph.NodeID]bool)
	for _, r := range roots {
		rootNodes[f.Clone(r).Node] = true
	}
	if !rootNodes[req.Sources[0]] || !rootNodes[req.Sources[1]] {
		t.Errorf("expected both sources used, roots = %v", rootNodes)
	}
}

func TestStatsAndAccessors(t *testing.T) {
	g, req := paperStyleNet()
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.TotalCost != f.TotalCost() {
		t.Error("Stats.TotalCost mismatch")
	}
	if st.UsedVMs != len(f.UsedVMs()) {
		t.Error("Stats.UsedVMs mismatch")
	}
	if f.ChainLen() != 2 || f.Graph() != g {
		t.Error("accessors broken")
	}
	ds := f.Destinations()
	if len(ds) != 2 {
		t.Errorf("Destinations = %v", ds)
	}
	if _, ok := f.DestClone(ds[0]); !ok {
		t.Error("DestClone missing")
	}
}
