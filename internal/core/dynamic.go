package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sof/internal/chain"
	"sof/internal/graph"
)

// Dynamic reconfiguration operations of Section VII-C. All operations
// mutate the forest in place and keep it feasible; each returns the cost
// delta (new − old) so callers can track accumulated cost.

// Leave removes destination d from the forest (Section VII-C case 1):
// if its clone chain became useless it is pruned back to the nearest
// branch point.
func (f *Forest) Leave(d graph.NodeID) (float64, error) {
	if _, ok := f.dests[d]; !ok {
		return 0, fmt.Errorf("core: destination %d not in forest", d)
	}
	before := f.TotalCost()
	delete(f.dests, d)
	f.Prune()
	return f.TotalCost() - before, nil
}

// Join connects a new destination d (Section VII-C case 2): for every
// forest clone u it evaluates the extension walk from u to d installing
// the VNFs still missing downstream of u, and grafts the cheapest one.
// freeVMs are the VMs available for newly installed VNFs.
//
// When no attach plan exists, the returned error aggregates (errors.Join)
// the per-clone causes, so callers can tell "no feasible graft" (every
// Extension was infeasible or disconnected) from "forest metadata corrupt"
// (vnfProgress found out-of-order VNFs) — the latter is named explicitly
// in the message.
func (f *Forest) Join(oracle *chain.Oracle, freeVMs []graph.NodeID, d graph.NodeID) (float64, error) {
	return f.join(oracle, freeVMs, d, math.Inf(1))
}

// join is Join with a graft budget: a cheapest plan whose extension cost
// exceeds budget is rejected with ErrOverBudget before any mutation, which
// is what lets Repair bound the fast path and fall back to a full
// re-embed instead of paying an arbitrarily bad graft.
func (f *Forest) join(oracle *chain.Oracle, freeVMs []graph.NodeID, d graph.NodeID, budget float64) (float64, error) {
	if _, ok := f.dests[d]; ok {
		return 0, fmt.Errorf("core: destination %d already served", d)
	}
	type attachPlan struct {
		clone    CloneID
		progress int
		ext      *chain.ServiceChain
	}
	var best *attachPlan
	bestCost := math.Inf(1)
	// Exclude VMs already enabled anywhere in the forest.
	avail := make([]graph.NodeID, 0, len(freeVMs))
	for _, v := range freeVMs {
		if _, used := f.owner[v]; !used {
			avail = append(avail, v)
		}
	}
	var metaErrs, extErrs []error
	for id := range f.clones {
		c := CloneID(id)
		if f.clones[c].deleted {
			continue
		}
		progress, err := f.vnfProgress(c)
		if err != nil {
			metaErrs = append(metaErrs, fmt.Errorf("clone %d: %w", c, err))
			continue
		}
		remaining := f.chainLen - progress
		ext, err := oracle.Extension(avail, f.clones[c].Node, d, remaining)
		if err != nil {
			extErrs = append(extErrs, fmt.Errorf("clone %d (node %d): %w", c, f.clones[c].Node, err))
			continue
		}
		if ext.TotalCost() < bestCost {
			bestCost = ext.TotalCost()
			best = &attachPlan{clone: c, progress: progress, ext: ext}
		}
	}
	if best == nil {
		joined := errors.Join(append(metaErrs, extErrs...)...)
		switch {
		case len(metaErrs) > 0:
			return 0, fmt.Errorf("core: no attach plan for destination %d and %d clone(s) with corrupt metadata: %w",
				d, len(metaErrs), joined)
		case joined != nil:
			return 0, fmt.Errorf("core: no feasible join point for destination %d: %w", d, joined)
		default:
			return 0, fmt.Errorf("core: no feasible join point for destination %d (forest has no live clones)", d)
		}
	}
	if bestCost > budget {
		return 0, fmt.Errorf("core: cheapest graft for destination %d costs %.6g, budget %.6g: %w",
			d, bestCost, budget, ErrOverBudget)
	}
	before := f.TotalCost()
	last, err := f.graftWalk(best.clone, best.ext, best.progress)
	if err != nil {
		return 0, err
	}
	f.MarkDestination(d, last)
	if err := f.checkDest(d); err != nil {
		return 0, err
	}
	return f.TotalCost() - before, nil
}

// graftWalk appends ext's walk under anchor clone by clone, enabling
// ext's VMs with chain indices baseVNF+1, baseVNF+2, …; it returns the
// final clone of the walk (the one serving a joined destination).
func (f *Forest) graftWalk(anchor CloneID, ext *chain.ServiceChain, baseVNF int) (CloneID, error) {
	cur := anchor
	vmIdx := 0
	for i := 1; i < len(ext.Nodes); i++ {
		cur = f.appendClone(cur, ext.Nodes[i], ext.Edges[i-1])
		if vmIdx < len(ext.VMPos) && ext.VMPos[vmIdx] == i {
			if err := f.enable(cur, baseVNF+vmIdx+1); err != nil {
				return NoClone, err
			}
			vmIdx++
		}
	}
	return cur, nil
}

// checkDest validates a single destination's chain.
func (f *Forest) checkDest(d graph.NodeID) error {
	c, ok := f.dests[d]
	if !ok {
		return fmt.Errorf("core: destination %d unserved", d)
	}
	got, err := f.vnfProgress(c)
	if err != nil {
		return err
	}
	if got != f.chainLen {
		return fmt.Errorf("core: destination %d has %d of %d VNFs", d, got, f.chainLen)
	}
	return nil
}

// children returns the live child clones of c (computed on demand; the
// forest stores only parent pointers).
func (f *Forest) children(c CloneID) []CloneID {
	var out []CloneID
	for id := range f.clones {
		if !f.clones[id].deleted && f.clones[id].Parent == c {
			out = append(out, CloneID(id))
		}
	}
	return out
}

// RemoveVNF deletes VNF index j from the service (Section VII-C case 3):
// every clone running f_j becomes pass-through, downstream VNF indices
// shift down, and the forest's chain length shrinks by one.
func (f *Forest) RemoveVNF(j int) error {
	if j < 1 || j > f.chainLen {
		return fmt.Errorf("core: VNF index %d out of range [1,%d]", j, f.chainLen)
	}
	for id := range f.clones {
		c := &f.clones[id]
		if c.deleted || c.VNF == 0 {
			continue
		}
		switch {
		case c.VNF == j:
			f.disable(CloneID(id))
		case c.VNF > j:
			c.VNF--
			use := f.owner[c.Node]
			use.vnf--
			f.owner[c.Node] = use
		}
	}
	f.chainLen--
	return nil
}

// InsertVNF adds a new VNF at index j (Section VII-C case 4): downstream
// indices shift up, and for every maximal subtree that crosses the j-1 → j
// boundary a fresh VM is spliced in. freeVMs are candidates for the new
// VNF instances. The implementation reroutes each affected boundary: the
// path between the VM of f_{j-1} (or the root) and the VM of old f_j is
// replaced by a walk through a newly enabled VM.
func (f *Forest) InsertVNF(oracle *chain.Oracle, freeVMs []graph.NodeID, j int) error {
	if j < 1 || j > f.chainLen+1 {
		return fmt.Errorf("core: VNF insert index %d out of range [1,%d]", j, f.chainLen+1)
	}
	// Shift indices ≥ j up.
	for id := range f.clones {
		c := &f.clones[id]
		if c.deleted || c.VNF == 0 || c.VNF < j {
			continue
		}
		c.VNF++
		use := f.owner[c.Node]
		use.vnf++
		f.owner[c.Node] = use
	}
	f.chainLen++
	// Find boundary clones: clones whose subtree needs f_j next — i.e.
	// clones with progress j-1 whose children start the old f_j (now
	// f_{j+1}) segment, or destinations lacking f_j.
	avail := make([]graph.NodeID, 0, len(freeVMs))
	for _, v := range freeVMs {
		if _, used := f.owner[v]; !used {
			avail = append(avail, v)
		}
	}
	// Work per VNF-(j+1) clone and per destination with progress j-1.
	var fixups []CloneID
	for id := range f.clones {
		c := CloneID(id)
		if f.clones[c].deleted {
			continue
		}
		if f.clones[c].VNF == j+1 {
			fixups = append(fixups, c)
		}
	}
	if j == f.chainLen {
		// Appending at the end: the boundary sits just before each
		// destination's serving clone.
		for _, c := range f.dests {
			got, err := f.vnfProgress(c)
			if err != nil {
				return err
			}
			if got == f.chainLen-1 {
				fixups = append(fixups, c)
			}
		}
	}
	// Ancestors first: a splice on a shared path repairs every descendant
	// boundary below it, and the parent-progress guard then skips them.
	// Descendant-first order would instead stack two copies of the new
	// VNF on one path.
	depth := func(c CloneID) int {
		d := 0
		for cur := f.clones[c].Parent; cur != NoClone; cur = f.clones[cur].Parent {
			d++
		}
		return d
	}
	sort.Slice(fixups, func(i, j int) bool { return depth(fixups[i]) < depth(fixups[j]) })
	done := make(map[CloneID]bool)
	for _, c := range fixups {
		if done[c] {
			continue
		}
		done[c] = true
		parent := f.clones[c].Parent
		if parent == NoClone {
			return fmt.Errorf("core: VNF clone %d has no parent", c)
		}
		// Skip boundaries already repaired by a splice on a shared
		// ancestor path (e.g. two destinations served through one walk).
		parentProg, err := f.vnfProgress(parent)
		if err != nil {
			return err
		}
		if parentProg != j-1 {
			continue
		}
		if len(avail) == 0 {
			return fmt.Errorf("core: no free VM for inserted VNF f%d", j)
		}
		// Splice: parent → (walk via new VM w) → c.
		from := f.clones[parent].Node
		to := f.clones[c].Node
		bestExt, err := oracle.Extension(avail, from, to, 1)
		if err != nil {
			return fmt.Errorf("core: cannot splice VNF f%d between %d and %d: %w", j, from, to, err)
		}
		bestVM := bestExt.VMs[0]
		cur := parent
		for i := 1; i < len(bestExt.Nodes)-1; i++ {
			cur = f.appendClone(cur, bestExt.Nodes[i], bestExt.Edges[i-1])
			if bestExt.VMPos[0] == i {
				if err := f.enable(cur, j); err != nil {
					return err
				}
			}
		}
		// Re-parent c onto the spliced walk's last interior clone.
		f.clones[c].Parent = cur
		f.clones[c].ParentEdge = bestExt.Edges[len(bestExt.Edges)-1]
		// The chosen VM is no longer available for other boundaries.
		for i, v := range avail {
			if v == bestVM {
				avail = append(avail[:i], avail[i+1:]...)
				break
			}
		}
	}
	f.Prune()
	return nil
}

// RerouteCongestedEdge re-connects every clone whose parent edge is e using
// the current shortest path (Section VII-C case 5); callers update edge
// costs first (e.g. via the Fortz–Thorup tracker).
//
// A clone whose reroute fails (typically ErrDisconnected after a failure)
// is left on its old parent edge; the sweep continues to the remaining
// clones and the per-clone causes come back joined (errors.Join) alongside
// the count of clones that did move, so callers see partial progress
// instead of an all-or-nothing abort.
func (f *Forest) RerouteCongestedEdge(oracle *chain.Oracle, e graph.EdgeID) (int, error) {
	rerouted := 0
	var errs []error
	for id := range f.clones {
		c := CloneID(id)
		cl := f.clones[c]
		if cl.deleted || cl.ParentEdge != e {
			continue
		}
		from := f.clones[cl.Parent].Node
		nodes, edges, _, err := oracle.Path(from, cl.Node)
		if err != nil {
			errs = append(errs, fmt.Errorf("clone %d (node %d): %w", c, cl.Node, err))
			continue
		}
		if len(nodes) < 2 {
			continue
		}
		cur := cl.Parent
		for i := 1; i < len(nodes)-1; i++ {
			cur = f.appendClone(cur, nodes[i], edges[i-1])
		}
		f.clones[c].Parent = cur
		f.clones[c].ParentEdge = edges[len(edges)-1]
		rerouted++
	}
	return rerouted, errors.Join(errs...)
}

// MigrateOverloadedVM moves the VNF hosted on VM v to a fresh VM
// (Section VII-C case 6): the replacement is chosen to minimize the
// connection cost to the old VM's parent and children, then spliced in.
func (f *Forest) MigrateOverloadedVM(oracle *chain.Oracle, freeVMs []graph.NodeID, v graph.NodeID) error {
	use, ok := f.owner[v]
	if !ok {
		return fmt.Errorf("core: VM %d hosts no VNF", v)
	}
	old := use.clone
	parent := f.clones[old].Parent
	kids := f.children(old)
	var parentNode graph.NodeID = graph.None
	if parent != NoClone {
		parentNode = f.clones[parent].Node
	}
	var bestVM graph.NodeID = graph.None
	bestCost := math.Inf(1)
	for _, w := range freeVMs {
		if _, used := f.owner[w]; used || w == v {
			continue
		}
		// Never migrate onto a blocked VM (failed, or saturated by a
		// capacitated session): the oracle would report it unreachable
		// anyway, but checking here keeps the error crisp and skips the
		// path queries.
		if f.g.NodeBlocked(w) {
			continue
		}
		cost := f.g.NodeCost(w)
		if parentNode != graph.None {
			_, _, d, err := oracle.Path(parentNode, w)
			if err != nil {
				continue
			}
			cost += d
		}
		feasible := true
		for _, k := range kids {
			_, _, d, err := oracle.Path(w, f.clones[k].Node)
			if err != nil {
				feasible = false
				break
			}
			cost += d
		}
		if feasible && cost < bestCost {
			bestCost = cost
			bestVM = w
		}
	}
	if bestVM == graph.None {
		return fmt.Errorf("core: no migration target for VM %d", v)
	}
	vnf := use.vnf
	f.disable(old)
	// Build the path parent → bestVM, enable the VNF there, then re-parent
	// the children via paths bestVM → child.
	var newClone CloneID
	if parent == NoClone {
		newClone = f.newRoot(bestVM)
	} else {
		nodes, edges, _, err := oracle.Path(parentNode, bestVM)
		if err != nil {
			return err
		}
		cur := parent
		for i := 1; i < len(nodes); i++ {
			cur = f.appendClone(cur, nodes[i], edges[i-1])
		}
		newClone = cur
	}
	if err := f.enable(newClone, vnf); err != nil {
		return err
	}
	for _, k := range kids {
		nodes, edges, _, err := oracle.Path(bestVM, f.clones[k].Node)
		if err != nil {
			return err
		}
		cur := newClone
		for i := 1; i < len(nodes)-1; i++ {
			cur = f.appendClone(cur, nodes[i], edges[i-1])
		}
		if len(edges) > 0 {
			f.clones[k].Parent = cur
			f.clones[k].ParentEdge = edges[len(edges)-1]
		} else {
			// Same node: link in place.
			f.clones[k].Parent = newClone
			f.clones[k].ParentEdge = graph.NoEdge
		}
	}
	// The old clone may now be a dead leaf; prune reclaims it and any
	// stranded path.
	f.Prune()
	return nil
}
