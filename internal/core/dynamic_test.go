package core

import (
	"math/rand"
	"testing"

	"sof/internal/chain"
	"sof/internal/graph"
)

// dynNet builds a richly connected network for dynamic-operation tests.
func dynNet(t *testing.T, seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	t.Helper()
	g := graph.RandomConnected(graph.RandomConfig{
		Nodes: 24, ExtraEdges: 36, VMFraction: 0.45, MaxEdge: 8, MaxSetup: 5,
	}, seed)
	return g, g.VMs(), g.Switches()
}

func buildDynForest(t *testing.T, seed int64) (*Forest, *chain.Oracle, []graph.NodeID, Request) {
	t.Helper()
	g, vms, sws := dynNet(t, seed)
	if len(vms) < 6 || len(sws) < 6 {
		t.Skip("unsuitable random instance")
	}
	rng := rand.New(rand.NewSource(seed))
	req := Request{
		Sources:  graph.SampleDistinct(rng, sws, 2),
		Dests:    graph.SampleDistinct(rng, sws[2:], 3),
		ChainLen: 2,
	}
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatalf("SOFDA: %v", err)
	}
	return f, chain.NewOracle(g, chain.Options{}), vms, req
}

func TestLeaveReducesCostAndKeepsOthers(t *testing.T) {
	f, _, _, req := buildDynForest(t, 3)
	leaving := req.Dests[0]
	delta, err := f.Leave(leaving)
	if err != nil {
		t.Fatal(err)
	}
	if delta > 1e-9 {
		t.Errorf("leave increased cost by %v", delta)
	}
	if err := f.Validate(req.Sources, req.Dests[1:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Leave(leaving); err == nil {
		t.Error("double leave accepted")
	}
}

func TestJoinServesNewDestination(t *testing.T) {
	f, oracle, vms, req := buildDynForest(t, 5)
	// Find a switch that is not yet a destination.
	var newDest graph.NodeID = graph.None
	for _, s := range f.Graph().Switches() {
		inReq := false
		for _, d := range req.Dests {
			if d == s {
				inReq = true
			}
		}
		for _, src := range req.Sources {
			if src == s {
				inReq = true
			}
		}
		if !inReq {
			newDest = s
			break
		}
	}
	if newDest == graph.None {
		t.Skip("no spare switch")
	}
	delta, err := f.Join(oracle, vms, newDest)
	if err != nil {
		t.Fatal(err)
	}
	if delta < 0 {
		t.Errorf("join decreased cost by %v", -delta)
	}
	if err := f.Validate(req.Sources, append(req.Dests, newDest)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join(oracle, vms, newDest); err == nil {
		t.Error("double join accepted")
	}
}

func TestJoinThenLeaveRoundTrip(t *testing.T) {
	f, oracle, vms, req := buildDynForest(t, 7)
	var newDest graph.NodeID = graph.None
	for _, s := range f.Graph().Switches() {
		if _, served := f.DestClone(s); !served && s != req.Sources[0] && s != req.Sources[1] {
			newDest = s
			break
		}
	}
	if newDest == graph.None {
		t.Skip("no spare switch")
	}
	before := f.TotalCost()
	if _, err := f.Join(oracle, vms, newDest); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Leave(newDest); err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() > before+1e-6 {
		t.Errorf("join+leave left residual cost: %v -> %v", before, f.TotalCost())
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveVNFShortensChain(t *testing.T) {
	f, _, _, req := buildDynForest(t, 9)
	if err := f.RemoveVNF(1); err != nil {
		t.Fatal(err)
	}
	if f.ChainLen() != 1 {
		t.Fatalf("chain length = %d, want 1", f.ChainLen())
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveVNF(5); err == nil {
		t.Error("out-of-range removal accepted")
	}
}

func TestInsertVNFExtendsChain(t *testing.T) {
	f, oracle, vms, req := buildDynForest(t, 11)
	before := f.ChainLen()
	if err := f.InsertVNF(oracle, vms, 1); err != nil {
		t.Fatalf("insert at head: %v", err)
	}
	if f.ChainLen() != before+1 {
		t.Fatalf("chain length = %d, want %d", f.ChainLen(), before+1)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	// Append at the tail too.
	if err := f.InsertVNF(oracle, vms, f.ChainLen()+1); err != nil {
		t.Fatalf("insert at tail: %v", err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	if err := f.InsertVNF(oracle, vms, 99); err == nil {
		t.Error("out-of-range insert accepted")
	}
}

func TestRerouteCongestedEdge(t *testing.T) {
	f, oracle, _, req := buildDynForest(t, 13)
	// Find an edge used by the forest.
	var used graph.EdgeID = graph.NoEdge
	for id := range f.clones {
		c := f.clones[id]
		if !c.deleted && c.Parent != NoClone && c.ParentEdge != graph.NoEdge {
			used = c.ParentEdge
			break
		}
	}
	if used == graph.NoEdge {
		t.Skip("forest uses no edges")
	}
	// Congest it: huge cost, then reroute.
	f.Graph().SetEdgeCost(used, 1e6)
	oracle.InvalidateCache()
	n, err := f.RerouteCongestedEdge(oracle, used)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing rerouted")
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	// The congested edge is no longer used by any clone.
	for id := range f.clones {
		c := f.clones[id]
		if !c.deleted && c.ParentEdge == used {
			t.Fatal("congested edge still in use")
		}
	}
}

func TestMigrateOverloadedVM(t *testing.T) {
	f, oracle, vms, req := buildDynForest(t, 15)
	usedVMs := f.UsedVMs()
	if len(usedVMs) == 0 {
		t.Skip("no VMs in forest")
	}
	victim := usedVMs[0]
	if err := f.MigrateOverloadedVM(oracle, vms, victim); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	if f.VNFOf(victim) != 0 {
		t.Error("victim VM still enabled")
	}
	if err := f.MigrateOverloadedVM(oracle, vms, victim); err == nil {
		t.Error("migrating an unused VM accepted")
	}
}

func TestDynamicSequence(t *testing.T) {
	// A stress sequence mixing all operations; the forest must stay valid
	// throughout.
	f, oracle, vms, req := buildDynForest(t, 21)
	dests := append([]graph.NodeID(nil), req.Dests...)
	for _, s := range f.Graph().Switches() {
		if _, ok := f.DestClone(s); ok {
			continue
		}
		skip := false
		for _, src := range req.Sources {
			if src == s {
				skip = true
			}
		}
		if skip {
			continue
		}
		if _, err := f.Join(oracle, vms, s); err == nil {
			dests = append(dests, s)
		}
		if len(dests) >= 6 {
			break
		}
	}
	if err := f.Validate(req.Sources, dests); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Leave(dests[0]); err != nil {
		t.Fatal(err)
	}
	dests = dests[1:]
	if err := f.InsertVNF(oracle, vms, 2); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := f.Validate(req.Sources, dests); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveVNF(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(req.Sources, dests); err != nil {
		t.Fatal(err)
	}
}
