package core

import (
	"context"
	"testing"
	"time"

	"sof/internal/chain"
	"sof/internal/graph"
)

// feedEager replays the canonical candidate stream into an eager builder
// the way the streamed leader does: ExpectCandidates with each source's
// pair count up front, AddCandidate for the feasible results, and
// NoteDelivered after every pair — feasible, infeasible, or pruned alike.
func feedEager(t *testing.T, b *AuxGraphBuilder, req Request, vms []graph.NodeID, results []chain.Result) {
	t.Helper()
	counts := make(map[graph.NodeID]int)
	for _, r := range results {
		counts[r.Pair.Source]++
	}
	for _, s := range req.Sources {
		b.ExpectCandidates(s, counts[s])
	}
	for _, r := range results {
		if r.Err == nil && r.Chain != nil {
			if _, err := b.AddCandidate(r.Chain); err != nil {
				t.Fatalf("AddCandidate: %v", err)
			}
		}
		b.NoteDelivered(r.Pair.Source)
	}
}

// TestEagerCompleteMatchesInline is the eager-mode correctness claim: for
// every seed, pruning on and off, a builder whose per-source refinements
// ran eagerly (launched as each source's last candidate was delivered)
// lands on the bit-identical forest cost of the plain builder and of the
// centralized solve.
func TestEagerCompleteMatchesInline(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts, _ := auxBuilderInstance(t, seed)
		direct, err := SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d: SOFDA: %v", seed, err)
		}
		oracle := chain.NewOracle(net.G, chain.Options{})
		results, err := oracle.Chains(context.Background(), opts.VMs, chain.Pairs(req.Sources, opts.VMs), req.ChainLen, 1)
		if err != nil {
			t.Fatalf("seed %d: candidates: %v", seed, err)
		}
		for _, prune := range []bool{false, true} {
			b, err := NewAuxGraphBuilder(context.Background(), net.G, req, opts)
			if err != nil {
				t.Fatalf("seed %d: builder: %v", seed, err)
			}
			if prune {
				b.EnablePruning()
			}
			b.EnableEager()
			feedEager(t, b, req, opts.VMs, results)
			f, err := b.Complete(context.Background())
			if err != nil {
				t.Fatalf("seed %d prune=%v: eager Complete: %v", seed, prune, err)
			}
			if f.TotalCost() != direct.TotalCost() {
				t.Errorf("seed %d prune=%v: eager cost %v != SOFDA %v",
					seed, prune, f.TotalCost(), direct.TotalCost())
			}
			if len(b.eagerRuns) != len(b.aux.srcDup) {
				t.Errorf("seed %d prune=%v: %d eager runs launched for %d distinct sources",
					seed, prune, len(b.eagerRuns), len(b.aux.srcDup))
			}
		}
	}
}

// TestEagerOverlapAccounting pins the completeness tracking and the
// overlap metric on a controlled schedule: a source whose candidates all
// arrive early has its refinement finished well before Complete (counted
// as early, with wall time), while a source completed only by the last
// delivery may finish during the completion phase — but every launched
// run is consumed either way, and destination-tree warming always counts.
func TestEagerOverlapAccounting(t *testing.T) {
	net, req, opts, _ := auxBuilderInstance(t, 7)
	oracle := chain.NewOracle(net.G, chain.Options{})
	results, err := oracle.Chains(context.Background(), opts.VMs, chain.Pairs(req.Sources, opts.VMs), req.ChainLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAuxGraphBuilder(context.Background(), net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	b.EnableEager()
	counts := make(map[graph.NodeID]int)
	for _, r := range results {
		counts[r.Pair.Source]++
	}
	for _, s := range req.Sources {
		b.ExpectCandidates(s, counts[s])
	}
	// Deliver everything except the final source's last pair, then give
	// the early refinements time to land before the closing delivery.
	last := len(results) - 1
	for _, r := range results[:last] {
		if r.Err == nil && r.Chain != nil {
			if _, err := b.AddCandidate(r.Chain); err != nil {
				t.Fatal(err)
			}
		}
		b.NoteDelivered(r.Pair.Source)
	}
	time.Sleep(50 * time.Millisecond)
	r := results[last]
	if r.Err == nil && r.Chain != nil {
		if _, err := b.AddCandidate(r.Chain); err != nil {
			t.Fatal(err)
		}
	}
	b.NoteDelivered(r.Pair.Source)

	f, err := b.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("nil forest")
	}
	closures, overlapNS := b.EagerOverlap()
	// Destination warming is unconditional; the early-completed sources
	// (every distinct source except possibly the last one) had 50ms to
	// finish refinements that take well under that.
	if closures < len(req.Dests)+1 {
		t.Fatalf("EagerOverlap closures = %d, want at least dests %d + 1 early refinement",
			closures, len(req.Dests))
	}
	if overlapNS <= 0 {
		t.Fatalf("EagerOverlap ns = %d, want > 0 with refinements finished before Complete", overlapNS)
	}
}

// TestEagerLastDeliveryLaunch pins the "terminal completes last" edge:
// when a source's final candidate is the very last delivery before
// Complete, its refinement still launches (and is awaited), never lost —
// the forest matches the plain builder exactly.
func TestEagerLastDeliveryLaunch(t *testing.T) {
	net, req, opts, candidates := auxBuilderInstance(t, 23)
	plain, err := SOFDAFromCandidates(net.G, req, opts, candidates)
	if err != nil {
		t.Fatal(err)
	}
	oracle := chain.NewOracle(net.G, chain.Options{})
	results, err := oracle.Chains(context.Background(), opts.VMs, chain.Pairs(req.Sources, opts.VMs), req.ChainLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAuxGraphBuilder(context.Background(), net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	b.EnableEager()
	feedEager(t, b, req, opts.VMs, results)
	// Complete immediately: the last source's run races the completion
	// phase and must be waited on, not dropped.
	f, err := b.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != plain.TotalCost() {
		t.Errorf("eager cost %v != plain builder %v", f.TotalCost(), plain.TotalCost())
	}
	if len(b.eagerRuns) != len(b.aux.srcDup) {
		t.Errorf("%d eager runs for %d sources; the last-delivery launch was lost",
			len(b.eagerRuns), len(b.aux.srcDup))
	}
}
