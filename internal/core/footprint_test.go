package core

import (
	"testing"

	"sof/internal/graph"
)

// TestForestFootprint pins the footprint extraction capacitated sessions
// reserve by: every live clone's parent edge (with multiplicity) plus the
// used VMs, tracking prunes as they happen.
func TestForestFootprint(t *testing.T) {
	g, req := paperStyleNet()
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := f.Footprint()
	if len(fp.VMs) != len(f.UsedVMs()) {
		t.Fatalf("footprint VMs = %d, UsedVMs = %d", len(fp.VMs), len(f.UsedVMs()))
	}
	// Each live non-root clone contributes exactly one edge.
	live := 0
	for id := 0; id < f.NumClones(); id++ {
		if f.CloneDeleted(CloneID(id)) {
			continue
		}
		if c := f.Clone(CloneID(id)); c.Parent != NoClone && c.ParentEdge != graph.NoEdge {
			live++
		}
	}
	if len(fp.Edges) != live {
		t.Fatalf("footprint edges = %d, live non-root clones = %d", len(fp.Edges), live)
	}
	// The paper-style net embeds two disjoint 3-edge trees: 6 edge uses.
	if len(fp.Edges) != 6 {
		t.Fatalf("footprint edges = %d, want 6 on the paper-style net", len(fp.Edges))
	}

	// Leave one destination: the pruned branch's edges drop out of the
	// footprint immediately.
	if _, err := f.Leave(req.Dests[1]); err != nil {
		t.Fatal(err)
	}
	fp2 := f.Footprint()
	if len(fp2.Edges) >= len(fp.Edges) {
		t.Fatalf("footprint after Leave has %d edges, want < %d", len(fp2.Edges), len(fp.Edges))
	}
}
