// Package core implements the paper's primary contribution: the Service
// Overlay Forest model and the two embedding algorithms, SOFDA-SS
// (Algorithm 1, single source, (2+ρST)-approximation) and SOFDA
// (Algorithm 2, multiple sources, 3ρST-approximation) with VNF-conflict
// resolution (Procedure 4), plus the dynamic reconfiguration operations of
// Section VII-C.
//
// A forest is represented as a set of rooted clone trees. A clone is one
// traversal of a real network node: walks that revisit a node produce
// several clones of it, and every clone's parent link is paid once, which
// realizes the paper's accounting rule that a duplicated link costs once
// per duplication. At most one clone of a VM runs a VNF, and a VM runs at
// most one VNF across the entire forest.
package core

import (
	"fmt"
	"math"
	"sort"

	"sof/internal/chain"
	"sof/internal/graph"
)

// CloneID identifies a clone within a Forest.
type CloneID int

// NoClone is the sentinel for "no clone" (e.g. the parent of a root).
const NoClone CloneID = -1

// Clone is one traversal instance of a real node.
type Clone struct {
	// Node is the real network node this clone copies.
	Node graph.NodeID
	// VNF is the 1-based index of the VNF this clone runs, 0 if none.
	VNF int
	// Parent is the upstream clone, NoClone for tree roots.
	Parent CloneID
	// ParentEdge is the real edge connecting Node to the parent's node.
	ParentEdge graph.EdgeID
	// deleted marks clones removed by pruning or surgery.
	deleted bool
}

// vmUse records the global VNF assignment of a real VM (IP constraint (6)).
type vmUse struct {
	vnf   int
	clone CloneID
}

// Forest is a service overlay forest under construction or in service.
type Forest struct {
	g        *graph.Graph
	chainLen int
	clones   []Clone
	roots    []CloneID
	// owner maps a real VM to its unique enabled VNF and clone.
	owner map[graph.NodeID]vmUse
	// dests maps each destination to the clone that serves it.
	dests map[graph.NodeID]CloneID
	// backups holds pre-computed standby attach plans for critical
	// destinations (see PlanBackups in survive.go); nil until planned.
	backups map[graph.NodeID]backupPlan
}

// NewForest returns an empty forest over g for a chain of chainLen VNFs.
func NewForest(g *graph.Graph, chainLen int) *Forest {
	return &Forest{
		g:        g,
		chainLen: chainLen,
		owner:    make(map[graph.NodeID]vmUse),
		dests:    make(map[graph.NodeID]CloneID),
	}
}

// Graph returns the underlying network.
func (f *Forest) Graph() *graph.Graph { return f.g }

// ChainLen returns the VNF chain length the forest serves.
func (f *Forest) ChainLen() int { return f.chainLen }

// Clone returns the clone record for id.
func (f *Forest) Clone(id CloneID) Clone { return f.clones[id] }

// NumClones returns the number of clone slots (including deleted ones);
// iterate with CloneDeleted to enumerate live clones.
func (f *Forest) NumClones() int { return len(f.clones) }

// CloneDeleted reports whether clone id has been pruned.
func (f *Forest) CloneDeleted(id CloneID) bool { return f.clones[id].deleted }

// NumTrees returns the number of live roots.
func (f *Forest) NumTrees() int {
	n := 0
	for _, r := range f.roots {
		if !f.clones[r].deleted {
			n++
		}
	}
	return n
}

// Roots returns the live root clones.
func (f *Forest) Roots() []CloneID {
	var out []CloneID
	for _, r := range f.roots {
		if !f.clones[r].deleted {
			out = append(out, r)
		}
	}
	return out
}

// Destinations returns the destinations currently served, sorted.
func (f *Forest) Destinations() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(f.dests))
	for d := range f.dests {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DestClone returns the clone serving destination d.
func (f *Forest) DestClone(d graph.NodeID) (CloneID, bool) {
	c, ok := f.dests[d]
	return c, ok
}

// UsedVMs returns the real VMs running a VNF, sorted. (Figure 11(b)
// reports its length.)
func (f *Forest) UsedVMs() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(f.owner))
	for v := range f.owner {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VNFOf returns the VNF index enabled on real VM v (0 if none).
func (f *Forest) VNFOf(v graph.NodeID) int { return f.owner[v].vnf }

// Footprint is the physical resources a forest occupies right now: the
// parent edge of every live clone — an edge crossed by k clones appears k
// times, because each crossing carries the request's demand independently —
// and the VMs hosting its VNFs (each once, one slot per forest per VM).
// Capacitated sessions reserve and release exactly this set per lease.
type Footprint struct {
	Edges []graph.EdgeID
	VMs   []graph.NodeID
}

// Footprint extracts the forest's current resource footprint. It reflects
// whatever shape the forest has at call time, so a lease captured before a
// repair and recomputed after naturally accounts for swapped routes.
func (f *Forest) Footprint() Footprint {
	var fp Footprint
	for id := range f.clones {
		c := &f.clones[id]
		if c.deleted {
			continue
		}
		if c.Parent != NoClone && c.ParentEdge != graph.NoEdge {
			fp.Edges = append(fp.Edges, c.ParentEdge)
		}
	}
	fp.VMs = f.UsedVMs()
	return fp
}

// newRoot adds a root clone of node and registers it as a tree root.
func (f *Forest) newRoot(node graph.NodeID) CloneID {
	id := CloneID(len(f.clones))
	f.clones = append(f.clones, Clone{Node: node, Parent: NoClone, ParentEdge: graph.NoEdge})
	f.roots = append(f.roots, id)
	return id
}

// appendClone adds a clone of node under parent via edge.
func (f *Forest) appendClone(parent CloneID, node graph.NodeID, via graph.EdgeID) CloneID {
	id := CloneID(len(f.clones))
	f.clones = append(f.clones, Clone{Node: node, Parent: parent, ParentEdge: via})
	return id
}

// NewRoot adds a root clone of node; exported for solvers outside this
// package (e.g. the exact solver) that assemble forests directly.
func (f *Forest) NewRoot(node graph.NodeID) CloneID { return f.newRoot(node) }

// AppendClone adds a clone of node under parent via the given edge, which
// must connect the two clones' real nodes.
func (f *Forest) AppendClone(parent CloneID, node graph.NodeID, via graph.EdgeID) CloneID {
	return f.appendClone(parent, node, via)
}

// AppendInPlace adds a clone of the parent's own node linked without an
// edge. It models a VNF stage on the same machine (the enable arcs of the
// exact solver's layered graph) and costs nothing in connection cost.
func (f *Forest) AppendInPlace(parent CloneID) CloneID {
	return f.appendClone(parent, f.clones[parent].Node, graph.NoEdge)
}

// Enable assigns VNF index vnf to clone c (exported builder).
func (f *Forest) Enable(c CloneID, vnf int) error { return f.enable(c, vnf) }

// enable assigns VNF index vnf to clone c and records the global owner.
// It returns an error if the real VM is already owned with another index
// (IP constraint (6)) or the node is not a VM.
func (f *Forest) enable(c CloneID, vnf int) error {
	node := f.clones[c].Node
	if !f.g.IsVM(node) {
		return fmt.Errorf("core: cannot enable VNF %d on non-VM node %d", vnf, node)
	}
	if use, ok := f.owner[node]; ok {
		return fmt.Errorf("core: VNF conflict on VM %d: owned f%d, requested f%d", node, use.vnf, vnf)
	}
	f.clones[c].VNF = vnf
	f.owner[node] = vmUse{vnf: vnf, clone: c}
	return nil
}

// disable clears the VNF on clone c and its owner record.
func (f *Forest) disable(c CloneID) {
	node := f.clones[c].Node
	if f.clones[c].VNF != 0 {
		f.clones[c].VNF = 0
		delete(f.owner, node)
	}
}

// Cost returns the forest's setup and connection costs: enabled clones pay
// their VM setup cost once; every live non-root clone pays its parent edge.
func (f *Forest) Cost() (setup, conn float64) {
	for _, c := range f.clones {
		if c.deleted {
			continue
		}
		if c.VNF != 0 {
			setup += f.g.NodeCost(c.Node)
		}
		if c.Parent != NoClone && c.ParentEdge != graph.NoEdge {
			conn += f.g.EdgeCost(c.ParentEdge)
		}
	}
	return setup, conn
}

// TotalCost is the sum of setup and connection costs.
func (f *Forest) TotalCost() float64 {
	s, c := f.Cost()
	return s + c
}

// MarkDestination records that destination d is served at clone c.
func (f *Forest) MarkDestination(d graph.NodeID, c CloneID) {
	f.dests[d] = c
}

// AttachChainWalk appends the full walk of sc as a new tree rooted at the
// chain's source, enabling the chain's VNFs. It returns the root and final
// clone of the walk. The caller is responsible for conflict-freedom; use
// the resolver for general additions.
func (f *Forest) AttachChainWalk(sc *chain.ServiceChain) (root, last CloneID, err error) {
	root = f.newRoot(sc.Source)
	cur := root
	vmIdx := 0
	for i := 1; i < len(sc.Nodes); i++ {
		cur = f.appendClone(cur, sc.Nodes[i], sc.Edges[i-1])
		if vmIdx < len(sc.VMPos) && sc.VMPos[vmIdx] == i {
			if err := f.enable(cur, vmIdx+1); err != nil {
				return NoClone, NoClone, err
			}
			vmIdx++
		}
	}
	if vmIdx != len(sc.VMs) {
		return NoClone, NoClone, fmt.Errorf("core: walk enabled %d of %d VNFs", vmIdx, len(sc.VMs))
	}
	return root, cur, nil
}

// AttachTree hangs a tree of real edges off the anchor clone: edges must
// form a tree in g containing anchor's real node. Every destination in
// dests found in the component is marked as served. Returns the number of
// destinations attached.
func (f *Forest) AttachTree(anchor CloneID, edges []graph.EdgeID, dests map[graph.NodeID]bool) (int, error) {
	anchorNode := f.clones[anchor].Node
	adj := make(map[graph.NodeID][]graph.EdgeID)
	for _, id := range edges {
		e := f.g.Edge(id)
		adj[e.U] = append(adj[e.U], id)
		adj[e.V] = append(adj[e.V], id)
	}
	if len(edges) > 0 {
		if _, ok := adj[anchorNode]; !ok {
			return 0, fmt.Errorf("core: anchor node %d not in attached tree", anchorNode)
		}
	}
	served := 0
	if dests[anchorNode] {
		f.MarkDestination(anchorNode, anchor)
		served++
	}
	type item struct {
		node  graph.NodeID
		clone CloneID
	}
	visited := map[graph.NodeID]bool{anchorNode: true}
	queue := []item{{node: anchorNode, clone: anchor}}
	usedEdges := 0
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, id := range adj[it.node] {
			other := f.g.Edge(id).Other(it.node)
			if visited[other] {
				continue
			}
			visited[other] = true
			usedEdges++
			c := f.appendClone(it.clone, other, id)
			if dests[other] {
				f.MarkDestination(other, c)
				served++
			}
			queue = append(queue, item{node: other, clone: c})
		}
	}
	if usedEdges != len(edges) {
		return served, fmt.Errorf("core: attached tree used %d of %d edges (not a connected tree at anchor %d)",
			usedEdges, len(edges), anchorNode)
	}
	return served, nil
}

// PathToRoot returns the clone path from c up to its root, inclusive.
func (f *Forest) PathToRoot(c CloneID) []CloneID {
	var out []CloneID
	for cur := c; cur != NoClone; cur = f.clones[cur].Parent {
		out = append(out, cur)
	}
	return out
}

// vnfProgress returns how many chain VNFs have been applied on the path
// from the root down to clone c, and an error if they are out of order.
func (f *Forest) vnfProgress(c CloneID) (int, error) {
	path := f.PathToRoot(c)
	// path is c..root; walk it in reverse (root→c) collecting VNF indices.
	next := 1
	for i := len(path) - 1; i >= 0; i-- {
		v := f.clones[path[i]].VNF
		if v == 0 {
			continue
		}
		if v != next {
			return 0, fmt.Errorf("core: VNF f%d out of order (expected f%d) at clone %d", v, next, path[i])
		}
		next++
	}
	return next - 1, nil
}

// Validate checks the full feasibility of the forest for the given request:
// every destination is served by a root-to-destination path whose VNFs are
// exactly f1…f|C| in order, roots are sources, parent links are structurally
// sound and acyclic, and the global one-VNF-per-VM rule holds.
func (f *Forest) Validate(sources, dests []graph.NodeID) error {
	srcSet := make(map[graph.NodeID]bool, len(sources))
	for _, s := range sources {
		srcSet[s] = true
	}
	// Structural soundness and acyclicity.
	for id, c := range f.clones {
		if c.deleted {
			continue
		}
		if c.Parent != NoClone {
			p := f.clones[c.Parent]
			if p.deleted {
				return fmt.Errorf("core: clone %d has deleted parent %d", id, c.Parent)
			}
			if c.ParentEdge == graph.NoEdge {
				// In-place link: only legal between clones of one node.
				if p.Node != c.Node {
					return fmt.Errorf("core: clone %d in-place link to different node %d", id, p.Node)
				}
			} else {
				e := f.g.Edge(c.ParentEdge)
				if !(e.U == c.Node && e.V == p.Node) && !(e.V == c.Node && e.U == p.Node) {
					return fmt.Errorf("core: clone %d parent edge %d does not connect %d-%d",
						id, c.ParentEdge, c.Node, p.Node)
				}
			}
		}
		steps := 0
		for cur := CloneID(id); cur != NoClone; cur = f.clones[cur].Parent {
			steps++
			if steps > len(f.clones) {
				return fmt.Errorf("core: parent cycle at clone %d", id)
			}
		}
	}
	// Ownership consistency.
	seen := make(map[graph.NodeID]int)
	for id, c := range f.clones {
		if c.deleted || c.VNF == 0 {
			continue
		}
		if !f.g.IsVM(c.Node) {
			return fmt.Errorf("core: non-VM node %d runs f%d", c.Node, c.VNF)
		}
		if c.VNF < 1 || c.VNF > f.chainLen {
			return fmt.Errorf("core: clone %d runs out-of-range VNF f%d", id, c.VNF)
		}
		if prev, ok := seen[c.Node]; ok {
			return fmt.Errorf("core: VM %d runs two VNFs (f%d and f%d)", c.Node, prev, c.VNF)
		}
		seen[c.Node] = c.VNF
		use, ok := f.owner[c.Node]
		if !ok || use.vnf != c.VNF || use.clone != CloneID(id) {
			return fmt.Errorf("core: owner record for VM %d inconsistent", c.Node)
		}
	}
	if len(seen) != len(f.owner) {
		return fmt.Errorf("core: %d enabled clones but %d owner records", len(seen), len(f.owner))
	}
	// Per-destination service chains.
	for _, d := range dests {
		c, ok := f.dests[d]
		if !ok {
			return fmt.Errorf("core: destination %d not served", d)
		}
		if f.clones[c].deleted {
			return fmt.Errorf("core: destination %d served by deleted clone %d", d, c)
		}
		if f.clones[c].Node != d {
			return fmt.Errorf("core: destination %d served by clone of node %d", d, f.clones[c].Node)
		}
		got, err := f.vnfProgress(c)
		if err != nil {
			return fmt.Errorf("core: destination %d: %w", d, err)
		}
		if got != f.chainLen {
			return fmt.Errorf("core: destination %d received %d of %d VNFs", d, got, f.chainLen)
		}
		path := f.PathToRoot(c)
		rootClone := f.clones[path[len(path)-1]]
		if !srcSet[rootClone.Node] {
			return fmt.Errorf("core: destination %d rooted at non-source node %d", d, rootClone.Node)
		}
	}
	return nil
}

// Prune removes every clone not on a root path of a served destination and
// disables VNFs on removed clones. Cost never increases.
func (f *Forest) Prune() {
	needed := make([]bool, len(f.clones))
	for _, c := range f.dests {
		for cur := c; cur != NoClone; cur = f.clones[cur].Parent {
			if needed[cur] {
				break
			}
			needed[cur] = true
		}
	}
	for id := range f.clones {
		if !needed[id] && !f.clones[id].deleted {
			f.disable(CloneID(id))
			f.clones[id].deleted = true
		}
	}
}

// Stats summarizes a forest for reporting.
type Stats struct {
	SetupCost float64
	ConnCost  float64
	TotalCost float64
	Trees     int
	UsedVMs   int
	Clones    int
}

// Stats returns summary statistics of the forest.
func (f *Forest) Stats() Stats {
	setup, conn := f.Cost()
	live := 0
	for _, c := range f.clones {
		if !c.deleted {
			live++
		}
	}
	return Stats{
		SetupCost: setup,
		ConnCost:  conn,
		TotalCost: setup + conn,
		Trees:     f.NumTrees(),
		UsedVMs:   len(f.owner),
		Clones:    live,
	}
}

// assertFinite guards against NaN/Inf costs escaping into results.
func assertFinite(v float64, what string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("core: non-finite %s: %v", what, v)
	}
	return nil
}
