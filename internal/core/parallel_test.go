package core

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"sof/internal/topology"
)

// TestSOFDAParallelismInvariance checks the concurrent candidate pipeline
// is a pure execution change: any worker-pool width yields the identical
// forest cost, because candidates are deterministic and re-ordered into
// the sequential iteration order before the Steiner phase.
func TestSOFDAParallelismInvariance(t *testing.T) {
	for _, seed := range []int64{2, 17, 31} {
		net := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		req := Request{
			Sources:  net.RandomNodes(rng, 5),
			Dests:    net.RandomNodes(rng, 4),
			ChainLen: 2,
		}
		var want float64
		for i, par := range []int{1, 2, runtime.NumCPU()} {
			f, err := SOFDA(net.G, req, &Options{VMs: net.VMs, Parallelism: par})
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			if i == 0 {
				want = f.TotalCost()
				continue
			}
			if f.TotalCost() != want {
				t.Errorf("seed %d par %d: cost %v, want %v", seed, par, f.TotalCost(), want)
			}
		}
	}
}

func TestSOFDASSParallelismInvariance(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 8})
	rng := rand.New(rand.NewSource(8))
	src := net.RandomNodes(rng, 1)[0]
	dests := net.RandomNodes(rng, 4)
	var want float64
	for i, par := range []int{1, runtime.NumCPU()} {
		f, err := SOFDASS(net.G, src, dests, 2, &Options{VMs: net.VMs, Parallelism: par})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if i == 0 {
			want = f.TotalCost()
			continue
		}
		if f.TotalCost() != want {
			t.Errorf("par %d: cost %v, want %v", par, f.TotalCost(), want)
		}
	}
}

func TestSOFDACtxCancellation(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 4})
	rng := rand.New(rand.NewSource(4))
	req := Request{
		Sources:  net.RandomNodes(rng, 4),
		Dests:    net.RandomNodes(rng, 3),
		ChainLen: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SOFDACtx(ctx, net.G, req, &Options{VMs: net.VMs}); err == nil {
		t.Error("SOFDACtx with cancelled context returned nil error")
	}
	if _, err := SOFDASSCtx(ctx, net.G, req.Sources[0], req.Dests, 2, &Options{VMs: net.VMs}); err == nil {
		t.Error("SOFDASSCtx with cancelled context returned nil error")
	}
	// A nil ctx is normalized to Background, not dereferenced.
	if _, err := SOFDACtx(nil, net.G, req, &Options{VMs: net.VMs}); err != nil { //nolint:staticcheck
		t.Errorf("SOFDACtx with nil context: %v", err)
	}
}
