package core

import (
	"fmt"
	"sort"
	"strings"

	"sof/internal/graph"
)

// FlowRule is one OpenFlow-style forwarding entry derived from a forest,
// in the spirit of the paper's testbed ("SOFDA ... relies on OpenDaylight
// APIs to install forwarding rules into the switches"). Rules are keyed by
// (node, stage): the stage is the number of VNFs already applied to the
// stream, which real deployments encode in a header tag (e.g. VLAN or
// MPLS label) so that clones of a node can forward the same group
// differently on each pass.
type FlowRule struct {
	// Node is the switch or VM the rule is installed on.
	Node graph.NodeID
	// Stage is the VNF-progress tag matched by the rule.
	Stage int
	// InEdge is the link the stream arrives on (NoEdge at a root).
	InEdge graph.EdgeID
	// OutEdges are the links the stream is replicated to.
	OutEdges []graph.EdgeID
	// ApplyVNF is the 1-based VNF executed at this node before
	// forwarding, 0 for pure forwarding.
	ApplyVNF int
	// Deliver reports whether the stream is handed to a local destination.
	Deliver bool
}

// String renders the rule for logs and debugging.
func (r FlowRule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d stage %d: in=%d", r.Node, r.Stage, r.InEdge)
	if r.ApplyVNF > 0 {
		fmt.Fprintf(&b, " apply=f%d", r.ApplyVNF)
	}
	fmt.Fprintf(&b, " out=%v", r.OutEdges)
	if r.Deliver {
		b.WriteString(" deliver")
	}
	return b.String()
}

// FlowRules compiles the forest into per-node forwarding rules. Every live
// clone yields at most one rule; clones of the same node at different VNF
// stages yield distinct rules, which is how the walk revisits of the paper
// map onto real switches.
func (f *Forest) FlowRules() []FlowRule {
	// Children index.
	kids := make(map[CloneID][]CloneID)
	for id := range f.clones {
		c := f.clones[id]
		if c.deleted || c.Parent == NoClone {
			continue
		}
		kids[c.Parent] = append(kids[c.Parent], CloneID(id))
	}
	destAt := make(map[CloneID]bool, len(f.dests))
	for _, c := range f.dests {
		destAt[c] = true
	}
	var rules []FlowRule
	for id := range f.clones {
		c := f.clones[id]
		if c.deleted {
			continue
		}
		stage, err := f.vnfProgress(CloneID(id))
		if err != nil {
			continue
		}
		r := FlowRule{
			Node:     c.Node,
			Stage:    stage,
			InEdge:   graph.NoEdge,
			ApplyVNF: c.VNF,
			Deliver:  destAt[CloneID(id)],
		}
		if c.VNF != 0 {
			// The stage tag matched on ingress is before this VNF ran.
			r.Stage = stage - 1
		}
		if c.Parent != NoClone {
			r.InEdge = c.ParentEdge
		}
		for _, k := range kids[CloneID(id)] {
			if e := f.clones[k].ParentEdge; e != graph.NoEdge {
				r.OutEdges = append(r.OutEdges, e)
			} else {
				// In-place child (VNF stage on the same machine): its
				// own rule handles the next stage; nothing to forward.
				continue
			}
		}
		if len(r.OutEdges) == 0 && !r.Deliver && c.VNF == 0 {
			continue // pure dead-end clone (pruned trees keep none)
		}
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Node != rules[j].Node {
			return rules[i].Node < rules[j].Node
		}
		return rules[i].Stage < rules[j].Stage
	})
	return rules
}

// RuleStats summarizes the flow-table footprint of a forest: total rules
// and the largest per-switch table, the quantity SDN multicast papers
// track against TCAM limits.
func (f *Forest) RuleStats() (total, maxPerNode int) {
	perNode := make(map[graph.NodeID]int)
	for _, r := range f.FlowRules() {
		perNode[r.Node]++
		total++
		if perNode[r.Node] > maxPerNode {
			maxPerNode = perNode[r.Node]
		}
	}
	return total, maxPerNode
}
