package core

import (
	"strings"
	"testing"

	"sof/internal/graph"
)

func TestFlowRulesLine(t *testing.T) {
	g := graph.New(4, 3)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 2)
	v2 := g.AddVM("v2", 3)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(v1, v2, 1)
	g.MustAddEdge(v2, d, 1)
	f, err := SOFDASS(g, s, []graph.NodeID{d}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := f.FlowRules()
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	byNode := map[graph.NodeID][]FlowRule{}
	for _, r := range rules {
		byNode[r.Node] = append(byNode[r.Node], r)
	}
	// The source forwards stage 0; each VM applies its VNF; d delivers.
	if len(byNode[s]) != 1 || byNode[s][0].Stage != 0 || len(byNode[s][0].OutEdges) != 1 {
		t.Errorf("source rule wrong: %+v", byNode[s])
	}
	foundApply := 0
	for _, r := range rules {
		if r.ApplyVNF > 0 {
			foundApply++
		}
	}
	if foundApply != 2 {
		t.Errorf("apply rules = %d, want 2", foundApply)
	}
	last := byNode[d]
	if len(last) != 1 || !last[0].Deliver {
		t.Errorf("destination rule wrong: %+v", last)
	}
	if !strings.Contains(last[0].String(), "deliver") {
		t.Error("String() missing deliver")
	}
}

func TestFlowRulesBranching(t *testing.T) {
	g, req := paperStyleNet()
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := f.FlowRules()
	deliver := 0
	for _, r := range rules {
		if r.Deliver {
			deliver++
		}
	}
	if deliver != len(req.Dests) {
		t.Errorf("deliver rules = %d, want %d", deliver, len(req.Dests))
	}
	total, maxPer := f.RuleStats()
	if total != len(rules) {
		t.Errorf("RuleStats total %d != %d rules", total, len(rules))
	}
	if maxPer < 1 || maxPer > total {
		t.Errorf("maxPer = %d out of range", maxPer)
	}
}

func TestFlowRulesStagesDistinguishRevisits(t *testing.T) {
	// Star topology forces the walk to revisit the center switch at two
	// different stages; the compiled rules must be distinct per stage.
	g := graph.New(5, 4)
	s := g.AddSwitch("s")
	c := g.AddSwitch("c")
	a := g.AddVM("a", 1)
	b := g.AddVM("b", 1)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, c, 1)
	g.MustAddEdge(c, a, 1)
	g.MustAddEdge(c, b, 1)
	g.MustAddEdge(c, d, 1)
	f, err := SOFDASS(g, s, []graph.NodeID{d}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[int]bool{}
	for _, r := range f.FlowRules() {
		if r.Node == c {
			if stages[r.Stage] {
				t.Fatalf("duplicate rule for node %d stage %d", c, r.Stage)
			}
			stages[r.Stage] = true
		}
	}
	if len(stages) < 2 {
		t.Fatalf("expected the center to be programmed at >=2 stages, got %v", stages)
	}
}
