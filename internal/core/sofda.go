package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"sof/internal/chain"
	"sof/internal/graph"
	"sof/internal/steiner"
)

// auxGraph is the Steiner instance Ĝ of Procedure 3: the original network
// plus a virtual super-source ŝ, one duplicate per source (VS), one
// duplicate per VM (VM̂), zero-cost edges ŝ–v̂ and û–u, and one virtual edge
// v̂–û per feasible candidate service chain, weighted by the chain's total
// cost.
type auxGraph struct {
	g    *graph.Graph // the augmented graph
	sHat graph.NodeID
	// srcDup maps each source to its duplicate v̂; vmDup maps each VM to û.
	srcDup map[graph.NodeID]graph.NodeID
	vmDup  map[graph.NodeID]graph.NodeID
	// chains maps a virtual EdgeID to its candidate service chain.
	chains map[graph.EdgeID]*chain.ServiceChain
	// emm maps û back to its real VM u.
	dupToVM map[graph.NodeID]graph.NodeID
	// origNodes is the node count of the original graph; nodes below this
	// threshold are real.
	origNodes int
	origEdges int
}

// buildAuxGraph constructs Ĝ. For chainLen == 0 the sources connect to
// their duplicates directly (the problem degenerates to a Steiner forest).
// Candidate chains for all (source, last VM) pairs are generated
// concurrently through the oracle's fan-out pool; infeasible pairs
// (unreachable or too few VMs) are skipped.
func buildAuxGraph(ctx context.Context, g *graph.Graph, oracle *chain.Oracle, sources, vms []graph.NodeID, chainLen, parallelism int) (*auxGraph, error) {
	aux := &auxGraph{
		g:         g.Clone(),
		srcDup:    make(map[graph.NodeID]graph.NodeID, len(sources)),
		vmDup:     make(map[graph.NodeID]graph.NodeID, len(vms)),
		chains:    make(map[graph.EdgeID]*chain.ServiceChain),
		dupToVM:   make(map[graph.NodeID]graph.NodeID, len(vms)),
		origNodes: g.NumNodes(),
		origEdges: g.NumEdges(),
	}
	aux.sHat = aux.g.AddSwitch("ŝ")
	for _, s := range sources {
		if _, ok := aux.srcDup[s]; ok {
			continue
		}
		d := aux.g.AddSwitch(fmt.Sprintf("src-dup-%d", s))
		aux.srcDup[s] = d
		aux.g.MustAddEdge(aux.sHat, d, 0)
	}
	if chainLen == 0 {
		// Degenerate: ŝ–v̂–v with zero cost; anchors are the sources.
		for s, d := range aux.srcDup {
			aux.g.MustAddEdge(d, s, 0)
		}
		return aux, nil
	}
	for _, u := range vms {
		if _, ok := aux.vmDup[u]; ok {
			continue
		}
		d := aux.g.AddSwitch(fmt.Sprintf("vm-dup-%d", u))
		aux.vmDup[u] = d
		aux.dupToVM[d] = u
		aux.g.MustAddEdge(d, u, 0)
	}
	results, err := oracle.Chains(ctx, vms, chain.Pairs(sources, vms), chainLen, parallelism)
	if err != nil {
		return nil, err
	}
	feasible := 0
	for _, r := range results {
		if r.Err != nil {
			continue // unreachable or too few VMs via this pair
		}
		id := aux.g.MustAddEdge(aux.srcDup[r.Pair.Source], aux.vmDup[r.Pair.LastVM], r.Chain.TotalCost())
		aux.chains[id] = r.Chain
		feasible++
	}
	if feasible == 0 {
		return nil, errors.New("core: no feasible candidate service chain for any (source, last VM) pair")
	}
	return aux, nil
}

// buildAuxGraphFromCandidates constructs Ĝ from externally computed
// candidate chains (the distributed implementation gathers them from the
// per-domain controllers, Section VI).
func buildAuxGraphFromCandidates(g *graph.Graph, sources, vms []graph.NodeID, chainLen int, candidates []*chain.ServiceChain) (*auxGraph, error) {
	aux := &auxGraph{
		g:         g.Clone(),
		srcDup:    make(map[graph.NodeID]graph.NodeID, len(sources)),
		vmDup:     make(map[graph.NodeID]graph.NodeID, len(vms)),
		chains:    make(map[graph.EdgeID]*chain.ServiceChain),
		dupToVM:   make(map[graph.NodeID]graph.NodeID, len(vms)),
		origNodes: g.NumNodes(),
		origEdges: g.NumEdges(),
	}
	aux.sHat = aux.g.AddSwitch("ŝ")
	for _, s := range sources {
		if _, ok := aux.srcDup[s]; ok {
			continue
		}
		d := aux.g.AddSwitch(fmt.Sprintf("src-dup-%d", s))
		aux.srcDup[s] = d
		aux.g.MustAddEdge(aux.sHat, d, 0)
	}
	for _, u := range vms {
		if _, ok := aux.vmDup[u]; ok {
			continue
		}
		d := aux.g.AddSwitch(fmt.Sprintf("vm-dup-%d", u))
		aux.vmDup[u] = d
		aux.dupToVM[d] = u
		aux.g.MustAddEdge(d, u, 0)
	}
	feasible := 0
	for _, sc := range candidates {
		if sc == nil || len(sc.VMs) != chainLen {
			continue
		}
		sd, ok := aux.srcDup[sc.Source]
		if !ok {
			return nil, fmt.Errorf("core: candidate chain from unknown source %d", sc.Source)
		}
		ud, ok := aux.vmDup[sc.LastVM]
		if !ok {
			return nil, fmt.Errorf("core: candidate chain to unknown VM %d", sc.LastVM)
		}
		id := aux.g.MustAddEdge(sd, ud, sc.TotalCost())
		aux.chains[id] = sc
		feasible++
	}
	if feasible == 0 {
		return nil, errors.New("core: no feasible candidate service chain supplied")
	}
	return aux, nil
}

// SOFDAFromCandidates runs Algorithm 2's Steiner, conflict-resolution, and
// assembly phases over externally supplied candidate chains. It is the
// leader-side entry point of the distributed implementation (Section VI);
// SOFDA itself is equivalent to computing all |S|·|M| candidates centrally
// and calling this.
func SOFDAFromCandidates(g *graph.Graph, req Request, opts *Options, candidates []*chain.ServiceChain) (*Forest, error) {
	return SOFDAFromCandidatesCtx(context.Background(), g, req, opts, candidates)
}

// SOFDAFromCandidatesCtx is SOFDAFromCandidates with cancellation: ctx is
// observed between the Steiner, assembly, and per-source refinement phases.
func SOFDAFromCandidatesCtx(ctx context.Context, g *graph.Graph, req Request, opts *Options, candidates []*chain.ServiceChain) (*Forest, error) {
	ctx = ctxOrBackground(ctx)
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	if req.ChainLen == 0 {
		return SOFDACtx(ctx, g, req, opts)
	}
	o := optsOrDefault(opts)
	vms := o.vms(g)
	oracle := o.oracle(g)
	aux, err := buildAuxGraphFromCandidates(g, req.Sources, vms, req.ChainLen, candidates)
	if err != nil {
		return nil, err
	}
	return completeForest(ctx, g, oracle, vms, req, aux, o.Parallelism)
}

// completeForest runs the shared tail of Algorithm 2 over a built Ĝ: the
// Steiner phase, forest assembly, and the per-source single-tree
// refinement. Both the centralized SOFDA and the distributed leader end
// here, which is what makes their costs provably identical on equal Ĝ.
//
// The Steiner phase over Ĝ fans its per-terminal closure passes out over
// par workers (Ĝ is a private clone, so its trees cannot come from the
// session oracle); every KMB over the real network and the refinement's
// destination trees go through the oracle instead, staying warm across a
// request stream.
func completeForest(ctx context.Context, g *graph.Graph, oracle *chain.Oracle, vms []graph.NodeID, req Request, aux *auxGraph, par int) (*Forest, error) {
	terminals := append([]graph.NodeID{aux.sHat}, req.Dests...)
	tree, err := steiner.KMBWith(aux.g, terminals, &steiner.KMBOptions{Parallelism: resolvePar(par)})
	if err != nil {
		return nil, fmt.Errorf("core: SOFDA Steiner phase: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	best, err := assembleForest(g, oracle, vms, req, aux, tree.Edges)
	if err != nil {
		return nil, err
	}
	if req.ChainLen == 0 {
		return best, nil
	}
	// Refinement: the KMB tree on Ĝ is one ρST-approximate Steiner tree;
	// any other feasible tree of Ĝ is equally admissible. For each source,
	// evaluate the single-chain tree built from its cheapest candidate
	// chain (the Ĝ tree that uses exactly one virtual edge) and keep the
	// cheapest assembled forest. This keeps the 3ρST guarantee — the KMB
	// candidate is never discarded for a worse one — while shaving the
	// 2-approximation noise on instances where one tree is optimal.
	destTrees := make(map[graph.NodeID]*graph.ShortestPaths, len(req.Dests))
	for _, d := range req.Dests {
		destTrees[d] = oracle.Tree(d)
	}
	for _, s := range req.Sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cand := bestSingleTree(g, oracle, aux, s, req, destTrees)
		if cand == nil {
			continue
		}
		f, err := assembleForest(g, oracle, vms, req, aux, cand)
		if err != nil {
			continue
		}
		if f.TotalCost() < best.TotalCost() {
			best = f
		}
	}
	return best, nil
}

// isReal reports whether n is a node of the original network.
func (a *auxGraph) isReal(n graph.NodeID) bool { return int(n) < a.origNodes }

// isRealEdge reports whether e is an edge of the original network.
func (a *auxGraph) isRealEdge(e graph.EdgeID) bool { return int(e) < a.origEdges }

// SOFDA is Algorithm 2: the 3ρST-approximation for the general SOF problem
// with multiple sources. It builds Ĝ, extracts a Steiner tree spanning ŝ
// and all destinations, materializes the selected candidate chains as
// walks (resolving VNF conflicts per Procedure 4), and attaches the
// tree's real-edge components to the walks' last VMs.
func SOFDA(g *graph.Graph, req Request, opts *Options) (*Forest, error) {
	return SOFDACtx(context.Background(), g, req, opts)
}

// SOFDACtx is SOFDA with cancellation and concurrent candidate generation:
// the |S|·|M| candidate chains of Procedure 3 are computed on a worker
// pool bounded by opts.Parallelism, and ctx is observed throughout.
func SOFDACtx(ctx context.Context, g *graph.Graph, req Request, opts *Options) (*Forest, error) {
	ctx = ctxOrBackground(ctx)
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	o := optsOrDefault(opts)
	vms := o.vms(g)
	oracle := o.oracle(g)

	aux, err := buildAuxGraph(ctx, g, oracle, req.Sources, vms, req.ChainLen, o.Parallelism)
	if err != nil {
		return nil, err
	}
	return completeForest(ctx, g, oracle, vms, req, aux, o.Parallelism)
}

// bestSingleTree returns Ĝ tree edges for the cheapest single-chain
// solution rooted at source s: its best virtual edge (v̂,û) plus a KMB tree
// over {u} ∪ dests, or nil when infeasible. Candidates are ranked by chain
// cost + the metric-closure MST over {u} ∪ dests (KMB's own upper bound),
// and only the winner gets a full KMB run.
func bestSingleTree(g *graph.Graph, oracle *chain.Oracle, aux *auxGraph, s graph.NodeID, req Request, destTrees map[graph.NodeID]*graph.ShortestPaths) []graph.EdgeID {
	sHatDup, ok := aux.srcDup[s]
	if !ok {
		return nil
	}
	bestEdge := graph.NoEdge
	bestCost := 0.0
	for _, a := range aux.g.Adj(sHatDup) {
		sc, ok := aux.chains[a.Edge]
		if !ok {
			continue
		}
		c := sc.TotalCost() + closureMST(sc.LastVM, req.Dests, destTrees)
		if bestEdge == graph.NoEdge || c < bestCost {
			bestEdge = a.Edge
			bestCost = c
		}
	}
	if bestEdge == graph.NoEdge {
		return nil
	}
	sc := aux.chains[bestEdge]
	tree, err := steiner.KMBWith(g, append([]graph.NodeID{sc.LastVM}, req.Dests...),
		&steiner.KMBOptions{Provider: oracle})
	if err != nil {
		return nil
	}
	edges := append([]graph.EdgeID(nil), tree.Edges...)
	return append(edges, bestEdge)
}

// closureMST is the MST cost of the metric closure over {u} ∪ dests, using
// precomputed per-destination shortest-path trees. It upper-bounds (within
// KMB's factor) the Steiner tree connecting u to the destinations.
func closureMST(u graph.NodeID, dests []graph.NodeID, destTrees map[graph.NodeID]*graph.ShortestPaths) float64 {
	nodes := append([]graph.NodeID{u}, dests...)
	const inf = math.MaxFloat64
	inTree := make([]bool, len(nodes))
	minCost := make([]float64, len(nodes))
	for i := range minCost {
		minCost[i] = inf
	}
	minCost[0] = 0
	total := 0.0
	dist := func(i, j int) float64 {
		// At least one of the pair is a destination with a full tree.
		if i > 0 {
			return destTrees[nodes[i]].Dist[nodes[j]]
		}
		return destTrees[nodes[j]].Dist[nodes[i]]
	}
	for iter := 0; iter < len(nodes); iter++ {
		best := -1
		for i := range nodes {
			if !inTree[i] && (best < 0 || minCost[i] < minCost[best]) {
				best = i
			}
		}
		inTree[best] = true
		if minCost[best] < inf {
			total += minCost[best]
		}
		for i := range nodes {
			if !inTree[i] {
				if d := dist(best, i); d < minCost[i] {
					minCost[i] = d
				}
			}
		}
	}
	return total
}

// assembleForest converts a Steiner tree in Ĝ into a feasible service
// overlay forest (Algorithm 2 steps 3–9).
func assembleForest(g *graph.Graph, oracle *chain.Oracle, vms []graph.NodeID, req Request, aux *auxGraph, treeEdges []graph.EdgeID) (*Forest, error) {
	// Partition the tree's edges: real edges form the distribution
	// components; virtual ESM edges select candidate chains.
	var realEdges []graph.EdgeID
	type anchorInfo struct {
		sc *chain.ServiceChain // nil for chainLen==0 source anchors
		at graph.NodeID        // real anchor node
	}
	var anchors []anchorInfo
	seenAnchor := make(map[graph.NodeID]bool)
	for _, id := range treeEdges {
		if aux.isRealEdge(id) {
			realEdges = append(realEdges, id)
			continue
		}
		if sc, ok := aux.chains[id]; ok {
			// Two chains may target the same last VM when the Steiner tree
			// routes through û as a junction; conflict resolution merges
			// them via same-index sharing, so both are added.
			anchors = append(anchors, anchorInfo{sc: sc, at: sc.LastVM})
			continue
		}
		// Zero-cost structural edges (ŝ–v̂, û–u, and for chainLen==0 the
		// v̂–v edges). The v̂–v edges identify source anchors.
		e := aux.g.Edge(id)
		if req.ChainLen == 0 {
			for s, d := range aux.srcDup {
				if (e.U == d && e.V == s) || (e.V == d && e.U == s) {
					if !seenAnchor[s] {
						seenAnchor[s] = true
						anchors = append(anchors, anchorInfo{at: s})
					}
				}
			}
		}
	}
	if len(anchors) == 0 {
		return nil, errors.New("core: Steiner tree selected no candidate chain")
	}
	// Deterministic order: cheaper chains first so expensive walks attach
	// to established prefixes.
	sort.SliceStable(anchors, func(i, j int) bool {
		ci, cj := 0.0, 0.0
		if anchors[i].sc != nil {
			ci = anchors[i].sc.TotalCost()
		}
		if anchors[j].sc != nil {
			cj = anchors[j].sc.TotalCost()
		}
		if ci != cj {
			return ci < cj
		}
		return anchors[i].at < anchors[j].at
	})

	f := NewForest(g, req.ChainLen)
	res := newResolver(f, oracle, vms)
	anchorClone := make(map[graph.NodeID]CloneID, len(anchors))
	for _, a := range anchors {
		if a.sc == nil {
			anchorClone[a.at] = f.newRoot(a.at)
			continue
		}
		last, err := res.AddWalk(a.sc)
		if err != nil {
			return nil, fmt.Errorf("core: adding walk %d→%d: %w", a.sc.Source, a.sc.LastVM, err)
		}
		anchorClone[a.at] = last
	}

	// Group real tree edges into connected components and attach each to
	// its unique anchor.
	destSet := make(map[graph.NodeID]bool, len(req.Dests))
	for _, d := range req.Dests {
		destSet[d] = true
	}
	comps := componentsOf(g, realEdges)
	served := 0
	for _, comp := range comps {
		anchor := graph.None
		for n := range comp.nodes {
			if _, ok := anchorClone[n]; ok {
				if anchor != graph.None {
					return nil, fmt.Errorf("core: tree component holds two anchors (%d, %d)", anchor, n)
				}
				anchor = n
			}
		}
		if anchor == graph.None {
			// A component not reachable from any chain: tolerated only if
			// it serves no destination (pruned dead weight).
			for n := range comp.nodes {
				if destSet[n] {
					return nil, fmt.Errorf("core: destination %d in component with no anchor", n)
				}
			}
			continue
		}
		n, err := f.AttachTree(anchorClone[anchor], comp.edges, destSet)
		if err != nil {
			return nil, err
		}
		served += n
	}
	// Destinations that coincide with an anchor node are served directly.
	for _, d := range req.Dests {
		if _, ok := f.dests[d]; ok {
			continue
		}
		if c, ok := anchorClone[d]; ok {
			f.MarkDestination(d, c)
			served++
		}
	}
	if served < len(req.Dests) {
		return nil, fmt.Errorf("core: only %d of %d destinations attached", served, len(req.Dests))
	}
	f.Prune()
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		return nil, fmt.Errorf("core: SOFDA produced infeasible forest: %w", err)
	}
	return f, nil
}

// component is a connected set of real edges with its node set.
type component struct {
	nodes map[graph.NodeID]bool
	edges []graph.EdgeID
}

// componentsOf groups edges into connected components.
func componentsOf(g *graph.Graph, edges []graph.EdgeID) []*component {
	parent := make(map[graph.NodeID]graph.NodeID)
	var find func(x graph.NodeID) graph.NodeID
	find = func(x graph.NodeID) graph.NodeID {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	for _, id := range edges {
		e := g.Edge(id)
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	byRoot := make(map[graph.NodeID]*component)
	for _, id := range edges {
		e := g.Edge(id)
		r := find(e.U)
		c, ok := byRoot[r]
		if !ok {
			c = &component{nodes: make(map[graph.NodeID]bool)}
			byRoot[r] = c
		}
		c.edges = append(c.edges, id)
		c.nodes[e.U] = true
		c.nodes[e.V] = true
	}
	out := make([]*component, 0, len(byRoot))
	roots := make([]graph.NodeID, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
