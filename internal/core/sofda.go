package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sof/internal/chain"
	"sof/internal/graph"
	"sof/internal/steiner"
)

// auxGraph is the Steiner instance Ĝ of Procedure 3: the original network
// plus a virtual super-source ŝ, one duplicate per source (VS), one
// duplicate per VM (VM̂), zero-cost edges ŝ–v̂ and û–u, and one virtual edge
// v̂–û per feasible candidate service chain, weighted by the chain's total
// cost.
type auxGraph struct {
	g    *graph.Graph // the augmented graph
	sHat graph.NodeID
	// srcDup maps each source to its duplicate v̂; vmDup maps each VM to û.
	srcDup map[graph.NodeID]graph.NodeID
	vmDup  map[graph.NodeID]graph.NodeID
	// chains maps a virtual EdgeID to its candidate service chain.
	chains map[graph.EdgeID]*chain.ServiceChain
	// emm maps û back to its real VM u.
	dupToVM map[graph.NodeID]graph.NodeID
	// origNodes is the node count of the original graph; nodes below this
	// threshold are real.
	origNodes int
	origEdges int
}

// newAuxSkeleton constructs Ĝ's candidate-independent part: the original
// network clone, ŝ, the source and VM duplicates, and their zero-cost
// structural edges. For chainLen == 0 the sources connect to their
// duplicates directly (the problem degenerates to a Steiner forest) and no
// VM duplicates exist. Candidate edges are added afterwards — all at once
// by the batch builders, or one at a time by AuxGraphBuilder as a
// streamed candidate arrives.
func newAuxSkeleton(g *graph.Graph, sources, vms []graph.NodeID, chainLen int) *auxGraph {
	aux := &auxGraph{
		g:         g.Clone(),
		srcDup:    make(map[graph.NodeID]graph.NodeID, len(sources)),
		vmDup:     make(map[graph.NodeID]graph.NodeID, len(vms)),
		chains:    make(map[graph.EdgeID]*chain.ServiceChain),
		dupToVM:   make(map[graph.NodeID]graph.NodeID, len(vms)),
		origNodes: g.NumNodes(),
		origEdges: g.NumEdges(),
	}
	aux.sHat = aux.g.AddSwitch("ŝ")
	for _, s := range sources {
		if _, ok := aux.srcDup[s]; ok {
			continue
		}
		d := aux.g.AddSwitch(fmt.Sprintf("src-dup-%d", s))
		aux.srcDup[s] = d
		aux.g.MustAddEdge(aux.sHat, d, 0)
	}
	if chainLen == 0 {
		// Degenerate: ŝ–v̂–v with zero cost; anchors are the sources.
		for s, d := range aux.srcDup {
			aux.g.MustAddEdge(d, s, 0)
		}
		return aux
	}
	for _, u := range vms {
		if _, ok := aux.vmDup[u]; ok {
			continue
		}
		d := aux.g.AddSwitch(fmt.Sprintf("vm-dup-%d", u))
		aux.vmDup[u] = d
		aux.dupToVM[d] = u
		aux.g.MustAddEdge(d, u, 0)
	}
	return aux
}

// buildAuxGraph constructs Ĝ. For chainLen == 0 the sources connect to
// their duplicates directly (the problem degenerates to a Steiner forest).
// Candidate chains for all (source, last VM) pairs are generated
// concurrently through the oracle's fan-out pool; infeasible pairs
// (unreachable or too few VMs) are skipped.
func buildAuxGraph(ctx context.Context, g *graph.Graph, oracle *chain.Oracle, sources, vms []graph.NodeID, chainLen, parallelism int) (*auxGraph, error) {
	aux := newAuxSkeleton(g, sources, vms, chainLen)
	if chainLen == 0 {
		return aux, nil
	}
	results, err := oracle.Chains(ctx, vms, chain.Pairs(sources, vms), chainLen, parallelism)
	if err != nil {
		return nil, err
	}
	feasible := 0
	for _, r := range results {
		if r.Err != nil {
			continue // unreachable or too few VMs via this pair
		}
		id := aux.g.MustAddEdge(aux.srcDup[r.Pair.Source], aux.vmDup[r.Pair.LastVM], r.Chain.TotalCost())
		aux.chains[id] = r.Chain
		feasible++
	}
	if feasible == 0 {
		return nil, errors.New("core: no feasible candidate service chain for any (source, last VM) pair")
	}
	return aux, nil
}

// AuxGraphBuilder assembles Ĝ incrementally from candidate chains as they
// arrive: the streaming distributed leader (Section VI) feeds it fragment
// by fragment instead of gathering every domain's batch first, and
// finalizes into the same completion path SOFDAFromCandidatesCtx uses.
// Feed candidates with AddCandidate in the centralized enumeration order
// and finish with Complete; the resulting forest is identical to handing
// the same candidates to SOFDAFromCandidatesCtx at once.
//
// With EnablePruning, dominated candidates are rejected on arrival and
// never allocate aux-graph state (no edge, no chain entry, no CSR growth).
// The prune rule is chosen so the final forest cost is provably unchanged:
// an arriving candidate (s,u) with chain cost w is dominated when some
// already-accepted candidate (s,u′) of the same source with cost w′
// satisfies both
//
//	w > w′ + dist(u′,u)                      (strictly), and
//	w + mst(u) > w′ + mst(u′)                (strictly),
//
// where dist is the real network's shortest-path metric and mst(x) the
// metric-closure MST over {x} ∪ destinations. The first inequality makes
// every Ĝ path through the pruned virtual edge strictly worse than the
// bypass v̂ₛ→û_u′→u′⇝u→û_u, so no shortest path (and hence no KMB closure
// entry or expansion) ever uses it; the second keeps it from winning the
// per-source single-tree refinement, whose candidates are ranked by
// exactly w + mst(u). Witnesses are themselves accepted candidates, so
// the bypass survives in Ĝ.
type AuxGraphBuilder struct {
	g      *graph.Graph
	req    Request
	o      Options
	vms    []graph.NodeID
	oracle *chain.Oracle
	aux    *auxGraph
	// ctx is the embedding's context, captured at construction: the
	// builder is a single-request object, and its internal oracle work
	// (the batched destination-tree prewarm) must die with the request
	// rather than run under a minted Background.
	ctx context.Context

	pruning   bool
	destTrees map[graph.NodeID]*graph.ShortestPaths
	mst       map[graph.NodeID]float64
	accepted  map[graph.NodeID][]auxCand

	added, pruned int

	// Eager single-tree refinement (EnableEager): once every expected
	// candidate of a source has been fed, that source's per-source
	// refinement (winner ranking, KMB over the real network, forest
	// assembly) launches on its own goroutine, overlapping the remaining
	// stream instead of waiting for Complete. Candidate sets are final per
	// source at that point — candidates only ever attach to their own
	// source's duplicate, and the prune rule only consults same-source
	// witnesses — so the eager run sees exactly the state the completion
	// phase would.
	eager      bool
	expect     map[graph.NodeID]int
	srcCands   map[graph.NodeID][]srcCand
	eagerRuns  map[graph.NodeID]*eagerRun
	eagerWG    sync.WaitGroup
	destWarmed int
	// Filled by Complete: eager runs finished before the completion
	// phase's refinement loop demanded them, and the summed per-source
	// head-start — the wall-clock between each run's launch and that
	// demand point (capped at the run's finish), during which the run was
	// in flight or ready while the stream tail and the Ĝ Steiner phase
	// did other work. Sources run as concurrent lanes, so the sum can
	// exceed the embedding's wall time, like CPU-seconds.
	earlyRuns int
	earlyNS   int64
}

// srcCand is one admitted candidate of a source, in Ĝ insertion order: the
// virtual edge and its chain. The eager refinement works off this snapshot
// so it never reads the concurrently growing aux graph.
type srcCand struct {
	edge graph.EdgeID
	sc   *chain.ServiceChain
}

// eagerRun holds one source's eagerly computed refinement forest. started
// is stamped synchronously at launch (the moment the source's last
// candidate was delivered); the remaining fields are written only by the
// run's own goroutine and read after the builder's WaitGroup settles.
// forest is nil when the source has no feasible single-chain tree — the
// same outcome the inline path skips.
type eagerRun struct {
	started  time.Time
	forest   *Forest
	dur      time.Duration
	finished time.Time
}

// auxCand is one accepted candidate in the builder's per-source dominance
// index: its last VM, chain cost, and single-tree rank (cost + mst).
type auxCand struct {
	lastVM graph.NodeID
	cost   float64
	rank   float64
}

// NewAuxGraphBuilder validates the request and builds Ĝ's skeleton. It
// requires chainLen >= 1: with no chains to stream, the problem is a plain
// Steiner forest and SOFDACtx solves it directly. ctx scopes the builder's
// own oracle work (destination-tree prewarming) to the embedding; nil is
// normalized like every other Ctx entry point.
func NewAuxGraphBuilder(ctx context.Context, g *graph.Graph, req Request, opts *Options) (*AuxGraphBuilder, error) {
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	if req.ChainLen < 1 {
		return nil, errors.New("core: aux-graph builder requires chainLen >= 1 (chainLen 0 degenerates to a Steiner forest)")
	}
	o := optsOrDefault(opts)
	b := &AuxGraphBuilder{g: g, req: req, o: o, ctx: ctxOrBackground(ctx)}
	b.vms = o.vms(g)
	b.oracle = o.oracle(g)
	b.aux = newAuxSkeleton(g, req.Sources, b.vms, req.ChainLen)
	return b, nil
}

// EnablePruning arms early dominated-candidate rejection. It precomputes
// the per-destination shortest-path trees the rule's mst term needs —
// trees the completion phase's refinement pulls from the same oracle
// anyway, so under a session oracle the work is paid once.
func (b *AuxGraphBuilder) EnablePruning() {
	if b.pruning {
		return
	}
	b.pruning = true
	b.ensureDestTrees()
	b.mst = make(map[graph.NodeID]float64)
	b.accepted = make(map[graph.NodeID][]auxCand)
}

// ensureDestTrees warms and pins the per-destination shortest-path trees
// shared by pruning and the eager refinement. The warm pass is batched
// (one arena, one CSR fetch) and miss-neutral, so oracle counters match a
// demand-faulted session.
func (b *AuxGraphBuilder) ensureDestTrees() {
	if b.destTrees != nil {
		return
	}
	b.destWarmed = b.oracle.WarmTrees(b.ctx, b.req.Dests)
	b.destTrees = make(map[graph.NodeID]*graph.ShortestPaths, len(b.req.Dests))
	for _, d := range b.req.Dests {
		b.destTrees[d] = b.oracle.Tree(d)
	}
}

// EnableEager arms overlapped per-source refinement: call
// ExpectCandidates with each source's pair count, then NoteDelivered as
// every pair resolves (admitted, pruned, or infeasible alike). When a
// source's count reaches zero its candidate set is final, and the
// builder starts that source's single-tree refinement concurrently with
// the rest of the stream; Complete consumes the precomputed forests
// instead of recomputing them. The eager runs read only the immutable
// request, the concurrency-safe oracle, and a per-source candidate
// snapshot, so they commute with ongoing AddCandidate calls — and the
// forests they produce are the ones the inline refinement would build,
// so the final cost is bit-identical.
func (b *AuxGraphBuilder) EnableEager() {
	if b.eager {
		return
	}
	b.eager = true
	b.expect = make(map[graph.NodeID]int)
	b.srcCands = make(map[graph.NodeID][]srcCand)
	b.eagerRuns = make(map[graph.NodeID]*eagerRun)
	b.ensureDestTrees()
}

// ExpectCandidates declares how many candidate deliveries source s will
// see (its pair count). Must precede the first NoteDelivered(s). A zero
// count launches the source's (vacuous) refinement immediately.
func (b *AuxGraphBuilder) ExpectCandidates(s graph.NodeID, n int) {
	if !b.eager {
		return
	}
	b.expect[s] = n
	if n == 0 {
		b.launchEager(s)
	}
}

// NoteDelivered records that one of source s's expected candidates has
// resolved — whether it was admitted, pruned, or infeasible. The count
// reaching zero launches the source's eager refinement.
func (b *AuxGraphBuilder) NoteDelivered(s graph.NodeID) {
	if !b.eager {
		return
	}
	n, ok := b.expect[s]
	if !ok {
		return
	}
	n--
	b.expect[s] = n
	if n == 0 {
		b.launchEager(s)
	}
}

// launchEager starts source s's refinement goroutine over its final
// candidate snapshot. Idempotent per source.
func (b *AuxGraphBuilder) launchEager(s graph.NodeID) {
	if _, ok := b.eagerRuns[s]; ok {
		return
	}
	if _, ok := b.aux.srcDup[s]; !ok {
		return
	}
	run := &eagerRun{started: time.Now()}
	b.eagerRuns[s] = run
	cands := b.srcCands[s]
	b.eagerWG.Add(1)
	go func() {
		defer b.eagerWG.Done()
		run.forest = b.eagerForest(cands)
		run.finished = time.Now()
		run.dur = run.finished.Sub(run.started)
	}()
}

// eagerForest is one source's refinement computed off the aux graph: pick
// the winning candidate, KMB it against the destinations over the real
// network, and assemble the forest through a shim aux that carries only
// the winner's chain entry. For chainLen >= 1 assembly consults the aux
// graph solely to classify edges and map the virtual winner back to its
// chain, so the shim reproduces the full-aux result exactly.
func (b *AuxGraphBuilder) eagerForest(cands []srcCand) *Forest {
	edges, winner := singleTreeEdges(b.g, b.oracle, cands, b.req, b.destTrees)
	if edges == nil {
		return nil
	}
	shim := &auxGraph{
		chains:    map[graph.EdgeID]*chain.ServiceChain{winner.edge: winner.sc},
		origNodes: b.aux.origNodes,
		origEdges: b.aux.origEdges,
	}
	f, err := assembleForest(b.g, b.oracle, b.vms, b.req, shim, edges)
	if err != nil {
		return nil
	}
	return f
}

// EagerOverlap reports how much closure work the eager mode moved off
// the completion phase's critical path: the number of closure passes
// finished early (warmed destination trees plus per-source refinements
// that completed before the refinement loop demanded them) and the
// summed per-source head-start in nanoseconds — launch to demand,
// capped at each run's finish. Per-source lanes overlap, so the sum can
// exceed wall time. Valid after Complete returns.
func (b *AuxGraphBuilder) EagerOverlap() (closuresEarly int, overlapNS int64) {
	return b.destWarmed + b.earlyRuns, b.earlyNS
}

// closure returns the memoized metric-closure MST cost over {u} ∪ dests.
func (b *AuxGraphBuilder) closure(u graph.NodeID) float64 {
	if c, ok := b.mst[u]; ok {
		return c
	}
	c := closureMST(u, b.req.Dests, b.destTrees)
	b.mst[u] = c
	return c
}

// dominated reports whether an arriving candidate is pruned under the
// builder's rule; rank is its precomputed cost + mst term.
func (b *AuxGraphBuilder) dominated(s, u graph.NodeID, w, rank float64) bool {
	for _, c := range b.accepted[s] {
		// dist(u′,u) comes from the oracle's cached tree rooted at u′; an
		// unreachable u yields +Inf and the strict inequality keeps the
		// candidate. dist(u,u) == 0 keeps duplicate pairs too (equal cost
		// never strictly exceeds), matching the batch builder, which adds
		// duplicate edges verbatim.
		if w > c.cost+b.oracle.Tree(c.lastVM).Dist[u] && rank > c.rank {
			return true
		}
	}
	return false
}

// AddCandidate feeds one candidate chain into Ĝ. It reports whether the
// chain was admitted: nil chains and wrong-length chains are skipped (as
// the batch path skips them), and with pruning enabled a dominated
// candidate is rejected without allocating any aux-graph state. Chains
// from sources or to VMs outside the request are an error.
func (b *AuxGraphBuilder) AddCandidate(sc *chain.ServiceChain) (bool, error) {
	if sc == nil || len(sc.VMs) != b.req.ChainLen {
		return false, nil
	}
	sd, ok := b.aux.srcDup[sc.Source]
	if !ok {
		return false, fmt.Errorf("core: candidate chain from unknown source %d", sc.Source)
	}
	ud, ok := b.aux.vmDup[sc.LastVM]
	if !ok {
		return false, fmt.Errorf("core: candidate chain to unknown VM %d", sc.LastVM)
	}
	w := sc.TotalCost()
	if b.pruning {
		rank := w + b.closure(sc.LastVM)
		if b.dominated(sc.Source, sc.LastVM, w, rank) {
			b.pruned++
			return false, nil
		}
		b.accepted[sc.Source] = append(b.accepted[sc.Source], auxCand{lastVM: sc.LastVM, cost: w, rank: rank})
	}
	id := b.aux.g.MustAddEdge(sd, ud, w)
	b.aux.chains[id] = sc
	if b.eager {
		b.srcCands[sc.Source] = append(b.srcCands[sc.Source], srcCand{edge: id, sc: sc})
	}
	b.added++
	return true, nil
}

// Added returns the number of candidates admitted into Ĝ.
func (b *AuxGraphBuilder) Added() int { return b.added }

// Pruned returns the number of candidates rejected as dominated.
func (b *AuxGraphBuilder) Pruned() int { return b.pruned }

// Complete runs the shared tail of Algorithm 2 (Steiner phase, forest
// assembly, per-source refinement) over the incrementally built Ĝ. With
// eager mode armed, the per-source refinement consumes the forests the
// eager runs precomputed — waiting for stragglers only after the Ĝ
// Steiner phase, so late runs still overlap it — and records the overlap
// accounting EagerOverlap reports.
func (b *AuxGraphBuilder) Complete(ctx context.Context) (*Forest, error) {
	ctx = ctxOrBackground(ctx)
	if b.added == 0 {
		b.eagerWG.Wait()
		return nil, errors.New("core: no feasible candidate service chain supplied")
	}
	var refined func(graph.NodeID) (*Forest, bool)
	var demand time.Time
	if b.eager {
		var waitOnce sync.Once
		refined = func(s graph.NodeID) (*Forest, bool) {
			// The refinement loop's first call marks the moment the
			// completion phase demands the eager results: everything a run
			// did before this instant overlapped the stream tail and the Ĝ
			// Steiner phase instead of serializing after them.
			waitOnce.Do(func() {
				demand = time.Now()
				b.eagerWG.Wait()
			})
			run, ok := b.eagerRuns[s]
			if !ok {
				return nil, false
			}
			return run.forest, true
		}
	}
	f, err := completeForestWith(ctx, b.g, b.oracle, b.vms, b.req, b.aux, b.o.Parallelism, refined)
	if b.eager {
		b.eagerWG.Wait()
		b.earlyRuns, b.earlyNS = 0, 0
		if demand.IsZero() {
			demand = time.Now()
		}
		for _, run := range b.eagerRuns {
			if !run.finished.After(demand) {
				// Finished before the completion phase asked: this closure
				// never blocked the pipeline.
				b.earlyRuns++
			}
			end := run.finished
			if demand.Before(end) {
				end = demand
			}
			if lead := end.Sub(run.started); lead > 0 {
				b.earlyNS += int64(lead)
			}
		}
	}
	return f, err
}

// SOFDAFromCandidates runs Algorithm 2's Steiner, conflict-resolution, and
// assembly phases over externally supplied candidate chains. It is the
// leader-side entry point of the distributed implementation (Section VI);
// SOFDA itself is equivalent to computing all |S|·|M| candidates centrally
// and calling this.
func SOFDAFromCandidates(g *graph.Graph, req Request, opts *Options, candidates []*chain.ServiceChain) (*Forest, error) {
	//sofvet:ignore ctxflow compat wrapper kept for pre-ctx callers; cancellation lives in SOFDAFromCandidatesCtx
	return SOFDAFromCandidatesCtx(context.Background(), g, req, opts, candidates)
}

// SOFDAFromCandidatesCtx is SOFDAFromCandidates with cancellation: ctx is
// observed between the Steiner, assembly, and per-source refinement phases.
func SOFDAFromCandidatesCtx(ctx context.Context, g *graph.Graph, req Request, opts *Options, candidates []*chain.ServiceChain) (*Forest, error) {
	ctx = ctxOrBackground(ctx)
	if req.ChainLen == 0 {
		if err := req.Validate(g); err != nil {
			return nil, err
		}
		return SOFDACtx(ctx, g, req, opts)
	}
	b, err := NewAuxGraphBuilder(ctx, g, req, opts)
	if err != nil {
		return nil, err
	}
	for _, sc := range candidates {
		if _, err := b.AddCandidate(sc); err != nil {
			return nil, err
		}
	}
	return b.Complete(ctx)
}

// completeForest runs the shared tail of Algorithm 2 over a built Ĝ: the
// Steiner phase, forest assembly, and the per-source single-tree
// refinement. Both the centralized SOFDA and the distributed leader end
// here, which is what makes their costs provably identical on equal Ĝ.
//
// The Steiner phase over Ĝ fans its per-terminal closure passes out over
// par workers (Ĝ is a private clone, so its trees cannot come from the
// session oracle); every KMB over the real network and the refinement's
// destination trees go through the oracle instead, staying warm across a
// request stream.
func completeForest(ctx context.Context, g *graph.Graph, oracle *chain.Oracle, vms []graph.NodeID, req Request, aux *auxGraph, par int) (*Forest, error) {
	return completeForestWith(ctx, g, oracle, vms, req, aux, par, nil)
}

// completeForestWith is completeForest with an optional refinement
// shortcut: when refined is non-nil and returns (f, true) for a source,
// f is that source's precomputed single-tree forest (nil when the source
// has none) and the inline computation is skipped. The eager builder
// supplies forests computed by the identical code path, so the shortcut
// changes wall-clock only, never the result.
func completeForestWith(ctx context.Context, g *graph.Graph, oracle *chain.Oracle, vms []graph.NodeID, req Request, aux *auxGraph, par int, refined func(graph.NodeID) (*Forest, bool)) (*Forest, error) {
	terminals := append([]graph.NodeID{aux.sHat}, req.Dests...)
	tree, err := steiner.KMBWith(aux.g, terminals, &steiner.KMBOptions{Parallelism: resolvePar(par)})
	if err != nil {
		return nil, fmt.Errorf("core: SOFDA Steiner phase: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	best, err := assembleForest(g, oracle, vms, req, aux, tree.Edges)
	if err != nil {
		return nil, err
	}
	if req.ChainLen == 0 {
		return best, nil
	}
	// Refinement: the KMB tree on Ĝ is one ρST-approximate Steiner tree;
	// any other feasible tree of Ĝ is equally admissible. For each source,
	// evaluate the single-chain tree built from its cheapest candidate
	// chain (the Ĝ tree that uses exactly one virtual edge) and keep the
	// cheapest assembled forest. This keeps the 3ρST guarantee — the KMB
	// candidate is never discarded for a worse one — while shaving the
	// 2-approximation noise on instances where one tree is optimal.
	var destTrees map[graph.NodeID]*graph.ShortestPaths
	for _, s := range req.Sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var f *Forest
		if refined != nil {
			var ok bool
			if f, ok = refined(s); !ok {
				f = nil
			} else if f == nil {
				continue
			}
		}
		if f == nil {
			if destTrees == nil {
				destTrees = make(map[graph.NodeID]*graph.ShortestPaths, len(req.Dests))
				for _, d := range req.Dests {
					destTrees[d] = oracle.Tree(d)
				}
			}
			cand := bestSingleTree(g, oracle, aux, s, req, destTrees)
			if cand == nil {
				continue
			}
			var err error
			f, err = assembleForest(g, oracle, vms, req, aux, cand)
			if err != nil {
				continue
			}
		}
		if f.TotalCost() < best.TotalCost() {
			best = f
		}
	}
	return best, nil
}

// isReal reports whether n is a node of the original network.
func (a *auxGraph) isReal(n graph.NodeID) bool { return int(n) < a.origNodes }

// isRealEdge reports whether e is an edge of the original network.
func (a *auxGraph) isRealEdge(e graph.EdgeID) bool { return int(e) < a.origEdges }

// SOFDA is Algorithm 2: the 3ρST-approximation for the general SOF problem
// with multiple sources. It builds Ĝ, extracts a Steiner tree spanning ŝ
// and all destinations, materializes the selected candidate chains as
// walks (resolving VNF conflicts per Procedure 4), and attaches the
// tree's real-edge components to the walks' last VMs.
func SOFDA(g *graph.Graph, req Request, opts *Options) (*Forest, error) {
	//sofvet:ignore ctxflow compat wrapper kept for pre-ctx callers; cancellation lives in SOFDACtx
	return SOFDACtx(context.Background(), g, req, opts)
}

// SOFDACtx is SOFDA with cancellation and concurrent candidate generation:
// the |S|·|M| candidate chains of Procedure 3 are computed on a worker
// pool bounded by opts.Parallelism, and ctx is observed throughout.
func SOFDACtx(ctx context.Context, g *graph.Graph, req Request, opts *Options) (*Forest, error) {
	ctx = ctxOrBackground(ctx)
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	o := optsOrDefault(opts)
	vms := o.vms(g)
	oracle := o.oracle(g)

	aux, err := buildAuxGraph(ctx, g, oracle, req.Sources, vms, req.ChainLen, o.Parallelism)
	if err != nil {
		return nil, err
	}
	return completeForest(ctx, g, oracle, vms, req, aux, o.Parallelism)
}

// bestSingleTree returns Ĝ tree edges for the cheapest single-chain
// solution rooted at source s: its best virtual edge (v̂,û) plus a KMB tree
// over {u} ∪ dests, or nil when infeasible. Candidates are ranked by chain
// cost + the metric-closure MST over {u} ∪ dests (KMB's own upper bound),
// and only the winner gets a full KMB run.
func bestSingleTree(g *graph.Graph, oracle *chain.Oracle, aux *auxGraph, s graph.NodeID, req Request, destTrees map[graph.NodeID]*graph.ShortestPaths) []graph.EdgeID {
	sHatDup, ok := aux.srcDup[s]
	if !ok {
		return nil
	}
	var cands []srcCand
	for _, a := range aux.g.Adj(sHatDup) {
		if sc, ok := aux.chains[a.Edge]; ok {
			cands = append(cands, srcCand{edge: a.Edge, sc: sc})
		}
	}
	edges, _ := singleTreeEdges(g, oracle, cands, req, destTrees)
	return edges
}

// singleTreeEdges ranks a source's candidates — in their Ĝ insertion
// order, so the first strict minimum wins exactly as the adjacency scan
// would pick it — and returns the winner's Ĝ tree edges (its KMB tree
// over {lastVM} ∪ dests plus the virtual edge, last) together with the
// winner itself. nil edges when there is no candidate or KMB fails. Both
// the inline refinement and the eager runs funnel through here, which is
// what makes their forests interchangeable.
func singleTreeEdges(g *graph.Graph, oracle *chain.Oracle, cands []srcCand, req Request, destTrees map[graph.NodeID]*graph.ShortestPaths) ([]graph.EdgeID, srcCand) {
	var winner srcCand
	winner.edge = graph.NoEdge
	bestCost := 0.0
	for _, c := range cands {
		r := c.sc.TotalCost() + closureMST(c.sc.LastVM, req.Dests, destTrees)
		if winner.edge == graph.NoEdge || r < bestCost {
			winner = c
			bestCost = r
		}
	}
	if winner.edge == graph.NoEdge {
		return nil, winner
	}
	tree, err := steiner.KMBWith(g, append([]graph.NodeID{winner.sc.LastVM}, req.Dests...),
		&steiner.KMBOptions{Provider: oracle})
	if err != nil {
		return nil, winner
	}
	edges := append([]graph.EdgeID(nil), tree.Edges...)
	return append(edges, winner.edge), winner
}

// closureMST is the MST cost of the metric closure over {u} ∪ dests, using
// precomputed per-destination shortest-path trees. It upper-bounds (within
// KMB's factor) the Steiner tree connecting u to the destinations.
func closureMST(u graph.NodeID, dests []graph.NodeID, destTrees map[graph.NodeID]*graph.ShortestPaths) float64 {
	nodes := append([]graph.NodeID{u}, dests...)
	const inf = math.MaxFloat64
	inTree := make([]bool, len(nodes))
	minCost := make([]float64, len(nodes))
	for i := range minCost {
		minCost[i] = inf
	}
	minCost[0] = 0
	total := 0.0
	dist := func(i, j int) float64 {
		// At least one of the pair is a destination with a full tree.
		if i > 0 {
			return destTrees[nodes[i]].Dist[nodes[j]]
		}
		return destTrees[nodes[j]].Dist[nodes[i]]
	}
	for iter := 0; iter < len(nodes); iter++ {
		best := -1
		for i := range nodes {
			if !inTree[i] && (best < 0 || minCost[i] < minCost[best]) {
				best = i
			}
		}
		inTree[best] = true
		if minCost[best] < inf {
			total += minCost[best]
		}
		for i := range nodes {
			if !inTree[i] {
				if d := dist(best, i); d < minCost[i] {
					minCost[i] = d
				}
			}
		}
	}
	return total
}

// assembleForest converts a Steiner tree in Ĝ into a feasible service
// overlay forest (Algorithm 2 steps 3–9).
func assembleForest(g *graph.Graph, oracle *chain.Oracle, vms []graph.NodeID, req Request, aux *auxGraph, treeEdges []graph.EdgeID) (*Forest, error) {
	// Partition the tree's edges: real edges form the distribution
	// components; virtual ESM edges select candidate chains.
	var realEdges []graph.EdgeID
	type anchorInfo struct {
		sc *chain.ServiceChain // nil for chainLen==0 source anchors
		at graph.NodeID        // real anchor node
	}
	var anchors []anchorInfo
	seenAnchor := make(map[graph.NodeID]bool)
	for _, id := range treeEdges {
		if aux.isRealEdge(id) {
			realEdges = append(realEdges, id)
			continue
		}
		if sc, ok := aux.chains[id]; ok {
			// Two chains may target the same last VM when the Steiner tree
			// routes through û as a junction; conflict resolution merges
			// them via same-index sharing, so both are added.
			anchors = append(anchors, anchorInfo{sc: sc, at: sc.LastVM})
			continue
		}
		// Zero-cost structural edges (ŝ–v̂, û–u, and for chainLen==0 the
		// v̂–v edges). The v̂–v edges identify source anchors.
		e := aux.g.Edge(id)
		if req.ChainLen == 0 {
			for s, d := range aux.srcDup {
				if (e.U == d && e.V == s) || (e.V == d && e.U == s) {
					if !seenAnchor[s] {
						seenAnchor[s] = true
						anchors = append(anchors, anchorInfo{at: s})
					}
				}
			}
		}
	}
	if len(anchors) == 0 {
		return nil, errors.New("core: Steiner tree selected no candidate chain")
	}
	// Deterministic order: cheaper chains first so expensive walks attach
	// to established prefixes.
	sort.SliceStable(anchors, func(i, j int) bool {
		ci, cj := 0.0, 0.0
		if anchors[i].sc != nil {
			ci = anchors[i].sc.TotalCost()
		}
		if anchors[j].sc != nil {
			cj = anchors[j].sc.TotalCost()
		}
		if ci != cj {
			return ci < cj
		}
		return anchors[i].at < anchors[j].at
	})

	f := NewForest(g, req.ChainLen)
	res := newResolver(f, oracle, vms)
	anchorClone := make(map[graph.NodeID]CloneID, len(anchors))
	for _, a := range anchors {
		if a.sc == nil {
			anchorClone[a.at] = f.newRoot(a.at)
			continue
		}
		last, err := res.AddWalk(a.sc)
		if err != nil {
			return nil, fmt.Errorf("core: adding walk %d→%d: %w", a.sc.Source, a.sc.LastVM, err)
		}
		anchorClone[a.at] = last
	}

	// Group real tree edges into connected components and attach each to
	// its unique anchor.
	destSet := make(map[graph.NodeID]bool, len(req.Dests))
	for _, d := range req.Dests {
		destSet[d] = true
	}
	comps := componentsOf(g, realEdges)
	served := 0
	for _, comp := range comps {
		anchor := graph.None
		for n := range comp.nodes {
			if _, ok := anchorClone[n]; ok {
				if anchor != graph.None {
					return nil, fmt.Errorf("core: tree component holds two anchors (%d, %d)", anchor, n)
				}
				//sofvet:ignore detorder at most one anchor exists per component (two is an error above), so no tie for map order to break
				anchor = n
			}
		}
		if anchor == graph.None {
			// A component not reachable from any chain: tolerated only if
			// it serves no destination (pruned dead weight).
			for n := range comp.nodes {
				if destSet[n] {
					return nil, fmt.Errorf("core: destination %d in component with no anchor", n)
				}
			}
			continue
		}
		n, err := f.AttachTree(anchorClone[anchor], comp.edges, destSet)
		if err != nil {
			return nil, err
		}
		served += n
	}
	// Destinations that coincide with an anchor node are served directly.
	for _, d := range req.Dests {
		if _, ok := f.dests[d]; ok {
			continue
		}
		if c, ok := anchorClone[d]; ok {
			f.MarkDestination(d, c)
			served++
		}
	}
	if served < len(req.Dests) {
		return nil, fmt.Errorf("core: only %d of %d destinations attached", served, len(req.Dests))
	}
	f.Prune()
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		return nil, fmt.Errorf("core: SOFDA produced infeasible forest: %w", err)
	}
	return f, nil
}

// component is a connected set of real edges with its node set.
type component struct {
	nodes map[graph.NodeID]bool
	edges []graph.EdgeID
}

// componentsOf groups edges into connected components.
func componentsOf(g *graph.Graph, edges []graph.EdgeID) []*component {
	parent := make(map[graph.NodeID]graph.NodeID)
	var find func(x graph.NodeID) graph.NodeID
	find = func(x graph.NodeID) graph.NodeID {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	for _, id := range edges {
		e := g.Edge(id)
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	byRoot := make(map[graph.NodeID]*component)
	for _, id := range edges {
		e := g.Edge(id)
		r := find(e.U)
		c, ok := byRoot[r]
		if !ok {
			c = &component{nodes: make(map[graph.NodeID]bool)}
			byRoot[r] = c
		}
		c.edges = append(c.edges, id)
		c.nodes[e.U] = true
		c.nodes[e.V] = true
	}
	out := make([]*component, 0, len(byRoot))
	roots := make([]graph.NodeID, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
