package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"sof/internal/chain"
	"sof/internal/graph"
	"sof/internal/steiner"
)

// Request describes one SOF embedding problem: a set of candidate sources,
// a set of destinations all demanding the same VNF chain, and the chain
// length |C|.
type Request struct {
	Sources  []graph.NodeID
	Dests    []graph.NodeID
	ChainLen int
}

// Validate checks the request against the network.
func (r *Request) Validate(g *graph.Graph) error {
	if len(r.Sources) == 0 {
		return errors.New("core: request has no sources")
	}
	if len(r.Dests) == 0 {
		return errors.New("core: request has no destinations")
	}
	if r.ChainLen < 0 {
		return fmt.Errorf("core: negative chain length %d", r.ChainLen)
	}
	for _, s := range r.Sources {
		if !g.Valid(s) {
			return fmt.Errorf("core: source %d out of range", s)
		}
	}
	for _, d := range r.Dests {
		if !g.Valid(d) {
			return fmt.Errorf("core: destination %d out of range", d)
		}
	}
	return nil
}

// Options configure the embedding algorithms.
type Options struct {
	// Chain configures the chain oracle (k-stroll solver, Appendix D
	// source costs). Ignored when Oracle is set.
	Chain chain.Options
	// Oracle, when non-nil, is used instead of constructing a throwaway
	// oracle per call. It must be an oracle over the same graph the
	// algorithm runs on; long-lived callers (sof.Solver, the distributed
	// domains) share one so Dijkstra trees computed for earlier requests
	// stay warm across a request stream (epoch-keyed, see chain.Oracle).
	Oracle *chain.Oracle
	// VMs restricts the candidate VM set; all VMs of the graph when nil.
	VMs []graph.NodeID
	// Parallelism bounds the worker pool used for candidate-chain
	// generation: GOMAXPROCS when <= 0, sequential when 1.
	Parallelism int
}

func (o *Options) vms(g *graph.Graph) []graph.NodeID {
	if o != nil && o.VMs != nil {
		return o.VMs
	}
	return g.VMs()
}

func optsOrDefault(opts *Options) Options {
	if opts == nil {
		return Options{}
	}
	return *opts
}

// oracle returns the shared oracle when the caller supplied one, or a
// fresh single-use oracle over g otherwise.
func (o *Options) oracle(g *graph.Graph) *chain.Oracle {
	if o != nil && o.Oracle != nil {
		return o.Oracle
	}
	return chain.NewOracle(g, o.Chain)
}

// ctxOrBackground normalizes a nil context; every exported Ctx entry point
// tolerates nil the same way chain.Oracle.Chains does.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// resolvePar maps Options.Parallelism's 0-means-GOMAXPROCS convention to
// the explicit worker count steiner.KMBOptions expects.
func resolvePar(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SOFDASS is Algorithm 1: the (2+ρST)-approximation for the single-source
// SOF problem. For every candidate last VM u it builds the minimum-cost
// service chain s→u via the k-stroll reduction (Procedures 1–2), appends a
// Steiner tree spanning u and all destinations, and returns the cheapest
// resulting forest.
func SOFDASS(g *graph.Graph, source graph.NodeID, dests []graph.NodeID, chainLen int, opts *Options) (*Forest, error) {
	//sofvet:ignore ctxflow compat wrapper kept for pre-ctx callers; cancellation lives in SOFDASSCtx
	return SOFDASSCtx(context.Background(), g, source, dests, chainLen, opts)
}

// SOFDASSCtx is SOFDASS with cancellation: candidate chains for all last
// VMs are generated concurrently on the oracle's fan-out pool (bounded by
// opts.Parallelism), and the per-VM Steiner phase observes ctx between
// candidates.
func SOFDASSCtx(ctx context.Context, g *graph.Graph, source graph.NodeID, dests []graph.NodeID, chainLen int, opts *Options) (*Forest, error) {
	ctx = ctxOrBackground(ctx)
	req := Request{Sources: []graph.NodeID{source}, Dests: dests, ChainLen: chainLen}
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	o := optsOrDefault(opts)
	vms := o.vms(g)
	oracle := o.oracle(g)

	if chainLen == 0 {
		// Degenerate case: no VNFs; the forest is a Steiner tree rooted at
		// the source. Provider-backed and sequential like every other KMB
		// over the real network — warm fetches are cache lookups.
		tree, err := steiner.KMBWith(g, append([]graph.NodeID{source}, dests...),
			&steiner.KMBOptions{Provider: oracle})
		if err != nil {
			return nil, err
		}
		return forestFromTree(g, source, tree, dests, 0)
	}

	chains, err := oracle.Chains(ctx, vms, chain.Pairs([]graph.NodeID{source}, vms), chainLen, o.Parallelism)
	if err != nil {
		return nil, err
	}
	type candidate struct {
		sc   *chain.ServiceChain
		tree *steiner.Tree
		cost float64
	}
	var best *candidate
	var lastErr error
	for _, r := range chains {
		if r.Err != nil {
			lastErr = r.Err
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := r.Chain
		// Oracle-backed KMB: the destination trees are shared by every
		// candidate last VM of this loop (and by later requests of the
		// session), so the per-VM Steiner phase stops re-running the same
		// metric closure |M| times.
		tree, err := steiner.KMBWith(g, append([]graph.NodeID{sc.LastVM}, dests...),
			&steiner.KMBOptions{Provider: oracle})
		if err != nil {
			lastErr = err
			continue
		}
		cost := sc.TotalCost() + tree.Cost
		if best == nil || cost < best.cost {
			best = &candidate{sc: sc, tree: tree, cost: cost}
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = errors.New("core: no feasible last VM")
		}
		return nil, fmt.Errorf("core: SOFDA-SS found no feasible forest: %w", lastErr)
	}
	if err := assertFinite(best.cost, "SOFDA-SS cost"); err != nil {
		return nil, err
	}

	f := NewForest(g, chainLen)
	_, last, err := f.AttachChainWalk(best.sc)
	if err != nil {
		return nil, err
	}
	destSet := make(map[graph.NodeID]bool, len(dests))
	for _, d := range dests {
		destSet[d] = true
	}
	if _, err := f.AttachTree(last, best.tree.Edges, destSet); err != nil {
		return nil, err
	}
	f.Prune()
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		return nil, fmt.Errorf("core: SOFDA-SS produced infeasible forest: %w", err)
	}
	return f, nil
}

// forestFromTree builds a forest from a plain Steiner tree anchored at
// `anchor`, used for the chainLen==0 degenerate case and by baselines.
func forestFromTree(g *graph.Graph, anchor graph.NodeID, tree *steiner.Tree, dests []graph.NodeID, chainLen int) (*Forest, error) {
	f := NewForest(g, chainLen)
	root := f.newRoot(anchor)
	destSet := make(map[graph.NodeID]bool, len(dests))
	for _, d := range dests {
		destSet[d] = true
	}
	if _, err := f.AttachTree(root, tree.Edges, destSet); err != nil {
		return nil, err
	}
	f.Prune()
	if err := f.Validate([]graph.NodeID{anchor}, dests); err != nil {
		return nil, err
	}
	return f, nil
}

// lowerBoundCost is a cheap sanity lower bound used in tests: the cost of
// any feasible forest is at least the cheapest chainLen VM setups.
func lowerBoundCost(g *graph.Graph, vms []graph.NodeID, chainLen int) float64 {
	costs := make([]float64, 0, len(vms))
	for _, v := range vms {
		costs = append(costs, g.NodeCost(v))
	}
	if len(costs) < chainLen {
		return 0
	}
	// partial selection sort for the chainLen smallest
	total := 0.0
	for i := 0; i < chainLen; i++ {
		minIdx := i
		for j := i + 1; j < len(costs); j++ {
			if costs[j] < costs[minIdx] {
				minIdx = j
			}
		}
		costs[i], costs[minIdx] = costs[minIdx], costs[i]
		total += costs[i]
	}
	return total
}
