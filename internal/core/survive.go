package core

// Survivability: damage detection and repair after network failures.
//
// Failures live in the graph layer as a copy-on-write snapshot
// (graph.FailEdge / graph.FailNode); the forest's clone structure is NOT
// mutated by a failure. Damage walks the clone trees against the current
// snapshot to find the destinations whose root paths cross a failed
// element, and Repair re-attaches them: first from a pre-planned backup
// graft (PlanBackups), then via the cheapest live join point (the same
// machinery as the Section VII-C Join operation), bounded by an optional
// cost budget so a caller can prefer a full re-embed over a pathological
// graft.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sof/internal/chain"
	"sof/internal/graph"
)

// ErrOverBudget is returned (wrapped) when the cheapest feasible graft for
// a destination exceeds the caller's repair budget. The forest is not
// mutated in that case; the caller decides between raising the budget and
// re-embedding from scratch.
var ErrOverBudget = errors.New("core: graft cost over budget")

// Damage describes the effect of the graph's current failure state on one
// forest.
type Damage struct {
	// Orphans lists the severed destinations, sorted. A destination is
	// severed when any clone on its root path sits on a failed node or
	// hangs off a failed parent edge (the destination node itself
	// included).
	Orphans []graph.NodeID
	// BreakAt maps each orphan to the last healthy clone above its
	// topmost break — the natural re-attach anchor — or NoClone when the
	// break is at the tree root itself.
	BreakAt map[graph.NodeID]CloneID
	// LostVNFs counts enabled VNF clones inside severed subtrees; their
	// VMs become free again once the severed subtrees are pruned.
	LostVNFs int
}

// Broken reports whether any destination was severed.
func (d *Damage) Broken() bool { return len(d.Orphans) > 0 }

// brokenClone reports whether clone cl is directly hit by the failure
// snapshot: its node failed, or its uplink edge failed.
func brokenClone(fs *graph.FailState, cl *Clone) bool {
	return fs.NodeFailed(cl.Node) ||
		(cl.ParentEdge != graph.NoEdge && fs.EdgeFailed(cl.ParentEdge))
}

// severedSet classifies every live clone as severed (below or at a break)
// or alive, memoized along parent chains so the whole forest costs O(clones).
func (f *Forest) severedSet(fs *graph.FailState) []bool {
	const (
		unknown = iota
		alive
		cut
	)
	state := make([]uint8, len(f.clones))
	var stack []CloneID
	for id := range f.clones {
		if f.clones[id].deleted || state[id] != unknown {
			continue
		}
		stack = stack[:0]
		verdict := uint8(alive)
		for cur := CloneID(id); cur != NoClone; cur = f.clones[cur].Parent {
			if state[cur] != unknown {
				verdict = state[cur]
				break
			}
			stack = append(stack, cur)
			if brokenClone(fs, &f.clones[cur]) {
				verdict = cut
				break
			}
		}
		// Everything walked sits at or below the stopping point, so it
		// shares the verdict: below a break → cut, under a memoized
		// ancestor → that ancestor's class, clean to the root → alive.
		for _, c := range stack {
			state[c] = verdict
		}
	}
	out := make([]bool, len(f.clones))
	for id, s := range state {
		out[id] = s == cut
	}
	return out
}

// Damage computes the forest's damage under the graph's current failure
// snapshot. It does not mutate the forest; with no failures present it
// returns an empty (non-broken) Damage.
func (f *Forest) Damage() *Damage {
	dmg := &Damage{BreakAt: make(map[graph.NodeID]CloneID)}
	fs := f.g.Failures()
	if fs == nil {
		return dmg
	}
	for d, c := range f.dests {
		path := f.PathToRoot(c) // dest clone first, root last
		breakIdx := -1
		for i := len(path) - 1; i >= 0; i-- { // root → dest
			if brokenClone(fs, &f.clones[path[i]]) {
				breakIdx = i
				break
			}
		}
		if breakIdx < 0 {
			continue
		}
		dmg.Orphans = append(dmg.Orphans, d)
		if breakIdx == len(path)-1 {
			dmg.BreakAt[d] = NoClone
		} else {
			dmg.BreakAt[d] = path[breakIdx+1]
		}
	}
	sort.Slice(dmg.Orphans, func(i, j int) bool { return dmg.Orphans[i] < dmg.Orphans[j] })
	sev := f.severedSet(fs)
	for id := range f.clones {
		if !f.clones[id].deleted && f.clones[id].VNF != 0 && sev[id] {
			dmg.LostVNFs++
		}
	}
	return dmg
}

// RepairOptions tunes Repair.
type RepairOptions struct {
	// Budget caps the graft cost accepted for any single destination on
	// the fast path; a dearer cheapest-graft fails that destination with
	// ErrOverBudget. Zero or negative means unbounded.
	Budget float64
}

// RepairFailure records one destination Repair could not re-attach and why.
type RepairFailure struct {
	Dest graph.NodeID
	Err  error
}

// RepairReport summarizes a Repair run.
type RepairReport struct {
	// Orphans is the number of severed destinations found.
	Orphans int
	// Reattached counts destinations re-attached (backup hits included).
	Reattached int
	// BackupHits counts re-attachments served from a PlanBackups plan.
	BackupHits int
	// CostDelta is the forest cost after repair minus the cost before the
	// failure (a damaged forest's cost equals its pre-failure cost, since
	// costs are structural). Pruned dead weight can make it negative.
	CostDelta float64
	// Failed lists destinations that could not be re-attached, sorted by
	// destination; the caller escalates these (re-embed or surface).
	Failed []RepairFailure
}

// Repair re-attaches every severed destination it can. The severed
// subtrees are detached and pruned first — freeing their VMs for reuse —
// then each orphan is re-attached via its backup plan if one validates, or
// else grafted at the cheapest live join point within opts.Budget. Every
// re-attached destination is feasibility-checked (full chain, in order).
//
// Orphans that cannot be re-attached (failed destination node, no feasible
// graft, over budget) are returned in RepairReport.Failed — never silently
// dropped — and the forest keeps serving all healthy destinations. The
// error return is non-nil only when the forest itself is corrupt.
func (f *Forest) Repair(oracle *chain.Oracle, freeVMs []graph.NodeID, opts *RepairOptions) (*RepairReport, error) {
	dmg := f.Damage()
	rep := &RepairReport{Orphans: len(dmg.Orphans)}
	if !dmg.Broken() {
		return rep, nil
	}
	budget := math.Inf(1)
	if opts != nil && opts.Budget > 0 {
		budget = opts.Budget
	}
	before := f.TotalCost()
	fs := f.g.Failures()
	// Remember the healthy source roots: if pruning deletes a root whose
	// every destination was severed, a fresh root clone of the same source
	// re-seeds the graft search (otherwise a fully-severed forest would
	// have no live clone to anchor a join).
	rootNodes := make(map[graph.NodeID]bool)
	for _, r := range f.roots {
		if !f.clones[r].deleted && !fs.NodeFailed(f.clones[r].Node) {
			rootNodes[f.clones[r].Node] = true
		}
	}
	// Detach the orphans and prune: severed subtrees serve nobody now, so
	// pruning deletes them and releases their VMs (disable clears owner).
	for _, d := range dmg.Orphans {
		delete(f.dests, d)
	}
	f.Prune()
	for _, r := range f.roots {
		if !f.clones[r].deleted {
			delete(rootNodes, f.clones[r].Node)
		}
	}
	reseed := make([]graph.NodeID, 0, len(rootNodes))
	for n := range rootNodes {
		reseed = append(reseed, n)
	}
	sort.Slice(reseed, func(i, j int) bool { return reseed[i] < reseed[j] })
	for _, n := range reseed {
		f.newRoot(n)
	}
	for _, d := range dmg.Orphans {
		if fs.NodeFailed(d) {
			rep.Failed = append(rep.Failed, RepairFailure{
				Dest: d,
				Err:  fmt.Errorf("core: destination node %d itself failed", d),
			})
			continue
		}
		if f.tryBackup(d, fs) {
			rep.Reattached++
			rep.BackupHits++
			continue
		}
		if _, err := f.join(oracle, freeVMs, d, budget); err != nil {
			rep.Failed = append(rep.Failed, RepairFailure{Dest: d, Err: err})
			continue
		}
		rep.Reattached++
	}
	// A graft that died halfway (enable error) leaves dead-leaf clones;
	// prune reclaims them before the final cost accounting.
	f.Prune()
	rep.CostDelta = f.TotalCost() - before
	return rep, nil
}

// JoinWithBudget is Join bounded by the repair budget (see RepairOptions):
// it rejects a cheapest graft dearer than budget with ErrOverBudget before
// any mutation. Repair retries and the solver's recovery sweep use it to
// re-attempt individual orphans without re-running damage detection.
func (f *Forest) JoinWithBudget(oracle *chain.Oracle, freeVMs []graph.NodeID, d graph.NodeID, budget float64) (float64, error) {
	if budget <= 0 {
		budget = math.Inf(1)
	}
	return f.join(oracle, freeVMs, d, budget)
}

// backupPlan is a pre-computed standby graft for one destination: an
// anchor clone plus the extension walk to replay under it. Plans are
// validated cheaply at repair time (anchor alive, progress unchanged, no
// failed elements on the walk, VMs still free) and consumed on use.
type backupPlan struct {
	anchor   CloneID
	progress int
	ext      *chain.ServiceChain
}

// PlanBackups pre-computes standby attach plans for the given critical
// destinations. Each plan anchors at a live clone OFF the destination's
// current serving path, so a failure that severs the primary path tends to
// leave the backup intact; plans avoid VMs the forest already uses but may
// share spare VMs with each other — conflicts surface at repair time, when
// a stale plan simply falls back to the normal graft search.
//
// It returns how many plans were stored; the error joins the per-dest
// reasons for destinations that got none (not served, or no off-path
// anchor reaches them) and is advisory — planning is best-effort.
func (f *Forest) PlanBackups(oracle *chain.Oracle, freeVMs []graph.NodeID, critical []graph.NodeID) (int, error) {
	if f.backups == nil {
		f.backups = make(map[graph.NodeID]backupPlan)
	}
	avail := make([]graph.NodeID, 0, len(freeVMs))
	for _, v := range freeVMs {
		if _, used := f.owner[v]; !used {
			avail = append(avail, v)
		}
	}
	planned := 0
	var errs []error
	for _, d := range critical {
		serving, ok := f.dests[d]
		if !ok {
			errs = append(errs, fmt.Errorf("destination %d not served", d))
			continue
		}
		onPath := make(map[CloneID]bool)
		for _, c := range f.PathToRoot(serving) {
			onPath[c] = true
		}
		var best *backupPlan
		bestCost := math.Inf(1)
		for id := range f.clones {
			c := CloneID(id)
			if f.clones[c].deleted || onPath[c] {
				continue
			}
			progress, err := f.vnfProgress(c)
			if err != nil {
				continue
			}
			ext, err := oracle.Extension(avail, f.clones[c].Node, d, f.chainLen-progress)
			if err != nil {
				continue
			}
			if ext.TotalCost() < bestCost {
				bestCost = ext.TotalCost()
				best = &backupPlan{anchor: c, progress: progress, ext: ext}
			}
		}
		if best == nil {
			errs = append(errs, fmt.Errorf("destination %d: no off-path backup anchor", d))
			continue
		}
		f.backups[d] = *best
		planned++
	}
	return planned, errors.Join(errs...)
}

// HasBackup reports whether destination d has a stored backup plan.
func (f *Forest) HasBackup(d graph.NodeID) bool {
	_, ok := f.backups[d]
	return ok
}

// tryBackup attempts to re-attach orphan d from its stored backup plan.
// It revalidates the plan against the live forest and failure snapshot and
// reports whether the graft succeeded; a stale or infeasible plan is
// dropped so the caller falls through to the normal join search.
func (f *Forest) tryBackup(d graph.NodeID, fs *graph.FailState) bool {
	plan, ok := f.backups[d]
	if !ok {
		return false
	}
	if int(plan.anchor) >= len(f.clones) || f.clones[plan.anchor].deleted {
		return false
	}
	if got, err := f.vnfProgress(plan.anchor); err != nil || got != plan.progress {
		return false
	}
	for _, e := range plan.ext.Edges {
		if e != graph.NoEdge && fs.EdgeFailed(e) {
			return false
		}
	}
	for _, n := range plan.ext.Nodes {
		if fs.NodeFailed(n) {
			return false
		}
	}
	for _, vm := range plan.ext.VMs {
		if _, used := f.owner[vm]; used {
			return false
		}
	}
	last, err := f.graftWalk(plan.anchor, plan.ext, plan.progress)
	if err != nil {
		return false
	}
	f.MarkDestination(d, last)
	if err := f.checkDest(d); err != nil {
		delete(f.dests, d)
		return false
	}
	delete(f.backups, d)
	return true
}
