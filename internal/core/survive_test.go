package core

import (
	"errors"
	"testing"

	"sof/internal/chain"
	"sof/internal/graph"
)

// surviveNet is a handcrafted network with a cheap and an expensive route
// to two destinations, plus a lateral edge between them:
//
//	s --1-- v1 --2-- d1
//	         \--2-- d2      d1 --3-- d2
//	s --5-- v2 --5-- d1
//	         \--5-- d2
//
// v1, v2 are VMs (setup cost 1 each); a chain of length 1 embeds both
// destinations through v1.
func surviveNet(t *testing.T) (g *graph.Graph, s, v1, v2, d1, d2 graph.NodeID, ev1d1 graph.EdgeID) {
	t.Helper()
	g = graph.New(5, 7)
	s = g.AddSwitch("s")
	v1 = g.AddVM("v1", 1)
	v2 = g.AddVM("v2", 1)
	d1 = g.AddSwitch("d1")
	d2 = g.AddSwitch("d2")
	g.MustAddEdge(s, v1, 1)
	ev1d1 = g.MustAddEdge(v1, d1, 2)
	g.MustAddEdge(v1, d2, 2)
	g.MustAddEdge(s, v2, 5)
	g.MustAddEdge(v2, d1, 5)
	g.MustAddEdge(v2, d2, 5)
	g.MustAddEdge(d1, d2, 3)
	return
}

func surviveForest(t *testing.T) (*Forest, *chain.Oracle, Request, *surviveNodes) {
	t.Helper()
	g, s, v1, v2, d1, d2, ev1d1 := surviveNet(t)
	req := Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d1, d2}, ChainLen: 1}
	f, err := SOFDA(g, req, nil)
	if err != nil {
		t.Fatalf("SOFDA: %v", err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatalf("seed forest invalid: %v", err)
	}
	return f, chain.NewOracle(g, chain.Options{}), req,
		&surviveNodes{s: s, v1: v1, v2: v2, d1: d1, d2: d2, ev1d1: ev1d1}
}

type surviveNodes struct {
	s, v1, v2, d1, d2 graph.NodeID
	ev1d1             graph.EdgeID
}

func TestDamageDetectsSeveredDest(t *testing.T) {
	f, _, _, n := surviveForest(t)
	if dmg := f.Damage(); dmg.Broken() {
		t.Fatalf("undamaged forest reports damage: %+v", dmg)
	}
	f.Graph().FailEdge(n.ev1d1)
	dmg := f.Damage()
	if len(dmg.Orphans) != 1 || dmg.Orphans[0] != n.d1 {
		t.Fatalf("orphans = %v, want [%d]", dmg.Orphans, n.d1)
	}
	anchor, ok := dmg.BreakAt[n.d1]
	if !ok || anchor == NoClone || f.clones[anchor].Node != n.v1 {
		t.Fatalf("BreakAt[%d] = %v, want the v1 clone", n.d1, anchor)
	}
	if dmg.LostVNFs != 0 {
		t.Fatalf("LostVNFs = %d, want 0 (v1 sits above the break)", dmg.LostVNFs)
	}
	f.Graph().RestoreEdge(n.ev1d1)
	if f.Damage().Broken() {
		t.Fatal("damage persists after restore")
	}
	// Failing the VM itself severs both destinations and loses its VNF.
	f.Graph().FailNode(n.v1)
	dmg = f.Damage()
	if len(dmg.Orphans) != 2 {
		t.Fatalf("orphans after VM failure = %v, want both dests", dmg.Orphans)
	}
	if dmg.LostVNFs != 1 {
		t.Fatalf("LostVNFs = %d, want 1", dmg.LostVNFs)
	}
}

func TestRepairReattachesViaJoin(t *testing.T) {
	f, oracle, req, n := surviveForest(t)
	f.Graph().FailEdge(n.ev1d1)
	rep, err := f.Repair(oracle, f.Graph().VMs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 1 || rep.Reattached != 1 || len(rep.Failed) != 0 {
		t.Fatalf("report = %+v, want 1 orphan reattached", rep)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatalf("repaired forest invalid: %v", err)
	}
	// The repaired route must avoid the failed edge: d1 now hangs off d2.
	c, _ := f.DestClone(n.d1)
	for _, id := range f.PathToRoot(c) {
		if f.clones[id].ParentEdge == n.ev1d1 {
			t.Fatal("repaired path still uses the failed edge")
		}
	}
	if rep.CostDelta <= 0 {
		t.Fatalf("CostDelta = %v, want positive (detour is dearer)", rep.CostDelta)
	}
}

func TestRepairFailedVMReembedsThroughSpare(t *testing.T) {
	f, oracle, req, n := surviveForest(t)
	f.Graph().FailNode(n.v1)
	rep, err := f.Repair(oracle, f.Graph().VMs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 2 || rep.Reattached != 2 || len(rep.Failed) != 0 {
		t.Fatalf("report = %+v, want both orphans reattached", rep)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatalf("repaired forest invalid: %v", err)
	}
	// v1 is dead: the chain must now run on v2.
	if f.VNFOf(n.v2) != 1 {
		t.Fatalf("VNF not migrated to spare VM v2 (owner: %v)", f.UsedVMs())
	}
}

func TestRepairFailedDestNodeIsSurfaced(t *testing.T) {
	f, oracle, req, n := surviveForest(t)
	f.Graph().FailNode(n.d1)
	rep, err := f.Repair(oracle, f.Graph().VMs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 1 || rep.Reattached != 0 || len(rep.Failed) != 1 {
		t.Fatalf("report = %+v, want 1 unrecoverable orphan", rep)
	}
	if rep.Failed[0].Dest != n.d1 || rep.Failed[0].Err == nil {
		t.Fatalf("failure record = %+v", rep.Failed[0])
	}
	// The healthy destination keeps its service.
	if err := f.Validate(req.Sources, []graph.NodeID{n.d2}); err != nil {
		t.Fatalf("healthy dest lost: %v", err)
	}
}

func TestRepairBudgetRejectsDearGraft(t *testing.T) {
	f, oracle, _, n := surviveForest(t)
	f.Graph().FailEdge(n.ev1d1)
	rep, err := f.Repair(oracle, f.Graph().VMs(), &RepairOptions{Budget: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reattached != 0 || len(rep.Failed) != 1 {
		t.Fatalf("report = %+v, want over-budget failure", rep)
	}
	if !errors.Is(rep.Failed[0].Err, ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", rep.Failed[0].Err)
	}
}

func TestPlanBackupsFastPath(t *testing.T) {
	f, oracle, req, n := surviveForest(t)
	planned, err := f.PlanBackups(oracle, f.Graph().VMs(), []graph.NodeID{n.d1})
	if err != nil {
		t.Fatalf("PlanBackups: %v", err)
	}
	if planned != 1 || !f.HasBackup(n.d1) {
		t.Fatalf("planned = %d, HasBackup = %v", planned, f.HasBackup(n.d1))
	}
	f.Graph().FailEdge(n.ev1d1)
	rep, rerr := f.Repair(oracle, f.Graph().VMs(), nil)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if rep.BackupHits != 1 || rep.Reattached != 1 {
		t.Fatalf("report = %+v, want one backup hit", rep)
	}
	if f.HasBackup(n.d1) {
		t.Fatal("backup plan not consumed")
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatalf("repaired forest invalid: %v", err)
	}
}

func TestPlanBackupsUnservedDest(t *testing.T) {
	f, oracle, _, n := surviveForest(t)
	planned, err := f.PlanBackups(oracle, f.Graph().VMs(), []graph.NodeID{n.s})
	if planned != 0 || err == nil {
		t.Fatalf("planned = %d, err = %v; want 0 with an error", planned, err)
	}
}

// TestRepairRandomNetworks drives Damage/Repair over random instances: for
// every seeded failure, each severed destination must end up re-attached
// (and the forest re-validated) or surfaced in Failed — never dropped.
func TestRepairRandomNetworks(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 24, ExtraEdges: 36, VMFraction: 0.45, MaxEdge: 8, MaxSetup: 5,
		}, seed)
		vms, sws := g.VMs(), g.Switches()
		if len(vms) < 6 || len(sws) < 6 {
			continue
		}
		req := Request{Sources: sws[:2], Dests: sws[2:5], ChainLen: 2}
		f, err := SOFDA(g, req, nil)
		if err != nil {
			continue
		}
		oracle := chain.NewOracle(g, chain.Options{})
		// Fail every destination's first path edge — maximal blast radius
		// short of killing the sources.
		for _, d := range req.Dests {
			c, _ := f.DestClone(d)
			if e := f.clones[c].ParentEdge; e != graph.NoEdge {
				g.FailEdge(e)
			}
		}
		before := f.Damage()
		rep, err := f.Repair(oracle, vms, nil)
		if err != nil {
			t.Fatalf("seed %d: Repair: %v", seed, err)
		}
		if rep.Reattached+len(rep.Failed) != rep.Orphans || rep.Orphans != len(before.Orphans) {
			t.Fatalf("seed %d: orphan accounting broken: %+v vs %d severed",
				seed, rep, len(before.Orphans))
		}
		still := make([]graph.NodeID, 0, len(req.Dests))
		failed := make(map[graph.NodeID]bool)
		for _, rf := range rep.Failed {
			failed[rf.Dest] = true
		}
		for _, d := range req.Dests {
			if !failed[d] {
				still = append(still, d)
			}
		}
		if err := f.Validate(req.Sources, still); err != nil {
			t.Fatalf("seed %d: post-repair forest invalid: %v", seed, err)
		}
		g.RestoreAll()
	}
}

// TestMigrateRejectsFailedVM pins the satellite fix: migration must never
// choose a failed VM as the target even when it is the only spare.
func TestMigrateRejectsFailedVM(t *testing.T) {
	f, oracle, req, n := surviveForest(t)
	f.Graph().FailNode(n.v2) // the only spare VM
	if err := f.MigrateOverloadedVM(oracle, f.Graph().VMs(), n.v1); err == nil {
		t.Fatal("migration onto a failed VM accepted")
	}
	// The forest is untouched by the refused migration.
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatalf("refused migration mutated the forest: %v", err)
	}
	f.Graph().RestoreNode(n.v2)
	if err := f.MigrateOverloadedVM(oracle, f.Graph().VMs(), n.v1); err != nil {
		t.Fatalf("migration after restore: %v", err)
	}
	if f.VNFOf(n.v2) != 1 {
		t.Fatal("VNF not on v2 after migration")
	}
}

// TestRerouteReportsPerCloneErrors pins the satellite fix: a reroute that
// cannot move some clone reports the cause but still counts the rest.
func TestRerouteReportsPerCloneErrors(t *testing.T) {
	f, oracle, _, n := surviveForest(t)
	// Sever d1 entirely (both lateral routes) so its reroute must fail.
	var ed2d1, ev2d1 graph.EdgeID = graph.NoEdge, graph.NoEdge
	for id := 0; id < f.Graph().NumEdges(); id++ {
		e := f.Graph().Edge(graph.EdgeID(id))
		if (e.U == n.d1 && e.V == n.d2) || (e.U == n.d2 && e.V == n.d1) {
			ed2d1 = graph.EdgeID(id)
		}
		if (e.U == n.v2 && e.V == n.d1) || (e.U == n.d1 && e.V == n.v2) {
			ev2d1 = graph.EdgeID(id)
		}
	}
	f.Graph().FailEdge(ed2d1)
	f.Graph().FailEdge(ev2d1)
	f.Graph().FailEdge(n.ev1d1)
	moved, err := f.RerouteCongestedEdge(oracle, n.ev1d1)
	if err == nil {
		t.Fatal("reroute across a severed cut reported no error")
	}
	if moved != 0 {
		t.Fatalf("moved = %d clones across a severed cut", moved)
	}
}
