// Package costmodel implements the load-dependent convex cost function of
// Section VII-B (Figure 7), adopted from Fortz & Thorup's OSPF weight
// optimization [46]. The cost of a link or VM grows piecewise-linearly and
// convexly with its utilization, exploding as load approaches and exceeds
// capacity, which steers the embedding algorithms away from congested
// resources in the online scenario.
package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// ErrCapacityExceeded reports that a reservation would push a resource past
// its capacity. Capacitated Solver sessions surface it (wrapped with the
// resource kind and id) when an embed's footprint does not fit, so callers
// can distinguish "network full" from "no feasible route".
var ErrCapacityExceeded = errors.New("costmodel: capacity exceeded")

// capEps absorbs float accumulation drift in capacity checks: a resource
// whose load sits at capacity after many add/remove round-trips must still
// accept a zero-demand no-op and must not be reported over-full.
const capEps = 1e-9

// Cost returns the paper's cost for current load l on a resource of
// capacity p (Section VII-B):
//
//	c = l                     if l/p ≤ 1/3
//	    3l − 2/3·p            if l/p ≤ 2/3
//	    10l − 16/3·p          if l/p ≤ 9/10
//	    70l − 178/3·p         if l/p ≤ 1
//	    500l − 1468/3·p       if l/p ≤ 11/10
//	    5000l − 16318/3·p     otherwise
//
// The paper prints the last offset as 14318/3, which would make the
// function discontinuous at l/p = 11/10; the original Fortz–Thorup
// function (and continuity) require 16318/3, so that value is used here.
func Cost(load, capacity float64) float64 {
	if capacity <= 0 {
		return math.Inf(1)
	}
	u := load / capacity
	switch {
	case u <= 1.0/3.0:
		return load
	case u <= 2.0/3.0:
		return 3*load - 2.0/3.0*capacity
	case u <= 9.0/10.0:
		return 10*load - 16.0/3.0*capacity
	case u <= 1.0:
		return 70*load - 178.0/3.0*capacity
	case u <= 11.0/10.0:
		return 500*load - 1468.0/3.0*capacity
	default:
		return 5000*load - 16318.0/3.0*capacity
	}
}

// MarginalCost returns the cost increase of adding demand to the resource:
// Cost(load+demand) − Cost(load). This is what an embedding pays for using
// the resource.
func MarginalCost(load, demand, capacity float64) float64 {
	return Cost(load+demand, capacity) - Cost(load, capacity)
}

// Tracker prices a set of resources by their utilization. It backs the
// online deployment simulator: each accepted request adds load, and costs
// are re-derived from the new utilization.
type Tracker struct {
	load     []float64
	capacity []float64
}

// NewTracker returns a tracker for n resources with the given uniform
// capacity.
func NewTracker(n int, capacity float64) *Tracker {
	t := &Tracker{
		load:     make([]float64, n),
		capacity: make([]float64, n),
	}
	for i := range t.capacity {
		t.capacity[i] = capacity
	}
	return t
}

// SetCapacity overrides the capacity of resource i.
func (t *Tracker) SetCapacity(i int, c float64) { t.capacity[i] = c }

// SetLoad sets the absolute load of resource i (used to seed random
// initial utilizations in the one-time deployment scenario).
func (t *Tracker) SetLoad(i int, l float64) { t.load[i] = l }

// Load returns the current load of resource i.
func (t *Tracker) Load(i int) float64 { return t.load[i] }

// Capacity returns the capacity of resource i.
func (t *Tracker) Capacity(i int) float64 { return t.capacity[i] }

// Utilization returns load/capacity of resource i.
func (t *Tracker) Utilization(i int) float64 {
	if t.capacity[i] <= 0 {
		return math.Inf(1)
	}
	return t.load[i] / t.capacity[i]
}

// Add accumulates demand on resource i.
func (t *Tracker) Add(i int, demand float64) { t.load[i] += demand }

// Fits reports whether resource i can absorb demand without exceeding its
// capacity (within capEps of float drift).
func (t *Tracker) Fits(i int, demand float64) bool {
	return t.load[i]+demand <= t.capacity[i]+capEps
}

// Reserve accumulates demand on resource i only if it fits, returning
// ErrCapacityExceeded (wrapped with the resource id and its current load)
// otherwise. This is the enforcing counterpart of Add: the tracker state is
// untouched on error, so a multi-resource reservation can validate every
// footprint entry with Fits and then apply with Add/Reserve without needing
// rollback.
func (t *Tracker) Reserve(i int, demand float64) error {
	if !t.Fits(i, demand) {
		return fmt.Errorf("resource %d: load %v + demand %v > capacity %v: %w",
			i, t.load[i], demand, t.capacity[i], ErrCapacityExceeded)
	}
	t.load[i] += demand
	return nil
}

// Saturated reports whether resource i has no headroom for another unit of
// demand d: a subsequent Reserve(i, d) would fail.
func (t *Tracker) Saturated(i int, d float64) bool { return !t.Fits(i, d) }

// Remove releases demand from resource i (teardown of a finished request).
// The error — demand exceeding the recorded load, which means some caller's
// books have drifted from the tracker's — must be propagated, never
// discarded: a swallowed underflow silently clamps to zero and every later
// cost query prices the resource as emptier than it is.
func (t *Tracker) Remove(i int, demand float64) error {
	if t.load[i]-demand < -capEps {
		return fmt.Errorf("costmodel: removing %v from resource %d with load %v", demand, i, t.load[i])
	}
	t.load[i] -= demand
	if t.load[i] < 0 {
		t.load[i] = 0
	}
	return nil
}

// Cost returns the current Fortz–Thorup cost of resource i.
func (t *Tracker) Cost(i int) float64 { return Cost(t.load[i], t.capacity[i]) }

// Len returns the number of tracked resources.
func (t *Tracker) Len() int { return len(t.load) }
