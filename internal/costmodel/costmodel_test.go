package costmodel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCostBreakpoints(t *testing.T) {
	// Values on the paper's piecewise function with p = 1.
	cases := []struct {
		load, want float64
	}{
		{0, 0},
		{1.0 / 3.0, 1.0 / 3.0},
		{0.5, 3*0.5 - 2.0/3.0},
		{2.0 / 3.0, 3*2.0/3.0 - 2.0/3.0},
		{0.8, 10*0.8 - 16.0/3.0},
		{0.95, 70*0.95 - 178.0/3.0},
		{1.05, 500*1.05 - 1468.0/3.0},
		{1.2, 5000*1.2 - 16318.0/3.0},
	}
	for _, c := range cases {
		if got := Cost(c.load, 1); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Cost(%v,1) = %v, want %v", c.load, got, c.want)
		}
	}
}

func TestCostContinuity(t *testing.T) {
	// The function must be continuous at every breakpoint.
	for _, bp := range []float64{1.0 / 3.0, 2.0 / 3.0, 9.0 / 10.0, 1.0, 11.0 / 10.0} {
		lo := Cost(bp-1e-9, 1)
		hi := Cost(bp+1e-9, 1)
		if math.Abs(hi-lo) > 1e-5 {
			t.Errorf("discontinuity at %v: %v vs %v", bp, lo, hi)
		}
	}
}

func TestCostMonotoneAndConvex(t *testing.T) {
	// Property: monotone nondecreasing and convex in load.
	f := func(a, b uint16) bool {
		x := float64(a) / 65535.0 * 1.5
		y := float64(b) / 65535.0 * 1.5
		if x > y {
			x, y = y, x
		}
		if Cost(x, 1) > Cost(y, 1)+1e-9 {
			return false
		}
		mid := (x + y) / 2
		return Cost(mid, 1) <= (Cost(x, 1)+Cost(y, 1))/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostScalesWithCapacity(t *testing.T) {
	// Homogeneity: Cost(k·l, k·p) = k·Cost(l, p).
	for _, u := range []float64{0.1, 0.5, 0.8, 0.95, 1.05, 1.3} {
		c1 := Cost(u, 1)
		c10 := Cost(10*u, 10)
		if math.Abs(c10-10*c1) > 1e-6 {
			t.Errorf("scaling broken at u=%v: %v vs %v", u, c10, 10*c1)
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	if !math.IsInf(Cost(1, 0), 1) {
		t.Error("zero capacity should cost +Inf")
	}
}

func TestMarginalCost(t *testing.T) {
	mc := MarginalCost(0.2, 0.1, 1)
	if math.Abs(mc-0.1) > 1e-9 {
		t.Errorf("marginal in linear region = %v, want 0.1", mc)
	}
	// Crossing into a steeper region costs more than the flat region.
	if MarginalCost(0.6, 0.2, 1) <= MarginalCost(0.1, 0.2, 1) {
		t.Error("marginal cost should grow with load")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(3, 100)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Add(0, 30)
	if math.Abs(tr.Load(0)-30) > 1e-9 || math.Abs(tr.Utilization(0)-0.3) > 1e-9 {
		t.Fatalf("load/util = %v/%v", tr.Load(0), tr.Utilization(0))
	}
	if math.Abs(tr.Cost(0)-30) > 1e-9 { // linear region
		t.Fatalf("Cost = %v, want 30", tr.Cost(0))
	}
	if err := tr.Remove(0, 10); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Load(0)-20) > 1e-9 {
		t.Fatalf("load after remove = %v", tr.Load(0))
	}
	if err := tr.Remove(0, 100); err == nil {
		t.Error("over-removal accepted")
	}
	tr.SetCapacity(1, 10)
	tr.SetLoad(1, 9.5)
	if tr.Cost(1) <= tr.Cost(0) {
		t.Error("nearly saturated resource should cost more")
	}
}

func TestTrackerReserve(t *testing.T) {
	tr := NewTracker(2, 10)
	if err := tr.Reserve(0, 6); err != nil {
		t.Fatal(err)
	}
	if tr.Saturated(0, 5) != true || tr.Saturated(0, 4) != false {
		t.Fatal("Saturated headroom check wrong at load 6/10")
	}
	// A reservation that would overflow fails, wraps the sentinel, and
	// leaves the load untouched — no rollback needed.
	err := tr.Reserve(0, 5)
	if !errors.Is(err, ErrCapacityExceeded) {
		t.Fatalf("Reserve over capacity: err = %v, want ErrCapacityExceeded", err)
	}
	if math.Abs(tr.Load(0)-6) > 1e-9 {
		t.Fatalf("failed Reserve mutated load to %v", tr.Load(0))
	}
	// Filling to exactly capacity succeeds; one more unit does not.
	if err := tr.Reserve(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reserve(0, 1); !errors.Is(err, ErrCapacityExceeded) {
		t.Fatalf("Reserve past full: err = %v", err)
	}
	if !tr.Saturated(0, 1) {
		t.Fatal("full resource not reported saturated")
	}
	// Release restores headroom.
	if err := tr.Remove(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reserve(0, 4); err != nil {
		t.Fatalf("Reserve after release: %v", err)
	}
}

// TestTrackerRemoveDriftRegression pins the underflow contract Remove's
// callers rely on: an over-removal must return an error AND leave the load
// clamped, never negative — and a long add/remove round-trip sequence must
// conserve load exactly enough that the final Remove succeeds.
func TestTrackerRemoveDriftRegression(t *testing.T) {
	tr := NewTracker(1, 1)
	if err := tr.Remove(0, 0.5); err == nil {
		t.Fatal("removing from an empty tracker must error")
	}
	if tr.Load(0) != 0 {
		t.Fatalf("load after failed remove = %v, want 0", tr.Load(0))
	}
	for i := 0; i < 1000; i++ {
		tr.Add(0, 0.1)
		if err := tr.Remove(0, 0.1); err != nil {
			t.Fatalf("round-trip %d: %v", i, err)
		}
	}
	if tr.Load(0) > 1e-6 {
		t.Fatalf("load drifted to %v after balanced round-trips", tr.Load(0))
	}
}
