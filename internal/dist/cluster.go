// Package dist implements the distributed SOFDA deployment of Section VI:
// the network is split across several SDN controller domains, each domain
// generates candidate service chains for the sources it owns with its own
// chain oracle (private Dijkstra cache, private worker pool), and a leader
// merges the per-domain candidates and completes the forest through
// core.SOFDAFromCandidates.
//
// Because every domain answers its queries with the same deterministic
// k-stroll reduction the centralized solver uses, and the leader restores
// the centralized candidate order before completion, Cluster.SOFDA returns
// a forest whose cost equals core.SOFDA's on the same instance — the
// distribution changes where the work runs, not what is computed.
//
// The domain boundary is a real interface: the leader talks to domains
// only through Transport, exchanging typed CandidateRequest and
// CandidateResponse messages ([]chain.Pair in, []chain.Result out, spliced
// by global index). ChannelTransport keeps the domains in-process (the
// reference implementation and test double); package dist/rpc carries the
// same messages over net/rpc so domains run as separate OS processes. The
// leader survives transport failure: a domain Send is retried on a budget
// and then its pairs are solved on a local fallback oracle, so a domain
// crash degrades latency, never correctness.
package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
)

// ErrClosed is returned by Cluster.SOFDA after Close.
var ErrClosed = errors.New("dist: cluster is closed")

// Options configure one distributed embedding.
type Options struct {
	// Core configures the leader's completion phase (candidate VM set,
	// chain-oracle options, conflict resolution). For the distributed cost
	// to match the centralized one, Core.Chain must equal the chain
	// options the cluster was built with.
	Core *core.Options
	// Parallelism bounds each domain's candidate-generation workers:
	// GOMAXPROCS when <= 0, sequential when 1. The bound applies per
	// domain, mirroring a real deployment where every controller owns its
	// own cores.
	Parallelism int
}

// Config configures a Cluster beyond the NewCluster defaults.
type Config struct {
	// Transport carries the leader↔domain protocol. Nil means an
	// in-process ChannelTransport, which the cluster then owns and closes;
	// a supplied transport stays the caller's to close.
	Transport Transport
	// Chain configures the domain oracles of an owned ChannelTransport and
	// the leader's local fallback oracle. For the distributed cost to match
	// the centralized one it must equal the options remote domains run.
	Chain chain.Options
	// RetryBudget is how many times a failed domain Send is retried before
	// the leader falls back to its local oracle. Negative means 0.
	RetryBudget int
	// DisableFallback turns the local-oracle fallback off: a domain whose
	// Send fails past the retry budget fails the embedding with the
	// transport error instead. Mostly for tests that assert on failures.
	DisableFallback bool
	// Streaming switches the leader to the server-streamed fragment
	// exchange: domains emit CandidateFragments as pairs complete, and the
	// leader splices them into the centralized candidate order and builds
	// the auxiliary graph incrementally while slower domains are still
	// solving — with dominated candidates pruned on arrival unless
	// DisablePruning is set. The forest cost is identical to the batch
	// exchange (and to centralized SOFDA). Requires a transport
	// implementing StreamTransport; over a batch-only transport the leader
	// quietly keeps the batch exchange, so wrappers and fault-injection
	// doubles stay usable.
	Streaming bool
	// DisablePruning keeps dominated candidates: every feasible candidate
	// allocates aux-graph state. It governs both join modes — the batch
	// exchange feeds the leader through the same pruning builder the
	// streamed exchange uses. The forest cost is the same either way (the
	// prune rule is cost-safe by construction); the switch exists for the
	// equivalence tests and for measuring the pruning effect in isolation.
	DisablePruning bool
	// EagerClosure overlaps the streamed exchange's Steiner phase with the
	// gather: the moment every candidate of a source has spliced out of
	// the reorder buffer, the leader starts that source's single-tree
	// refinement (metric-closure ranking, KMB, forest assembly)
	// concurrently with the still-streaming domains, so by Complete most
	// closure passes are already done. The forest cost is bit-identical —
	// the eager runs execute the same code the completion phase would, on
	// per-source candidate sets that are provably final. No effect on the
	// batch exchange (there is no stream to overlap).
	EagerClosure bool
}

// Cluster is the leader of a multi-domain SDN deployment: it partitions
// candidate queries across domain controllers by source ownership, moves
// them over a Transport, and completes the forest from the gathered
// candidates. Create it with NewCluster or NewClusterWith, run embeddings
// with SOFDA, and release owned resources with Close.
type Cluster struct {
	g         *graph.Graph
	transport Transport
	// owned is the transport Close tears down (nil when the caller
	// supplied their own).
	owned      io.Closer
	numDomains int
	numNodes   int
	cfg        Config

	// fallback is the leader-local oracle that answers for crashed
	// domains, created on first need: a healthy cluster never pays for it.
	fallbackOnce sync.Once
	fallback     *chain.Oracle

	// memo caches the leader's topology digest per cost epoch, so each
	// embedding's handshake stamp is an atomic load, not an O(V+E) hash.
	memo digestMemo

	// Streaming-exchange counters, cumulative across embeddings (see
	// StreamStats).
	streamFragments     atomic.Uint64
	streamResults       atomic.Uint64
	streamPruned        atomic.Uint64
	streamEpochDrift    atomic.Uint64
	streamOverlapNS     atomic.Int64
	streamEarlyClosures atomic.Uint64

	// mu is held read-side for the duration of every SOFDA call and
	// write-side by Close, so Close cannot pull the transport out from
	// under an in-flight embedding.
	mu     sync.RWMutex
	closed bool
}

// NewCluster partitions the network into numDomains controller domains
// served by an in-process ChannelTransport. Node IDs are split into
// contiguous ranges — topology generators allocate IDs regionally, so
// contiguous ranges approximate geographic domains. numDomains < 1 is
// treated as 1; domains beyond the node count stay idle.
func NewCluster(g *graph.Graph, numDomains int, chainOpts chain.Options) *Cluster {
	return NewClusterWith(g, numDomains, Config{Chain: chainOpts})
}

// NewClusterWith is NewCluster with an explicit Config: callers pick the
// transport (e.g. rpc.Transport for out-of-process domains), the retry
// budget, and whether the local fallback is armed.
func NewClusterWith(g *graph.Graph, numDomains int, cfg Config) *Cluster {
	if numDomains < 1 {
		numDomains = 1
	}
	if cfg.RetryBudget < 0 {
		cfg.RetryBudget = 0
	}
	c := &Cluster{
		g:          g,
		numDomains: numDomains,
		numNodes:   g.NumNodes(),
		cfg:        cfg,
		transport:  cfg.Transport,
	}
	if c.transport == nil {
		ct := NewChannelTransport(g, numDomains, cfg.Chain)
		c.transport = ct
		c.owned = ct
	}
	return c
}

// NumDomains returns the number of controller domains.
func (c *Cluster) NumDomains() int { return c.numDomains }

// InvalidateCache marks every domain oracle's cached shortest-path trees
// stale with a single cost-epoch bump on the shared graph; each domain
// replaces exactly the trees its next queries touch. Explicit calls are
// only needed after cost mutations that bypass the graph's setters — the
// setters advance the epoch themselves, so in the common online/load-aware
// loop the long-lived domain oracles stay correct (and stay warm across
// re-pricing passes that did not change any cost) with no call at all.
// Out-of-process domains version their own graphs: the epoch+digest
// handshake in the protocol surfaces any divergence as ErrGraphMismatch.
func (c *Cluster) InvalidateCache() {
	c.g.BumpCostEpoch()
}

// domainOf maps a node to its owning domain by contiguous ID range.
func (c *Cluster) domainOf(n graph.NodeID) int {
	if c.numNodes == 0 {
		return 0
	}
	d := int(n) * c.numDomains / c.numNodes
	if d >= c.numDomains {
		d = c.numDomains - 1
	}
	return d
}

// fallbackOracle returns the leader-local oracle, creating it on first use.
func (c *Cluster) fallbackOracle() *chain.Oracle {
	c.fallbackOnce.Do(func() {
		c.fallback = chain.NewOracle(c.g, c.cfg.Chain)
	})
	return c.fallback
}

// candidateRequest builds the wire request for one domain's pair slice.
// It is the single construction point for both join modes, so a field
// added to the protocol cannot silently zero-value on one path only.
func (c *Cluster) candidateRequest(epoch, digest uint64, chainLen, parallelism int, vms []graph.NodeID, pairs []chain.Pair) *CandidateRequest {
	return &CandidateRequest{
		CostEpoch:   epoch,
		GraphDigest: digest,
		ChainLen:    chainLen,
		Parallelism: parallelism,
		VMs:         vms,
		Pairs:       pairs,
		SourceSetup: c.cfg.Chain.SourceSetupCost,
	}
}

// sendCandidates moves one domain's request over the transport with the
// configured retry budget, falling back to the leader-local oracle when
// the domain stays unreachable. Context errors are never retried or
// absorbed by the fallback: a cancelled embedding must surface ctx.Err().
func (c *Cluster) sendCandidates(ctx context.Context, domainID int, req *CandidateRequest) ([]CandidateResult, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryBudget; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.transport.Send(ctx, domainID, req)
		if err == nil {
			switch {
			// Digest equality proves content equality, so the epoch is
			// deliberately absent here: counters that drifted over
			// identical graphs (bump-and-restore) must not refuse.
			case resp.GraphDigest != req.GraphDigest || resp.SourceSetup != req.SourceSetup:
				err = fmt.Errorf("dist: domain %d answered with graph digest %x sourceSetup %v, want digest %x sourceSetup %v: %w",
					domainID, resp.GraphDigest, resp.SourceSetup,
					req.GraphDigest, req.SourceSetup, ErrGraphMismatch)
			case len(resp.Results) != len(req.Pairs):
				err = fmt.Errorf("dist: domain %d answered %d results for %d pairs",
					domainID, len(resp.Results), len(req.Pairs))
			default:
				return resp.Results, nil
			}
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, ErrNoSuchDomain) {
			// Leader misconfiguration (more cluster domains than the
			// transport serves): deterministic, so retrying is pointless,
			// and absorbing it into the fallback would permanently and
			// silently un-distribute part of every embedding. Fail loudly.
			return nil, err
		}
		if errors.Is(err, ErrGraphMismatch) {
			// A re-send sees the same graphs; go straight to the fallback.
			break
		}
	}
	if c.cfg.DisableFallback {
		return nil, fmt.Errorf("dist: domain %d failed past retry budget %d: %w",
			domainID, c.cfg.RetryBudget, lastErr)
	}
	results, err := c.fallbackOracle().Chains(ctx, req.VMs, req.Pairs, req.ChainLen, req.Parallelism)
	if err != nil {
		return nil, err
	}
	return WireResults(results), nil
}

// SOFDA runs the distributed Algorithm 2: each domain generates candidate
// chains for the (source, last VM) pairs whose source it owns, the leader
// merges them in centralized order and completes the forest with
// core.SOFDAFromCandidatesCtx. The returned forest's cost equals the
// centralized core.SOFDA cost on the same graph, request, and options —
// also when domains fail and the fallback answers for them, because the
// fallback runs the identical deterministic reduction.
func (c *Cluster) SOFDA(ctx context.Context, req core.Request, opts Options) (*core.Forest, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Every return path cancels the derived context, so scatter goroutines
	// still in flight when SOFDA bails early (a domain error, a cancelled
	// gather) abort promptly instead of computing into the void.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := req.Validate(c.g); err != nil {
		return nil, err
	}
	o := &core.Options{}
	if opts.Core != nil {
		copied := *opts.Core
		o = &copied
	}
	if req.ChainLen == 0 {
		// Degenerate Steiner forest: no chains to distribute.
		return core.SOFDACtx(ctx, c.g, req, o)
	}
	vms := o.VMs
	if vms == nil {
		vms = c.g.VMs()
	}

	// The leader enumerates pairs in the exact order the centralized
	// solver would and scatters each to its source's domain.
	pairs := chain.Pairs(req.Sources, vms)
	perDomain := make([][]chain.Pair, c.numDomains)
	perIndices := make([][]int, c.numDomains)
	for i, p := range pairs {
		d := c.domainOf(p.Source)
		perDomain[d] = append(perDomain[d], p)
		perIndices[d] = append(perIndices[d], i)
	}
	epoch := c.g.CostEpoch()
	// Digest 0 skips the content handshake for the transport the cluster
	// built over its own graph — leader and domains share one
	// *graph.Graph there, so hashing it every re-pricing step would only
	// verify the graph against itself. Wire/supplied transports get the
	// real digest.
	digest := uint64(0)
	if c.owned == nil {
		digest = c.memo.of(c.g)
	}

	if c.cfg.Streaming {
		if st, ok := c.transport.(StreamTransport); ok {
			return c.sofdaStreaming(ctx, st, req, o, vms, pairs, perDomain, perIndices, epoch, digest, opts.Parallelism)
		}
	}

	type domainReply struct {
		domain  int
		indices []int
		results []CandidateResult
		err     error
	}
	dispatched := 0
	for _, dp := range perDomain {
		if len(dp) > 0 {
			dispatched++
		}
	}
	// Buffered to the dispatch count: after a cancelled gather returns,
	// stragglers complete into the buffer and get collected, never leak.
	out := make(chan domainReply, dispatched)
	for d, dp := range perDomain {
		if len(dp) == 0 {
			continue
		}
		creq := c.candidateRequest(epoch, digest, req.ChainLen, opts.Parallelism, vms, dp)
		go func(d int, indices []int, creq *CandidateRequest) {
			results, err := c.sendCandidates(ctx, d, creq)
			out <- domainReply{domain: d, indices: indices, results: results, err: err}
		}(d, perIndices[d], creq)
	}

	// Gather phase: splice per-domain results back into centralized order.
	// ctx.Done short-circuits the wait so a dead domain cannot stall a
	// cancelled leader — the scatter goroutines drain into the buffer.
	results := make([]chain.Result, len(pairs))
	for i := 0; i < dispatched; i++ {
		select {
		case r := <-out:
			if r.err != nil {
				if ctx.Err() != nil {
					// A cancellation that surfaced through a domain reply
					// is still a cancellation, not a domain failure.
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("dist: domain %d: %w", r.domain, r.err)
			}
			for j, idx := range r.indices {
				wire := r.results[j]
				results[idx] = chain.Result{Pair: wire.Pair, Chain: wire.Chain}
				if wire.Err != "" {
					results[idx].Err = errors.New(wire.Err)
				}
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Completion through the same pruning builder the streamed exchange
	// uses: dominated candidates are rejected on arrival (unless
	// DisablePruning) instead of allocating aux-graph state, and the
	// forest cost is provably unchanged either way.
	builder, err := core.NewAuxGraphBuilder(ctx, c.g, req, o)
	if err != nil {
		return nil, err
	}
	if !c.cfg.DisablePruning {
		builder.EnablePruning()
	}
	feasible := 0
	for _, r := range results {
		if r.Err != nil || r.Chain == nil {
			continue
		}
		feasible++
		if _, err := builder.AddCandidate(r.Chain); err != nil {
			return nil, err
		}
	}
	c.streamPruned.Add(uint64(builder.Pruned()))
	if feasible == 0 {
		return nil, fmt.Errorf("dist: no domain produced a feasible candidate chain")
	}
	return builder.Complete(ctx)
}

// Close shuts down the transport the cluster created (a Config-supplied
// transport is the caller's to close). It is idempotent; SOFDA calls after
// Close return ErrClosed.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if c.owned != nil {
		c.owned.Close()
	}
}
