// Package dist implements the distributed SOFDA deployment of Section VI:
// the network is split across several SDN controller domains, each domain
// generates candidate service chains for the sources it owns with its own
// chain oracle (private Dijkstra cache, private worker pool), and a leader
// merges the per-domain candidates and completes the forest through
// core.SOFDAFromCandidates.
//
// Because every domain answers its queries with the same deterministic
// k-stroll reduction the centralized solver uses, and the leader restores
// the centralized candidate order before completion, Cluster.SOFDA returns
// a forest whose cost equals core.SOFDA's on the same instance — the
// distribution changes where the work runs, not what is computed.
//
// The package is transport-agnostic by construction: domains communicate
// with the leader through channels here, and the candidate batches they
// exchange ([]chain.Pair in, []chain.Result out) are the exact payloads an
// RPC transport would carry.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
)

// ErrClosed is returned by Cluster.SOFDA after Close.
var ErrClosed = errors.New("dist: cluster is closed")

// Options configure one distributed embedding.
type Options struct {
	// Core configures the leader's completion phase (candidate VM set,
	// chain-oracle options, conflict resolution). For the distributed cost
	// to match the centralized one, Core.Chain must equal the chain
	// options the cluster was built with.
	Core *core.Options
	// Parallelism bounds each domain's candidate-generation workers:
	// GOMAXPROCS when <= 0, sequential when 1. The bound applies per
	// domain, mirroring a real deployment where every controller owns its
	// own cores.
	Parallelism int
}

// Cluster emulates a multi-domain SDN deployment over one network. Create
// it with NewCluster, run embeddings with SOFDA, and release the domain
// workers with Close.
type Cluster struct {
	g        *graph.Graph
	domains  []*domain
	numNodes int

	// mu is held read-side for the duration of every SOFDA call and
	// write-side by Close, so Close cannot pull the job channels out from
	// under an in-flight embedding.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// domain is one controller: a private oracle over the shared read-only
// graph plus the job stream its long-lived worker goroutine serves.
type domain struct {
	id     int
	oracle *chain.Oracle
	jobs   chan batch
}

// batch is one candidate-generation assignment: compute chains for pairs
// and deliver each result tagged with its global position, so the leader
// can splice per-domain answers back into centralized order.
type batch struct {
	ctx         context.Context
	vms         []graph.NodeID
	pairs       []chain.Pair
	indices     []int
	chainLen    int
	parallelism int
	out         chan<- indexed
}

// indexed is one candidate tagged with its global pair position. err is
// only non-nil for batch-level failures (cancellation).
type indexed struct {
	idx int
	res chain.Result
	err error
}

// NewCluster partitions the network into numDomains controller domains and
// starts one worker per domain. Node IDs are split into contiguous ranges
// — topology generators allocate IDs regionally, so contiguous ranges
// approximate geographic domains. numDomains < 1 is treated as 1; domains
// beyond the node count stay idle.
func NewCluster(g *graph.Graph, numDomains int, chainOpts chain.Options) *Cluster {
	if numDomains < 1 {
		numDomains = 1
	}
	c := &Cluster{g: g, numNodes: g.NumNodes()}
	for i := 0; i < numDomains; i++ {
		d := &domain{
			id:     i,
			oracle: chain.NewOracle(g, chainOpts),
			jobs:   make(chan batch),
		}
		c.domains = append(c.domains, d)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			d.serve()
		}()
	}
	return c
}

// serve processes candidate batches until the jobs channel closes.
func (d *domain) serve() {
	for b := range d.jobs {
		results, err := d.oracle.Chains(b.ctx, b.vms, b.pairs, b.chainLen, b.parallelism)
		if err != nil {
			// Cancellation: report once per pair so the leader's
			// accounting stays exact.
			for _, idx := range b.indices {
				b.out <- indexed{idx: idx, err: err}
			}
			continue
		}
		for i, r := range results {
			b.out <- indexed{idx: b.indices[i], res: r}
		}
	}
}

// NumDomains returns the number of controller domains.
func (c *Cluster) NumDomains() int { return len(c.domains) }

// InvalidateCache marks every domain oracle's cached shortest-path trees
// stale with a single cost-epoch bump on the shared graph; each domain
// replaces exactly the trees its next queries touch. Explicit calls are
// only needed after cost mutations that bypass the graph's setters — the
// setters advance the epoch themselves, so in the common online/load-aware
// loop the long-lived domain oracles stay correct (and stay warm across
// re-pricing passes that did not change any cost) with no call at all.
func (c *Cluster) InvalidateCache() {
	c.g.BumpCostEpoch()
}

// domainOf maps a node to its owning domain by contiguous ID range.
func (c *Cluster) domainOf(n graph.NodeID) int {
	if c.numNodes == 0 {
		return 0
	}
	d := int(n) * len(c.domains) / c.numNodes
	if d >= len(c.domains) {
		d = len(c.domains) - 1
	}
	return d
}

// SOFDA runs the distributed Algorithm 2: each domain generates candidate
// chains for the (source, last VM) pairs whose source it owns, the leader
// merges them in centralized order and completes the forest with
// core.SOFDAFromCandidatesCtx. The returned forest's cost equals the
// centralized core.SOFDA cost on the same graph, request, and options.
func (c *Cluster) SOFDA(ctx context.Context, req core.Request, opts Options) (*core.Forest, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(c.g); err != nil {
		return nil, err
	}
	o := &core.Options{}
	if opts.Core != nil {
		copied := *opts.Core
		o = &copied
	}
	if req.ChainLen == 0 {
		// Degenerate Steiner forest: no chains to distribute.
		return core.SOFDACtx(ctx, c.g, req, o)
	}
	vms := o.VMs
	if vms == nil {
		vms = c.g.VMs()
	}

	// The leader enumerates pairs in the exact order the centralized
	// solver would and scatters each to its source's domain.
	pairs := chain.Pairs(req.Sources, vms)
	perDomain := make([][]chain.Pair, len(c.domains))
	perIndices := make([][]int, len(c.domains))
	for i, p := range pairs {
		d := c.domainOf(p.Source)
		perDomain[d] = append(perDomain[d], p)
		perIndices[d] = append(perIndices[d], i)
	}
	out := make(chan indexed, len(pairs))
	dispatched := 0
	for d, dp := range perDomain {
		if len(dp) == 0 {
			continue
		}
		b := batch{
			ctx:         ctx,
			vms:         vms,
			pairs:       dp,
			indices:     perIndices[d],
			chainLen:    req.ChainLen,
			parallelism: opts.Parallelism,
			out:         out,
		}
		select {
		case c.domains[d].jobs <- b:
			dispatched += len(dp)
		case <-ctx.Done():
			// Gather whatever was already dispatched before bailing so no
			// worker blocks on out.
			for i := 0; i < dispatched; i++ {
				<-out
			}
			return nil, ctx.Err()
		}
	}

	// Gather phase: splice per-domain results back into centralized order.
	results := make([]chain.Result, len(pairs))
	var gatherErr error
	for i := 0; i < dispatched; i++ {
		r := <-out
		if r.err != nil {
			gatherErr = r.err
			continue
		}
		results[r.idx] = r.res
	}
	if gatherErr != nil {
		return nil, gatherErr
	}
	candidates := make([]*chain.ServiceChain, 0, len(pairs))
	for _, r := range results {
		if r.Err == nil && r.Chain != nil {
			candidates = append(candidates, r.Chain)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("dist: no domain produced a feasible candidate chain")
	}
	return core.SOFDAFromCandidatesCtx(ctx, c.g, req, o, candidates)
}

// Close shuts down the domain workers. It is idempotent; SOFDA calls after
// Close return ErrClosed.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, d := range c.domains {
		close(d.jobs)
	}
	c.wg.Wait()
}
