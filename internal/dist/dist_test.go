package dist

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/topology"
)

func softLayerInstance(seed int64) (*topology.Network, core.Request, *core.Options) {
	net := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	req := core.Request{
		Sources:  net.RandomNodes(rng, 5),
		Dests:    net.RandomNodes(rng, 4),
		ChainLen: 2,
	}
	return net, req, &core.Options{VMs: net.VMs}
}

// TestDistributedMatchesCentralized is the distributed correctness claim
// of Section VI: on the same instance, the leader-completed forest costs
// exactly what the centralized SOFDA costs, for any number of domains.
func TestDistributedMatchesCentralized(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts := softLayerInstance(seed)
		central, err := core.SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d: centralized: %v", seed, err)
		}
		for _, domains := range []int{1, 3, 5} {
			cluster := NewCluster(net.G, domains, chain.Options{})
			f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
			cluster.Close()
			if err != nil {
				t.Fatalf("seed %d domains %d: distributed: %v", seed, domains, err)
			}
			if err := f.Validate(req.Sources, req.Dests); err != nil {
				t.Errorf("seed %d domains %d: infeasible forest: %v", seed, domains, err)
			}
			if f.TotalCost() != central.TotalCost() {
				t.Errorf("seed %d domains %d: distributed cost %v != centralized %v",
					seed, domains, f.TotalCost(), central.TotalCost())
			}
		}
	}
}

func TestDistributedZeroChainDegenerate(t *testing.T) {
	net, req, opts := softLayerInstance(3)
	req.ChainLen = 0
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

func TestClusterCloseIdempotentAndRejects(t *testing.T) {
	net, req, opts := softLayerInstance(5)
	cluster := NewCluster(net.G, 2, chain.Options{})
	cluster.Close()
	cluster.Close() // must not panic or deadlock
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); err != ErrClosed {
		t.Fatalf("SOFDA after Close = %v, want ErrClosed", err)
	}
}

func TestClusterCancelledContext(t *testing.T) {
	net, req, opts := softLayerInstance(9)
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cluster.SOFDA(ctx, req, Options{Core: opts}); err == nil {
		t.Fatal("SOFDA with cancelled context returned nil error")
	}
	// The cluster must remain usable after a cancelled embedding.
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); err != nil {
		t.Fatalf("SOFDA after cancellation: %v", err)
	}
}

// TestClusterConcurrentSOFDA runs several embeddings on one cluster at
// once (run with -race): the domains' oracles and the leader gather path
// must tolerate interleaved batches.
func TestClusterConcurrentSOFDA(t *testing.T) {
	net, req, opts := softLayerInstance(13)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	var wg sync.WaitGroup
	for w := 0; w < 2*runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts, Parallelism: 2})
			if err != nil {
				t.Errorf("concurrent SOFDA: %v", err)
				return
			}
			if f.TotalCost() != central.TotalCost() {
				t.Errorf("concurrent SOFDA cost %v != centralized %v", f.TotalCost(), central.TotalCost())
			}
		}()
	}
	wg.Wait()
}

// TestInvalidateCacheAfterCostChange mutates edge costs between two
// embeddings on one long-lived cluster: after InvalidateCache the
// distributed cost must track a fresh centralized run again.
func TestInvalidateCacheAfterCostChange(t *testing.T) {
	net, req, opts := softLayerInstance(21)
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); err != nil {
		t.Fatal(err)
	}
	// Warm caches, then reprice every backbone link.
	rng := rand.New(rand.NewSource(99))
	for e := 0; e < net.G.NumEdges(); e++ {
		net.G.SetEdgeCost(graph.EdgeID(e), 1+rng.Float64()*20)
	}
	cluster.InvalidateCache()
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("after cost change: distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

func TestDomainPartitionCoversAllNodes(t *testing.T) {
	net, _, _ := softLayerInstance(1)
	for _, domains := range []int{1, 2, 3, 7, 1000} {
		cluster := NewCluster(net.G, domains, chain.Options{})
		counts := make([]int, cluster.NumDomains())
		for n := 0; n < net.G.NumNodes(); n++ {
			d := cluster.domainOf(graph.NodeID(n))
			if d < 0 || d >= cluster.NumDomains() {
				t.Fatalf("domains=%d: node %d mapped to domain %d", domains, n, d)
			}
			counts[d]++
		}
		cluster.Close()
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != net.G.NumNodes() {
			t.Fatalf("domains=%d: partition covers %d of %d nodes", domains, total, net.G.NumNodes())
		}
	}
}
