package dist

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/topology"
)

func softLayerInstance(seed int64) (*topology.Network, core.Request, *core.Options) {
	net := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	req := core.Request{
		Sources:  net.RandomNodes(rng, 5),
		Dests:    net.RandomNodes(rng, 4),
		ChainLen: 2,
	}
	return net, req, &core.Options{VMs: net.VMs}
}

// TestDistributedMatchesCentralized is the distributed correctness claim
// of Section VI: on the same instance, the leader-completed forest costs
// exactly what the centralized SOFDA costs, for any number of domains.
func TestDistributedMatchesCentralized(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts := softLayerInstance(seed)
		central, err := core.SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d: centralized: %v", seed, err)
		}
		for _, domains := range []int{1, 3, 5} {
			cluster := NewCluster(net.G, domains, chain.Options{})
			f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
			cluster.Close()
			if err != nil {
				t.Fatalf("seed %d domains %d: distributed: %v", seed, domains, err)
			}
			if err := f.Validate(req.Sources, req.Dests); err != nil {
				t.Errorf("seed %d domains %d: infeasible forest: %v", seed, domains, err)
			}
			if f.TotalCost() != central.TotalCost() {
				t.Errorf("seed %d domains %d: distributed cost %v != centralized %v",
					seed, domains, f.TotalCost(), central.TotalCost())
			}
		}
	}
}

func TestDistributedZeroChainDegenerate(t *testing.T) {
	net, req, opts := softLayerInstance(3)
	req.ChainLen = 0
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

func TestClusterCloseIdempotentAndRejects(t *testing.T) {
	net, req, opts := softLayerInstance(5)
	cluster := NewCluster(net.G, 2, chain.Options{})
	cluster.Close()
	cluster.Close() // must not panic or deadlock
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); err != ErrClosed {
		t.Fatalf("SOFDA after Close = %v, want ErrClosed", err)
	}
}

func TestClusterCancelledContext(t *testing.T) {
	net, req, opts := softLayerInstance(9)
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cluster.SOFDA(ctx, req, Options{Core: opts}); err == nil {
		t.Fatal("SOFDA with cancelled context returned nil error")
	}
	// The cluster must remain usable after a cancelled embedding.
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); err != nil {
		t.Fatalf("SOFDA after cancellation: %v", err)
	}
}

// TestClusterConcurrentSOFDA runs several embeddings on one cluster at
// once (run with -race): the domains' oracles and the leader gather path
// must tolerate interleaved batches.
func TestClusterConcurrentSOFDA(t *testing.T) {
	net, req, opts := softLayerInstance(13)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	var wg sync.WaitGroup
	for w := 0; w < 2*runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts, Parallelism: 2})
			if err != nil {
				t.Errorf("concurrent SOFDA: %v", err)
				return
			}
			if f.TotalCost() != central.TotalCost() {
				t.Errorf("concurrent SOFDA cost %v != centralized %v", f.TotalCost(), central.TotalCost())
			}
		}()
	}
	wg.Wait()
}

// TestInvalidateCacheAfterCostChange mutates edge costs between two
// embeddings on one long-lived cluster: after InvalidateCache the
// distributed cost must track a fresh centralized run again.
func TestInvalidateCacheAfterCostChange(t *testing.T) {
	net, req, opts := softLayerInstance(21)
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); err != nil {
		t.Fatal(err)
	}
	// Warm caches, then reprice every backbone link.
	rng := rand.New(rand.NewSource(99))
	for e := 0; e < net.G.NumEdges(); e++ {
		net.G.SetEdgeCost(graph.EdgeID(e), 1+rng.Float64()*20)
	}
	cluster.InvalidateCache()
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("after cost change: distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

// TestDomainsExceedNodeCount embeds with far more domains than nodes:
// most domains own no nodes at all (and thus receive no pairs), yet the
// partition stays total and the cost stays centralized.
func TestDomainsExceedNodeCount(t *testing.T) {
	net, req, opts := softLayerInstance(4)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, 2*net.G.NumNodes(), chain.Options{})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA with %d domains over %d nodes: %v", cluster.NumDomains(), net.G.NumNodes(), err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

// TestSingleNodeDomains gives every node its own controller — the finest
// partition the ID-range scheme produces.
func TestSingleNodeDomains(t *testing.T) {
	net, req, opts := softLayerInstance(6)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, net.G.NumNodes(), chain.Options{})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA with one node per domain: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

// TestEmptyDomainReceivesNoPairs embeds a single-source request over many
// domains: every domain but the source's receives no pairs and must never
// be dispatched to (pinned by a transport that counts distinct domains).
func TestEmptyDomainReceivesNoPairs(t *testing.T) {
	net, req, opts := softLayerInstance(8)
	req.Sources = req.Sources[:1]
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewChannelTransport(net.G, 5, chain.Options{})
	defer inner.Close()
	counter := &countingTransport{inner: inner, domains: make(map[int]int)}
	cluster := NewClusterWith(net.G, 5, Config{Transport: counter})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
	counter.mu.Lock()
	defer counter.mu.Unlock()
	if len(counter.domains) != 1 {
		t.Errorf("single-source request dispatched to %d domains, want 1 (%v)", len(counter.domains), counter.domains)
	}
}

// countingTransport records which domains were actually sent to.
type countingTransport struct {
	inner   Transport
	mu      sync.Mutex
	domains map[int]int
}

func (c *countingTransport) Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error) {
	c.mu.Lock()
	c.domains[domainID]++
	c.mu.Unlock()
	return c.inner.Send(ctx, domainID, req)
}

// TestDomainWithoutCandidateVMs restricts the candidate VM set to VMs that
// all live in the last domain: the other domains own sources but no
// candidate VMs, so their chains must reach across domain boundaries — and
// the cost must still match the centralized solve under the same
// restriction.
func TestDomainWithoutCandidateVMs(t *testing.T) {
	net, req, _ := softLayerInstance(12)
	restricted := &core.Options{VMs: net.VMs[:3]}
	central, err := core.SOFDA(net.G, req, restricted)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(net.G, 3, chain.Options{})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: restricted})
	if err != nil {
		t.Fatalf("SOFDA with VM-free domains: %v", err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Errorf("infeasible forest: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("distributed %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

func TestDomainPartitionCoversAllNodes(t *testing.T) {
	net, _, _ := softLayerInstance(1)
	for _, domains := range []int{1, 2, 3, 7, 1000} {
		cluster := NewCluster(net.G, domains, chain.Options{})
		counts := make([]int, cluster.NumDomains())
		for n := 0; n < net.G.NumNodes(); n++ {
			d := cluster.domainOf(graph.NodeID(n))
			if d < 0 || d >= cluster.NumDomains() {
				t.Fatalf("domains=%d: node %d mapped to domain %d", domains, n, d)
			}
			counts[d]++
		}
		cluster.Close()
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != net.G.NumNodes() {
			t.Fatalf("domains=%d: partition covers %d of %d nodes", domains, total, net.G.NumNodes())
		}
	}
}
