package dist

import (
	"context"
	"math"
	"testing"
	"time"

	"sof/internal/chain"
	"sof/internal/core"
)

// TestEagerClosureMatchesBatchAndCentralized is the overlapped-Steiner
// correctness claim: with EagerClosure armed (on top of streaming and
// pruning), the 4-seed × 3-domain-count matrix lands on exactly the
// centralized cost, and the early-closure counters show the eager runs
// actually fired before completion.
func TestEagerClosureMatchesBatchAndCentralized(t *testing.T) {
	totalEarly := uint64(0)
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts := softLayerInstance(seed)
		central, err := core.SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d: centralized: %v", seed, err)
		}
		for _, domains := range []int{1, 3, 5} {
			cluster := NewClusterWith(net.G, domains, Config{
				Streaming:    true,
				EagerClosure: true,
			})
			f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
			if err != nil {
				cluster.Close()
				t.Fatalf("seed %d domains %d: eager streamed: %v", seed, domains, err)
			}
			if err := f.Validate(req.Sources, req.Dests); err != nil {
				t.Errorf("seed %d domains %d: infeasible forest: %v", seed, domains, err)
			}
			if f.TotalCost() != central.TotalCost() {
				t.Errorf("seed %d domains %d: eager cost %v != centralized %v",
					seed, domains, f.TotalCost(), central.TotalCost())
			}
			st := cluster.StreamStats()
			if st.StreamedResults == 0 {
				t.Errorf("seed %d domains %d: eager run moved no fragments (%+v)", seed, domains, st)
			}
			totalEarly += st.EarlyClosures
			cluster.Close()
		}
	}
	if totalEarly == 0 {
		t.Error("EarlyClosures stayed zero across the whole matrix; eager mode never overlapped anything")
	}
}

// TestEagerClosureSurvivesFallbackReBuy pins terminal completeness under
// the fallback path: when streams are cut mid-exchange and the leader
// re-buys the remainder from its local oracle, the fallback-delivered
// pairs still count toward their sources' completeness, every eager run
// launches, and the cost stays centralized.
func TestEagerClosureSurvivesFallbackReBuy(t *testing.T) {
	net, req, opts := softLayerInstance(23)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewChannelTransport(net.G, 3, chain.Options{})
	defer inner.Close()
	flaky := &partialStreamTransport{inner: inner, failAfter: 5}
	cluster := NewClusterWith(net.G, 3, Config{
		Transport: flaky, Streaming: true, EagerClosure: true, RetryBudget: 1,
	})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatalf("eager streamed SOFDA over a mid-stream-failing transport: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("cost %v != centralized %v after fallback re-buy with eager closure", f.TotalCost(), central.TotalCost())
	}
	// The early-source eager runs fired even though later pairs arrived
	// through the fallback: destination warming alone guarantees a
	// non-zero counter, and a stalled completeness count would have
	// deadlocked Complete's WaitGroup long before this assertion.
	if st := cluster.StreamStats(); st.EarlyClosures == 0 {
		t.Errorf("EarlyClosures = 0 after a fallback re-buy exchange (%+v)", st)
	}
}

// TestAnswerStreamCheapestFirstFragments pins the domain-side emission
// order: with a slow sink forcing coalesced fragments, every fragment
// lists its feasible results in ascending chain cost (infeasible last,
// ties by index) — cheap chains reach the leader first, fragment by
// fragment.
func TestAnswerStreamCheapestFirstFragments(t *testing.T) {
	net, req, opts := softLayerInstance(7)
	dom := NewDomain(net.G, chain.Options{})
	pairs := chain.Pairs(req.Sources, opts.VMs)
	creq := &CandidateRequest{
		ChainLen:    req.ChainLen,
		Parallelism: 4,
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	coalesced := false
	if err := dom.AnswerStream(context.Background(), creq, func(f *CandidateFragment) error {
		if len(f.Results) > 1 {
			coalesced = true
		}
		prev := math.Inf(-1)
		prevIdx := -1
		seenInfeasible := false
		for _, fr := range f.Results {
			if fr.Result.Chain == nil {
				seenInfeasible = true
				continue
			}
			if seenInfeasible {
				t.Fatalf("fragment %d: feasible result after an infeasible one", f.Seq)
			}
			c := fr.Result.Chain.TotalCost()
			if c < prev || (c == prev && fr.Index < prevIdx) {
				t.Fatalf("fragment %d: result order not cheapest-first: %v after %v", f.Seq, c, prev)
			}
			prev, prevIdx = c, fr.Index
		}
		// A slow sink lets later solves pile up, forcing coalescing.
		time.Sleep(2 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatalf("AnswerStream: %v", err)
	}
	if !coalesced {
		t.Skip("no fragment coalesced more than one result; ordering not exercised")
	}
}
