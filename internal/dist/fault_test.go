package dist

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
)

var errInjected = errors.New("injected transport fault")
var errDropped = errors.New("injected drop: no response before timeout")

// faultKind is one scheduled behavior of the flaky transport.
type faultKind int

const (
	faultPass  faultKind = iota // deliver normally
	faultErr                    // fail immediately
	faultDrop                   // the request vanishes; error after a timeout
	faultDelay                  // deliver after a pause
)

// flakyTransport wraps a real Transport and injects drops, delays, and
// errors per call on a seeded schedule, so every failure sequence a test
// exercises is reproducible from its seed.
type flakyTransport struct {
	inner Transport
	delay time.Duration

	mu       sync.Mutex
	schedule []faultKind
	calls    int
}

// newFlakyTransport derives a schedule of n fault decisions from seed.
// The first call always passes so at least one healthy interaction is in
// every trace; the rest draw uniformly over all four kinds.
func newFlakyTransport(inner Transport, seed int64, n int) *flakyTransport {
	rng := rand.New(rand.NewSource(seed))
	schedule := make([]faultKind, n)
	for i := 1; i < n; i++ {
		schedule[i] = faultKind(rng.Intn(4))
	}
	return &flakyTransport{inner: inner, delay: 10 * time.Millisecond, schedule: schedule}
}

func (f *flakyTransport) next() faultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := f.schedule[f.calls%len(f.schedule)]
	f.calls++
	return k
}

func (f *flakyTransport) Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error) {
	switch f.next() {
	case faultErr:
		return nil, errInjected
	case faultDrop:
		// Nothing ever answers; the caller's patience (or ctx) decides.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(f.delay):
			return nil, errDropped
		}
	case faultDelay:
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(f.delay / 4):
		}
	}
	return f.inner.Send(ctx, domainID, req)
}

// TestFlakyTransportRetryAndFallback runs embeddings through a transport
// that errors, drops, and delays on seeded schedules: the leader's
// retry-then-fallback path must still return a feasible forest whose cost
// matches the centralized solver's every single time.
func TestFlakyTransportRetryAndFallback(t *testing.T) {
	net, req, opts := softLayerInstance(7)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		inner := NewChannelTransport(net.G, 3, chain.Options{})
		flaky := newFlakyTransport(inner, seed, 17)
		cluster := NewClusterWith(net.G, 3, Config{Transport: flaky, RetryBudget: 1})
		for i := 0; i < 4; i++ {
			f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
			if err != nil {
				t.Fatalf("seed %d embedding %d: %v", seed, i, err)
			}
			if err := f.Validate(req.Sources, req.Dests); err != nil {
				t.Errorf("seed %d embedding %d: infeasible forest: %v", seed, i, err)
			}
			if f.TotalCost() != central.TotalCost() {
				t.Errorf("seed %d embedding %d: cost %v != centralized %v",
					seed, i, f.TotalCost(), central.TotalCost())
			}
		}
		cluster.Close()
		inner.Close()
	}
}

// deadTransport fails every Send.
type deadTransport struct{}

func (deadTransport) Send(context.Context, int, *CandidateRequest) (*CandidateResponse, error) {
	return nil, errInjected
}

// TestDeadTransportFallsBackToLocalOracle kills the transport outright:
// with the fallback armed, every domain's pairs are solved on the leader's
// local oracle and the cost still matches centralized — a domain crash
// degrades where the work runs, never the result.
func TestDeadTransportFallsBackToLocalOracle(t *testing.T) {
	net, req, opts := softLayerInstance(13)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewClusterWith(net.G, 3, Config{Transport: deadTransport{}, RetryBudget: 2})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA over a dead transport: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("fallback cost %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

// TestDeadTransportNoFallbackSurfacesError pins the strict mode: with the
// fallback disabled, the injected error must surface (wrapped, so
// errors.Is still finds it) instead of deadlocking or panicking.
func TestDeadTransportNoFallbackSurfacesError(t *testing.T) {
	net, req, opts := softLayerInstance(13)
	cluster := NewClusterWith(net.G, 3, Config{Transport: deadTransport{}, RetryBudget: 1, DisableFallback: true})
	defer cluster.Close()
	_, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if !errors.Is(err, errInjected) {
		t.Fatalf("SOFDA over a dead transport without fallback = %v, want wrapped errInjected", err)
	}
}

// TestUndersizedTransportFailsLoudly builds a cluster with more domains
// than its transport serves: the deterministic ErrNoSuchDomain must fail
// the embedding immediately — not burn the retry budget, and above all
// not be silently absorbed by the fallback, which would permanently
// un-distribute part of every embedding without anyone noticing.
func TestUndersizedTransportFailsLoudly(t *testing.T) {
	net, req, opts := softLayerInstance(5)
	// Sources pinned to both ends of the access range so a high domain
	// (one the 2-domain transport does not serve) certainly owns pairs.
	req.Sources = []graph.NodeID{net.Access[0], net.Access[len(net.Access)-1]}
	inner := NewChannelTransport(net.G, 2, chain.Options{})
	defer inner.Close()
	cluster := NewClusterWith(net.G, 4, Config{Transport: inner, RetryBudget: 3})
	defer cluster.Close()
	if _, err := cluster.SOFDA(context.Background(), req, Options{Core: opts}); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("SOFDA over an undersized transport = %v, want wrapped ErrNoSuchDomain", err)
	}
}

// gateTransport answers domain 0 through the inner transport, signals on
// firstDone, and blackholes every other domain until its context dies —
// the shape of a partition that hits mid-splice.
type gateTransport struct {
	inner     Transport
	firstOnce sync.Once
	firstDone chan struct{}
}

func (g *gateTransport) Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error) {
	if domainID == 0 {
		resp, err := g.inner.Send(ctx, 0, req)
		g.firstOnce.Do(func() { close(g.firstDone) })
		return resp, err
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancellationMidSplice cancels the leader after the first domain has
// answered but while another domain hangs: SOFDA must return ctx.Err()
// promptly instead of waiting out the dead domain, and the cancellation
// must not be laundered into a fallback solve.
func TestCancellationMidSplice(t *testing.T) {
	net, _, opts := softLayerInstance(9)
	// Sources pinned to both ends of the access-node ID range so at least
	// two domains receive pairs — one to answer, one to hang.
	req := core.Request{
		Sources:  []graph.NodeID{net.Access[0], net.Access[len(net.Access)-1]},
		Dests:    []graph.NodeID{net.Access[3], net.Access[10]},
		ChainLen: 2,
	}
	inner := NewChannelTransport(net.G, 3, chain.Options{})
	defer inner.Close()
	gate := &gateTransport{inner: inner, firstDone: make(chan struct{})}
	cluster := NewClusterWith(net.G, 3, Config{Transport: gate})
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-gate.firstDone
		cancel()
	}()
	start := time.Now()
	_, err := cluster.SOFDA(ctx, req, Options{Core: opts})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SOFDA cancelled mid-splice = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled SOFDA took %v to return", elapsed)
	}
	// The transport must remain usable for a healthy follow-up embedding
	// (the hung domain's goroutine drains into the reply buffer).
	healthy := NewClusterWith(net.G, 3, Config{Transport: inner})
	defer healthy.Close()
	if _, err := healthy.SOFDA(context.Background(), req, Options{Core: opts}); err != nil {
		t.Fatalf("embedding after cancellation: %v", err)
	}
}
