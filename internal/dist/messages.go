package dist

import (
	"errors"
	"math"
	"sync"

	"sof/internal/chain"
	"sof/internal/graph"
)

// CandidateRequest is one leader→domain candidate-generation assignment:
// compute a service chain for every Pair over the candidate VM set. It is
// the wire message of the distributed protocol — every field is a plain
// value type so the request crosses a gob-encoded RPC boundary unchanged.
type CandidateRequest struct {
	// CostEpoch is the leader graph's cost epoch at request-build time,
	// and GraphDigest a content hash of the leader's topology and costs
	// (see GraphDigest). The digest decides the handshake: a domain whose
	// digest disagrees answers with its own values and no results instead
	// of solving (see Domain.Answer), and the leader falls back locally —
	// this catches wrong-seed/wrong-net domains that epoch counters
	// cannot, while epoch counters that merely drifted over identical
	// graphs do not refuse. The epoch is carried for observability and as
	// the digest memo's cheap staleness key.
	//
	// GraphDigest 0 skips the digest handshake: the leader stamps it for
	// the transport it created itself over its own graph, where leader
	// and domains literally share one *graph.Graph and hashing it per
	// re-pricing step would verify the graph against itself. Wire
	// transports always carry a real digest (GraphDigest the function
	// never returns 0).
	CostEpoch   uint64
	GraphDigest uint64
	// ChainLen is the number of VNFs per chain (|C| in the paper).
	ChainLen int
	// Parallelism bounds the domain's candidate-generation workers:
	// GOMAXPROCS when <= 0, sequential when 1.
	Parallelism int
	// VMs is the candidate VM set, in the leader's canonical order. The
	// order is part of the protocol: the k-stroll instances a domain
	// builds depend on it, and the leader's completion phase assumes the
	// centralized instance bit for bit.
	VMs []graph.NodeID
	// Pairs are the (source, last VM) queries assigned to this domain, in
	// the leader's enumeration order for the domain.
	Pairs []chain.Pair
	// SourceSetup is the leader's chain.Options.SourceSetupCost. It is
	// part of the graph-state handshake: a domain whose oracle prices
	// source setup differently would return correctly-routed but
	// differently-costed chains that epoch and digest cannot catch.
	SourceSetup bool
	// Timeout is the leader's remaining context budget in nanoseconds, 0
	// when the context has no deadline. Transports that cross a process
	// boundary stamp it so the remote domain observes the same
	// cancellation horizon the in-process oracle would; a relative
	// duration, not a wall-clock instant, so clock skew between machines
	// cannot shift or instantly expire it. In-process transports share
	// the context directly and leave it 0.
	Timeout int64
}

// CandidateResult is one pair's outcome on the wire. Exactly one of Chain
// and Err is meaningful: a feasible chain, or the domain-side failure
// (unreachable VMs, too few candidates) flattened to a string so it
// survives gob encoding.
type CandidateResult struct {
	Pair  chain.Pair
	Chain *chain.ServiceChain
	Err   string
}

// CandidateResponse is a domain's answer to a CandidateRequest: one result
// per request pair, in request order, plus the cost epoch and graph digest
// the domain answered at. The leader cross-checks both against the
// request's; a mismatch travels as a well-formed response (not a transport
// error) so the sentinel survives codecs — net/rpc flattens server errors
// to strings — and the leader can classify it as non-retryable.
type CandidateResponse struct {
	CostEpoch   uint64
	GraphDigest uint64
	SourceSetup bool
	Results     []CandidateResult
}

// FragmentResult is one pair's outcome inside a streamed fragment. Index
// locates the result in the originating CandidateRequest's Pairs slice, so
// fragments are self-splicing: a domain may emit results in completion
// order (maximizing leader overlap) and the leader still restores the
// request order exactly.
type FragmentResult struct {
	Index  int
	Result CandidateResult
}

// CandidateFragment is one message of the server-streaming candidate
// exchange: a domain answers a CandidateRequest with an ordered sequence
// of fragments instead of a single CandidateResponse, so the leader can
// splice candidates into the auxiliary graph while slower domains are
// still solving.
//
// Every fragment — including the trailer — carries the domain's cost
// epoch, graph digest, and source-setup pricing. The digest plays the same
// role it does in the batch handshake (a refusal is a well-formed Done
// fragment carrying the domain's own values and no results, so the
// sentinel survives any codec), and the per-fragment epoch stamp makes a
// mid-stream re-pricing on the domain observable: the leader counts epoch
// drift, and on wire transports a re-pricing also moves the digest, which
// refuses the remainder of the stream.
type CandidateFragment struct {
	CostEpoch   uint64
	GraphDigest uint64
	SourceSetup bool
	// Seq numbers fragments within one exchange, starting at 0; the
	// trailer carries the highest Seq.
	Seq int
	// Results are the pair outcomes this fragment delivers; empty on the
	// trailer and on a handshake refusal.
	Results []FragmentResult
	// Done marks the trailer: no further fragments follow this exchange.
	Done bool
	// Err is a batch-level failure flattened to a string (Done trailers
	// only) — a remote context error, never a per-pair infeasibility,
	// which travels inside Results.
	Err string
}

// ErrGraphMismatch reports that a domain's view of the network (topology
// digest or source-setup pricing) differed from the leader's when it was
// asked. The leader treats it as non-retryable — a re-send would see the
// same graphs — and falls back to its local oracle instead.
var ErrGraphMismatch = errors.New("dist: domain graph state differs from leader's (topology digest / source setup)")

// GraphDigest is an FNV-1a content hash of a graph's structure and costs:
// node count, per-node setup cost and VM flag, and every edge's endpoints
// and cost. Two graphs built by the same deterministic constructor agree
// on it; a domain started with the wrong seed or topology does not — which
// the cost epoch alone cannot detect, since it only counts mutations.
func GraphDigest(g *graph.Graph) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(g.NumNodes()))
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		mix(math.Float64bits(g.NodeCost(id)))
		if g.IsVM(id) {
			mix(1)
		} else {
			mix(0)
		}
	}
	mix(uint64(g.NumEdges()))
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		mix(uint64(ed.U))
		mix(uint64(ed.V))
		mix(math.Float64bits(ed.Cost))
	}
	if h == 0 {
		// 0 is the protocol's "skip the digest handshake" marker; keep
		// real digests out of it.
		h = 1
	}
	return h
}

// digestMemo caches one graph's digest keyed by its cost epoch, so the
// per-request handshake pays an atomic epoch load instead of an O(V+E)
// hash while costs are stable. It assumes topology changes bump the epoch
// or do not happen on a served graph — true for every graph here: the
// setters bump on change, and aux-graph growth happens on clones.
type digestMemo struct {
	mu     sync.Mutex
	valid  bool
	epoch  uint64
	digest uint64
}

func (m *digestMemo) of(g *graph.Graph) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Read under the lock: a re-pricing that landed while waiting must
	// not stamp the freshly hashed digest with the pre-mutation epoch.
	epoch := g.CostEpoch()
	if !m.valid || m.epoch != epoch {
		m.digest = GraphDigest(g)
		m.epoch = epoch
		m.valid = true
	}
	return m.digest
}

// WireResults flattens oracle results into their wire form, preserving
// order. Per-pair errors become strings; batch-level errors (cancellation)
// are the caller's to handle before calling this.
func WireResults(rs []chain.Result) []CandidateResult {
	out := make([]CandidateResult, len(rs))
	for i, r := range rs {
		out[i] = CandidateResult{Pair: r.Pair, Chain: r.Chain}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
			out[i].Chain = nil
		}
	}
	return out
}
