package rpc

import (
	"context"
	"fmt"
	"net"
	gorpc "net/rpc"
	"sync"
	"time"

	"sof/internal/dist"
)

// Transport is the leader-side dist.Transport over net/rpc: one lazily
// dialed, reused connection per domain, keyed by domain ID and shared by
// concurrent embeddings. Connection lifecycle is deliberately
// conservative about shared state:
//
//   - a transport-level call failure (dial, ErrShutdown, broken conn)
//     drops the cached connection so the next attempt — the cluster's
//     retry — redials a possibly recovered domain;
//   - a server-side error (rpc.ServerError) keeps the connection: the
//     domain answered, the pipe is healthy;
//   - a Send whose context ends mid-call severs the connection only when
//     no other embedding has a call in flight on it, aborting a hung
//     exchange without cutting down a concurrent healthy call.
type Transport struct {
	addrs []string

	mu      sync.Mutex
	closed  bool
	clients map[int]*clientEntry
	// streams pools idle framed-gob stream connections per domain (see
	// stream.go); streamActive tracks the ones inside a SendStream so
	// Close severs in-flight streams instead of leaking them.
	streams      map[int][]*streamConn
	streamActive map[*streamConn]struct{}
}

// clientEntry is one cached domain connection plus the number of Sends
// currently using it (guarded by Transport.mu).
type clientEntry struct {
	cl       *gorpc.Client
	inflight int
}

var _ dist.Transport = (*Transport)(nil)

// NewTransport returns a transport that reaches domain i at addrs[i].
func NewTransport(addrs []string) *Transport {
	return &Transport{
		addrs:        append([]string(nil), addrs...),
		clients:      make(map[int]*clientEntry),
		streams:      make(map[int][]*streamConn),
		streamActive: make(map[*streamConn]struct{}),
	}
}

// acquire returns the cached connection for the domain with its inflight
// count already incremented, dialing if needed. The dial happens outside
// the lock so slow domains do not serialize the leader's scatter; a lost
// race closes the duplicate.
func (t *Transport) acquire(ctx context.Context, domainID int) (*clientEntry, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("rpc: transport is closed")
	}
	if e, ok := t.clients[domainID]; ok {
		e.inflight++
		t.mu.Unlock()
		return e, nil
	}
	t.mu.Unlock()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.addrs[domainID])
	if err != nil {
		return nil, fmt.Errorf("rpc: dial domain %d at %s: %w", domainID, t.addrs[domainID], err)
	}
	cl := gorpc.NewClient(conn) // gob codec

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		cl.Close()
		return nil, fmt.Errorf("rpc: transport is closed")
	}
	if other, ok := t.clients[domainID]; ok {
		other.inflight++
		t.mu.Unlock()
		cl.Close()
		return other, nil
	}
	e := &clientEntry{cl: cl, inflight: 1}
	t.clients[domainID] = e
	t.mu.Unlock()
	return e, nil
}

// release ends this Send's use of the entry. When drop is true the entry
// is also evicted and closed — unconditionally for transport-level
// failures (the pipe is broken for everyone), but only once idle for
// cancellations, so a hung exchange is severed without cutting down a
// concurrent embedding's healthy call on the same connection.
func (t *Transport) release(domainID int, e *clientEntry, drop, evenIfShared bool) {
	t.mu.Lock()
	e.inflight--
	if drop && !evenIfShared && e.inflight > 0 {
		// A concurrent Send still trusts this connection; leave it.
		t.mu.Unlock()
		return
	}
	if drop {
		if cur, ok := t.clients[domainID]; ok && cur == e {
			delete(t.clients, domainID)
		}
	}
	t.mu.Unlock()
	if drop {
		e.cl.Close()
	}
}

// Send implements dist.Transport: it stamps the context's remaining time
// budget into the wire request (a relative duration — the remote domain
// observes the leader's cancellation horizon without the two machines'
// clocks having to agree), issues the call asynchronously, and races it
// against ctx.
func (t *Transport) Send(ctx context.Context, domainID int, req *dist.CandidateRequest) (*dist.CandidateResponse, error) {
	if domainID < 0 || domainID >= len(t.addrs) {
		return nil, fmt.Errorf("rpc: domain %d out of range [0,%d): %w", domainID, len(t.addrs), dist.ErrNoSuchDomain)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := t.acquire(ctx, domainID)
	if err != nil {
		return nil, err
	}
	wireReq := *req
	if dl, ok := ctx.Deadline(); ok {
		wireReq.Timeout = int64(time.Until(dl))
	}
	resp := new(dist.CandidateResponse)
	call := e.cl.Go(MethodCandidates, &wireReq, resp, make(chan *gorpc.Call, 1))
	select {
	case <-ctx.Done():
		// Sever the connection to abort a hung exchange — but only if no
		// concurrent embedding is mid-call on it.
		t.release(domainID, e, true, false)
		return nil, ctx.Err()
	case done := <-call.Done:
		if done.Error != nil {
			// A ServerError means the domain answered over a healthy pipe;
			// anything else means the connection itself is unusable.
			_, serverSide := done.Error.(gorpc.ServerError)
			t.release(domainID, e, !serverSide, true)
			return nil, fmt.Errorf("rpc: domain %d candidates: %w", domainID, done.Error)
		}
		t.release(domainID, e, false, false)
		return resp, nil
	}
}

// Close severs every cached connection — net/rpc clients, pooled stream
// connections, and streams mid-exchange. Sends after Close fail.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	clients := t.clients
	t.clients = nil
	pooled := t.streams
	t.streams = nil
	active := make([]*streamConn, 0, len(t.streamActive))
	for sc := range t.streamActive {
		//sofvet:ignore detorder teardown: each stream conn is closed independently and has no sort key
		active = append(active, sc)
	}
	t.mu.Unlock()
	var first error
	for _, e := range clients {
		if err := e.cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, pool := range pooled {
		for _, sc := range pool {
			sc.conn.Close()
		}
	}
	for _, sc := range active {
		sc.conn.Close()
	}
	return first
}
