package rpc

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sof/internal/dist"
)

// The codec helpers mirror the gob encoding net/rpc applies to the
// candidate messages on the wire. They exist so payloads can be captured,
// replayed, and fuzzed offline: Decode* never panics — gob's decoder
// largely returns errors on malformed input, but a recover guard turns any
// residual panic on adversarial bytes into an error too, which is the
// contract the fuzz targets pin.

// EncodeRequest gob-encodes a candidate request.
func EncodeRequest(req *dist.CandidateRequest) ([]byte, error) {
	return encode(req)
}

// DecodeRequest decodes a gob-encoded candidate request, erroring (never
// panicking) on corrupted payloads.
func DecodeRequest(data []byte) (*dist.CandidateRequest, error) {
	req := new(dist.CandidateRequest)
	if err := decode(data, req); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeResponse gob-encodes a candidate response.
func EncodeResponse(resp *dist.CandidateResponse) ([]byte, error) {
	return encode(resp)
}

// DecodeResponse decodes a gob-encoded candidate response, erroring (never
// panicking) on corrupted payloads.
func DecodeResponse(data []byte) (*dist.CandidateResponse, error) {
	resp := new(dist.CandidateResponse)
	if err := decode(data, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// EncodeFragment gob-encodes a streamed candidate fragment.
func EncodeFragment(f *dist.CandidateFragment) ([]byte, error) {
	return encode(f)
}

// DecodeFragment decodes a gob-encoded candidate fragment, erroring
// (never panicking) on corrupted payloads.
func DecodeFragment(data []byte) (*dist.CandidateFragment, error) {
	f := new(dist.CandidateFragment)
	if err := decode(data, f); err != nil {
		return nil, err
	}
	return f, nil
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(data []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: decode panic: %v", r)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
