package rpc

import (
	"reflect"
	"testing"
)

// The codec fuzz targets pin the two wire-safety properties the leader
// relies on: decoding adversarial bytes never panics, and any payload the
// decoder does accept is a fixed point of the codec — decode(encode(x))
// reproduces x exactly, so a request can cross any number of capture/
// replay hops without drifting. The seed corpus is a real request and its
// real response captured off the equivalence-test instance.

// FuzzCandidateCodec fuzzes the CandidateRequest wire codec.
func FuzzCandidateCodec(f *testing.F) {
	req, _ := captureMessages(f)
	data, err := EncodeRequest(req)
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(data)
	f.Add([]byte{})
	f.Add(data[:len(data)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeRequest(data) // must error, not panic, on corruption
		if err != nil {
			return
		}
		re, err := EncodeRequest(got)
		if err != nil {
			t.Fatalf("re-encoding a decoded request failed: %v", err)
		}
		got2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("decoding a re-encoded request failed: %v", err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatalf("request codec is not a fixed point:\n first %+v\nsecond %+v", got, got2)
		}
	})
}

// FuzzCandidateFragmentCodec fuzzes the CandidateFragment wire codec —
// the per-message frame of the streaming exchange. Seeds are real
// fragments captured off a live AnswerStream run (a results-bearing one
// and the Done trailer), so the corpus starts on the exact byte shapes
// the framed-gob protocol moves.
func FuzzCandidateFragmentCodec(f *testing.F) {
	for _, frag := range captureFragments(f) {
		data, err := EncodeFragment(frag)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeFragment(data) // must error, not panic, on corruption
		if err != nil {
			return
		}
		re, err := EncodeFragment(got)
		if err != nil {
			t.Fatalf("re-encoding a decoded fragment failed: %v", err)
		}
		got2, err := DecodeFragment(re)
		if err != nil {
			t.Fatalf("decoding a re-encoded fragment failed: %v", err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatalf("fragment codec is not a fixed point:\n first %+v\nsecond %+v", got, got2)
		}
	})
}

// FuzzCandidateResponseCodec fuzzes the CandidateResponse wire codec.
func FuzzCandidateResponseCodec(f *testing.F) {
	_, resp := captureMessages(f)
	data, err := EncodeResponse(resp)
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(data)
	f.Add([]byte{})
	f.Add(data[:len(data)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re, err := EncodeResponse(got)
		if err != nil {
			t.Fatalf("re-encoding a decoded response failed: %v", err)
		}
		got2, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("decoding a re-encoded response failed: %v", err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatalf("response codec is not a fixed point: %d vs %d results",
				len(got.Results), len(got2.Results))
		}
	})
}
