// Package rpc carries the dist candidate protocol over net/rpc with the
// gob codec, so domain controllers run as separate OS processes: a
// DomainServer answers dist.CandidateRequests with its own graph and
// oracle (served by cmd/sofdomain or embedded in a test), and Transport is
// the leader-side dist.Transport that manages one connection per domain
// and propagates context deadlines onto the wire.
//
// The messages are exactly the ones the in-process ChannelTransport moves;
// the equivalence tests pin the two transports to bit-identical forest
// costs, and the codec helpers in this package mirror the gob encoding
// net/rpc applies so captured payloads can be replayed and fuzzed.
//
// Known limitation: leader cancellation reaches a remote handler only
// through the wire time budget (CandidateRequest.Timeout, stamped from
// the context deadline). Cancelling a deadline-free context severs the
// connection — the leader returns promptly — but the domain finishes the
// abandoned batch before discovering the dead connection. Give latency-
// sensitive leaders a context deadline; in-batch abort (and streamed
// partial responses) is the streaming-joins follow-up in the ROADMAP.
package rpc

import (
	"context"
	"net"
	gorpc "net/rpc"
	"sync"

	"sof/internal/chain"
	"sof/internal/dist"
	"sof/internal/graph"
)

// ServiceName is the rpc service the domain registers.
const ServiceName = "SOFDomain"

// MethodCandidates is the fully qualified candidate-generation method.
const MethodCandidates = ServiceName + ".Candidates"

// DomainServer answers candidate requests for one domain controller. It
// wraps the shared domain-side handler (dist.Domain): a private oracle
// over the domain's view of the network, which must be built identically
// to the leader's (same topology generator, seed, costs, and chain
// options) for the graph-state handshake to pass.
type DomainServer struct {
	dom *dist.Domain
}

// NewDomainServer returns a domain controller over g.
func NewDomainServer(g *graph.Graph, chainOpts chain.Options) *DomainServer {
	return &DomainServer{dom: dist.NewDomain(g, chainOpts)}
}

// Candidates is the net/rpc handler: the shared handler verifies the
// graph-state handshake, rebuilds the leader's cancellation horizon from
// the wire timeout, and runs the oracle fan-out.
//
//sofvet:ignore ctxflow net/rpc fixes the handler signature; the leader's deadline travels in req.TimeoutMillis
func (s *DomainServer) Candidates(req *dist.CandidateRequest, resp *dist.CandidateResponse) error {
	//sofvet:ignore ctxflow no caller context exists over net/rpc; Answer rebuilds the horizon from the wire timeout
	answer, err := s.dom.Answer(context.Background(), req)
	if err != nil {
		return err
	}
	*resp = *answer
	return nil
}

// Server is a running serve loop: a listener plus the connections it has
// accepted, all torn down by Close.
type Server struct {
	lis net.Listener
	srv *gorpc.Server
	// ds answers both protocols the listener speaks: net/rpc batch calls
	// and the framed-gob fragment streams (see stream.go).
	ds *DomainServer
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve registers ds under ServiceName and starts accepting connections on
// lis in a background goroutine, one gob-codec ServeConn goroutine per
// connection. The caller owns the returned Server and must Close it.
func Serve(lis net.Listener, ds *DomainServer) (*Server, error) {
	srv := gorpc.NewServer()
	if err := srv.RegisterName(ServiceName, ds); err != nil {
		return nil, err
	}
	s := &Server{lis: lis, srv: srv, ds: ds, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			// Close closed the listener (or the listener died); either way
			// the loop is done.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// One listener, two protocols: the first bytes decide whether
			// this is a net/rpc batch connection or a fragment stream.
			s.sniffProtocol(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Addr returns the listener's address — useful with a ":0" listener.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, severs every live connection, and waits for the
// per-connection goroutines to drain. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//sofvet:ignore detorder teardown: each conn is severed independently and net.Conn has no sort key
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
