package rpc

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/dist"
	"sof/internal/graph"
	"sof/internal/kstroll"
	"sof/internal/topology"
)

// buildSoftLayer reconstructs the test network deterministically — the
// leader and every domain server call it independently, sharing nothing
// but the seed, exactly like separate OS processes would.
func buildSoftLayer(seed int64) *topology.Network {
	return topology.SoftLayer(topology.Config{NumVMs: 20, Seed: seed})
}

func softLayerInstance(seed int64) (*topology.Network, core.Request, *core.Options) {
	net := buildSoftLayer(seed)
	rng := rand.New(rand.NewSource(seed))
	req := core.Request{
		Sources:  net.RandomNodes(rng, 5),
		Dests:    net.RandomNodes(rng, 4),
		ChainLen: 2,
	}
	return net, req, &core.Options{VMs: net.VMs}
}

// startDomains spins n real net/rpc domain servers on 127.0.0.1:0
// listeners, each over its own graph built by build, and returns their
// addresses. Servers are torn down with the test.
func startDomains(t testing.TB, n int, build func(i int) *topology.Network) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen domain %d: %v", i, err)
		}
		srv, err := Serve(lis, NewDomainServer(build(i).G, chain.Options{}))
		if err != nil {
			t.Fatalf("serve domain %d: %v", i, err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

// TestRPCEquivalenceMatrix is the distributed correctness claim of
// Section VI carried over a real wire: on the 4-seed × 3-domain-count
// matrix, SOFDA through net/rpc domain servers — each rebuilding the
// network from the seed in its own right — costs exactly what the
// centralized solver costs. Three exchanges run over the same servers:
// the one-shot batch call, the server-streamed fragment join (with
// dominated-candidate pruning armed), and the streamed join with eager
// per-source closure — all of which must agree bit for bit. The whole
// matrix additionally runs with the bucket-queue and then the
// delta-stepping SSSP core forced on through the deprecated global gates
// (graph.BucketQueueMinNodes / graph.DeltaSteppingMinNodes pinned to 1 —
// exercising the shim that remains for exactly this kind of
// process-wide toggle), the fourth and fifth toggles of the equivalence
// claim: both alternative queues' settle orders match the indexed
// heap's exactly, so no cost moves.
func TestRPCEquivalenceMatrix(t *testing.T) {
	savedBucket := graph.BucketQueueMinNodes
	savedDelta := graph.DeltaSteppingMinNodes
	t.Cleanup(func() {
		graph.BucketQueueMinNodes = savedBucket
		graph.DeltaSteppingMinNodes = savedDelta
	})
	centralBySeed := make(map[int64]float64)
	for _, queue := range []string{"heap", "bucket", "delta"} {
		switch queue {
		case "heap":
			graph.BucketQueueMinNodes = savedBucket
			graph.DeltaSteppingMinNodes = savedDelta
		case "bucket":
			graph.BucketQueueMinNodes = 1
			graph.DeltaSteppingMinNodes = -1
		case "delta":
			graph.BucketQueueMinNodes = savedBucket
			graph.DeltaSteppingMinNodes = 1
		}
		for _, seed := range []int64{1, 7, 23, 42} {
			network, req, opts := softLayerInstance(seed)
			central, err := core.SOFDA(network.G, req, opts)
			if err != nil {
				t.Fatalf("seed %d: centralized: %v", seed, err)
			}
			if prev, ok := centralBySeed[seed]; ok && prev != central.TotalCost() {
				t.Errorf("seed %d: centralized cost moved across SSSP queues (%s): %v vs %v",
					seed, queue, prev, central.TotalCost())
			}
			centralBySeed[seed] = central.TotalCost()
			for _, domains := range []int{1, 3, 5} {
				addrs := startDomains(t, domains, func(int) *topology.Network { return buildSoftLayer(seed) })
				tr := NewTransport(addrs)
				for _, mode := range []struct {
					name string
					cfg  dist.Config
				}{
					{"batch", dist.Config{}},
					{"stream", dist.Config{Streaming: true}},
					{"stream-eager", dist.Config{Streaming: true, EagerClosure: true}},
				} {
					cfg := mode.cfg
					cfg.Transport = tr
					cfg.RetryBudget = 1
					cluster := dist.NewClusterWith(network.G, domains, cfg)
					f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
					if err != nil {
						cluster.Close()
						tr.Close()
						t.Fatalf("seed %d domains %d %s queue=%s: rpc distributed: %v", seed, domains, mode.name, queue, err)
					}
					if err := f.Validate(req.Sources, req.Dests); err != nil {
						t.Errorf("seed %d domains %d %s queue=%s: infeasible forest: %v", seed, domains, mode.name, queue, err)
					}
					if f.TotalCost() != central.TotalCost() {
						t.Errorf("seed %d domains %d %s queue=%s: rpc cost %v != centralized %v",
							seed, domains, mode.name, queue, f.TotalCost(), central.TotalCost())
					}
					st := cluster.StreamStats()
					if mode.name != "batch" && st.StreamedResults == 0 {
						t.Errorf("seed %d domains %d %s: streamed run moved no fragments (%+v)", seed, domains, mode.name, st)
					}
					if mode.name == "stream-eager" && st.EarlyClosures == 0 {
						t.Errorf("seed %d domains %d: eager run closed nothing early (%+v)", seed, domains, st)
					}
					cluster.Close()
				}
				tr.Close()
			}
		}
	}
}

// TestRPCStreamConnectionReuse runs several streamed embeddings over one
// transport: the per-domain stream connections are dialed once, pooled
// between exchanges, and costs stay pinned to the centralized result.
func TestRPCStreamConnectionReuse(t *testing.T) {
	network, req, opts := softLayerInstance(7)
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startDomains(t, 3, func(int) *topology.Network { return buildSoftLayer(7) })
	tr := NewTransport(addrs)
	defer tr.Close()
	cluster := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr, Streaming: true})
	defer cluster.Close()
	for i := 0; i < 4; i++ {
		f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
		if err != nil {
			t.Fatalf("streamed embedding %d: %v", i, err)
		}
		if f.TotalCost() != central.TotalCost() {
			t.Fatalf("streamed embedding %d: cost %v != centralized %v", i, f.TotalCost(), central.TotalCost())
		}
	}
}

// slowSolver delays every k-stroll solve, making a domain's batch slow
// enough that "abort at the next fragment write" is deterministically
// observable: the leader's RST reaches the domain long before the batch
// could finish on its own.
type slowSolver struct {
	inner kstroll.Solver
	delay time.Duration
}

func (s slowSolver) Solve(in *kstroll.Instance) (*kstroll.Walk, error) {
	time.Sleep(s.delay)
	return s.inner.Solve(in)
}

func (s slowSolver) Name() string { return "slow-" + s.inner.Name() }

// TestRPCStreamCancellationAbortsRemoteBatch pins the abandoned-batch fix
// on the wire: a leader that cancels a deadline-free context mid-stream
// severs the connection, and the remote domain must observe the dead peer
// at its next fragment write and abort the oracle fan-out — not finish
// the batch into the void, as the batch exchange documented it would.
func TestRPCStreamCancellationAbortsRemoteBatch(t *testing.T) {
	network, req, opts := softLayerInstance(7)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDomainServer(buildSoftLayer(7).G, chain.Options{
		Solver: slowSolver{inner: kstroll.Auto(), delay: 2 * time.Millisecond},
	})
	srv, err := Serve(lis, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTransport([]string{srv.Addr()})
	defer tr.Close()

	pairs := chain.Pairs(req.Sources, opts.VMs)
	creq := &dist.CandidateRequest{
		CostEpoch:   network.G.CostEpoch(),
		GraphDigest: dist.GraphDigest(network.G),
		ChainLen:    req.ChainLen,
		Parallelism: 1, // sequential domain, so the abort point is crisp
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = tr.SendStream(ctx, 0, creq, func(f *dist.CandidateFragment) error {
		cancel() // walk away after the first fragment, no deadline involved
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SendStream after mid-stream cancel = %v, want context.Canceled", err)
	}
	// The domain aborts at its next fragment write; give the wind-down a
	// moment, then require the solve counter to have stopped far short of
	// the batch (and to stay stopped).
	var solved uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := ds.dom.CacheStats().ChainMisses
		if s == solved && s > 0 {
			break // stable across a polling interval
		}
		solved = s
		if time.Now().After(deadline) {
			t.Fatal("domain solve counter never stabilized")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if solved >= uint64(len(pairs))/2 {
		t.Fatalf("domain solved %d of %d pairs after the leader cancelled — abandoned batch not aborted", solved, len(pairs))
	}
}

// TestFragmentCodecRoundTrip pins decode(encode(x)) == x on real captured
// fragments, trailer included.
func TestFragmentCodecRoundTrip(t *testing.T) {
	for i, frag := range captureFragments(t) {
		data, err := EncodeFragment(frag)
		if err != nil {
			t.Fatalf("fragment %d: encode: %v", i, err)
		}
		got, err := DecodeFragment(data)
		if err != nil {
			t.Fatalf("fragment %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, frag) {
			t.Errorf("fragment %d round trip mismatch:\n got %+v\nwant %+v", i, got, frag)
		}
	}
}

// TestRPCConnectionReuseAcrossEmbeddings runs several embeddings over one
// transport: the per-domain connections are dialed once and reused, and
// costs stay pinned to the centralized result every time.
func TestRPCConnectionReuseAcrossEmbeddings(t *testing.T) {
	network, req, opts := softLayerInstance(7)
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startDomains(t, 3, func(int) *topology.Network { return buildSoftLayer(7) })
	tr := NewTransport(addrs)
	defer tr.Close()
	cluster := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr})
	defer cluster.Close()
	for i := 0; i < 4; i++ {
		f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
		if err != nil {
			t.Fatalf("embedding %d: %v", i, err)
		}
		if f.TotalCost() != central.TotalCost() {
			t.Fatalf("embedding %d: cost %v != centralized %v", i, f.TotalCost(), central.TotalCost())
		}
	}
}

// TestRPCRepricedLeaderFallsBack reprices the leader's links so its graph
// content diverges from the domain servers' (which rebuilt the original
// network and never saw the mutation). The domains' digests no longer
// match; they refuse the stale-priced requests, the leader's local
// fallback answers instead, and the forest still matches a fresh
// centralized run on the mutated graph.
func TestRPCRepricedLeaderFallsBack(t *testing.T) {
	network, req, opts := softLayerInstance(23)
	addrs := startDomains(t, 3, func(int) *topology.Network { return buildSoftLayer(23) })
	tr := NewTransport(addrs)
	defer tr.Close()

	rng := rand.New(rand.NewSource(5))
	for e := 0; e < network.G.NumEdges(); e++ {
		network.G.SetEdgeCost(graph.EdgeID(e), 1+rng.Float64()*20)
	}
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}

	cluster := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA with stale domains: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("fallback cost %v != centralized %v on the repriced graph", f.TotalCost(), central.TotalCost())
	}

	// Without the fallback the mismatch must surface as the sentinel even
	// across the wire: it travels inside the response (not as a flattened
	// server error), so errors.Is still finds it leader-side.
	strict := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr, DisableFallback: true})
	defer strict.Close()
	if _, err := strict.SOFDA(context.Background(), req, dist.Options{Core: opts}); !errors.Is(err, dist.ErrGraphMismatch) {
		t.Fatalf("SOFDA with stale domains and no fallback = %v, want wrapped ErrGraphMismatch", err)
	}
}

// TestRPCTopologyDivergenceFallsBack starts domain servers on a network
// built from a different seed than the leader's. Both graphs can land on
// the same cost epoch (the epoch only counts mutations), so this is
// exactly the divergence only the topology digest catches: the domains
// must refuse, the fallback must answer, and the cost must match the
// leader-local centralized solve — never a silently wrong forest priced
// on the wrong graph.
func TestRPCTopologyDivergenceFallsBack(t *testing.T) {
	network, req, opts := softLayerInstance(42)
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startDomains(t, 3, func(int) *topology.Network { return buildSoftLayer(1) })
	tr := NewTransport(addrs)
	defer tr.Close()

	cluster := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA against wrong-seed domains: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("fallback cost %v != centralized %v", f.TotalCost(), central.TotalCost())
	}

	strict := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr, DisableFallback: true})
	defer strict.Close()
	if _, err := strict.SOFDA(context.Background(), req, dist.Options{Core: opts}); !errors.Is(err, dist.ErrGraphMismatch) {
		t.Fatalf("strict SOFDA against wrong-seed domains = %v, want wrapped ErrGraphMismatch", err)
	}
}

// TestDomainServerExpiredTimeout pins deadline propagation: a request
// whose wire time budget is already spent must fail with the context
// error, not burn oracle time. The budget is a relative duration, so the
// test needs no clock agreement with the "leader".
func TestDomainServerExpiredTimeout(t *testing.T) {
	network, req, opts := softLayerInstance(1)
	ds := NewDomainServer(network.G, chain.Options{})
	creq := &dist.CandidateRequest{
		CostEpoch:   network.G.CostEpoch(),
		GraphDigest: dist.GraphDigest(network.G),
		ChainLen:    req.ChainLen,
		VMs:         opts.VMs,
		Pairs:       chain.Pairs(req.Sources, opts.VMs),
		Timeout:     -int64(time.Second),
	}
	var resp dist.CandidateResponse
	err := ds.Candidates(creq, &resp)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Candidates with spent time budget = %v, want context.DeadlineExceeded", err)
	}
}

// TestRPCSourceSetupMismatchRefused starts domains whose oracles price
// source setup (Appendix D) while the leader does not: graph epoch and
// digest agree, so only the handshake's pricing field can catch it. The
// strict leader must refuse; the default leader must answer from the
// fallback and match the centralized solve under its own pricing.
func TestRPCSourceSetupMismatchRefused(t *testing.T) {
	network, req, opts := softLayerInstance(7)
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 2)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(lis, NewDomainServer(buildSoftLayer(7).G, chain.Options{SourceSetupCost: true}))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	tr := NewTransport(addrs)
	defer tr.Close()

	strict := dist.NewClusterWith(network.G, 2, dist.Config{Transport: tr, DisableFallback: true})
	defer strict.Close()
	if _, err := strict.SOFDA(context.Background(), req, dist.Options{Core: opts}); !errors.Is(err, dist.ErrGraphMismatch) {
		t.Fatalf("strict SOFDA against source-setup domains = %v, want wrapped ErrGraphMismatch", err)
	}

	lenient := dist.NewClusterWith(network.G, 2, dist.Config{Transport: tr})
	defer lenient.Close()
	f, err := lenient.SOFDA(context.Background(), req, dist.Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA with fallback against source-setup domains: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("fallback cost %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

// TestDomainServerGraphMismatch pins the wire handshake: a request whose
// topology digest disagrees is answered with the domain's own values and
// no results — a well-formed response, so the refusal survives codecs
// that flatten errors. A request whose epoch drifted but whose digest
// proves the graphs identical is solved normally: epoch counters are
// bookkeeping, content equality is what the handshake protects.
func TestDomainServerGraphMismatch(t *testing.T) {
	network, req, opts := softLayerInstance(1)
	ds := NewDomainServer(network.G, chain.Options{})
	pairs := chain.Pairs(req.Sources, opts.VMs)

	refusal := &dist.CandidateRequest{
		CostEpoch:   network.G.CostEpoch(),
		GraphDigest: dist.GraphDigest(network.G) ^ 1,
		ChainLen:    req.ChainLen,
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	var resp dist.CandidateResponse
	if err := ds.Candidates(refusal, &resp); err != nil {
		t.Fatalf("wrong digest: Candidates = %v, want refusal response, not error", err)
	}
	if len(resp.Results) != 0 {
		t.Errorf("wrong digest: refusal carried %d results", len(resp.Results))
	}
	if resp.CostEpoch != network.G.CostEpoch() || resp.GraphDigest != dist.GraphDigest(network.G) {
		t.Error("wrong digest: refusal does not carry the domain's own epoch/digest")
	}

	drifted := &dist.CandidateRequest{
		CostEpoch:   network.G.CostEpoch() + 7,
		GraphDigest: dist.GraphDigest(network.G),
		ChainLen:    req.ChainLen,
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	var resp2 dist.CandidateResponse
	if err := ds.Candidates(drifted, &resp2); err != nil {
		t.Fatalf("drifted epoch, equal digest: Candidates = %v", err)
	}
	if len(resp2.Results) != len(pairs) {
		t.Errorf("drifted epoch, equal digest: answered %d results for %d pairs — epoch drift over an identical graph must not refuse",
			len(resp2.Results), len(pairs))
	}
}

// TestRPCEpochDriftOverIdenticalGraphStaysDistributed pins the silent-
// degradation regression: a leader that bumped its cost epoch without
// changing any cost (bump-and-restore, InvalidateCache) must keep being
// served by remote domains whose counters never moved — under
// DisableFallback, so a refusal would fail loudly instead of being
// papered over.
func TestRPCEpochDriftOverIdenticalGraphStaysDistributed(t *testing.T) {
	network, req, opts := softLayerInstance(7)
	central, err := core.SOFDA(network.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startDomains(t, 3, func(int) *topology.Network { return buildSoftLayer(7) })
	tr := NewTransport(addrs)
	defer tr.Close()

	// Drift the leader's epoch over unchanged content.
	orig := network.G.EdgeCost(0)
	network.G.SetEdgeCost(0, orig+1)
	network.G.SetEdgeCost(0, orig)
	cluster := dist.NewClusterWith(network.G, 3, dist.Config{Transport: tr, DisableFallback: true})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, dist.Options{Core: opts})
	if err != nil {
		t.Fatalf("SOFDA after leader epoch drift (no fallback armed): %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("cost after epoch drift %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
}

// captureMessages builds a real request and its real response off the
// equivalence-test instance — the same payloads the wire moves, reused as
// the codec tests' ground truth and the fuzz targets' seed corpus.
func captureMessages(tb testing.TB) (*dist.CandidateRequest, *dist.CandidateResponse) {
	tb.Helper()
	network, req, opts := softLayerInstance(1)
	pairs := chain.Pairs(req.Sources, opts.VMs)
	creq := &dist.CandidateRequest{
		CostEpoch:   network.G.CostEpoch(),
		GraphDigest: dist.GraphDigest(network.G),
		ChainLen:    req.ChainLen,
		Parallelism: 1,
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	oracle := chain.NewOracle(network.G, chain.Options{})
	results, err := oracle.Chains(context.Background(), opts.VMs, pairs, req.ChainLen, 1)
	if err != nil {
		tb.Fatalf("capture: %v", err)
	}
	return creq, &dist.CandidateResponse{
		CostEpoch:   creq.CostEpoch,
		GraphDigest: creq.GraphDigest,
		Results:     dist.WireResults(results),
	}
}

// captureFragments runs a real AnswerStream over the captured request and
// returns every fragment it emits — results-bearing fragments plus the
// Done trailer — as ground truth for the codec tests and the fragment
// fuzz target's seed corpus.
func captureFragments(tb testing.TB) []*dist.CandidateFragment {
	tb.Helper()
	network, req, opts := softLayerInstance(1)
	dom := dist.NewDomain(network.G, chain.Options{})
	creq := &dist.CandidateRequest{
		CostEpoch:   network.G.CostEpoch(),
		GraphDigest: dist.GraphDigest(network.G),
		ChainLen:    req.ChainLen,
		Parallelism: 1,
		VMs:         opts.VMs,
		Pairs:       chain.Pairs(req.Sources, opts.VMs),
	}
	var frags []*dist.CandidateFragment
	if err := dom.AnswerStream(context.Background(), creq, func(f *dist.CandidateFragment) error {
		frags = append(frags, f)
		return nil
	}); err != nil {
		tb.Fatalf("capture fragments: %v", err)
	}
	if len(frags) < 2 {
		tb.Fatalf("capture fragments: got %d fragments, want results plus trailer", len(frags))
	}
	return frags
}

// TestCandidateCodecRoundTrip pins decode(encode(x)) == x on real captured
// messages, field for field.
func TestCandidateCodecRoundTrip(t *testing.T) {
	req, resp := captureMessages(t)
	reqData, err := EncodeRequest(req)
	if err != nil {
		t.Fatalf("encode request: %v", err)
	}
	gotReq, err := DecodeRequest(reqData)
	if err != nil {
		t.Fatalf("decode request: %v", err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Errorf("request round trip mismatch:\n got %+v\nwant %+v", gotReq, req)
	}
	respData, err := EncodeResponse(resp)
	if err != nil {
		t.Fatalf("encode response: %v", err)
	}
	gotResp, err := DecodeResponse(respData)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Errorf("response round trip mismatch: got %d results, want %d",
			len(gotResp.Results), len(resp.Results))
	}
}

// TestCandidateCodecCorruptedPayload flips bytes of a valid encoding at
// every position: decode must error or succeed, never panic (the fuzz
// targets explore this space much harder; this is the deterministic
// smoke version).
func TestCandidateCodecCorruptedPayload(t *testing.T) {
	req, _ := captureMessages(t)
	data, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0xff
		_, _ = DecodeRequest(corrupt) // must not panic
	}
	if _, err := DecodeRequest(data[:len(data)/2]); err == nil {
		t.Error("decoding a truncated request succeeded")
	}
	if _, err := DecodeResponse([]byte("definitely not gob")); err == nil {
		t.Error("decoding garbage as a response succeeded")
	}
}
