package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"

	"sof/internal/dist"
)

// The streaming exchange shares the domain's listener with net/rpc: a
// stream connection opens with an 8-byte magic preamble, which the server
// sniffs once per connection to pick the protocol (net/rpc's gob stream
// can never start with these bytes — gob messages open with a length
// varint, not ASCII). After the preamble the connection is a framed gob
// exchange, reused across embeddings: the leader writes one
// dist.CandidateRequest per exchange, the domain answers with a stream of
// dist.CandidateFragments ending in a Done trailer, and the next request
// may follow on the same connection.
//
// Cancellation needs no control message: a leader that gives up severs the
// connection, the domain's next fragment write fails, and
// dist.Domain.AnswerStream aborts the oracle fan-out mid-batch — the fix
// for the abandoned-batch waste the batch exchange suffered from, where a
// cancelled deadline-free leader left the domain solving into the void.
const streamMagic = "SOFSTRM1"

// streamConn is one leader-side stream connection with its persistent
// codec state (gob type descriptors cross once per connection, not per
// exchange).
type streamConn struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// acquireStream pops a pooled stream connection for the domain or dials a
// fresh one (writing the protocol preamble). The connection is tracked as
// active so Close severs in-flight streams.
func (t *Transport) acquireStream(ctx context.Context, domainID int) (*streamConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("rpc: transport is closed")
	}
	if pool := t.streams[domainID]; len(pool) > 0 {
		sc := pool[len(pool)-1]
		t.streams[domainID] = pool[:len(pool)-1]
		t.streamActive[sc] = struct{}{}
		t.mu.Unlock()
		return sc, nil
	}
	t.mu.Unlock()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.addrs[domainID])
	if err != nil {
		return nil, fmt.Errorf("rpc: dial domain %d stream at %s: %w", domainID, t.addrs[domainID], err)
	}
	if _, err := io.WriteString(conn, streamMagic); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: domain %d stream preamble: %w", domainID, err)
	}
	bw := bufio.NewWriter(conn)
	sc := &streamConn{conn: conn, bw: bw, enc: gob.NewEncoder(bw), dec: gob.NewDecoder(bufio.NewReader(conn))}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("rpc: transport is closed")
	}
	t.streamActive[sc] = struct{}{}
	t.mu.Unlock()
	return sc, nil
}

// releaseStream returns a healthy connection to the pool; an unhealthy one
// (failed exchange, cancellation, errored trailer) is closed — its codec
// state is mid-message and unusable.
func (t *Transport) releaseStream(domainID int, sc *streamConn, healthy bool) {
	t.mu.Lock()
	delete(t.streamActive, sc)
	if healthy && !t.closed {
		t.streams[domainID] = append(t.streams[domainID], sc)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	sc.conn.Close()
}

// SendStream implements dist.StreamTransport over the framed gob protocol:
// the request goes out with the context's remaining time budget stamped as
// a relative duration (the same skew-immune deadline propagation Send
// uses), and fragments are handed to sink as they arrive, racing ctx. On
// cancellation the connection is severed, which both unblocks the reader
// and makes the remote domain abort its batch at the next fragment write.
func (t *Transport) SendStream(ctx context.Context, domainID int, req *dist.CandidateRequest, sink func(*dist.CandidateFragment) error) error {
	if domainID < 0 || domainID >= len(t.addrs) {
		return fmt.Errorf("rpc: domain %d out of range [0,%d): %w", domainID, len(t.addrs), dist.ErrNoSuchDomain)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sc, err := t.acquireStream(ctx, domainID)
	if err != nil {
		return err
	}
	wireReq := *req
	if dl, ok := ctx.Deadline(); ok {
		wireReq.Timeout = int64(time.Until(dl))
	}
	if err := sc.enc.Encode(&wireReq); err != nil {
		t.releaseStream(domainID, sc, false)
		return fmt.Errorf("rpc: domain %d stream request: %w", domainID, err)
	}
	if err := sc.bw.Flush(); err != nil {
		t.releaseStream(domainID, sc, false)
		return fmt.Errorf("rpc: domain %d stream request: %w", domainID, err)
	}

	type decoded struct {
		frag *dist.CandidateFragment
		err  error
	}
	frames := make(chan decoded)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			f := new(dist.CandidateFragment)
			err := sc.dec.Decode(f)
			select {
			case frames <- decoded{frag: f, err: err}:
			case <-stop:
				return
			}
			if err != nil || f.Done {
				return
			}
		}
	}()
	for {
		select {
		case <-ctx.Done():
			// Sever the connection: the reader goroutine unblocks with a
			// read error, and the domain aborts at its next fragment write.
			t.releaseStream(domainID, sc, false)
			return ctx.Err()
		case d := <-frames:
			if d.err != nil {
				t.releaseStream(domainID, sc, false)
				return fmt.Errorf("rpc: domain %d stream: %w", domainID, d.err)
			}
			if d.frag.Done && d.frag.Err != "" {
				// Batch-level failure flattened by the domain (remote
				// context error). The domain drops the connection after an
				// errored exchange; so do we.
				t.releaseStream(domainID, sc, false)
				return fmt.Errorf("rpc: domain %d stream: %s", domainID, d.frag.Err)
			}
			if err := sink(d.frag); err != nil {
				t.releaseStream(domainID, sc, false)
				return err
			}
			if d.frag.Done {
				t.releaseStream(domainID, sc, true)
				return nil
			}
		}
	}
}

var _ dist.StreamTransport = (*Transport)(nil)

// prefixedConn replays the sniffed protocol preamble in front of the
// connection's remaining byte stream, so net/rpc sees an untouched
// connection.
type prefixedConn struct {
	net.Conn
	r io.Reader
}

func (c *prefixedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// serveStream answers framed-gob stream exchanges on one connection until
// the peer hangs up: one CandidateRequest in, a fragment stream out, then
// the next request on the same connection. Fan-out cancellation rides the
// write path — AnswerStream's emit fails as soon as the peer is gone.
func (s *Server) serveStream(conn net.Conn) {
	dec := gob.NewDecoder(bufio.NewReader(conn))
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	for {
		req := new(dist.CandidateRequest)
		if err := dec.Decode(req); err != nil {
			return // peer closed (or a framing error — either way the conn is done)
		}
		//sofvet:ignore ctxflow the conn is the cancellation signal: a dead peer fails the next per-fragment flush
		err := s.ds.dom.AnswerStream(context.Background(), req, func(f *dist.CandidateFragment) error {
			if err := enc.Encode(f); err != nil {
				return err
			}
			// Flush per fragment: the leader must see it now, and a dead
			// peer must fail this write so the batch aborts.
			return bw.Flush()
		})
		if err != nil {
			// Best-effort errored trailer (a remote context error, not an
			// emit failure, can still reach a live leader), then drop the
			// connection: its codec state is ambiguous after a failed
			// exchange.
			enc.Encode(&dist.CandidateFragment{Done: true, Err: err.Error()})
			bw.Flush()
			return
		}
	}
}

// sniffProtocol reads the first preamble-length bytes of a fresh
// connection and dispatches it: stream protocol, or net/rpc with the bytes
// replayed.
func (s *Server) sniffProtocol(conn net.Conn) {
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		return // closed before a full preamble/request could arrive
	}
	if string(magic) == streamMagic {
		s.serveStream(conn)
		return
	}
	s.srv.ServeConn(&prefixedConn{Conn: conn, r: io.MultiReader(bytes.NewReader(magic), conn)})
}
