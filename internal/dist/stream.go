package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
)

// StreamStats is a snapshot of the cluster's streaming-exchange counters,
// cumulative across embeddings. It is all zeros while the cluster runs the
// batch exchange (Config.Streaming off, or a transport without streaming).
type StreamStats struct {
	// StreamedFragments counts CandidateFragments the leader consumed,
	// trailers included.
	StreamedFragments uint64
	// StreamedResults counts per-pair results delivered through fragments
	// (fallback-solved pairs are not streamed and not counted).
	StreamedResults uint64
	// PrunedCandidates counts feasible candidates rejected as dominated
	// before allocating any aux-graph state, across both join modes (the
	// batch exchange feeds the same pruning builder).
	PrunedCandidates uint64
	// EpochDrift counts fragments whose cost epoch differed from the
	// request's. Drift alone is observability, not refusal — the digest
	// decides, exactly as in the batch handshake — but a non-zero value
	// flags that a domain re-priced mid-stream.
	EpochDrift uint64
	// OverlapNS accumulates, per embedding, the time between the leader's
	// first aux-graph insertion and the last domain finishing its stream:
	// the window in which leader-side assembly overlapped domain-side
	// solving. The batch exchange's equivalent is identically zero — the
	// leader cannot start before the slowest domain returns.
	OverlapNS int64
	// EarlyClosures counts closure passes the eager mode (Config.
	// EagerClosure) finished off the completion phase's critical path:
	// warmed destination trees plus per-source refinements that completed
	// before the refinement loop demanded them. Zero without eager mode.
	// Each refinement's head-start — launch to demand, capped at its
	// finish — is accumulated into OverlapNS; per-source lanes run
	// concurrently, so the eager contribution can exceed wall time, like
	// CPU-seconds.
	EarlyClosures uint64
}

// StreamStats returns the streaming-exchange counters.
func (c *Cluster) StreamStats() StreamStats {
	return StreamStats{
		StreamedFragments: c.streamFragments.Load(),
		StreamedResults:   c.streamResults.Load(),
		PrunedCandidates:  c.streamPruned.Load(),
		EpochDrift:        c.streamEpochDrift.Load(),
		OverlapNS:         c.streamOverlapNS.Load(),
		EarlyClosures:     c.streamEarlyClosures.Load(),
	}
}

// streamEvent is one message from a domain stream goroutine to the
// splicer: either a located pair result or the domain's completion notice.
type streamEvent struct {
	global int
	res    CandidateResult
	done   bool
	domain int
	err    error
}

// sofdaStreaming is the streamed gather: one goroutine per non-empty
// domain drives SendStream (with retry over the undelivered remainder and
// the local-oracle fallback), the splicer stores located results into a
// reorder buffer, and a cursor feeds the aux-graph builder exactly in the
// centralized candidate order as the prefix becomes available — so the
// auxiliary graph (and with it the forest cost) is bit-identical to the
// batch exchange while its construction overlaps the slower domains.
func (c *Cluster) sofdaStreaming(ctx context.Context, st StreamTransport, req core.Request, o *core.Options, vms []graph.NodeID, pairs []chain.Pair, perDomain [][]chain.Pair, perIndices [][]int, epoch, digest uint64, parallelism int) (*core.Forest, error) {
	builder, err := core.NewAuxGraphBuilder(ctx, c.g, req, o)
	if err != nil {
		return nil, err
	}
	if !c.cfg.DisablePruning {
		builder.EnablePruning()
	}
	if c.cfg.EagerClosure {
		builder.EnableEager()
		// Per-source pair counts (with source multiplicity): a source's
		// refinement may start the moment its last pair splices, because
		// its candidate set is final then.
		counts := make(map[graph.NodeID]int, len(req.Sources))
		for _, p := range pairs {
			counts[p.Source]++
		}
		for _, s := range req.Sources {
			if _, ok := counts[s]; ok {
				continue
			}
			counts[s] = 0
		}
		for s, n := range counts {
			builder.ExpectCandidates(s, n)
		}
	}
	dispatched := 0
	for _, dp := range perDomain {
		if len(dp) > 0 {
			dispatched++
		}
	}
	// Buffered to every possible message (each pair delivered at most once
	// plus one done notice per domain), so domain goroutines never block on
	// the splicer and an early-erroring embed leaks nothing.
	events := make(chan streamEvent, len(pairs)+dispatched)
	for d, dp := range perDomain {
		if len(dp) == 0 {
			continue
		}
		creq := c.candidateRequest(epoch, digest, req.ChainLen, parallelism, vms, dp)
		go func(d int, creq *CandidateRequest, indices []int) {
			err := c.streamDomain(ctx, st, d, creq, indices, events)
			events <- streamEvent{done: true, domain: d, err: err}
		}(d, creq, perIndices[d])
	}

	results := make([]CandidateResult, len(pairs))
	have := make([]bool, len(pairs))
	cursor := 0
	var firstFeed time.Time
	for remaining := dispatched; remaining > 0; {
		select {
		case ev := <-events:
			if ev.done {
				remaining--
				if ev.err != nil {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					return nil, fmt.Errorf("dist: domain %d: %w", ev.domain, ev.err)
				}
				continue
			}
			have[ev.global] = true
			results[ev.global] = ev.res
			for cursor < len(pairs) && have[cursor] {
				r := results[cursor]
				src := pairs[cursor].Source
				cursor++
				if r.Err != "" || r.Chain == nil {
					// Per-pair infeasibility, skipped like the batch path —
					// but still a delivery for the source's completeness
					// count: its candidate set shrinks, it does not stall.
					builder.NoteDelivered(src)
					continue
				}
				if firstFeed.IsZero() {
					firstFeed = time.Now()
				}
				if _, err := builder.AddCandidate(r.Chain); err != nil {
					return nil, err
				}
				builder.NoteDelivered(src)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Per-goroutine sends are ordered, so by the time every done notice is
	// consumed all result events have been too; a short cursor means a
	// domain violated the protocol without erroring.
	if cursor != len(pairs) {
		return nil, fmt.Errorf("dist: stream ended with %d of %d candidates spliced", cursor, len(pairs))
	}
	if !firstFeed.IsZero() {
		c.streamOverlapNS.Add(int64(time.Since(firstFeed)))
	}
	c.streamPruned.Add(uint64(builder.Pruned()))
	if builder.Added() == 0 {
		return nil, fmt.Errorf("dist: no domain produced a feasible candidate chain")
	}
	f, err := builder.Complete(ctx)
	if c.cfg.EagerClosure {
		closures, overlapNS := builder.EagerOverlap()
		c.streamEarlyClosures.Add(uint64(closures))
		c.streamOverlapNS.Add(overlapNS)
	}
	return f, err
}

// streamDomain moves one domain's request over the streaming transport
// with the configured retry budget. Results already delivered to the
// splicer stay delivered; a failed stream is retried — and finally
// answered by the leader-local fallback — only for the undelivered
// remainder, so no pair is ever spliced twice and no completed work is
// re-bought. Context errors and ErrNoSuchDomain surface immediately;
// ErrGraphMismatch skips the pointless retries, as in the batch path.
func (c *Cluster) streamDomain(ctx context.Context, st StreamTransport, domainID int, req *CandidateRequest, indices []int, events chan<- streamEvent) error {
	n := len(req.Pairs)
	delivered := make([]bool, n)
	deliveredCount := 0
	// The current attempt's sub-request and its index map back into the
	// original request's pair slots.
	subReq := req
	subLocal := make([]int, n)
	for i := range subLocal {
		subLocal[i] = i
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryBudget; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		local := subLocal
		err := st.SendStream(ctx, domainID, subReq, func(f *CandidateFragment) error {
			c.streamFragments.Add(1)
			if f.CostEpoch != req.CostEpoch {
				c.streamEpochDrift.Add(1)
			}
			// Digest equality proves content equality; epoch drift over an
			// identical graph must not refuse (see sendCandidates).
			if f.GraphDigest != req.GraphDigest || f.SourceSetup != req.SourceSetup {
				return fmt.Errorf("dist: domain %d streamed graph digest %x sourceSetup %v, want digest %x sourceSetup %v: %w",
					domainID, f.GraphDigest, f.SourceSetup,
					req.GraphDigest, req.SourceSetup, ErrGraphMismatch)
			}
			for _, fr := range f.Results {
				if fr.Index < 0 || fr.Index >= len(local) {
					return fmt.Errorf("dist: domain %d fragment index %d out of range [0,%d)", domainID, fr.Index, len(local))
				}
				i := local[fr.Index]
				if delivered[i] {
					return fmt.Errorf("dist: domain %d delivered pair %d twice", domainID, i)
				}
				delivered[i] = true
				deliveredCount++
				c.streamResults.Add(1)
				events <- streamEvent{global: indices[i], res: fr.Result}
			}
			return nil
		})
		if err == nil {
			if deliveredCount == n {
				return nil
			}
			// A clean trailer with pairs missing is a protocol violation;
			// re-request the remainder like any failed attempt.
			err = fmt.Errorf("dist: domain %d stream ended after %d of %d results", domainID, deliveredCount, n)
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrNoSuchDomain) {
			return err
		}
		if errors.Is(err, ErrGraphMismatch) {
			break
		}
		if deliveredCount > 0 {
			subReq, subLocal = undeliveredRemainder(req, delivered)
		}
	}
	if c.cfg.DisableFallback {
		return fmt.Errorf("dist: domain %d failed past retry budget %d: %w",
			domainID, c.cfg.RetryBudget, lastErr)
	}
	var fbPairs []chain.Pair
	var fbLocal []int
	for i, d := range delivered {
		if !d {
			fbPairs = append(fbPairs, req.Pairs[i])
			fbLocal = append(fbLocal, i)
		}
	}
	results, err := c.fallbackOracle().Chains(ctx, req.VMs, fbPairs, req.ChainLen, req.Parallelism)
	if err != nil {
		return err
	}
	for j, r := range WireResults(results) {
		events <- streamEvent{global: indices[fbLocal[j]], res: r}
	}
	return nil
}

// undeliveredRemainder builds the retry sub-request covering exactly the
// pairs the previous attempts did not deliver, plus the map from the
// sub-request's pair indices back to the original request's.
func undeliveredRemainder(req *CandidateRequest, delivered []bool) (*CandidateRequest, []int) {
	sub := *req
	sub.Pairs = nil
	var local []int
	for i, d := range delivered {
		if !d {
			sub.Pairs = append(sub.Pairs, req.Pairs[i])
			local = append(local, i)
		}
	}
	return &sub, local
}
