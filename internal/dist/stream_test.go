package dist

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"sof/internal/chain"
	"sof/internal/core"
)

// TestStreamedMatchesBatchAndCentralized is the streaming correctness
// claim: on the 4-seed × 3-domain-count matrix, the server-streamed
// fragment exchange — with pruning armed and disarmed — costs exactly
// what the batch exchange and the centralized solver cost.
func TestStreamedMatchesBatchAndCentralized(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts := softLayerInstance(seed)
		central, err := core.SOFDA(net.G, req, opts)
		if err != nil {
			t.Fatalf("seed %d: centralized: %v", seed, err)
		}
		for _, domains := range []int{1, 3, 5} {
			for _, disablePrune := range []bool{false, true} {
				cluster := NewClusterWith(net.G, domains, Config{
					Streaming:      true,
					DisablePruning: disablePrune,
				})
				f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
				if err != nil {
					cluster.Close()
					t.Fatalf("seed %d domains %d prune=%v: streamed: %v", seed, domains, !disablePrune, err)
				}
				if err := f.Validate(req.Sources, req.Dests); err != nil {
					t.Errorf("seed %d domains %d prune=%v: infeasible forest: %v", seed, domains, !disablePrune, err)
				}
				if f.TotalCost() != central.TotalCost() {
					t.Errorf("seed %d domains %d prune=%v: streamed cost %v != centralized %v",
						seed, domains, !disablePrune, f.TotalCost(), central.TotalCost())
				}
				st := cluster.StreamStats()
				if st.StreamedFragments == 0 || st.StreamedResults == 0 {
					t.Errorf("seed %d domains %d prune=%v: no stream counters (%+v) — the exchange ran in batch mode",
						seed, domains, !disablePrune, st)
				}
				cluster.Close()
			}
		}
	}
}

// TestStreamedPruneOnOffIdenticalCost is the prune-safety property pinned
// directly: across seeds and domain counts, prune-on and prune-off runs
// of BOTH join modes (the batch exchange routes through the same pruning
// builder since the leader's join unification) agree on the forest cost
// bit for bit, and pruning actually fires in each mode on at least one
// instance — the rule is doing work, not vacuously passing.
func TestStreamedPruneOnOffIdenticalCost(t *testing.T) {
	prunedByMode := make(map[string]uint64)
	for _, seed := range []int64{1, 7, 23, 42} {
		net, req, opts := softLayerInstance(seed)
		for _, domains := range []int{1, 3, 5} {
			costs := make(map[string]float64)
			for _, mode := range []struct {
				name string
				cfg  Config
			}{
				{"batch", Config{}},
				{"batch-noprune", Config{DisablePruning: true}},
				{"stream-prune", Config{Streaming: true}},
				{"stream-noprune", Config{Streaming: true, DisablePruning: true}},
			} {
				cluster := NewClusterWith(net.G, domains, mode.cfg)
				f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
				if err != nil {
					cluster.Close()
					t.Fatalf("seed %d domains %d %s: %v", seed, domains, mode.name, err)
				}
				costs[mode.name] = f.TotalCost()
				prunedByMode[mode.name] += cluster.StreamStats().PrunedCandidates
				cluster.Close()
			}
			base := costs["batch"]
			for name, c := range costs {
				if c != base {
					t.Errorf("seed %d domains %d: %s cost diverged: %v", seed, domains, name, costs)
					break
				}
			}
		}
	}
	for _, mode := range []string{"batch", "stream-prune"} {
		if prunedByMode[mode] == 0 {
			t.Errorf("%s pruning never fired across the whole matrix; the property test is vacuous for it", mode)
		}
	}
	for _, mode := range []string{"batch-noprune", "stream-noprune"} {
		if prunedByMode[mode] != 0 {
			t.Errorf("%s reported %d pruned candidates with pruning disabled", mode, prunedByMode[mode])
		}
	}
}

// TestStreamingCancellationAbortsDomainFanout is the regression pin for
// the abandoned-batch fix: a leader that cancels mid-stream must stop the
// domain-side oracle fan-out at the next fragment, not let the domain
// finish the whole batch. The request runs sequentially (Parallelism 1)
// so "aborted promptly" has a crisp bound: at most a couple of in-flight
// solves after the first fragment.
func TestStreamingCancellationAbortsDomainFanout(t *testing.T) {
	net, req, opts := softLayerInstance(7)
	tr := NewChannelTransport(net.G, 1, chain.Options{})
	defer tr.Close()
	pairs := chain.Pairs(req.Sources, opts.VMs)
	creq := &CandidateRequest{
		ChainLen:    req.ChainLen,
		Parallelism: 1,
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := tr.SendStream(ctx, 0, creq, func(f *CandidateFragment) error {
		cancel() // first fragment: the leader walks away mid-batch
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SendStream after mid-stream cancel = %v, want context.Canceled", err)
	}
	solved := tr.domains[0].dom.CacheStats().ChainMisses
	if solved >= uint64(len(pairs))/2 {
		t.Fatalf("domain solved %d of %d pairs after cancellation — the abandoned batch was not aborted", solved, len(pairs))
	}
	if solved == 0 {
		t.Fatal("domain solved nothing; the stream never started")
	}
	// The transport must stay usable for a healthy follow-up exchange.
	got := 0
	if err := tr.SendStream(context.Background(), 0, creq, func(f *CandidateFragment) error {
		got += len(f.Results)
		return nil
	}); err != nil {
		t.Fatalf("SendStream after an aborted stream: %v", err)
	}
	if got != len(pairs) {
		t.Fatalf("follow-up stream delivered %d of %d results", got, len(pairs))
	}
}

// TestStreamingSinkErrorAbortsDomain pins the same abort path for a sink
// that fails (the rpc leader's behavior when its peer severs the conn):
// the domain stops solving and SendStream returns the sink's error.
func TestStreamingSinkErrorAbortsDomain(t *testing.T) {
	net, req, opts := softLayerInstance(9)
	tr := NewChannelTransport(net.G, 1, chain.Options{})
	defer tr.Close()
	pairs := chain.Pairs(req.Sources, opts.VMs)
	creq := &CandidateRequest{ChainLen: req.ChainLen, Parallelism: 1, VMs: opts.VMs, Pairs: pairs}
	errSink := errors.New("sink gave up")
	err := tr.SendStream(context.Background(), 0, creq, func(f *CandidateFragment) error {
		return errSink
	})
	if !errors.Is(err, errSink) {
		t.Fatalf("SendStream with failing sink = %v, want the sink error", err)
	}
	if solved := tr.domains[0].dom.CacheStats().ChainMisses; solved >= uint64(len(pairs))/2 {
		t.Fatalf("domain solved %d of %d pairs after the sink failed", solved, len(pairs))
	}
}

// TestAnswerStreamStampsLiveEpoch pins mid-stream re-pricing detection:
// fragments carry the domain's epoch and digest as they are *now*, not as
// captured at the handshake — a cost change during the exchange must show
// up on the next fragment (epoch drift in-process; on wire requests the
// digest moves too, refusing the remainder).
func TestAnswerStreamStampsLiveEpoch(t *testing.T) {
	net, req, opts := softLayerInstance(11)
	dom := NewDomain(net.G, chain.Options{})
	pairs := chain.Pairs(req.Sources, opts.VMs)
	creq := &CandidateRequest{
		CostEpoch:   net.G.CostEpoch(),
		GraphDigest: GraphDigest(net.G),
		ChainLen:    req.ChainLen,
		Parallelism: 1,
		VMs:         opts.VMs,
		Pairs:       pairs,
	}
	var first, last *CandidateFragment
	if err := dom.AnswerStream(context.Background(), creq, func(f *CandidateFragment) error {
		if first == nil {
			first = f
			// Re-price mid-exchange: every later fragment must see it.
			net.G.SetEdgeCost(0, net.G.EdgeCost(0)+1)
		}
		last = f
		return nil
	}); err != nil {
		t.Fatalf("AnswerStream: %v", err)
	}
	if first == nil || last == nil || first == last {
		t.Fatal("stream too short to observe mid-stream re-pricing")
	}
	if last.CostEpoch == first.CostEpoch {
		t.Errorf("trailer epoch %d == first fragment epoch %d after a mid-stream re-pricing", last.CostEpoch, first.CostEpoch)
	}
	if last.GraphDigest == first.GraphDigest {
		t.Errorf("trailer digest equals the pre-re-pricing digest; the drift is invisible to a wire leader")
	}
}

// partialStreamTransport delivers fragments normally until failAfter
// results have crossed, then kills the stream — the shape of a domain
// that crashes mid-exchange. Send (the batch form) stays healthy.
type partialStreamTransport struct {
	inner     *ChannelTransport
	failAfter int32
	seen      atomic.Int32
}

var errStreamCut = errors.New("injected mid-stream failure")

func (p *partialStreamTransport) Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error) {
	return p.inner.Send(ctx, domainID, req)
}

func (p *partialStreamTransport) SendStream(ctx context.Context, domainID int, req *CandidateRequest, sink func(*CandidateFragment) error) error {
	return p.inner.SendStream(ctx, domainID, req, func(f *CandidateFragment) error {
		if p.seen.Load() >= p.failAfter {
			return errStreamCut
		}
		if err := sink(f); err != nil {
			return err
		}
		p.seen.Add(int32(len(f.Results)))
		return nil
	})
}

// TestStreamingPartialFailureRetriesRemainder cuts every stream after a
// few results: the leader must keep the delivered prefix, re-request only
// the remainder, and — once the retry budget is spent — answer the rest
// from the local fallback, landing on the centralized cost regardless.
func TestStreamingPartialFailureRetriesRemainder(t *testing.T) {
	net, req, opts := softLayerInstance(23)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewChannelTransport(net.G, 3, chain.Options{})
	defer inner.Close()
	flaky := &partialStreamTransport{inner: inner, failAfter: 5}
	cluster := NewClusterWith(net.G, 3, Config{Transport: flaky, Streaming: true, RetryBudget: 1})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatalf("streamed SOFDA over a mid-stream-failing transport: %v", err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("cost %v != centralized %v after partial-stream fallback", f.TotalCost(), central.TotalCost())
	}
}

// TestStreamingOverBatchOnlyTransportFallsBack pins the capability gate:
// Config.Streaming over a transport without SendStream quietly uses the
// batch exchange — same cost, zero stream counters.
func TestStreamingOverBatchOnlyTransportFallsBack(t *testing.T) {
	net, req, opts := softLayerInstance(5)
	central, err := core.SOFDA(net.G, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewChannelTransport(net.G, 3, chain.Options{})
	defer inner.Close()
	batchOnly := &countingTransport{inner: inner, domains: make(map[int]int)}
	cluster := NewClusterWith(net.G, 3, Config{Transport: batchOnly, Streaming: true})
	defer cluster.Close()
	f, err := cluster.SOFDA(context.Background(), req, Options{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() != central.TotalCost() {
		t.Errorf("cost %v != centralized %v", f.TotalCost(), central.TotalCost())
	}
	if st := cluster.StreamStats(); st.StreamedFragments != 0 {
		t.Errorf("batch-only transport produced stream counters: %+v", st)
	}
}
