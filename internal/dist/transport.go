package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"sof/internal/chain"
	"sof/internal/graph"
)

// Transport carries the leader↔domain candidate protocol. Send delivers
// one request to the given domain controller and blocks until the domain
// answers, the transport fails, or ctx is done. Implementations must be
// safe for concurrent Sends to distinct domains (the leader scatters one
// goroutine per domain) and should return ctx.Err() promptly once the
// context is cancelled rather than waiting out a dead domain.
//
// A Send error means the domain's answer is unusable as a whole; per-pair
// infeasibilities travel inside CandidateResponse.Results instead. The
// leader retries failed Sends on a budget and then falls back to solving
// that domain's pairs on a local oracle, so transport failures degrade
// latency, never correctness.
type Transport interface {
	Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error)
}

// StreamTransport is the streaming capability of a Transport: SendStream
// delivers one request and invokes sink for every CandidateFragment the
// domain emits — including the Done trailer — on the calling goroutine, in
// stream order. It returns once the trailer has been consumed, the sink
// errors (which must abort the remote exchange so the domain stops
// solving), the transport fails, or ctx is done. A sink error is returned
// verbatim; like Send, a SendStream error means the un-delivered remainder
// of the exchange is unusable, while results already handed to the sink
// remain valid — the leader retries or falls back only for the remainder.
//
// The capability is optional by design: wrappers and test doubles that
// only implement Send keep working, and the cluster quietly uses the
// batch exchange when Config.Streaming is set over a batch-only transport.
type StreamTransport interface {
	Transport
	SendStream(ctx context.Context, domainID int, req *CandidateRequest, sink func(*CandidateFragment) error) error
}

// ChannelTransport is the in-process reference Transport: one long-lived
// worker goroutine per domain, each owning a private chain oracle over the
// shared graph, fed through unbuffered job channels. It is both the
// deployment used by NewCluster (a multi-controller emulation inside one
// process) and the test double RPC transports are checked against — the
// payloads it moves are exactly the messages a wire transport carries.
type ChannelTransport struct {
	g       *graph.Graph
	domains []*domainWorker
	wg      sync.WaitGroup
	// done is closed by Close; Sends and workers select on it, so a Send
	// racing Close degrades to ErrTransportClosed instead of touching a
	// closed channel (the leader's fallback then answers the batch).
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// ErrTransportClosed is returned by ChannelTransport.Send after Close.
var ErrTransportClosed = errors.New("dist: transport is closed")

// ErrNoSuchDomain is wrapped by Transport.Send when the domain ID is not
// one the transport serves — a leader misconfiguration (cluster domain
// count exceeding the transport's), not a transient fault. The leader
// neither retries it nor launders it into the fallback: the embedding
// fails loudly so the operator learns the deployment is undersized.
var ErrNoSuchDomain = errors.New("dist: transport has no such domain")

// domainWorker is one emulated controller: the shared domain-side handler
// plus the job stream its goroutine serves.
type domainWorker struct {
	dom  *Domain
	jobs chan chanJob
}

// chanJob is one in-flight Send or SendStream: the request, the caller's
// context, and a buffered reply slot so the worker never blocks on a
// caller that gave up. A non-nil frags channel selects the streaming path:
// the worker emits fragments into it, closes it, and then reports the
// batch-level error on reply.
type chanJob struct {
	ctx   context.Context
	req   *CandidateRequest
	reply chan<- chanReply
	frags chan *CandidateFragment
}

type chanReply struct {
	resp *CandidateResponse
	err  error
}

// NewChannelTransport starts numDomains domain workers over g, each with a
// private oracle configured by chainOpts. Callers must Close it to stop
// the workers; Cluster does so automatically for the transport it creates.
func NewChannelTransport(g *graph.Graph, numDomains int, chainOpts chain.Options) *ChannelTransport {
	if numDomains < 1 {
		numDomains = 1
	}
	t := &ChannelTransport{g: g, done: make(chan struct{})}
	for i := 0; i < numDomains; i++ {
		d := &domainWorker{
			dom:  NewDomain(g, chainOpts),
			jobs: make(chan chanJob),
		}
		t.domains = append(t.domains, d)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			d.serve(t.done)
		}()
	}
	return t
}

// serve answers jobs until the transport closes.
func (d *domainWorker) serve(done <-chan struct{}) {
	for {
		select {
		case job := <-d.jobs:
			if job.frags != nil {
				err := d.dom.AnswerStream(job.ctx, job.req, func(f *CandidateFragment) error {
					select {
					case job.frags <- f:
						return nil
					case <-job.ctx.Done():
						return job.ctx.Err()
					case <-done:
						return ErrTransportClosed
					}
				})
				close(job.frags)
				job.reply <- chanReply{err: err}
				continue
			}
			resp, err := d.dom.Answer(job.ctx, job.req)
			job.reply <- chanReply{resp: resp, err: err}
		case <-done:
			return
		}
	}
}

// Domain is the domain-side half of the protocol, shared by the channel
// transport's workers and rpc.DomainServer: one controller's graph view,
// private oracle, and epoch-memoized topology digest.
type Domain struct {
	g      *graph.Graph
	oracle *chain.Oracle
	opts   chain.Options
	memo   digestMemo
}

// NewDomain returns a domain controller over g with a fresh oracle.
func NewDomain(g *graph.Graph, chainOpts chain.Options) *Domain {
	return &Domain{g: g, oracle: chain.NewOracle(g, chainOpts), opts: chainOpts}
}

// Answer handles one candidate request: verify the request's cost epoch,
// topology digest, and source-setup pricing against this domain's view,
// rebuild the leader's cancellation horizon from the wire timeout, fan the
// pairs out over the oracle, and wrap the results for the wire.
//
// A graph-state mismatch is answered as a well-formed response carrying
// the domain's own epoch/digest/pricing with no results, NOT as an error:
// transports may flatten errors to strings (net/rpc does), but a response
// crosses any codec intact, so the leader can classify the mismatch as
// non-retryable (ErrGraphMismatch) instead of burning its retry budget.
func (d *Domain) Answer(ctx context.Context, req *CandidateRequest) (*CandidateResponse, error) {
	epoch := d.g.CostEpoch()
	// The digest (plus the pricing mode) decides: it is a full content
	// hash, so digest equality proves the two graphs agree even when the
	// epoch counters drifted (e.g. the leader bumped its epoch and
	// restored the costs — refusing on epoch alone would silently and
	// permanently degrade a remote deployment to leader-local solving).
	// The epoch only short-circuits the hash: when it matches the memo's
	// last computation the digest is an atomic load away. Digest 0 means
	// the leader shares this domain's graph and skipped the handshake
	// (see CandidateRequest); nothing is hashed at all then.
	digest := uint64(0)
	if req.GraphDigest != 0 {
		digest = d.memo.of(d.g)
	}
	if digest != req.GraphDigest || d.opts.SourceSetupCost != req.SourceSetup {
		return &CandidateResponse{CostEpoch: epoch, GraphDigest: digest, SourceSetup: d.opts.SourceSetupCost}, nil
	}
	if req.Timeout != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.Timeout))
		defer cancel()
	}
	results, err := d.oracle.Chains(ctx, req.VMs, req.Pairs, req.ChainLen, req.Parallelism)
	if err != nil {
		return nil, err
	}
	return &CandidateResponse{
		CostEpoch:   epoch,
		GraphDigest: digest,
		SourceSetup: d.opts.SourceSetupCost,
		Results:     WireResults(results),
	}, nil
}

// CacheStats reports the domain oracle's cache counters — Dijkstra-tree
// and solved-chain hits/misses. ChainMisses counts k-stroll solves, which
// is what the cancellation tests observe: an aborted batch must stop
// solving well before the pair count.
func (d *Domain) CacheStats() chain.CacheStats { return d.oracle.Stats() }

// AnswerStream is the streaming form of Answer: the same handshake and
// cancellation horizon, but results are emitted as CandidateFragments as
// pairs complete (coalescing whatever is ready into each fragment) instead
// of a single batch response, and the exchange ends with a Done trailer.
//
// Fragments carry completion-order results located by FragmentResult.Index
// — the leader splices, so the domain never stalls a fast pair behind a
// slow one. A handshake mismatch is a single Done fragment carrying the
// domain's own epoch/digest/pricing and no results (the streaming twin of
// the batch refusal response). An emit error aborts the oracle fan-out
// before the next fragment: the feeder stops, in-flight solves finish, and
// the error is returned — this is how a severed stream (dead leader, sink
// failure) cancels a remote batch mid-flight instead of burning the
// domain's oracle on abandoned work.
func (d *Domain) AnswerStream(ctx context.Context, req *CandidateRequest, emit func(*CandidateFragment) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	digest := uint64(0)
	if req.GraphDigest != 0 {
		digest = d.memo.of(d.g)
	}
	// Fragments are stamped with the domain's *live* epoch and digest, not
	// the handshake-time capture: a re-pricing mid-exchange moves both, so
	// the leader observes the drift on the very next fragment (a counter
	// bump in-process, a digest refusal of the stream's remainder on wire
	// transports — the batch exchange could only mix stale and fresh costs
	// silently). The digest re-read is an atomic epoch load while costs
	// are stable (see digestMemo). Digest-0 requests keep digest 0: the
	// leader shares this domain's graph and skipped the content handshake.
	stamp := func(f *CandidateFragment) *CandidateFragment {
		f.CostEpoch = d.g.CostEpoch()
		f.GraphDigest = digest
		if req.GraphDigest != 0 {
			f.GraphDigest = d.memo.of(d.g)
		}
		f.SourceSetup = d.opts.SourceSetupCost
		return f
	}
	if digest != req.GraphDigest || d.opts.SourceSetupCost != req.SourceSetup {
		return emit(stamp(&CandidateFragment{Done: true}))
	}
	if req.Timeout != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.Timeout))
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(req.Pairs)
	if n == 0 {
		return emit(stamp(&CandidateFragment{Done: true}))
	}
	par := req.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}

	// Cheapest-first scheduling: the batch's full tree demand (every pair
	// source plus every candidate VM) is known up front, so warm it in one
	// batched pass — miss-neutral, see chain.Oracle.WarmTrees — and order
	// the solves within each source block by the chain-cost lower bound
	// dist(source, lastVM). Cheap chains then tend to finish (and stream)
	// first, tightening the leader's prune bound sooner. Source blocks keep
	// their request order so the leader's in-order reorder-buffer prefix
	// still fills front to back; and since the leader splices by index, the
	// solve order changes wall-clock shape only, never any result.
	origins := make([]graph.NodeID, 0, len(req.Pairs)+len(req.VMs))
	firstAt := make(map[graph.NodeID]int, len(req.Pairs))
	for i, p := range req.Pairs {
		if _, ok := firstAt[p.Source]; !ok {
			firstAt[p.Source] = i
			origins = append(origins, p.Source)
		}
	}
	origins = append(origins, req.VMs...)
	d.oracle.WarmTrees(ctx, origins)
	lb := make([]float64, n)
	for i, p := range req.Pairs {
		lb[i] = d.oracle.Tree(p.Source).Dist[p.LastVM]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		sa, sb := firstAt[req.Pairs[ia].Source], firstAt[req.Pairs[ib].Source]
		if sa != sb {
			return sa < sb
		}
		if lb[ia] != lb[ib] {
			return lb[ia] < lb[ib]
		}
		return ia < ib
	})

	// completed is buffered to the pair count so workers never block on it:
	// the emitter can bail out on a dead stream and the pool still drains.
	completed := make(chan FragmentResult, n)
	solve := func(i int) FragmentResult {
		p := req.Pairs[i]
		fr := FragmentResult{Index: i}
		sc, err := d.oracle.Chain(req.VMs, p.Source, p.LastVM, req.ChainLen)
		fr.Result = CandidateResult{Pair: p, Chain: sc}
		if err != nil {
			fr.Result.Err = err.Error()
			fr.Result.Chain = nil
		}
		return fr
	}
	sctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	// Defers run LIFO: cancel first (stops the feeder), then wait for the
	// workers' in-flight solves — so an early return aborts the fan-out
	// promptly instead of finishing the abandoned batch.
	defer wg.Wait()
	defer cancel()
	jobs := make(chan int)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				completed <- solve(i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		for _, i := range order {
			select {
			case jobs <- i:
			case <-sctx.Done():
				return
			}
		}
	}()

	seq := 0
	received := 0
	for received < n {
		var frag CandidateFragment
		select {
		case fr := <-completed:
			frag.Results = append(frag.Results, fr)
			received++
		case <-sctx.Done():
			return sctx.Err()
		}
	coalesce:
		// Opportunistic batching: everything already solved rides in this
		// fragment, so fragment count adapts to the leader/domain speed
		// ratio instead of being fixed per pair.
		for received < n {
			select {
			case fr := <-completed:
				frag.Results = append(frag.Results, fr)
				received++
			default:
				break coalesce
			}
		}
		// Cheapest-first emission within the fragment: feasible results
		// ascending by chain cost, infeasible last, ties by index. The
		// leader splices by index, so this is presentation order for
		// consumers that act on fragments as they arrive — combined with
		// the lower-bound solve order it makes "cheap chains early" hold
		// fragment by fragment, not just stream-wide.
		sort.SliceStable(frag.Results, func(a, b int) bool {
			ra, rb := &frag.Results[a], &frag.Results[b]
			ca, cb := math.Inf(1), math.Inf(1)
			if ra.Result.Chain != nil {
				ca = ra.Result.Chain.TotalCost()
			}
			if rb.Result.Chain != nil {
				cb = rb.Result.Chain.TotalCost()
			}
			if ca != cb {
				return ca < cb
			}
			return ra.Index < rb.Index
		})
		frag.Seq = seq
		if err := emit(stamp(&frag)); err != nil {
			return err
		}
		seq++
	}
	return emit(stamp(&CandidateFragment{Seq: seq, Done: true}))
}

// NumDomains returns the number of domain workers.
func (t *ChannelTransport) NumDomains() int { return len(t.domains) }

// Send dispatches the request to the domain's worker and waits for its
// answer. Both the dispatch and the wait observe ctx, so a cancelled
// leader returns promptly even while the worker is mid-computation (the
// worker sees the same ctx and abandons the batch on its own).
func (t *ChannelTransport) Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error) {
	if domainID < 0 || domainID >= len(t.domains) {
		return nil, fmt.Errorf("dist: domain %d out of range [0,%d): %w", domainID, len(t.domains), ErrNoSuchDomain)
	}
	reply := make(chan chanReply, 1)
	select {
	case t.domains[domainID].jobs <- chanJob{ctx: ctx, req: req, reply: reply}:
	case <-t.done:
		return nil, ErrTransportClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-reply:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SendStream dispatches the request to the domain's worker and invokes
// sink for each fragment the domain emits, on the calling goroutine. A
// sink error cancels the worker-side fan-out (the domain aborts before its
// next fragment) and is returned after the stream winds down; caller
// cancellation propagates the same way.
func (t *ChannelTransport) SendStream(ctx context.Context, domainID int, req *CandidateRequest, sink func(*CandidateFragment) error) error {
	if domainID < 0 || domainID >= len(t.domains) {
		return fmt.Errorf("dist: domain %d out of range [0,%d): %w", domainID, len(t.domains), ErrNoSuchDomain)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The worker emits under sctx, so cancelling it — on a sink error —
	// aborts the domain-side oracle fan-out at the next fragment.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reply := make(chan chanReply, 1)
	job := chanJob{ctx: sctx, req: req, reply: reply, frags: make(chan *CandidateFragment)}
	select {
	case t.domains[domainID].jobs <- job:
	case <-t.done:
		return ErrTransportClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	var sinkErr error
	for {
		select {
		case f, ok := <-job.frags:
			if !ok {
				r := <-reply
				if sinkErr != nil {
					return sinkErr
				}
				return r.err
			}
			if sinkErr == nil {
				if err := sink(f); err != nil {
					sinkErr = err
					cancel() // abort the domain; keep draining until it closes frags
				}
			}
		case <-ctx.Done():
			// The worker shares (a child of) ctx and winds down on its own.
			return ctx.Err()
		case <-t.done:
			return ErrTransportClosed
		}
	}
}

// Close stops the domain workers and waits for them to drain. Idempotent
// and safe against concurrent Sends: late Sends fail with
// ErrTransportClosed rather than panicking.
func (t *ChannelTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
