package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sof/internal/chain"
	"sof/internal/graph"
)

// Transport carries the leader↔domain candidate protocol. Send delivers
// one request to the given domain controller and blocks until the domain
// answers, the transport fails, or ctx is done. Implementations must be
// safe for concurrent Sends to distinct domains (the leader scatters one
// goroutine per domain) and should return ctx.Err() promptly once the
// context is cancelled rather than waiting out a dead domain.
//
// A Send error means the domain's answer is unusable as a whole; per-pair
// infeasibilities travel inside CandidateResponse.Results instead. The
// leader retries failed Sends on a budget and then falls back to solving
// that domain's pairs on a local oracle, so transport failures degrade
// latency, never correctness.
type Transport interface {
	Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error)
}

// ChannelTransport is the in-process reference Transport: one long-lived
// worker goroutine per domain, each owning a private chain oracle over the
// shared graph, fed through unbuffered job channels. It is both the
// deployment used by NewCluster (a multi-controller emulation inside one
// process) and the test double RPC transports are checked against — the
// payloads it moves are exactly the messages a wire transport carries.
type ChannelTransport struct {
	g       *graph.Graph
	domains []*domainWorker
	wg      sync.WaitGroup
	// done is closed by Close; Sends and workers select on it, so a Send
	// racing Close degrades to ErrTransportClosed instead of touching a
	// closed channel (the leader's fallback then answers the batch).
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// ErrTransportClosed is returned by ChannelTransport.Send after Close.
var ErrTransportClosed = errors.New("dist: transport is closed")

// ErrNoSuchDomain is wrapped by Transport.Send when the domain ID is not
// one the transport serves — a leader misconfiguration (cluster domain
// count exceeding the transport's), not a transient fault. The leader
// neither retries it nor launders it into the fallback: the embedding
// fails loudly so the operator learns the deployment is undersized.
var ErrNoSuchDomain = errors.New("dist: transport has no such domain")

// domainWorker is one emulated controller: the shared domain-side handler
// plus the job stream its goroutine serves.
type domainWorker struct {
	dom  *Domain
	jobs chan chanJob
}

// chanJob is one in-flight Send: the request, the caller's context, and a
// buffered reply slot so the worker never blocks on a caller that gave up.
type chanJob struct {
	ctx   context.Context
	req   *CandidateRequest
	reply chan<- chanReply
}

type chanReply struct {
	resp *CandidateResponse
	err  error
}

// NewChannelTransport starts numDomains domain workers over g, each with a
// private oracle configured by chainOpts. Callers must Close it to stop
// the workers; Cluster does so automatically for the transport it creates.
func NewChannelTransport(g *graph.Graph, numDomains int, chainOpts chain.Options) *ChannelTransport {
	if numDomains < 1 {
		numDomains = 1
	}
	t := &ChannelTransport{g: g, done: make(chan struct{})}
	for i := 0; i < numDomains; i++ {
		d := &domainWorker{
			dom:  NewDomain(g, chainOpts),
			jobs: make(chan chanJob),
		}
		t.domains = append(t.domains, d)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			d.serve(t.done)
		}()
	}
	return t
}

// serve answers jobs until the transport closes.
func (d *domainWorker) serve(done <-chan struct{}) {
	for {
		select {
		case job := <-d.jobs:
			resp, err := d.dom.Answer(job.ctx, job.req)
			job.reply <- chanReply{resp: resp, err: err}
		case <-done:
			return
		}
	}
}

// Domain is the domain-side half of the protocol, shared by the channel
// transport's workers and rpc.DomainServer: one controller's graph view,
// private oracle, and epoch-memoized topology digest.
type Domain struct {
	g      *graph.Graph
	oracle *chain.Oracle
	opts   chain.Options
	memo   digestMemo
}

// NewDomain returns a domain controller over g with a fresh oracle.
func NewDomain(g *graph.Graph, chainOpts chain.Options) *Domain {
	return &Domain{g: g, oracle: chain.NewOracle(g, chainOpts), opts: chainOpts}
}

// Answer handles one candidate request: verify the request's cost epoch,
// topology digest, and source-setup pricing against this domain's view,
// rebuild the leader's cancellation horizon from the wire timeout, fan the
// pairs out over the oracle, and wrap the results for the wire.
//
// A graph-state mismatch is answered as a well-formed response carrying
// the domain's own epoch/digest/pricing with no results, NOT as an error:
// transports may flatten errors to strings (net/rpc does), but a response
// crosses any codec intact, so the leader can classify the mismatch as
// non-retryable (ErrGraphMismatch) instead of burning its retry budget.
func (d *Domain) Answer(ctx context.Context, req *CandidateRequest) (*CandidateResponse, error) {
	epoch := d.g.CostEpoch()
	// The digest (plus the pricing mode) decides: it is a full content
	// hash, so digest equality proves the two graphs agree even when the
	// epoch counters drifted (e.g. the leader bumped its epoch and
	// restored the costs — refusing on epoch alone would silently and
	// permanently degrade a remote deployment to leader-local solving).
	// The epoch only short-circuits the hash: when it matches the memo's
	// last computation the digest is an atomic load away. Digest 0 means
	// the leader shares this domain's graph and skipped the handshake
	// (see CandidateRequest); nothing is hashed at all then.
	digest := uint64(0)
	if req.GraphDigest != 0 {
		digest = d.memo.of(d.g)
	}
	if digest != req.GraphDigest || d.opts.SourceSetupCost != req.SourceSetup {
		return &CandidateResponse{CostEpoch: epoch, GraphDigest: digest, SourceSetup: d.opts.SourceSetupCost}, nil
	}
	if req.Timeout != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.Timeout))
		defer cancel()
	}
	results, err := d.oracle.Chains(ctx, req.VMs, req.Pairs, req.ChainLen, req.Parallelism)
	if err != nil {
		return nil, err
	}
	return &CandidateResponse{
		CostEpoch:   epoch,
		GraphDigest: digest,
		SourceSetup: d.opts.SourceSetupCost,
		Results:     WireResults(results),
	}, nil
}

// NumDomains returns the number of domain workers.
func (t *ChannelTransport) NumDomains() int { return len(t.domains) }

// Send dispatches the request to the domain's worker and waits for its
// answer. Both the dispatch and the wait observe ctx, so a cancelled
// leader returns promptly even while the worker is mid-computation (the
// worker sees the same ctx and abandons the batch on its own).
func (t *ChannelTransport) Send(ctx context.Context, domainID int, req *CandidateRequest) (*CandidateResponse, error) {
	if domainID < 0 || domainID >= len(t.domains) {
		return nil, fmt.Errorf("dist: domain %d out of range [0,%d): %w", domainID, len(t.domains), ErrNoSuchDomain)
	}
	reply := make(chan chanReply, 1)
	select {
	case t.domains[domainID].jobs <- chanJob{ctx: ctx, req: req, reply: reply}:
	case <-t.done:
		return nil, ErrTransportClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-reply:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the domain workers and waits for them to drain. Idempotent
// and safe against concurrent Sends: late Sends fail with
// ErrTransportClosed rather than panicking.
func (t *ChannelTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
