// Package emu is a flow-level emulation of the paper's hardware experiment
// (Section VIII-D, Table II): a 14-node/20-link SDN (Figure 13) carries a
// 137-second 8 Mbps H.264 stream from two YouTube-fed sources to four
// destinations through a transcoder and a watermarker VNF. Links have
// 4.5–9 Mbps of available bandwidth to emulate congestion; startup latency
// and total re-buffering time are measured per destination.
//
// The hardware testbed (HP OpenFlow switches + OpenStack VMs) and the
// Emulab deployment are replaced by two emulator profiles with slightly
// different delay/bandwidth characteristics; what Table II actually
// compares — which algorithm's embedding finds less congested paths — is
// exactly what the flow-level model computes (see DESIGN.md §3).
package emu

import (
	"context"
	"fmt"
	"math/rand"

	"sof"
	"sof/internal/core"
	"sof/internal/costmodel"
	"sof/internal/graph"
	"sof/internal/online"
	"sof/internal/topology"
)

// Profile fixes the physical characteristics of one deployment.
type Profile struct {
	Name string
	// VideoBitrateMbps and DurationSec describe the source stream;
	// TranscodedRateMbps is the rate after the transcoder VNF adapts the
	// stream for congested delivery (the role the paper's FFmpeg
	// transcoder plays).
	VideoBitrateMbps   float64
	TranscodedRateMbps float64
	DurationSec        float64
	// LinkCapacityMbps is raw capacity; available bandwidth per link is
	// drawn uniformly from [BWLowMbps, BWHighMbps].
	LinkCapacityMbps float64
	BWLowMbps        float64
	BWHighMbps       float64
	// StartupBufferSec of content must arrive before playback starts.
	StartupBufferSec float64
	// PerVNFDelaySec and PerHopDelaySec add fixed pipeline latency.
	PerVNFDelaySec float64
	PerHopDelaySec float64
	Seed           int64
}

// Testbed mirrors the HP-switch testbed column of Table II.
func Testbed(seed int64) Profile {
	return Profile{
		Name:             "testbed",
		VideoBitrateMbps: 8, TranscodedRateMbps: 6, DurationSec: 137,
		LinkCapacityMbps: 50, BWLowMbps: 4.5, BWHighMbps: 9,
		StartupBufferSec: 4, PerVNFDelaySec: 1.2, PerHopDelaySec: 0.15,
		Seed: seed,
	}
}

// Emulab mirrors the Emulab column: same workload, faster control plane
// and slightly more headroom.
func Emulab(seed int64) Profile {
	return Profile{
		Name:             "emulab",
		VideoBitrateMbps: 8, TranscodedRateMbps: 6, DurationSec: 137,
		LinkCapacityMbps: 50, BWLowMbps: 5.5, BWHighMbps: 10,
		StartupBufferSec: 4, PerVNFDelaySec: 0.8, PerHopDelaySec: 0.05,
		Seed: seed,
	}
}

// DestQoE is the measured playback quality for one destination.
type DestQoE struct {
	Dest           graph.NodeID
	ThroughputMbps float64
	StartupSec     float64
	RebufferSec    float64
}

// QoE aggregates a run.
type QoE struct {
	Algorithm online.Algorithm
	Profile   string
	PerDest   []DestQoE
	// AvgStartupSec and AvgRebufferSec are the Table II quantities.
	AvgStartupSec  float64
	AvgRebufferSec float64
	ForestCost     float64
}

// Evaluate embeds the video service with the given algorithm on the
// Figure-13 testbed and plays the stream through the resulting forest.
// The chain is (transcoder, watermarker), |C| = 2.
func Evaluate(algo online.Algorithm, p Profile) (*QoE, error) {
	net := topology.Testbed(topology.Config{Seed: p.Seed})
	rng := rand.New(rand.NewSource(p.Seed))

	// Background congestion: draw available bandwidth per backbone link
	// and price links by their utilization so embeddings can avoid
	// congestion.
	avail := make([]float64, net.G.NumEdges())
	for e := 0; e < net.G.NumEdges(); e++ {
		bw := p.BWLowMbps + rng.Float64()*(p.BWHighMbps-p.BWLowMbps)
		avail[e] = bw
		load := p.LinkCapacityMbps - bw
		net.G.SetEdgeCost(graph.EdgeID(e), costmodel.Cost(load, p.LinkCapacityMbps))
	}
	// Two random video sources, four random destinations (Section VIII-D).
	picks := graph.SampleDistinct(rng, net.Access, 6)
	req := core.Request{Sources: picks[:2], Dests: picks[2:], ChainLen: 2}

	solver := sof.NewSolver(sof.FromGraph(net.G),
		sof.WithAlgorithm(sof.Algorithm(algo)),
		sof.WithVMs(net.VMs...))
	embedded, err := solver.Embed(context.Background(), sof.Request{
		Sources: req.Sources, Destinations: req.Dests, ChainLength: req.ChainLen,
	})
	if err != nil {
		return nil, fmt.Errorf("emu: embedding failed: %w", err)
	}
	forest := embedded.Internal()

	// Copies per physical edge: each live clone's parent link carries one
	// copy of the stream (multicast duplicates only at branch clones).
	copies := make(map[graph.EdgeID]int)
	for id := 0; id < forest.NumClones(); id++ {
		c := forest.Clone(core.CloneID(id))
		if !forest.CloneDeleted(core.CloneID(id)) && c.Parent != core.NoClone && c.ParentEdge != graph.NoEdge {
			copies[c.ParentEdge]++
		}
	}

	out := &QoE{Algorithm: algo, Profile: p.Name, ForestCost: forest.TotalCost()}
	for _, d := range req.Dests {
		cid, ok := forest.DestClone(d)
		if !ok {
			return nil, fmt.Errorf("emu: destination %d unserved", d)
		}
		rate := p.VideoBitrateMbps
		hops := 0
		vnfs := 0
		for cur := cid; cur != core.NoClone; {
			c := forest.Clone(cur)
			if c.VNF != 0 {
				vnfs++
			}
			if c.Parent != core.NoClone && c.ParentEdge != graph.NoEdge {
				hops++
				share := avail[c.ParentEdge] / float64(copies[c.ParentEdge])
				if share < rate {
					rate = share
				}
			}
			cur = c.Parent
		}
		// Playback consumes the transcoded rate (the transcoder adapts
		// the 8 Mbps source for congested delivery).
		playRate := p.TranscodedRateMbps
		if playRate == 0 || playRate > p.VideoBitrateMbps {
			playRate = p.VideoBitrateMbps
		}
		q := DestQoE{Dest: d, ThroughputMbps: rate}
		// Startup: fill the playout buffer at the delivery rate, plus the
		// fixed pipeline latency of the chain.
		q.StartupSec = p.StartupBufferSec*playRate/rate +
			float64(vnfs)*p.PerVNFDelaySec + float64(hops)*p.PerHopDelaySec
		// Re-buffering (fluid model): when the delivery rate is below the
		// playback bitrate, playback stalls for the accumulated deficit.
		if rate < playRate {
			q.RebufferSec = p.DurationSec * (playRate/rate - 1)
		}
		out.PerDest = append(out.PerDest, q)
		out.AvgStartupSec += q.StartupSec
		out.AvgRebufferSec += q.RebufferSec
	}
	n := float64(len(out.PerDest))
	out.AvgStartupSec /= n
	out.AvgRebufferSec /= n
	return out, nil
}

// EvaluateAveraged runs Evaluate over several seeds and averages the
// Table II quantities (the paper averages repeated plays).
func EvaluateAveraged(algo online.Algorithm, mkProfile func(seed int64) Profile, runs int) (*QoE, error) {
	agg := &QoE{Algorithm: algo}
	for s := 0; s < runs; s++ {
		q, err := Evaluate(algo, mkProfile(int64(s)))
		if err != nil {
			return nil, err
		}
		agg.Profile = q.Profile
		agg.AvgStartupSec += q.AvgStartupSec
		agg.AvgRebufferSec += q.AvgRebufferSec
		agg.ForestCost += q.ForestCost
	}
	agg.AvgStartupSec /= float64(runs)
	agg.AvgRebufferSec /= float64(runs)
	agg.ForestCost /= float64(runs)
	return agg, nil
}
