package emu

import (
	"math"
	"testing"

	"sof/internal/online"
)

func TestEvaluateBasics(t *testing.T) {
	q, err := Evaluate(online.AlgoSOFDA, Testbed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.PerDest) != 4 {
		t.Fatalf("per-dest results = %d, want 4", len(q.PerDest))
	}
	for _, d := range q.PerDest {
		if d.ThroughputMbps <= 0 || d.ThroughputMbps > 8+1e-9 {
			t.Errorf("dest %d throughput %v out of (0,8]", d.Dest, d.ThroughputMbps)
		}
		if d.StartupSec <= 0 {
			t.Errorf("dest %d startup %v", d.Dest, d.StartupSec)
		}
		if d.RebufferSec < 0 {
			t.Errorf("dest %d rebuffer %v", d.Dest, d.RebufferSec)
		}
		// Fluid-model identity: rebuffer = duration·(B/r − 1) when r < B.
		if d.ThroughputMbps < 6 {
			want := 137 * (6/d.ThroughputMbps - 1)
			if math.Abs(d.RebufferSec-want) > 1e-6 {
				t.Errorf("dest %d rebuffer %v, want %v", d.Dest, d.RebufferSec, want)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Evaluate(online.AlgoEST, Testbed(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(online.AlgoEST, Testbed(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgStartupSec != b.AvgStartupSec || a.AvgRebufferSec != b.AvgRebufferSec {
		t.Fatal("same seed produced different QoE")
	}
}

func TestEmulabProfileFaster(t *testing.T) {
	// More headroom and lower pipeline latency must not hurt QoE on
	// average (Table II: Emulab numbers are lower).
	var tb, em float64
	const runs = 10
	for s := int64(0); s < runs; s++ {
		qt, err := Evaluate(online.AlgoSOFDA, Testbed(s))
		if err != nil {
			t.Fatal(err)
		}
		qe, err := Evaluate(online.AlgoSOFDA, Emulab(s))
		if err != nil {
			t.Fatal(err)
		}
		tb += qt.AvgStartupSec
		em += qe.AvgStartupSec
	}
	if em >= tb {
		t.Errorf("emulab startup (%v) not lower than testbed (%v)", em/runs, tb/runs)
	}
}

// TestTableIIOrdering checks the paper's qualitative result: SOFDA's
// embedding yields lower startup latency and re-buffering than eNEMP and
// eST, averaged over runs.
func TestTableIIOrdering(t *testing.T) {
	const runs = 12
	res := map[online.Algorithm]*QoE{}
	for _, algo := range []online.Algorithm{online.AlgoSOFDA, online.AlgoENEMP, online.AlgoEST} {
		q, err := EvaluateAveraged(algo, Testbed, runs)
		if err != nil {
			t.Fatal(err)
		}
		res[algo] = q
	}
	t.Logf("testbed: SOFDA %.1fs/%.1fs  eNEMP %.1fs/%.1fs  eST %.1fs/%.1fs",
		res[online.AlgoSOFDA].AvgStartupSec, res[online.AlgoSOFDA].AvgRebufferSec,
		res[online.AlgoENEMP].AvgStartupSec, res[online.AlgoENEMP].AvgRebufferSec,
		res[online.AlgoEST].AvgStartupSec, res[online.AlgoEST].AvgRebufferSec)
	if res[online.AlgoSOFDA].AvgRebufferSec > res[online.AlgoEST].AvgRebufferSec+1e-6 {
		t.Errorf("SOFDA rebuffering %.2f exceeds eST %.2f",
			res[online.AlgoSOFDA].AvgRebufferSec, res[online.AlgoEST].AvgRebufferSec)
	}
}
