package exp

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"sof"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/dist"
	distrpc "sof/internal/dist/rpc"
	"sof/internal/topology"
)

// DistTransport selects how the leader reaches its domain controllers in
// the distributed comparison.
type DistTransport string

// Transports of the distributed comparison.
const (
	// TransportInproc uses dist.ChannelTransport: domains are worker
	// goroutines inside the leader process (the reference deployment).
	TransportInproc DistTransport = "inproc"
	// TransportRPC spins one net/rpc domain server per domain on
	// 127.0.0.1:0 and reaches them through dist/rpc.Transport, so every
	// candidate batch crosses a real gob-encoded TCP hop.
	TransportRPC DistTransport = "rpc"
)

// DistRow is one distributed-vs-centralized comparison: the same request
// solved by core.SOFDA and by a dist.Cluster with the given domain count,
// transport, and join mode. Match reports cost equality, the distributed
// correctness claim of Section VI. Streamed rows additionally report the
// per-embedding averages of the streaming counters: fragments consumed,
// dominated candidates pruned before allocating aux-graph state, and the
// leader-overlap window (time between the leader's first aux-graph
// insertion and the slowest domain finishing — identically zero for batch
// joins, where the leader cannot start early).
type DistRow struct {
	Net         NetKind
	Transport   DistTransport
	Streamed    bool
	Domains     int
	CentralCost float64
	DistCost    float64
	Match       bool
	CentralMS   float64
	DistMS      float64
	Fragments   float64
	Pruned      float64
	OverlapMS   float64
}

// DistTable runs the distributed comparison on the paper-default request
// for every (topology, domain count) combination, averaging costs and wall
// times over runs seeds. The centralized baseline is solved once per
// (topology, seed) and shared across domain counts — its cost does not
// depend on the partitioning. An empty transport means TransportInproc;
// streamed selects the server-streamed fragment join over the one-shot
// batch exchange.
func DistTable(kinds []NetKind, domainCounts []int, runs, inetNodes int, transport DistTransport, streamed bool) ([]DistRow, error) {
	if transport == "" {
		transport = TransportInproc
	}
	type instance struct {
		net       *topology.Network
		req       core.Request
		opts      *core.Options
		cost      float64
		centralMS float64
	}
	var rows []DistRow
	for _, kind := range kinds {
		insts := make([]instance, runs)
		for r := 0; r < runs; r++ {
			net, req, err := defaultRequest(kind, int64(r), inetNodes)
			if err != nil {
				return nil, err
			}
			opts := &core.Options{VMs: net.VMs}
			start := time.Now()
			central, err := newSolver(net).Embed(context.Background(), sof.Request{
				Sources: req.Sources, Destinations: req.Dests, ChainLength: req.ChainLen,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: centralized SOFDA on %s: %w", kind, err)
			}
			insts[r] = instance{
				net:       net,
				req:       req,
				opts:      opts,
				cost:      central.TotalCost(),
				centralMS: float64(time.Since(start).Microseconds()) / 1e3,
			}
		}
		for _, domains := range domainCounts {
			row := DistRow{Net: kind, Transport: transport, Streamed: streamed, Domains: domains, Match: true}
			for _, in := range insts {
				cluster, cleanup, err := newDistCluster(in.net, domains, transport, streamed)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				distributed, err := cluster.SOFDA(context.Background(), in.req, dist.Options{Core: in.opts})
				stats := cluster.StreamStats()
				cluster.Close()
				cleanup()
				if err != nil {
					return nil, fmt.Errorf("exp: distributed SOFDA on %s (%d domains, %s, streamed=%v): %w",
						kind, domains, transport, streamed, err)
				}
				row.DistMS += float64(time.Since(start).Microseconds()) / 1e3
				row.CentralCost += in.cost
				row.CentralMS += in.centralMS
				row.DistCost += distributed.TotalCost()
				row.Fragments += float64(stats.StreamedFragments)
				row.Pruned += float64(stats.PrunedCandidates)
				row.OverlapMS += float64(stats.OverlapNS) / 1e6
				if in.cost != distributed.TotalCost() {
					row.Match = false
				}
			}
			n := float64(runs)
			row.CentralCost /= n
			row.DistCost /= n
			row.CentralMS /= n
			row.DistMS /= n
			row.Fragments /= n
			row.Pruned /= n
			row.OverlapMS /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// newDistCluster builds the leader for one comparison point: an in-process
// channel cluster, or real net/rpc domain servers on loopback listeners
// plus an rpc transport pointed at them. cleanup tears the servers down.
func newDistCluster(n *topology.Network, domains int, transport DistTransport, streamed bool) (*dist.Cluster, func(), error) {
	switch transport {
	case TransportInproc:
		return dist.NewClusterWith(n.G, domains, dist.Config{Streaming: streamed}), func() {}, nil
	case TransportRPC:
		servers := make([]*distrpc.Server, 0, domains)
		addrs := make([]string, 0, domains)
		cleanup := func() {
			for _, s := range servers {
				s.Close()
			}
		}
		for i := 0; i < domains; i++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				cleanup()
				return nil, nil, fmt.Errorf("exp: listen for domain %d: %w", i, err)
			}
			srv, err := distrpc.Serve(lis, distrpc.NewDomainServer(n.G, chain.Options{}))
			if err != nil {
				lis.Close()
				cleanup()
				return nil, nil, fmt.Errorf("exp: serve domain %d: %w", i, err)
			}
			servers = append(servers, srv)
			addrs = append(addrs, srv.Addr())
		}
		tr := distrpc.NewTransport(addrs)
		cluster := dist.NewClusterWith(n.G, domains, dist.Config{Transport: tr, RetryBudget: 1, Streaming: streamed})
		return cluster, func() { tr.Close(); cleanup() }, nil
	default:
		return nil, nil, fmt.Errorf("exp: unknown dist transport %q", transport)
	}
}

// DefaultRequest builds the Section VIII-A default request on kind — the
// request a sofdomain-backed leader must use, since request randomness and
// topology construction share the seed the domain processes were started
// with.
func DefaultRequest(kind NetKind, seed int64, inetNodes int) (*topology.Network, core.Request, error) {
	return defaultRequest(kind, seed, inetNodes)
}

// defaultRequest builds the Section VIII-A default request on kind.
func defaultRequest(kind NetKind, seed int64, inetNodes int) (*topology.Network, core.Request, error) {
	n, err := buildNet(kind, DefaultVMs, seed, 1, inetNodes)
	if err != nil {
		return nil, core.Request{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	return n, core.Request{
		Sources:  n.RandomNodes(rng, DefaultSources),
		Dests:    n.RandomNodes(rng, DefaultDests),
		ChainLen: DefaultChain,
	}, nil
}

// FormatDistTable renders the rows as a text table. The frags/pruned/
// overlap columns are live only on streamed rows: batch joins move whole
// responses and give the leader no overlap window.
func FormatDistTable(rows []DistRow) string {
	var b strings.Builder
	b.WriteString("Distributed SOFDA (Section VI): per-domain candidate generation + leader completion\n")
	fmt.Fprintf(&b, "%-10s %-8s %-7s %8s %14s %14s %7s %12s %12s %8s %8s %10s\n",
		"network", "via", "join", "domains", "central-cost", "dist-cost", "match", "central-ms", "dist-ms",
		"frags", "pruned", "overlap-ms")
	for _, r := range rows {
		join := "batch"
		if r.Streamed {
			join = "stream"
		}
		fmt.Fprintf(&b, "%-10s %-8s %-7s %8d %14.2f %14.2f %7v %12.2f %12.2f %8.1f %8.1f %10.2f\n",
			r.Net, r.Transport, join, r.Domains, r.CentralCost, r.DistCost, r.Match, r.CentralMS, r.DistMS,
			r.Fragments, r.Pruned, r.OverlapMS)
	}
	return b.String()
}
