package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sof"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/dist"
	"sof/internal/topology"
)

// DistRow is one distributed-vs-centralized comparison: the same request
// solved by core.SOFDA and by a dist.Cluster with the given domain count.
// Match reports cost equality, the distributed correctness claim of
// Section VI.
type DistRow struct {
	Net         NetKind
	Domains     int
	CentralCost float64
	DistCost    float64
	Match       bool
	CentralMS   float64
	DistMS      float64
}

// DistTable runs the distributed comparison on the paper-default request
// for every (topology, domain count) combination, averaging costs and wall
// times over runs seeds. The centralized baseline is solved once per
// (topology, seed) and shared across domain counts — its cost does not
// depend on the partitioning.
func DistTable(kinds []NetKind, domainCounts []int, runs, inetNodes int) ([]DistRow, error) {
	type instance struct {
		net       *topology.Network
		req       core.Request
		opts      *core.Options
		cost      float64
		centralMS float64
	}
	var rows []DistRow
	for _, kind := range kinds {
		insts := make([]instance, runs)
		for r := 0; r < runs; r++ {
			net, req, err := defaultRequest(kind, int64(r), inetNodes)
			if err != nil {
				return nil, err
			}
			opts := &core.Options{VMs: net.VMs}
			start := time.Now()
			central, err := newSolver(net).Embed(context.Background(), sof.Request{
				Sources: req.Sources, Destinations: req.Dests, ChainLength: req.ChainLen,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: centralized SOFDA on %s: %w", kind, err)
			}
			insts[r] = instance{
				net:       net,
				req:       req,
				opts:      opts,
				cost:      central.TotalCost(),
				centralMS: float64(time.Since(start).Microseconds()) / 1e3,
			}
		}
		for _, domains := range domainCounts {
			row := DistRow{Net: kind, Domains: domains, Match: true}
			for _, in := range insts {
				cluster := dist.NewCluster(in.net.G, domains, chain.Options{})
				start := time.Now()
				distributed, err := cluster.SOFDA(context.Background(), in.req, dist.Options{Core: in.opts})
				cluster.Close()
				if err != nil {
					return nil, fmt.Errorf("exp: distributed SOFDA on %s (%d domains): %w", kind, domains, err)
				}
				row.DistMS += float64(time.Since(start).Microseconds()) / 1e3
				row.CentralCost += in.cost
				row.CentralMS += in.centralMS
				row.DistCost += distributed.TotalCost()
				if in.cost != distributed.TotalCost() {
					row.Match = false
				}
			}
			n := float64(runs)
			row.CentralCost /= n
			row.DistCost /= n
			row.CentralMS /= n
			row.DistMS /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// defaultRequest builds the Section VIII-A default request on kind.
func defaultRequest(kind NetKind, seed int64, inetNodes int) (*topology.Network, core.Request, error) {
	n, err := buildNet(kind, DefaultVMs, seed, 1, inetNodes)
	if err != nil {
		return nil, core.Request{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	return n, core.Request{
		Sources:  n.RandomNodes(rng, DefaultSources),
		Dests:    n.RandomNodes(rng, DefaultDests),
		ChainLen: DefaultChain,
	}, nil
}

// FormatDistTable renders the rows as a text table.
func FormatDistTable(rows []DistRow) string {
	var b strings.Builder
	b.WriteString("Distributed SOFDA (Section VI): per-domain candidate generation + leader completion\n")
	fmt.Fprintf(&b, "%-10s %8s %14s %14s %7s %12s %12s\n",
		"network", "domains", "central-cost", "dist-cost", "match", "central-ms", "dist-ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %14.2f %14.2f %7v %12.2f %12.2f\n",
			r.Net, r.Domains, r.CentralCost, r.DistCost, r.Match, r.CentralMS, r.DistMS)
	}
	return b.String()
}
