// Package exp is the benchmark harness: one runner per table/figure of the
// paper's evaluation (Section VIII). Each runner regenerates the same rows
// or series the paper plots, over the reconstructed topologies, and is
// shared by bench_test.go and cmd/experiments.
package exp

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sof"
	"sof/internal/costmodel"
	"sof/internal/emu"
	"sof/internal/online"
	"sof/internal/topology"
)

// Paper parameter sets (Section VIII-A).
var (
	SweepSources = []int{2, 8, 14, 20, 26}
	SweepDests   = []int{2, 4, 6, 8, 10}
	SweepVMs     = []int{5, 15, 25, 35, 45}
	SweepChain   = []int{3, 4, 5, 6, 7}
)

// Defaults per Section VIII-A.
const (
	DefaultSources = 14
	DefaultDests   = 6
	DefaultVMs     = 25
	DefaultChain   = 3
)

// NetKind selects the evaluation topology.
type NetKind string

// Topologies of Section VIII-A.
const (
	NetSoftLayer NetKind = "softlayer"
	NetCogent    NetKind = "cogent"
	NetInet      NetKind = "inet"
)

// BuildNet instantiates an evaluation topology deterministically: two
// processes calling it with equal arguments build bit-identical networks,
// including the graph's cost epoch — which is how cmd/sofdomain and a
// leader agree on the network without shipping it over the wire.
func BuildNet(kind NetKind, numVMs int, seed int64, inetNodes int) (*topology.Network, error) {
	return buildNet(kind, numVMs, seed, 1, inetNodes)
}

// buildNet instantiates the topology with the given VM count.
func buildNet(kind NetKind, numVMs int, seed int64, setupMult float64, inetNodes int) (*topology.Network, error) {
	cfg := topology.Config{NumVMs: numVMs, Seed: seed, SetupCostMultiplier: setupMult}
	switch kind {
	case NetSoftLayer:
		return topology.SoftLayer(cfg), nil
	case NetCogent:
		return topology.Cogent(cfg), nil
	case NetInet:
		if inetNodes == 0 {
			inetNodes = 1000
		}
		return topology.Inet(inetNodes, 2*inetNodes, inetNodes/10, cfg)
	default:
		return nil, fmt.Errorf("exp: unknown network %q", kind)
	}
}

// Row is one x-axis point of a figure: values keyed by algorithm name.
type Row struct {
	X      int
	Values map[string]float64
}

// Series is one sub-figure.
type Series struct {
	Title  string
	XLabel string
	Algos  []string
	Rows   []Row
}

// Format renders the series as an aligned text table.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s", s.Title, s.XLabel)
	for _, a := range s.Algos {
		fmt.Fprintf(&b, "%12s", a)
	}
	b.WriteByte('\n')
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-14d", r.X)
		for _, a := range s.Algos {
			if v, ok := r.Values[a]; ok {
				fmt.Fprintf(&b, "%12.1f", v)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SweepParam names the swept request dimension of Figs. 8–10.
type SweepParam string

// Swept dimensions.
const (
	ParamSources SweepParam = "sources"
	ParamDests   SweepParam = "dests"
	ParamVMs     SweepParam = "vms"
	ParamChain   SweepParam = "chain"
)

func sweepValues(p SweepParam) []int {
	switch p {
	case ParamSources:
		return SweepSources
	case ParamDests:
		return SweepDests
	case ParamVMs:
		return SweepVMs
	default:
		return SweepChain
	}
}

// CostSweep reproduces one sub-figure of Figs. 8 (SoftLayer, with the
// exact optimum standing in for CPLEX), 9 (Cogent), or 10 (Inet): total
// forest cost vs the swept parameter, averaged over runs random requests.
// withOptimal adds the sofexact line (paper: CPLEX, SoftLayer only).
func CostSweep(kind NetKind, param SweepParam, runs int, withOptimal bool, inetNodes int) (*Series, error) {
	algos := []string{"SOFDA", "eNEMP", "eST", "ST"}
	if withOptimal {
		algos = append(algos, "OPT")
	}
	s := &Series{
		Title:  fmt.Sprintf("cost vs #%s on %s", param, kind),
		XLabel: string(param),
		Algos:  algos,
	}
	for _, x := range sweepValues(param) {
		nSrc, nDst, nVM, chainLen := DefaultSources, DefaultDests, DefaultVMs, DefaultChain
		switch param {
		case ParamSources:
			nSrc = x
		case ParamDests:
			nDst = x
		case ParamVMs:
			nVM = x
		case ParamChain:
			chainLen = x
		}
		sums := make(map[string]float64, len(algos))
		counts := make(map[string]int, len(algos))
		for r := 0; r < runs; r++ {
			seed := int64(r)*1001 + int64(x)
			net, err := buildNet(kind, nVM, seed, 1, inetNodes)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			req := sof.Request{
				Sources:      net.RandomNodes(rng, min(nSrc, len(net.Access))),
				Destinations: net.RandomNodes(rng, min(nDst, len(net.Access))),
				ChainLength:  chainLen,
			}
			if chainLen > nVM {
				continue
			}
			// One session per instance: all algorithms of the comparison
			// share its shortest-path cache, so the per-point Dijkstra
			// work is paid once rather than once per algorithm.
			solver := newSolver(net)
			for _, a := range algos {
				f, err := runAlgo(solver, a, req)
				if err != nil {
					continue
				}
				sums[a] += f
				counts[a]++
			}
		}
		row := Row{X: x, Values: make(map[string]float64, len(algos))}
		for _, a := range algos {
			if counts[a] > 0 {
				row.Values[a] = sums[a] / float64(counts[a])
			}
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// newSolver opens the harness's standard session on net: all VMs of the
// topology as candidates and a small exact-solver branch budget — like the
// paper's CPLEX runs, the optimal line is produced only where optimality
// is proven quickly, so unprovable points fail fast instead of stalling a
// sweep.
func newSolver(net *topology.Network) *sof.Solver {
	return sof.NewSolver(sof.FromGraph(net.G),
		sof.WithVMs(net.VMs...),
		sof.WithExactBranchBudget(400))
}

// runAlgo embeds req through the session with the named algorithm. "OPT"
// maps to AlgorithmExact; its Dreyfus–Wagner core is exponential in the
// destination count, so oversized instances are refused up front.
func runAlgo(solver *sof.Solver, name string, req sof.Request) (float64, error) {
	algo := sof.Algorithm(name)
	if name == "OPT" {
		if len(req.Destinations) > 6 || req.ChainLength > 4 {
			return 0, fmt.Errorf("exp: instance too large for the exact solver")
		}
		algo = sof.AlgorithmExact
	}
	f, err := solver.EmbedAlgorithm(context.Background(), req, algo)
	if err != nil {
		return 0, err
	}
	return f.TotalCost(), nil
}

// Fig11 reproduces Figure 11: (a) cost and (b) average used VMs as the VM
// setup-cost multiplier sweeps 1x–9x for each chain length.
func Fig11(runs int) (costS, vmS *Series, err error) {
	mults := []int{1, 3, 5, 7, 9}
	var algoNames []string
	for _, c := range SweepChain {
		algoNames = append(algoNames, fmt.Sprintf("|C|=%d", c))
	}
	costS = &Series{Title: "Fig 11(a): cost vs setup-cost multiple", XLabel: "multiple", Algos: algoNames}
	vmS = &Series{Title: "Fig 11(b): used VMs vs setup-cost multiple", XLabel: "multiple", Algos: algoNames}
	for _, m := range mults {
		costRow := Row{X: m, Values: map[string]float64{}}
		vmRow := Row{X: m, Values: map[string]float64{}}
		for _, c := range SweepChain {
			var costSum, vmSum float64
			n := 0
			for r := 0; r < runs; r++ {
				seed := int64(r)*977 + int64(m*10+c)
				net := topology.SoftLayer(topology.Config{
					NumVMs: DefaultVMs, Seed: seed, SetupCostMultiplier: float64(m),
				})
				rng := rand.New(rand.NewSource(seed))
				req := sof.Request{
					Sources:      net.RandomNodes(rng, DefaultSources),
					Destinations: net.RandomNodes(rng, DefaultDests),
					ChainLength:  c,
				}
				f, err := newSolver(net).Embed(context.Background(), req)
				if err != nil {
					continue
				}
				costSum += f.TotalCost()
				vmSum += float64(len(f.UsedVMs()))
				n++
			}
			if n > 0 {
				costRow.Values[fmt.Sprintf("|C|=%d", c)] = costSum / float64(n)
				vmRow.Values[fmt.Sprintf("|C|=%d", c)] = vmSum / float64(n)
			}
		}
		costS.Rows = append(costS.Rows, costRow)
		vmS.Rows = append(vmS.Rows, vmRow)
	}
	return costS, vmS, nil
}

// Table1Row is one cell block of Table I: SOFDA runtime.
type Table1Row struct {
	Nodes   int
	Seconds map[int]float64 // keyed by |S|
}

// Table1 measures SOFDA's running time on Inet-style graphs of the paper's
// sizes (|V| from 1000 to 5000, |S| from 2 to 26).
func Table1(nodeSizes []int, srcCounts []int) ([]Table1Row, error) {
	if nodeSizes == nil {
		nodeSizes = []int{1000, 2000, 3000, 4000, 5000}
	}
	if srcCounts == nil {
		srcCounts = SweepSources
	}
	var out []Table1Row
	for _, n := range nodeSizes {
		row := Table1Row{Nodes: n, Seconds: make(map[int]float64, len(srcCounts))}
		net, err := topology.Inet(n, 2*n, n/5, topology.Config{NumVMs: DefaultVMs, Seed: int64(n)})
		if err != nil {
			return nil, err
		}
		for _, s := range srcCounts {
			rng := rand.New(rand.NewSource(int64(n + s)))
			req := sof.Request{
				Sources:      net.RandomNodes(rng, s),
				Destinations: net.RandomNodes(rng, DefaultDests),
				ChainLength:  DefaultChain,
			}
			// A fresh session per measurement keeps Table I a cold-cache
			// runtime, matching the paper's independent runs.
			start := time.Now()
			if _, err := newSolver(net).Embed(context.Background(), req); err != nil {
				return nil, err
			}
			row.Seconds[s] = time.Since(start).Seconds()
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I: SOFDA running time (seconds)\n|V|      ")
	var srcs []int
	for s := range rows[0].Seconds {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	for _, s := range srcs {
		fmt.Fprintf(&b, "  |S|=%-4d", s)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d", r.Nodes)
		for _, s := range srcs {
			fmt.Fprintf(&b, "  %-8.3f", r.Seconds[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig12 reproduces the online accumulative-cost curves: one series per
// algorithm over arrivals on the given network.
func Fig12(kind NetKind, steps int) (*Series, error) {
	algos := []online.Algorithm{online.AlgoSOFDA, online.AlgoENEMP, online.AlgoEST, online.AlgoST}
	s := &Series{
		Title:  fmt.Sprintf("Fig 12: accumulative cost on %s", kind),
		XLabel: "arrivals",
	}
	for _, a := range algos {
		s.Algos = append(s.Algos, string(a))
	}
	var cfg online.Config
	var net *topology.Network
	var err error
	switch kind {
	case NetSoftLayer:
		cfg = online.DefaultSoftLayerConfig()
		net, err = buildNet(kind, 85, 1, 1, 0) // 17 DCs × 5 VMs (Section VIII-A)
	case NetCogent:
		cfg = online.DefaultCogentConfig()
		net, err = buildNet(kind, 200, 1, 1, 0) // 40 DCs × 5 VMs
	default:
		return nil, fmt.Errorf("exp: Fig12 supports softlayer and cogent, got %q", kind)
	}
	if err != nil {
		return nil, err
	}
	curves := make(map[string][]online.Result, len(algos))
	for _, a := range algos {
		netCopy, err := buildNet(kind, len(net.VMs), 1, 1, 0)
		if err != nil {
			return nil, err
		}
		cfg.Seed = 42 // identical arrival sequence for every algorithm
		sim := online.NewSimulator(netCopy, a, cfg)
		curves[string(a)] = sim.Run(steps)
	}
	for i := 0; i < steps; i++ {
		row := Row{X: i + 1, Values: map[string]float64{}}
		for name, c := range curves {
			row.Values[name] = c[i].Accumulated
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Table2Row is one line of Table II.
type Table2Row struct {
	Algorithm      string
	StartupOurs    float64
	StartupEmulab  float64
	RebufferOurs   float64
	RebufferEmulab float64
}

// Table2 reproduces the QoE experiment on both emulator profiles.
func Table2(runs int) ([]Table2Row, error) {
	var out []Table2Row
	for _, a := range []online.Algorithm{online.AlgoSOFDA, online.AlgoENEMP, online.AlgoEST} {
		tb, err := emu.EvaluateAveraged(a, emu.Testbed, runs)
		if err != nil {
			return nil, err
		}
		em, err := emu.EvaluateAveraged(a, emu.Emulab, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Row{
			Algorithm:      string(a),
			StartupOurs:    tb.AvgStartupSec,
			StartupEmulab:  em.AvgStartupSec,
			RebufferOurs:   tb.AvgRebufferSec,
			RebufferEmulab: em.AvgRebufferSec,
		})
	}
	return out, nil
}

// FormatTable2 renders Table II.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: startup latency / re-buffering time (seconds)\n")
	b.WriteString("Algorithm   Startup(ours)  Startup(emulab)  Rebuffer(ours)  Rebuffer(emulab)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %13.1f  %15.1f  %14.1f  %16.1f\n",
			r.Algorithm, r.StartupOurs, r.StartupEmulab, r.RebufferOurs, r.RebufferEmulab)
	}
	return b.String()
}

// Fig7 returns sample points of the Fortz–Thorup cost function (Figure 7).
func Fig7() *Series {
	s := &Series{Title: "Fig 7: cost function (p=1)", XLabel: "load(%)", Algos: []string{"cost"}}
	for _, pct := range []int{0, 20, 33, 50, 66, 80, 90, 100, 110, 120} {
		s.Rows = append(s.Rows, Row{
			X:      pct,
			Values: map[string]float64{"cost": costmodel.Cost(float64(pct)/100, 1)},
		})
	}
	return s
}
