package exp

import (
	"strings"
	"testing"
)

func TestCostSweepSoftLayerWithOptimal(t *testing.T) {
	s, err := CostSweep(NetSoftLayer, ParamDests, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(SweepDests) {
		t.Fatalf("rows = %d, want %d", len(s.Rows), len(SweepDests))
	}
	for _, r := range s.Rows {
		sofda, ok := r.Values["SOFDA"]
		if !ok {
			t.Fatalf("x=%d missing SOFDA: %v", r.X, r.Values)
		}
		opt, ok := r.Values["OPT"]
		if !ok {
			// The optimal line appears only where branch-and-bound proves
			// optimality within budget (the paper's CPLEX has the same
			// practical limitation on larger instances).
			continue
		}
		if sofda < opt-1e-6 {
			t.Errorf("x=%d: SOFDA %.2f below the optimum %.2f", r.X, sofda, opt)
		}
		if sofda > 6*opt+1e-6 {
			t.Errorf("x=%d: SOFDA %.2f above 3·ρST×OPT %.2f", r.X, sofda, 6*opt)
		}
	}
	if !strings.Contains(s.Format(), "SOFDA") {
		t.Error("Format missing algorithm header")
	}
}

func TestCostSweepCogentChain(t *testing.T) {
	s, err := CostSweep(NetCogent, ParamChain, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(SweepChain) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Cost grows with chain length (Fig. 9(d) shape).
	first := s.Rows[0].Values["SOFDA"]
	last := s.Rows[len(s.Rows)-1].Values["SOFDA"]
	if last <= first {
		t.Errorf("cost should grow with |C|: %v -> %v", first, last)
	}
}

func TestFig11Shapes(t *testing.T) {
	costS, vmS, err := Fig11(1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 11(a): cost grows with the setup multiplier.
	k := "|C|=3"
	if costS.Rows[len(costS.Rows)-1].Values[k] <= costS.Rows[0].Values[k] {
		t.Errorf("cost did not grow with setup multiplier: %v", costS.Rows)
	}
	// Fig 11(b): used VMs never below the chain length.
	for _, r := range vmS.Rows {
		if r.Values[k] < 3 {
			t.Errorf("used VMs %v below chain length", r.Values[k])
		}
	}
}

func TestTable1SmallSizes(t *testing.T) {
	rows, err := Table1([]int{200, 400}, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for s, sec := range r.Seconds {
			if sec <= 0 {
				t.Errorf("|V|=%d |S|=%d: non-positive runtime", r.Nodes, s)
			}
		}
	}
	if !strings.Contains(FormatTable1(rows), "|S|=2") {
		t.Error("FormatTable1 missing header")
	}
}

func TestFig12SoftLayerMonotone(t *testing.T) {
	s, err := Fig12(NetSoftLayer, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range s.Rows {
		if v := r.Values["SOFDA"]; v < prev-1e-9 {
			t.Errorf("accumulated cost decreased: %v -> %v", prev, v)
		} else {
			prev = v
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	out := FormatTable2(rows)
	for _, want := range []string{"SOFDA", "eNEMP", "eST"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %s", want)
		}
	}
}

func TestFig7(t *testing.T) {
	s := Fig7()
	if len(s.Rows) == 0 {
		t.Fatal("empty series")
	}
	prev := -1.0
	for _, r := range s.Rows {
		if r.Values["cost"] < prev {
			t.Error("cost function not monotone")
		}
		prev = r.Values["cost"]
	}
}

func TestFailureTableSoftLayer(t *testing.T) {
	rows, err := FailureTable(NetSoftLayer, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Failures == 0 {
			t.Fatalf("row vm-share=%.2f injected no failures", r.VMShare)
		}
		if r.FastPath+r.Unrecoverable > r.Orphans {
			t.Fatalf("tier counters exceed orphans: %+v", r)
		}
	}
	out := FormatFailureTable(NetSoftLayer, rows)
	if out == "" || len(rows) == 0 {
		t.Fatal("empty table")
	}
}
