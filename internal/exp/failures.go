package exp

// Failure-recovery experiment: online arrivals with a seeded failure
// schedule, reporting blast radius, repair tier rates, recovery latency,
// and the repaired-vs-scratch cost comparison per failure mix.

import (
	"fmt"
	"strings"
	"time"

	"sof/internal/online"
)

// FailureRow is one failure mix (fraction of failures hitting VMs rather
// than links) of the recovery experiment.
type FailureRow struct {
	VMShare       float64
	Failures      int
	Sweeps        int
	Blast         int // forests touched across all sweeps
	Orphans       int
	FastPath      int
	Reembeds      int
	Unrecoverable int
	FastPathRate  float64
	RepairCost    float64 // summed repair cost deltas
	RepairedCost  float64 // post-repair cost of the damaged forests
	ScratchCost   float64 // cost of re-embedding them from scratch
	P99Latency    time.Duration
}

// FailureTable runs the recovery scenario on the given network for each
// VM-failure share, with identical arrival and schedule seeds per row so
// the mixes are comparable.
func FailureTable(kind NetKind, steps, events int) ([]FailureRow, error) {
	var cfg online.Config
	var numVMs int
	switch kind {
	case NetSoftLayer:
		cfg = online.DefaultSoftLayerConfig()
		numVMs = 85
	case NetCogent:
		cfg = online.DefaultCogentConfig()
		numVMs = 200
	default:
		return nil, fmt.Errorf("exp: FailureTable supports softlayer and cogent, got %q", kind)
	}
	cfg.Seed = 42
	var out []FailureRow
	for _, share := range []float64{0, 0.25, 0.5} {
		net, err := buildNet(kind, numVMs, 1, 1, 0)
		if err != nil {
			return nil, err
		}
		sim := online.NewSimulator(net, online.AlgoSOFDA, cfg)
		sim.SetFailureSchedule(online.FailureSchedule(net, steps, online.FailureConfig{
			Events: events, VMShare: share, Downtime: 3, Seed: 7,
		}))
		sim.CompareScratchCost(true)
		sim.Run(steps)
		st := sim.Recovery()
		out = append(out, FailureRow{
			VMShare:       share,
			Failures:      st.Failures,
			Sweeps:        st.Sweeps,
			Blast:         st.ForestsTouched,
			Orphans:       st.Orphans,
			FastPath:      st.FastPath,
			Reembeds:      st.Reembeds,
			Unrecoverable: st.Unrecoverable,
			FastPathRate:  st.FastPathRate(),
			RepairCost:    st.RepairCost,
			RepairedCost:  st.RepairedCost,
			ScratchCost:   st.ScratchCost,
			P99Latency:    st.LatencyP99(),
		})
	}
	return out, nil
}

// FormatFailureTable renders the recovery experiment.
func FormatFailureTable(kind NetKind, rows []FailureRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure recovery under live load (%s)\n", kind)
	b.WriteString("vm-share  fails  sweeps  blast  orphans  fastpath  reembed  lost  fp-rate  repair-cost  repaired  scratch  p99\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f  %-5d  %-6d  %-5d  %-7d  %-8d  %-7d  %-4d  %-7.2f  %-11.1f  %-8.1f  %-7.1f  %s\n",
			r.VMShare, r.Failures, r.Sweeps, r.Blast, r.Orphans, r.FastPath,
			r.Reembeds, r.Unrecoverable, r.FastPathRate, r.RepairCost,
			r.RepairedCost, r.ScratchCost, r.P99Latency.Round(time.Microsecond))
	}
	return b.String()
}
