package exp

// Lifecycle experiment: the arrival/departure scenario the capacitated
// Solver session enables. Each row runs the same seeded arrival stream
// under one admission setting and reports what the session admitted, what
// it turned away (split by cause), how much departed, and what the run
// earned — the competitive-admission comparison of Lukovszki & Schmid next
// to the paper's arrival-only Figure 12 setting.

import (
	"fmt"
	"strings"
	"time"

	"sof/internal/online"
	"sof/internal/topology"
)

// LifecycleRow is one admission setting of the lifecycle experiment.
type LifecycleRow struct {
	Label      string
	Arrivals   int
	Accepted   int
	AcceptRate float64
	// Rejections by cause: the footprint did not fit (capacity), the
	// utilization price exceeded the budget (admission), or no route
	// existed under the current masks (infeasible).
	CapacityRejects  int
	AdmissionRejects int
	Infeasible       int
	// Departed counts TTL expiries; Live is the leases still holding
	// resources when the run ended.
	Departed int
	Live     int
	// Revenue is the session's accumulated benefit (destinations of every
	// admitted request); Cost the accumulated embedding cost.
	Revenue float64
	Cost    float64
	// MeanDijkstras is the amortized shortest-path tree builds per arrival
	// — the warm-cache effect the scaled soak exists to demonstrate.
	MeanDijkstras float64
	P99           time.Duration
}

// lifecycleNet builds the row's network: identical for every row so the
// settings are comparable.
func lifecycleNet(kind NetKind, inetNodes int) (*topology.Network, int, error) {
	switch kind {
	case NetSoftLayer:
		net, err := buildNet(kind, 85, 1, 1, 0)
		return net, 0, err
	case NetCogent:
		net, err := buildNet(kind, 200, 1, 1, 0)
		return net, 0, err
	case NetInet:
		// Candidate generation scales with the VM pool per arrival — every
		// request sweeps an (source, last VM) chain per candidate — so the
		// scaled soak bounds it at 30: a 10k-node run then measures
		// per-arrival SSSP and cache behavior, not a 2000-VM candidate
		// sweep no deployment would configure. 30 matches the committed
		// BenchmarkLifecycle/scaled scenario.
		vms := inetNodes / 5
		if vms > 30 {
			vms = 30
		}
		net, err := buildNet(kind, vms, 1, 1, inetNodes)
		return net, inetNodes, err
	default:
		return nil, 0, fmt.Errorf("exp: LifecycleTable does not support %q", kind)
	}
}

// lifecycleBase is the shared load setting of every row: tighter links
// than the Figure 12 defaults (20 concurrent requests per link, 5 slots
// per VM) and small requests, so a few hundred arrivals actually reach the
// capacity and admission regimes instead of staying in the flat region.
func lifecycleBase(kind NetKind) online.Config {
	var cfg online.Config
	switch kind {
	case NetCogent:
		cfg = online.DefaultCogentConfig()
	default:
		cfg = online.DefaultSoftLayerConfig()
	}
	cfg.Seed = 42
	cfg.LinkCapacity = 100
	cfg.Demand = 5
	cfg.VMCapacity = 5
	cfg.SrcRange = [2]int{2, 4}
	cfg.DstRange = [2]int{3, 6}
	cfg.ChainLen = 2
	if kind == NetInet {
		// The scaled-soak regime, matching the committed
		// BenchmarkLifecycle/scaled scenario: single-source requests (the
		// SOFDA-SS embeds run on the real network through the session
		// oracle, with no per-request auxiliary clone), endpoints from a
		// bounded 64-node access pool so trees and chains actually
		// re-occur, capacity headroom that keeps saturation masks from
		// invalidating the epoch-keyed caches every few arrivals, and the
		// Fortz–Thorup repricing pass batched every 512 accepts — a full
		// pass after every accept would cold every arrival's shortest-path
		// state.
		cfg.LinkCapacity = 1000
		cfg.VMCapacity = 100
		cfg.SrcRange = [2]int{1, 1}
		cfg.DstRange = [2]int{3, 6}
		cfg.RepriceEvery = 512
		cfg.AccessPool = 64
	}
	return cfg
}

// LifecycleTable runs the seeded arrival stream of the given length under
// three settings: the paper's arrival-only regime (services never leave),
// finite lifetimes (TTL 5–15 arrival steps), and finite lifetimes under
// the adaptive utilization-exponential admission rule.
func LifecycleTable(kind NetKind, steps, inetNodes int) ([]LifecycleRow, error) {
	settings := []struct {
		label string
		mut   func(*online.Config)
	}{
		{"arrival-only", func(c *online.Config) {}},
		{"departures", func(c *online.Config) { c.TTLRange = [2]int{5, 15} }},
		{"adaptive", func(c *online.Config) {
			c.TTLRange = [2]int{5, 15}
			c.AdmissionMu = 16
			c.AdmissionBudget = 1
		}},
	}
	var out []LifecycleRow
	for _, set := range settings {
		net, _, err := lifecycleNet(kind, inetNodes)
		if err != nil {
			return nil, err
		}
		cfg := lifecycleBase(kind)
		set.mut(&cfg)
		algo := online.AlgoSOFDA
		if kind == NetInet {
			// The scaled soak embeds single-source requests through
			// SOFDA-SS; see lifecycleBase.
			algo = online.AlgoSOFDASS
		}
		sim := online.NewSimulator(net, algo, cfg)
		sim.Run(steps)
		st := sim.Lifecycle()
		out = append(out, LifecycleRow{
			Label:            set.label,
			Arrivals:         st.Arrivals,
			Accepted:         st.Accepted,
			AcceptRate:       st.AcceptRate(),
			CapacityRejects:  st.CapacityRejects,
			AdmissionRejects: st.AdmissionRejects,
			Infeasible:       st.Infeasible,
			Departed:         st.Departed,
			Live:             len(sim.Solver().Leases()),
			Revenue:          sim.Solver().Accumulated(),
			Cost:             sim.Accumulated(),
			MeanDijkstras:    st.MeanDijkstras(),
			P99:              st.LatencyP99(),
		})
	}
	return out, nil
}

// FormatLifecycleTable renders the lifecycle experiment.
func FormatLifecycleTable(kind NetKind, rows []LifecycleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Capacitated lifecycle embedding (%s)\n", kind)
	b.WriteString("setting       arrivals  accepted  rate   cap-rej  adm-rej  infeas  departed  live  revenue  acc-cost   dijk/arr  p99-embed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s  %-8d  %-8d  %-5.2f  %-7d  %-7d  %-6d  %-8d  %-4d  %-7.0f  %-9.1f  %-8.2f  %s\n",
			r.Label, r.Arrivals, r.Accepted, r.AcceptRate, r.CapacityRejects,
			r.AdmissionRejects, r.Infeasible, r.Departed, r.Live, r.Revenue,
			r.Cost, r.MeanDijkstras, r.P99.Round(time.Microsecond))
	}
	return b.String()
}
