package graph

// bucketQueue is a Dial-style calendar priority queue for Dijkstra over
// large graphs: items hash into circular buckets by key, and a pop scans
// only the current bucket for the exact minimum. It relies on Dijkstra's
// monotonicity — every inserted or decreased key is >= the last popped key
// — and on bounded key spread: all queued keys lie within [lastPopped,
// lastPopped + maxSpan], where maxSpan is the graph's maximum edge cost.
// With the bucket width chosen so that maxSpan covers at most nb-2
// buckets, the active window never wraps onto itself, so scanning
// circularly from the last popped bucket always finds the global minimum
// bucket first.
//
// Pop selects the minimum by (key, id) — the IndexedHeap's exact
// comparison — so a Dijkstra run driven by this queue settles nodes in the
// bit-identical order the heap produces, ties included. That equivalence
// is what lets the SSSP core switch queues by graph size without
// perturbing any downstream tree (see dijkstra.go).
//
// Like the IndexedHeap, the structure self-restores on drain: a run that
// pops everything it pushed leaves bidx entirely at -1, so a pooled queue
// is ready for the next run (possibly on a different graph and bucket
// width) without an O(n) reset.
type bucketQueue struct {
	// inv is 1/bucketWidth; bucket(k) = floor(k*inv) mod nb.
	inv     float64
	nb      int
	buckets [][]int32
	// bidx[v] is the bucket holding v, -1 when v is not queued.
	bidx []int32
	// slot[v] is v's index within buckets[bidx[v]].
	slot []int32
	// key[v] is v's current priority; meaningful only while queued.
	key   []float64
	count int
	// cur is the bucket of the last popped key; the next pop scans
	// circularly from it.
	cur int
}

// bucketCount is the fixed calendar size. 1024 buckets keep the per-pop
// scan short (the frontier spreads over the active window) while the
// bucket array stays small enough to live in a pooled arena.
const bucketCount = 1024

// configure sizes the queue for one run: ids in [0,n), keys spreading at
// most maxSpan apart. maxSpan must be positive and finite — callers fall
// back to the heap otherwise (an all-zero-cost graph has no usable bucket
// width).
func (q *bucketQueue) configure(n int, maxSpan float64) {
	if q.buckets == nil {
		q.buckets = make([][]int32, bucketCount)
		q.nb = bucketCount
	}
	// Width such that the active window [min, min+maxSpan] spans at most
	// nb-2 buckets: floor(k*inv) advances by at most maxSpan*inv+1 = nb-1
	// across the window, strictly less than one full lap.
	q.inv = float64(q.nb-2) / maxSpan
	q.grow(n)
}

// grow extends the addressable id range to at least n, preserving queued
// content. It never shrinks.
func (q *bucketQueue) grow(n int) {
	if n <= len(q.bidx) {
		return
	}
	old := len(q.bidx)
	bidx := make([]int32, n)
	copy(bidx, q.bidx)
	for i := old; i < n; i++ {
		bidx[i] = -1
	}
	q.bidx = bidx
	slot := make([]int32, n)
	copy(slot, q.slot)
	q.slot = slot
	key := make([]float64, n)
	copy(key, q.key)
	q.key = key
}

func (q *bucketQueue) len() int { return q.count }

func (q *bucketQueue) bucketOf(k float64) int {
	return int(int64(k*q.inv) % int64(q.nb))
}

// seed inserts the run's first item and anchors the scan cursor at its
// bucket. Only seed moves the cursor backward: if the queue transiently
// drains mid-run, the cursor stays at the last popped key's bucket, which
// still lower-bounds every later insert — re-anchoring to an arbitrary
// insert would strand smaller equal-key items (zero-cost edge chains)
// behind the cursor.
func (q *bucketQueue) seed(v int32, k float64) {
	q.cur = q.bucketOf(k)
	q.update(v, k)
}

// update inserts v with priority k, or moves it if already queued. Like
// the heap's Update it accepts any new key, but Dijkstra only ever
// decreases keys, which keeps the monotone window invariant.
func (q *bucketQueue) update(v int32, k float64) {
	idx := q.bucketOf(k)
	if b := q.bidx[v]; b >= 0 {
		q.key[v] = k
		if int(b) == idx {
			return
		}
		// Swap-delete from the old bucket, fixing the moved item's slot.
		old := q.buckets[b]
		s := q.slot[v]
		last := int32(len(old) - 1)
		old[s] = old[last]
		q.slot[old[s]] = s
		q.buckets[b] = old[:last]
		q.count--
	} else {
		q.key[v] = k
	}
	q.bidx[v] = int32(idx)
	q.slot[v] = int32(len(q.buckets[idx]))
	q.buckets[idx] = append(q.buckets[idx], v)
	q.count++
}

// pop removes and returns the item minimal by (key, id). It must not be
// called on an empty queue.
func (q *bucketQueue) pop() (int32, float64) {
	for len(q.buckets[q.cur]) == 0 {
		q.cur++
		if q.cur == q.nb {
			q.cur = 0
		}
	}
	b := q.buckets[q.cur]
	best, bi := b[0], 0
	bk := q.key[best]
	for i := 1; i < len(b); i++ {
		v := b[i]
		if kv := q.key[v]; kv < bk || (kv == bk && v < best) {
			best, bi, bk = v, i, kv
		}
	}
	last := len(b) - 1
	b[bi] = b[last]
	q.slot[b[bi]] = int32(bi)
	q.buckets[q.cur] = b[:last]
	q.bidx[best] = -1
	q.count--
	return best, bk
}
