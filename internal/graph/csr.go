package graph

// csrLayout is a compressed-sparse-row view of the adjacency structure:
// the arcs of node u occupy to[row[u]:row[u+1]] / eid[row[u]:row[u+1]],
// in the same order as the adj slices they mirror. Flat slices keep the
// Dijkstra inner loop on two contiguous arrays instead of chasing one
// slice header per node.
//
// The layout captures topology only — edge costs are read live from the
// edge table, so cost mutations (which bump the cost epoch but never
// change the structure) do not invalidate it. It is keyed by the node and
// edge counts: topology can only grow, so the pair identifies it exactly.
type csrLayout struct {
	nodes, edges int
	row          []int32
	to           []int32
	eid          []int32
}

// csr returns the current CSR view, building it on first use and after
// topology growth (e.g. the aux-graph construction, which clones the
// network and then adds virtual nodes and edges). Concurrent readers are
// safe against each other; like all Graph mutations, AddEdge concurrent
// with readers is not supported.
func (g *Graph) csr() *csrLayout {
	if c := g.csrCache.Load(); c != nil && c.nodes == len(g.nodes) && c.edges == len(g.edges) {
		return c
	}
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if c := g.csrCache.Load(); c != nil && c.nodes == len(g.nodes) && c.edges == len(g.edges) {
		return c
	}
	n := len(g.nodes)
	c := &csrLayout{
		nodes: n,
		edges: len(g.edges),
		row:   make([]int32, n+1),
		to:    make([]int32, 2*len(g.edges)),
		eid:   make([]int32, 2*len(g.edges)),
	}
	idx := int32(0)
	for u := 0; u < n; u++ {
		c.row[u] = idx
		for _, a := range g.adj[u] {
			c.to[idx] = int32(a.To)
			c.eid[idx] = int32(a.Edge)
			idx++
		}
	}
	c.row[n] = idx
	g.csrCache.Store(c)
	return c
}
