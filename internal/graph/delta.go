package graph

import (
	"math"
	"slices"
	"sync"
)

// Delta-stepping SSSP (Meyer & Sanders): distances advance bucket by
// bucket (bucket width Δ), light edges (cost ≤ Δ) are relaxed to a
// fixpoint inside the current bucket, heavy edges (cost > Δ) once per
// settled node when the bucket drains. Queued entries are lazy — a node
// is pushed again on every improvement and stale duplicates are skipped
// at drain time — so a relaxation is one compare plus an append, with no
// decrease-key bookkeeping at all.
//
// The variant exists for large graphs (see Config.DeltaSteppingMinNodes):
// the indexed heap pays O(log n) sift work per settle and the calendar
// queue an exact-minimum scan per pop, while a bucket here is drained
// wholesale. The arc partition is precomputed per cost epoch with the
// edge costs inlined (deltaLayout), so the inner loop runs over three
// contiguous arrays instead of chasing Edge records — on a 10k-node Inet
// graph that locality, not the asymptotics, is most of the win.
//
// Settled trees are bit-identical to the IndexedHeap Dijkstra. Distances
// are exact by the standard delta-stepping argument (every node is
// relaxed at its final distance before its bucket closes). Parents need
// one more rule: sequential Dijkstra records, for each node v, the first
// relaxation that reaches v's final distance, and relaxations happen in
// settle order. On graphs with strictly positive edge costs every node
// sharing a final distance is already queued at that distance before the
// first of them settles, so the settle order is plain (dist, id) — and
// the recorded parent is exactly the neighbour u minimizing (Dist[u], u)
// among those with Dist[u] + cost(u,v) = Dist[v], through u's first
// achieving arc in CSR order. The relaxation commit below reproduces
// that directly: a strict improvement takes the new parent, an exact tie
// replaces the recorded parent only when the candidate's (dist, id) key
// is strictly smaller. Intermediate commits made from not-yet-final
// distances are always overwritten later (a stale relaxation can never
// tie a final distance: its value is strictly larger), so the fixpoint
// tree equals the heap's regardless of the order in which workers'
// candidates merge. Zero-cost arcs break the plain settle order (a node
// can reach its final distance mid-plateau); those graphs — flagged at
// partition build — get the exact settle-order replay of replayPlateaus
// on top, off the zero-free hot path.
//
// Large frontiers fan out across a bounded worker pool: workers scan
// disjoint chunks of the frontier against a frozen distance array and
// emit (target, value, parent) candidates into per-worker buffers pooled
// in the Arena; the merge back into the shared arrays is single-threaded
// and applies the same commit rule, which is commutative at the fixpoint
// — so worker count and chunk boundaries cannot perturb the tree.

// deltaLayout is the per-cost-epoch arc partition: node u's light arcs
// occupy lto/leid/lcost[lrow[u]:lrow[u+1]] and its heavy arcs the hrow
// mirror, both preserving CSR (= insertion) order, with each arc's cost
// copied inline. Arcs whose edge or endpoint is blocked (failed or
// capacity-masked) are dropped at build time: every block transition
// advances the cost epoch, so the epoch key covers them exactly like a
// cost change.
type deltaLayout struct {
	epoch        uint64
	nodes, edges int
	// delta is the bucket width; light arcs have cost ≤ delta.
	delta float64
	maxC  float64
	// hasZero records whether any kept arc has cost 0. Zero-cost arcs
	// let a node reach its final distance only after its plateau starts
	// settling, which twists the heap's tie order away from plain
	// (dist, id) — runs over such graphs add the replayPlateaus pass.
	hasZero bool
	lrow    []int32
	lto     []int32
	leid    []int32
	lcost   []float64
	hrow    []int32
	hto     []int32
	heid    []int32
	hcost   []float64
}

// deltaBucketCount is the fixed calendar size of the delta-stepping
// run; like the bucket queue's calendar it is circular, and the width
// floor in deltaWidth keeps the active key window under one lap.
const deltaBucketCount = 1024

// deltaWidth picks the bucket width for a graph with the given maximum
// and mean edge cost. A narrow width (an eighth of the mean cost —
// tuned on 10k-node Inet-style graphs, where it beats meanC/2 by ~20%)
// keeps the light partition tiny, so most arcs are relaxed exactly once
// in the heavy pass and the per-bucket light fixpoint rarely iterates.
// The floor maxC/(nb-2) is the circular-window invariant — every
// in-flight key lies within maxC of the current bucket's base (heavy
// relaxations reach at most maxC ahead), so the active window must span
// at most nb-1 buckets.
func deltaWidth(maxC, meanC float64) float64 {
	w := meanC / 8
	if floor := maxC / float64(deltaBucketCount-2); w < floor {
		w = floor
	}
	return w
}

// deltaLayoutFor returns the current light/heavy partition, building it
// on first use and after any cost-epoch advance (cost mutation, failure
// or mask transition, explicit bump). Concurrent readers are safe;
// deltaMu serializes rebuilds so one epoch's partition is built once.
func (g *Graph) deltaLayoutFor() *deltaLayout {
	epoch := g.epoch.Load()
	if d := g.deltaCache.Load(); d != nil && d.epoch == epoch && d.nodes == len(g.nodes) && d.edges == len(g.edges) {
		return d
	}
	g.deltaMu.Lock()
	defer g.deltaMu.Unlock()
	// Re-read the epoch under the lock: a mutation that landed while we
	// waited must yield a partition stamped with the epoch its costs were
	// actually read at, not the one observed before the lock.
	epoch = g.epoch.Load()
	if d := g.deltaCache.Load(); d != nil && d.epoch == epoch && d.nodes == len(g.nodes) && d.edges == len(g.edges) {
		return d
	}
	d := g.buildDeltaLayout(epoch)
	g.deltaCache.Store(d)
	return d
}

// buildDeltaLayout partitions the CSR arcs at the given epoch. Callers
// hold deltaMu.
func (g *Graph) buildDeltaLayout(epoch uint64) *deltaLayout {
	c := g.csr()
	n := len(g.nodes)
	fs := g.block.blocked.Load()
	maxC, sum := 0.0, 0.0
	for i := range g.edges {
		cost := g.edges[i].Cost
		if cost > maxC {
			maxC = cost
		}
		sum += cost
	}
	meanC := 0.0
	if len(g.edges) > 0 {
		meanC = sum / float64(len(g.edges))
	}
	d := &deltaLayout{
		epoch: epoch,
		nodes: n,
		edges: len(g.edges),
		delta: deltaWidth(maxC, meanC),
		maxC:  maxC,
		lrow:  make([]int32, n+1),
		hrow:  make([]int32, n+1),
	}
	if maxC <= 0 || math.IsInf(maxC, 1) {
		// No usable width; callers fall back to the heap. Row arrays stay
		// zeroed so the layout is still well-formed.
		return d
	}
	// Count, then fill: two passes keep the arc arrays exactly sized and
	// CSR-ordered within each partition.
	var nl, nh int32
	for u := 0; u < n; u++ {
		d.lrow[u], d.hrow[u] = nl, nh
		if fs.NodeFailed(NodeID(u)) {
			continue
		}
		for i := c.row[u]; i < c.row[u+1]; i++ {
			if fs != nil && (fs.EdgeFailed(EdgeID(c.eid[i])) || fs.NodeFailed(NodeID(c.to[i]))) {
				continue
			}
			if g.edges[c.eid[i]].Cost <= d.delta {
				nl++
			} else {
				nh++
			}
		}
	}
	d.lrow[n], d.hrow[n] = nl, nh
	d.lto = make([]int32, nl)
	d.leid = make([]int32, nl)
	d.lcost = make([]float64, nl)
	d.hto = make([]int32, nh)
	d.heid = make([]int32, nh)
	d.hcost = make([]float64, nh)
	nl, nh = 0, 0
	for u := 0; u < n; u++ {
		if fs.NodeFailed(NodeID(u)) {
			continue
		}
		for i := c.row[u]; i < c.row[u+1]; i++ {
			if fs != nil && (fs.EdgeFailed(EdgeID(c.eid[i])) || fs.NodeFailed(NodeID(c.to[i]))) {
				continue
			}
			cost := g.edges[c.eid[i]].Cost
			if cost == 0 {
				d.hasZero = true
			}
			if cost <= d.delta {
				d.lto[nl], d.leid[nl], d.lcost[nl] = c.to[i], c.eid[i], cost
				nl++
			} else {
				d.hto[nh], d.heid[nh], d.hcost[nh] = c.to[i], c.eid[i], cost
				nh++
			}
		}
	}
	return d
}

// deltaCand is one relaxation candidate emitted by a worker: reach v
// through edge via parent with value nd, where pd was the parent's
// distance when the candidate was computed (the tie-break key).
type deltaCand struct {
	nd, pd float64
	v      int32
	parent int32
	via    int32
}

// deltaScratch is the delta-stepping half of an Arena: the circular
// bucket calendar, the frontier/settled staging lists, generation-stamped
// dedup marks, and the per-worker candidate buffers. Like the heap and
// the bucket queue it self-restores: a run drains every bucket it
// filled and the stamps are generation-keyed, so a pooled arena needs no
// O(n) reset between runs (possibly on different graphs).
type deltaScratch struct {
	buckets  [deltaBucketCount][]int32
	frontier []int32
	active   []int32
	settled  []int32
	// relaxGen/relaxedAt dedupe lazy duplicates: node v is skipped at
	// drain time when it was already relaxed at exactly dist[v] in this
	// run. roundGen dedupes the per-bucket settled list feeding the heavy
	// phase (and doubles as the reached-mark inside replayPlateaus).
	relaxGen  []uint64
	relaxedAt []float64
	roundGen  []uint64
	round     uint64
	bufs      [][]deltaCand
	// order/segEnds/pos serve replayPlateaus on graphs with zero-cost
	// arcs: order concatenates the per-bucket settled lists (segEnds
	// marking the bucket boundaries), pos receives each node's settle
	// position. Untouched on zero-free graphs.
	order   []int32
	segEnds []int32
	pos     []int32
}

func (ds *deltaScratch) ensure(n int) {
	if len(ds.relaxGen) >= n {
		return
	}
	grow := func(s []uint64) []uint64 {
		ns := make([]uint64, n)
		copy(ns, s)
		return ns
	}
	ds.relaxGen = grow(ds.relaxGen)
	ds.roundGen = grow(ds.roundGen)
	at := make([]float64, n)
	copy(at, ds.relaxedAt)
	ds.relaxedAt = at
	pos := make([]int32, n)
	copy(pos, ds.pos)
	ds.pos = pos
}

// deltaParallelMin is the frontier size below which a relaxation phase
// stays on the calling goroutine: fanning a few dozen nodes across
// workers costs more in synchronization than the scan itself. A
// variable only so tests can drive the worker path on small graphs.
var deltaParallelMin = 512

// DeltaStepping computes shortest paths from src with the delta-stepping
// variant regardless of the size gate, falling back to the heap only
// when the graph has no usable bucket width (all-zero or infinite edge
// costs). The returned tree is bit-identical to Dijkstra's; the variant
// exists for tests and benchmarks that pin the algorithm, where ordinary
// callers let the Config gate choose by graph size.
func DeltaStepping(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	a.ensure(n)
	if lay := g.deltaLayoutFor(); lay.delta > 0 {
		dijkstraDelta(g, lay, a, sp)
	} else {
		dijkstraHeap(g, g.csr(), a, sp)
	}
	return sp
}

// deltaRun bundles the per-run state the relaxation loops share. The
// hot loops live on its methods as plain slice scans, so the strict-
// improvement path (the overwhelmingly common case) runs without any
// closure indirection.
type deltaRun struct {
	dist   []float64
	parent []NodeID
	pedge  []EdgeID
	ds     *deltaScratch
	inv    float64
}

// tieBreak applies the deterministic parent rule to an exact tie: the
// recorded parent is replaced only when the candidate's (dist, id) key
// is strictly smaller, so equal-key duplicates (notably parallel arcs
// from one parent) keep the first arc in scan order. pd is the
// candidate parent's distance when it relaxed.
func (r *deltaRun) tieBreak(pd float64, v, par, via int32) {
	p := r.parent[v]
	if p == None {
		return // v is the source; its parent stays None
	}
	if dp := r.dist[p]; pd < dp || (pd == dp && NodeID(par) < p) {
		r.parent[v] = NodeID(par)
		r.pedge[v] = EdgeID(via)
	}
}

// relaxSerial scans the arcs [row[v]:row[v+1]] of every node in list
// against live distances, committing improvements in place: a strict
// improvement takes distance+parent and queues the target; an exact tie
// goes through tieBreak. Relaxing nodes always hold a finite distance,
// so nd is finite throughout. Returns the number of queue pushes.
func (r *deltaRun) relaxSerial(list []int32, row, to, eid []int32, cost []float64) int {
	dist := r.dist
	pushes := 0
	for _, v := range list {
		dv := dist[v]
		for i := row[v]; i < row[v+1]; i++ {
			w := to[i]
			nd := dv + cost[i]
			if dw := dist[w]; nd < dw {
				dist[w] = nd
				r.parent[w] = NodeID(v)
				r.pedge[w] = EdgeID(eid[i])
				b := int(int64(nd*r.inv)) & (deltaBucketCount - 1)
				r.ds.buckets[b] = append(r.ds.buckets[b], w)
				pushes++
			} else if nd == dw {
				r.tieBreak(dv, w, v, eid[i])
			}
		}
	}
	return pushes
}

// relaxParallel fans the list across the worker pool: each worker emits
// candidates against the frozen distance array, then the single-threaded
// merge commits them under the same rules as relaxSerial. Stale
// candidates (their parent improved mid-phase) are harmless: a stale
// value can never tie a final distance, and strict improvements are
// re-relaxed when the target is drained again.
func (r *deltaRun) relaxParallel(workers int, list []int32, row, to, eid []int32, cost []float64) int {
	if workers < 2 || len(list) < deltaParallelMin {
		return r.relaxSerial(list, row, to, eid, cost)
	}
	ds := r.ds
	w := workers
	if w > len(list) {
		w = len(list)
	}
	if len(ds.bufs) < w {
		ds.bufs = append(ds.bufs, make([][]deltaCand, w-len(ds.bufs))...)
	}
	dist := r.dist
	chunk := (len(list) + w - 1) / w
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo := k * chunk
		if lo >= len(list) {
			w = k
			break
		}
		hi := lo + chunk
		if hi > len(list) {
			hi = len(list)
		}
		wg.Add(1)
		go func(k int, part []int32) {
			defer wg.Done()
			buf := ds.bufs[k][:0]
			for _, v := range part {
				dv := dist[v]
				for i := row[v]; i < row[v+1]; i++ {
					if nd := dv + cost[i]; nd <= dist[to[i]] {
						buf = append(buf, deltaCand{nd: nd, pd: dv, v: to[i], parent: v, via: eid[i]})
					}
				}
			}
			ds.bufs[k] = buf
		}(k, list[lo:hi])
	}
	wg.Wait()
	pushes := 0
	for k := 0; k < w; k++ {
		for _, c := range ds.bufs[k] {
			if dw := dist[c.v]; c.nd < dw {
				dist[c.v] = c.nd
				r.parent[c.v] = NodeID(c.parent)
				r.pedge[c.v] = EdgeID(c.via)
				b := int(int64(c.nd*r.inv)) & (deltaBucketCount - 1)
				ds.buckets[b] = append(ds.buckets[b], c.v)
				pushes++
			} else if c.nd == dw {
				r.tieBreak(c.pd, c.v, c.parent, c.via)
			}
		}
	}
	return pushes
}

// dijkstraDelta fills sp in place through the delta-stepping rounds.
// The caller has verified lay.delta > 0. Blocked elements never appear
// in the layout, and a blocked source yields an all-unreachable tree
// exactly like the heap variant.
func dijkstraDelta(g *Graph, lay *deltaLayout, a *Arena, sp *ShortestPaths) {
	inf := math.Inf(1)
	for i := range sp.Dist {
		sp.Dist[i] = inf
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	fs := g.block.blocked.Load()
	if fs.NodeFailed(sp.Source) {
		return
	}
	n := len(sp.Dist)
	ds := &a.ds
	ds.ensure(n)
	a.gen++
	gen := a.gen
	workers := a.cfg.deltaWorkers()
	r := &deltaRun{dist: sp.Dist, parent: sp.Parent, pedge: sp.ParentEdge, ds: ds, inv: 1 / lay.delta}
	dist, inv := r.dist, r.inv

	dist[sp.Source] = 0
	cur := 0
	ds.buckets[cur] = append(ds.buckets[cur], int32(sp.Source))
	ds.order, ds.segEnds = ds.order[:0], ds.segEnds[:0]
	inFlight := 1
	for inFlight > 0 {
		for len(ds.buckets[cur]) == 0 {
			cur++
			if cur == deltaBucketCount {
				cur = 0
			}
		}
		// Light phase: drain the current bucket to a fixpoint. A node
		// whose distance improves while its bucket is open re-enters the
		// frontier and is relaxed again at the smaller distance.
		ds.settled = ds.settled[:0]
		ds.round++
		for len(ds.buckets[cur]) > 0 {
			ds.frontier, ds.buckets[cur] = ds.buckets[cur], ds.frontier[:0]
			inFlight -= len(ds.frontier)
			act := ds.active[:0]
			for _, v := range ds.frontier {
				d := dist[v]
				if int(int64(d*inv))&(deltaBucketCount-1) != cur {
					continue // improved into a different bucket; stale entry
				}
				if ds.relaxGen[v] == gen && ds.relaxedAt[v] == d {
					continue // duplicate at an already-relaxed distance
				}
				ds.relaxGen[v], ds.relaxedAt[v] = gen, d
				if ds.roundGen[v] != ds.round {
					ds.roundGen[v] = ds.round
					ds.settled = append(ds.settled, v)
				}
				act = append(act, v)
			}
			ds.active = act
			inFlight += r.relaxParallel(workers, act, lay.lrow, lay.lto, lay.leid, lay.lcost)
		}
		// Heavy phase: every node settled in this bucket relaxes its
		// heavy arcs once, at its now-final distance.
		inFlight += r.relaxParallel(workers, ds.settled, lay.hrow, lay.hto, lay.heid, lay.hcost)
		if lay.hasZero {
			ds.order = append(ds.order, ds.settled...)
			ds.segEnds = append(ds.segEnds, int32(len(ds.order)))
		}
	}
	if lay.hasZero {
		replayPlateaus(lay, a, sp)
	}
}

// replayPlateaus reassigns parents to the heap's exact choices on graphs
// with zero-cost arcs. The commit rule above picks, for each node v, the
// achiever minimizing (dist, id) — which equals the heap's pick exactly
// when every plateau (set of nodes sharing one final distance) is fully
// present in the heap before it starts settling. A zero-cost arc breaks
// that: a plateau member can reach its final distance only when a
// plateau-mate settles, so the heap's order within the plateau is the
// zero-arc propagation order (entries first, id-minimal among the
// currently reached), and the parent recorded for a node reached late is
// whichever mate reached it first — not the (dist, id) minimum.
//
// With the final distances in hand (phase 1 is exact regardless), the
// heap's dynamics replay cheaply: process plateaus in increasing
// distance, assigning each node its settle position as it pops. An entry
// node (one with an achieving arc from a strictly closer node) takes the
// below-achiever with the minimal settle position — all below-achievers
// popped before the plateau, so positions are known. Non-entries are
// reached through zero arcs during the plateau's own mini-run: pop the
// id-minimal reached node, scan its zero arcs, first reach wins the
// parent. The bucket rounds of phase 1 already yield the settled sets in
// increasing-base order, so plateaus are contiguous runs once each
// bucket segment is sorted by distance.
func replayPlateaus(lay *deltaLayout, a *Arena, sp *ShortestPaths) {
	ds := &a.ds
	dist, parent, pedge := sp.Dist, sp.Parent, sp.ParentEdge
	ord := ds.order
	start := 0
	for _, e := range ds.segEnds {
		sortByDist(ord[start:e], dist)
		start = int(e)
	}
	src := int32(sp.Source)
	h := &a.h
	var next int32
	for lo := 0; lo < len(ord); {
		v := ord[lo]
		d := dist[v]
		hi := lo + 1
		for hi < len(ord) && dist[ord[hi]] == d {
			hi++
		}
		if hi == lo+1 {
			// Singleton plateau — by far the common case. All achievers sit
			// strictly below, so the heap's parent is the minimal-position
			// achiever through its first achieving arc in CSR order
			// (strict < keeps the first arc of the winning parent); no
			// propagation can happen inside a one-node plateau.
			bestPos, bestU, bestE := int32(-1), int32(0), int32(0)
			for i := lay.lrow[v]; i < lay.lrow[v+1]; i++ {
				u := lay.lto[i]
				if du := dist[u]; du < d && du+lay.lcost[i] == d {
					if p := ds.pos[u]; bestPos < 0 || p < bestPos {
						bestPos, bestU, bestE = p, u, lay.leid[i]
					}
				}
			}
			for i := lay.hrow[v]; i < lay.hrow[v+1]; i++ {
				u := lay.hto[i]
				if du := dist[u]; du < d && du+lay.hcost[i] == d {
					if p := ds.pos[u]; bestPos < 0 || p < bestPos {
						bestPos, bestU, bestE = p, u, lay.heid[i]
					}
				}
			}
			if bestPos >= 0 {
				parent[v] = NodeID(bestU)
				pedge[v] = EdgeID(bestE)
			}
			ds.pos[v] = next
			next++
			lo = hi
			continue
		}
		ds.round++
		rnd := ds.round
		entries := 0
		hasInternalZero := false
		var bestPos, bestU, bestE int32
		// Entry scan: the minimal-position achiever from strictly below.
		// The light pass doubles as zero-arc detection — zero arcs are
		// always light, so a plateau without an internal zero arc is
		// recognized here for the heap-free path below.
		for _, v = range ord[lo:hi] {
			bestPos = -1
			for i := lay.lrow[v]; i < lay.lrow[v+1]; i++ {
				u := lay.lto[i]
				du := dist[u]
				if du < d && du+lay.lcost[i] == d {
					if p := ds.pos[u]; bestPos < 0 || p < bestPos {
						bestPos, bestU, bestE = p, u, lay.leid[i]
					}
				} else if lay.lcost[i] == 0 && du == d {
					hasInternalZero = true
				}
			}
			for i := lay.hrow[v]; i < lay.hrow[v+1]; i++ {
				u := lay.hto[i]
				if du := dist[u]; du < d && du+lay.hcost[i] == d {
					if p := ds.pos[u]; bestPos < 0 || p < bestPos {
						bestPos, bestU, bestE = p, u, lay.heid[i]
					}
				}
			}
			if bestPos >= 0 {
				parent[v] = NodeID(bestU)
				pedge[v] = EdgeID(bestE)
				ds.roundGen[v] = rnd
				entries++
			} else if v == src {
				ds.roundGen[v] = rnd
				entries++
			}
		}
		if !hasInternalZero {
			// No zero arc joins plateau mates, so every member is an entry
			// (anything else would be unreachable at this distance) and all
			// of them sit in the heap before the first pop: settle order is
			// plain ascending id. Equal distances make the in-plateau
			// reorder harmless to the segment's sorted-by-dist invariant.
			seg := ord[lo:hi]
			slices.Sort(seg)
			for _, v = range seg {
				ds.pos[v] = next
				next++
			}
			lo = hi
			continue
		}
		for _, v = range ord[lo:hi] {
			if ds.roundGen[v] == rnd {
				h.Update(v, float64(v))
			}
		}
		for h.Len() > 0 {
			u, _ := h.Pop()
			ds.pos[u] = next
			next++
			// Zero arcs are always light; a zero arc to an equal-distance
			// unreached mate hands it this parent (first reach wins, as in
			// the heap where later equal relaxations never replace).
			for i := lay.lrow[u]; i < lay.lrow[u+1]; i++ {
				if lay.lcost[i] == 0 {
					if w := lay.lto[i]; dist[w] == d && ds.roundGen[w] != rnd {
						ds.roundGen[w] = rnd
						parent[w] = NodeID(u)
						pedge[w] = EdgeID(lay.leid[i])
						h.Update(w, float64(w))
					}
				}
			}
		}
		lo = hi
	}
}

// sortByDist orders settled node ids by ascending distance: insertion
// sort on short runs, median-of-three quicksort above. A dedicated sort
// (rather than sort.Slice) keeps the replay pass off closure calls and
// reflected swaps on its hottest loop; equal-distance order is free —
// every plateau is re-ordered exactly afterwards.
func sortByDist(seg []int32, dist []float64) {
	for len(seg) > 16 {
		// Median-of-three pivot, middle position.
		m := len(seg) / 2
		if dist[seg[m]] < dist[seg[0]] {
			seg[m], seg[0] = seg[0], seg[m]
		}
		if dist[seg[len(seg)-1]] < dist[seg[0]] {
			seg[len(seg)-1], seg[0] = seg[0], seg[len(seg)-1]
		}
		if dist[seg[len(seg)-1]] < dist[seg[m]] {
			seg[len(seg)-1], seg[m] = seg[m], seg[len(seg)-1]
		}
		p := dist[seg[m]]
		i, j := 0, len(seg)-1
		for {
			for dist[seg[i]] < p {
				i++
			}
			for dist[seg[j]] > p {
				j--
			}
			if i >= j {
				break
			}
			seg[i], seg[j] = seg[j], seg[i]
			i++
			j--
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < len(seg)-j-1 {
			sortByDist(seg[:j+1], dist)
			seg = seg[j+1:]
		} else {
			sortByDist(seg[j+1:], dist)
			seg = seg[:j+1]
		}
	}
	for i := 1; i < len(seg); i++ {
		v := seg[i]
		dv := dist[v]
		j := i - 1
		for j >= 0 && dist[seg[j]] > dv {
			seg[j+1] = seg[j]
			j--
		}
		seg[j+1] = v
	}
}
