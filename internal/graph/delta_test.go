package graph

import (
	"math"
	"math/rand"
	"testing"
)

// deltaArena pins the delta-stepping variant on, regardless of graph
// size, on a private arena — the race-free replacement for mutating the
// deprecated package gates.
func deltaArena() *Arena {
	return NewArenaWith(Config{DeltaSteppingMinNodes: 1, BucketQueueMinNodes: -1})
}

// TestDeltaSteppingBitIdentical is the core equivalence claim: on random
// multigraphs (parallel edges, zero-cost links), the delta-stepping tree
// — distances, parents, AND parent edges — must be bit-for-bit the
// indexed-heap tree from every source. Distances alone would allow a
// different (equally short) tree; downstream cost-equality guarantees
// need the same tree.
func TestDeltaSteppingBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := randomMultigraph(seed)
		arena := deltaArena()
		for v := 0; v < g.NumNodes(); v++ {
			want := Dijkstra(g, NodeID(v)) // heap path: graph far below gates
			got := arena.Dijkstra(g, NodeID(v))
			for u := 0; u < g.NumNodes(); u++ {
				if got.Dist[u] != want.Dist[u] || got.Parent[u] != want.Parent[u] || got.ParentEdge[u] != want.ParentEdge[u] {
					t.Fatalf("seed %d src %d node %d: delta (%v,%d,%d) != heap (%v,%d,%d)",
						seed, v, u, got.Dist[u], got.Parent[u], got.ParentEdge[u],
						want.Dist[u], want.Parent[u], want.ParentEdge[u])
				}
			}
			verifyTree(t, g, got)
		}
	}
}

// TestDeltaSteppingForcedMatchesHeap pins the exported forcing entry
// point (used by benchmarks) to the heap tree as well.
func TestDeltaSteppingForcedMatchesHeap(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomMultigraph(seed)
		want := Dijkstra(g, 0)
		got := DeltaStepping(g, 0)
		for u := 0; u < g.NumNodes(); u++ {
			if got.Dist[u] != want.Dist[u] || got.Parent[u] != want.Parent[u] || got.ParentEdge[u] != want.ParentEdge[u] {
				t.Fatalf("seed %d node %d: DeltaStepping differs from heap", seed, u)
			}
		}
	}
}

// TestDeltaSteppingBatch drives the variant through DijkstraBatch (the
// path the chain oracle's tree warming takes) with duplicate sources.
func TestDeltaSteppingBatch(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomMultigraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x3c3c))
		sources := make([]NodeID, 0, 6)
		for i := 0; i < 5; i++ {
			sources = append(sources, NodeID(rng.Intn(g.NumNodes())))
		}
		sources = append(sources, sources[0]) // duplicate on purpose
		batch := DijkstraBatch(g, sources, deltaArena())
		if batch[len(batch)-1] != batch[0] {
			t.Fatalf("seed %d: duplicate source not aliased", seed)
		}
		for i, s := range sources {
			want := Dijkstra(g, s)
			got := batch[i]
			for u := 0; u < g.NumNodes(); u++ {
				if got.Dist[u] != want.Dist[u] || got.Parent[u] != want.Parent[u] || got.ParentEdge[u] != want.ParentEdge[u] {
					t.Fatalf("seed %d source %d node %d: batch delta differs from heap", seed, s, u)
				}
			}
		}
	}
}

// TestDeltaSteppingBlockedElements covers the Blocked() consistency
// claim: failed and capacity-masked edges and nodes (both mark layers at
// once) must be invisible to the delta-stepping relaxation exactly as
// they are to the heap's, including a blocked source yielding an
// all-unreachable tree. The arc partition drops blocked arcs at build
// time, so this also pins the epoch-keyed invalidation: every
// fail/mask/restore transition must yield a fresh partition.
func TestDeltaSteppingBlockedElements(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	arena := deltaArena()
	for trial := 0; trial < 25; trial++ {
		g := RandomConnected(RandomConfig{Nodes: 40, ExtraEdges: 60, MaxEdge: 5}, int64(trial))
		for i := 0; i < 5; i++ {
			g.FailEdge(EdgeID(rng.Intn(g.NumEdges())))
		}
		for i := 0; i < 3; i++ {
			g.MaskEdge(EdgeID(rng.Intn(g.NumEdges())))
		}
		g.FailNode(NodeID(rng.Intn(g.NumNodes())))
		g.MaskNode(NodeID(rng.Intn(g.NumNodes())))
		for trial2 := 0; trial2 < 3; trial2++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			want := Dijkstra(g, src)
			got := arena.Dijkstra(g, src)
			for u := 0; u < g.NumNodes(); u++ {
				if got.Dist[u] != want.Dist[u] || got.Parent[u] != want.Parent[u] || got.ParentEdge[u] != want.ParentEdge[u] {
					t.Fatalf("trial %d src %d node %d: delta (%v,%d,%d) != heap (%v,%d,%d) under blocks",
						trial, src, u, got.Dist[u], got.Parent[u], got.ParentEdge[u],
						want.Dist[u], want.Parent[u], want.ParentEdge[u])
				}
			}
		}
		// Flip some state back and re-check: the partition must not serve
		// the pre-transition epoch.
		g.RestoreAll()
		g.UnmaskAll()
		src := NodeID(rng.Intn(g.NumNodes()))
		want := Dijkstra(g, src)
		got := arena.Dijkstra(g, src)
		for u := 0; u < g.NumNodes(); u++ {
			if got.Dist[u] != want.Dist[u] {
				t.Fatalf("trial %d: stale partition after restore: Dist[%d] = %v, want %v",
					trial, u, got.Dist[u], want.Dist[u])
			}
		}
	}
}

// TestDeltaSteppingBlockedSource: a failed or masked source reaches
// nothing, not even itself — same contract as the heap variant.
func TestDeltaSteppingBlockedSource(t *testing.T) {
	g := RandomConnected(RandomConfig{Nodes: 20, ExtraEdges: 20, MaxEdge: 5}, 3)
	arena := deltaArena()
	g.FailNode(4)
	sp := arena.Dijkstra(g, 4)
	for v := range sp.Dist {
		if !math.IsInf(sp.Dist[v], 1) || sp.Parent[v] != None {
			t.Fatalf("failed source: node %d reachable", v)
		}
	}
	g.RestoreNode(4)
	g.MaskNode(4)
	sp = arena.Dijkstra(g, 4)
	for v := range sp.Dist {
		if !math.IsInf(sp.Dist[v], 1) {
			t.Fatalf("masked source: node %d reachable", v)
		}
	}
}

// TestDeltaSteppingZeroCostFallback: an all-zero-cost graph has no
// usable bucket width; the gate must fall back to the heap instead of
// dividing by zero, and results must stay correct — for the gated path
// and the forcing entry point alike.
func TestDeltaSteppingZeroCostFallback(t *testing.T) {
	g := New(5, 6)
	for i := 0; i < 5; i++ {
		g.AddSwitch("")
	}
	for i := 1; i < 5; i++ {
		g.MustAddEdge(NodeID(i-1), NodeID(i), 0)
	}
	for _, sp := range []*ShortestPaths{
		deltaArena().Dijkstra(g, 2),
		DeltaStepping(g, 2),
	} {
		for v := 0; v < 5; v++ {
			if sp.Dist[v] != 0 {
				t.Fatalf("Dist[%d] = %v, want 0", v, sp.Dist[v])
			}
		}
	}
}

// TestDeltaSteppingArenaReuseAcrossGraphs drives one arena through
// graphs of different sizes and widths (so the calendar, dedup stamps,
// and partition all change between runs), catching stale scratch leaking
// across runs — the reuse pattern of pooled arenas and batch callers.
func TestDeltaSteppingArenaReuseAcrossGraphs(t *testing.T) {
	arena := deltaArena()
	for round := 0; round < 3; round++ {
		for _, seed := range []int64{3, 11, 5, 23, 2, 31, 4} {
			g := randomMultigraph(seed)
			got := arena.Dijkstra(g, 0)
			want := BellmanFord(g, 0)
			for v := 0; v < g.NumNodes(); v++ {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("round %d seed %d: Dist[%d] = %v, want %v",
						round, seed, v, got.Dist[v], want.Dist[v])
				}
			}
			verifyTree(t, g, got)
		}
	}
}

// TestDeltaSteppingWorkersBitIdentical forces the worker fan-out on
// (threshold lowered so even small frontiers dispatch) across several
// worker counts and demands the heap tree bit-for-bit: worker count and
// chunk boundaries must never perturb results. Not parallel: it adjusts
// the package-private dispatch threshold.
func TestDeltaSteppingWorkersBitIdentical(t *testing.T) {
	oldMin := deltaParallelMin
	deltaParallelMin = 1
	defer func() { deltaParallelMin = oldMin }()
	g := RandomConnected(RandomConfig{Nodes: 600, ExtraEdges: 1800, VMFraction: 0.2, MaxEdge: 10, MaxSetup: 5}, 9)
	want := Dijkstra(g, 0)
	for _, workers := range []int{1, 2, 3, 8} {
		arena := NewArenaWith(Config{
			DeltaSteppingMinNodes: 1,
			BucketQueueMinNodes:   -1,
			DeltaSteppingWorkers:  workers,
		})
		got := arena.Dijkstra(g, 0)
		for u := 0; u < g.NumNodes(); u++ {
			if got.Dist[u] != want.Dist[u] || got.Parent[u] != want.Parent[u] || got.ParentEdge[u] != want.ParentEdge[u] {
				t.Fatalf("workers=%d node %d: delta (%v,%d,%d) != heap (%v,%d,%d)",
					workers, u, got.Dist[u], got.Parent[u], got.ParentEdge[u],
					want.Dist[u], want.Parent[u], want.ParentEdge[u])
			}
		}
	}
}

// TestDeltaLayoutEpochInvalidation pins the partition memo key: a cost
// change must yield a fresh partition (arc moves between light and
// heavy), and an unchanged-epoch re-fetch must serve the same one.
func TestDeltaLayoutEpochInvalidation(t *testing.T) {
	g := New(3, 2)
	g.AddSwitch("")
	g.AddSwitch("")
	g.AddSwitch("")
	e0 := g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 100)
	lay := g.deltaLayoutFor()
	if again := g.deltaLayoutFor(); again != lay {
		t.Fatal("same-epoch re-fetch rebuilt the partition")
	}
	if lay.lrow[1]-lay.lrow[0] != 1 || lay.hrow[1]-lay.hrow[0] != 0 {
		t.Fatalf("cheap arc not light: lrow=%v hrow=%v", lay.lrow[:2], lay.hrow[:2])
	}
	// Raising the cheap edge past the width must move it to heavy in the
	// rebuilt partition.
	g.SetEdgeCost(e0, 1000)
	lay2 := g.deltaLayoutFor()
	if lay2 == lay {
		t.Fatal("cost change did not invalidate the partition")
	}
	if lay2.hrow[1]-lay2.hrow[0] != 1 {
		t.Fatalf("re-priced arc not heavy: hrow=%v", lay2.hrow[:2])
	}
}

// TestConfigGateResolution pins the per-arena gate semantics: zero
// defers to the package defaults, positive overrides, negative disables
// — exercised through pick, the single decision point every entry path
// shares.
func TestConfigGateResolution(t *testing.T) {
	g := randomMultigraph(5) // 8–48 nodes, positive finite costs
	n := g.NumNodes()
	cases := []struct {
		name string
		cfg  Config
		want ssspVariant
	}{
		{"defaults-small-graph", Config{}, variantHeap},
		{"delta-forced", Config{DeltaSteppingMinNodes: 1}, variantDelta},
		{"bucket-forced", Config{BucketQueueMinNodes: 1, DeltaSteppingMinNodes: -1}, variantBucket},
		{"delta-wins-past-both", Config{DeltaSteppingMinNodes: 1, BucketQueueMinNodes: 1}, variantDelta},
		{"both-disabled", Config{DeltaSteppingMinNodes: -1, BucketQueueMinNodes: -1}, variantHeap},
		{"threshold-above-n", Config{DeltaSteppingMinNodes: n + 1, BucketQueueMinNodes: n + 1}, variantHeap},
	}
	for _, tc := range cases {
		a := NewArenaWith(tc.cfg)
		if got, _, _ := a.pick(g, n); got != tc.want {
			t.Errorf("%s: pick = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Worker resolution: 0 = GOMAXPROCS (≥1), negative = serial.
	if w := (Config{DeltaSteppingWorkers: -1}).deltaWorkers(); w != 1 {
		t.Errorf("negative workers resolve to %d, want 1", w)
	}
	if w := (Config{DeltaSteppingWorkers: 7}).deltaWorkers(); w != 7 {
		t.Errorf("explicit workers resolve to %d, want 7", w)
	}
	if w := (Config{}).deltaWorkers(); w < 1 {
		t.Errorf("default workers resolve to %d, want ≥1", w)
	}
}
