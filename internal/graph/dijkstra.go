package graph

import (
	"math"
	"runtime"
	"sync"
)

// ShortestPaths holds the single-source shortest-path tree computed by
// Dijkstra. Distances are in total edge connection cost; node costs are not
// included (the chain package layers setup costs on top).
type ShortestPaths struct {
	Source NodeID
	// Dist[v] is the cost of the shortest path Source→v, +Inf if
	// unreachable.
	Dist []float64
	// Parent[v] is the predecessor of v on the shortest path, None for the
	// source and unreachable nodes.
	Parent []NodeID
	// ParentEdge[v] is the edge used to reach v from Parent[v].
	ParentEdge []EdgeID
}

// Reachable reports whether t is reachable from the source.
func (sp *ShortestPaths) Reachable(t NodeID) bool {
	return !math.IsInf(sp.Dist[t], 1)
}

// PathTo returns the node sequence Source…t inclusive, or nil if t is
// unreachable.
func (sp *ShortestPaths) PathTo(t NodeID) []NodeID {
	if !sp.Reachable(t) {
		return nil
	}
	var rev []NodeID
	for v := t; v != None; v = sp.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgesTo returns the edge sequence of the shortest path Source…t, or nil if
// t is unreachable. The result has len(PathTo(t))-1 entries.
func (sp *ShortestPaths) EdgesTo(t NodeID) []EdgeID {
	if !sp.Reachable(t) {
		return nil
	}
	var rev []EdgeID
	for v := t; sp.Parent[v] != None; v = sp.Parent[v] {
		rev = append(rev, sp.ParentEdge[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Config selects the SSSP variant (and its resources) for runs through
// one arena. Every field follows the same convention: zero means "use
// the package default", a positive value overrides it, and a negative
// value disables the variant outright. Configs travel with an Arena
// (NewArenaWith), so concurrent tests and batch callers pin variants
// without mutating process-wide state.
type Config struct {
	// BucketQueueMinNodes gates the calendar/bucket queue by graph size:
	// runs over graphs with at least this many nodes use it (when the
	// maximum edge cost admits a bucket width). 0 means the package
	// default (BucketQueueMinNodes); negative disables the queue.
	BucketQueueMinNodes int
	// DeltaSteppingMinNodes gates the delta-stepping variant the same
	// way, and is checked first: past both gates, delta-stepping wins.
	// 0 means the package default (DeltaSteppingMinNodes); negative
	// disables the variant.
	DeltaSteppingMinNodes int
	// DeltaSteppingWorkers bounds the delta-stepping relaxation pool:
	// 0 means GOMAXPROCS, 1 or negative keeps every phase on the calling
	// goroutine, larger values cap the fan-out. Worker count never
	// affects results (see delta.go), only wall-clock.
	DeltaSteppingWorkers int
}

// deltaWorkers resolves the worker bound for one delta-stepping run.
func (c Config) deltaWorkers() int {
	switch {
	case c.DeltaSteppingWorkers > 0:
		return c.DeltaSteppingWorkers
	case c.DeltaSteppingWorkers < 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// resolveGate maps a Config gate field to an effective node threshold:
// 0 defers to the package default, negative disables (a threshold no
// graph reaches).
func resolveGate(v, def int) int {
	switch {
	case v > 0:
		return v
	case v < 0:
		return math.MaxInt
	default:
		return def
	}
}

// Arena is the reusable scratch state of the SSSP core: the indexed heap
// (whose position index self-restores on drain), the bucket queue and
// delta-stepping scratch for large graphs, and a generation-stamped
// settled marker, so one arena is ready for the next run without any
// O(n) reset. Batch callers that fan many runs out (the chain oracle's
// tree warming, KMB's closure phase) hold one Arena across the whole
// batch instead of a pool round-trip per source. The result arrays are
// NOT part of the arena — callers (the chain oracle in particular)
// retain ShortestPaths indefinitely.
//
// An Arena is not safe for concurrent use; concurrent runs take separate
// arenas (or pass nil and share the pool).
type Arena struct {
	h    IndexedHeap
	bq   bucketQueue
	done []uint64
	gen  uint64
	cfg  Config
	ds   deltaScratch
}

// NewArena returns an empty arena using the package-default Config.
// Passing nil to DijkstraBatch borrows one from an internal pool instead,
// so an explicit arena is only worth holding across several batches.
func NewArena() *Arena { return new(Arena) }

// NewArenaWith returns an arena whose runs resolve variant gates and
// worker bounds from cfg instead of the package defaults. This is the
// race-free replacement for mutating the deprecated package globals:
// each test or batch pins its variant on its own arena.
func NewArenaWith(cfg Config) *Arena { return &Arena{cfg: cfg} }

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

func (a *Arena) ensure(n int) {
	a.h.Grow(n)
	if len(a.done) < n {
		done := make([]uint64, n)
		copy(done, a.done)
		a.done = done
	}
}

// BucketQueueMinNodes is the package default for Config.
// BucketQueueMinNodes: runs over graphs with at least this many nodes use
// the calendar queue (when the maximum edge cost admits one), smaller
// runs keep the indexed heap, whose constants win on small frontiers.
// The queues pop in the bit-identical (key, id) order, so the threshold
// tunes speed only — the computed trees cannot differ.
//
// Deprecated: mutating this global races with concurrent runs (including
// parallel tests); pin the variant per run with NewArenaWith instead. The
// variable remains as the default that zero Config fields resolve to.
var BucketQueueMinNodes = 8192

// DeltaSteppingMinNodes is the package default for Config.
// DeltaSteppingMinNodes, gating the delta-stepping variant exactly like
// BucketQueueMinNodes gates the calendar queue. Delta-stepping is checked
// first, so on graphs past both gates it wins.
//
// Deprecated: like BucketQueueMinNodes, prefer NewArenaWith.
var DeltaSteppingMinNodes = 8192

// ssspVariant names the queue discipline one run will use.
type ssspVariant uint8

const (
	variantHeap ssspVariant = iota
	variantBucket
	variantDelta
)

// pick selects the SSSP variant for runs over g with n nodes under a's
// Config. Delta-stepping and the bucket queue both need a positive
// finite maximum edge cost for their bucket widths (an all-zero-cost
// graph has no usable width and falls back to the heap). The bucket
// maxC is returned for variantBucket; the arc partition for
// variantDelta.
func (a *Arena) pick(g *Graph, n int) (ssspVariant, float64, *deltaLayout) {
	if n >= resolveGate(a.cfg.DeltaSteppingMinNodes, DeltaSteppingMinNodes) {
		if lay := g.deltaLayoutFor(); lay.delta > 0 {
			return variantDelta, 0, lay
		}
	}
	if n >= resolveGate(a.cfg.BucketQueueMinNodes, BucketQueueMinNodes) {
		if maxC := g.maxEdgeCost(); maxC > 0 && !math.IsInf(maxC, 1) {
			return variantBucket, maxC, nil
		}
	}
	return variantHeap, 0, nil
}

// Dijkstra computes shortest paths from src over edge connection costs.
// The traversal runs on the graph's flat CSR adjacency with a pooled
// arena, so a run allocates only its result arrays. Ties are settled
// toward the smaller node id, making the returned tree (not just the
// distances) deterministic — with every queue discipline (see Config).
func Dijkstra(g *Graph, src NodeID) *ShortestPaths {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return a.Dijkstra(g, src)
}

// Dijkstra is the per-arena form of the package-level Dijkstra: the run
// resolves its variant gates and worker bounds from a's Config (see
// NewArenaWith) and reuses a's scratch.
func (a *Arena) Dijkstra(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	a.ensure(n)
	switch v, maxC, lay := a.pick(g, n); v {
	case variantDelta:
		dijkstraDelta(g, lay, a, sp)
	case variantBucket:
		a.bq.configure(n, maxC)
		dijkstraBucket(g, g.csr(), a, sp)
	default:
		dijkstraHeap(g, g.csr(), a, sp)
	}
	return sp
}

// DijkstraBatch runs Dijkstra from every source through one shared arena
// and one CSR fetch, with the per-source result arrays carved from three
// batch-wide backing allocations — a batch of k sources costs 4 slice
// allocations instead of 4k. Results are returned in source order;
// duplicate sources share one tree (the same *ShortestPaths pointer). A
// nil arena borrows one from the internal pool for the whole batch.
func DijkstraBatch(g *Graph, sources []NodeID, a *Arena) []*ShortestPaths {
	if len(sources) == 0 {
		return nil
	}
	if a == nil {
		a = arenaPool.Get().(*Arena)
		defer arenaPool.Put(a)
	}
	n := g.NumNodes()
	c := g.csr()
	a.ensure(n)
	variant, maxC, lay := a.pick(g, n)
	if variant == variantBucket {
		a.bq.configure(n, maxC)
	}

	out := make([]*ShortestPaths, len(sources))
	firstIdx := make(map[NodeID]int, len(sources))
	uniq := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if _, ok := firstIdx[s]; !ok {
			firstIdx[s] = len(uniq)
			uniq = append(uniq, s)
		}
	}
	k := len(uniq)
	sps := make([]ShortestPaths, k)
	dist := make([]float64, k*n)
	parent := make([]NodeID, k*n)
	pedge := make([]EdgeID, k*n)
	for i, s := range uniq {
		sp := &sps[i]
		sp.Source = s
		sp.Dist = dist[i*n : (i+1)*n : (i+1)*n]
		sp.Parent = parent[i*n : (i+1)*n : (i+1)*n]
		sp.ParentEdge = pedge[i*n : (i+1)*n : (i+1)*n]
		switch variant {
		case variantDelta:
			dijkstraDelta(g, lay, a, sp)
		case variantBucket:
			dijkstraBucket(g, c, a, sp)
		default:
			dijkstraHeap(g, c, a, sp)
		}
	}
	for i, s := range sources {
		out[i] = &sps[firstIdx[s]]
	}
	return out
}

// dijkstraHeap is the indexed-heap SSSP core: it fills sp (whose Source
// and result arrays the caller prepared) in place. Blocked elements
// (failed or capacity-masked) are skipped: no relaxation crosses a
// blocked edge or enters a blocked node, and a blocked source yields an
// all-unreachable tree (its own distance included — a dead node reaches
// nothing, not even itself).
func dijkstraHeap(g *Graph, c *csrLayout, a *Arena, sp *ShortestPaths) {
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	fs := g.block.blocked.Load()
	if fs.NodeFailed(sp.Source) {
		return
	}
	sp.Dist[sp.Source] = 0
	a.gen++
	gen, done := a.gen, a.done
	h := &a.h
	h.Update(int32(sp.Source), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		done[u] = gen
		for i := c.row[u]; i < c.row[u+1]; i++ {
			v := c.to[i]
			if done[v] == gen {
				continue
			}
			if fs != nil && (fs.EdgeFailed(EdgeID(c.eid[i])) || fs.NodeFailed(NodeID(v))) {
				continue
			}
			nd := du + g.edges[c.eid[i]].Cost
			if nd < sp.Dist[v] {
				sp.Dist[v] = nd
				sp.Parent[v] = NodeID(u)
				sp.ParentEdge[v] = EdgeID(c.eid[i])
				h.Update(v, nd)
			}
		}
	}
}

// dijkstraBucket is dijkstraHeap with the calendar queue: the identical
// relaxation loop over a queue that pops in the identical (key, id)
// order, so its trees are bit-for-bit those of the heap variant. The
// caller has already configured a.bq for this graph's width.
func dijkstraBucket(g *Graph, c *csrLayout, a *Arena, sp *ShortestPaths) {
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	fs := g.block.blocked.Load()
	if fs.NodeFailed(sp.Source) {
		return
	}
	sp.Dist[sp.Source] = 0
	a.gen++
	gen, done := a.gen, a.done
	q := &a.bq
	q.seed(int32(sp.Source), 0)
	for q.len() > 0 {
		u, du := q.pop()
		done[u] = gen
		for i := c.row[u]; i < c.row[u+1]; i++ {
			v := c.to[i]
			if done[v] == gen {
				continue
			}
			if fs != nil && (fs.EdgeFailed(EdgeID(c.eid[i])) || fs.NodeFailed(NodeID(v))) {
				continue
			}
			nd := du + g.edges[c.eid[i]].Cost
			if nd < sp.Dist[v] {
				sp.Dist[v] = nd
				sp.Parent[v] = NodeID(u)
				sp.ParentEdge[v] = EdgeID(c.eid[i])
				q.update(v, nd)
			}
		}
	}
}

// DijkstraAll runs Dijkstra from every node in sources and returns the
// trees in source order, computed through one batched arena pass;
// duplicate sources share one tree. The embedding hot paths pull their
// trees from the chain oracle's epoch-keyed cache instead; this uncached
// form remains for one-shot callers and as the plain reference in tests.
func DijkstraAll(g *Graph, sources []NodeID) []*ShortestPaths {
	return DijkstraBatch(g, sources, nil)
}

// BellmanFord computes single-source shortest paths by relaxation. It exists
// as an independent oracle for property-testing Dijkstra; it is O(V·E).
func BellmanFord(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	fs := g.block.blocked.Load()
	if fs.NodeFailed(src) {
		return sp
	}
	sp.Dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(EdgeID(id))
			if fs != nil && (fs.EdgeFailed(EdgeID(id)) || fs.NodeFailed(e.U) || fs.NodeFailed(e.V)) {
				continue
			}
			if sp.Dist[e.U]+e.Cost < sp.Dist[e.V] {
				sp.Dist[e.V] = sp.Dist[e.U] + e.Cost
				sp.Parent[e.V] = e.U
				sp.ParentEdge[e.V] = EdgeID(id)
				changed = true
			}
			if sp.Dist[e.V]+e.Cost < sp.Dist[e.U] {
				sp.Dist[e.U] = sp.Dist[e.V] + e.Cost
				sp.Parent[e.U] = e.V
				sp.ParentEdge[e.U] = EdgeID(id)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sp
}
