package graph

import (
	"math"
	"sync"
)

// ShortestPaths holds the single-source shortest-path tree computed by
// Dijkstra. Distances are in total edge connection cost; node costs are not
// included (the chain package layers setup costs on top).
type ShortestPaths struct {
	Source NodeID
	// Dist[v] is the cost of the shortest path Source→v, +Inf if
	// unreachable.
	Dist []float64
	// Parent[v] is the predecessor of v on the shortest path, None for the
	// source and unreachable nodes.
	Parent []NodeID
	// ParentEdge[v] is the edge used to reach v from Parent[v].
	ParentEdge []EdgeID
}

// Reachable reports whether t is reachable from the source.
func (sp *ShortestPaths) Reachable(t NodeID) bool {
	return !math.IsInf(sp.Dist[t], 1)
}

// PathTo returns the node sequence Source…t inclusive, or nil if t is
// unreachable.
func (sp *ShortestPaths) PathTo(t NodeID) []NodeID {
	if !sp.Reachable(t) {
		return nil
	}
	var rev []NodeID
	for v := t; v != None; v = sp.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgesTo returns the edge sequence of the shortest path Source…t, or nil if
// t is unreachable. The result has len(PathTo(t))-1 entries.
func (sp *ShortestPaths) EdgesTo(t NodeID) []EdgeID {
	if !sp.Reachable(t) {
		return nil
	}
	var rev []EdgeID
	for v := t; sp.Parent[v] != None; v = sp.Parent[v] {
		rev = append(rev, sp.ParentEdge[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// spScratch is the reusable per-run Dijkstra state: the indexed heap
// (whose position index self-restores on drain) and a generation-stamped
// settled marker, so a pooled scratch is ready for the next run without
// any O(n) reset. The result arrays are NOT pooled — callers (the chain
// oracle in particular) retain ShortestPaths indefinitely.
type spScratch struct {
	h    IndexedHeap
	done []uint64
	gen  uint64
}

var spPool = sync.Pool{New: func() any { return new(spScratch) }}

func (s *spScratch) ensure(n int) {
	s.h.Grow(n)
	if len(s.done) < n {
		done := make([]uint64, n)
		copy(done, s.done)
		s.done = done
	}
}

// Dijkstra computes shortest paths from src over edge connection costs.
// The traversal runs on the graph's flat CSR adjacency with a pooled
// indexed heap, so a run allocates only its result arrays. Ties are
// settled toward the smaller node id, making the returned tree (not just
// the distances) deterministic.
func Dijkstra(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	sp.Dist[src] = 0

	c := g.csr()
	s := spPool.Get().(*spScratch)
	s.ensure(n)
	s.gen++
	gen, done := s.gen, s.done
	h := &s.h
	h.Update(int32(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		done[u] = gen
		for i := c.row[u]; i < c.row[u+1]; i++ {
			v := c.to[i]
			if done[v] == gen {
				continue
			}
			nd := du + g.edges[c.eid[i]].Cost
			if nd < sp.Dist[v] {
				sp.Dist[v] = nd
				sp.Parent[v] = NodeID(u)
				sp.ParentEdge[v] = EdgeID(c.eid[i])
				h.Update(v, nd)
			}
		}
	}
	spPool.Put(s)
	return sp
}

// DijkstraAll runs Dijkstra from every node in sources and returns the trees
// keyed by source. The embedding hot paths now pull their trees from the
// chain oracle's epoch-keyed cache instead; this uncached form remains for
// one-shot callers and as the plain reference in tests.
func DijkstraAll(g *Graph, sources []NodeID) map[NodeID]*ShortestPaths {
	out := make(map[NodeID]*ShortestPaths, len(sources))
	for _, s := range sources {
		if _, ok := out[s]; ok {
			continue
		}
		out[s] = Dijkstra(g, s)
	}
	return out
}

// BellmanFord computes single-source shortest paths by relaxation. It exists
// as an independent oracle for property-testing Dijkstra; it is O(V·E).
func BellmanFord(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	sp.Dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(EdgeID(id))
			if sp.Dist[e.U]+e.Cost < sp.Dist[e.V] {
				sp.Dist[e.V] = sp.Dist[e.U] + e.Cost
				sp.Parent[e.V] = e.U
				sp.ParentEdge[e.V] = EdgeID(id)
				changed = true
			}
			if sp.Dist[e.V]+e.Cost < sp.Dist[e.U] {
				sp.Dist[e.U] = sp.Dist[e.V] + e.Cost
				sp.Parent[e.U] = e.V
				sp.ParentEdge[e.U] = EdgeID(id)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sp
}
