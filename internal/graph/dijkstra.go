package graph

import (
	"container/heap"
	"math"
)

// ShortestPaths holds the single-source shortest-path tree computed by
// Dijkstra. Distances are in total edge connection cost; node costs are not
// included (the chain package layers setup costs on top).
type ShortestPaths struct {
	Source NodeID
	// Dist[v] is the cost of the shortest path Source→v, +Inf if
	// unreachable.
	Dist []float64
	// Parent[v] is the predecessor of v on the shortest path, None for the
	// source and unreachable nodes.
	Parent []NodeID
	// ParentEdge[v] is the edge used to reach v from Parent[v].
	ParentEdge []EdgeID
}

// Reachable reports whether t is reachable from the source.
func (sp *ShortestPaths) Reachable(t NodeID) bool {
	return !math.IsInf(sp.Dist[t], 1)
}

// PathTo returns the node sequence Source…t inclusive, or nil if t is
// unreachable.
func (sp *ShortestPaths) PathTo(t NodeID) []NodeID {
	if !sp.Reachable(t) {
		return nil
	}
	var rev []NodeID
	for v := t; v != None; v = sp.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgesTo returns the edge sequence of the shortest path Source…t, or nil if
// t is unreachable. The result has len(PathTo(t))-1 entries.
func (sp *ShortestPaths) EdgesTo(t NodeID) []EdgeID {
	if !sp.Reachable(t) {
		return nil
	}
	var rev []EdgeID
	for v := t; sp.Parent[v] != None; v = sp.Parent[v] {
		rev = append(rev, sp.ParentEdge[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type pqItem struct {
	node NodeID
	dist float64
}

type pq struct {
	items []pqItem
	// pos[v] is the index of v in items, or -1.
	pos []int
}

func (q *pq) Len() int           { return len(q.items) }
func (q *pq) Less(i, j int) bool { return q.items[i].dist < q.items[j].dist }
func (q *pq) Push(x interface{}) {
	it := x.(pqItem)
	q.pos[it.node] = len(q.items)
	q.items = append(q.items, it)
}
func (q *pq) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].node] = i
	q.pos[q.items[j].node] = j
}

func (q *pq) Pop() interface{} {
	it := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	q.pos[it.node] = -1
	return it
}

// Dijkstra computes shortest paths from src over edge connection costs.
func Dijkstra(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	sp.Dist[src] = 0

	q := &pq{pos: make([]int, n)}
	for i := range q.pos {
		q.pos[i] = -1
	}
	heap.Push(q, pqItem{node: src, dist: 0})
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		du := sp.Dist[u]
		for _, a := range g.Adj(u) {
			v := a.To
			if done[v] {
				continue
			}
			nd := du + g.EdgeCost(a.Edge)
			if nd < sp.Dist[v] {
				sp.Dist[v] = nd
				sp.Parent[v] = u
				sp.ParentEdge[v] = a.Edge
				if q.pos[v] >= 0 {
					q.items[q.pos[v]].dist = nd
					heap.Fix(q, q.pos[v])
				} else {
					heap.Push(q, pqItem{node: v, dist: nd})
				}
			}
		}
	}
	return sp
}

// DijkstraAll runs Dijkstra from every node in sources and returns the trees
// keyed by source. It is the workhorse for metric closures and auxiliary
// graph construction.
func DijkstraAll(g *Graph, sources []NodeID) map[NodeID]*ShortestPaths {
	out := make(map[NodeID]*ShortestPaths, len(sources))
	for _, s := range sources {
		if _, ok := out[s]; ok {
			continue
		}
		out[s] = Dijkstra(g, s)
	}
	return out
}

// BellmanFord computes single-source shortest paths by relaxation. It exists
// as an independent oracle for property-testing Dijkstra; it is O(V·E).
func BellmanFord(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Parent[i] = None
		sp.ParentEdge[i] = NoEdge
	}
	sp.Dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(EdgeID(id))
			if sp.Dist[e.U]+e.Cost < sp.Dist[e.V] {
				sp.Dist[e.V] = sp.Dist[e.U] + e.Cost
				sp.Parent[e.V] = e.U
				sp.ParentEdge[e.V] = EdgeID(id)
				changed = true
			}
			if sp.Dist[e.V]+e.Cost < sp.Dist[e.U] {
				sp.Dist[e.U] = sp.Dist[e.V] + e.Cost
				sp.Parent[e.U] = e.V
				sp.ParentEdge[e.U] = EdgeID(id)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sp
}
