package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomMultigraph builds a connected multigraph with integer-valued edge
// costs (so path sums are exact in float64), including parallel edges and
// zero-cost links — the cases the flat-heap Dijkstra must get right.
func randomMultigraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(40)
	g := New(n, 4*n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			g.AddVM("", float64(1+rng.Intn(5)))
		} else {
			g.AddSwitch("")
		}
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(rng.Intn(i)), float64(rng.Intn(10)))
	}
	for k := 0; k < 3*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		// Repeating endpoints on purpose: parallel edges with different
		// costs exercise the multigraph path of the CSR layout.
		g.MustAddEdge(NodeID(u), NodeID(v), float64(rng.Intn(10)))
	}
	return g
}

// TestDijkstraMatchesBellmanFordMultigraph pins the flat-heap Dijkstra
// against the independent Bellman–Ford oracle on random multigraphs with
// parallel edges and zero-cost links. Costs are integers, so distances
// must agree exactly, not just within epsilon.
func TestDijkstraMatchesBellmanFordMultigraph(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := randomMultigraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		for trial := 0; trial < 3; trial++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			got := Dijkstra(g, src)
			want := BellmanFord(g, src)
			for v := 0; v < g.NumNodes(); v++ {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("seed %d src %d: Dist[%d] = %v, BellmanFord says %v",
						seed, src, v, got.Dist[v], want.Dist[v])
				}
			}
			verifyTree(t, g, got)
		}
	}
}

// verifyTree checks the parent structure realizes the claimed distances:
// walking ParentEdge from any reachable node sums to exactly Dist[v].
func verifyTree(t *testing.T, g *Graph, sp *ShortestPaths) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		if !sp.Reachable(NodeID(v)) {
			if sp.Parent[v] != None || sp.ParentEdge[v] != NoEdge {
				t.Fatalf("unreachable node %d has parent data", v)
			}
			continue
		}
		var sum float64
		steps := 0
		for cur := NodeID(v); cur != sp.Source; cur = sp.Parent[cur] {
			e := sp.ParentEdge[cur]
			if e == NoEdge {
				t.Fatalf("node %d: parent chain broken at %d", v, cur)
			}
			if other := g.Edge(e).Other(cur); other != sp.Parent[cur] {
				t.Fatalf("node %d: ParentEdge does not join %d and Parent", v, cur)
			}
			sum += g.EdgeCost(e)
			if steps++; steps > g.NumNodes() {
				t.Fatalf("node %d: parent chain cycles", v)
			}
		}
		if sum != sp.Dist[v] {
			t.Fatalf("node %d: parent chain cost %v != Dist %v", v, sum, sp.Dist[v])
		}
	}
}

// TestDijkstraZeroCostComponent covers the all-zero-cost corner: every
// node at distance 0, ties broken deterministically.
func TestDijkstraZeroCostComponent(t *testing.T) {
	g := New(5, 6)
	for i := 0; i < 5; i++ {
		g.AddSwitch("")
	}
	for i := 1; i < 5; i++ {
		g.MustAddEdge(NodeID(i-1), NodeID(i), 0)
	}
	g.MustAddEdge(0, 4, 0)
	sp := Dijkstra(g, 2)
	for v := 0; v < 5; v++ {
		if sp.Dist[v] != 0 {
			t.Fatalf("Dist[%d] = %v, want 0", v, sp.Dist[v])
		}
	}
	again := Dijkstra(g, 2)
	for v := 0; v < 5; v++ {
		if sp.Parent[v] != again.Parent[v] || sp.ParentEdge[v] != again.ParentEdge[v] {
			t.Fatalf("tree not deterministic at node %d", v)
		}
	}
}

// TestDijkstraDeterministic asserts run-to-run identical trees (the
// smallest-id tie-break), which downstream cost-equality guarantees
// (centralized vs distributed SOFDA) build on.
func TestDijkstraDeterministic(t *testing.T) {
	g := randomMultigraph(7)
	a := Dijkstra(g, 0)
	b := Dijkstra(g, 0)
	for v := 0; v < g.NumNodes(); v++ {
		if a.Parent[v] != b.Parent[v] || a.ParentEdge[v] != b.ParentEdge[v] || a.Dist[v] != b.Dist[v] {
			t.Fatalf("non-deterministic tree at node %d", v)
		}
	}
}

// TestDijkstraPooledScratchAcrossSizes drives the pooled scratch through
// graphs of very different sizes, in both directions, to catch stale
// heap-position or settled-marker state leaking between runs.
func TestDijkstraPooledScratchAcrossSizes(t *testing.T) {
	sizes := []int64{3, 11, 5, 23, 2, 31, 4}
	for round := 0; round < 3; round++ {
		for _, seed := range sizes {
			g := randomMultigraph(seed)
			got := Dijkstra(g, 0)
			want := BellmanFord(g, 0)
			for v := 0; v < g.NumNodes(); v++ {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("round %d seed %d: Dist[%d] = %v, want %v",
						round, seed, v, got.Dist[v], want.Dist[v])
				}
			}
		}
	}
}

// TestDijkstraConcurrent runs many Dijkstras concurrently over shared
// graphs: the pool must hand every goroutine private scratch, and the
// lazily built CSR view must be safe under concurrent first use.
func TestDijkstraConcurrent(t *testing.T) {
	g := randomMultigraph(13)
	want := make([]*ShortestPaths, g.NumNodes())
	for v := range want {
		want[v] = BellmanFord(g, NodeID(v))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := (w + i) % g.NumNodes()
				sp := Dijkstra(g, NodeID(src))
				for v := 0; v < g.NumNodes(); v++ {
					if sp.Dist[v] != want[src].Dist[v] {
						t.Errorf("concurrent run src %d: Dist[%d] = %v, want %v",
							src, v, sp.Dist[v], want[src].Dist[v])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCSRRebuildAfterGrowth mutates topology after the CSR view exists
// (the aux-graph pattern: clone, then add virtual nodes and edges) and
// checks the rebuilt view is consulted.
func TestCSRRebuildAfterGrowth(t *testing.T) {
	g := New(3, 3)
	g.AddSwitch("a")
	g.AddSwitch("b")
	g.AddSwitch("c")
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	if d := Dijkstra(g, 0).Dist[2]; d != 10 {
		t.Fatalf("Dist[2] = %v, want 10", d)
	}
	// Add a shortcut; the stale CSR would miss it.
	g.MustAddEdge(0, 2, 1)
	if d := Dijkstra(g, 0).Dist[2]; d != 1 {
		t.Fatalf("after AddEdge: Dist[2] = %v, want 1", d)
	}
	// And a new node hanging off the shortcut.
	n := g.AddSwitch("d")
	g.MustAddEdge(2, n, 2)
	if d := Dijkstra(g, 0).Dist[n]; d != 3 {
		t.Fatalf("after AddSwitch: Dist[%d] = %v, want 3", n, d)
	}
}

// TestIndexedHeap unit-tests the heap directly: ordering, decrease-key,
// id tie-breaks, self-restoring positions, Reset after partial drains.
func TestIndexedHeap(t *testing.T) {
	h := NewIndexedHeap(10)
	h.Update(3, 5)
	h.Update(7, 2)
	h.Update(1, 8)
	h.Update(9, 2) // ties with 7; 7 must pop first (smaller id)
	h.Update(1, 1) // decrease-key
	order := []int32{1, 7, 9, 3}
	keys := []float64{1, 2, 2, 5}
	for i, wantV := range order {
		v, k := h.Pop()
		if v != wantV || k != keys[i] {
			t.Fatalf("pop %d: got (%d,%v), want (%d,%v)", i, v, k, wantV, keys[i])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after drain")
	}
	// After a full drain, positions must be restored without Reset.
	for v := int32(0); v < 10; v++ {
		if h.Contains(v) {
			t.Fatalf("drained heap still contains %d", v)
		}
	}
	// Partial drain + Reset.
	h.Update(4, 1)
	h.Update(5, 2)
	if v, _ := h.Pop(); v != 4 {
		t.Fatalf("partial pop got %d", v)
	}
	h.Reset()
	if h.Len() != 0 || h.Contains(5) {
		t.Fatalf("Reset left state behind")
	}
	// Increase-key must reorder too.
	h.Update(2, 1)
	h.Update(6, 3)
	h.Update(2, 9)
	if v, _ := h.Pop(); v != 6 {
		t.Fatalf("increase-key not honored, popped %d", v)
	}
	h.Grow(100)
	h.Update(99, 0.5)
	if v, _ := h.Pop(); v != 99 {
		t.Fatalf("post-Grow pop got %d", v)
	}
}

// bucketArena returns an arena pinned to the bucket-queue SSSP variant
// regardless of graph size — the per-arena form of the deprecated
// BucketQueueMinNodes global.
func bucketArena() *Arena {
	return NewArenaWith(Config{BucketQueueMinNodes: 1, DeltaSteppingMinNodes: -1})
}

// TestDijkstraBatchMatchesSingle pins the batched arena path against
// per-source Dijkstra runs: distances, parents, and parent edges must be
// bit-identical, and results must come back in source order with
// duplicates aliased.
func TestDijkstraBatchMatchesSingle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomMultigraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x77aa))
		sources := make([]NodeID, 0, 6)
		for i := 0; i < 5; i++ {
			sources = append(sources, NodeID(rng.Intn(g.NumNodes())))
		}
		sources = append(sources, sources[0]) // duplicate on purpose
		arena := NewArena()
		batch := DijkstraBatch(g, sources, arena)
		if len(batch) != len(sources) {
			t.Fatalf("seed %d: %d results for %d sources", seed, len(batch), len(sources))
		}
		if batch[len(batch)-1] != batch[0] {
			t.Fatalf("seed %d: duplicate source not aliased", seed)
		}
		for i, s := range sources {
			want := Dijkstra(g, s)
			got := batch[i]
			if got.Source != s {
				t.Fatalf("seed %d: result %d has source %d, want %d", seed, i, got.Source, s)
			}
			for v := 0; v < g.NumNodes(); v++ {
				if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] || got.ParentEdge[v] != want.ParentEdge[v] {
					t.Fatalf("seed %d source %d node %d: batch (%v,%d,%d) != single (%v,%d,%d)",
						seed, s, v, got.Dist[v], got.Parent[v], got.ParentEdge[v],
						want.Dist[v], want.Parent[v], want.ParentEdge[v])
				}
			}
		}
	}
}

// TestBucketQueueDijkstraBitIdentical forces the calendar queue on small
// multigraphs (parallel edges, zero-cost links) and demands bit-identical
// trees — not just distances — against the heap variant: the two queues
// must pop in the same (key, id) order for the cross-layer determinism
// guarantees to survive the size-based switch.
func TestBucketQueueDijkstraBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := randomMultigraph(seed)
		want := make([]*ShortestPaths, g.NumNodes())
		for v := range want {
			want[v] = Dijkstra(g, NodeID(v)) // heap path: graph far below threshold
		}
		func() {
			arena := bucketArena()
			for v := 0; v < g.NumNodes(); v++ {
				got := DijkstraBatch(g, []NodeID{NodeID(v)}, arena)[0]
				for u := 0; u < g.NumNodes(); u++ {
					if got.Dist[u] != want[v].Dist[u] || got.Parent[u] != want[v].Parent[u] || got.ParentEdge[u] != want[v].ParentEdge[u] {
						t.Fatalf("seed %d src %d node %d: bucket (%v,%d,%d) != heap (%v,%d,%d)",
							seed, v, u, got.Dist[u], got.Parent[u], got.ParentEdge[u],
							want[v].Dist[u], want[v].Parent[u], want[v].ParentEdge[u])
					}
				}
			}
		}()
	}
}

// TestBucketQueueZeroCostFallback: an all-zero-cost graph has no usable
// bucket width; the size gate must fall back to the heap instead of
// dividing by zero, and the result must stay correct.
func TestBucketQueueZeroCostFallback(t *testing.T) {
	g := New(5, 6)
	for i := 0; i < 5; i++ {
		g.AddSwitch("")
	}
	for i := 1; i < 5; i++ {
		g.MustAddEdge(NodeID(i-1), NodeID(i), 0)
	}
	sp := DijkstraBatch(g, []NodeID{2}, bucketArena())[0]
	for v := 0; v < 5; v++ {
		if sp.Dist[v] != 0 {
			t.Fatalf("Dist[%d] = %v, want 0", v, sp.Dist[v])
		}
	}
}

// TestBucketQueueArenaReuseAcrossGraphs drives one arena through graphs of
// different sizes and widths (so the calendar reconfigures between runs),
// catching stale bucket or cursor state leaking across runs.
func TestBucketQueueArenaReuseAcrossGraphs(t *testing.T) {
	arena := bucketArena()
	for round := 0; round < 3; round++ {
		for _, seed := range []int64{3, 11, 5, 23, 2, 31, 4} {
			g := randomMultigraph(seed)
			got := DijkstraBatch(g, []NodeID{0}, arena)[0]
			want := BellmanFord(g, 0)
			for v := 0; v < g.NumNodes(); v++ {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("round %d seed %d: Dist[%d] = %v, want %v",
						round, seed, v, got.Dist[v], want.Dist[v])
				}
			}
			verifyTree(t, g, got)
		}
	}
}

// BenchmarkDijkstra measures a single-source run on a mid-size graph;
// allocs/op is the pooled-scratch headline (only the three result arrays
// should allocate).
func BenchmarkDijkstra(b *testing.B) {
	g := RandomConnected(RandomConfig{
		Nodes: 1000, ExtraEdges: 2000, VMFraction: 0.2, MaxEdge: 10, MaxSetup: 5,
	}, 1)
	Dijkstra(g, 0) // prime CSR
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sp := Dijkstra(g, NodeID(i%g.NumNodes()))
		sink += sp.Dist[(i+1)%g.NumNodes()]
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN distance")
	}
}
