package graph

import (
	"fmt"
	"strings"
)

// DOT renders g in Graphviz DOT syntax. Highlighted edges (if any) are drawn
// bold; VM nodes are boxes, switches are circles. Intended for debugging
// small topologies and for the example programs.
func DOT(g *Graph, name string, highlight map[EdgeID]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("%d", i)
		}
		shape := "circle"
		if n.Kind == KindVM {
			shape = "box"
			label = fmt.Sprintf("%s\\ncost=%.1f", label, n.Cost)
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", i, label, shape)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		style := ""
		if highlight[EdgeID(i)] {
			style = " style=bold color=red"
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%.1f\"%s];\n", e.U, e.V, e.Cost, style)
	}
	b.WriteString("}\n")
	return b.String()
}
