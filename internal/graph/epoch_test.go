package graph

import "testing"

func TestCostEpochAdvancesOnlyOnChange(t *testing.T) {
	g := New(4, 4)
	a := g.AddSwitch("a")
	v := g.AddVM("v", 2)
	e := g.MustAddEdge(a, v, 1)
	if got := g.CostEpoch(); got != 0 {
		t.Fatalf("fresh graph epoch = %d", got)
	}

	g.SetEdgeCost(e, 1) // unchanged value
	g.SetNodeCost(v, 2) // unchanged value
	if got := g.CostEpoch(); got != 0 {
		t.Errorf("same-value sets advanced epoch to %d", got)
	}

	g.SetEdgeCost(e, 3)
	if got := g.CostEpoch(); got != 1 {
		t.Errorf("edge cost change: epoch = %d, want 1", got)
	}
	g.SetNodeCost(v, 5)
	if got := g.CostEpoch(); got != 2 {
		t.Errorf("node cost change: epoch = %d, want 2", got)
	}
	g.BumpCostEpoch()
	if got := g.CostEpoch(); got != 3 {
		t.Errorf("explicit bump: epoch = %d, want 3", got)
	}

	c := g.Clone()
	if c.CostEpoch() != g.CostEpoch() {
		t.Errorf("clone epoch %d != original %d", c.CostEpoch(), g.CostEpoch())
	}
	c.SetEdgeCost(e, 7)
	if c.CostEpoch() == g.CostEpoch() {
		t.Error("clone epoch tracks the original after divergence")
	}
}
