package graph

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Failure state: links and nodes can be marked failed without structural
// deletion. Failed elements are skipped by every shortest-path traversal
// (a failed element effectively costs +Inf), so forests embedded after a
// failure never cross it, while Restore merely clears the mark — no
// adjacency rebuild in either direction. Every transition advances the
// cost epoch: a failure changes the effective cost surface exactly like a
// SetEdgeCost, so epoch-keyed caches (oracle trees, solved chains) go
// stale lazily and the next query re-routes around the failure.
//
// Snapshots are copy-on-write: readers load one immutable *FailState per
// traversal and never observe a half-applied transition, which is what
// lets repair sweeps run concurrently with live embeds under the race
// detector.

// FailState is an immutable snapshot of the failed elements of a Graph.
// The zero/nil state means nothing has failed.
type FailState struct {
	// Edges and Nodes are failure bitsets indexed by id (bit id%64 of
	// word id/64). They are exported for the traversal hot loops and for
	// read-only consumers (damage detection, blast-radius reporting);
	// mutate failure state only through Graph.FailEdge/FailNode/
	// RestoreEdge/RestoreNode — the sofvet epochsafe pass flags direct
	// writes outside package graph, which would bypass the cost epoch.
	Edges []uint64
	Nodes []uint64
}

// bitGet reports bit i of bits, treating out-of-range as unset.
func bitGet(bits []uint64, i int) bool {
	w := i >> 6
	return w < len(bits) && bits[w]&(1<<(uint(i)&63)) != 0
}

// EdgeFailed reports whether edge id is failed. A nil receiver (no
// failures ever) reports false.
func (s *FailState) EdgeFailed(id EdgeID) bool {
	return s != nil && bitGet(s.Edges, int(id))
}

// NodeFailed reports whether node id is failed. A nil receiver reports
// false.
func (s *FailState) NodeFailed(id NodeID) bool {
	return s != nil && bitGet(s.Nodes, int(id))
}

// Counts returns the number of failed edges and nodes.
func (s *FailState) Counts() (edges, nodes int) {
	if s == nil {
		return 0, 0
	}
	for _, w := range s.Edges {
		edges += bits.OnesCount64(w)
	}
	for _, w := range s.Nodes {
		nodes += bits.OnesCount64(w)
	}
	return edges, nodes
}

// FailedEdges lists the failed edge ids in ascending order.
func (s *FailState) FailedEdges() []EdgeID {
	if s == nil {
		return nil
	}
	var out []EdgeID
	for w, word := range s.Edges {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, EdgeID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return out
}

// FailedNodes lists the failed node ids in ascending order.
func (s *FailState) FailedNodes() []NodeID {
	if s == nil {
		return nil
	}
	var out []NodeID
	for w, word := range s.Nodes {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, NodeID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return out
}

// failSet is the mutable half of the copy-on-write scheme: writers
// serialize on failMu, build a fresh snapshot, and publish it atomically.
type failStore struct {
	mu   sync.Mutex
	snap atomic.Pointer[FailState]
}

// Failures returns the current failure snapshot, nil when nothing is
// failed. The snapshot is immutable and safe to read concurrently with
// later Fail/Restore calls (which publish fresh snapshots).
func (g *Graph) Failures() *FailState { return g.fail.snap.Load() }

// EdgeFailed reports whether edge id is currently failed.
func (g *Graph) EdgeFailed(id EdgeID) bool { return g.fail.snap.Load().EdgeFailed(id) }

// NodeFailed reports whether node id is currently failed.
func (g *Graph) NodeFailed(id NodeID) bool { return g.fail.snap.Load().NodeFailed(id) }

// setFailBit publishes a snapshot with bit i of the chosen bitset set to
// val, reporting whether the state actually changed. Only actual changes
// advance the cost epoch, mirroring SetEdgeCost's no-op discipline.
func (g *Graph) setFailBit(edge bool, i, size int, val bool) bool {
	g.fail.mu.Lock()
	defer g.fail.mu.Unlock()
	old := g.fail.snap.Load()
	var cur []uint64
	if old != nil {
		if edge {
			cur = old.Edges
		} else {
			cur = old.Nodes
		}
	}
	if bitGet(cur, i) == val {
		return false
	}
	words := (size + 63) / 64
	next := make([]uint64, words)
	copy(next, cur)
	if val {
		next[i>>6] |= 1 << (uint(i) & 63)
	} else {
		next[i>>6] &^= 1 << (uint(i) & 63)
	}
	ns := &FailState{}
	if old != nil {
		ns.Edges, ns.Nodes = old.Edges, old.Nodes
	}
	if edge {
		ns.Edges = next
	} else {
		ns.Nodes = next
	}
	g.fail.snap.Store(ns)
	g.epoch.Add(1)
	return true
}

// FailEdge marks edge id failed: every traversal from now on routes around
// it. It reports whether the state changed (failing an already-failed edge
// is a no-op that keeps caches warm). The cost epoch advances on change.
func (g *Graph) FailEdge(id EdgeID) bool {
	if !g.ValidEdge(id) {
		return false
	}
	return g.setFailBit(true, int(id), len(g.edges), true)
}

// FailNode marks node id failed: traversals neither enter nor leave it,
// and a failed VM hosts no new VNFs. Reports whether the state changed.
func (g *Graph) FailNode(id NodeID) bool {
	if !g.Valid(id) {
		return false
	}
	return g.setFailBit(false, int(id), len(g.nodes), true)
}

// RestoreEdge clears the failure mark on edge id — O(1) beyond the
// snapshot copy; no structure was deleted, so nothing is rebuilt. Reports
// whether the state changed.
func (g *Graph) RestoreEdge(id EdgeID) bool {
	if !g.ValidEdge(id) {
		return false
	}
	return g.setFailBit(true, int(id), len(g.edges), false)
}

// RestoreNode clears the failure mark on node id.
func (g *Graph) RestoreNode(id NodeID) bool {
	if !g.Valid(id) {
		return false
	}
	return g.setFailBit(false, int(id), len(g.nodes), false)
}

// RestoreAll clears every failure mark, returning how many edges and nodes
// were restored. The epoch advances once when anything changed.
func (g *Graph) RestoreAll() (edges, nodes int) {
	g.fail.mu.Lock()
	defer g.fail.mu.Unlock()
	old := g.fail.snap.Load()
	edges, nodes = old.Counts()
	if edges == 0 && nodes == 0 {
		return 0, 0
	}
	g.fail.snap.Store(nil)
	g.epoch.Add(1)
	return edges, nodes
}
