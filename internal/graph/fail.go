package graph

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Failure and saturation state: links and nodes can be marked failed or
// capacity-masked without structural deletion. Both kinds of mark remove
// the element from every shortest-path traversal (it effectively costs
// +Inf), so forests embedded afterwards never cross it, while clearing a
// mark is O(1) — no adjacency rebuild in either direction. Every
// transition advances the cost epoch: a failure or mask changes the
// effective cost surface exactly like a SetEdgeCost, so epoch-keyed
// caches (oracle trees, solved chains) go stale lazily and the next query
// re-routes around the element.
//
// The two layers differ only in meaning, which is why they share the
// FailState representation: a *failed* element is damaged — forests
// crossing it are broken and repair sweeps try to route around it — while
// a *masked* element is merely full (a capacitated session saturated it),
// so forests already on it keep working and only new embeds avoid it.
// Traversals consult the union (Blocked); damage detection consults only
// the failures.
//
// Snapshots are copy-on-write: readers load one immutable *FailState per
// traversal and never observe a half-applied transition, which is what
// lets repair sweeps run concurrently with live embeds under the race
// detector.

// FailState is an immutable snapshot of the failed elements of a Graph.
// The zero/nil state means nothing has failed.
type FailState struct {
	// Edges and Nodes are failure bitsets indexed by id (bit id%64 of
	// word id/64). They are exported for the traversal hot loops and for
	// read-only consumers (damage detection, blast-radius reporting);
	// mutate failure state only through Graph.FailEdge/FailNode/
	// RestoreEdge/RestoreNode — the sofvet epochsafe pass flags direct
	// writes outside package graph, which would bypass the cost epoch.
	Edges []uint64
	Nodes []uint64
}

// bitGet reports bit i of bits, treating out-of-range as unset.
func bitGet(bits []uint64, i int) bool {
	w := i >> 6
	return w < len(bits) && bits[w]&(1<<(uint(i)&63)) != 0
}

// EdgeFailed reports whether edge id is failed. A nil receiver (no
// failures ever) reports false.
func (s *FailState) EdgeFailed(id EdgeID) bool {
	return s != nil && bitGet(s.Edges, int(id))
}

// NodeFailed reports whether node id is failed. A nil receiver reports
// false.
func (s *FailState) NodeFailed(id NodeID) bool {
	return s != nil && bitGet(s.Nodes, int(id))
}

// Counts returns the number of failed edges and nodes.
func (s *FailState) Counts() (edges, nodes int) {
	if s == nil {
		return 0, 0
	}
	for _, w := range s.Edges {
		edges += bits.OnesCount64(w)
	}
	for _, w := range s.Nodes {
		nodes += bits.OnesCount64(w)
	}
	return edges, nodes
}

// FailedEdges lists the failed edge ids in ascending order.
func (s *FailState) FailedEdges() []EdgeID {
	if s == nil {
		return nil
	}
	var out []EdgeID
	for w, word := range s.Edges {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, EdgeID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return out
}

// FailedNodes lists the failed node ids in ascending order.
func (s *FailState) FailedNodes() []NodeID {
	if s == nil {
		return nil
	}
	var out []NodeID
	for w, word := range s.Nodes {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, NodeID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return out
}

// failStore is the mutable half of the copy-on-write scheme: writers
// serialize on the graph-level block mutex, build a fresh snapshot, and
// publish it atomically. Two stores exist per graph — failures and
// capacity masks — and every transition of either republishes the union
// snapshot traversals read.
type failStore struct {
	snap atomic.Pointer[FailState]
}

// blockState bundles the two mark layers and their precomputed union.
// blockMu serializes every writer of either layer, so the union snapshot
// can never be published out of order with the layer it was derived from.
type blockState struct {
	mu      sync.Mutex
	fail    failStore
	mask    failStore
	blocked atomic.Pointer[FailState]
}

// Failures returns the current failure snapshot, nil when nothing is
// failed. The snapshot is immutable and safe to read concurrently with
// later Fail/Restore calls (which publish fresh snapshots).
func (g *Graph) Failures() *FailState { return g.block.fail.snap.Load() }

// Masked returns the current capacity-mask snapshot, nil when nothing is
// masked. Same immutability contract as Failures.
func (g *Graph) Masked() *FailState { return g.block.mask.snap.Load() }

// Blocked returns the union of the failure and mask snapshots — the set of
// elements no traversal may use — nil when the graph is fully open. This
// is the snapshot every shortest-path loop and VM-placement filter reads;
// damage detection reads Failures instead, because a masked (merely full)
// element does not break the forests already crossing it.
func (g *Graph) Blocked() *FailState { return g.block.blocked.Load() }

// EdgeFailed reports whether edge id is currently failed.
func (g *Graph) EdgeFailed(id EdgeID) bool { return g.block.fail.snap.Load().EdgeFailed(id) }

// NodeFailed reports whether node id is currently failed.
func (g *Graph) NodeFailed(id NodeID) bool { return g.block.fail.snap.Load().NodeFailed(id) }

// EdgeMasked reports whether edge id is currently capacity-masked.
func (g *Graph) EdgeMasked(id EdgeID) bool { return g.block.mask.snap.Load().EdgeFailed(id) }

// NodeMasked reports whether node id is currently capacity-masked.
func (g *Graph) NodeMasked(id NodeID) bool { return g.block.mask.snap.Load().NodeFailed(id) }

// EdgeBlocked reports whether edge id is failed or masked.
func (g *Graph) EdgeBlocked(id EdgeID) bool { return g.block.blocked.Load().EdgeFailed(id) }

// NodeBlocked reports whether node id is failed or masked.
func (g *Graph) NodeBlocked(id NodeID) bool { return g.block.blocked.Load().NodeFailed(id) }

// unionBits returns the word-wise union of two bitsets (aliasing the
// longer one when the other is empty).
func unionBits(a, b []uint64) []uint64 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	long, short := a, b
	if len(long) < len(short) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return out
}

// republishBlocked recomputes the union snapshot. Callers hold block.mu.
func (g *Graph) republishBlocked() {
	f, m := g.block.fail.snap.Load(), g.block.mask.snap.Load()
	switch {
	case f == nil && m == nil:
		g.block.blocked.Store(nil)
	case m == nil:
		g.block.blocked.Store(f)
	case f == nil:
		g.block.blocked.Store(m)
	default:
		g.block.blocked.Store(&FailState{
			Edges: unionBits(f.Edges, m.Edges),
			Nodes: unionBits(f.Nodes, m.Nodes),
		})
	}
}

// setMarkBit publishes a snapshot of the chosen store with bit i of the
// chosen bitset set to val, reporting whether the state actually changed.
// Only actual changes republish the union and advance the cost epoch,
// mirroring SetEdgeCost's no-op discipline.
func (g *Graph) setMarkBit(store *failStore, edge bool, i, size int, val bool) bool {
	g.block.mu.Lock()
	defer g.block.mu.Unlock()
	old := store.snap.Load()
	var cur []uint64
	if old != nil {
		if edge {
			cur = old.Edges
		} else {
			cur = old.Nodes
		}
	}
	if bitGet(cur, i) == val {
		return false
	}
	words := (size + 63) / 64
	next := make([]uint64, words)
	copy(next, cur)
	if val {
		next[i>>6] |= 1 << (uint(i) & 63)
	} else {
		next[i>>6] &^= 1 << (uint(i) & 63)
	}
	ns := &FailState{}
	if old != nil {
		ns.Edges, ns.Nodes = old.Edges, old.Nodes
	}
	if edge {
		ns.Edges = next
	} else {
		ns.Nodes = next
	}
	store.snap.Store(ns)
	g.republishBlocked()
	g.epoch.Add(1)
	return true
}

// FailEdge marks edge id failed: every traversal from now on routes around
// it. It reports whether the state changed (failing an already-failed edge
// is a no-op that keeps caches warm). The cost epoch advances on change.
func (g *Graph) FailEdge(id EdgeID) bool {
	if !g.ValidEdge(id) {
		return false
	}
	return g.setMarkBit(&g.block.fail, true, int(id), len(g.edges), true)
}

// FailNode marks node id failed: traversals neither enter nor leave it,
// and a failed VM hosts no new VNFs. Reports whether the state changed.
func (g *Graph) FailNode(id NodeID) bool {
	if !g.Valid(id) {
		return false
	}
	return g.setMarkBit(&g.block.fail, false, int(id), len(g.nodes), true)
}

// RestoreEdge clears the failure mark on edge id — O(1) beyond the
// snapshot copy; no structure was deleted, so nothing is rebuilt. Reports
// whether the state changed.
func (g *Graph) RestoreEdge(id EdgeID) bool {
	if !g.ValidEdge(id) {
		return false
	}
	return g.setMarkBit(&g.block.fail, true, int(id), len(g.edges), false)
}

// RestoreNode clears the failure mark on node id.
func (g *Graph) RestoreNode(id NodeID) bool {
	if !g.Valid(id) {
		return false
	}
	return g.setMarkBit(&g.block.fail, false, int(id), len(g.nodes), false)
}

// MaskEdge marks edge id capacity-saturated: traversals route around it
// exactly as around a failed edge, but forests already crossing it are
// not considered damaged — the link is full, not broken. Capacitated
// Solver sessions mask a link the moment one more request's demand would
// not fit, which is how enforcement reaches the oracle's cost view.
// Reports whether the state changed; the cost epoch advances on change.
func (g *Graph) MaskEdge(id EdgeID) bool {
	if !g.ValidEdge(id) {
		return false
	}
	return g.setMarkBit(&g.block.mask, true, int(id), len(g.edges), true)
}

// MaskNode marks node id capacity-saturated: no traversal enters it and
// no new VNF is placed on it, while the VNFs it already hosts keep
// serving. Reports whether the state changed.
func (g *Graph) MaskNode(id NodeID) bool {
	if !g.Valid(id) {
		return false
	}
	return g.setMarkBit(&g.block.mask, false, int(id), len(g.nodes), true)
}

// UnmaskEdge clears the saturation mark on edge id (a departure freed
// capacity). Reports whether the state changed.
func (g *Graph) UnmaskEdge(id EdgeID) bool {
	if !g.ValidEdge(id) {
		return false
	}
	return g.setMarkBit(&g.block.mask, true, int(id), len(g.edges), false)
}

// UnmaskNode clears the saturation mark on node id.
func (g *Graph) UnmaskNode(id NodeID) bool {
	if !g.Valid(id) {
		return false
	}
	return g.setMarkBit(&g.block.mask, false, int(id), len(g.nodes), false)
}

// RestoreAll clears every failure mark, returning how many edges and nodes
// were restored. Capacity masks are untouched — restoring a failed link
// does not create headroom on a saturated one. The epoch advances once
// when anything changed.
func (g *Graph) RestoreAll() (edges, nodes int) {
	g.block.mu.Lock()
	defer g.block.mu.Unlock()
	old := g.block.fail.snap.Load()
	edges, nodes = old.Counts()
	if edges == 0 && nodes == 0 {
		return 0, 0
	}
	g.block.fail.snap.Store(nil)
	g.republishBlocked()
	g.epoch.Add(1)
	return edges, nodes
}

// UnmaskAll clears every capacity mask at once (a capacitated session
// resetting its load state), returning how many edges and nodes were
// unmasked. Failure marks are untouched.
func (g *Graph) UnmaskAll() (edges, nodes int) {
	g.block.mu.Lock()
	defer g.block.mu.Unlock()
	old := g.block.mask.snap.Load()
	edges, nodes = old.Counts()
	if edges == 0 && nodes == 0 {
		return 0, 0
	}
	g.block.mask.snap.Store(nil)
	g.republishBlocked()
	g.epoch.Add(1)
	return edges, nodes
}
