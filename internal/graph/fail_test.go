package graph

import (
	"math"
	"math/rand"
	"testing"
)

// line builds a path graph 0-1-2-...-n with unit edge costs and returns
// the edge ids in order.
func lineGraph(n int) (*Graph, []EdgeID) {
	g := New(n, n-1)
	for i := 0; i < n; i++ {
		g.AddSwitch("")
	}
	edges := make([]EdgeID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, g.MustAddEdge(NodeID(i), NodeID(i+1), 1))
	}
	return g, edges
}

func TestFailEdgeRoutesAround(t *testing.T) {
	// Triangle with a cheap direct edge and an expensive detour.
	g := New(3, 3)
	a, b, c := g.AddSwitch("a"), g.AddSwitch("b"), g.AddSwitch("c")
	direct := g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 2)
	g.MustAddEdge(c, b, 2)

	sp := Dijkstra(g, a)
	if sp.Dist[b] != 1 {
		t.Fatalf("pre-failure dist a→b = %v, want 1", sp.Dist[b])
	}
	epoch := g.CostEpoch()
	if !g.FailEdge(direct) {
		t.Fatal("FailEdge reported no change")
	}
	if g.CostEpoch() == epoch {
		t.Fatal("FailEdge did not advance the cost epoch")
	}
	if !g.EdgeFailed(direct) {
		t.Fatal("EdgeFailed(direct) = false after FailEdge")
	}
	sp = Dijkstra(g, a)
	if sp.Dist[b] != 4 {
		t.Fatalf("post-failure dist a→b = %v, want 4 via detour", sp.Dist[b])
	}
	// Failing again is a no-op: no epoch churn.
	epoch = g.CostEpoch()
	if g.FailEdge(direct) || g.CostEpoch() != epoch {
		t.Fatal("re-failing a failed edge must be a no-op")
	}
	if !g.RestoreEdge(direct) {
		t.Fatal("RestoreEdge reported no change")
	}
	if g.CostEpoch() == epoch {
		t.Fatal("RestoreEdge did not advance the cost epoch")
	}
	sp = Dijkstra(g, a)
	if sp.Dist[b] != 1 {
		t.Fatalf("post-restore dist a→b = %v, want 1", sp.Dist[b])
	}
}

func TestFailNodeSeversComponent(t *testing.T) {
	g, _ := lineGraph(5)
	g.FailNode(2)
	sp := Dijkstra(g, 0)
	if sp.Dist[1] != 1 {
		t.Fatalf("dist 0→1 = %v, want 1", sp.Dist[1])
	}
	for _, v := range []NodeID{2, 3, 4} {
		if !math.IsInf(sp.Dist[v], 1) {
			t.Fatalf("node %d reachable (%v) across failed node 2", v, sp.Dist[v])
		}
	}
	// A failed source reaches nothing, itself included.
	sp = Dijkstra(g, 2)
	for v := range sp.Dist {
		if !math.IsInf(sp.Dist[v], 1) {
			t.Fatalf("failed source reaches node %d (dist %v)", v, sp.Dist[v])
		}
	}
	g.RestoreNode(2)
	sp = Dijkstra(g, 0)
	if sp.Dist[4] != 4 {
		t.Fatalf("post-restore dist 0→4 = %v, want 4", sp.Dist[4])
	}
}

func TestFailStateSnapshots(t *testing.T) {
	g, edges := lineGraph(70) // >64 elements exercises the second bitset word
	if g.Failures() != nil {
		t.Fatal("fresh graph has a non-nil failure snapshot")
	}
	g.FailEdge(edges[0])
	g.FailEdge(edges[68])
	g.FailNode(67)
	snap := g.Failures()
	fe, fn := snap.Counts()
	if fe != 2 || fn != 1 {
		t.Fatalf("Counts() = (%d,%d), want (2,1)", fe, fn)
	}
	if got := snap.FailedEdges(); len(got) != 2 || got[0] != edges[0] || got[1] != edges[68] {
		t.Fatalf("FailedEdges() = %v", got)
	}
	if got := snap.FailedNodes(); len(got) != 1 || got[0] != 67 {
		t.Fatalf("FailedNodes() = %v", got)
	}
	// Snapshots are immutable: restores publish a new one.
	g.RestoreAll()
	if fe, fn = snap.Counts(); fe != 2 || fn != 1 {
		t.Fatal("old snapshot mutated by RestoreAll")
	}
	if g.Failures() != nil {
		t.Fatal("RestoreAll left a non-nil snapshot")
	}
	if e, n := g.RestoreAll(); e != 0 || n != 0 {
		t.Fatalf("second RestoreAll restored (%d,%d), want (0,0)", e, n)
	}
}

func TestFailCloneShares(t *testing.T) {
	g, edges := lineGraph(4)
	g.FailEdge(edges[1])
	c := g.Clone()
	if !c.EdgeFailed(edges[1]) {
		t.Fatal("clone lost the failure mark")
	}
	c.RestoreEdge(edges[1])
	if g.EdgeFailed(edges[1]) != true {
		t.Fatal("restoring on the clone leaked into the original")
	}
}

// TestFailDijkstraMatchesBellmanFord cross-checks the SSSP cores under
// random failure patterns, with all three queue variants forced through
// per-arena configs.
func TestFailDijkstraMatchesBellmanFord(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"heap", Config{BucketQueueMinNodes: -1, DeltaSteppingMinNodes: -1}},
		{"bucket", Config{BucketQueueMinNodes: 1, DeltaSteppingMinNodes: -1}},
		{"delta", Config{DeltaSteppingMinNodes: 1}},
	}
	for _, variant := range variants {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 20; trial++ {
			g := RandomConnected(RandomConfig{Nodes: 30, ExtraEdges: 40, MaxEdge: 5}, int64(trial))
			for i := 0; i < 5; i++ {
				g.FailEdge(EdgeID(rng.Intn(g.NumEdges())))
			}
			for i := 0; i < 2; i++ {
				g.FailNode(NodeID(rng.Intn(g.NumNodes())))
			}
			src := NodeID(rng.Intn(g.NumNodes()))
			want := BellmanFord(g, src)
			got := DijkstraBatch(g, []NodeID{src}, NewArenaWith(variant.cfg))[0]
			for v := range want.Dist {
				if want.Dist[v] != got.Dist[v] && !(math.IsInf(want.Dist[v], 1) && math.IsInf(got.Dist[v], 1)) {
					t.Fatalf("%s trial %d: dist[%d] = %v, want %v", variant.name, trial, v, got.Dist[v], want.Dist[v])
				}
			}
		}
	}
}

// TestFailBatchConsistent pins DijkstraBatch to the single-source runs
// under failures (shared arena, shared failure snapshot).
func TestFailBatchConsistent(t *testing.T) {
	g := RandomConnected(RandomConfig{Nodes: 40, ExtraEdges: 60, MaxEdge: 5}, 11)
	g.FailEdge(3)
	g.FailNode(5)
	sources := []NodeID{0, 5, 9, 21}
	batch := DijkstraBatch(g, sources, nil)
	for i, s := range sources {
		single := Dijkstra(g, s)
		for v := range single.Dist {
			bd, sd := batch[i].Dist[v], single.Dist[v]
			if bd != sd && !(math.IsInf(bd, 1) && math.IsInf(sd, 1)) {
				t.Fatalf("source %d: batch dist[%d] = %v, single = %v", s, v, bd, sd)
			}
		}
	}
}
