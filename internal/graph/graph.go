// Package graph provides the weighted-graph substrate used by every other
// package in this repository: an undirected multigraph with node setup costs
// (for VMs) and edge connection costs (for links), plus shortest paths,
// minimum spanning trees, metric closures, and DOT export.
//
// The model follows Section III of the paper: V = M ∪ U where M is the set
// of virtual-machine nodes carrying a nonnegative setup cost and U is the
// set of switches carrying cost 0. Links carry nonnegative connection costs.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Kind discriminates node roles in the network.
type Kind uint8

// Node kinds. A VM can host exactly one VNF; switches only forward.
const (
	KindSwitch Kind = iota + 1
	KindVM
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindVM:
		return "vm"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NodeID identifies a node within a Graph. IDs are dense, starting at 0.
type NodeID int

// EdgeID identifies an edge within a Graph. IDs are dense, starting at 0.
type EdgeID int

// None is the sentinel for "no node" (e.g. absent parent in a path tree).
const None NodeID = -1

// NoEdge is the sentinel for "no edge".
const NoEdge EdgeID = -1

// Node is a vertex of the network.
type Node struct {
	Kind Kind
	// Cost is the setup cost paid when the node hosts an enabled VNF.
	// Always 0 for switches.
	Cost float64
	// Name is an optional label used in DOT export and error messages.
	Name string
}

// Edge is an undirected link between two nodes.
type Edge struct {
	U, V NodeID
	// Cost is the connection cost paid each time the link appears in the
	// forest (a duplicated link is paid per duplication).
	Cost float64
}

// Other returns the endpoint of e that is not n.
func (e Edge) Other(n NodeID) NodeID {
	if e.U == n {
		return e.V
	}
	return e.U
}

// Arc is an adjacency entry: the neighbour reached and the edge used.
type Arc struct {
	To   NodeID
	Edge EdgeID
}

// Graph is an undirected multigraph with costed nodes and edges.
// The zero value is an empty graph ready to use.
type Graph struct {
	nodes []Node
	edges []Edge
	adj   [][]Arc
	// epoch counts cost generations: it advances whenever a node or edge
	// cost actually changes (or on an explicit BumpCostEpoch), so caches
	// keyed by it can tell stale derived state from fresh without being
	// dropped eagerly. Topology is immutable after construction, so the
	// epoch fully identifies the cost surface.
	epoch atomic.Uint64
	// csrCache is the lazily built flat adjacency view used by the
	// shortest-path hot loops; csrMu serializes (re)builds. See csr.go.
	csrCache atomic.Pointer[csrLayout]
	csrMu    sync.Mutex
	// maxCostCache memoizes the maximum edge cost per (epoch, edge count):
	// the bucket-queue SSSP sizes its calendar from it on every run, and
	// rescanning the edge table each time would tax exactly the large
	// graphs the queue exists for.
	maxCostCache atomic.Pointer[maxCostEntry]
	// deltaCache memoizes the delta-stepping light/heavy arc partition per
	// cost epoch (see delta.go); deltaMu serializes rebuilds.
	deltaCache atomic.Pointer[deltaLayout]
	deltaMu    sync.Mutex
	// block holds the copy-on-write failed- and capacity-masked-element
	// snapshots plus their precomputed union (see fail.go); nil snapshots
	// mean the graph is fully open, which is the steady state the
	// traversal hot loops are optimized for.
	block blockState
}

// maxCostEntry is one memoized maximum-edge-cost computation, valid while
// the cost epoch and edge count both still match.
type maxCostEntry struct {
	epoch uint64
	edges int
	max   float64
}

// maxEdgeCost returns the largest edge connection cost, 0 for an edgeless
// graph. Memoized per (cost epoch, edge count); concurrent callers may
// race to fill the memo, all computing the same value.
func (g *Graph) maxEdgeCost() float64 {
	epoch := g.epoch.Load()
	if e := g.maxCostCache.Load(); e != nil && e.epoch == epoch && e.edges == len(g.edges) {
		return e.max
	}
	m := 0.0
	for i := range g.edges {
		if c := g.edges[i].Cost; c > m {
			m = c
		}
	}
	g.maxCostCache.Store(&maxCostEntry{epoch: epoch, edges: len(g.edges), max: m})
	return m
}

// New returns an empty graph with capacity hints.
func New(nodeHint, edgeHint int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, nodeHint),
		edges: make([]Edge, 0, edgeHint),
		adj:   make([][]Arc, 0, nodeHint),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddSwitch adds a zero-cost switch node and returns its ID.
func (g *Graph) AddSwitch(name string) NodeID {
	return g.addNode(Node{Kind: KindSwitch, Name: name})
}

// AddVM adds a VM node with the given setup cost and returns its ID.
func (g *Graph) AddVM(name string, cost float64) NodeID {
	return g.addNode(Node{Kind: KindVM, Cost: cost, Name: name})
}

func (g *Graph) addNode(n Node) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge adds an undirected edge between u and v with the given connection
// cost and returns its ID. Self-loops are rejected.
func (g *Graph) AddEdge(u, v NodeID, cost float64) (EdgeID, error) {
	if !g.Valid(u) || !g.Valid(v) {
		return NoEdge, fmt.Errorf("graph: edge endpoint out of range: (%d,%d) with %d nodes", u, v, len(g.nodes))
	}
	if u == v {
		return NoEdge, fmt.Errorf("graph: self-loop on node %d", u)
	}
	if cost < 0 || math.IsNaN(cost) {
		return NoEdge, fmt.Errorf("graph: invalid edge cost %v on (%d,%d)", cost, u, v)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v, Cost: cost})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for hand-built
// topologies and tests where the inputs are static.
func (g *Graph) MustAddEdge(u, v NodeID, cost float64) EdgeID {
	id, err := g.AddEdge(u, v, cost)
	if err != nil {
		panic(err)
	}
	return id
}

// Valid reports whether id names a node of g.
func (g *Graph) Valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// ValidEdge reports whether id names an edge of g.
func (g *Graph) ValidEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// Node returns the node record for id. It panics if id is out of range.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge record for id. It panics if id is out of range.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// NodeCost returns the setup cost of id (0 for switches).
func (g *Graph) NodeCost(id NodeID) float64 { return g.nodes[id].Cost }

// EdgeCost returns the connection cost of edge id.
func (g *Graph) EdgeCost(id EdgeID) float64 { return g.edges[id].Cost }

// SetNodeCost updates the setup cost of a node (used by load-aware pricing).
// The cost epoch advances only when the value actually changes, so blanket
// re-pricing passes that rewrite unchanged costs keep epoch-keyed caches
// warm.
func (g *Graph) SetNodeCost(id NodeID, cost float64) {
	if g.nodes[id].Cost == cost {
		return
	}
	g.nodes[id].Cost = cost
	g.epoch.Add(1)
}

// SetEdgeCost updates the connection cost of an edge (used by load-aware
// pricing). Like SetNodeCost, it advances the cost epoch only on an actual
// change.
func (g *Graph) SetEdgeCost(id EdgeID, cost float64) {
	if g.edges[id].Cost == cost {
		return
	}
	g.edges[id].Cost = cost
	g.epoch.Add(1)
}

// CostEpoch returns the current cost generation. Derived state (shortest-
// path trees, candidate chains) computed at epoch e is valid exactly while
// CostEpoch() == e.
func (g *Graph) CostEpoch() uint64 { return g.epoch.Load() }

// BumpCostEpoch force-advances the cost epoch, lazily invalidating every
// epoch-keyed cache over this graph without touching any of them. It exists
// for callers that mutated costs through means the setters cannot see, or
// that want an explicit full invalidation.
func (g *Graph) BumpCostEpoch() { g.epoch.Add(1) }

// Adj returns the adjacency list of n. The returned slice must not be
// modified by the caller.
func (g *Graph) Adj(n NodeID) []Arc { return g.adj[n] }

// Degree returns the number of incident edges of n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// IsVM reports whether n is a VM node.
func (g *Graph) IsVM(n NodeID) bool { return g.nodes[n].Kind == KindVM }

// VMs returns the IDs of all VM nodes in ascending order.
func (g *Graph) VMs() []NodeID {
	var out []NodeID
	for i, n := range g.nodes {
		if n.Kind == KindVM {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Switches returns the IDs of all switch nodes in ascending order.
func (g *Graph) Switches() []NodeID {
	var out []NodeID
	for i, n := range g.nodes {
		if n.Kind == KindSwitch {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// FindEdge returns the cheapest edge between u and v, or NoEdge if none
// exists.
func (g *Graph) FindEdge(u, v NodeID) EdgeID {
	best := NoEdge
	bestCost := math.Inf(1)
	for _, a := range g.adj[u] {
		if a.To == v && g.edges[a.Edge].Cost < bestCost {
			best = a.Edge
			bestCost = g.edges[a.Edge].Cost
		}
	}
	return best
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		nodes: append([]Node(nil), g.nodes...),
		edges: append([]Edge(nil), g.edges...),
		adj:   make([][]Arc, len(g.adj)),
	}
	for i, a := range g.adj {
		out.adj[i] = append([]Arc(nil), a...)
	}
	out.epoch.Store(g.epoch.Load())
	// Failure/mask snapshots are immutable, so the clone can share the
	// current ones; its own Fail/Restore/Mask calls publish fresh
	// snapshots.
	out.block.fail.snap.Store(g.block.fail.snap.Load())
	out.block.mask.snap.Store(g.block.mask.snap.Load())
	out.block.blocked.Store(g.block.blocked.Load())
	return out
}

// ErrDisconnected is returned when a required path does not exist.
var ErrDisconnected = errors.New("graph: nodes are disconnected")

// Connected reports whether all nodes of g are in one connected component.
// The empty graph is connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[n] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == len(g.nodes)
}

// TotalEdgeCost returns the sum of all edge connection costs.
func (g *Graph) TotalEdgeCost() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.Cost
	}
	return s
}

// Validate checks internal consistency and cost sanity. It is intended for
// tests and for validating generated topologies.
func (g *Graph) Validate() error {
	if len(g.adj) != len(g.nodes) {
		return fmt.Errorf("graph: adjacency size %d != node count %d", len(g.adj), len(g.nodes))
	}
	deg := make([]int, len(g.nodes))
	for i, e := range g.edges {
		if !g.Valid(e.U) || !g.Valid(e.V) {
			return fmt.Errorf("graph: edge %d has bad endpoints (%d,%d)", i, e.U, e.V)
		}
		if e.Cost < 0 || math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
			return fmt.Errorf("graph: edge %d has bad cost %v", i, e.Cost)
		}
		deg[e.U]++
		deg[e.V]++
	}
	for i, n := range g.nodes {
		if n.Kind == KindSwitch && n.Cost != 0 {
			return fmt.Errorf("graph: switch %d has nonzero cost %v", i, n.Cost)
		}
		if n.Cost < 0 || math.IsNaN(n.Cost) || math.IsInf(n.Cost, 0) {
			return fmt.Errorf("graph: node %d has bad cost %v", i, n.Cost)
		}
		if len(g.adj[i]) != deg[i] {
			return fmt.Errorf("graph: node %d adjacency length %d != degree %d", i, len(g.adj[i]), deg[i])
		}
		for _, a := range g.adj[i] {
			if !g.ValidEdge(a.Edge) {
				return fmt.Errorf("graph: node %d references bad edge %d", i, a.Edge)
			}
			e := g.edges[a.Edge]
			if e.Other(NodeID(i)) != a.To {
				return fmt.Errorf("graph: node %d arc to %d does not match edge %d endpoints", i, a.To, a.Edge)
			}
		}
	}
	return nil
}
