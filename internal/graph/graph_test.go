package graph

import (
	"math"
	"strings"
	"testing"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4, 5)
	a := g.AddSwitch("a")
	b := g.AddVM("b", 5)
	c := g.AddVM("c", 7)
	d := g.AddSwitch("d")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 4)
	g.MustAddEdge(b, c, 2)
	g.MustAddEdge(b, d, 6)
	g.MustAddEdge(c, d, 1)
	return g
}

func TestAddAndQuery(t *testing.T) {
	g := buildDiamond(t)
	if got, want := g.NumNodes(), 4; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 5; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	if !g.IsVM(1) || g.IsVM(0) {
		t.Fatalf("IsVM mis-kinded nodes")
	}
	if got := g.NodeCost(2); got != 7 {
		t.Fatalf("NodeCost(2) = %v, want 7", got)
	}
	if got := len(g.VMs()); got != 2 {
		t.Fatalf("VMs count = %d, want 2", got)
	}
	if got := len(g.Switches()); got != 2 {
		t.Fatalf("Switches count = %d, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2, 2)
	a := g.AddSwitch("a")
	g.AddSwitch("b")
	if _, err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(a, 9, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddEdge(a, 1, -1); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := g.AddEdge(a, 1, math.NaN()); err == nil {
		t.Error("NaN cost accepted")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 8}
	if e.Other(3) != 8 || e.Other(8) != 3 {
		t.Fatalf("Other mismatch: %v %v", e.Other(3), e.Other(8))
	}
}

func TestFindEdgePicksCheapest(t *testing.T) {
	g := New(2, 2)
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	g.MustAddEdge(a, b, 5)
	want := g.MustAddEdge(a, b, 2)
	if got := g.FindEdge(a, b); got != want {
		t.Fatalf("FindEdge = %v, want %v", got, want)
	}
	if got := g.FindEdge(b, a); got != want {
		t.Fatalf("FindEdge reversed = %v, want %v", got, want)
	}
}

func TestFindEdgeMissing(t *testing.T) {
	g := New(3, 1)
	a := g.AddSwitch("a")
	g.AddSwitch("b")
	c := g.AddSwitch("c")
	if got := g.FindEdge(a, c); got != NoEdge {
		t.Fatalf("FindEdge = %v, want NoEdge", got)
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	c.SetEdgeCost(0, 99)
	c.SetNodeCost(1, 42)
	if g.EdgeCost(0) == 99 {
		t.Error("Clone shares edge storage")
	}
	if g.NodeCost(1) == 42 {
		t.Error("Clone shares node storage")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
}

func TestConnected(t *testing.T) {
	g := buildDiamond(t)
	if !g.Connected() {
		t.Fatal("diamond should be connected")
	}
	g.AddSwitch("island")
	if g.Connected() {
		t.Fatal("island should disconnect")
	}
	var empty Graph
	if !empty.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestDijkstraDiamond(t *testing.T) {
	g := buildDiamond(t)
	sp := Dijkstra(g, 0)
	want := []float64{0, 1, 3, 4}
	for i, w := range want {
		if got := sp.Dist[i]; math.Abs(got-w) > 1e-9 {
			t.Errorf("Dist[%d] = %v, want %v", i, got, w)
		}
	}
	path := sp.PathTo(3)
	wantPath := []NodeID{0, 1, 2, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("PathTo(3) = %v, want %v", path, wantPath)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("PathTo(3) = %v, want %v", path, wantPath)
		}
	}
	edges := sp.EdgesTo(3)
	if len(edges) != 3 {
		t.Fatalf("EdgesTo(3) = %v, want 3 edges", edges)
	}
	var sum float64
	for _, e := range edges {
		sum += g.EdgeCost(e)
	}
	if math.Abs(sum-sp.Dist[3]) > 1e-9 {
		t.Fatalf("edge sum %v != dist %v", sum, sp.Dist[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(2, 0)
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	sp := Dijkstra(g, a)
	if sp.Reachable(b) {
		t.Fatal("b should be unreachable")
	}
	if sp.PathTo(b) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
	if sp.EdgesTo(b) != nil {
		t.Fatal("EdgesTo unreachable should be nil")
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := RandomConnected(RandomConfig{
			Nodes: 40, ExtraEdges: 60, VMFraction: 0.3, MaxEdge: 10, MaxSetup: 5,
		}, seed)
		d := Dijkstra(g, 0)
		b := BellmanFord(g, 0)
		for v := 0; v < g.NumNodes(); v++ {
			if math.Abs(d.Dist[v]-b.Dist[v]) > 1e-6 {
				t.Fatalf("seed %d node %d: dijkstra %v bellman-ford %v", seed, v, d.Dist[v], b.Dist[v])
			}
		}
	}
}

func TestDijkstraAllSourceOrderAndDedup(t *testing.T) {
	g := buildDiamond(t)
	trees := DijkstraAll(g, []NodeID{0, 0, 2})
	if len(trees) != 3 {
		t.Fatalf("got %d trees, want 3 (source order)", len(trees))
	}
	if trees[0].Source != 0 || trees[1].Source != 0 || trees[2].Source != 2 {
		t.Fatalf("trees out of source order: %d, %d, %d",
			trees[0].Source, trees[1].Source, trees[2].Source)
	}
	if trees[0] != trees[1] {
		t.Fatal("duplicate sources should share one tree")
	}
	if trees[0] == trees[2] {
		t.Fatal("distinct sources aliased")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions should succeed")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union should fail")
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Fatal("Same gave wrong answer")
	}
	if uf.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", uf.Sets())
	}
}

func TestMSTDiamond(t *testing.T) {
	g := buildDiamond(t)
	edges, total := MST(g)
	if len(edges) != 3 {
		t.Fatalf("MST edges = %d, want 3", len(edges))
	}
	if math.Abs(total-4) > 1e-9 { // edges (a,b)=1,(b,c)=2,(c,d)=1
		t.Fatalf("MST cost = %v, want 4", total)
	}
}

func TestMSTIsSpanningAndMinimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomConnected(RandomConfig{
			Nodes: 30, ExtraEdges: 50, VMFraction: 0.2, MaxEdge: 9, MaxSetup: 3,
		}, seed)
		edges, total := MST(g)
		if len(edges) != g.NumNodes()-1 {
			t.Fatalf("seed %d: MST has %d edges, want %d", seed, len(edges), g.NumNodes()-1)
		}
		uf := NewUnionFind(g.NumNodes())
		for _, id := range edges {
			e := g.Edge(id)
			if !uf.Union(int(e.U), int(e.V)) {
				t.Fatalf("seed %d: MST contains a cycle", seed)
			}
		}
		// Cycle property spot check: every non-tree edge must cost at least
		// as much as the cheapest tree edge (weak but fast sanity check);
		// stronger check: re-run Prim-like verification via total
		// comparison with a second Kruskal over shuffled ties.
		_, total2 := MSTOn(g, allNodes(g))
		if math.Abs(total-total2) > 1e-6 {
			t.Fatalf("seed %d: MST %v != MSTOn all nodes %v", seed, total, total2)
		}
	}
}

func allNodes(g *Graph) []NodeID {
	out := make([]NodeID, g.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

func TestMSTOnSubset(t *testing.T) {
	g := buildDiamond(t)
	edges, total := MSTOn(g, []NodeID{0, 1, 2})
	if len(edges) != 2 {
		t.Fatalf("subset MST edges = %d, want 2", len(edges))
	}
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("subset MST cost = %v, want 3", total)
	}
}

func TestMetricClosure(t *testing.T) {
	g := buildDiamond(t)
	mc := NewMetricClosure(g, []NodeID{0, 3})
	if got := mc.Distance(0, 3); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Distance(0,3) = %v, want 4", got)
	}
	p := mc.Path(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Fatalf("Path(0,3) = %v", p)
	}
	pe := mc.PathEdges(0, 3)
	if len(pe) != 3 {
		t.Fatalf("PathEdges(0,3) = %v", pe)
	}
}

func TestMetricClosureTriangleInequality(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomConnected(RandomConfig{
			Nodes: 25, ExtraEdges: 40, VMFraction: 0.4, MaxEdge: 7, MaxSetup: 4,
		}, seed)
		terms := allNodes(g)[:8]
		mc := NewMetricClosure(g, terms)
		for _, a := range terms {
			for _, b := range terms {
				for _, c := range terms {
					if mc.Distance(a, c) > mc.Distance(a, b)+mc.Distance(b, c)+1e-9 {
						t.Fatalf("seed %d: triangle inequality violated at (%d,%d,%d)", seed, a, b, c)
					}
				}
			}
		}
	}
}

func TestDOT(t *testing.T) {
	g := buildDiamond(t)
	s := DOT(g, "diamond", map[EdgeID]bool{0: true})
	for _, want := range []string{"graph \"diamond\"", "shape=box", "style=bold", "n0 -- n1"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := buildDiamond(t)
	g.nodes[0].Cost = 3 // switch with nonzero cost
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject switch with nonzero cost")
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := RandomConnected(RandomConfig{
			Nodes: 15, ExtraEdges: 5, VMFraction: 0.5, MaxEdge: 5, MaxSetup: 5,
		}, seed)
		if !g.Connected() {
			t.Fatalf("seed %d: not connected", seed)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTotalEdgeCost(t *testing.T) {
	g := buildDiamond(t)
	if got := g.TotalEdgeCost(); math.Abs(got-14) > 1e-9 {
		t.Fatalf("TotalEdgeCost = %v, want 14", got)
	}
}
