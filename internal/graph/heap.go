package graph

// IndexedHeap is a non-interface indexed binary min-heap over dense int32
// item ids with float64 priorities, the hot-path replacement for
// container/heap: no interface boxing, no per-push allocation, and
// decrease-key through a position index. Ties are broken toward the
// smaller id, which makes every consumer (Dijkstra, Prim) fully
// deterministic regardless of insertion order.
//
// The position index restores itself: a heap that has been fully drained
// by Pop leaves pos entirely at -1, so pooled users can reuse the heap
// without an O(n) reset between runs.
type IndexedHeap struct {
	items []int32
	// pos[v] is the index of v in items, -1 when v is not queued.
	pos []int32
	// key[v] is v's current priority; meaningful only while v is queued.
	key []float64
}

// NewIndexedHeap returns an empty heap addressing ids 0..n-1.
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{}
	h.Grow(n)
	return h
}

// Grow extends the addressable id range to at least n, preserving queued
// content. It never shrinks.
func (h *IndexedHeap) Grow(n int) {
	if n <= len(h.pos) {
		return
	}
	old := len(h.pos)
	pos := make([]int32, n)
	copy(pos, h.pos)
	for i := old; i < n; i++ {
		pos[i] = -1
	}
	h.pos = pos
	key := make([]float64, n)
	copy(key, h.key)
	h.key = key
}

// Len returns the number of queued items.
func (h *IndexedHeap) Len() int { return len(h.items) }

// Key returns v's current priority; meaningful only while v is queued.
func (h *IndexedHeap) Key(v int32) float64 { return h.key[v] }

// Contains reports whether v is queued.
func (h *IndexedHeap) Contains(v int32) bool { return h.pos[v] >= 0 }

// Reset empties the heap, restoring the position index for the items
// still queued. Needed only when a drain was abandoned midway; a heap
// emptied by Pop is already reset.
func (h *IndexedHeap) Reset() {
	for _, v := range h.items {
		h.pos[v] = -1
	}
	h.items = h.items[:0]
}

func (h *IndexedHeap) less(a, b int32) bool {
	ka, kb := h.key[a], h.key[b]
	return ka < kb || (ka == kb && a < b)
}

// Update inserts v with priority k, or re-prioritizes it if already
// queued (both decrease and increase are handled).
func (h *IndexedHeap) Update(v int32, k float64) {
	h.key[v] = k
	if i := h.pos[v]; i >= 0 {
		if !h.siftUp(int(i)) {
			h.siftDown(int(i))
		}
		return
	}
	h.pos[v] = int32(len(h.items))
	h.items = append(h.items, v)
	h.siftUp(len(h.items) - 1)
}

// Pop removes and returns the minimum item and its priority.
func (h *IndexedHeap) Pop() (int32, float64) {
	top := h.items[0]
	k := h.key[top]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return top, k
}

func (h *IndexedHeap) siftUp(i int) bool {
	moved := false
	v := h.items[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.items[p]) {
			break
		}
		h.items[i] = h.items[p]
		h.pos[h.items[i]] = int32(i)
		i = p
		moved = true
	}
	h.items[i] = v
	h.pos[v] = int32(i)
	return moved
}

func (h *IndexedHeap) siftDown(i int) {
	v := h.items[i]
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && h.less(h.items[r], h.items[l]) {
			c = r
		}
		if !h.less(h.items[c], v) {
			break
		}
		h.items[i] = h.items[c]
		h.pos[h.items[i]] = int32(i)
		i = c
	}
	h.items[i] = v
	h.pos[v] = int32(i)
}
