package graph

import "testing"

func TestMaskEdgeRoutesAroundButIsNotDamage(t *testing.T) {
	// Same triangle as TestFailEdgeRoutesAround: a cheap direct edge and an
	// expensive detour. Masking must reroute exactly like failing, but the
	// failure snapshot must stay empty.
	g := New(3, 3)
	a, b, c := g.AddSwitch("a"), g.AddSwitch("b"), g.AddSwitch("c")
	direct := g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 2)
	g.MustAddEdge(c, b, 2)

	epoch := g.CostEpoch()
	if !g.MaskEdge(direct) {
		t.Fatal("MaskEdge reported no change")
	}
	if g.CostEpoch() == epoch {
		t.Fatal("MaskEdge did not advance the cost epoch")
	}
	if !g.EdgeMasked(direct) || !g.EdgeBlocked(direct) {
		t.Fatal("masked edge not reported masked/blocked")
	}
	if g.EdgeFailed(direct) {
		t.Fatal("masked edge must not be reported failed")
	}
	if g.Failures() != nil {
		t.Fatal("masking must leave the failure snapshot empty")
	}
	sp := Dijkstra(g, a)
	if sp.Dist[b] != 4 {
		t.Fatalf("post-mask dist a→b = %v, want 4 via detour", sp.Dist[b])
	}
	// Re-masking is a no-op; unmasking reopens the edge.
	epoch = g.CostEpoch()
	if g.MaskEdge(direct) || g.CostEpoch() != epoch {
		t.Fatal("re-masking a masked edge must be a no-op")
	}
	if !g.UnmaskEdge(direct) {
		t.Fatal("UnmaskEdge reported no change")
	}
	sp = Dijkstra(g, a)
	if sp.Dist[b] != 1 {
		t.Fatalf("post-unmask dist a→b = %v, want 1", sp.Dist[b])
	}
}

func TestMaskNodeBlocksTraversal(t *testing.T) {
	g, _ := lineGraph(4)
	if !g.MaskNode(1) {
		t.Fatal("MaskNode reported no change")
	}
	if !g.NodeMasked(1) || !g.NodeBlocked(1) || g.NodeFailed(1) {
		t.Fatal("mask flags wrong after MaskNode")
	}
	sp := Dijkstra(g, 0)
	if sp.Reachable(2) || sp.Reachable(3) {
		t.Fatal("masked node must sever traversal like a failed node")
	}
	if !g.UnmaskNode(1) {
		t.Fatal("UnmaskNode reported no change")
	}
	if sp := Dijkstra(g, 0); !sp.Reachable(3) {
		t.Fatal("unmasking must reopen the path")
	}
}

func TestBlockedIsUnionOfFailuresAndMasks(t *testing.T) {
	g, edges := lineGraph(5)
	g.FailEdge(edges[0])
	g.MaskEdge(edges[2])
	bl := g.Blocked()
	if !bl.EdgeFailed(edges[0]) || !bl.EdgeFailed(edges[2]) {
		t.Fatal("Blocked must contain both failed and masked edges")
	}
	if e, _ := g.Failures().Counts(); e != 1 {
		t.Fatalf("failure snapshot has %d edges, want 1", e)
	}
	if e, _ := g.Masked().Counts(); e != 1 {
		t.Fatalf("mask snapshot has %d edges, want 1", e)
	}

	// RestoreAll clears failures only; UnmaskAll clears masks only.
	if e, _ := g.RestoreAll(); e != 1 {
		t.Fatalf("RestoreAll cleared %d edges, want 1", e)
	}
	if !g.EdgeMasked(edges[2]) || !g.EdgeBlocked(edges[2]) {
		t.Fatal("RestoreAll must not clear capacity masks")
	}
	if g.EdgeBlocked(edges[0]) {
		t.Fatal("restored edge still blocked")
	}
	if e, _ := g.UnmaskAll(); e != 1 {
		t.Fatalf("UnmaskAll cleared %d edges, want 1", e)
	}
	if g.Blocked() != nil {
		t.Fatal("fully open graph must publish a nil blocked snapshot")
	}
}

func TestMaskCloneShares(t *testing.T) {
	g, edges := lineGraph(3)
	g.MaskEdge(edges[0])
	c := g.Clone()
	if !c.EdgeMasked(edges[0]) || !c.EdgeBlocked(edges[0]) {
		t.Fatal("clone must inherit mask and blocked snapshots")
	}
	// Diverge: unmasking the clone must not touch the original.
	c.UnmaskEdge(edges[0])
	if !g.EdgeMasked(edges[0]) {
		t.Fatal("unmasking the clone leaked into the original")
	}
}
