package graph

// MetricClosure is the complete graph over a node subset of an underlying
// graph, where the distance between two subset members is the shortest-path
// connection cost between them in the underlying graph. It retains the
// shortest-path trees so closure edges can be expanded back into real paths.
//
// The hot paths no longer use it — steiner.KMB resolves per-terminal trees
// through closureTrees/PathProvider so they can come from the epoch-keyed
// oracle cache — but it stays as the simple reference form of the closure:
// the triangle-inequality property tests (Lemma 1) and small offline
// analyses are its remaining consumers.
type MetricClosure struct {
	// Terminals are the subset nodes, in the order given at construction.
	Terminals []NodeID
	// Index maps a terminal NodeID to its row in Dist.
	Index map[NodeID]int
	// Dist[i][j] is the shortest-path cost between Terminals[i] and
	// Terminals[j].
	Dist [][]float64
	// Trees[t] is the Dijkstra tree rooted at terminal t.
	Trees map[NodeID]*ShortestPaths
}

// NewMetricClosure computes the metric closure of g over terminals. Each
// terminal contributes one Dijkstra run.
func NewMetricClosure(g *Graph, terminals []NodeID) *MetricClosure {
	mc := &MetricClosure{
		Terminals: append([]NodeID(nil), terminals...),
		Index:     make(map[NodeID]int, len(terminals)),
		Dist:      make([][]float64, len(terminals)),
		Trees:     make(map[NodeID]*ShortestPaths, len(terminals)),
	}
	for i, t := range mc.Terminals {
		mc.Index[t] = i
	}
	for _, t := range mc.Terminals {
		if _, ok := mc.Trees[t]; !ok {
			mc.Trees[t] = Dijkstra(g, t)
		}
	}
	for i, t := range mc.Terminals {
		mc.Dist[i] = make([]float64, len(mc.Terminals))
		sp := mc.Trees[t]
		for j, u := range mc.Terminals {
			mc.Dist[i][j] = sp.Dist[u]
		}
	}
	return mc
}

// Distance returns the closure distance between terminals a and b.
func (mc *MetricClosure) Distance(a, b NodeID) float64 {
	return mc.Dist[mc.Index[a]][mc.Index[b]]
}

// Path expands the closure edge (a,b) into the underlying node path a…b.
func (mc *MetricClosure) Path(a, b NodeID) []NodeID {
	return mc.Trees[a].PathTo(b)
}

// PathEdges expands the closure edge (a,b) into the underlying edge list.
func (mc *MetricClosure) PathEdges(a, b NodeID) []EdgeID {
	return mc.Trees[a].EdgesTo(b)
}
