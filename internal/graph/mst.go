package graph

import (
	"sort"
)

// MST computes a minimum spanning tree (or forest, if g is disconnected)
// with Kruskal's algorithm. It returns the selected edge IDs and their total
// cost.
func MST(g *Graph) ([]EdgeID, float64) {
	ids := make([]EdgeID, g.NumEdges())
	for i := range ids {
		ids[i] = EdgeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		return g.EdgeCost(ids[i]) < g.EdgeCost(ids[j])
	})
	uf := NewUnionFind(g.NumNodes())
	var out []EdgeID
	var total float64
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(int(e.U), int(e.V)) {
			out = append(out, id)
			total += e.Cost
		}
	}
	return out, total
}

// MSTOn computes a minimum spanning tree restricted to the given node subset
// using only edges whose endpoints both lie in the subset. It returns the
// selected edge IDs and their total cost. Nodes absent from subset are
// ignored entirely.
func MSTOn(g *Graph, subset []NodeID) ([]EdgeID, float64) {
	in := make(map[NodeID]bool, len(subset))
	for _, n := range subset {
		in[n] = true
	}
	var ids []EdgeID
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if in[e.U] && in[e.V] {
			ids = append(ids, EdgeID(i))
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		return g.EdgeCost(ids[i]) < g.EdgeCost(ids[j])
	})
	uf := NewUnionFind(g.NumNodes())
	var out []EdgeID
	var total float64
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(int(e.U), int(e.V)) {
			out = append(out, id)
			total += e.Cost
		}
	}
	return out, total
}
