package graph

import (
	"math/rand"
)

// RandomConfig controls RandomConnected generation.
type RandomConfig struct {
	Nodes      int     // total node count (must be >= 1)
	ExtraEdges int     // edges added beyond the connecting spanning tree
	VMFraction float64 // fraction of nodes that are VMs, in [0,1]
	MaxEdge    float64 // edge costs are uniform in (0, MaxEdge]
	MaxSetup   float64 // VM setup costs are uniform in (0, MaxSetup]
}

// RandomConnected builds a random connected graph: a random spanning tree
// plus ExtraEdges random chords. Generation is deterministic for a given
// seed. It is the shared instance generator for property-based tests.
func RandomConnected(cfg RandomConfig, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(cfg.Nodes, cfg.Nodes+cfg.ExtraEdges)
	for i := 0; i < cfg.Nodes; i++ {
		if rng.Float64() < cfg.VMFraction {
			g.AddVM("", 1+rng.Float64()*cfg.MaxSetup)
		} else {
			g.AddSwitch("")
		}
	}
	// Random spanning tree: connect node i to a random earlier node.
	for i := 1; i < cfg.Nodes; i++ {
		j := rng.Intn(i)
		g.MustAddEdge(NodeID(i), NodeID(j), 0.01+rng.Float64()*cfg.MaxEdge)
	}
	for k := 0; k < cfg.ExtraEdges && cfg.Nodes > 2; k++ {
		u := rng.Intn(cfg.Nodes)
		v := rng.Intn(cfg.Nodes)
		if u == v {
			continue
		}
		g.MustAddEdge(NodeID(u), NodeID(v), 0.01+rng.Float64()*cfg.MaxEdge)
	}
	return g
}

// SampleDistinct returns k distinct values drawn uniformly from pool. It
// panics if k > len(pool). Deterministic for a given rng.
func SampleDistinct(rng *rand.Rand, pool []NodeID, k int) []NodeID {
	if k > len(pool) {
		panic("graph: SampleDistinct k exceeds pool size")
	}
	perm := rng.Perm(len(pool))
	out := make([]NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}
