package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It backs Kruskal's MST and connectivity checks.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a union-find over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (uf *UnionFind) Same(a, b int) bool { return uf.Find(a) == uf.Find(b) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// SparseUnionFind is a disjoint-set forest over a lazily materialized
// element universe: elements spring into existence as singletons on first
// touch. Connectivity checks over a few dozen nodes of a 10k-node graph
// pay for the nodes they touch instead of an O(n) parent-array init —
// the per-embed Steiner assembly of a scaled arrival stream runs such
// checks on every request.
type SparseUnionFind struct {
	parent map[int]int
	rank   map[int]int
}

// NewSparseUnionFind returns an empty sparse union-find.
func NewSparseUnionFind() *SparseUnionFind {
	return &SparseUnionFind{parent: make(map[int]int), rank: make(map[int]int)}
}

// Find returns the representative of x's set, adding x as a singleton on
// first touch.
func (uf *SparseUnionFind) Find(x int) int {
	if _, ok := uf.parent[x]; !ok {
		uf.parent[x] = x
		return x
	}
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
func (uf *SparseUnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

// Same reports whether a and b are in the same set.
func (uf *SparseUnionFind) Same(a, b int) bool { return uf.Find(a) == uf.Find(b) }
