package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It backs Kruskal's MST and connectivity checks.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a union-find over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (uf *UnionFind) Same(a, b int) bool { return uf.Find(a) == uf.Find(b) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }
