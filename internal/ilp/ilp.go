// Package ilp implements a small branch-and-bound solver for 0/1 integer
// programs over the internal/lp simplex. Together with internal/sofip it
// replaces CPLEX for the paper's optimal baseline on small instances.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sof/internal/lp"
)

// Problem is a 0/1 ILP: an LP whose listed variables must be binary.
type Problem struct {
	// LP is the underlying relaxation (without the 0/1 bounds; the solver
	// adds x ≤ 1 rows itself).
	LP *lp.Problem
	// Binary lists the variables constrained to {0,1}. Variables not
	// listed remain continuous ≥ 0.
	Binary []int
	// MaxNodes bounds the branch-and-bound tree (default 200000).
	MaxNodes int
}

// Solution is an integral solution.
type Solution struct {
	X         []float64
	Objective float64
}

// ErrInfeasible is returned when no integral solution exists.
var ErrInfeasible = errors.New("ilp: infeasible")

// ErrNodeLimit is returned when the search exceeds MaxNodes.
var ErrNodeLimit = errors.New("ilp: node limit exceeded")

const intTol = 1e-6

type fixing struct {
	variable int
	value    float64
}

// Solve runs depth-first branch-and-bound with best-incumbent pruning.
func (p *Problem) Solve() (*Solution, error) {
	maxNodes := p.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	isBin := make(map[int]bool, len(p.Binary))
	for _, v := range p.Binary {
		if v < 0 || v >= p.LP.NumVars() {
			return nil, fmt.Errorf("ilp: binary variable %d out of range", v)
		}
		isBin[v] = true
	}
	// Branch-variable scans run over this sorted index list, never over the
	// isBin map: ties on fractionality must break toward the same variable
	// every run or the search tree wobbles with map order.
	binVars := make([]int, 0, len(isBin))
	for v := range isBin {
		binVars = append(binVars, v)
	}
	sort.Ints(binVars)

	var best *Solution
	nodes := 0
	var rec func(fixed []fixing) error
	rec = func(fixed []fixing) error {
		nodes++
		if nodes > maxNodes {
			return ErrNodeLimit
		}
		rel, err := p.solveRelaxation(fixed)
		if err != nil {
			return err
		}
		if rel.Status == lp.Infeasible {
			return nil
		}
		if rel.Status == lp.Unbounded {
			return errors.New("ilp: relaxation unbounded")
		}
		if best != nil && rel.Objective >= best.Objective-1e-9 {
			return nil // bound
		}
		// Most fractional binary variable.
		branchVar := -1
		worst := intTol
		for _, v := range binVars {
			frac := math.Abs(rel.X[v] - math.Round(rel.X[v]))
			if frac > worst {
				worst = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent.
			x := append([]float64(nil), rel.X...)
			for v := range isBin {
				x[v] = math.Round(x[v])
			}
			best = &Solution{X: x, Objective: rel.Objective}
			return nil
		}
		// Branch: explore the side suggested by the relaxation first.
		first, second := 1.0, 0.0
		if rel.X[branchVar] < 0.5 {
			first, second = 0.0, 1.0
		}
		if err := rec(append(fixed, fixing{branchVar, first})); err != nil {
			return err
		}
		return rec(append(append([]fixing(nil), fixed...), fixing{branchVar, second}))
	}
	if err := rec(nil); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}

// solveRelaxation solves the LP with binary upper bounds and the given
// fixings applied as equality rows.
func (p *Problem) solveRelaxation(fixed []fixing) (*lp.Solution, error) {
	// Rebuild the problem with the extra rows. lp.Problem has no row
	// removal, so we recreate it; acceptable at the instance sizes the
	// paper's optimum is computed on.
	q := lp.NewProblem(p.LP.NumVars())
	if err := p.LP.CopyInto(q); err != nil {
		return nil, err
	}
	for _, v := range p.Binary {
		if err := q.AddConstraint([]lp.Term{{Var: v, Coeff: 1}}, lp.LE, 1); err != nil {
			return nil, err
		}
	}
	for _, f := range fixed {
		if err := q.AddConstraint([]lp.Term{{Var: f.variable, Coeff: 1}}, lp.EQ, f.value); err != nil {
			return nil, err
		}
	}
	return q.Solve()
}
