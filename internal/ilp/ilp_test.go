package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sof/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a+6b+4c st 5a+4b+3c <= 8 (binary) → minimize negative.
	p := lp.NewProblem(3)
	_ = p.SetObjectiveCoeff(0, -10)
	_ = p.SetObjectiveCoeff(1, -6)
	_ = p.SetObjectiveCoeff(2, -4)
	_ = p.AddConstraint([]lp.Term{{Var: 0, Coeff: 5}, {Var: 1, Coeff: 4}, {Var: 2, Coeff: 3}}, lp.LE, 8)
	sol, err := (&Problem{LP: p, Binary: []int{0, 1, 2}}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Best: a+c = value 14 (weight 8).
	if math.Abs(sol.Objective+14) > 1e-6 {
		t.Fatalf("objective = %v, want -14", sol.Objective)
	}
	if sol.X[0] != 1 || sol.X[1] != 0 || sol.X[2] != 1 {
		t.Fatalf("x = %v, want [1 0 1]", sol.X)
	}
}

func TestInfeasibleIP(t *testing.T) {
	// x+y = 1.5 with x,y binary has fractional-only solutions.
	p := lp.NewProblem(2)
	_ = p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.EQ, 1.5)
	_, err := (&Problem{LP: p, Binary: []int{0, 1}}).Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y - x_c st x_c <= 2.5, x_c <= 10*y, y binary.
	// Taking y=1 lets x_c=2.5 → obj = 1-2.5 = -1.5.
	p := lp.NewProblem(2)
	_ = p.SetObjectiveCoeff(0, 1)  // y
	_ = p.SetObjectiveCoeff(1, -1) // x_c
	_ = p.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}}, lp.LE, 2.5)
	_ = p.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: -10}}, lp.LE, 0)
	sol, err := (&Problem{LP: p, Binary: []int{0}}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective+1.5) > 1e-6 {
		t.Fatalf("objective = %v, want -1.5", sol.Objective)
	}
}

func TestBinaryOutOfRange(t *testing.T) {
	p := lp.NewProblem(1)
	if _, err := (&Problem{LP: p, Binary: []int{5}}).Solve(); err == nil {
		t.Fatal("out-of-range binary accepted")
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing some branching with an absurdly small budget.
	p := lp.NewProblem(4)
	for i := 0; i < 4; i++ {
		_ = p.SetObjectiveCoeff(i, -1)
	}
	_ = p.AddConstraint([]lp.Term{
		{Var: 0, Coeff: 2}, {Var: 1, Coeff: 3}, {Var: 2, Coeff: 5}, {Var: 3, Coeff: 7},
	}, lp.LE, 8.5)
	_, err := (&Problem{LP: p, Binary: []int{0, 1, 2, 3}, MaxNodes: 1}).Solve()
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

// TestRandomKnapsacksAgainstBruteForce cross-validates branch-and-bound on
// random binary knapsacks against exhaustive enumeration.
func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		terms := make([]lp.Term, n)
		p := lp.NewProblem(n)
		for i := 0; i < n; i++ {
			values[i] = math.Floor(rng.Float64()*20) + 1
			weights[i] = math.Floor(rng.Float64()*10) + 1
			_ = p.SetObjectiveCoeff(i, -values[i])
			terms[i] = lp.Term{Var: i, Coeff: weights[i]}
		}
		capacity := math.Floor(rng.Float64()*20) + 5
		_ = p.AddConstraint(terms, lp.LE, capacity)
		binary := make([]int, n)
		for i := range binary {
			binary[i] = i
		}
		sol, err := (&Problem{LP: p, Binary: binary}).Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			var v, w float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += values[i]
					w += weights[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		if math.Abs(-sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: B&B %v, brute force %v", trial, -sol.Objective, best)
		}
	}
}
