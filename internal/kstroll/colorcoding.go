package kstroll

import (
	"math"
	"math/rand"
)

// ColorCodingSolver solves k-stroll with Alon–Yuster–Zwick color coding:
// each trial assigns every node one of K colors uniformly at random and a
// DP over (color subset, node) finds the cheapest colorful path; a path with
// K distinct colors has K distinct nodes. Each trial succeeds with
// probability K!/K^K, so the solver is exact with high probability for
// enough trials. Deterministic for a fixed Seed.
type ColorCodingSolver struct {
	// Trials is the number of random colorings (default 300 when zero).
	Trials int
	// Seed feeds the deterministic RNG.
	Seed int64
}

// Name implements Solver.
func (s *ColorCodingSolver) Name() string { return "colorcoding" }

// Solve implements Solver.
func (s *ColorCodingSolver) Solve(in *Instance) (*Walk, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if w, ok := trivial(in); ok {
		return w, nil
	}
	trials := s.Trials
	if trials == 0 {
		trials = 300
	}
	rng := rand.New(rand.NewSource(s.Seed))
	k := in.K
	n := in.N
	size := 1 << k
	var best *Walk

	color := make([]int, n)
	// dp[cs][v]: cheapest path Start→v using exactly the colors in cs.
	dp := make([][]float64, size)
	parent := make([][]int16, size)
	for cs := range dp {
		dp[cs] = make([]float64, n)
		parent[cs] = make([]int16, n)
	}
	for t := 0; t < trials; t++ {
		for v := range color {
			color[v] = rng.Intn(k)
		}
		// Give the endpoints fixed distinct colors to reduce wasted trials.
		color[in.Start] = 0
		color[in.End] = k - 1
		for cs := 0; cs < size; cs++ {
			for v := 0; v < n; v++ {
				dp[cs][v] = math.Inf(1)
				parent[cs][v] = -1
			}
		}
		dp[1<<color[in.Start]][in.Start] = 0
		for cs := 1; cs < size; cs++ {
			for v := 0; v < n; v++ {
				dv := dp[cs][v]
				if math.IsInf(dv, 1) || v == in.End {
					continue
				}
				for w := 0; w < n; w++ {
					cb := 1 << color[w]
					if cs&cb != 0 {
						continue
					}
					ncs := cs | cb
					nd := dv + in.Cost[v][w]
					if nd < dp[ncs][w] {
						dp[ncs][w] = nd
						parent[ncs][w] = int16(v)
					}
				}
			}
		}
		full := size - 1
		if c := dp[full][in.End]; !math.IsInf(c, 1) && (best == nil || c < best.Cost) {
			seq := reconstructColorful(parent, color, full, in.End, in.Start)
			best = &Walk{Seq: seq, Cost: c}
		}
	}
	if best == nil {
		// Colorful path never found (unlucky colorings or K infeasible);
		// fall back to insertion so callers always get a feasible walk when
		// one exists.
		return (&InsertionSolver{}).Solve(in)
	}
	return best, nil
}

func reconstructColorful(parent [][]int16, color []int, cs, v, start int) []int {
	var rev []int
	for {
		rev = append(rev, v)
		p := parent[cs][v]
		if p < 0 {
			break
		}
		cs ^= 1 << color[v]
		v = int(p)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AutoSolver picks ExactSolver for small instances and InsertionSolver
// otherwise. It is the default used by the chain and core packages.
type AutoSolver struct {
	// ExactLimit is the largest N solved exactly (DefaultAutoExactLimit
	// when zero).
	ExactLimit int
}

// DefaultAutoExactLimit keeps the exact DP under a few milliseconds.
const DefaultAutoExactLimit = 14

// Name implements Solver.
func (s *AutoSolver) Name() string { return "auto" }

// Solve implements Solver.
func (s *AutoSolver) Solve(in *Instance) (*Walk, error) {
	limit := s.ExactLimit
	if limit == 0 {
		limit = DefaultAutoExactLimit
	}
	if in.N <= limit {
		return (&ExactSolver{MaxNodes: limit}).Solve(in)
	}
	return (&InsertionSolver{}).Solve(in)
}

// Auto returns the default solver.
func Auto() Solver { return &AutoSolver{} }
