package kstroll

import (
	"fmt"
	"math"
	"math/bits"
)

// DefaultExactLimit is the largest instance (node count) ExactSolver accepts
// by default: the DP table has 2^N·N entries.
const DefaultExactLimit = 18

// ExactSolver solves k-stroll optimally with a Held–Karp-style dynamic
// program over visited subsets: dp[mask][v] is the cheapest simple path that
// starts at Start, visits exactly the nodes in mask, and ends at v.
// Exponential in N; use only for small instances and as a test oracle.
type ExactSolver struct {
	// MaxNodes rejects instances larger than this (DefaultExactLimit when
	// zero).
	MaxNodes int
}

// Name implements Solver.
func (s *ExactSolver) Name() string { return "exact" }

// Solve implements Solver.
func (s *ExactSolver) Solve(in *Instance) (*Walk, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	limit := s.MaxNodes
	if limit == 0 {
		limit = DefaultExactLimit
	}
	if in.N > limit {
		return nil, fmt.Errorf("kstroll: exact solver limited to %d nodes, got %d", limit, in.N)
	}
	if w, ok := trivial(in); ok {
		return w, nil
	}

	n := in.N
	size := 1 << n
	dp := make([][]float64, size)
	parent := make([][]int8, size)
	startBit := 1 << in.Start

	dp[startBit] = newRow(n)
	dp[startBit][in.Start] = 0

	best := math.Inf(1)
	bestMask, bestEnd := 0, -1
	for mask := 1; mask < size; mask++ {
		if dp[mask] == nil || mask&startBit == 0 {
			continue
		}
		pc := bits.OnesCount(uint(mask))
		if pc == in.K {
			if mask&(1<<in.End) != 0 && dp[mask][in.End] < best {
				best = dp[mask][in.End]
				bestMask, bestEnd = mask, in.End
			}
			continue // no need to extend past K nodes in a metric instance
		}
		for v := 0; v < n; v++ {
			dv := dp[mask][v]
			if math.IsInf(dv, 1) {
				continue
			}
			// End may only be the final node: do not extend paths that
			// already pass through End.
			if v != in.End {
				for w := 0; w < n; w++ {
					if mask&(1<<w) != 0 {
						continue
					}
					nm := mask | 1<<w
					nd := dv + in.Cost[v][w]
					if dp[nm] == nil {
						dp[nm] = newRow(n)
						parent[nm] = make([]int8, n)
						for i := range parent[nm] {
							parent[nm][i] = -1
						}
					}
					if nd < dp[nm][w] {
						dp[nm][w] = nd
						parent[nm][w] = int8(v)
					}
				}
			}
		}
	}
	if bestEnd < 0 {
		return nil, ErrInfeasible
	}

	// Reconstruct.
	seq := make([]int, 0, in.K)
	mask, v := bestMask, bestEnd
	for v != in.Start || bits.OnesCount(uint(mask)) > 1 {
		seq = append(seq, v)
		p := parent[mask][v]
		mask ^= 1 << v
		v = int(p)
	}
	seq = append(seq, in.Start)
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return &Walk{Seq: seq, Cost: best}, nil
}

func newRow(n int) []float64 {
	row := make([]float64, n)
	for i := range row {
		row[i] = math.Inf(1)
	}
	return row
}
