package kstroll

import (
	"math"
)

// InsertionSolver builds a walk by cheapest insertion and refines it with
// local search (or-opt relocation, 2-opt reversal, and node swap against
// unused nodes). Deterministic: ties break toward lower node index. This is
// the production path for large instances; tests bound its gap against
// ExactSolver.
type InsertionSolver struct {
	// MaxRounds caps local-search sweeps (defaults to 64 when zero). Each
	// sweep is O(K^2 + K·N).
	MaxRounds int
}

// Name implements Solver.
func (s *InsertionSolver) Name() string { return "insertion" }

// Solve implements Solver.
func (s *InsertionSolver) Solve(in *Instance) (*Walk, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if w, ok := trivial(in); ok {
		return w, nil
	}
	seq := s.construct(in)
	rounds := s.MaxRounds
	if rounds == 0 {
		rounds = 64
	}
	used := make([]bool, in.N)
	for _, v := range seq {
		used[v] = true
	}
	for r := 0; r < rounds; r++ {
		improved := orOpt(in, seq)
		if twoOpt(in, seq) {
			improved = true
		}
		if nodeSwap(in, seq, used) {
			improved = true
		}
		if !improved {
			break
		}
	}
	return &Walk{Seq: seq, Cost: in.WalkCost(seq)}, nil
}

// construct runs cheapest insertion from the 2-node path [Start, End] up to
// K nodes.
func (s *InsertionSolver) construct(in *Instance) []int {
	seq := []int{in.Start, in.End}
	inPath := make([]bool, in.N)
	inPath[in.Start] = true
	inPath[in.End] = true
	for len(seq) < in.K {
		bestNode, bestPos := -1, -1
		bestDelta := math.Inf(1)
		for v := 0; v < in.N; v++ {
			if inPath[v] {
				continue
			}
			for p := 1; p < len(seq); p++ {
				a, b := seq[p-1], seq[p]
				delta := in.Cost[a][v] + in.Cost[v][b] - in.Cost[a][b]
				if delta < bestDelta {
					bestDelta = delta
					bestNode, bestPos = v, p
				}
			}
		}
		seq = append(seq, 0)
		copy(seq[bestPos+1:], seq[bestPos:])
		seq[bestPos] = bestNode
		inPath[bestNode] = true
	}
	return seq
}

// orOpt relocates single interior nodes to their best position; returns
// whether any move improved the walk.
func orOpt(in *Instance, seq []int) bool {
	improved := false
	for i := 1; i < len(seq)-1; i++ {
		v := seq[i]
		removeGain := in.Cost[seq[i-1]][v] + in.Cost[v][seq[i+1]] - in.Cost[seq[i-1]][seq[i+1]]
		bestPos, bestDelta := -1, -1e-9
		for p := 1; p < len(seq); p++ {
			if p == i || p == i+1 {
				continue
			}
			a, b := seq[p-1], seq[p]
			insCost := in.Cost[a][v] + in.Cost[v][b] - in.Cost[a][b]
			delta := removeGain - insCost
			if delta > bestDelta {
				bestDelta = delta
				bestPos = p
			}
		}
		if bestPos < 0 {
			continue
		}
		improved = true
		// Remove v at i, reinsert before bestPos (positions shift left when
		// bestPos > i).
		copy(seq[i:], seq[i+1:len(seq)])
		p := bestPos
		if p > i {
			p--
		}
		copy(seq[p+1:], seq[p:len(seq)-1])
		seq[p] = v
	}
	return improved
}

// twoOpt reverses interior segments when doing so shortens the walk.
func twoOpt(in *Instance, seq []int) bool {
	improved := false
	n := len(seq)
	for i := 1; i < n-1; i++ {
		for j := i + 1; j < n-1; j++ {
			// Reverse seq[i..j]: replaces edges (i-1,i) and (j,j+1) with
			// (i-1,j) and (i,j+1).
			before := in.Cost[seq[i-1]][seq[i]] + in.Cost[seq[j]][seq[j+1]]
			after := in.Cost[seq[i-1]][seq[j]] + in.Cost[seq[i]][seq[j+1]]
			if after < before-1e-12 {
				for a, b := i, j; a < b; a, b = a+1, b-1 {
					seq[a], seq[b] = seq[b], seq[a]
				}
				improved = true
			}
		}
	}
	return improved
}

// nodeSwap replaces interior nodes with cheaper unused nodes; returns
// whether any swap improved the walk. This matters for VM selection, where
// an off-path VM with low setup cost can beat a nearby expensive one.
func nodeSwap(in *Instance, seq []int, used []bool) bool {
	improved := false
	for i := 1; i < len(seq)-1; i++ {
		v := seq[i]
		cur := in.Cost[seq[i-1]][v] + in.Cost[v][seq[i+1]]
		bestNode := -1
		bestCost := cur - 1e-12
		for w := 0; w < in.N; w++ {
			if used[w] {
				continue
			}
			c := in.Cost[seq[i-1]][w] + in.Cost[w][seq[i+1]]
			if c < bestCost {
				bestCost = c
				bestNode = w
			}
		}
		if bestNode >= 0 {
			used[v] = false
			used[bestNode] = true
			seq[i] = bestNode
			improved = true
		}
	}
	return improved
}
