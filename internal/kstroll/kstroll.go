// Package kstroll solves the k-stroll problem (Definition 2 of the paper):
// given a weighted graph and two nodes s and u, find the cheapest walk from
// s to u that visits at least k distinct nodes.
//
// Instances produced by the chain package are metric (Lemma 1), so an
// optimal walk can always be shortcut into a simple path with exactly k
// nodes; all solvers here therefore search over simple paths.
//
// The paper invokes the 2-approximation of Chaudhuri et al. [29] as a black
// box. This package substitutes (see DESIGN.md §3):
//
//   - ExactSolver: Held–Karp-style subset DP, optimal, for small instances;
//   - InsertionSolver: cheapest insertion + 2-opt/or-opt/node-swap local
//     search, fast, validated against ExactSolver in tests;
//   - ColorCodingSolver: randomized color-coding DP, optimal w.h.p., for
//     medium instances;
//   - Auto: picks ExactSolver when feasible, InsertionSolver otherwise.
package kstroll

import (
	"errors"
	"fmt"
	"math"
)

// Instance is a dense symmetric k-stroll instance over nodes 0..N-1.
type Instance struct {
	N    int
	Cost [][]float64 // Cost[i][j] = Cost[j][i], Cost[i][i] = 0
	// Start and End are the walk endpoints (s and the last VM u).
	Start, End int
	// K is the number of distinct nodes the walk must visit, including
	// Start and End.
	K int
}

// Walk is a solution: a simple path visiting exactly K distinct nodes.
type Walk struct {
	Seq  []int // node indices, Seq[0]=Start, Seq[len-1]=End
	Cost float64
}

// ErrInfeasible is returned when no walk with the required number of
// distinct nodes exists.
var ErrInfeasible = errors.New("kstroll: infeasible instance")

// Validate checks structural sanity of the instance.
func (in *Instance) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("kstroll: N=%d", in.N)
	}
	if len(in.Cost) != in.N {
		return fmt.Errorf("kstroll: cost matrix has %d rows, want %d", len(in.Cost), in.N)
	}
	for i, row := range in.Cost {
		if len(row) != in.N {
			return fmt.Errorf("kstroll: row %d has %d entries, want %d", i, len(row), in.N)
		}
		for j, c := range row {
			if math.IsNaN(c) || c < 0 {
				return fmt.Errorf("kstroll: bad cost [%d][%d]=%v", i, j, c)
			}
			if math.Abs(c-in.Cost[j][i]) > 1e-9 {
				return fmt.Errorf("kstroll: asymmetric cost at [%d][%d]", i, j)
			}
		}
	}
	if in.Start < 0 || in.Start >= in.N || in.End < 0 || in.End >= in.N {
		return fmt.Errorf("kstroll: endpoints (%d,%d) out of range", in.Start, in.End)
	}
	if in.K < 1 || in.K > in.N {
		return fmt.Errorf("kstroll: K=%d with N=%d: %w", in.K, in.N, ErrInfeasible)
	}
	if in.Start == in.End && in.K > 1 {
		return fmt.Errorf("kstroll: Start==End requires K=1, got K=%d", in.K)
	}
	if in.Start != in.End && in.K < 2 {
		return fmt.Errorf("kstroll: distinct endpoints require K>=2, got K=%d", in.K)
	}
	return nil
}

// Metric reports whether the instance satisfies the triangle inequality
// (within eps). O(N^3); intended for tests (Lemma 1).
func (in *Instance) Metric(eps float64) bool {
	for a := 0; a < in.N; a++ {
		for b := 0; b < in.N; b++ {
			for c := 0; c < in.N; c++ {
				if in.Cost[a][c] > in.Cost[a][b]+in.Cost[b][c]+eps {
					return false
				}
			}
		}
	}
	return true
}

// WalkCost returns the cost of the node sequence under the instance.
func (in *Instance) WalkCost(seq []int) float64 {
	var c float64
	for i := 1; i < len(seq); i++ {
		c += in.Cost[seq[i-1]][seq[i]]
	}
	return c
}

// VerifyWalk checks that w is a feasible solution: endpoints match, exactly
// K distinct nodes, no repeats, recorded cost correct.
func (in *Instance) VerifyWalk(w *Walk) error {
	if len(w.Seq) == 0 {
		return errors.New("kstroll: empty walk")
	}
	if w.Seq[0] != in.Start || w.Seq[len(w.Seq)-1] != in.End {
		return fmt.Errorf("kstroll: walk endpoints (%d,%d), want (%d,%d)",
			w.Seq[0], w.Seq[len(w.Seq)-1], in.Start, in.End)
	}
	seen := make(map[int]bool, len(w.Seq))
	for _, v := range w.Seq {
		if v < 0 || v >= in.N {
			return fmt.Errorf("kstroll: walk node %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("kstroll: walk repeats node %d", v)
		}
		seen[v] = true
	}
	if len(seen) != in.K {
		return fmt.Errorf("kstroll: walk visits %d distinct nodes, want %d", len(seen), in.K)
	}
	if got := in.WalkCost(w.Seq); math.Abs(got-w.Cost) > 1e-6 {
		return fmt.Errorf("kstroll: recorded cost %v != recomputed %v", w.Cost, got)
	}
	return nil
}

// Solver finds a low-cost k-stroll walk.
type Solver interface {
	// Solve returns a feasible walk or an error.
	Solve(in *Instance) (*Walk, error)
	// Name identifies the solver in logs and benchmarks.
	Name() string
}

// trivial handles K=1 (Start==End) and K=2 (direct hop) uniformly for all
// solvers. ok is false when the instance needs a real search.
func trivial(in *Instance) (w *Walk, ok bool) {
	switch in.K {
	case 1:
		return &Walk{Seq: []int{in.Start}, Cost: 0}, true
	case 2:
		return &Walk{
			Seq:  []int{in.Start, in.End},
			Cost: in.Cost[in.Start][in.End],
		}, true
	default:
		return nil, false
	}
}
