package kstroll

import (
	"math"
	"math/rand"
	"testing"
)

// euclidean builds a random metric instance from points in the unit square.
func euclidean(n, k int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			cost[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return &Instance{N: n, Cost: cost, Start: 0, End: n - 1, K: k}
}

func TestValidate(t *testing.T) {
	in := euclidean(5, 3, 1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := euclidean(5, 3, 1)
	bad.K = 9
	if err := bad.Validate(); err == nil {
		t.Error("K>N accepted")
	}
	bad2 := euclidean(5, 3, 1)
	bad2.Cost[1][2] = -1
	bad2.Cost[2][1] = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	bad3 := euclidean(5, 3, 1)
	bad3.Cost[1][2] += 1
	if err := bad3.Validate(); err == nil {
		t.Error("asymmetric cost accepted")
	}
	same := euclidean(5, 3, 1)
	same.End = same.Start
	if err := same.Validate(); err == nil {
		t.Error("Start==End with K>1 accepted")
	}
}

func TestMetricHolds(t *testing.T) {
	in := euclidean(12, 4, 3)
	if !in.Metric(1e-9) {
		t.Fatal("euclidean instance should be metric")
	}
	in.Cost[0][5] = 100
	in.Cost[5][0] = 100
	if in.Metric(1e-9) {
		t.Fatal("perturbed instance should not be metric")
	}
}

func TestTrivialCases(t *testing.T) {
	for _, s := range []Solver{&ExactSolver{}, &InsertionSolver{}, &ColorCodingSolver{Seed: 1}, Auto()} {
		in := euclidean(6, 2, 2)
		w, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := in.VerifyWalk(w); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(w.Seq) != 2 {
			t.Fatalf("%s: K=2 walk = %v", s.Name(), w.Seq)
		}
		one := &Instance{N: 3, Cost: zeroMatrix(3), Start: 1, End: 1, K: 1}
		w, err = s.Solve(one)
		if err != nil || len(w.Seq) != 1 || w.Cost != 0 {
			t.Fatalf("%s K=1: %v %+v", s.Name(), err, w)
		}
	}
}

func zeroMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// bruteForce enumerates all simple paths with exactly K nodes.
func bruteForce(in *Instance) float64 {
	best := math.Inf(1)
	var rec func(seq []int, used []bool)
	rec = func(seq []int, used []bool) {
		if len(seq) == in.K-1 {
			c := in.WalkCost(seq) + in.Cost[seq[len(seq)-1]][in.End]
			if c < best {
				best = c
			}
			return
		}
		for v := 0; v < in.N; v++ {
			if used[v] || v == in.End {
				continue
			}
			used[v] = true
			rec(append(seq, v), used)
			used[v] = false
		}
	}
	used := make([]bool, in.N)
	used[in.Start] = true
	used[in.End] = true
	rec([]int{in.Start}, used)
	return best
}

func TestExactMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 6 + int(seed%3)
		k := 3 + int(seed%4)
		if k > n {
			k = n
		}
		in := euclidean(n, k, seed)
		w, err := (&ExactSolver{}).Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := in.VerifyWalk(w); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForce(in)
		if math.Abs(w.Cost-want) > 1e-9 {
			t.Fatalf("seed %d: exact %v, brute force %v", seed, w.Cost, want)
		}
	}
}

func TestExactRejectsHugeInstances(t *testing.T) {
	in := euclidean(25, 5, 1)
	if _, err := (&ExactSolver{}).Solve(in); err == nil {
		t.Fatal("expected node-limit error")
	}
}

func TestInsertionFeasibleAndBounded(t *testing.T) {
	worst := 1.0
	for seed := int64(0); seed < 40; seed++ {
		n := 8 + int(seed%6)
		k := 3 + int(seed%6)
		if k > n {
			k = n
		}
		in := euclidean(n, k, seed+100)
		ins, err := (&InsertionSolver{}).Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := in.VerifyWalk(ins); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := (&ExactSolver{}).Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ins.Cost < ex.Cost-1e-9 {
			t.Fatalf("seed %d: insertion %v beat exact %v", seed, ins.Cost, ex.Cost)
		}
		ratio := 1.0
		if ex.Cost > 1e-12 {
			ratio = ins.Cost / ex.Cost
		}
		if ratio > worst {
			worst = ratio
		}
		// The paper's cited solver guarantees 2x; our heuristic must stay
		// within that on metric instances of evaluation size.
		if ratio > 2.0+1e-9 {
			t.Fatalf("seed %d: insertion ratio %.3f exceeds 2.0", seed, ratio)
		}
	}
	t.Logf("worst insertion/exact ratio over 40 instances: %.4f", worst)
}

func TestColorCodingFindsOptimumUsually(t *testing.T) {
	found := 0
	const trials = 15
	for seed := int64(0); seed < trials; seed++ {
		in := euclidean(12, 5, seed+500)
		cc, err := (&ColorCodingSolver{Trials: 400, Seed: seed}).Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := in.VerifyWalk(cc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := (&ExactSolver{}).Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cc.Cost < ex.Cost-1e-9 {
			t.Fatalf("seed %d: color coding %v beat exact %v", seed, cc.Cost, ex.Cost)
		}
		if math.Abs(cc.Cost-ex.Cost) < 1e-9 {
			found++
		}
	}
	if found < trials*2/3 {
		t.Fatalf("color coding matched the optimum on only %d/%d instances", found, trials)
	}
}

func TestAutoSwitchesSolvers(t *testing.T) {
	small := euclidean(10, 4, 9)
	large := euclidean(40, 6, 9)
	auto := Auto()
	ws, err := auto.Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := (&ExactSolver{}).Solve(small)
	if math.Abs(ws.Cost-ex.Cost) > 1e-9 {
		t.Fatalf("auto on small instance should be exact: %v vs %v", ws.Cost, ex.Cost)
	}
	wl, err := auto.Solve(large)
	if err != nil {
		t.Fatal(err)
	}
	if err := large.VerifyWalk(wl); err != nil {
		t.Fatal(err)
	}
}

func TestHamiltonianEndpointCase(t *testing.T) {
	// K == N forces a Hamiltonian path.
	in := euclidean(7, 7, 77)
	w, err := (&ExactSolver{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Seq) != 7 {
		t.Fatalf("walk has %d nodes, want 7", len(w.Seq))
	}
	if err := in.VerifyWalk(w); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWalkRejects(t *testing.T) {
	in := euclidean(6, 3, 5)
	if err := in.VerifyWalk(&Walk{Seq: []int{0, 1, 2}, Cost: 0}); err == nil {
		t.Error("wrong endpoint/cost accepted")
	}
	if err := in.VerifyWalk(&Walk{}); err == nil {
		t.Error("empty walk accepted")
	}
	seq := []int{0, 1, 1, 5}
	if err := in.VerifyWalk(&Walk{Seq: seq, Cost: in.WalkCost(seq)}); err == nil {
		t.Error("repeated node accepted")
	}
}
