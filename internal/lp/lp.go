// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize cᵀx  subject to  Ax {≤,=,≥} b,  x ≥ 0.
//
// It is the substrate for the branch-and-bound integer solver
// (internal/ilp) that replaces CPLEX in the paper's optimal-baseline
// experiments (see DESIGN.md §3). Bland's rule prevents cycling; the solver
// is intended for the small instances on which the paper runs its optimum.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota + 1 // ≤
	GE                  // ≥
	EQ                  // =
)

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int8(s))
	}
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var   int
	Coeff float64
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is an LP under construction. The zero value is unusable; call
// NewProblem.
type Problem struct {
	n    int
	obj  []float64
	rows []row
}

// NewProblem returns a problem with n decision variables (all ≥ 0) and a
// zero objective.
func NewProblem(n int) *Problem {
	return &Problem{n: n, obj: make([]float64, n)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjectiveCoeff sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoeff(v int, c float64) error {
	if v < 0 || v >= p.n {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.obj[v] = c
	return nil
}

// AddConstraint appends the row Σ terms {sense} rhs.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) error {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.n {
			return fmt.Errorf("lp: variable %d out of range", t.Var)
		}
		if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			return fmt.Errorf("lp: bad coefficient %v", t.Coeff)
		}
	}
	if sense != LE && sense != GE && sense != EQ {
		return fmt.Errorf("lp: bad sense %d", sense)
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), sense: sense, rhs: rhs})
	return nil
}

// CopyInto replicates p's objective and rows into dst, which must have the
// same variable count.
func (p *Problem) CopyInto(dst *Problem) error {
	if dst.n != p.n {
		return fmt.Errorf("lp: CopyInto size mismatch: %d vs %d", dst.n, p.n)
	}
	copy(dst.obj, p.obj)
	dst.rows = dst.rows[:0]
	for _, r := range p.rows {
		dst.rows = append(dst.rows, row{
			terms: append([]Term(nil), r.terms...),
			sense: r.sense,
			rhs:   r.rhs,
		})
	}
	return nil
}

// Solution is the result of a successful solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// ErrIterationLimit is returned when simplex exceeds its pivot budget.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// Solve runs two-phase simplex and returns the optimal solution, or a
// Solution with Infeasible/Unbounded status (and a nil X).
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.rows)
	if m == 0 {
		// No constraints: x = 0 is optimal unless some coefficient rewards
		// growth, in which case the problem is unbounded below.
		for _, c := range p.obj {
			if c < 0 {
				return &Solution{Status: Unbounded}, nil
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, p.n)}, nil
	}
	// Columns: n structural + one slack/surplus per inequality + one
	// artificial per row that needs it.
	nSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	total := p.n + nSlack
	// Build rows with b >= 0.
	a := make([][]float64, m)
	b := make([]float64, m)
	slackCol := p.n
	type rowInfo struct{ slack int }
	infos := make([]rowInfo, m)
	for i, r := range p.rows {
		a[i] = make([]float64, total)
		for _, t := range r.terms {
			a[i][t.Var] += t.Coeff
		}
		b[i] = r.rhs
		infos[i].slack = -1
		switch r.sense {
		case LE:
			a[i][slackCol] = 1
			infos[i].slack = slackCol
			slackCol++
		case GE:
			a[i][slackCol] = -1
			infos[i].slack = slackCol
			slackCol++
		}
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
	}
	// Artificial variables: one per row whose slack cannot serve as the
	// initial basis (EQ rows, or rows whose slack coefficient became -1
	// after sign normalization).
	basis := make([]int, m)
	nArt := 0
	for i := range a {
		s := infos[i].slack
		if s >= 0 && a[i][s] == 1 {
			basis[i] = s
		} else {
			basis[i] = -1
			nArt++
		}
	}
	cols := total + nArt
	t := make([][]float64, m)
	artCol := total
	for i := range a {
		t[i] = make([]float64, cols+1)
		copy(t[i], a[i])
		t[i][cols] = b[i]
		if basis[i] == -1 {
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, cols)
		for j := total; j < cols; j++ {
			phase1[j] = 1
		}
		val, err := simplex(t, basis, phase1, cols)
		if err != nil {
			return nil, err
		}
		if val > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis.
		for i, bv := range basis {
			if bv < total {
				continue
			}
			pivoted := false
			for j := 0; j < total; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless to leave (its rhs is ~0).
				t[i][bv] = 1 // keep basis consistent
			}
		}
	}

	// Phase 2.
	phase2 := make([]float64, cols)
	copy(phase2, p.obj)
	// Forbid artificials from re-entering.
	for j := total; j < cols; j++ {
		phase2[j] = math.Inf(1)
	}
	val, err := simplex(t, basis, phase2, total)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	x := make([]float64, p.n)
	for i, bv := range basis {
		if bv < p.n {
			x[bv] = t[i][cols]
		}
	}
	return &Solution{Status: Optimal, X: x, Objective: val}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// simplex minimizes cost over the tableau in place, allowing entering
// columns < limit. Returns the objective value.
func simplex(t [][]float64, basis []int, cost []float64, limit int) (float64, error) {
	m := len(t)
	if m == 0 {
		return 0, nil
	}
	cols := len(t[0]) - 1
	// Reduced costs maintained implicitly: z_j - c_j computed per
	// iteration from the basis (dense textbook implementation; fine for
	// the instance sizes we target).
	maxIter := 200*(m+cols) + 5000
	for iter := 0; iter < maxIter; iter++ {
		// y = c_B applied to rows; reduced cost r_j = c_j - Σ_i c_{B(i)} t[i][j].
		entering := -1
		for j := 0; j < limit && j < cols; j++ {
			if math.IsInf(cost[j], 1) {
				continue
			}
			r := cost[j]
			for i := 0; i < m; i++ {
				cb := cost[basis[i]]
				if cb != 0 && !math.IsInf(cb, 1) && t[i][j] != 0 {
					r -= cb * t[i][j]
				}
			}
			if r < -1e-7 {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering < 0 {
			obj := 0.0
			for i := 0; i < m; i++ {
				cb := cost[basis[i]]
				if cb != 0 && !math.IsInf(cb, 1) {
					obj += cb * t[i][cols]
				}
			}
			return obj, nil
		}
		// Ratio test: find the true minimum ratio, then break ties among
		// rows within tolerance by smallest basis index (Bland).
		minRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][entering] > eps {
				if r := t[i][cols] / t[i][entering]; r < minRatio {
					minRatio = r
				}
			}
		}
		if math.IsInf(minRatio, 1) {
			return 0, errUnbounded
		}
		leave := -1
		for i := 0; i < m; i++ {
			if t[i][entering] > eps {
				r := t[i][cols] / t[i][entering]
				if r <= minRatio+eps && (leave < 0 || basis[i] < basis[leave]) {
					leave = i
				}
			}
		}
		pivot(t, basis, leave, entering)
	}
	return 0, ErrIterationLimit
}

// pivot makes column j basic in row i, snapping near-zero residue to zero
// to limit numerical drift over long degenerate pivot sequences.
func pivot(t [][]float64, basis []int, i, j int) {
	cols := len(t[i])
	pv := t[i][j]
	for k := 0; k < cols; k++ {
		t[i][k] /= pv
		if t[i][k] != 0 && math.Abs(t[i][k]) < 1e-11 {
			t[i][k] = 0
		}
	}
	t[i][j] = 1
	for r := range t {
		if r == i {
			continue
		}
		f := t[r][j]
		if f == 0 {
			continue
		}
		for k := 0; k < cols; k++ {
			t[r][k] -= f * t[i][k]
			if t[r][k] != 0 && math.Abs(t[r][k]) < 1e-11 {
				t[r][k] = 0
			}
		}
		t[r][j] = 0
	}
	basis[i] = j
}

// CheckFeasible evaluates x against every constraint and returns the first
// violation (diagnostics helper).
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != p.n {
		return fmt.Errorf("lp: x has %d entries, want %d", len(x), p.n)
	}
	for i, r := range p.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coeff * x[t.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return fmt.Errorf("lp: row %d: %v <= %v violated", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol {
				return fmt.Errorf("lp: row %d: %v >= %v violated", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return fmt.Errorf("lp: row %d: %v == %v violated", i, lhs, r.rhs)
			}
		}
	}
	return nil
}

// Objective evaluates the objective at x.
func (p *Problem) Objective(x []float64) float64 {
	v := 0.0
	for i, c := range p.obj {
		v += c * x[i]
	}
	return v
}

// DumpRow renders row i for diagnostics.
func (p *Problem) DumpRow(i int) string {
	r := p.rows[i]
	s := ""
	for _, t := range r.terms {
		s += fmt.Sprintf("%+.3g·x%d ", t.Coeff, t.Var)
	}
	switch r.sense {
	case LE:
		s += "<= "
	case GE:
		s += ">= "
	case EQ:
		s += "== "
	}
	return s + fmt.Sprintf("%g", r.rhs)
}
