package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFatal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// min -x-y st x+y<=4, x<=2 → x=2,y=2, obj=-4.
	p := NewProblem(2)
	_ = p.SetObjectiveCoeff(0, -1)
	_ = p.SetObjectiveCoeff(1, -1)
	_ = p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	_ = p.AddConstraint([]Term{{0, 1}}, LE, 2)
	s := solveOrFatal(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective+4) > 1e-7 {
		t.Fatalf("objective = %v, want -4", s.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y st x+y=10, x>=3 → x=10? no: min prefers x big (coeff 2<3):
	// x=10,y=0 violates x>=3? no, 10>=3 ok → obj=20.
	p := NewProblem(2)
	_ = p.SetObjectiveCoeff(0, 2)
	_ = p.SetObjectiveCoeff(1, 3)
	_ = p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	_ = p.AddConstraint([]Term{{0, 1}}, GE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-20) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal 20", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]-10) > 1e-7 || math.Abs(s.X[1]) > 1e-7 {
		t.Fatalf("x = %v, want [10 0]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	_ = p.AddConstraint([]Term{{0, 1}}, GE, 5)
	_ = p.AddConstraint([]Term{{0, 1}}, LE, 3)
	s := solveOrFatal(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetObjectiveCoeff(0, -1)
	s := solveOrFatal(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x st -x <= -5  (i.e. x >= 5) → 5.
	p := NewProblem(1)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.AddConstraint([]Term{{0, -1}}, LE, -5)
	s := solveOrFatal(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-5) > 1e-7 {
		t.Fatalf("got %v obj %v, want 5", s.Status, s.Objective)
	}
}

func TestDegenerateTransportation(t *testing.T) {
	// Classic 2x2 transportation problem.
	// min 4a+6b+5c+3d st a+b=10, c+d=15, a+c=12, b+d=13.
	p := NewProblem(4)
	for i, c := range []float64{4, 6, 5, 3} {
		_ = p.SetObjectiveCoeff(i, c)
	}
	_ = p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	_ = p.AddConstraint([]Term{{2, 1}, {3, 1}}, EQ, 15)
	_ = p.AddConstraint([]Term{{0, 1}, {2, 1}}, EQ, 12)
	_ = p.AddConstraint([]Term{{1, 1}, {3, 1}}, EQ, 13)
	s := solveOrFatal(t, p)
	// Optimal: a=10,c=2,d=13 → 40+10+39=89.
	if s.Status != Optimal || math.Abs(s.Objective-89) > 1e-6 {
		t.Fatalf("got %v obj %v, want 89", s.Status, s.Objective)
	}
}

func TestInputValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Error("bad objective var accepted")
	}
	if err := p.AddConstraint([]Term{{9, 1}}, LE, 1); err == nil {
		t.Error("bad constraint var accepted")
	}
	if err := p.AddConstraint([]Term{{0, math.NaN()}}, LE, 1); err == nil {
		t.Error("NaN coefficient accepted")
	}
	if err := p.AddConstraint([]Term{{0, 1}}, Sense(9), 1); err == nil {
		t.Error("bad sense accepted")
	}
}

func TestCopyInto(t *testing.T) {
	p := NewProblem(2)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	q := NewProblem(2)
	if err := p.CopyInto(q); err != nil {
		t.Fatal(err)
	}
	s := solveOrFatal(t, q)
	if s.Status != Optimal || math.Abs(s.Objective) > 1e-7 {
		t.Fatalf("copy solve: %v obj %v, want 0 (x1 free to satisfy)", s.Status, s.Objective)
	}
	bad := NewProblem(3)
	if err := p.CopyInto(bad); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestRandomAgainstVertexEnumeration cross-checks simplex on random small
// LPs against brute-force vertex enumeration.
func TestRandomAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(2) // 2-3 vars
		m := 3 + rng.Intn(3) // 3-5 constraints
		p := NewProblem(n)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = math.Floor(rng.Float64()*10) + 1 // positive → bounded
			_ = p.SetObjectiveCoeff(i, obj[i])
		}
		rowsA := make([][]float64, m)
		rowsB := make([]float64, m)
		for i := 0; i < m; i++ {
			rowsA[i] = make([]float64, n)
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				rowsA[i][j] = math.Floor(rng.Float64()*5) + 1
				terms[j] = Term{Var: j, Coeff: rowsA[i][j]}
			}
			rowsB[i] = math.Floor(rng.Float64()*20) + 5
			_ = p.AddConstraint(terms, GE, rowsB[i]) // cover constraints → feasible, bounded
		}
		s := solveOrFatal(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		want := enumerateMin(obj, rowsA, rowsB)
		if math.Abs(s.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: simplex %v, enumeration %v", trial, s.Objective, want)
		}
	}
}

// enumerateMin brute-forces min cᵀx st Ax ≥ b, x ≥ 0 by enumerating basic
// solutions of all active-set combinations (n ≤ 3).
func enumerateMin(c []float64, a [][]float64, b []float64) float64 {
	n := len(c)
	m := len(a)
	// Candidate constraint set: rows (as equalities) plus axes x_j = 0.
	var eqns []eqn
	for i := 0; i < m; i++ {
		eqns = append(eqns, eqn{a[i], b[i]})
	}
	for j := 0; j < n; j++ {
		axis := make([]float64, n)
		axis[j] = 1
		eqns = append(eqns, eqn{axis, 0})
	}
	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(eqns, idx, n)
			if !ok {
				return
			}
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				lhs := 0.0
				for j := 0; j < n; j++ {
					lhs += a[i][j] * x[j]
				}
				if lhs < b[i]-1e-7 {
					return
				}
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(eqns); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

type eqn struct {
	coef []float64
	rhs  float64
}

// solveSquare solves the n×n system picked by idx with Gaussian
// elimination; ok=false when singular.
func solveSquare(eqns []eqn, idx []int, n int) ([]float64, bool) {
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = append(append([]float64(nil), eqns[idx[i]].coef...), eqns[idx[i]].rhs)
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		f := a[col][col]
		for k := col; k <= n; k++ {
			a[col][k] /= f
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n]
	}
	return x, true
}
