package online

// Failure injection for the online scenario: a seeded schedule of link/VM
// failures (and restores) interleaved with the arrival stream. Events fire
// before the arrival of their step; every failure triggers a recovery
// sweep through the session (sof.Solver.RepairAll). The capacitated
// session suspends each damaged forest's lease during its repair and
// resumes it for whatever shape it comes back in, so repaired routes are
// priced like any other traffic.

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"sof"
	"sof/internal/graph"
	"sof/internal/topology"
)

// FailureEvent is one scheduled element failure or restore. Exactly one of
// Link and VM identifies the element: Link when Link != graph.NoEdge, VM
// otherwise.
type FailureEvent struct {
	// Step is the 1-based arrival step before which the event fires;
	// events at step 1 hit the unloaded network.
	Step    int
	Restore bool
	Link    graph.EdgeID
	VM      graph.NodeID
}

// FailureConfig parameterizes a seeded failure schedule.
type FailureConfig struct {
	// Events is the number of failure injections.
	Events int
	// VMShare is the fraction of events that hit a VM instead of a link.
	VMShare float64
	// Downtime is the number of steps after which a failed element is
	// restored; 0 means failures are permanent for the run.
	Downtime int
	Seed     int64
}

// FailureSchedule draws a seeded schedule of cfg.Events failures over a
// run of the given number of steps, each paired with a restore Downtime
// steps later when configured. The result is sorted by step with failures
// before restores within a step, so replays are deterministic.
func FailureSchedule(net *topology.Network, steps int, cfg FailureConfig) []FailureEvent {
	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]FailureEvent, 0, 2*cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		ev := FailureEvent{Step: 1 + rng.Intn(steps), Link: graph.NoEdge, VM: graph.None}
		if rng.Float64() < cfg.VMShare && len(net.VMs) > 0 {
			ev.VM = net.VMs[rng.Intn(len(net.VMs))]
		} else {
			ev.Link = graph.EdgeID(rng.Intn(net.G.NumEdges()))
		}
		events = append(events, ev)
		if cfg.Downtime > 0 {
			r := ev
			r.Step += cfg.Downtime
			r.Restore = true
			events = append(events, r)
		}
	}
	sortFailureEvents(events)
	return events
}

// sortFailureEvents orders a schedule for replay: by step, failures before
// restores within one step (so a fail+restore pair landing together still
// exercises the failure).
func sortFailureEvents(events []FailureEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Step != events[j].Step {
			return events[i].Step < events[j].Step
		}
		return !events[i].Restore && events[j].Restore
	})
}

// SetFailureSchedule installs a failure schedule on the simulator and
// turns on forest tracking in its Solver session (sof.WithRecovery), so
// subsequently accepted forests are swept by the recovery pass. Install
// the schedule before the first step; events whose step has already passed
// fire on the next one.
func (s *Simulator) SetFailureSchedule(events []FailureEvent) {
	evs := append([]FailureEvent(nil), events...)
	sortFailureEvents(evs)
	s.failures = evs
	s.nextFail = 0
	sof.WithRecovery()(s.solver)
}

// CompareScratchCost makes every recovery sweep additionally re-embed each
// damaged forest's request from scratch on a one-shot session and record
// the resulting cost next to the repaired forest's (RecoveryStats
// ScratchCost / RepairedCost). Diagnostic only — the scratch forests are
// discarded and carry no load.
func (s *Simulator) CompareScratchCost(on bool) { s.compareScratch = on }

// RecoveryStats accumulates the failure/recovery counters of a run.
type RecoveryStats struct {
	// Failures and Restores count schedule events applied (no-ops — e.g.
	// re-failing a failed link — excluded).
	Failures int
	Restores int
	// Sweeps counts recovery passes that found at least one damaged
	// forest; ForestsTouched sums their blast radii.
	Sweeps         int
	ForestsTouched int
	// Orphans counts severed destinations across all sweeps; each one is
	// Reattached (FastPath by graft — BackupHits of those from a backup
	// plan — the rest by re-embed) or Unrecoverable, never dropped.
	Orphans       int
	Reattached    int
	FastPath      int
	BackupHits    int
	Reembeds      int
	Unrecoverable int
	// RepairCost sums the cost deltas recovery paid (repaired cost minus
	// pre-failure cost, per damaged forest).
	RepairCost float64
	// RepairedCost and ScratchCost compare, per damaged forest, the cost
	// after repair against a from-scratch re-embed of the same request
	// (only filled under CompareScratchCost).
	RepairedCost float64
	ScratchCost  float64
	// Latencies holds one wall-clock recovery duration per sweep.
	Latencies []time.Duration
}

// FastPathRate returns the fraction of re-attached destinations recovered
// by grafting rather than re-embedding (0 when nothing was re-attached).
func (st *RecoveryStats) FastPathRate() float64 {
	if st.Reattached == 0 {
		return 0
	}
	return float64(st.FastPath) / float64(st.Reattached)
}

// LatencyP99 returns the 99th-percentile recovery latency (0 without
// sweeps).
func (st *RecoveryStats) LatencyP99() time.Duration {
	if len(st.Latencies) == 0 {
		return 0
	}
	lat := append([]time.Duration(nil), st.Latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := (len(lat)*99 + 99) / 100
	if idx > len(lat) {
		idx = len(lat)
	}
	return lat[idx-1]
}

// Recovery exposes the run's failure/recovery counters.
func (s *Simulator) Recovery() *RecoveryStats { return &s.recovery }

// fireFailures applies every schedule event due before the upcoming
// arrival (step s.step+1) and, if any failure landed, runs a recovery
// sweep with load re-accounting.
func (s *Simulator) fireFailures(ctx context.Context) error {
	failed := false
	for s.nextFail < len(s.failures) && s.failures[s.nextFail].Step <= s.step+1 {
		ev := s.failures[s.nextFail]
		s.nextFail++
		var changed bool
		switch {
		case ev.Restore && ev.Link != graph.NoEdge:
			changed = s.solver.RestoreLink(ev.Link)
		case ev.Restore:
			changed = s.solver.RestoreVM(ev.VM)
		case ev.Link != graph.NoEdge:
			changed = s.solver.FailLink(ev.Link)
		default:
			changed = s.solver.FailVM(ev.VM)
		}
		if !changed {
			continue
		}
		if ev.Restore {
			s.recovery.Restores++
		} else {
			s.recovery.Failures++
			failed = true
		}
	}
	if !failed {
		return nil
	}
	return s.recoverNow(ctx)
}

// recoverNow sweeps the session. The capacitated Solver re-accounts the
// load itself — each damaged forest's lease is suspended (load off the
// trackers) while the repair reshapes it and resumed for whatever shape it
// comes back in — so the simulator only gathers counters and re-prices
// afterwards, letting post-repair pricing see the recovered routes.
func (s *Simulator) recoverNow(ctx context.Context) error {
	damaged := 0
	for _, f := range s.solver.LiveForests() {
		if f.Damage().Broken() {
			damaged++
		}
	}
	if damaged == 0 {
		return nil
	}
	start := time.Now()
	rep, err := s.solver.RepairAll(ctx)
	if err != nil && !errors.Is(err, sof.ErrUnrecoverable) {
		return err
	}
	s.recovery.Latencies = append(s.recovery.Latencies, time.Since(start))
	s.recovery.Sweeps++
	s.recovery.ForestsTouched += rep.ForestsTouched
	s.recovery.Reattached += rep.Reattached
	s.recovery.FastPath += rep.FastPath
	s.recovery.BackupHits += rep.BackupHits
	s.recovery.Reembeds += rep.Reembeds
	s.recovery.RepairCost += rep.CostDelta
	for _, fr := range rep.Forests {
		s.recovery.Orphans += fr.Orphans
		s.recovery.Unrecoverable += len(fr.Failed)
	}
	if s.compareScratch {
		for _, fr := range rep.Forests {
			s.recovery.RepairedCost += fr.Forest.TotalCost()
			if nf, err := s.solver.Network().Embed(fr.Forest.Request(), sof.Algorithm(s.algo)); err == nil {
				s.recovery.ScratchCost += nf.TotalCost()
			}
		}
	}
	s.solver.Reprice()
	return nil
}
