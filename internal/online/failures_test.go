package online

import (
	"math"
	"testing"

	"sof"
	"sof/internal/graph"
	"sof/internal/topology"
)

func TestFailureScheduleDeterministic(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: 5})
	cfg := FailureConfig{Events: 8, VMShare: 0.25, Downtime: 4, Seed: 42}
	a := FailureSchedule(net, 30, cfg)
	b := FailureSchedule(net, 30, cfg)
	if len(a) != len(b) || len(a) != 16 { // each failure pairs with a restore
		t.Fatalf("schedule lengths: %d vs %d, want 16", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Step < a[i-1].Step {
			t.Fatalf("schedule out of order at %d", i)
		}
	}
	for _, ev := range a {
		if (ev.Link == graph.NoEdge) == (ev.VM == graph.None) {
			t.Fatalf("event identifies neither or both elements: %+v", ev)
		}
	}
}

// TestFailureRunNeverDropsDestinations is the acceptance criterion of the
// survivable-forest scenario: over a seeded schedule of failures
// interleaved with arrivals, every severed destination is either
// re-attached — with the repaired forest re-validated — or surfaced as
// unrecoverable. The accounting identity Orphans == Reattached +
// Unrecoverable holding across all sweeps proves nothing was dropped.
func TestFailureRunNeverDropsDestinations(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 3})
	sim := NewSimulator(net, AlgoSOFDA, smallConfig())
	sim.SetFailureSchedule(FailureSchedule(net, 20, FailureConfig{
		Events: 10, VMShare: 0.3, Downtime: 3, Seed: 9,
	}))
	sim.CompareScratchCost(true)

	results := sim.Run(20)
	if len(results) != 20 {
		t.Fatalf("got %d results", len(results))
	}
	st := sim.Recovery()
	if st.Failures == 0 {
		t.Fatal("schedule injected no failures")
	}
	if st.Reattached+st.Unrecoverable != st.Orphans {
		t.Fatalf("dropped destinations: %d orphans vs %d reattached + %d unrecoverable",
			st.Orphans, st.Reattached, st.Unrecoverable)
	}
	if st.FastPath > st.Reattached || st.BackupHits > st.FastPath {
		t.Fatalf("tier accounting inconsistent: %+v", st)
	}
	if st.Sweeps > 0 && len(st.Latencies) != st.Sweeps {
		t.Fatalf("latencies: %d samples for %d sweeps", len(st.Latencies), st.Sweeps)
	}
	// Every live forest that is currently undamaged must be fully valid
	// (repairs included).
	for _, f := range sim.Solver().LiveForests() {
		if !f.Damage().Broken() {
			if err := f.Validate(); err != nil {
				t.Fatalf("live forest invalid after run: %v", err)
			}
		}
	}
	if st.Sweeps > 0 && st.LatencyP99() <= 0 {
		t.Fatal("p99 latency not recorded")
	}
	if st.Orphans > 0 && st.RepairedCost <= 0 {
		t.Fatal("scratch comparison recorded no repaired cost")
	}
}

// TestFailureLoadReaccounting pins the session bookkeeping around repairs:
// suspending a damaged forest's lease and resuming its repaired shape must
// keep every tracker non-negative and, lease by lease, load conservation
// must hold — each link's load is exactly the summed demand of the live
// leases crossing it, each VM's the count of leases holding its slot.
func TestFailureLoadReaccounting(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 4})
	sim := NewSimulator(net, AlgoSOFDA, smallConfig())
	sim.SetFailureSchedule(FailureSchedule(net, 12, FailureConfig{
		Events: 6, VMShare: 0.5, Seed: 11, // permanent failures
	}))
	sim.Run(12)

	solver := sim.Solver()
	wantLink := make(map[sof.EdgeID]float64)
	wantVM := make(map[sof.NodeID]float64)
	for _, l := range solver.Leases() {
		for _, e := range l.Edges {
			wantLink[e] += l.Demand
		}
		for _, v := range l.VMs {
			wantVM[v]++
		}
	}
	for e := 0; e < net.G.NumEdges(); e++ {
		got := solver.LinkLoad(sof.EdgeID(e))
		if got < 0 {
			t.Fatalf("link %d load negative: %v", e, got)
		}
		if want := wantLink[sof.EdgeID(e)]; math.Abs(got-want) > 1e-6 {
			t.Fatalf("link %d load %v, live leases explain %v", e, got, want)
		}
	}
	for n := 0; n < net.G.NumNodes(); n++ {
		got := solver.VMLoad(sof.NodeID(n))
		if got < 0 {
			t.Fatalf("vm %d load negative: %v", n, got)
		}
		if want := wantVM[sof.NodeID(n)]; math.Abs(got-want) > 1e-6 {
			t.Fatalf("vm %d load %v, live leases explain %v", n, got, want)
		}
	}
}
