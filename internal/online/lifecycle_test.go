package online

import (
	"math"
	"testing"

	"sof"
	"sof/internal/topology"
)

// lifecycleConfig is smallConfig with departures: every request lives 2–4
// arrival steps, so the run reaches a steady state instead of filling up.
func lifecycleConfig() Config {
	cfg := smallConfig()
	cfg.TTLRange = [2]int{2, 4}
	return cfg
}

// TestLifecycleDepartures drives an arrival/departure stream and checks the
// bookkeeping: every arrival is counted exactly once, TTL expiries release
// leases, and the live-lease count the results report matches the session.
func TestLifecycleDepartures(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 7})
	sim := NewSimulator(net, AlgoSOFDA, lifecycleConfig())
	results := sim.Run(30)

	st := sim.Lifecycle()
	if st.Arrivals != 30 {
		t.Fatalf("Arrivals = %d, want 30", st.Arrivals)
	}
	if got := st.Accepted + st.CapacityRejects + st.AdmissionRejects + st.Infeasible; got != st.Arrivals {
		t.Fatalf("accept/reject split %d does not cover %d arrivals", got, st.Arrivals)
	}
	if st.Departed == 0 {
		t.Fatal("no lease departed over 30 steps with TTLs of 2-4")
	}
	if st.Accepted == 0 {
		t.Fatal("nothing accepted; the lifecycle run was vacuous")
	}
	if len(st.EmbedLatencies) != st.Arrivals {
		t.Fatalf("got %d embed latencies for %d arrivals", len(st.EmbedLatencies), st.Arrivals)
	}
	if st.LatencyP99() <= 0 {
		t.Fatal("p99 embedding latency not recorded")
	}
	if rate := st.AcceptRate(); rate <= 0 || rate > 1 {
		t.Fatalf("AcceptRate = %v, want (0, 1]", rate)
	}
	last := results[len(results)-1]
	if got := len(sim.Solver().Leases()); got != last.Live {
		t.Fatalf("last result reports %d live leases, session holds %d", last.Live, got)
	}
	// Steady state, not monotone fill: at least one step must have seen an
	// expiry, and the live count must stay below the accepted total.
	sawExpiry := false
	for _, r := range results {
		if r.Expired > 0 {
			sawExpiry = true
		}
	}
	if !sawExpiry {
		t.Fatal("no step observed a TTL expiry")
	}
	if last.Live >= st.Accepted {
		t.Fatalf("%d leases live after %d acceptances: nothing ever departed", last.Live, st.Accepted)
	}
}

// TestOnlineCapacityEnforced overloads a small network and checks the
// session enforces its capacities: arrivals are rejected once full — never
// silently over-packed — and no link or VM slot ever exceeds its capacity.
func TestOnlineCapacityEnforced(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 6, Seed: 8})
	cfg := smallConfig()
	cfg.LinkCapacity = 20 // 4 requests per link
	cfg.VMCapacity = 2
	sim := NewSimulator(net, AlgoSOFDA, cfg)
	sim.Run(25)

	st := sim.Lifecycle()
	if st.Accepted == 0 {
		t.Fatal("nothing accepted on the empty network")
	}
	if st.Accepted == st.Arrivals {
		t.Fatal("overloaded run rejected nothing; capacity is not enforced")
	}
	solver := sim.Solver()
	for e := 0; e < net.G.NumEdges(); e++ {
		if load := solver.LinkLoad(sof.EdgeID(e)); load > cfg.LinkCapacity+1e-6 {
			t.Fatalf("link %d load %v exceeds capacity %v", e, load, cfg.LinkCapacity)
		}
	}
	for n := 0; n < net.G.NumNodes(); n++ {
		if load := solver.VMLoad(sof.NodeID(n)); load > cfg.VMCapacity+1e-6 {
			t.Fatalf("vm %d load %v exceeds capacity %v", n, load, cfg.VMCapacity)
		}
	}
}

// TestOnlineAdaptiveAdmission turns on the utilization-exponential
// admission rule with a tight budget: the loaded network must start
// rejecting by admission (typed, counted separately from capacity), and
// draining the sessions via TTLs must let arrivals through again.
func TestOnlineAdaptiveAdmission(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 9})
	cfg := lifecycleConfig()
	cfg.AdmissionMu = 16
	cfg.AdmissionBudget = 0.05
	sim := NewSimulator(net, AlgoSOFDA, cfg)
	sim.Run(40)

	st := sim.Lifecycle()
	if st.Accepted == 0 {
		t.Fatal("adaptive admission rejected even the empty-network arrivals")
	}
	if st.AdmissionRejects == 0 {
		t.Fatal("tight budget never rejected by admission under load")
	}
	// Revenue (the session's Accumulated) only counts admitted requests and
	// never shrinks on departure.
	if acc := sim.Solver().Accumulated(); acc <= 0 {
		t.Fatalf("session revenue %v after %d acceptances", acc, st.Accepted)
	}
}

// TestLifecycleStatsEdgeCases pins the zero-value stats behavior.
func TestLifecycleStatsEdgeCases(t *testing.T) {
	var st LifecycleStats
	if got := st.AcceptRate(); got != 1 {
		t.Fatalf("idle AcceptRate = %v, want 1", got)
	}
	if got := st.LatencyP99(); got != 0 {
		t.Fatalf("idle LatencyP99 = %v, want 0", got)
	}
	if math.IsNaN(st.AcceptRate()) {
		t.Fatal("AcceptRate NaN")
	}
}
