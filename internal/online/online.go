// Package online implements the online deployment scenario of Section
// VIII-C: requests arrive sequentially, each is embedded by a chosen
// algorithm under the current load-dependent costs, the accepted forest's
// demand is reserved on the links and VMs it uses, and all costs are
// re-priced with the Fortz–Thorup function before the next arrival. The
// accumulated cost curve reproduces Figure 12.
//
// The simulator drives a single long-lived capacitated sof.Solver session:
// the session owns the load ledger (a lease per accepted request), enforces
// the link and VM-slot capacities, expires TTL-bearing requests against its
// virtual clock, and masks saturated elements so later arrivals route
// around them. Candidate shortest-path state is cached across arrivals and
// invalidated lazily through the network's cost epoch, so steps whose
// re-pricing did not actually change any cost embed from a warm cache.
package online

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"time"

	"sof"
	"sof/internal/graph"
	"sof/internal/topology"
)

// Algorithm names an embedding algorithm for the simulator. The values
// coincide with the public sof.Algorithm identifiers; the simulator
// forwards them to its Solver session (there is deliberately no second
// dispatch switch here).
type Algorithm string

// Supported algorithms.
const (
	AlgoSOFDA Algorithm = "SOFDA"
	// AlgoSOFDASS is the single-source variant (Section V). Its embeds run
	// entirely on the real network through the session oracle — no per-
	// request auxiliary clone — so a warm-cache arrival stream pays almost
	// no shortest-path work. The scaled soak uses it with SrcRange {1,1}.
	AlgoSOFDASS Algorithm = "SOFDA-SS"
	AlgoENEMP   Algorithm = "eNEMP"
	AlgoEST     Algorithm = "eST"
	AlgoST      Algorithm = "ST"
)

// Config parameterizes a simulation run.
type Config struct {
	// LinkCapacity and demand follow Section VIII-A: 100 Mbps links,
	// 5 Mbps per request. Zero or negative means uncapacitated (loads are
	// tracked and priced but nothing is enforced or masked).
	LinkCapacity float64
	Demand       float64
	// VMCapacity bounds VNF instances per VM host slot; zero or negative
	// means unbounded slots.
	VMCapacity float64
	// SrcRange and DstRange bound the per-request source/destination
	// counts (inclusive), drawn uniformly.
	SrcRange [2]int
	DstRange [2]int
	// ChainLen is the demanded services per request (3 in the paper).
	ChainLen int
	Seed     int64

	// TTLRange bounds the per-request lifetime in arrival steps
	// (inclusive), drawn uniformly; the zero value disables departures and
	// every accepted service stays for the whole run (the Figure 12
	// arrival-only setting). One arrival step is one unit of the session's
	// virtual clock.
	TTLRange [2]int
	// AdmissionMu and AdmissionBudget, when AdmissionMu > 0, switch the
	// session to adaptive admission (sof.WithAdaptiveAdmission): a request
	// is admitted only while the utilization-exponential price of its
	// footprint stays within budget × destinations.
	AdmissionMu     float64
	AdmissionBudget float64

	// RepriceEvery batches the Fortz–Thorup repricing pass for scaled
	// soaks: costs are rewritten once every N accepted arrivals instead of
	// after every one (0 or 1 keeps the paper's per-accept repricing).
	// Between passes the session embeds against slightly stale prices but
	// keeps its shortest-path caches warm — the amortization that makes
	// 10k-node, 100k-request streams run at sub-millisecond arrivals.
	RepriceEvery int
	// AccessPool, when positive, restricts request endpoints to the first
	// AccessPool access nodes of the topology — a bounded set of points of
	// presence. On Inet graphs every switch is an access node, so without
	// the bound a 10k-node soak draws endpoints that essentially never
	// repeat and no tree or chain cache can ever warm; real arrival
	// streams enter at a fixed set of edge locations.
	AccessPool int
}

// DefaultSoftLayerConfig mirrors the paper's SoftLayer online setup.
func DefaultSoftLayerConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{8, 12}, DstRange: [2]int{13, 17},
		ChainLen: 3,
	}
}

// DefaultCogentConfig mirrors the paper's Cogent online setup.
func DefaultCogentConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{10, 30}, DstRange: [2]int{20, 60},
		ChainLen: 3,
	}
}

// Result is one step of the simulation.
type Result struct {
	Request     int
	Cost        float64
	Accumulated float64
	Trees       int
	UsedVMs     int
	Rejected    bool
	// Err is the embedding error behind a rejection (nil for accepted
	// requests).
	Err error
	// Lease identifies the accepted request's reservation in the session
	// (0 when rejected); Leave it on the Solver to depart early.
	Lease sof.LeaseID
	// TTL is the lifetime drawn for this request (0 = stays for the run).
	TTL int64
	// Expired counts the leases whose TTL lapsed at the start of this
	// step, before the arrival was embedded; Live is the number of leases
	// still holding resources after the step.
	Expired int
	Live    int
}

// LifecycleStats aggregates the admission and departure counters of a run.
type LifecycleStats struct {
	// Arrivals counts completed steps; Accepted the requests that got a
	// lease. Rejections are split by cause: capacity (the footprint did
	// not fit), admission (the static or adaptive threshold), and Infeasible
	// (no route existed, or the algorithm failed).
	Arrivals         int
	Accepted         int
	CapacityRejects  int
	AdmissionRejects int
	Infeasible       int
	// Departed counts leases released by TTL expiry during the run.
	Departed int
	// Dijkstras counts the session oracle's shortest-path tree builds
	// (cache misses) over the whole run; the quotient with Arrivals is the
	// amortized SSSP cost per request the warm cache achieves.
	Dijkstras uint64
	// EmbedLatencies holds one wall-clock embedding duration per arrival,
	// accepted or not.
	EmbedLatencies []time.Duration
}

// AcceptRate returns the fraction of arrivals that were admitted
// (1 before any arrivals: an idle run rejects nothing).
func (st *LifecycleStats) AcceptRate() float64 {
	if st.Arrivals == 0 {
		return 1
	}
	return float64(st.Accepted) / float64(st.Arrivals)
}

// MeanDijkstras returns the mean shortest-path tree builds per arrival
// (0 before any arrivals).
func (st *LifecycleStats) MeanDijkstras() float64 {
	if st.Arrivals == 0 {
		return 0
	}
	return float64(st.Dijkstras) / float64(st.Arrivals)
}

// LatencyP99 returns the 99th-percentile embedding latency (0 without
// arrivals).
func (st *LifecycleStats) LatencyP99() time.Duration {
	if len(st.EmbedLatencies) == 0 {
		return 0
	}
	lat := append([]time.Duration(nil), st.EmbedLatencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := (len(lat)*99 + 99) / 100
	if idx > len(lat) {
		idx = len(lat)
	}
	return lat[idx-1]
}

// Simulator owns the request stream and the capacitated Solver session all
// arrivals are embedded through; the session owns the load ledger.
type Simulator struct {
	net    *topology.Network
	cfg    Config
	algo   Algorithm
	solver *sof.Solver
	rng    *rand.Rand

	accumulated  float64
	step         int
	sinceReprice int
	lifecycle    LifecycleStats

	// Failure-injection state (see failures.go): the pending schedule,
	// the recovery counters, and the scratch-comparison flag.
	failures       []FailureEvent
	nextFail       int
	recovery       RecoveryStats
	compareScratch bool
}

// NewSimulator builds a simulator over net. The network starts unloaded
// (Section VIII-A: "the node/link usages are zero initially"). Extra
// Solver options are appended to the simulator's own (algorithm, VM
// restriction, and the capacitated lifecycle session); SetFailureSchedule
// adds sof.WithRecovery itself, so plain arrival-only runs track no
// forests.
func NewSimulator(net *topology.Network, algo Algorithm, cfg Config, opts ...sof.Option) *Simulator {
	linkCap, vmCap := cfg.LinkCapacity, cfg.VMCapacity
	if linkCap <= 0 {
		linkCap = math.Inf(1)
	}
	if vmCap <= 0 {
		vmCap = math.Inf(1)
	}
	sopts := []sof.Option{
		sof.WithAlgorithm(sof.Algorithm(algo)),
		sof.WithVMs(net.VMs...),
		sof.WithCapacity(linkCap, vmCap),
		sof.WithDemand(cfg.Demand),
	}
	if cfg.AdmissionMu > 0 {
		sopts = append(sopts, sof.WithAdaptiveAdmission(cfg.AdmissionMu, cfg.AdmissionBudget))
	}
	sopts = append(sopts, opts...)
	s := &Simulator{
		net:    net,
		cfg:    cfg,
		algo:   algo,
		solver: sof.NewSolver(sof.FromGraph(net.G), sopts...),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	s.solver.Reprice()
	return s
}

// Solver exposes the session the simulator embeds through (cache counters,
// the lease table, and the load accessors for tests and benchmarks).
func (s *Simulator) Solver() *sof.Solver { return s.solver }

// Lifecycle exposes the run's admission and departure counters.
func (s *Simulator) Lifecycle() *LifecycleStats { return &s.lifecycle }

// drawTTL samples a request lifetime from cfg.TTLRange (0 when the range
// is unset: the service stays for the whole run).
func (s *Simulator) drawTTL() int64 {
	lo, hi := s.cfg.TTLRange[0], s.cfg.TTLRange[1]
	if hi <= 0 {
		return 0
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return int64(lo + s.rng.Intn(hi-lo+1))
}

// Step generates and embeds the next request, updates loads and prices,
// and returns the step result; see StepCtx for the cancellable form.
func (s *Simulator) Step() Result {
	r, _ := s.StepCtx(context.Background())
	return r
}

// StepCtx is Step with cancellation: once ctx is done the in-flight
// embedding aborts and the step is not counted. Each step advances the
// session's virtual clock by one (expiring lapsed TTLs), fires due failure
// events, embeds one arrival, and re-prices. A request that cannot be
// embedded for any other reason is reported as rejected (its cost does not
// accumulate; the cause lands in Result.Err).
func (s *Simulator) StepCtx(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	expired, err := s.solver.AdvanceTime(int64(s.step + 1))
	if err != nil {
		return Result{}, err
	}
	s.lifecycle.Departed += len(expired)
	if err := s.fireFailures(ctx); err != nil {
		return Result{}, err
	}
	pool := s.net.Access
	if p := s.cfg.AccessPool; p > 0 && p < len(pool) {
		pool = pool[:p]
	}
	nSrc := s.cfg.SrcRange[0] + s.rng.Intn(s.cfg.SrcRange[1]-s.cfg.SrcRange[0]+1)
	nDst := s.cfg.DstRange[0] + s.rng.Intn(s.cfg.DstRange[1]-s.cfg.DstRange[0]+1)
	if nSrc > len(pool) {
		nSrc = len(pool)
	}
	if nDst > len(pool) {
		nDst = len(pool)
	}
	req := sof.Request{
		Sources:      graph.SampleDistinct(s.rng, pool, nSrc),
		Destinations: graph.SampleDistinct(s.rng, pool, nDst),
		ChainLength:  s.cfg.ChainLen,
		TTL:          s.drawTTL(),
	}
	start := time.Now()
	forest, err := s.solver.Embed(ctx, req)
	embedTime := time.Since(start)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Result{}, ctxErr
		}
		s.step++
		s.lifecycle.Arrivals++
		s.lifecycle.Dijkstras = s.solver.CacheStats().Misses
		s.lifecycle.EmbedLatencies = append(s.lifecycle.EmbedLatencies, embedTime)
		switch {
		case errors.Is(err, sof.ErrCapacityExceeded):
			s.lifecycle.CapacityRejects++
		case errors.Is(err, sof.ErrAdmissionRejected):
			s.lifecycle.AdmissionRejects++
		default:
			s.lifecycle.Infeasible++
		}
		return Result{
			Request: s.step, Rejected: true, Err: err,
			Accumulated: s.accumulated, TTL: req.TTL,
			Expired: len(expired), Live: len(s.solver.Leases()),
		}, nil
	}
	s.step++
	s.lifecycle.Arrivals++
	s.lifecycle.Accepted++
	s.lifecycle.Dijkstras = s.solver.CacheStats().Misses
	s.lifecycle.EmbedLatencies = append(s.lifecycle.EmbedLatencies, embedTime)
	res := Result{
		Request: s.step,
		Cost:    forest.TotalCost(),
		Trees:   forest.Trees(),
		UsedVMs: len(forest.UsedVMs()),
		TTL:     req.TTL,
		Expired: len(expired),
	}
	if id, ok := forest.Lease(); ok {
		res.Lease = id
	}
	s.accumulated += res.Cost
	res.Accumulated = s.accumulated
	res.Live = len(s.solver.Leases())
	s.sinceReprice++
	if n := s.cfg.RepriceEvery; n <= 1 || s.sinceReprice >= n {
		s.solver.Reprice()
		s.sinceReprice = 0
	}
	return res, nil
}

// Run executes n steps and returns their results; see RunCtx for the
// cancellable form.
func (s *Simulator) Run(n int) []Result {
	out, _ := s.RunCtx(context.Background(), n)
	return out
}

// RunCtx executes up to n steps, stopping early (with the results
// gathered so far and ctx.Err()) once ctx is done.
func (s *Simulator) RunCtx(ctx context.Context, n int) ([]Result, error) {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		r, err := s.StepCtx(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Accumulated returns the total accepted cost so far.
func (s *Simulator) Accumulated() float64 { return s.accumulated }
