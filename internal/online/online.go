// Package online implements the online deployment scenario of Section
// VIII-C: requests arrive sequentially, each is embedded by a chosen
// algorithm under the current load-dependent costs, the accepted forest's
// demand is added to the links and VMs it uses, and all costs are re-priced
// with the Fortz–Thorup function before the next arrival. The accumulated
// cost curve reproduces Figure 12.
//
// The simulator drives a single long-lived sof.Solver session: candidate
// shortest-path state is cached across arrivals and invalidated lazily
// through the network's cost epoch, so steps whose re-pricing did not
// actually change any cost embed from a warm cache.
package online

import (
	"context"
	"math/rand"

	"sof"
	"sof/internal/core"
	"sof/internal/costmodel"
	"sof/internal/graph"
	"sof/internal/topology"
)

// Algorithm names an embedding algorithm for the simulator. The values
// coincide with the public sof.Algorithm identifiers; the simulator
// forwards them to its Solver session (there is deliberately no second
// dispatch switch here).
type Algorithm string

// Supported algorithms.
const (
	AlgoSOFDA Algorithm = "SOFDA"
	AlgoENEMP Algorithm = "eNEMP"
	AlgoEST   Algorithm = "eST"
	AlgoST    Algorithm = "ST"
)

// Config parameterizes a simulation run.
type Config struct {
	// LinkCapacity and demand follow Section VIII-A: 100 Mbps links,
	// 5 Mbps per request.
	LinkCapacity float64
	Demand       float64
	// VMCapacity bounds VNF instances per VM host slot.
	VMCapacity float64
	// SrcRange and DstRange bound the per-request source/destination
	// counts (inclusive), drawn uniformly.
	SrcRange [2]int
	DstRange [2]int
	// ChainLen is the demanded services per request (3 in the paper).
	ChainLen int
	Seed     int64
}

// DefaultSoftLayerConfig mirrors the paper's SoftLayer online setup.
func DefaultSoftLayerConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{8, 12}, DstRange: [2]int{13, 17},
		ChainLen: 3,
	}
}

// DefaultCogentConfig mirrors the paper's Cogent online setup.
func DefaultCogentConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{10, 30}, DstRange: [2]int{20, 60},
		ChainLen: 3,
	}
}

// Result is one step of the simulation.
type Result struct {
	Request     int
	Cost        float64
	Accumulated float64
	Trees       int
	UsedVMs     int
	Rejected    bool
	// Err is the embedding error behind a rejection (nil for accepted
	// requests).
	Err error
}

// Simulator owns the network state: per-link and per-VM load trackers, the
// request stream, and the Solver session all arrivals are embedded
// through.
type Simulator struct {
	net    *topology.Network
	cfg    Config
	algo   Algorithm
	solver *sof.Solver
	rng    *rand.Rand

	linkLoad *costmodel.Tracker
	vmLoad   *costmodel.Tracker
	vmIndex  map[graph.NodeID]int

	accumulated float64
	step        int

	// Failure-injection state (see failures.go): the pending schedule,
	// the recovery counters, and the scratch-comparison flag.
	failures       []FailureEvent
	nextFail       int
	recovery       RecoveryStats
	compareScratch bool
}

// NewSimulator builds a simulator over net. The network starts unloaded
// (Section VIII-A: "the node/link usages are zero initially"). Extra
// Solver options are appended to the simulator's own (algorithm and VM
// restriction); SetFailureSchedule adds sof.WithRecovery itself, so plain
// arrival-only runs track nothing.
func NewSimulator(net *topology.Network, algo Algorithm, cfg Config, opts ...sof.Option) *Simulator {
	sopts := append([]sof.Option{
		sof.WithAlgorithm(sof.Algorithm(algo)),
		sof.WithVMs(net.VMs...),
	}, opts...)
	s := &Simulator{
		net:      net,
		cfg:      cfg,
		algo:     algo,
		solver:   sof.NewSolver(sof.FromGraph(net.G), sopts...),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		linkLoad: costmodel.NewTracker(net.G.NumEdges(), cfg.LinkCapacity),
		vmLoad:   costmodel.NewTracker(len(net.VMs), cfg.VMCapacity),
		vmIndex:  make(map[graph.NodeID]int, len(net.VMs)),
	}
	for i, v := range net.VMs {
		s.vmIndex[v] = i
	}
	s.reprice()
	return s
}

// Solver exposes the session the simulator embeds through (cache counters
// for tests and benchmarks).
func (s *Simulator) Solver() *sof.Solver { return s.solver }

// reprice rewrites every edge and VM cost from its current load. Costs
// that come out unchanged do not advance the network's epoch, so the
// session cache survives re-pricing passes that were no-ops.
func (s *Simulator) reprice() {
	for e := 0; e < s.net.G.NumEdges(); e++ {
		s.net.G.SetEdgeCost(graph.EdgeID(e), costmodel.MarginalCost(s.linkLoad.Load(e), s.cfg.Demand, s.cfg.LinkCapacity))
	}
	for i, v := range s.net.VMs {
		s.net.G.SetNodeCost(v, costmodel.MarginalCost(s.vmLoad.Load(i), 1, s.cfg.VMCapacity))
	}
}

// Step generates and embeds the next request, updates loads and prices,
// and returns the step result; see StepCtx for the cancellable form.
func (s *Simulator) Step() Result {
	r, _ := s.StepCtx(context.Background())
	return r
}

// StepCtx is Step with cancellation: once ctx is done the in-flight
// embedding aborts and the step is not counted. A request that cannot be
// embedded for any other reason is reported as rejected (its cost does not
// accumulate; the cause lands in Result.Err).
func (s *Simulator) StepCtx(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.fireFailures(ctx); err != nil {
		return Result{}, err
	}
	nSrc := s.cfg.SrcRange[0] + s.rng.Intn(s.cfg.SrcRange[1]-s.cfg.SrcRange[0]+1)
	nDst := s.cfg.DstRange[0] + s.rng.Intn(s.cfg.DstRange[1]-s.cfg.DstRange[0]+1)
	if nSrc > len(s.net.Access) {
		nSrc = len(s.net.Access)
	}
	if nDst > len(s.net.Access) {
		nDst = len(s.net.Access)
	}
	req := sof.Request{
		Sources:      s.net.RandomNodes(s.rng, nSrc),
		Destinations: s.net.RandomNodes(s.rng, nDst),
		ChainLength:  s.cfg.ChainLen,
	}
	forest, err := s.solver.Embed(ctx, req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Result{}, ctxErr
		}
		s.step++
		return Result{Request: s.step, Rejected: true, Err: err, Accumulated: s.accumulated}, nil
	}
	s.step++
	res := Result{
		Request: s.step,
		Cost:    forest.TotalCost(),
		Trees:   forest.Trees(),
		UsedVMs: len(forest.UsedVMs()),
	}
	s.apply(forest.Internal())
	s.accumulated += res.Cost
	res.Accumulated = s.accumulated
	s.reprice()
	return res, nil
}

// apply adds the forest's demand to the trackers: every clone's parent link
// carries the stream once, every enabled VM hosts one VNF instance.
func (s *Simulator) apply(f *core.Forest) {
	for _, e := range forestEdges(f) {
		s.linkLoad.Add(int(e), s.cfg.Demand)
	}
	for _, v := range f.UsedVMs() {
		if i, ok := s.vmIndex[v]; ok {
			s.vmLoad.Add(i, 1)
		}
	}
}

// forestEdges lists the edge instances used by the forest (with
// multiplicity: a duplicated link carries the stream once per clone).
func forestEdges(f *core.Forest) []graph.EdgeID {
	var out []graph.EdgeID
	for id := 0; id < f.NumClones(); id++ {
		c := f.Clone(core.CloneID(id))
		if f.CloneDeleted(core.CloneID(id)) {
			continue
		}
		if c.Parent != core.NoClone && c.ParentEdge != graph.NoEdge {
			out = append(out, c.ParentEdge)
		}
	}
	return out
}

// Run executes n steps and returns their results; see RunCtx for the
// cancellable form.
func (s *Simulator) Run(n int) []Result {
	out, _ := s.RunCtx(context.Background(), n)
	return out
}

// RunCtx executes up to n steps, stopping early (with the results
// gathered so far and ctx.Err()) once ctx is done.
func (s *Simulator) RunCtx(ctx context.Context, n int) ([]Result, error) {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		r, err := s.StepCtx(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Accumulated returns the total accepted cost so far.
func (s *Simulator) Accumulated() float64 { return s.accumulated }
