// Package online implements the online deployment scenario of Section
// VIII-C: requests arrive sequentially, each is embedded by a chosen
// algorithm under the current load-dependent costs, the accepted forest's
// demand is added to the links and VMs it uses, and all costs are re-priced
// with the Fortz–Thorup function before the next arrival. The accumulated
// cost curve reproduces Figure 12.
package online

import (
	"fmt"
	"math/rand"

	"sof/internal/baseline"
	"sof/internal/core"
	"sof/internal/costmodel"
	"sof/internal/graph"
	"sof/internal/topology"
)

// Algorithm names an embedding algorithm for the simulator.
type Algorithm string

// Supported algorithms.
const (
	AlgoSOFDA Algorithm = "SOFDA"
	AlgoENEMP Algorithm = "eNEMP"
	AlgoEST   Algorithm = "eST"
	AlgoST    Algorithm = "ST"
)

// Embed runs the named algorithm.
func Embed(algo Algorithm, g *graph.Graph, req core.Request, opts *core.Options) (*core.Forest, error) {
	switch algo {
	case AlgoSOFDA:
		return core.SOFDA(g, req, opts)
	case AlgoENEMP:
		return baseline.ENEMP(g, req, opts)
	case AlgoEST:
		return baseline.EST(g, req, opts)
	case AlgoST:
		return baseline.ST(g, req, opts)
	default:
		return nil, fmt.Errorf("online: unknown algorithm %q", algo)
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// LinkCapacity and demand follow Section VIII-A: 100 Mbps links,
	// 5 Mbps per request.
	LinkCapacity float64
	Demand       float64
	// VMCapacity bounds VNF instances per VM host slot.
	VMCapacity float64
	// SrcRange and DstRange bound the per-request source/destination
	// counts (inclusive), drawn uniformly.
	SrcRange [2]int
	DstRange [2]int
	// ChainLen is the demanded services per request (3 in the paper).
	ChainLen int
	Seed     int64
}

// DefaultSoftLayerConfig mirrors the paper's SoftLayer online setup.
func DefaultSoftLayerConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{8, 12}, DstRange: [2]int{13, 17},
		ChainLen: 3,
	}
}

// DefaultCogentConfig mirrors the paper's Cogent online setup.
func DefaultCogentConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{10, 30}, DstRange: [2]int{20, 60},
		ChainLen: 3,
	}
}

// Result is one step of the simulation.
type Result struct {
	Request     int
	Cost        float64
	Accumulated float64
	Trees       int
	UsedVMs     int
	Rejected    bool
}

// Simulator owns the network state: per-link and per-VM load trackers and
// the request stream.
type Simulator struct {
	net  *topology.Network
	cfg  Config
	algo Algorithm
	rng  *rand.Rand

	linkLoad *costmodel.Tracker
	vmLoad   *costmodel.Tracker
	vmIndex  map[graph.NodeID]int

	accumulated float64
	step        int
}

// NewSimulator builds a simulator over net. The network starts unloaded
// (Section VIII-A: "the node/link usages are zero initially").
func NewSimulator(net *topology.Network, algo Algorithm, cfg Config) *Simulator {
	s := &Simulator{
		net:      net,
		cfg:      cfg,
		algo:     algo,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		linkLoad: costmodel.NewTracker(net.G.NumEdges(), cfg.LinkCapacity),
		vmLoad:   costmodel.NewTracker(len(net.VMs), cfg.VMCapacity),
		vmIndex:  make(map[graph.NodeID]int, len(net.VMs)),
	}
	for i, v := range net.VMs {
		s.vmIndex[v] = i
	}
	s.reprice()
	return s
}

// reprice rewrites every edge and VM cost from its current load.
func (s *Simulator) reprice() {
	for e := 0; e < s.net.G.NumEdges(); e++ {
		s.net.G.SetEdgeCost(graph.EdgeID(e), costmodel.MarginalCost(s.linkLoad.Load(e), s.cfg.Demand, s.cfg.LinkCapacity))
	}
	for i, v := range s.net.VMs {
		s.net.G.SetNodeCost(v, costmodel.MarginalCost(s.vmLoad.Load(i), 1, s.cfg.VMCapacity))
	}
}

// Step generates and embeds the next request, updates loads and prices, and
// returns the step result. A request that cannot be embedded is reported
// as rejected (its cost does not accumulate).
func (s *Simulator) Step() Result {
	s.step++
	nSrc := s.cfg.SrcRange[0] + s.rng.Intn(s.cfg.SrcRange[1]-s.cfg.SrcRange[0]+1)
	nDst := s.cfg.DstRange[0] + s.rng.Intn(s.cfg.DstRange[1]-s.cfg.DstRange[0]+1)
	if nSrc > len(s.net.Access) {
		nSrc = len(s.net.Access)
	}
	if nDst > len(s.net.Access) {
		nDst = len(s.net.Access)
	}
	req := core.Request{
		Sources:  s.net.RandomNodes(s.rng, nSrc),
		Dests:    s.net.RandomNodes(s.rng, nDst),
		ChainLen: s.cfg.ChainLen,
	}
	forest, err := Embed(s.algo, s.net.G, req, &core.Options{VMs: s.net.VMs})
	if err != nil {
		return Result{Request: s.step, Rejected: true, Accumulated: s.accumulated}
	}
	res := Result{
		Request: s.step,
		Cost:    forest.TotalCost(),
		Trees:   forest.NumTrees(),
		UsedVMs: len(forest.UsedVMs()),
	}
	s.apply(forest)
	s.accumulated += res.Cost
	res.Accumulated = s.accumulated
	s.reprice()
	return res
}

// apply adds the forest's demand to the trackers: every clone's parent link
// carries the stream once, every enabled VM hosts one VNF instance.
func (s *Simulator) apply(f *core.Forest) {
	for _, e := range forestEdges(f) {
		s.linkLoad.Add(int(e), s.cfg.Demand)
	}
	for _, v := range f.UsedVMs() {
		if i, ok := s.vmIndex[v]; ok {
			s.vmLoad.Add(i, 1)
		}
	}
}

// forestEdges lists the edge instances used by the forest (with
// multiplicity: a duplicated link carries the stream once per clone).
func forestEdges(f *core.Forest) []graph.EdgeID {
	var out []graph.EdgeID
	for id := 0; id < f.NumClones(); id++ {
		c := f.Clone(core.CloneID(id))
		if f.CloneDeleted(core.CloneID(id)) {
			continue
		}
		if c.Parent != core.NoClone && c.ParentEdge != graph.NoEdge {
			out = append(out, c.ParentEdge)
		}
	}
	return out
}

// Run executes n steps and returns their results.
func (s *Simulator) Run(n int) []Result {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Step())
	}
	return out
}

// Accumulated returns the total accepted cost so far.
func (s *Simulator) Accumulated() float64 { return s.accumulated }
