package online

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sof/internal/graph"
	"sof/internal/topology"
)

func smallConfig() Config {
	return Config{
		LinkCapacity: 100, Demand: 5, VMCapacity: 10,
		SrcRange: [2]int{2, 4}, DstRange: [2]int{2, 4},
		ChainLen: 2, Seed: 1,
	}
}

func TestSimulatorAccumulates(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 1})
	sim := NewSimulator(net, AlgoSOFDA, smallConfig())
	results := sim.Run(5)
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	prev := 0.0
	for i, r := range results {
		if r.Rejected {
			continue
		}
		if r.Cost <= 0 {
			t.Errorf("step %d: non-positive cost %v", i, r.Cost)
		}
		if r.Accumulated < prev-1e-9 {
			t.Errorf("step %d: accumulated decreased %v -> %v", i, prev, r.Accumulated)
		}
		prev = r.Accumulated
	}
	if sim.Accumulated() != prev {
		t.Errorf("Accumulated() = %v, want %v", sim.Accumulated(), prev)
	}
}

func TestLoadRaisesPrices(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 2})
	sim := NewSimulator(net, AlgoSOFDA, smallConfig())
	// After repricing an unloaded network, marginal link costs are in the
	// linear region: exactly the demand.
	firstCost := net.G.EdgeCost(0)
	if firstCost != 5 {
		t.Fatalf("unloaded marginal cost = %v, want 5", firstCost)
	}
	res := sim.Run(12)
	var grew bool
	for e := 0; e < net.G.NumEdges(); e++ {
		if net.G.EdgeCost(graph.EdgeID(e)) > firstCost+1e-9 {
			grew = true
			break
		}
	}
	if !grew {
		accepted := 0
		for _, r := range res {
			if !r.Rejected {
				accepted++
			}
		}
		t.Errorf("no link got more expensive after %d accepted requests", accepted)
	}
}

func TestAllAlgorithmsRunOnline(t *testing.T) {
	for _, algo := range []Algorithm{AlgoSOFDA, AlgoENEMP, AlgoEST, AlgoST} {
		net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 3})
		sim := NewSimulator(net, algo, smallConfig())
		res := sim.Run(3)
		for _, r := range res {
			if r.Rejected {
				t.Errorf("%s rejected request %d on an empty network", algo, r.Request)
			}
		}
	}
}

func TestUnknownAlgorithmRejects(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 5, Seed: 4})
	sim := NewSimulator(net, "nope", smallConfig())
	res, err := sim.StepCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected || res.Err == nil {
		t.Fatalf("unknown algorithm accepted: %+v", res)
	}
	if !strings.Contains(res.Err.Error(), "unknown algorithm") {
		t.Errorf("rejection error = %v, want unknown-algorithm", res.Err)
	}
}

func TestSimulationCancellable(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 6})
	sim := NewSimulator(net, AlgoSOFDA, smallConfig())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.StepCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("StepCtx error = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	done, err := sim.RunCtx(ctx2, 2)
	cancel2()
	if err != nil {
		t.Fatalf("RunCtx before cancel: %v", err)
	}
	if len(done) != 2 {
		t.Fatalf("RunCtx returned %d results, want 2", len(done))
	}
	if more, err := sim.RunCtx(ctx2, 5); err == nil || len(more) != 0 {
		t.Fatalf("RunCtx after cancel = (%d results, %v), want (0, error)", len(more), err)
	}
	// A cancelled step must not count: the next background step continues
	// the sequence.
	r := sim.Step()
	if r.Request != 3 {
		t.Errorf("step counter = %d after cancelled steps, want 3", r.Request)
	}
}

// TestSOFDAAccumulatesLessThanBaselines mirrors Figure 12's claim on a
// short prefix of the arrival sequence.
func TestSOFDAAccumulatesLessThanBaselines(t *testing.T) {
	totals := map[Algorithm]float64{}
	for _, algo := range []Algorithm{AlgoSOFDA, AlgoEST, AlgoST} {
		net := topology.SoftLayer(topology.Config{NumVMs: 25, Seed: 5})
		cfg := smallConfig()
		cfg.Seed = 5    // identical request stream for all algorithms
		cfg.Demand = 20 // push links into the convex region quickly
		sim := NewSimulator(net, algo, cfg)
		sim.Run(12)
		totals[algo] = sim.Accumulated()
	}
	t.Logf("accumulated: SOFDA=%.1f eST=%.1f ST=%.1f",
		totals[AlgoSOFDA], totals[AlgoEST], totals[AlgoST])
	// Figure 12 shape: SOFDA's accumulated cost stays below the single-
	// tree baseline once congestion pricing matters (small tolerance for
	// tie-breaking noise on the early flat region).
	if totals[AlgoSOFDA] > totals[AlgoST]*1.02 {
		t.Errorf("SOFDA accumulated %v exceeds ST %v", totals[AlgoSOFDA], totals[AlgoST])
	}
}
