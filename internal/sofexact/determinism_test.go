package sofexact

import (
	"fmt"
	"strings"
	"testing"

	"sof/internal/core"
	"sof/internal/graph"
)

// forestSignature renders a forest's full clone structure as a string, so
// two solves can be compared for structural identity — equal cost alone
// would not notice a tie broken toward a different, equally cheap tree.
func forestSignature(f *core.Forest) string {
	var b strings.Builder
	for id := 0; id < f.NumClones(); id++ {
		if f.CloneDeleted(core.CloneID(id)) {
			continue
		}
		c := f.Clone(core.CloneID(id))
		fmt.Fprintf(&b, "%d:n%d,v%d,p%d,e%d;", id, c.Node, c.VNF, c.Parent, c.ParentEdge)
	}
	return b.String()
}

// TestSolveDeterministicRepeatRuns pins the branch-and-bound search to a
// single trajectory: on fixed-seed instances, repeated solves must branch
// on the same VMs in the same order and return bit-identical costs. This
// is the regression test for the map-iteration fixes in buildLayered (VM
// enable arcs now come from a sorted slice) and the conflict-VM selection
// (sorted keys, ties to the smallest id) — reverting either makes the
// branch trace differ between runs with high probability.
func TestSolveDeterministicRepeatRuns(t *testing.T) {
	type branch struct {
		vm   graph.NodeID
		arcs int
	}
	const runs = 6
	totalBranches := 0

	type instance struct {
		g   *graph.Graph
		req core.Request
	}
	var instances []instance

	// A crafted instance whose relaxation double-enables the cheap VM on
	// all three branches at once: the conflict-VM pick then faces a
	// three-way tie (each VM holds two enable arcs), which only a sorted,
	// smallest-id tie-break resolves the same way every run.
	{
		g := graph.New(12, 14)
		var srcs, dsts []graph.NodeID
		var prevDest graph.NodeID = graph.None
		for i := 0; i < 3; i++ {
			s := g.AddSwitch(fmt.Sprintf("s%d", i))
			v := g.AddVM(fmt.Sprintf("v%d", i), 1)
			w := g.AddVM(fmt.Sprintf("w%d", i), 40)
			d := g.AddSwitch(fmt.Sprintf("d%d", i))
			g.MustAddEdge(s, v, 1)
			g.MustAddEdge(v, w, 1)
			g.MustAddEdge(w, d, 1)
			if prevDest != graph.None {
				g.MustAddEdge(prevDest, s, 30)
			}
			prevDest = d
			srcs = append(srcs, s)
			dsts = append(dsts, d)
		}
		instances = append(instances, instance{g: g, req: core.Request{Sources: srcs, Dests: dsts, ChainLen: 2}})
	}

	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 11, ExtraEdges: 13, VMFraction: 0.5, MaxEdge: 8, MaxSetup: 6,
		}, seed)
		sws := g.Switches()
		if len(sws) < 3 || len(g.VMs()) < 2 {
			continue
		}
		instances = append(instances, instance{g: g, req: core.Request{
			Sources:  []graph.NodeID{sws[0]},
			Dests:    []graph.NodeID{sws[len(sws)-1], sws[len(sws)-2]},
			ChainLen: 2,
		}})
	}

	for seed, inst := range instances {
		g, req := inst.g, inst.req

		var firstTrace []branch
		var firstCost float64
		var firstSig string
		for run := 0; run < runs; run++ {
			var trace []branch
			branchTrace = func(vm graph.NodeID, arcs int) {
				trace = append(trace, branch{vm: vm, arcs: arcs})
			}
			// NoPrime exercises the raw search: priming shrinks the branch
			// tree and could mask order instability behind early pruning.
			f, err := Solve(g, req, &Options{NoPrime: true})
			branchTrace = nil
			if err != nil {
				t.Fatalf("instance %d run %d: %v", seed, run, err)
			}
			cost := f.TotalCost()
			sig := forestSignature(f)
			if run == 0 {
				firstTrace = trace
				firstCost = cost
				firstSig = sig
				totalBranches += len(trace)
				continue
			}
			if cost != firstCost {
				t.Fatalf("seed %d run %d: cost %v differs from run 0's %v (must be bit-identical)", seed, run, cost, firstCost)
			}
			if sig != firstSig {
				t.Fatalf("seed %d run %d: forest structure differs from run 0:\n run %d: %s\n run 0: %s", seed, run, run, sig, firstSig)
			}
			if len(trace) != len(firstTrace) {
				t.Fatalf("seed %d run %d: %d branch decisions, run 0 made %d", seed, run, len(trace), len(firstTrace))
			}
			for i := range trace {
				if trace[i] != firstTrace[i] {
					t.Fatalf("seed %d run %d: branch %d = %+v, run 0 branched %+v", seed, run, i, trace[i], firstTrace[i])
				}
			}
		}
	}
	// The pins above are vacuous if no instance ever branched.
	if totalBranches == 0 {
		t.Fatal("no instance triggered branch-and-bound; strengthen the fixture instances")
	}
}
