// Package sofexact computes optimal service overlay forests for small
// instances. It replaces the paper's CPLEX baseline (see DESIGN.md §3).
//
// The SOF problem is reduced to a rooted directed Steiner tree on a layered
// graph: node (v, j) means "data at node v with the first j VNFs applied".
// In-layer arcs copy the network's links in both directions at their
// connection cost; an "enable" arc (v, j)→(v, j+1) with the VM's setup cost
// applies VNF j+1 at v; a virtual root reaches (s, 0) for every source at
// zero cost. A minimum arborescence spanning the root and all (d, |C|)
// terminals is exactly a minimum service overlay forest, except that it may
// enable one VM for several VNFs. That residual constraint (IP constraint
// (6)) is enforced by branch-and-bound on forbidden enable arcs, with the
// relaxation solved exactly by a directed Dreyfus–Wagner dynamic program.
package sofexact

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"sof/internal/core"
	"sof/internal/graph"
)

// MaxTerminals bounds the Dreyfus–Wagner DP (3^T merge work).
const MaxTerminals = 14

// Options configure the exact solver.
type Options struct {
	// VMs restricts candidate VMs (all VMs of the graph when nil).
	VMs []graph.NodeID
	// MaxBranchNodes bounds the branch-and-bound tree (default 10000).
	MaxBranchNodes int
	// SourceSetupCost charges each used source its node cost (Appendix D).
	SourceSetupCost bool
	// NoPrime disables seeding the incumbent with SOFDA's feasible
	// solution (priming only strengthens pruning; disable for tests that
	// must exercise the raw search).
	NoPrime bool
}

// arc of the layered digraph.
type arc struct {
	from, to int
	cost     float64
	// edge is the real edge for in-layer arcs, NoEdge for enable/root arcs.
	edge graph.EdgeID
	// enableVM is the real VM enabled by this arc (None otherwise).
	enableVM graph.NodeID
	// enableVNF is the 1-based VNF index applied (0 otherwise).
	enableVNF int
}

// layered is the layered digraph with reverse adjacency for the DP.
type layered struct {
	n      int // real node count
	levels int // chainLen+1
	nodes  int // n*levels + 1 (virtual root)
	root   int
	arcs   []arc
	// in[v] lists arcs entering layered node v.
	in [][]int32
}

func (l *layered) id(v graph.NodeID, layer int) int { return int(v) + layer*l.n }

// buildLayered takes the candidate VMs as a sorted, deduplicated slice:
// arc order determines branch order downstream, so iterating a map here
// would make the search tree (though never the optimal cost) depend on
// Go's randomized map order.
func buildLayered(g *graph.Graph, sources []graph.NodeID, vms []graph.NodeID, chainLen int, srcCost bool) *layered {
	n := g.NumNodes()
	levels := chainLen + 1
	l := &layered{
		n:      n,
		levels: levels,
		nodes:  n*levels + 1,
		root:   n * levels,
	}
	addArc := func(a arc) {
		l.arcs = append(l.arcs, a)
	}
	for layer := 0; layer < levels; layer++ {
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(graph.EdgeID(e))
			addArc(arc{from: l.id(ed.U, layer), to: l.id(ed.V, layer), cost: ed.Cost, edge: graph.EdgeID(e), enableVM: graph.None})
			addArc(arc{from: l.id(ed.V, layer), to: l.id(ed.U, layer), cost: ed.Cost, edge: graph.EdgeID(e), enableVM: graph.None})
		}
	}
	for _, v := range vms {
		for layer := 0; layer < chainLen; layer++ {
			addArc(arc{
				from: l.id(v, layer), to: l.id(v, layer+1),
				cost: g.NodeCost(v), edge: graph.NoEdge,
				enableVM: v, enableVNF: layer + 1,
			})
		}
	}
	seen := make(map[graph.NodeID]bool, len(sources))
	for _, s := range sources {
		if seen[s] {
			continue
		}
		seen[s] = true
		c := 0.0
		if srcCost {
			c = g.NodeCost(s)
		}
		addArc(arc{from: l.root, to: l.id(s, 0), cost: c, edge: graph.NoEdge, enableVM: graph.None})
	}
	l.in = make([][]int32, l.nodes)
	for i, a := range l.arcs {
		l.in[a.to] = append(l.in[a.to], int32(i))
	}
	return l
}

// branchTrace, when set by a test, observes every branch-and-bound
// branching decision (the VM branched on and its conflicting arc count)
// in the order taken. The search must report the identical sequence on
// every run — it is the repeat-run determinism probe for the fixes that
// removed map-order dependence from buildLayered and the conflict pick.
var branchTrace func(vm graph.NodeID, arcs int)

// Solve returns an optimal forest for the request, or an error when the
// instance is too large, infeasible, or the branch budget is exhausted.
func Solve(g *graph.Graph, req core.Request, opts *Options) (*core.Forest, error) {
	return SolveCtx(context.Background(), g, req, opts)
}

// SolveCtx is Solve with cancellation: ctx is observed at every
// branch-and-bound node expansion, so a mid-run cancellation aborts the
// search before the next relaxation is solved (each node still pays one
// full Dreyfus–Wagner pass, which bounds the cancellation latency).
func SolveCtx(ctx context.Context, g *graph.Graph, req core.Request, opts *Options) (*core.Forest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if len(req.Dests) > MaxTerminals {
		return nil, fmt.Errorf("sofexact: %d destinations exceeds limit %d", len(req.Dests), MaxTerminals)
	}
	vmList := o.VMs
	if vmList == nil {
		vmList = g.VMs()
	}
	// Sort and deduplicate without mutating the caller's slice; the sorted
	// order fixes the enable-arc order and with it the branch order.
	vmList = append([]graph.NodeID(nil), vmList...)
	sort.Slice(vmList, func(i, j int) bool { return vmList[i] < vmList[j] })
	uniq := vmList[:0]
	for i, v := range vmList {
		if i == 0 || v != vmList[i-1] {
			uniq = append(uniq, v)
		}
	}
	vmList = uniq
	l := buildLayered(g, req.Sources, vmList, req.ChainLen, o.SourceSetupCost)

	// Terminals: (d, |C|) deduped, plus the root.
	termIdx := make(map[int]int)
	var terms []int
	for _, d := range req.Dests {
		id := l.id(d, req.ChainLen)
		if _, ok := termIdx[id]; !ok {
			termIdx[id] = len(terms)
			terms = append(terms, id)
		}
	}

	maxNodes := o.MaxBranchNodes
	if maxNodes == 0 {
		maxNodes = 10000
	}
	forbidden := make([]bool, len(l.arcs))
	var bestArcs []int
	bestCost := math.Inf(1)
	// Prime the incumbent with SOFDA's feasible forest: branch-and-bound
	// then only explores branches that can strictly beat the heuristic,
	// which prunes the search by orders of magnitude. Correctness is
	// unaffected — if nothing beats the heuristic, the heuristic forest is
	// optimal and is returned.
	var primed *core.Forest
	if !o.NoPrime {
		if f, err := core.SOFDA(g, req, &core.Options{VMs: vmList}); err == nil {
			primed = f
			bestCost = f.TotalCost()
		}
	}
	nodes := 0
	var rec func() error
	rec = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		nodes++
		if nodes > maxNodes {
			return errors.New("sofexact: branch budget exhausted")
		}
		cost, used, err := l.steiner(terms, forbidden)
		if err != nil {
			return nil // this branch infeasible; prune
		}
		if cost >= bestCost-1e-12 {
			return nil
		}
		// Check the one-VNF-per-VM constraint; branch on the most
		// conflicted VM.
		byVM := make(map[graph.NodeID][]int)
		for _, ai := range used {
			a := l.arcs[ai]
			if a.enableVM != graph.None {
				byVM[a.enableVM] = append(byVM[a.enableVM], ai)
			}
		}
		// Pick the most conflicted VM, breaking count ties toward the
		// smallest node id: byVM is a map, so the selection must not lean
		// on its iteration order or the branch tree varies run to run.
		vmKeys := make([]graph.NodeID, 0, len(byVM))
		for v := range byVM {
			vmKeys = append(vmKeys, v)
		}
		sort.Slice(vmKeys, func(i, j int) bool { return vmKeys[i] < vmKeys[j] })
		conflictVM := graph.None
		for _, v := range vmKeys {
			if len(byVM[v]) > 1 && (conflictVM == graph.None || len(byVM[v]) > len(byVM[conflictVM])) {
				conflictVM = v
			}
		}
		if conflictVM == graph.None {
			bestCost = cost
			bestArcs = append(bestArcs[:0], used...)
			return nil
		}
		// SOS1-style branching: in any feasible solution the VM keeps at
		// most one of its enable arcs, so one branch per "keep only j"
		// choice covers all of them (a solution enabling none is feasible
		// in every branch). Forbidding |J|−1 arcs per branch prunes far
		// faster than excluding one arc at a time.
		conflictArcs := byVM[conflictVM]
		if branchTrace != nil {
			branchTrace(conflictVM, len(conflictArcs))
		}
		for keep := range conflictArcs {
			for i, ai := range conflictArcs {
				if i != keep {
					forbidden[ai] = true
				}
			}
			err := rec()
			for i, ai := range conflictArcs {
				if i != keep {
					forbidden[ai] = false
				}
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	if bestArcs == nil {
		if primed != nil {
			// Nothing beat the heuristic incumbent: it is optimal.
			return primed, nil
		}
		if len(terms) > 0 {
			return nil, errors.New("sofexact: no feasible forest")
		}
	}
	return l.toForest(g, req, bestArcs)
}

// steiner solves the rooted directed Steiner tree on the layered graph with
// the Dreyfus–Wagner DP, skipping forbidden arcs. It returns the optimal
// cost and the arcs used.
func (l *layered) steiner(terms []int, forbidden []bool) (float64, []int, error) {
	k := len(terms)
	full := uint32(1)<<k - 1
	n := l.nodes

	type choice struct {
		kind uint8 // 0 none, 1 split, 2 arc
		sub  uint32
		arc  int32
	}
	dp := make([][]float64, full+1)
	ch := make([][]choice, full+1)
	for mask := uint32(1); mask <= full; mask++ {
		dp[mask] = make([]float64, n)
		ch[mask] = make([]choice, n)
		for v := range dp[mask] {
			dp[mask][v] = math.Inf(1)
		}
		if bits.OnesCount32(mask) == 1 {
			dp[mask][terms[bits.TrailingZeros32(mask)]] = 0
		} else {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask ^ sub
				if sub > other {
					continue
				}
				for v := 0; v < n; v++ {
					if c := dp[sub][v] + dp[other][v]; c < dp[mask][v] {
						dp[mask][v] = c
						ch[mask][v] = choice{kind: 1, sub: sub}
					}
				}
			}
		}
		// Relax over reversed arcs: dp[mask][u] ← arc(u→w).cost + dp[mask][w].
		q := &floatPQ{pos: make([]int32, n)}
		for i := range q.pos {
			q.pos[i] = -1
		}
		for v, d := range dp[mask] {
			if !math.IsInf(d, 1) {
				heap.Push(q, pqEntry{node: int32(v), dist: d})
			}
		}
		done := make([]bool, n)
		for q.Len() > 0 {
			e := heap.Pop(q).(pqEntry)
			w := int(e.node)
			if done[w] {
				continue
			}
			done[w] = true
			for _, ai := range l.in[w] {
				if forbidden[ai] {
					continue
				}
				a := l.arcs[ai]
				u := a.from
				if done[u] {
					continue
				}
				nd := a.cost + dp[mask][w]
				if nd < dp[mask][u] {
					dp[mask][u] = nd
					ch[mask][u] = choice{kind: 2, arc: ai}
					if q.pos[u] >= 0 {
						q.items[q.pos[u]].dist = nd
						heap.Fix(q, int(q.pos[u]))
					} else {
						heap.Push(q, pqEntry{node: int32(u), dist: nd})
					}
				}
			}
		}
	}
	if math.IsInf(dp[full][l.root], 1) {
		return 0, nil, errors.New("sofexact: terminals unreachable")
	}
	var used []int
	var rec func(mask uint32, v int)
	rec = func(mask uint32, v int) {
		for {
			c := ch[mask][v]
			switch c.kind {
			case 2:
				used = append(used, int(c.arc))
				v = l.arcs[c.arc].to
			case 1:
				rec(c.sub, v)
				mask ^= c.sub
			default:
				return
			}
		}
	}
	rec(full, l.root)
	return dp[full][l.root], used, nil
}

// toForest converts the arborescence arcs into a validated core.Forest.
func (l *layered) toForest(g *graph.Graph, req core.Request, used []int) (*core.Forest, error) {
	f := core.NewForest(g, req.ChainLen)
	children := make(map[int][]arc)
	for _, ai := range used {
		a := l.arcs[ai]
		children[a.from] = append(children[a.from], a)
	}
	destLayer := req.ChainLen
	destSet := make(map[graph.NodeID]bool, len(req.Dests))
	for _, d := range req.Dests {
		destSet[d] = true
	}
	var attach func(node int, clone core.CloneID) error
	attach = func(node int, clone core.CloneID) error {
		layer := node / l.n
		real := graph.NodeID(node % l.n)
		if layer == destLayer && destSet[real] {
			f.MarkDestination(real, clone)
		}
		for _, a := range children[node] {
			var child core.CloneID
			if a.enableVM != graph.None {
				child = f.AppendInPlace(clone)
				if err := f.Enable(child, a.enableVNF); err != nil {
					return err
				}
			} else {
				child = f.AppendClone(clone, graph.NodeID(a.to%l.n), a.edge)
			}
			if err := attach(a.to, child); err != nil {
				return err
			}
		}
		return nil
	}
	for _, a := range children[l.root] {
		src := graph.NodeID(a.to % l.n)
		root := f.NewRoot(src)
		if err := attach(a.to, root); err != nil {
			return nil, err
		}
	}
	f.Prune()
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		return nil, fmt.Errorf("sofexact: assembled forest invalid: %w", err)
	}
	return f, nil
}

type pqEntry struct {
	node int32
	dist float64
}

type floatPQ struct {
	items []pqEntry
	pos   []int32
}

func (q *floatPQ) Len() int           { return len(q.items) }
func (q *floatPQ) Less(i, j int) bool { return q.items[i].dist < q.items[j].dist }
func (q *floatPQ) Push(x interface{}) {
	e := x.(pqEntry)
	q.pos[e.node] = int32(len(q.items))
	q.items = append(q.items, e)
}
func (q *floatPQ) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].node] = int32(i)
	q.pos[q.items[j].node] = int32(j)
}
func (q *floatPQ) Pop() interface{} {
	e := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	q.pos[e.node] = -1
	return e
}
