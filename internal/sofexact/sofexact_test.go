package sofexact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/kstroll"
)

func lineNet() (*graph.Graph, core.Request) {
	g := graph.New(4, 3)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 2)
	v2 := g.AddVM("v2", 3)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(v1, v2, 1)
	g.MustAddEdge(v2, d, 1)
	return g, core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: 2}
}

func TestExactLine(t *testing.T) {
	g, req := lineNet()
	f, err := Solve(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.TotalCost()-8) > 1e-9 {
		t.Fatalf("cost = %v, want 8", f.TotalCost())
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
}

func TestExactPrefersForest(t *testing.T) {
	// Mirror of core's paperStyleNet: the optimum splits into two trees.
	g := graph.New(10, 10)
	s0 := g.AddSwitch("s0")
	a := g.AddVM("a", 2)
	b := g.AddVM("b", 2)
	d0 := g.AddSwitch("d0")
	s1 := g.AddSwitch("s1")
	c := g.AddVM("c", 2)
	e := g.AddVM("e", 2)
	d1 := g.AddSwitch("d1")
	g.MustAddEdge(s0, a, 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, d0, 1)
	g.MustAddEdge(s1, c, 1)
	g.MustAddEdge(c, e, 1)
	g.MustAddEdge(e, d1, 1)
	g.MustAddEdge(b, c, 20)
	req := core.Request{Sources: []graph.NodeID{s0, s1}, Dests: []graph.NodeID{d0, d1}, ChainLen: 2}
	f, err := Solve(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.TotalCost()-14) > 1e-9 {
		t.Fatalf("cost = %v, want 14", f.TotalCost())
	}
	if f.NumTrees() != 2 {
		t.Fatalf("trees = %d, want 2", f.NumTrees())
	}
}

func TestExactEnforcesOneVNFPerVM(t *testing.T) {
	// Single VM on the cheap path: the relaxation would run both VNFs on
	// it; the constraint forces the expensive second VM.
	g := graph.New(5, 5)
	s := g.AddSwitch("s")
	v := g.AddVM("v", 1)
	w := g.AddVM("w", 50)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, v, 1)
	g.MustAddEdge(v, d, 1)
	g.MustAddEdge(v, w, 1)
	req := core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: 2}
	f, err := Solve(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(req.Sources, req.Dests); err != nil {
		t.Fatal(err)
	}
	// Forced: s-v(f1)-w(f2)-v-d: edges 1+1+1+1 = 4, setup 51 → 55.
	if math.Abs(f.TotalCost()-55) > 1e-9 {
		t.Fatalf("cost = %v, want 55", f.TotalCost())
	}
	used := f.UsedVMs()
	if len(used) != 2 {
		t.Fatalf("used VMs = %v, want both", used)
	}
}

func TestExactZeroChain(t *testing.T) {
	g, req := lineNet()
	req.ChainLen = 0
	f, err := Solve(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.TotalCost()-3) > 1e-9 {
		t.Fatalf("cost = %v, want 3 (plain shortest path)", f.TotalCost())
	}
}

func TestExactInfeasible(t *testing.T) {
	g := graph.New(3, 1)
	s := g.AddSwitch("s")
	d := g.AddSwitch("d")
	v := g.AddVM("v", 1)
	g.MustAddEdge(s, v, 1) // d disconnected
	req := core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: 1}
	if _, err := Solve(g, req, nil); err == nil {
		t.Fatal("disconnected instance accepted")
	}
}

func TestExactTooManyTerminals(t *testing.T) {
	g, req := lineNet()
	req.Dests = make([]graph.NodeID, MaxTerminals+1)
	if _, err := Solve(g, req, nil); err == nil {
		t.Fatal("terminal limit not enforced")
	}
}

// TestExactMatchesChainOracleOnSingleDest cross-validates the layered DP
// against an independent oracle: for a single destination the optimum is
// min over last VMs u of [exact chain s→u] + [shortest path u→d], minimized
// over sources.
func TestExactMatchesChainOracleOnSingleDest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for seed := int64(0); seed < 40 && checked < 20; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 12, ExtraEdges: 14, VMFraction: 0.5, MaxEdge: 8, MaxSetup: 6,
		}, seed)
		vms := g.VMs()
		sws := g.Switches()
		if len(vms) < 3 || len(sws) < 3 {
			continue
		}
		chainLen := 1 + rng.Intn(2)
		s := sws[0]
		d := sws[len(sws)-1]
		if s == d {
			continue
		}
		req := core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: chainLen}
		f, err := Solve(g, req, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		oracle := chain.NewOracle(g, chain.Options{Solver: &kstroll.ExactSolver{}})
		want := math.Inf(1)
		for _, u := range vms {
			sc, err := oracle.Chain(vms, s, u, chainLen)
			if err != nil {
				continue
			}
			_, _, dist, err := oracle.Path(u, d)
			if err != nil {
				continue
			}
			if c := sc.TotalCost() + dist; c < want {
				want = c
			}
		}
		if math.Abs(f.TotalCost()-want) > 1e-6 {
			t.Fatalf("seed %d: exact %v, oracle %v", seed, f.TotalCost(), want)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestSOFDAWithinBoundOfExact verifies the paper's headline guarantee
// empirically: SOFDA's cost is never below the optimum and stays within
// 3·ρST of it on random instances.
func TestSOFDAWithinBoundOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	worst := 1.0
	checked := 0
	for seed := int64(0); seed < 60 && checked < 30; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 14, ExtraEdges: 18, VMFraction: 0.45, MaxEdge: 9, MaxSetup: 6,
		}, seed)
		vms := g.VMs()
		sws := g.Switches()
		if len(vms) < 4 || len(sws) < 4 {
			continue
		}
		chainLen := 1 + rng.Intn(2)
		srcs := graph.SampleDistinct(rng, sws, 2)
		dsts := graph.SampleDistinct(rng, sws, 2)
		if srcs[0] == dsts[0] || srcs[0] == dsts[1] || srcs[1] == dsts[0] || srcs[1] == dsts[1] {
			continue
		}
		req := core.Request{Sources: srcs, Dests: dsts, ChainLen: chainLen}
		opt, err := Solve(g, req, nil)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		heur, err := core.SOFDA(g, req, nil)
		if err != nil {
			t.Fatalf("seed %d: SOFDA: %v", seed, err)
		}
		if heur.TotalCost() < opt.TotalCost()-1e-6 {
			t.Fatalf("seed %d: SOFDA %v beat the optimum %v", seed, heur.TotalCost(), opt.TotalCost())
		}
		ratio := heur.TotalCost() / math.Max(opt.TotalCost(), 1e-9)
		if ratio > worst {
			worst = ratio
		}
		if ratio > 6.0+1e-9 { // 3·ρST with ρST = 2 (KMB)
			t.Fatalf("seed %d: SOFDA ratio %.3f exceeds 3·ρST = 6", seed, ratio)
		}
		checked++
	}
	t.Logf("worst SOFDA/OPT ratio over %d instances: %.4f", checked, worst)
	if checked < 15 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestSolveCtxCancelled pins the cancellation contract of SolveCtx: ctx is
// observed at branch-and-bound node expansion, so an already-cancelled
// context aborts the search before any node is expanded — even when a
// primed incumbent would otherwise be a valid answer.
func TestSolveCtxCancelled(t *testing.T) {
	g, req := lineNet()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, noPrime := range []bool{false, true} {
		if _, err := SolveCtx(ctx, g, req, &Options{NoPrime: noPrime}); !errors.Is(err, context.Canceled) {
			t.Errorf("NoPrime=%v: err = %v, want context.Canceled", noPrime, err)
		}
	}
	// A live context still solves to optimality through the same path.
	f, err := SolveCtx(context.Background(), g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.TotalCost()-8) > 1e-9 {
		t.Fatalf("cost = %v, want 8", f.TotalCost())
	}
}
