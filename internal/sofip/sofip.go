// Package sofip builds and solves the paper's Integer Program for SOF
// (Section III-A, constraints (1)–(8)) using the internal simplex and
// branch-and-bound substrates. It exists to cross-validate the layered
// exact solver (internal/sofexact) on tiny instances, mirroring the role
// CPLEX plays in the paper; the layered solver is the one used in the
// benchmark harness because it scales to the paper's evaluation sizes.
package sofip

import (
	"fmt"

	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/ilp"
	"sof/internal/lp"
)

// Limits keep the dense tableau tractable and numerically reliable.
const (
	MaxNodesLimit = 16
	MaxDests      = 3
	MaxChain      = 2
)

// Result reports the optimal IP solution.
type Result struct {
	Cost      float64
	SetupCost float64
	ConnCost  float64
	// SigmaVMs[u] is the VNF index assigned to VM u (1-based).
	SigmaVMs map[graph.NodeID]int
}

// arcT is one direction of one edge instance (parallel edges are distinct
// arcs, unlike the paper's simple-graph notation).
type arcT struct {
	from, to graph.NodeID
	edge     graph.EdgeID
	cost     float64
}

// model carries the variable index maps.
// Function indices: 0 = fS, 1..|C| = chain VNFs, |C|+1 = fD.
type model struct {
	g    *graph.Graph
	req  core.Request
	lp   *lp.Problem
	arcs []arcT

	nextVar int
	gamma   map[[3]int]int // (destIdx, funcIdx, node) -> var
	pi      map[[3]int]int // (destIdx, funcIdx, arcIdx) -> var
	sigma   map[[2]int]int // (funcIdx, node) -> var
	tau     map[[2]int]int // (funcIdx, arcIdx) -> var
	vars    []float64      // objective coefficients
}

func fD(chainLen int) int { return chainLen + 1 }

// Solve builds and optimizes the IP. It returns an error for oversized
// instances (this solver is intentionally restricted to tiny ones).
func Solve(g *graph.Graph, req core.Request, maxNodes int) (*Result, error) {
	if err := req.Validate(g); err != nil {
		return nil, err
	}
	if g.NumNodes() > MaxNodesLimit || len(req.Dests) > MaxDests || req.ChainLen > MaxChain {
		return nil, fmt.Errorf("sofip: instance too large (%d nodes, %d dests, chain %d); limits are %d/%d/%d",
			g.NumNodes(), len(req.Dests), req.ChainLen, MaxNodesLimit, MaxDests, MaxChain)
	}
	if req.ChainLen < 1 {
		return nil, fmt.Errorf("sofip: chain length must be >= 1 (got %d)", req.ChainLen)
	}
	m := newModel(g, req)
	if err := m.build(); err != nil {
		return nil, err
	}
	binary := make([]int, m.nextVar)
	for i := range binary {
		binary[i] = i
	}
	if maxNodes == 0 {
		maxNodes = 50000
	}
	sol, err := (&ilp.Problem{LP: m.lp, Binary: binary, MaxNodes: maxNodes}).Solve()
	if err != nil {
		return nil, fmt.Errorf("sofip: %w", err)
	}
	res := &Result{Cost: sol.Objective, SigmaVMs: make(map[graph.NodeID]int)}
	for key, v := range m.sigma {
		if sol.X[v] > 0.5 {
			res.SigmaVMs[graph.NodeID(key[1])] = key[0]
			res.SetupCost += g.NodeCost(graph.NodeID(key[1]))
		}
	}
	res.ConnCost = res.Cost - res.SetupCost
	return res, nil
}

func newModel(g *graph.Graph, req core.Request) *model {
	m := &model{
		g: g, req: req,
		gamma: make(map[[3]int]int),
		pi:    make(map[[3]int]int),
		sigma: make(map[[2]int]int),
		tau:   make(map[[2]int]int),
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		m.arcs = append(m.arcs,
			arcT{from: ed.U, to: ed.V, edge: graph.EdgeID(e), cost: ed.Cost},
			arcT{from: ed.V, to: ed.U, edge: graph.EdgeID(e), cost: ed.Cost})
	}
	return m
}

func (m *model) newVar(objCoeff float64) int {
	v := m.nextVar
	m.nextVar++
	m.vars = append(m.vars, objCoeff)
	return v
}

func (m *model) build() error {
	m.allocate()
	m.lp = lp.NewProblem(m.nextVar)
	for v, c := range m.vars {
		if c != 0 {
			if err := m.lp.SetObjectiveCoeff(v, c); err != nil {
				return err
			}
		}
	}
	return m.constraints()
}

func (m *model) allocate() {
	g, req := m.g, m.req
	L := req.ChainLen
	// γ(d, fS, s) for sources; γ(d, f, u) for VMs. γ(d, fD, ·) is fixed by
	// constraints (3)-(4) and substituted, so no variables are created.
	for d := range req.Dests {
		for _, s := range req.Sources {
			key := [3]int{d, 0, int(s)}
			if _, ok := m.gamma[key]; !ok {
				m.gamma[key] = m.newVar(0)
			}
		}
		for f := 1; f <= L; f++ {
			for _, u := range g.VMs() {
				m.gamma[[3]int{d, f, int(u)}] = m.newVar(0)
			}
		}
	}
	// σ(f, u) with setup-cost objective.
	for f := 1; f <= L; f++ {
		for _, u := range g.VMs() {
			m.sigma[[2]int{f, int(u)}] = m.newVar(g.NodeCost(u))
		}
	}
	// τ(f, arc) with connection-cost objective; π(d, f, arc) free.
	for ai, a := range m.arcs {
		for f := 0; f <= L; f++ {
			m.tau[[2]int{f, ai}] = m.newVar(a.cost)
			for d := range req.Dests {
				m.pi[[3]int{d, f, ai}] = m.newVar(0)
			}
		}
	}
}

// gammaTerm returns γ(d, f, u) as either a variable or a fixed constant
// (fD rows and combinations with no variable are fixed).
func (m *model) gammaTerm(d, f int, u graph.NodeID) (varIdx int, fixed float64, isVar bool) {
	if f == fD(m.req.ChainLen) {
		if u == m.req.Dests[d] {
			return 0, 1, false
		}
		return 0, 0, false
	}
	if v, ok := m.gamma[[3]int{d, f, int(u)}]; ok {
		return v, 0, true
	}
	return 0, 0, false
}

func (m *model) constraints() error {
	g, req := m.g, m.req
	L := req.ChainLen
	// (1) each destination picks exactly one source.
	for d := range req.Dests {
		var terms []lp.Term
		seen := make(map[int]bool)
		for _, s := range req.Sources {
			v := m.gamma[[3]int{d, 0, int(s)}]
			if !seen[v] {
				seen[v] = true
				terms = append(terms, lp.Term{Var: v, Coeff: 1})
			}
		}
		if err := m.lp.AddConstraint(terms, lp.EQ, 1); err != nil {
			return err
		}
	}
	// (2) each destination picks exactly one VM per VNF.
	for d := range req.Dests {
		for f := 1; f <= L; f++ {
			var terms []lp.Term
			for _, u := range g.VMs() {
				terms = append(terms, lp.Term{Var: m.gamma[[3]int{d, f, int(u)}], Coeff: 1})
			}
			if err := m.lp.AddConstraint(terms, lp.EQ, 1); err != nil {
				return err
			}
		}
	}
	// (5) γ(d,f,u) ≤ σ(f,u).
	for d := range req.Dests {
		for f := 1; f <= L; f++ {
			for _, u := range g.VMs() {
				terms := []lp.Term{
					{Var: m.gamma[[3]int{d, f, int(u)}], Coeff: 1},
					{Var: m.sigma[[2]int{f, int(u)}], Coeff: -1},
				}
				if err := m.lp.AddConstraint(terms, lp.LE, 0); err != nil {
					return err
				}
			}
		}
	}
	// (6) at most one VNF per VM.
	for _, u := range g.VMs() {
		var terms []lp.Term
		for f := 1; f <= L; f++ {
			terms = append(terms, lp.Term{Var: m.sigma[[2]int{f, int(u)}], Coeff: 1})
		}
		if err := m.lp.AddConstraint(terms, lp.LE, 1); err != nil {
			return err
		}
	}
	// (7) chain routing: out(u) − in(u) ≥ γ(d,f,u) − γ(d,fN,u).
	for d := range req.Dests {
		for f := 0; f <= L; f++ {
			fN := f + 1
			for u := 0; u < g.NumNodes(); u++ {
				var terms []lp.Term
				for ai, a := range m.arcs {
					if int(a.from) == u {
						terms = append(terms, lp.Term{Var: m.pi[[3]int{d, f, ai}], Coeff: 1})
					}
					if int(a.to) == u {
						terms = append(terms, lp.Term{Var: m.pi[[3]int{d, f, ai}], Coeff: -1})
					}
				}
				rhs := 0.0
				if v, fixed, isVar := m.gammaTerm(d, f, graph.NodeID(u)); isVar {
					terms = append(terms, lp.Term{Var: v, Coeff: -1})
				} else {
					rhs += fixed
				}
				if v, fixed, isVar := m.gammaTerm(d, fN, graph.NodeID(u)); isVar {
					terms = append(terms, lp.Term{Var: v, Coeff: 1})
				} else {
					rhs -= fixed
				}
				if len(terms) == 0 && rhs <= 0 {
					continue
				}
				if err := m.lp.AddConstraint(terms, lp.GE, rhs); err != nil {
					return err
				}
			}
		}
	}
	// (8) π ≤ τ.
	for d := range req.Dests {
		for f := 0; f <= L; f++ {
			for ai := range m.arcs {
				terms := []lp.Term{
					{Var: m.pi[[3]int{d, f, ai}], Coeff: 1},
					{Var: m.tau[[2]int{f, ai}], Coeff: -1},
				}
				if err := m.lp.AddConstraint(terms, lp.LE, 0); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Relaxation solves the root LP relaxation (with 0/1 bounds) and returns
// its objective. It is an LP-based lower bound on the optimal forest cost.
func Relaxation(g *graph.Graph, req core.Request) (float64, error) {
	m := newModel(g, req)
	if err := m.build(); err != nil {
		return 0, err
	}
	for v := 0; v < m.nextVar; v++ {
		if err := m.lp.AddConstraint([]lp.Term{{Var: v, Coeff: 1}}, lp.LE, 1); err != nil {
			return 0, err
		}
	}
	sol, err := m.lp.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("sofip: relaxation status %v", sol.Status)
	}
	return sol.Objective, nil
}
