package sofip

import (
	"math"
	"testing"

	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/sofexact"
)

func lineNet() (*graph.Graph, core.Request) {
	g := graph.New(4, 3)
	s := g.AddSwitch("s")
	v1 := g.AddVM("v1", 2)
	v2 := g.AddVM("v2", 3)
	d := g.AddSwitch("d")
	g.MustAddEdge(s, v1, 1)
	g.MustAddEdge(v1, v2, 1)
	g.MustAddEdge(v2, d, 1)
	return g, core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d}, ChainLen: 2}
}

func TestIPLine(t *testing.T) {
	g, req := lineNet()
	res, err := Solve(g, req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-8) > 1e-6 {
		t.Fatalf("IP cost = %v, want 8", res.Cost)
	}
	if math.Abs(res.SetupCost-5) > 1e-6 || math.Abs(res.ConnCost-3) > 1e-6 {
		t.Fatalf("setup/conn = %v/%v, want 5/3", res.SetupCost, res.ConnCost)
	}
	if len(res.SigmaVMs) != 2 {
		t.Fatalf("sigma = %v, want 2 VMs", res.SigmaVMs)
	}
}

func TestIPRejectsOversized(t *testing.T) {
	g := graph.New(40, 1)
	for i := 0; i < 40; i++ {
		g.AddSwitch("")
	}
	req := core.Request{Sources: []graph.NodeID{0}, Dests: []graph.NodeID{1}, ChainLen: 1}
	if _, err := Solve(g, req, 0); err == nil {
		t.Fatal("oversized instance accepted")
	}
	g2, req2 := lineNet()
	req2.ChainLen = 0
	if _, err := Solve(g2, req2, 0); err == nil {
		t.Fatal("chainLen 0 accepted")
	}
}

// TestIPMatchesLayeredExact is the formulation cross-check: the paper's IP
// (via simplex + branch-and-bound) and the layered Dreyfus–Wagner solver
// must agree on small random instances.
func TestIPMatchesLayeredExact(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 30 && checked < 8; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 8, ExtraEdges: 6, VMFraction: 0.5, MaxEdge: 7, MaxSetup: 5,
		}, seed)
		vms := g.VMs()
		sws := g.Switches()
		if len(vms) < 2 || len(sws) < 3 {
			continue
		}
		req := core.Request{
			Sources:  []graph.NodeID{sws[0]},
			Dests:    []graph.NodeID{sws[len(sws)-1]},
			ChainLen: 1 + int(seed%2),
		}
		if req.ChainLen > len(vms) || req.Sources[0] == req.Dests[0] {
			continue
		}
		ipRes, err := Solve(g, req, 0)
		if err != nil {
			t.Fatalf("seed %d: IP: %v", seed, err)
		}
		exact, err := sofexact.Solve(g, req, nil)
		if err != nil {
			t.Fatalf("seed %d: layered: %v", seed, err)
		}
		if math.Abs(ipRes.Cost-exact.TotalCost()) > 1e-5 {
			t.Fatalf("seed %d: IP %v != layered exact %v", seed, ipRes.Cost, exact.TotalCost())
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestIPTwoDestinationsShareTree(t *testing.T) {
	// Y: s - v(1) - fork to d1 and d2; a single chain is shared.
	g := graph.New(6, 5)
	s := g.AddSwitch("s")
	v := g.AddVM("v", 1)
	fork := g.AddSwitch("fork")
	d1 := g.AddSwitch("d1")
	d2 := g.AddSwitch("d2")
	g.MustAddEdge(s, v, 1)
	g.MustAddEdge(v, fork, 1)
	g.MustAddEdge(fork, d1, 1)
	g.MustAddEdge(fork, d2, 1)
	req := core.Request{Sources: []graph.NodeID{s}, Dests: []graph.NodeID{d1, d2}, ChainLen: 1}
	res, err := Solve(g, req, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shared: edges s-v, v-fork, fork-d1, fork-d2 (4) + setup 1 = 5.
	if math.Abs(res.Cost-5) > 1e-6 {
		t.Fatalf("cost = %v, want 5", res.Cost)
	}
	exact, err := sofexact.Solve(g, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.TotalCost()-5) > 1e-9 {
		t.Fatalf("layered = %v, want 5", exact.TotalCost())
	}
	// The LP relaxation is a lower bound.
	rel, err := Relaxation(g, req)
	if err != nil {
		t.Fatal(err)
	}
	if rel > res.Cost+1e-6 {
		t.Fatalf("relaxation %v exceeds IP optimum %v", rel, res.Cost)
	}
}
