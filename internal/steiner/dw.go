package steiner

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"

	"sof/internal/graph"
)

// MaxExactTerminals bounds the Dreyfus–Wagner DP: masks are over
// (terminals−1) bits, so the DP table has 2^(t−1)·|V| entries.
const MaxExactTerminals = 16

const (
	choiceNone uint8 = iota
	choiceSplit
	choiceRelax
)

type dwChoice struct {
	kind uint8
	sub  uint32
	pred graph.NodeID
	edge graph.EdgeID
}

// Exact computes an optimal Steiner tree with the Dreyfus–Wagner dynamic
// program in O(3^t·V + 2^t·(E log V)). It is intended for small terminal
// sets (tests, small-instance optimality checks); it returns an error when
// len(terminals) exceeds MaxExactTerminals or terminals are disconnected.
func Exact(g *graph.Graph, terminals []graph.NodeID) (*Tree, error) {
	terminals = dedupeTerminals(terminals)
	switch len(terminals) {
	case 0:
		return &Tree{}, nil
	case 1:
		return &Tree{Nodes: []graph.NodeID{terminals[0]}}, nil
	}
	if len(terminals) > MaxExactTerminals {
		return nil, fmt.Errorf("steiner: %d terminals exceeds exact limit %d", len(terminals), MaxExactTerminals)
	}
	root := terminals[0]
	rest := terminals[1:]
	k := len(rest)
	n := g.NumNodes()
	full := uint32(1)<<k - 1

	dp := make([][]float64, full+1)
	ch := make([][]dwChoice, full+1)
	for mask := uint32(1); mask <= full; mask++ {
		dp[mask] = make([]float64, n)
		ch[mask] = make([]dwChoice, n)
		for v := range dp[mask] {
			dp[mask][v] = math.Inf(1)
		}
		if bits.OnesCount32(mask) == 1 {
			i := bits.TrailingZeros32(mask)
			dp[mask][rest[i]] = 0
		} else {
			// Merge phase: split mask into two nonempty halves at v.
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask ^ sub
				if sub > other {
					continue // each unordered split once
				}
				for v := 0; v < n; v++ {
					c := dp[sub][v] + dp[other][v]
					if c < dp[mask][v] {
						dp[mask][v] = c
						ch[mask][v] = dwChoice{kind: choiceSplit, sub: sub}
					}
				}
			}
		}
		relax(g, dp[mask], ch[mask])
	}
	if math.IsInf(dp[full][root], 1) {
		return nil, fmt.Errorf("steiner: terminals disconnected: %w", graph.ErrDisconnected)
	}

	edgeSet := make(map[graph.EdgeID]bool)
	var rec func(mask uint32, v graph.NodeID)
	rec = func(mask uint32, v graph.NodeID) {
		for {
			c := ch[mask][v]
			switch c.kind {
			case choiceRelax:
				edgeSet[c.edge] = true
				v = c.pred
			case choiceSplit:
				rec(c.sub, v)
				mask ^= c.sub
			default:
				return
			}
		}
	}
	rec(full, root)

	tree := treeFromEdges(g, edgeSet, terminals)
	recost(g, tree)
	if math.Abs(tree.Cost-dp[full][root]) > 1e-6 {
		return nil, fmt.Errorf("steiner: reconstruction cost %v != dp value %v", tree.Cost, dp[full][root])
	}
	return tree, nil
}

// relax runs a Dijkstra phase over dist in place, recording predecessor
// choices for improved nodes.
func relax(g *graph.Graph, dist []float64, ch []dwChoice) {
	q := &dwPQ{pos: make([]int, len(dist))}
	for i := range q.pos {
		q.pos[i] = -1
	}
	for v, d := range dist {
		if !math.IsInf(d, 1) {
			heap.Push(q, dwItem{node: graph.NodeID(v), dist: d})
		}
	}
	done := make([]bool, len(dist))
	for q.Len() > 0 {
		it := heap.Pop(q).(dwItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Adj(u) {
			v := a.To
			if done[v] {
				continue
			}
			nd := dist[u] + g.EdgeCost(a.Edge)
			if nd < dist[v] {
				dist[v] = nd
				ch[v] = dwChoice{kind: choiceRelax, pred: u, edge: a.Edge}
				if q.pos[v] >= 0 {
					q.items[q.pos[v]].dist = nd
					heap.Fix(q, q.pos[v])
				} else {
					heap.Push(q, dwItem{node: v, dist: nd})
				}
			}
		}
	}
}

func treeFromEdges(g *graph.Graph, edgeSet map[graph.EdgeID]bool, terminals []graph.NodeID) *Tree {
	nodeSet := make(map[graph.NodeID]bool)
	for _, t := range terminals {
		nodeSet[t] = true
	}
	tree := &Tree{}
	for e := range edgeSet {
		tree.Edges = append(tree.Edges, e)
		nodeSet[g.Edge(e).U] = true
		nodeSet[g.Edge(e).V] = true
	}
	for n := range nodeSet {
		tree.Nodes = append(tree.Nodes, n)
	}
	normalize(tree)
	return tree
}

type dwItem struct {
	node graph.NodeID
	dist float64
}

type dwPQ struct {
	items []dwItem
	pos   []int
}

func (q *dwPQ) Len() int           { return len(q.items) }
func (q *dwPQ) Less(i, j int) bool { return q.items[i].dist < q.items[j].dist }
func (q *dwPQ) Push(x interface{}) {
	it := x.(dwItem)
	q.pos[it.node] = len(q.items)
	q.items = append(q.items, it)
}
func (q *dwPQ) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].node] = i
	q.pos[q.items[j].node] = j
}
func (q *dwPQ) Pop() interface{} {
	it := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	q.pos[it.node] = -1
	return it
}
