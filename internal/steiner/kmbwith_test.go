package steiner

import (
	"reflect"
	"sync"
	"testing"

	"sof/internal/graph"
)

// memoProvider is a minimal PathProvider: a concurrency-safe memo over
// graph.Dijkstra, standing in for the chain oracle without importing it.
type memoProvider struct {
	g  *graph.Graph
	mu sync.Mutex
	m  map[graph.NodeID]*graph.ShortestPaths
}

func (p *memoProvider) Tree(n graph.NodeID) *graph.ShortestPaths {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[graph.NodeID]*graph.ShortestPaths)
	}
	sp, ok := p.m[n]
	if !ok {
		sp = graph.Dijkstra(p.g, n)
		p.m[n] = sp
	}
	return sp
}

// TestKMBWithMatchesKMB pins the provider-backed, parallel KMB against
// the self-contained sequential KMB: identical trees (nodes, edges, and
// cost bit-for-bit), for every provider/parallelism combination, on
// random graphs and terminal-set sizes including the Fig. 10 regime's
// larger sets.
func TestKMBWithMatchesKMB(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 80, ExtraEdges: 140, VMFraction: 0.3, MaxEdge: 9, MaxSetup: 5,
		}, seed)
		pool := make([]graph.NodeID, g.NumNodes())
		for i := range pool {
			pool[i] = graph.NodeID(i)
		}
		for _, nTerms := range []int{2, 5, 17} {
			terms := pool[:nTerms]
			want, err := KMB(g, terms)
			if err != nil {
				t.Fatalf("seed %d t=%d: KMB: %v", seed, nTerms, err)
			}
			for name, opts := range map[string]*KMBOptions{
				"parallel":          {Parallelism: 4},
				"provider":          {Provider: &memoProvider{g: g}},
				"provider-parallel": {Provider: &memoProvider{g: g}, Parallelism: 4},
			} {
				got, err := KMBWith(g, terms, opts)
				if err != nil {
					t.Fatalf("seed %d t=%d %s: %v", seed, nTerms, name, err)
				}
				if got.Cost != want.Cost {
					t.Fatalf("seed %d t=%d %s: cost %v != %v", seed, nTerms, name, got.Cost, want.Cost)
				}
				if !reflect.DeepEqual(got.Edges, want.Edges) || !reflect.DeepEqual(got.Nodes, want.Nodes) {
					t.Fatalf("seed %d t=%d %s: tree differs from self-contained KMB", seed, nTerms, name)
				}
				if err := Verify(g, got, terms); err != nil {
					t.Fatalf("seed %d t=%d %s: %v", seed, nTerms, name, err)
				}
			}
		}
	}
}

// TestKMBWithDisconnected checks the provider path reports unreachable
// terminals the same way the self-contained KMB does.
func TestKMBWithDisconnected(t *testing.T) {
	g := graph.New(4, 1)
	for i := 0; i < 4; i++ {
		g.AddSwitch("")
	}
	g.MustAddEdge(0, 1, 1)
	// 2 and 3 are isolated.
	for _, opts := range []*KMBOptions{nil, {Provider: &memoProvider{g: g}}, {Parallelism: 2}} {
		if _, err := KMBWith(g, []graph.NodeID{0, 1, 3}, opts); err == nil {
			t.Fatalf("opts %+v: expected disconnection error", opts)
		}
	}
}
