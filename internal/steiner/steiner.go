// Package steiner provides Steiner tree solvers over the graph substrate:
// the classic Kou–Markowsky–Berman (KMB) 2-approximation used as the ρST
// building block of SOFDA, and the Dreyfus–Wagner exact dynamic program used
// for small instances and as a test oracle.
//
// The paper invokes the LP-based 1.39-approximation of Byrka et al. [20] as
// a black box; KMB is the standard practical stand-in (see DESIGN.md §3).
// All algorithms in this repository share the same solver, so comparative
// results are unaffected by the substitution.
package steiner

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sof/internal/graph"
)

// Rho is the approximation ratio of the Steiner solver used throughout the
// repository (ρST in the paper). KMB guarantees 2·(1−1/t) < 2.
const Rho = 2.0

// Tree is a Steiner tree in the original graph.
type Tree struct {
	// Nodes are the tree's vertices (terminals plus Steiner points),
	// in ascending order.
	Nodes []graph.NodeID
	// Edges are the tree's edge IDs in the original graph.
	Edges []graph.EdgeID
	// Cost is the total edge connection cost of the tree.
	Cost float64
}

// Contains reports whether n is a vertex of the tree.
func (t *Tree) Contains(n graph.NodeID) bool {
	i := sort.Search(len(t.Nodes), func(i int) bool { return t.Nodes[i] >= n })
	return i < len(t.Nodes) && t.Nodes[i] == n
}

// dedupeTerminals returns the unique terminals, preserving first-seen order.
func dedupeTerminals(terminals []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(terminals))
	out := make([]graph.NodeID, 0, len(terminals))
	for _, t := range terminals {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// PathProvider supplies single-source shortest-path trees over the graph
// a Steiner instance runs on. chain.Oracle satisfies it, which lets every
// KMB call over the real network reuse the session's epoch-keyed Dijkstra
// cache instead of recomputing a private metric closure.
type PathProvider interface {
	// Tree returns the shortest-path tree rooted at n. The result must be
	// valid for the graph passed alongside the provider.
	Tree(n graph.NodeID) *graph.ShortestPaths
}

// KMBOptions tune KMBWith. The zero value (or a nil pointer) reproduces
// the self-contained sequential KMB.
type KMBOptions struct {
	// Provider answers the per-terminal shortest-path queries of the
	// metric-closure phase. When nil, KMB runs its own Dijkstras.
	Provider PathProvider
	// Parallelism is the number of concurrent per-terminal closure
	// passes; <= 1 (including the zero value) runs sequentially. Callers
	// with a 0-means-GOMAXPROCS convention (core.Options.Parallelism)
	// must resolve it before passing — provider-backed calls whose trees
	// are mostly cache hits are better off sequential.
	Parallelism int
}

// KMB computes a Steiner tree spanning terminals with the
// Kou–Markowsky–Berman algorithm: metric closure over terminals → MST of the
// closure → expansion into shortest paths → MST of the expansion → prune
// non-terminal leaves. Returns an error if the terminals are not mutually
// reachable.
func KMB(g *graph.Graph, terminals []graph.NodeID) (*Tree, error) {
	return KMBWith(g, terminals, nil)
}

// KMBWith is KMB with an injectable shortest-path provider and a
// concurrency budget for the per-terminal closure passes. The computed
// tree is identical to KMB's for any provider that answers with true
// shortest-path trees, at any parallelism: the closure MST breaks ties
// deterministically and the expansion depends only on the trees.
func KMBWith(g *graph.Graph, terminals []graph.NodeID, opts *KMBOptions) (*Tree, error) {
	terminals = dedupeTerminals(terminals)
	switch len(terminals) {
	case 0:
		return &Tree{}, nil
	case 1:
		return &Tree{Nodes: []graph.NodeID{terminals[0]}}, nil
	}
	trees := closureTrees(g, terminals, opts)
	for i := 1; i < len(terminals); i++ {
		if math.IsInf(trees[0].Dist[terminals[i]], 1) {
			return nil, fmt.Errorf("steiner: terminal %d unreachable from %d: %w",
				terminals[i], terminals[0], graph.ErrDisconnected)
		}
	}

	// Prim's MST on the dense closure, selecting through the indexed heap
	// (smallest-id tie-break matches the linear scan it replaced, so the
	// chosen closure edges are unchanged — only the selection cost drops).
	t := len(terminals)
	settled := make([]bool, t)
	minFrom := make([]int32, t)
	for i := range minFrom {
		minFrom[i] = -1
	}
	h := graph.NewIndexedHeap(t)
	h.Update(0, 0)
	type closureEdge struct{ a, b int32 }
	closureEdges := make([]closureEdge, 0, t-1)
	for h.Len() > 0 {
		best, _ := h.Pop()
		settled[best] = true
		if minFrom[best] >= 0 {
			closureEdges = append(closureEdges, closureEdge{a: minFrom[best], b: best})
		}
		dist := trees[best].Dist
		for i := int32(0); i < int32(t); i++ {
			if settled[i] {
				continue
			}
			if d := dist[terminals[i]]; !h.Contains(i) || d < h.Key(i) {
				h.Update(i, d)
				minFrom[i] = best
			}
		}
	}

	// Expand closure edges into real paths, deduping edges.
	edgeSet := make(map[graph.EdgeID]bool)
	nodeSet := make(map[graph.NodeID]bool)
	for _, tm := range terminals {
		nodeSet[tm] = true
	}
	for _, ce := range closureEdges {
		b := terminals[ce.b]
		for _, e := range trees[ce.a].EdgesTo(b) {
			edgeSet[e] = true
		}
		for _, n := range trees[ce.a].PathTo(b) {
			nodeSet[n] = true
		}
	}

	// MST of the expansion subgraph, then prune. The sets are collected
	// into sorted slices first: Kruskal breaks equal-cost ties by edge
	// order, so feeding it map order would let the runtime pick the tree.
	subNodes := make([]graph.NodeID, 0, len(nodeSet))
	for n := range nodeSet {
		subNodes = append(subNodes, n)
	}
	sort.Slice(subNodes, func(i, j int) bool { return subNodes[i] < subNodes[j] })
	subEdges := make([]graph.EdgeID, 0, len(edgeSet))
	for e := range edgeSet {
		subEdges = append(subEdges, e)
	}
	sort.Slice(subEdges, func(i, j int) bool { return subEdges[i] < subEdges[j] })
	tree := mstOfSubgraph(g, subNodes, subEdges)
	prune(g, tree, terminals)
	normalize(tree)
	recost(g, tree)
	return tree, nil
}

// closureTrees resolves the shortest-path tree of every terminal, through
// the provider when one is injected (hitting its cache) and by batched
// Dijkstra otherwise, fanning the passes out over the configured
// parallelism. Results are positionally aligned with terminals, so
// concurrency cannot change anything downstream.
func closureTrees(g *graph.Graph, terminals []graph.NodeID, opts *KMBOptions) []*graph.ShortestPaths {
	trees := make([]*graph.ShortestPaths, len(terminals))
	var provider PathProvider
	par := 1
	if opts != nil {
		provider = opts.Provider
		if opts.Parallelism > 1 {
			par = opts.Parallelism
		}
	}
	if par > len(terminals) {
		par = len(terminals)
	}
	if provider == nil {
		// Uncached path: one DijkstraBatch per worker over a contiguous
		// chunk of terminals, each batch sharing a pooled arena and CSR
		// pass, so a t-terminal closure costs O(par) scratch setups
		// instead of t.
		if par <= 1 {
			copy(trees, graph.DijkstraBatch(g, terminals, nil))
			return trees
		}
		var wg sync.WaitGroup
		chunk := (len(terminals) + par - 1) / par
		for lo := 0; lo < len(terminals); lo += chunk {
			hi := lo + chunk
			if hi > len(terminals) {
				hi = len(terminals)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				copy(trees[lo:hi], graph.DijkstraBatch(g, terminals[lo:hi], nil))
			}(lo, hi)
		}
		wg.Wait()
		return trees
	}
	fetch := func(i int) { trees[i] = provider.Tree(terminals[i]) }
	if par <= 1 {
		for i := range terminals {
			fetch(i)
		}
		return trees
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(terminals) {
					return
				}
				fetch(i)
			}
		}()
	}
	wg.Wait()
	return trees
}

// mstOfSubgraph computes an MST over exactly the given nodes and candidate
// edges (all candidate edges have both endpoints in nodes).
func mstOfSubgraph(g *graph.Graph, nodes []graph.NodeID, candidates []graph.EdgeID) *Tree {
	sort.Slice(candidates, func(i, j int) bool {
		ci, cj := g.EdgeCost(candidates[i]), g.EdgeCost(candidates[j])
		if ci != cj {
			return ci < cj
		}
		return candidates[i] < candidates[j]
	})
	uf := graph.NewSparseUnionFind()
	tree := &Tree{Nodes: nodes}
	for _, id := range candidates {
		e := g.Edge(id)
		if uf.Union(int(e.U), int(e.V)) {
			tree.Edges = append(tree.Edges, id)
		}
	}
	return tree
}

// prune repeatedly removes non-terminal leaves from the tree in place.
func prune(g *graph.Graph, tree *Tree, terminals []graph.NodeID) {
	isTerminal := make(map[graph.NodeID]bool, len(terminals))
	for _, t := range terminals {
		isTerminal[t] = true
	}
	deg := make(map[graph.NodeID]int)
	incident := make(map[graph.NodeID][]graph.EdgeID)
	for _, id := range tree.Edges {
		e := g.Edge(id)
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], id)
		incident[e.V] = append(incident[e.V], id)
	}
	removedEdge := make(map[graph.EdgeID]bool)
	removedNode := make(map[graph.NodeID]bool)
	var queue []graph.NodeID
	for _, n := range tree.Nodes {
		if !isTerminal[n] && deg[n] <= 1 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if removedNode[n] || isTerminal[n] || deg[n] > 1 {
			continue
		}
		removedNode[n] = true
		for _, id := range incident[n] {
			if removedEdge[id] {
				continue
			}
			removedEdge[id] = true
			other := g.Edge(id).Other(n)
			deg[other]--
			deg[n]--
			if !isTerminal[other] && deg[other] <= 1 {
				queue = append(queue, other)
			}
		}
	}
	var keptEdges []graph.EdgeID
	for _, id := range tree.Edges {
		if !removedEdge[id] {
			keptEdges = append(keptEdges, id)
		}
	}
	var keptNodes []graph.NodeID
	for _, n := range tree.Nodes {
		if !removedNode[n] {
			keptNodes = append(keptNodes, n)
		}
	}
	tree.Edges = keptEdges
	tree.Nodes = keptNodes
}

func normalize(t *Tree) {
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	sort.Slice(t.Edges, func(i, j int) bool { return t.Edges[i] < t.Edges[j] })
}

func recost(g *graph.Graph, t *Tree) {
	t.Cost = 0
	for _, e := range t.Edges {
		t.Cost += g.EdgeCost(e)
	}
}

// Verify checks that tree is a valid Steiner tree for terminals in g: it is
// connected, acyclic, spans all terminals, and its recorded cost matches its
// edges.
func Verify(g *graph.Graph, tree *Tree, terminals []graph.NodeID) error {
	terminals = dedupeTerminals(terminals)
	if len(terminals) == 0 {
		return nil
	}
	inTree := make(map[graph.NodeID]bool, len(tree.Nodes))
	for _, n := range tree.Nodes {
		inTree[n] = true
	}
	for _, t := range terminals {
		if !inTree[t] {
			return fmt.Errorf("steiner: terminal %d not spanned", t)
		}
	}
	if len(tree.Edges) != len(tree.Nodes)-1 {
		return fmt.Errorf("steiner: %d edges for %d nodes (not a tree)", len(tree.Edges), len(tree.Nodes))
	}
	uf := graph.NewSparseUnionFind()
	var cost float64
	for _, id := range tree.Edges {
		e := g.Edge(id)
		if !inTree[e.U] || !inTree[e.V] {
			return fmt.Errorf("steiner: edge %d leaves the node set", id)
		}
		if !uf.Union(int(e.U), int(e.V)) {
			return fmt.Errorf("steiner: edge %d closes a cycle", id)
		}
		cost += e.Cost
	}
	for _, t := range terminals[1:] {
		if !uf.Same(int(terminals[0]), int(t)) {
			return fmt.Errorf("steiner: terminals %d and %d disconnected in tree", terminals[0], t)
		}
	}
	if math.Abs(cost-tree.Cost) > 1e-6 {
		return fmt.Errorf("steiner: recorded cost %v != edge sum %v", tree.Cost, cost)
	}
	return nil
}
