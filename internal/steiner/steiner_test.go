package steiner

import (
	"math"
	"math/rand"
	"testing"

	"sof/internal/graph"
)

// gridGraph builds an r×c grid of switches with unit edge costs.
func gridGraph(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	for i := 0; i < r*c; i++ {
		g.AddSwitch("")
	}
	id := func(i, j int) graph.NodeID { return graph.NodeID(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.MustAddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.MustAddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func TestKMBTrivialCases(t *testing.T) {
	g := gridGraph(3, 3)
	tr, err := KMB(g, nil)
	if err != nil || len(tr.Nodes) != 0 || tr.Cost != 0 {
		t.Fatalf("empty terminals: %v %+v", err, tr)
	}
	tr, err = KMB(g, []graph.NodeID{4})
	if err != nil || len(tr.Nodes) != 1 || tr.Cost != 0 {
		t.Fatalf("single terminal: %v %+v", err, tr)
	}
	tr, err = KMB(g, []graph.NodeID{4, 4, 4})
	if err != nil || len(tr.Nodes) != 1 {
		t.Fatalf("duplicate terminals: %v %+v", err, tr)
	}
}

func TestKMBPath(t *testing.T) {
	g := gridGraph(1, 5)
	tr, err := KMB(g, []graph.NodeID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Cost-4) > 1e-9 {
		t.Fatalf("cost = %v, want 4", tr.Cost)
	}
	if err := Verify(g, tr, []graph.NodeID{0, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestKMBCross(t *testing.T) {
	// 3x3 grid, terminals at the four corners. The optimum is an H shape:
	// top row + bottom row + middle column, cost 6.
	g := gridGraph(3, 3)
	terms := []graph.NodeID{0, 2, 6, 8}
	tr, err := KMB(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, tr, terms); err != nil {
		t.Fatal(err)
	}
	if tr.Cost < 6-1e-9 || tr.Cost > 12+1e-9 {
		t.Fatalf("cost = %v, want within [6,12]", tr.Cost)
	}
	ex, err := Exact(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Cost-6) > 1e-9 {
		t.Fatalf("exact cost = %v, want 6", ex.Cost)
	}
}

func TestKMBDisconnected(t *testing.T) {
	g := graph.New(2, 0)
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	if _, err := KMB(g, []graph.NodeID{a, b}); err == nil {
		t.Fatal("expected error for disconnected terminals")
	}
	if _, err := Exact(g, []graph.NodeID{a, b}); err == nil {
		t.Fatal("expected exact error for disconnected terminals")
	}
}

func TestExactTrivial(t *testing.T) {
	g := gridGraph(2, 2)
	tr, err := Exact(g, []graph.NodeID{1})
	if err != nil || tr.Cost != 0 || len(tr.Nodes) != 1 {
		t.Fatalf("single terminal exact: %v %+v", err, tr)
	}
}

func TestExactTooManyTerminals(t *testing.T) {
	g := gridGraph(5, 5)
	terms := make([]graph.NodeID, MaxExactTerminals+1)
	for i := range terms {
		terms[i] = graph.NodeID(i)
	}
	if _, err := Exact(g, terms); err == nil {
		t.Fatal("expected terminal-limit error")
	}
}

func TestExactSteinerPoint(t *testing.T) {
	// Star: center 0, leaves 1,2,3 with unit edges; terminals are the
	// leaves. Optimum uses the non-terminal center, cost 3.
	g := graph.New(4, 3)
	c := g.AddSwitch("c")
	var leaves []graph.NodeID
	for i := 0; i < 3; i++ {
		l := g.AddSwitch("")
		g.MustAddEdge(c, l, 1)
		leaves = append(leaves, l)
	}
	// Expensive direct edges between the leaves.
	g.MustAddEdge(leaves[0], leaves[1], 10)
	g.MustAddEdge(leaves[1], leaves[2], 10)
	tr, err := Exact(g, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Cost-3) > 1e-9 {
		t.Fatalf("exact cost = %v, want 3", tr.Cost)
	}
	if !tr.Contains(c) {
		t.Fatal("exact tree should include the Steiner point")
	}
	if err := Verify(g, tr, leaves); err != nil {
		t.Fatal(err)
	}
}

// TestKMBWithinRhoOfExact is the core property test: on random instances,
// KMB must produce feasible trees within ρST=2 of Dreyfus–Wagner.
func TestKMBWithinRhoOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 30; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 25, ExtraEdges: 35, VMFraction: 0.3, MaxEdge: 10, MaxSetup: 5,
		}, seed)
		nterm := 2 + rng.Intn(5)
		pool := make([]graph.NodeID, g.NumNodes())
		for i := range pool {
			pool[i] = graph.NodeID(i)
		}
		terms := graph.SampleDistinct(rng, pool, nterm)

		kmb, err := KMB(g, terms)
		if err != nil {
			t.Fatalf("seed %d: KMB: %v", seed, err)
		}
		if err := Verify(g, kmb, terms); err != nil {
			t.Fatalf("seed %d: KMB verify: %v", seed, err)
		}
		ex, err := Exact(g, terms)
		if err != nil {
			t.Fatalf("seed %d: Exact: %v", seed, err)
		}
		if err := Verify(g, ex, terms); err != nil {
			t.Fatalf("seed %d: Exact verify: %v", seed, err)
		}
		if ex.Cost > kmb.Cost+1e-9 {
			t.Fatalf("seed %d: exact %v > KMB %v", seed, ex.Cost, kmb.Cost)
		}
		if kmb.Cost > Rho*ex.Cost+1e-9 {
			t.Fatalf("seed %d: KMB %v exceeds %v×exact %v", seed, kmb.Cost, Rho, ex.Cost)
		}
	}
}

func TestExactMatchesBruteForceOnTinyGraphs(t *testing.T) {
	// On tiny graphs, enumerate all edge subsets as a brute-force oracle.
	for seed := int64(0); seed < 15; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 7, ExtraEdges: 5, VMFraction: 0.3, MaxEdge: 8, MaxSetup: 5,
		}, seed)
		terms := []graph.NodeID{0, graph.NodeID(g.NumNodes() - 1), graph.NodeID(g.NumNodes() / 2)}
		ex, err := Exact(g, terms)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceSteiner(g, terms)
		if math.Abs(ex.Cost-want) > 1e-9 {
			t.Fatalf("seed %d: exact %v, brute force %v", seed, ex.Cost, want)
		}
	}
}

// bruteForceSteiner enumerates all 2^E edge subsets and returns the cheapest
// one connecting all terminals. Exponential; only for tiny test graphs.
func bruteForceSteiner(g *graph.Graph, terms []graph.NodeID) float64 {
	m := g.NumEdges()
	best := math.Inf(1)
	for mask := 0; mask < 1<<m; mask++ {
		var cost float64
		uf := graph.NewUnionFind(g.NumNodes())
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				e := g.Edge(graph.EdgeID(i))
				uf.Union(int(e.U), int(e.V))
				cost += e.Cost
			}
		}
		if cost >= best {
			continue
		}
		ok := true
		for _, t := range terms[1:] {
			if !uf.Same(int(terms[0]), int(t)) {
				ok = false
				break
			}
		}
		if ok {
			best = cost
		}
	}
	return best
}

func TestVerifyRejectsBadTrees(t *testing.T) {
	g := gridGraph(2, 3)
	terms := []graph.NodeID{0, 5}
	tr, err := KMB(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Tree{Nodes: tr.Nodes, Edges: tr.Edges, Cost: tr.Cost + 5}
	if err := Verify(g, bad, terms); err == nil {
		t.Error("Verify should reject wrong cost")
	}
	bad2 := &Tree{Nodes: tr.Nodes[:len(tr.Nodes)-1], Edges: tr.Edges, Cost: tr.Cost}
	if err := Verify(g, bad2, terms); err == nil {
		t.Error("Verify should reject missing node")
	}
}

func TestTreeContains(t *testing.T) {
	tr := &Tree{Nodes: []graph.NodeID{1, 3, 5}}
	if !tr.Contains(3) || tr.Contains(2) {
		t.Fatal("Contains gave wrong answer")
	}
}
