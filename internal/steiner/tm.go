package steiner

import (
	"container/heap"
	"math"

	"sof/internal/graph"
)

// TakahashiMatsuyama computes a Steiner tree with the shortest-path
// heuristic: grow the tree from the first terminal, repeatedly attaching
// the terminal closest to the current tree along its shortest path. Also a
// 2-approximation; kept alongside KMB for ablation studies (DESIGN.md §6):
// it trades a little quality on dense instances for far fewer Dijkstra
// runs on large sparse graphs.
func TakahashiMatsuyama(g *graph.Graph, terminals []graph.NodeID) (*Tree, error) {
	terminals = dedupeTerminals(terminals)
	switch len(terminals) {
	case 0:
		return &Tree{}, nil
	case 1:
		return &Tree{Nodes: []graph.NodeID{terminals[0]}}, nil
	}
	inTree := make(map[graph.NodeID]bool)
	edgeSet := make(map[graph.EdgeID]bool)
	inTree[terminals[0]] = true
	remaining := make(map[graph.NodeID]bool, len(terminals)-1)
	for _, t := range terminals[1:] {
		if !inTree[t] {
			remaining[t] = true
		}
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]graph.NodeID, n)
	parentEdge := make([]graph.EdgeID, n)
	for len(remaining) > 0 {
		// Multi-source Dijkstra from the whole current tree.
		for i := range dist {
			dist[i] = math.Inf(1)
			parent[i] = graph.None
			parentEdge[i] = graph.NoEdge
		}
		q := &tmPQ{pos: make([]int32, n)}
		for i := range q.pos {
			q.pos[i] = -1
		}
		for v := range inTree {
			dist[v] = 0
			heap.Push(q, tmItem{node: v})
		}
		done := make([]bool, n)
		var hit graph.NodeID = graph.None
		for q.Len() > 0 {
			it := heap.Pop(q).(tmItem)
			u := it.node
			if done[u] {
				continue
			}
			done[u] = true
			if remaining[u] {
				hit = u
				break
			}
			for _, a := range g.Adj(u) {
				if done[a.To] {
					continue
				}
				nd := dist[u] + g.EdgeCost(a.Edge)
				if nd < dist[a.To] {
					dist[a.To] = nd
					parent[a.To] = u
					parentEdge[a.To] = a.Edge
					if q.pos[a.To] >= 0 {
						q.items[q.pos[a.To]].dist = nd
						heap.Fix(q, int(q.pos[a.To]))
					} else {
						heap.Push(q, tmItem{node: a.To, dist: nd})
					}
				}
			}
		}
		if hit == graph.None {
			return nil, graph.ErrDisconnected
		}
		for v := hit; parent[v] != graph.None; v = parent[v] {
			edgeSet[parentEdge[v]] = true
			inTree[v] = true
		}
		inTree[hit] = true
		delete(remaining, hit)
	}
	tree := treeFromEdges(g, edgeSet, terminals)
	prune(g, tree, terminals)
	normalize(tree)
	recost(g, tree)
	return tree, nil
}

type tmItem struct {
	node graph.NodeID
	dist float64
}

type tmPQ struct {
	items []tmItem
	pos   []int32
}

func (q *tmPQ) Len() int           { return len(q.items) }
func (q *tmPQ) Less(i, j int) bool { return q.items[i].dist < q.items[j].dist }
func (q *tmPQ) Push(x interface{}) {
	it := x.(tmItem)
	q.pos[it.node] = int32(len(q.items))
	q.items = append(q.items, it)
}
func (q *tmPQ) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].node] = int32(i)
	q.pos[q.items[j].node] = int32(j)
}
func (q *tmPQ) Pop() interface{} {
	it := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	q.pos[it.node] = -1
	return it
}
