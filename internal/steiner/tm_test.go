package steiner

import (
	"math"
	"math/rand"
	"testing"

	"sof/internal/graph"
)

func TestTMTrivial(t *testing.T) {
	g := gridGraph(3, 3)
	tr, err := TakahashiMatsuyama(g, nil)
	if err != nil || len(tr.Nodes) != 0 {
		t.Fatalf("empty: %v %+v", err, tr)
	}
	tr, err = TakahashiMatsuyama(g, []graph.NodeID{4})
	if err != nil || len(tr.Nodes) != 1 || tr.Cost != 0 {
		t.Fatalf("single: %v %+v", err, tr)
	}
}

func TestTMPath(t *testing.T) {
	g := gridGraph(1, 6)
	terms := []graph.NodeID{0, 5}
	tr, err := TakahashiMatsuyama(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Cost-5) > 1e-9 {
		t.Fatalf("cost = %v, want 5", tr.Cost)
	}
	if err := Verify(g, tr, terms); err != nil {
		t.Fatal(err)
	}
}

func TestTMWithinRhoOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomConnected(graph.RandomConfig{
			Nodes: 22, ExtraEdges: 30, VMFraction: 0.3, MaxEdge: 9, MaxSetup: 4,
		}, seed)
		pool := make([]graph.NodeID, g.NumNodes())
		for i := range pool {
			pool[i] = graph.NodeID(i)
		}
		terms := graph.SampleDistinct(rng, pool, 2+rng.Intn(4))
		tm, err := TakahashiMatsuyama(g, terms)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Verify(g, tm, terms); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := Exact(g, terms)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tm.Cost < ex.Cost-1e-9 || tm.Cost > 2*ex.Cost+1e-9 {
			t.Fatalf("seed %d: TM %v vs exact %v outside [1,2]x", seed, tm.Cost, ex.Cost)
		}
	}
}

func TestTMDisconnected(t *testing.T) {
	g := gridGraph(1, 3)
	extra := g.AddSwitch("island")
	if _, err := TakahashiMatsuyama(g, []graph.NodeID{0, extra}); err == nil {
		t.Fatal("disconnected accepted")
	}
}
