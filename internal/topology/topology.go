// Package topology provides the evaluation networks of Section VIII: the
// IBM SoftLayer inter-data-center network (27 access nodes, 49 links, 17
// data centers), the Cogent backbone (190 access nodes, 260 links, 40 data
// centers), an Inet-style power-law synthetic generator (used at 5000
// nodes, 10000 links, 2000 data centers), and the 14-node/20-link
// experimental SDN testbed of Figure 13.
//
// The paper references the public SoftLayer and Cogent maps [58][59]
// without reproducing them; these topologies are deterministic
// reconstructions that match the paper's exact node/link/data-center
// counts and the general continental structure (see DESIGN.md §3).
package topology

import (
	"fmt"
	"math/rand"

	"sof/internal/costmodel"
	"sof/internal/graph"
)

// Network is an evaluation topology: the graph plus the roles of its nodes.
type Network struct {
	G *graph.Graph
	// Access are the backbone switch nodes.
	Access []graph.NodeID
	// DataCenters is the subset of Access hosting data centers.
	DataCenters []graph.NodeID
	// VMs are the VM nodes attached to data centers.
	VMs []graph.NodeID
}

// Config controls VM placement and cost initialization.
type Config struct {
	// NumVMs is the number of VM nodes to attach to random data centers
	// (the paper sweeps {5, 15, 25, 35, 45}; default 25).
	NumVMs int
	// Seed drives all randomness (VM placement, initial loads).
	Seed int64
	// SetupCostMultiplier scales VM setup costs (Figure 11 sweeps 1x–9x;
	// default 1).
	SetupCostMultiplier float64
	// EdgeCostScale and SetupCostScale calibrate the absolute cost
	// magnitudes so that totals land in the paper's reported range
	// (Fig. 8: roughly 180–430 on SoftLayer with the default request).
	// Defaults: 10 and 5.
	EdgeCostScale  float64
	SetupCostScale float64
}

func (c Config) normalized() Config {
	if c.NumVMs == 0 {
		c.NumVMs = 25
	}
	if c.SetupCostMultiplier == 0 {
		c.SetupCostMultiplier = 1
	}
	if c.EdgeCostScale == 0 {
		c.EdgeCostScale = 10
	}
	if c.SetupCostScale == 0 {
		c.SetupCostScale = 5
	}
	return c
}

// build attaches VMs to data centers and assigns load-derived costs
// (Section VIII-A: link usage uniform in (0,1) priced by the Fortz–Thorup
// function; VM setup costs priced by host utilization).
func build(g *graph.Graph, access, dcs []graph.NodeID, cfg Config) *Network {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := &Network{G: g, Access: access, DataCenters: dcs}
	for i := 0; i < cfg.NumVMs; i++ {
		dc := dcs[rng.Intn(len(dcs))]
		hostUtil := rng.Float64()
		vm := g.AddVM(fmt.Sprintf("vm%d@%s", i, g.Node(dc).Name),
			costmodel.Cost(hostUtil, 1)*cfg.SetupCostScale*cfg.SetupCostMultiplier)
		// The VM sits inside the data center; its attachment link is
		// priced like any other link from its (low) initial utilization.
		g.MustAddEdge(dc, vm, costmodel.Cost(rng.Float64()*0.2, 1)*cfg.EdgeCostScale)
		net.VMs = append(net.VMs, vm)
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if g.IsVM(ed.U) || g.IsVM(ed.V) {
			continue // attachment links already priced
		}
		g.SetEdgeCost(graph.EdgeID(e), costmodel.Cost(rng.Float64(), 1)*cfg.EdgeCostScale)
	}
	return net
}

// RandomNodes draws n distinct access nodes (for sources/destinations).
func (n *Network) RandomNodes(rng *rand.Rand, count int) []graph.NodeID {
	return graph.SampleDistinct(rng, n.Access, count)
}

// softLayerSites are the 27 access nodes; starred entries host the 17 data
// centers (SoftLayer's public map, circa 2016).
var softLayerSites = []struct {
	name string
	dc   bool
}{
	{"sea", true}, {"sjc", true}, {"lax", false}, {"den", false},
	{"dal", true}, {"hou", true}, {"chi", false}, {"stl", false},
	{"atl", false}, {"mia", false}, {"wdc", true}, {"nyc", false},
	{"bos", false}, {"tor", true}, {"mon", true}, {"lon", true},
	{"ams", true}, {"fra", true}, {"par", true}, {"tok", true},
	{"osa", false}, {"hkg", true}, {"sng", true}, {"syd", true},
	{"mel", true}, {"sao", true}, {"mex", false},
}

// softLayerLinks are the 49 backbone links.
var softLayerLinks = [][2]string{
	// North America.
	{"sea", "sjc"}, {"sea", "den"}, {"sea", "chi"}, {"sjc", "lax"},
	{"sjc", "den"}, {"lax", "dal"}, {"den", "dal"}, {"den", "chi"},
	{"dal", "hou"}, {"dal", "stl"}, {"dal", "atl"}, {"hou", "atl"},
	{"hou", "mia"}, {"chi", "stl"}, {"chi", "nyc"}, {"chi", "tor"},
	{"stl", "atl"}, {"atl", "mia"}, {"atl", "wdc"}, {"mia", "wdc"},
	{"wdc", "nyc"}, {"nyc", "bos"}, {"bos", "mon"}, {"tor", "mon"},
	{"tor", "nyc"}, {"lax", "hou"},
	// Transatlantic.
	{"nyc", "lon"}, {"wdc", "ams"}, {"mon", "par"},
	// Europe.
	{"lon", "ams"}, {"lon", "par"}, {"ams", "fra"}, {"fra", "par"},
	{"lon", "fra"},
	// Transpacific.
	{"sea", "tok"}, {"sjc", "tok"}, {"lax", "hkg"},
	// Asia-Pacific.
	{"tok", "osa"}, {"osa", "hkg"}, {"hkg", "sng"}, {"tok", "hkg"},
	{"sng", "syd"}, {"syd", "mel"}, {"tok", "syd"},
	// Latin America.
	{"mia", "sao"}, {"dal", "mex"}, {"hou", "mex"}, {"mex", "sao"},
	// Europe–Asia.
	{"fra", "sng"},
}

// SoftLayer builds the IBM SoftLayer network: 27 access nodes, 49 links,
// 17 data centers.
func SoftLayer(cfg Config) *Network {
	g := graph.New(27+cfg.NumVMs, 49+cfg.NumVMs)
	ids := make(map[string]graph.NodeID, len(softLayerSites))
	var access, dcs []graph.NodeID
	for _, s := range softLayerSites {
		id := g.AddSwitch(s.name)
		ids[s.name] = id
		access = append(access, id)
		if s.dc {
			dcs = append(dcs, id)
		}
	}
	for _, l := range softLayerLinks {
		g.MustAddEdge(ids[l[0]], ids[l[1]], 1)
	}
	return build(g, access, dcs, cfg)
}

// Cogent builds the Cogent backbone: 190 access nodes, 260 links, 40 data
// centers. 40 hub cities form a ring with chords; each hub serves a small
// access cluster. Structure is deterministic; only costs and VM placement
// depend on cfg.Seed.
func Cogent(cfg Config) *Network {
	const (
		hubs      = 40
		accessPer = 150 // total non-hub access nodes
	)
	g := graph.New(190+cfg.NumVMs, 260+cfg.NumVMs)
	var access, dcs []graph.NodeID
	hubIDs := make([]graph.NodeID, hubs)
	for i := 0; i < hubs; i++ {
		id := g.AddSwitch(fmt.Sprintf("hub%02d", i))
		hubIDs[i] = id
		access = append(access, id)
		dcs = append(dcs, id)
	}
	// Hub ring (40 links) + 8 long-haul chords: the Cogent backbone is
	// geographically stretched, so the ring dominates and inter-region
	// distances are long.
	for i := 0; i < hubs; i++ {
		g.MustAddEdge(hubIDs[i], hubIDs[(i+1)%hubs], 1)
	}
	structRNG := rand.New(rand.NewSource(42)) // fixed: topology is static
	chords := 0
	for chords < 8 {
		a := structRNG.Intn(hubs)
		b := (a + hubs/4 + structRNG.Intn(hubs/2)) % hubs
		if a == b || g.FindEdge(hubIDs[a], hubIDs[b]) != graph.NoEdge {
			continue
		}
		g.MustAddEdge(hubIDs[a], hubIDs[b], 1)
		chords++
	}
	// Access clusters: 150 nodes, each linked to its hub (150 links), plus
	// 62 cross links between access nodes of the same or adjacent regions
	// (metro rings).
	accNodes := make([]graph.NodeID, 0, accessPer)
	for i := 0; i < accessPer; i++ {
		hub := i % hubs
		id := g.AddSwitch(fmt.Sprintf("acc%03d@hub%02d", i, hub))
		accNodes = append(accNodes, id)
		access = append(access, id)
		g.MustAddEdge(hubIDs[hub], id, 1)
	}
	cross := 0
	for cross < 62 {
		i := structRNG.Intn(accessPer)
		// Partner within the same or a neighbouring region to keep the
		// backbone geographically long.
		j := (i + hubs*structRNG.Intn(2) + 1) % accessPer
		if i == j || g.FindEdge(accNodes[i], accNodes[j]) != graph.NoEdge {
			continue
		}
		g.MustAddEdge(accNodes[i], accNodes[j], 1)
		cross++
	}
	return build(g, access, dcs, cfg)
}

// Inet builds a synthetic power-law topology in the style of the Inet
// generator [60]: a random spanning tree plus degree-proportional
// (preferential) chords. The paper uses nodes=5000, links=10000, dcs=2000.
func Inet(nodes, links, numDCs int, cfg Config) (*Network, error) {
	if nodes < 2 || links < nodes-1 || numDCs > nodes {
		return nil, fmt.Errorf("topology: bad Inet parameters (%d nodes, %d links, %d DCs)", nodes, links, numDCs)
	}
	g := graph.New(nodes+cfg.NumVMs, links+cfg.NumVMs)
	structRNG := rand.New(rand.NewSource(cfg.Seed ^ 0x1e7))
	access := make([]graph.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		access[i] = g.AddSwitch(fmt.Sprintf("n%d", i))
	}
	degree := make([]int, nodes)
	// Spanning tree with preferential attachment: node i connects to an
	// earlier node chosen proportionally to degree+1, producing the
	// heavy-tailed degrees Inet targets.
	totalWeight := 1
	for i := 1; i < nodes; i++ {
		pick := structRNG.Intn(totalWeight)
		j := 0
		acc := 0
		for k := 0; k < i; k++ {
			acc += degree[k] + 1
			if pick < acc {
				j = k
				break
			}
		}
		g.MustAddEdge(access[i], access[j], 1)
		degree[i]++
		degree[j]++
		totalWeight += 3 // new node weight 1 + two degree increments
	}
	for g.NumEdges() < links {
		a := structRNG.Intn(nodes)
		// Preferential endpoint.
		pick := structRNG.Intn(2*g.NumEdges() + nodes)
		b := 0
		acc := 0
		for k := 0; k < nodes; k++ {
			acc += degree[k] + 1
			if pick < acc {
				b = k
				break
			}
		}
		if a == b || g.FindEdge(access[a], access[b]) != graph.NoEdge {
			continue
		}
		g.MustAddEdge(access[a], access[b], 1)
		degree[a]++
		degree[b]++
	}
	// Data centers at the best-connected nodes (Inet places infrastructure
	// at high-degree ASes).
	type nd struct {
		id  graph.NodeID
		deg int
	}
	byDeg := make([]nd, nodes)
	for i := range byDeg {
		byDeg[i] = nd{id: access[i], deg: degree[i]}
	}
	for i := 1; i < len(byDeg); i++ { // insertion sort by degree desc, stable
		for j := i; j > 0 && byDeg[j].deg > byDeg[j-1].deg; j-- {
			byDeg[j], byDeg[j-1] = byDeg[j-1], byDeg[j]
		}
	}
	dcs := make([]graph.NodeID, numDCs)
	for i := 0; i < numDCs; i++ {
		dcs[i] = byDeg[i].id
	}
	return build(g, access, dcs, cfg), nil
}

// testbedLinks is the 14-node/20-link experimental SDN of Figure 13
// (reconstructed: the published figure shows a two-tier mesh).
var testbedLinks = [][2]int{
	{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 4}, {2, 5}, {3, 5}, {3, 6},
	{4, 7}, {4, 8}, {5, 8}, {5, 9}, {6, 9}, {7, 10}, {8, 10}, {8, 11},
	{9, 11}, {10, 12}, {11, 13}, {12, 13},
}

// Testbed builds the Figure-13 experimental SDN: 14 nodes, 20 links.
// Per Section VIII-D every node can host one VNF, so each node gets one
// attached VM (setup cost 1).
func Testbed(cfg Config) *Network {
	g := graph.New(28, 34)
	var access []graph.NodeID
	for i := 0; i < 14; i++ {
		access = append(access, g.AddSwitch(fmt.Sprintf("sw%d", i)))
	}
	for _, l := range testbedLinks {
		g.MustAddEdge(access[l[0]], access[l[1]], 1)
	}
	net := &Network{G: g, Access: access, DataCenters: access}
	for i, a := range access {
		vm := g.AddVM(fmt.Sprintf("vm%d", i), 1)
		g.MustAddEdge(a, vm, 0.1)
		net.VMs = append(net.VMs, vm)
	}
	return net
}
