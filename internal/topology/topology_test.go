package topology

import (
	"math/rand"
	"testing"

	"sof/internal/core"
	"sof/internal/graph"
)

func TestSoftLayerCounts(t *testing.T) {
	net := SoftLayer(Config{NumVMs: 25, Seed: 1})
	if got := len(net.Access); got != 27 {
		t.Errorf("access nodes = %d, want 27", got)
	}
	if got := len(net.DataCenters); got != 17 {
		t.Errorf("data centers = %d, want 17", got)
	}
	if got := len(net.VMs); got != 25 {
		t.Errorf("VMs = %d, want 25", got)
	}
	// 49 backbone links + 25 VM attachments.
	if got := net.G.NumEdges(); got != 49+25 {
		t.Errorf("edges = %d, want 74", got)
	}
	if !net.G.Connected() {
		t.Error("SoftLayer not connected")
	}
	if err := net.G.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCogentCounts(t *testing.T) {
	net := Cogent(Config{NumVMs: 25, Seed: 2})
	if got := len(net.Access); got != 190 {
		t.Errorf("access nodes = %d, want 190", got)
	}
	if got := len(net.DataCenters); got != 40 {
		t.Errorf("data centers = %d, want 40", got)
	}
	if got := net.G.NumEdges(); got != 260+25 {
		t.Errorf("edges = %d, want 285", got)
	}
	if !net.G.Connected() {
		t.Error("Cogent not connected")
	}
	if err := net.G.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCogentStructureIsSeedIndependent(t *testing.T) {
	a := Cogent(Config{NumVMs: 5, Seed: 1})
	b := Cogent(Config{NumVMs: 5, Seed: 99})
	// Same backbone edges regardless of seed (only costs/VMs differ).
	for e := 0; e < 260; e++ {
		ea, eb := a.G.Edge(graph.EdgeID(e)), b.G.Edge(graph.EdgeID(e))
		if ea.U != eb.U || ea.V != eb.V {
			t.Fatalf("edge %d differs between seeds: %v vs %v", e, ea, eb)
		}
	}
}

func TestInetCounts(t *testing.T) {
	net, err := Inet(500, 1000, 200, Config{NumVMs: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.Access); got != 500 {
		t.Errorf("access = %d, want 500", got)
	}
	if got := net.G.NumEdges(); got != 1000+15 {
		t.Errorf("edges = %d, want 1015", got)
	}
	if got := len(net.DataCenters); got != 200 {
		t.Errorf("DCs = %d, want 200", got)
	}
	if !net.G.Connected() {
		t.Error("Inet not connected")
	}
	if err := net.G.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInetHeavyTailedDegrees(t *testing.T) {
	net, err := Inet(800, 1600, 100, Config{NumVMs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for _, a := range net.Access {
		if d := net.G.Degree(a); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2.0 * 1600 / 800
	if float64(maxDeg) < 5*avg {
		t.Errorf("max degree %d not heavy-tailed (avg %.1f)", maxDeg, avg)
	}
}

func TestInetBadParams(t *testing.T) {
	if _, err := Inet(10, 5, 3, Config{}); err == nil {
		t.Error("links < nodes-1 accepted")
	}
	if _, err := Inet(10, 20, 50, Config{}); err == nil {
		t.Error("more DCs than nodes accepted")
	}
}

func TestTestbedCounts(t *testing.T) {
	net := Testbed(Config{})
	if got := len(net.Access); got != 14 {
		t.Errorf("nodes = %d, want 14", got)
	}
	if got := net.G.NumEdges(); got != 20+14 {
		t.Errorf("edges = %d, want 34", got)
	}
	if got := len(net.VMs); got != 14 {
		t.Errorf("VMs = %d, want 14", got)
	}
	if !net.G.Connected() {
		t.Error("testbed not connected")
	}
}

func TestSetupCostMultiplier(t *testing.T) {
	base := SoftLayer(Config{NumVMs: 10, Seed: 5})
	scaled := SoftLayer(Config{NumVMs: 10, Seed: 5, SetupCostMultiplier: 3})
	for i := range base.VMs {
		b := base.G.NodeCost(base.VMs[i])
		s := scaled.G.NodeCost(scaled.VMs[i])
		if b > 0 && (s/b < 2.99 || s/b > 3.01) {
			t.Fatalf("VM %d: multiplier not applied (%v vs %v)", i, b, s)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := SoftLayer(Config{NumVMs: 10, Seed: 9})
	b := SoftLayer(Config{NumVMs: 10, Seed: 9})
	for e := 0; e < a.G.NumEdges(); e++ {
		if a.G.EdgeCost(graph.EdgeID(e)) != b.G.EdgeCost(graph.EdgeID(e)) {
			t.Fatal("same seed produced different costs")
		}
	}
}

// TestEmbeddingOnSoftLayer runs SOFDA end-to-end on the real topology as an
// integration smoke test.
func TestEmbeddingOnSoftLayer(t *testing.T) {
	net := SoftLayer(Config{NumVMs: 25, Seed: 11})
	rng := rand.New(rand.NewSource(11))
	srcs := net.RandomNodes(rng, 4)
	dsts := net.RandomNodes(rng, 6)
	req := core.Request{Sources: srcs, Dests: dsts, ChainLen: 3}
	f, err := core.SOFDA(net.G, req, &core.Options{VMs: net.VMs})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(srcs, dsts); err != nil {
		t.Fatal(err)
	}
	if f.TotalCost() <= 0 {
		t.Error("non-positive cost")
	}
}
