package sof

// Capacitated lifecycle sessions: a Solver built WithCapacity tracks the
// load every accepted embedding places on links and VM slots, enforces the
// capacities, and releases the load when the service departs — explicitly
// (Leave) or by TTL expiry against the session's virtual clock
// (AdvanceTime). Each accepted embed owns a lease recording its resource
// footprint; the lease is the unit of release, so load conservation is an
// invariant: at any instant every tracker's load equals the sum of the
// live leases' demands.
//
// Enforcement reaches the embedding algorithms through the graph's
// capacity-mask layer: the moment a link or VM slot has no headroom for one
// more request, the session masks it and every traversal prices it as
// unusable — exactly how failed elements are excluded, except that masked
// elements are full, not broken, so forests already crossing them keep
// serving and no repair fires. The authoritative check is still the
// two-phase reservation under the session lock (a forest may cross one
// edge several times and overshoot the mask threshold): a footprint that
// does not fit is rejected with ErrCapacityExceeded and no state changes.
//
// Admission control composes: the static WithAdmissionThreshold hook runs
// first, then WithAdaptiveAdmission — Lukovszki & Schmid's competitive
// online rule, a threshold exponential in current utilization — then the
// capacity reservation.

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"sof/internal/costmodel"
	"sof/internal/graph"
)

// ErrCapacityExceeded is returned by Embed on a capacitated session when
// the computed forest's footprint does not fit the remaining link or VM
// capacity. Distinguish it from infeasibility ("no route exists") and
// admission rejection ("a route exists but is too expensive") with
// errors.Is.
var ErrCapacityExceeded = costmodel.ErrCapacityExceeded

// ErrNotCapacitated is returned by lifecycle calls (Leave, AdvanceTime) on
// sessions built without WithCapacity.
var ErrNotCapacitated = errors.New("sof: session has no capacity tracking (build the Solver WithCapacity)")

// ErrUnknownLease is returned by Leave for a lease id the session does not
// hold (never issued, already departed, or already expired).
var ErrUnknownLease = errors.New("sof: unknown lease")

// LeaseID identifies one accepted embedding's resource reservation. The
// zero id is never issued.
type LeaseID int64

// leaseState is the exactly-once release state machine. A lease releases
// its load exactly once no matter how departure, TTL expiry, and repair
// suspension interleave: suspension moves active→suspended (load off the
// trackers while the forest is reshaped), resumption moves it back, and
// any path to ended — Leave, expiry — releases only from active, because a
// suspended lease's load is already off the books.
type leaseState int

const (
	leaseActive leaseState = iota
	leaseSuspended
	leaseEnded
)

// lease records one accepted embedding's resource footprint as last
// applied to the trackers: Edges with multiplicity (each crossing carries
// demand), VMs once each (one slot per forest per VM).
type lease struct {
	id     LeaseID
	forest *Forest
	demand float64
	// expiry is the virtual time at which the lease lapses; 0 means it
	// never expires on its own.
	expiry int64
	state  leaseState
	edges  []graph.EdgeID
	vms    []graph.NodeID
	// heapIdx is the lease's position in the expiry heap, -1 when not
	// queued (no TTL, or already popped).
	heapIdx int
}

// leaseHeap is a min-heap on (expiry, id); only TTL-bearing leases enter.
type leaseHeap []*lease

func (h leaseHeap) Len() int { return len(h) }
func (h leaseHeap) Less(i, j int) bool {
	if h[i].expiry != h[j].expiry {
		return h[i].expiry < h[j].expiry
	}
	return h[i].id < h[j].id
}
func (h leaseHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *leaseHeap) Push(x any) {
	l := x.(*lease)
	l.heapIdx = len(*h)
	*h = append(*h, l)
}
func (h *leaseHeap) Pop() any {
	old := *h
	n := len(old)
	l := old[n-1]
	old[n-1] = nil
	l.heapIdx = -1
	*h = old[:n-1]
	return l
}

// capacityState is the session's load ledger. mu serializes every
// reservation, release, and clock advance; the graph's mask layer is
// updated inside the same critical section so the mask can never disagree
// with the headroom it advertises.
type capacityState struct {
	mu      sync.Mutex
	links   *costmodel.Tracker // indexed by EdgeID
	vmSlots *costmodel.Tracker // indexed by NodeID; only VM nodes carry load
	demand  float64            // per-link-crossing demand of one request
	leases  map[LeaseID]*lease
	nextID  LeaseID
	expiry  leaseHeap
	now     int64

	adaptive    bool
	admitMu     float64
	admitBudget float64

	// accumulated is the session's total revenue — the destination count of
	// every accepted request (Lukovszki & Schmid's benefit model). It only
	// grows; departures do not refund it.
	accumulated float64
}

// WithCapacity turns the session into a capacitated lifecycle session:
// every link holds linkCap units of demand, every VM vmCap concurrent
// forests, and each accepted embed reserves its footprint under a lease
// until Leave or TTL expiry. Saturated elements are capacity-masked on the
// network, so subsequent embeds route around them; embeds whose footprint
// cannot fit fail with ErrCapacityExceeded.
func WithCapacity(linkCap, vmCap float64) Option {
	return func(s *Solver) {
		g := s.net.g
		cs := &capacityState{
			links:   costmodel.NewTracker(g.NumEdges(), linkCap),
			vmSlots: costmodel.NewTracker(g.NumNodes(), vmCap),
			demand:  1,
			leases:  make(map[LeaseID]*lease),
		}
		if s.capacity != nil { // preserve WithDemand/WithAdaptiveAdmission given first
			cs.demand = s.capacity.demand
			cs.adaptive = s.capacity.adaptive
			cs.admitMu = s.capacity.admitMu
			cs.admitBudget = s.capacity.admitBudget
		}
		s.capacity = cs
	}
}

// WithDemand sets the bandwidth demand one request places on every link
// its forest crosses (1 when not given). Applies to capacitated sessions.
func WithDemand(d float64) Option {
	return func(s *Solver) {
		if d <= 0 {
			d = 1
		}
		s.ensureCapacity().demand = d
	}
}

// WithAdaptiveAdmission replaces the static admission constant with
// Lukovszki & Schmid's competitive online rule: a request is admitted only
// if the utilization-exponential price of its footprint,
//
//	Σ_{r ∈ footprint} (mu^{u(r)} − 1),
//
// with u(r) the resource's current utilization, stays within budget ×
// |Destinations| (the request's revenue — each destination is one unit of
// benefit). Near-empty resources price at ~0 and saturated ones
// exponentially high, so the threshold adapts to load where a constant
// either over-admits under congestion or starves an empty network.
// mu <= 1 selects the default 16, budget <= 0 the default 1. Requires a
// capacitated session to have utilizations to price; it implies
// WithCapacity's state but not its capacities, so combine the two options.
func WithAdaptiveAdmission(mu, budget float64) Option {
	return func(s *Solver) {
		cs := s.ensureCapacity()
		cs.adaptive = true
		if mu <= 1 {
			mu = 16
		}
		if budget <= 0 {
			budget = 1
		}
		cs.admitMu = mu
		cs.admitBudget = budget
	}
}

// ensureCapacity returns the session's capacity state, building a default
// one (infinite capacities until WithCapacity overrides them) so option
// order does not matter.
func (s *Solver) ensureCapacity() *capacityState {
	if s.capacity == nil {
		g := s.net.g
		s.capacity = &capacityState{
			links:   costmodel.NewTracker(g.NumEdges(), math.Inf(1)),
			vmSlots: costmodel.NewTracker(g.NumNodes(), math.Inf(1)),
			demand:  1,
			leases:  make(map[LeaseID]*lease),
		}
	}
	return s.capacity
}

// Capacitated reports whether the session tracks load under leases.
func (s *Solver) Capacitated() bool { return s.capacity != nil }

// aggregateDemand folds a footprint's edge list (with multiplicity) into
// per-edge demand.
func aggregateDemand(edges []graph.EdgeID, demand float64) map[graph.EdgeID]float64 {
	need := make(map[graph.EdgeID]float64, len(edges))
	for _, e := range edges {
		need[e] += demand
	}
	return need
}

// admitAndLease prices, reserves, and leases a freshly embedded forest.
// Called from embed after the algorithm and the static admission hook have
// both passed. On any error the trackers, masks, and lease table are
// exactly as before the call.
func (s *Solver) admitAndLease(out *Forest, req Request) error {
	cs := s.capacity
	fp := out.f.Footprint()
	need := aggregateDemand(fp.Edges, cs.demand)

	cs.mu.Lock()
	defer cs.mu.Unlock()

	if cs.adaptive {
		price := 0.0
		for e := range need {
			price += math.Pow(cs.admitMu, cs.links.Utilization(int(e))) - 1
		}
		for _, v := range fp.VMs {
			price += math.Pow(cs.admitMu, cs.vmSlots.Utilization(int(v))) - 1
		}
		if revenue := float64(len(req.Destinations)); price > cs.admitBudget*revenue {
			return fmt.Errorf("%w (utilization price %.3f > budget %.3f)",
				ErrAdmissionRejected, price, cs.admitBudget*revenue)
		}
	}

	// Two-phase reservation: validate the whole footprint, then apply.
	// Nothing is written before everything fits, so failure needs no
	// rollback.
	for e, d := range need {
		if !cs.links.Fits(int(e), d) {
			return fmt.Errorf("link %d: %w", e, ErrCapacityExceeded)
		}
	}
	for _, v := range fp.VMs {
		if !cs.vmSlots.Fits(int(v), 1) {
			return fmt.Errorf("vm %d: %w", v, ErrCapacityExceeded)
		}
	}
	cs.apply(s.net.g, need, fp.VMs)

	cs.nextID++
	l := &lease{
		id:      cs.nextID,
		forest:  out,
		demand:  cs.demand,
		edges:   fp.Edges,
		vms:     fp.VMs,
		heapIdx: -1,
	}
	if req.TTL > 0 {
		l.expiry = cs.now + req.TTL
		heap.Push(&cs.expiry, l)
	}
	cs.leases[l.id] = l
	cs.accumulated += float64(len(req.Destinations))
	out.lease = l.id
	return nil
}

// apply adds a footprint's demand to the trackers and masks whatever
// saturates. Callers hold cs.mu.
func (cs *capacityState) apply(g *graph.Graph, need map[graph.EdgeID]float64, vms []graph.NodeID) {
	for e, d := range need {
		cs.links.Add(int(e), d)
		if cs.links.Saturated(int(e), cs.demand) {
			g.MaskEdge(e)
		}
	}
	for _, v := range vms {
		cs.vmSlots.Add(int(v), 1)
		if cs.vmSlots.Saturated(int(v), 1) {
			g.MaskNode(v)
		}
	}
}

// release removes a lease's footprint from the trackers and unmasks
// whatever regained headroom. Callers hold cs.mu. Tracker underflow — the
// session's books drifting from the lease's — is propagated, never
// swallowed: every error is joined so one bad edge does not hide another,
// and the remaining releases still run (leaving load behind on purpose
// would compound the drift).
func (cs *capacityState) release(g *graph.Graph, l *lease) error {
	var errs []error
	need := aggregateDemand(l.edges, l.demand)
	edges := make([]graph.EdgeID, 0, len(need))
	for e := range need {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	for _, e := range edges {
		if err := cs.links.Remove(int(e), need[e]); err != nil {
			errs = append(errs, err)
		}
		if !cs.links.Saturated(int(e), cs.demand) {
			g.UnmaskEdge(e)
		}
	}
	for _, v := range l.vms {
		if err := cs.vmSlots.Remove(int(v), 1); err != nil {
			errs = append(errs, err)
		}
		if !cs.vmSlots.Saturated(int(v), 1) {
			g.UnmaskNode(v)
		}
	}
	return errors.Join(errs...)
}

// endLocked finishes a lease: releases its load if it still holds any,
// marks it ended, and drops it from the table. Callers hold cs.mu and are
// responsible for unregistering the forest outside the lock.
func (cs *capacityState) endLocked(g *graph.Graph, l *lease) error {
	var err error
	if l.state == leaseActive {
		err = cs.release(g, l)
	}
	l.state = leaseEnded
	delete(cs.leases, l.id)
	if l.heapIdx >= 0 {
		heap.Remove(&cs.expiry, l.heapIdx)
	}
	return err
}

// Leave departs the service holding lease id: its load is released, its
// saturated elements regain headroom, and its forest leaves the recovery
// registry. Departing mid-repair is safe — a suspended lease's load is
// already off the trackers and is not released twice. Returns
// ErrUnknownLease for ids the session does not hold and ErrNotCapacitated
// on sessions without capacity tracking.
func (s *Solver) Leave(id LeaseID) error {
	cs := s.capacity
	if cs == nil {
		return ErrNotCapacitated
	}
	cs.mu.Lock()
	l, ok := cs.leases[id]
	if !ok {
		cs.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	err := cs.endLocked(s.net.g, l)
	cs.mu.Unlock()
	l.forest.Release()
	return err
}

// AdvanceTime moves the session's virtual clock to now (monotone: an
// earlier value only reads the clock) and expires every lease whose TTL
// has lapsed, releasing its load and unregistering its forest exactly as
// Leave would. The expired lease ids are returned in expiry order. Online
// simulators drive this once per arrival step.
func (s *Solver) AdvanceTime(now int64) ([]LeaseID, error) {
	cs := s.capacity
	if cs == nil {
		return nil, ErrNotCapacitated
	}
	cs.mu.Lock()
	if now > cs.now {
		cs.now = now
	}
	var (
		expired []LeaseID
		forests []*Forest
		errs    []error
	)
	for cs.expiry.Len() > 0 && cs.expiry[0].expiry <= cs.now {
		l := heap.Pop(&cs.expiry).(*lease)
		expired = append(expired, l.id)
		forests = append(forests, l.forest)
		if err := cs.endLocked(s.net.g, l); err != nil {
			errs = append(errs, fmt.Errorf("lease %d: %w", l.id, err))
		}
	}
	cs.mu.Unlock()
	for _, f := range forests {
		f.Release()
	}
	return expired, errors.Join(errs...)
}

// Now returns the session's virtual clock (0 on non-capacitated sessions).
func (s *Solver) Now() int64 {
	cs := s.capacity
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.now
}

// Accumulated returns the session's total revenue: the summed destination
// count of every accepted request. Monotone — departures do not refund it.
func (s *Solver) Accumulated() float64 {
	cs := s.capacity
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.accumulated
}

// LinkLoad returns the demand currently reserved on link e (0 on
// non-capacitated sessions).
func (s *Solver) LinkLoad(e EdgeID) float64 {
	cs := s.capacity
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.links.Load(int(e))
}

// VMLoad returns the number of forests currently holding a slot on VM v.
func (s *Solver) VMLoad(v NodeID) float64 {
	cs := s.capacity
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.vmSlots.Load(int(v))
}

// LeaseInfo is a read-only snapshot of one live lease: its footprint as
// currently charged to the trackers (edges with multiplicity — each
// crossing carries Demand) and its expiry (0 = no TTL). Suspended leases
// (mid-repair) are excluded: their load is off the trackers.
type LeaseInfo struct {
	ID     LeaseID
	Expiry int64
	Demand float64
	Edges  []EdgeID
	VMs    []NodeID
}

// Leases snapshots the session's live leases in id order. The conservation
// invariant — for every link, LinkLoad equals the summed demand of these
// footprints (and likewise per VM) — is what the lifecycle property tests
// verify after arbitrary embed/depart/fail/repair interleavings.
func (s *Solver) Leases() []LeaseInfo {
	cs := s.capacity
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]LeaseInfo, 0, len(cs.leases))
	for _, l := range cs.leases {
		if l.state != leaseActive {
			continue
		}
		out = append(out, LeaseInfo{
			ID:     l.id,
			Expiry: l.expiry,
			Demand: l.demand,
			Edges:  append([]EdgeID(nil), l.edges...),
			VMs:    append([]NodeID(nil), l.vms...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lease returns the forest's lease id, false when the forest holds none
// (non-capacitated session, or the lease already ended).
func (f *Forest) Lease() (LeaseID, bool) {
	if f.lease == 0 || f.owner == nil || f.owner.capacity == nil {
		return 0, false
	}
	cs := f.owner.capacity
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.leases[f.lease]; !ok {
		return 0, false
	}
	return f.lease, true
}

// suspendLease takes the forest's load off the trackers while a repair
// reshapes it, so the repair's own route search sees the network without
// this forest's footprint pinning masks. Reports whether a lease was
// suspended (false: none, not capacitated, or already suspended/ended —
// the exactly-once guard).
func (s *Solver) suspendLease(f *Forest) (bool, error) {
	cs := s.capacity
	if cs == nil || f.lease == 0 {
		return false, nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	l, ok := cs.leases[f.lease]
	if !ok || l.state != leaseActive {
		return false, nil
	}
	err := cs.release(s.net.g, l)
	l.state = leaseSuspended
	return true, err
}

// resumeLease re-applies a suspended lease for whatever shape the forest
// has now — repaired routes are charged like any other traffic. The
// re-apply is unconditional (Add, not Reserve): a repaired forest keeps
// serving even where the detour overshoots capacity; the overshoot is
// masked so no new embed piles on. A lease ended mid-repair (the forest
// departed) is left alone.
func (s *Solver) resumeLease(f *Forest) {
	cs := s.capacity
	if cs == nil || f.lease == 0 {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	l, ok := cs.leases[f.lease]
	if !ok || l.state != leaseSuspended {
		return
	}
	fp := f.f.Footprint()
	l.edges, l.vms = fp.Edges, fp.VMs
	cs.apply(s.net.g, aggregateDemand(fp.Edges, l.demand), fp.VMs)
	l.state = leaseActive
}

// Reprice writes load-dependent costs back to the network: every link's
// connection cost becomes the Fortz–Thorup marginal cost of one more
// request's demand at its current load, every VM's setup cost the marginal
// cost of one more slot. Epoch semantics are SetLinkCost's — unchanged
// values are no-ops, so repricing an idle session keeps caches warm. The
// online simulator calls this once per step; explicit rather than implicit
// per-embed, because a repricing pass invalidates the session's warm
// shortest-path state and the caller owns that trade-off.
func (s *Solver) Reprice() {
	cs := s.capacity
	if cs == nil {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	g := s.net.g
	for e := 0; e < g.NumEdges(); e++ {
		g.SetEdgeCost(graph.EdgeID(e), costmodel.MarginalCost(cs.links.Load(e), cs.demand, cs.links.Capacity(e)))
	}
	for _, v := range g.VMs() {
		g.SetNodeCost(v, costmodel.MarginalCost(cs.vmSlots.Load(int(v)), 1, cs.vmSlots.Capacity(int(v))))
	}
}
