package sof

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

// conservationError checks the lifecycle invariant: for every link and VM,
// the tracker load equals the summed demand of the live leases' footprints,
// and no load is negative. It returns the first violation (nil when the
// books balance) so property tests can assert it holds after every step and
// the negative-control test can assert it catches deliberate drift.
func conservationError(s *Solver) error {
	g := s.Network().Graph()
	wantLink := make([]float64, g.NumEdges())
	wantVM := make([]float64, g.NumNodes())
	for _, l := range s.Leases() {
		for _, e := range l.Edges {
			wantLink[e] += l.Demand
		}
		for _, v := range l.VMs {
			wantVM[v]++
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		got := s.LinkLoad(EdgeID(e))
		if got < 0 {
			return fmt.Errorf("link %d: negative load %v", e, got)
		}
		if math.Abs(got-wantLink[e]) > 1e-6 {
			return fmt.Errorf("link %d: load %v, live leases sum to %v", e, got, wantLink[e])
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		got := s.VMLoad(NodeID(v))
		if got < 0 {
			return fmt.Errorf("vm %d: negative load %v", v, got)
		}
		if math.Abs(got-wantVM[v]) > 1e-6 {
			return fmt.Errorf("vm %d: load %v, live leases sum to %v", v, got, wantVM[v])
		}
	}
	return nil
}

// checkConservation fails the test on the first conservation violation.
func checkConservation(t *testing.T, s *Solver) {
	t.Helper()
	if err := conservationError(s); err != nil {
		t.Fatalf("load conservation violated: %v", err)
	}
}

func TestCapacitatedLeaseLifecycle(t *testing.T) {
	net, s, d := buildLine(t)
	solver := NewSolver(net, WithCapacity(10, 3))
	ctx := context.Background()
	req := Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}

	f, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := f.Lease()
	if !ok || id == 0 {
		t.Fatal("capacitated embed returned no lease")
	}
	if len(solver.Leases()) != 1 {
		t.Fatalf("Leases() = %d entries, want 1", len(solver.Leases()))
	}
	// The line route s-v1-v2-d loads all three links and both VMs.
	for e := 0; e < 3; e++ {
		if solver.LinkLoad(EdgeID(e)) != 1 {
			t.Fatalf("link %d load = %v, want 1", e, solver.LinkLoad(EdgeID(e)))
		}
	}
	if solver.Accumulated() != 1 {
		t.Fatalf("Accumulated = %v, want 1", solver.Accumulated())
	}
	checkConservation(t, solver)

	if err := solver.Leave(id); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	for e := 0; e < 3; e++ {
		if solver.LinkLoad(EdgeID(e)) != 0 {
			t.Fatalf("link %d load = %v after Leave, want 0", e, solver.LinkLoad(EdgeID(e)))
		}
	}
	if _, ok := f.Lease(); ok {
		t.Fatal("forest still reports a lease after Leave")
	}
	if err := solver.Leave(id); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("second Leave: err = %v, want ErrUnknownLease", err)
	}
	// Revenue is monotone: the departure did not refund it.
	if solver.Accumulated() != 1 {
		t.Fatalf("Accumulated = %v after Leave, want 1", solver.Accumulated())
	}
	checkConservation(t, solver)
}

func TestUncapacitatedSessionLifecycleErrors(t *testing.T) {
	net, s, d := buildLine(t)
	solver := NewSolver(net)
	f, err := solver.Embed(context.Background(), Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Lease(); ok {
		t.Fatal("uncapacitated embed has a lease")
	}
	if err := solver.Leave(1); !errors.Is(err, ErrNotCapacitated) {
		t.Fatalf("Leave: err = %v, want ErrNotCapacitated", err)
	}
	if _, err := solver.AdvanceTime(1); !errors.Is(err, ErrNotCapacitated) {
		t.Fatalf("AdvanceTime: err = %v, want ErrNotCapacitated", err)
	}
}

// TestCapacityExceededTyped drives the authoritative reserve-time check: a
// chain walk that backtracks crosses the v1-v2 link twice, so with
// linkCap = 1.5 the solve succeeds (each single crossing fits, nothing is
// masked) but the aggregated footprint does not — the embed must fail with
// the typed ErrCapacityExceeded and leave no state behind.
func TestCapacityExceededTyped(t *testing.T) {
	b := NewNetworkBuilder()
	s := b.AddSwitch("s")
	v1 := b.AddVM("v1", 1)
	v2 := b.AddVM("v2", 1)
	d := b.AddSwitch("d")
	b.Link(s, v1, 1)
	b.Link(v1, v2, 1) // crossed twice: out to v2's VNF and back toward d
	b.Link(v1, d, 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolver(net, WithCapacity(1.5, 4))
	_, err = solver.Embed(context.Background(), Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2})
	if !errors.Is(err, ErrCapacityExceeded) {
		t.Fatalf("err = %v, want ErrCapacityExceeded", err)
	}
	if len(solver.Leases()) != 0 || solver.Accumulated() != 0 {
		t.Fatal("rejected embed left lease state behind")
	}
	checkConservation(t, solver)
}

// TestSaturationMasksRoutes pins the enforcement path through the oracle's
// cost view: saturating the cheap VM must push the next embed onto the
// spare, and the spare's exhaustion must leave the request unembeddable.
func TestSaturationMasksRoutes(t *testing.T) {
	net, s, v1, v2, _, d2, _ := buildSurvivable(t)
	solver := NewSolver(net, WithCapacity(100, 1)) // one forest per VM
	ctx := context.Background()
	req := Request{Sources: []NodeID{s}, Destinations: []NodeID{d2}, ChainLength: 1}

	f1, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := f1.UsedVMs(); len(got) != 1 || got[0] != v1 {
		t.Fatalf("first embed used %v, want cheap VM %d", got, v1)
	}
	if !net.Graph().NodeMasked(v1) {
		t.Fatal("saturated VM not masked")
	}

	f2, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.UsedVMs(); len(got) != 1 || got[0] != v2 {
		t.Fatalf("second embed used %v, want spare VM %d", got, v2)
	}

	// Both VMs full: the network is exhausted for this request.
	if _, err := solver.Embed(ctx, req); err == nil {
		t.Fatal("third embed succeeded on an exhausted network")
	}

	// A departure re-opens the cheap VM.
	id1, _ := f1.Lease()
	if err := solver.Leave(id1); err != nil {
		t.Fatal(err)
	}
	if net.Graph().NodeMasked(v1) {
		t.Fatal("VM still masked after its only tenant left")
	}
	f3, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatalf("embed after departure: %v", err)
	}
	if got := f3.UsedVMs(); len(got) != 1 || got[0] != v1 {
		t.Fatalf("post-departure embed used %v, want re-opened VM %d", got, v1)
	}
	checkConservation(t, solver)
}

func TestTTLExpiryAdvanceTime(t *testing.T) {
	net, s, d := buildLine(t)
	solver := NewSolver(net, WithCapacity(10, 5))
	ctx := context.Background()

	mk := func(ttl int64) *Forest {
		t.Helper()
		f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2, TTL: ttl})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fShort := mk(2)
	fLong := mk(5)
	fForever := mk(0) // no TTL: never expires on its own
	checkConservation(t, solver)

	expired, err := solver.AdvanceTime(1)
	if err != nil || len(expired) != 0 {
		t.Fatalf("AdvanceTime(1): %v, %v", expired, err)
	}
	expired, err = solver.AdvanceTime(2)
	if err != nil {
		t.Fatal(err)
	}
	idShort, _ := fShort.Lease()
	if idShort != 0 || len(expired) != 1 {
		t.Fatalf("short lease not expired at t=2: expired=%v", expired)
	}
	checkConservation(t, solver)

	// The clock is monotone: moving backwards expires nothing more.
	if expired, _ := solver.AdvanceTime(1); len(expired) != 0 {
		t.Fatal("time moved backwards")
	}
	if solver.Now() != 2 {
		t.Fatalf("Now = %d, want 2", solver.Now())
	}

	expired, _ = solver.AdvanceTime(100)
	if len(expired) != 1 {
		t.Fatalf("expired at t=100: %v, want just the long lease", expired)
	}
	if _, ok := fLong.Lease(); ok {
		t.Fatal("long lease still live at t=100")
	}
	if _, ok := fForever.Lease(); !ok {
		t.Fatal("TTL-less lease expired")
	}
	checkConservation(t, solver)
}

func TestAdaptiveAdmission(t *testing.T) {
	net, s, d := buildLine(t)
	solver := NewSolver(net,
		WithCapacity(10, 10),
		WithAdaptiveAdmission(16, 0.01))
	ctx := context.Background()
	req := Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}

	// Empty network: every resource prices at 16^0 - 1 = 0, admitted.
	f1, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatalf("embed on empty network: %v", err)
	}
	// Utilization 0.1 prices each link at 16^0.1 - 1 ≈ 0.32 > budget.
	if _, err := solver.Embed(ctx, req); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("err = %v, want ErrAdmissionRejected at nonzero utilization", err)
	}
	// The departure empties the network: admitted again — the threshold
	// adapts to load where a constant would keep rejecting.
	id, _ := f1.Lease()
	if err := solver.Leave(id); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Embed(ctx, req); err != nil {
		t.Fatalf("embed after departure: %v", err)
	}
	checkConservation(t, solver)
}

// TestMidRepairDepartureReleasesOnce is the failure×departure interaction
// guard: a forest departing while its lease is suspended for repair must
// release its load exactly once — the suspension already took it off the
// trackers, Leave must not subtract it again, and the deferred resume must
// not re-apply a dead lease.
func TestMidRepairDepartureReleasesOnce(t *testing.T) {
	net, s, _, _, d1, d2, cheap := buildSurvivable(t)
	solver := NewSolver(net, WithCapacity(100, 10), WithRecovery())
	ctx := context.Background()
	f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d1, d2}, ChainLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := f.Lease()
	solver.FailLink(cheap[1])

	// Deterministic interleaving of what RepairAll does around a concurrent
	// Leave: suspend (repair begins) → Leave (service departs mid-repair) →
	// resume (repair ends).
	suspended, err := solver.suspendLease(f)
	if !suspended || err != nil {
		t.Fatalf("suspendLease = %v, %v", suspended, err)
	}
	if err := solver.Leave(id); err != nil {
		t.Fatalf("Leave mid-repair: %v", err)
	}
	solver.resumeLease(f) // must be a no-op on the ended lease

	g := net.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		if load := solver.LinkLoad(EdgeID(e)); load != 0 {
			t.Fatalf("link %d load = %v after mid-repair departure, want 0", e, load)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if load := solver.VMLoad(NodeID(v)); load != 0 {
			t.Fatalf("vm %d load = %v after mid-repair departure, want 0", v, load)
		}
	}
	if len(solver.Leases()) != 0 {
		t.Fatal("lease survived mid-repair departure")
	}
	checkConservation(t, solver)

	// A second suspend/resume cycle on the departed forest stays a no-op.
	if suspended, _ := solver.suspendLease(f); suspended {
		t.Fatal("suspend succeeded on an ended lease")
	}
}

// TestRepairResumesLease runs a real RepairAll on a capacitated session:
// the repaired forest's lease must resume over the post-repair shape, and
// conservation must hold for the detoured footprint.
func TestRepairResumesLease(t *testing.T) {
	net, s, _, _, d1, d2, cheap := buildSurvivable(t)
	solver := NewSolver(net, WithCapacity(100, 10), WithRecovery())
	ctx := context.Background()
	f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d1, d2}, ChainLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	solver.FailLink(cheap[1])
	if _, err := solver.RepairAll(ctx); err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if _, ok := f.Lease(); !ok {
		t.Fatal("lease lost across repair")
	}
	checkConservation(t, solver)

	id, _ := f.Lease()
	if err := solver.Leave(id); err != nil {
		t.Fatalf("Leave after repair: %v", err)
	}
	g := net.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		if load := solver.LinkLoad(EdgeID(e)); load != 0 {
			t.Fatalf("link %d load = %v after departure, want 0", e, load)
		}
	}
	checkConservation(t, solver)
}
