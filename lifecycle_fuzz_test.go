package sof

import (
	"context"
	"testing"
)

// FuzzLifecycleSchedule decodes a byte stream into an arrival / departure /
// clock-advance / fail / restore / repair schedule and replays it on a
// capacitated recovery session. Whatever schedule the fuzzer invents, the
// session must not panic, no tracker may go negative, Accumulated() must be
// monotone, and load conservation must hold at every step.
func FuzzLifecycleSchedule(f *testing.F) {
	// Seed corpus: an idle run, a dense arrival burst, arrivals with
	// departures and expiries, and a fail/repair-heavy mix.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 0, 3})
	f.Add([]byte{0, 4, 1, 0, 2, 9, 0, 0, 1, 1, 2, 200})
	f.Add([]byte{0, 2, 3, 5, 5, 0, 3, 5, 4, 0, 5, 0, 0, 1, 3, 9, 5, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		net, s, _, _, d1, d2, _ := buildSurvivable(t)
		solver := NewSolver(net, WithCapacity(4, 2), WithRecovery())
		ctx := context.Background()
		g := net.Graph()

		var clock int64
		lastAcc := 0.0
		step := func(op, arg byte) {
			switch op % 6 {
			case 0: // arrival: TTL from the argument (0 = until Leave)
				dests := []NodeID{d1}
				if arg%2 == 1 {
					dests = []NodeID{d1, d2}
				}
				_, _ = solver.Embed(ctx, Request{
					Sources:      []NodeID{s},
					Destinations: dests,
					ChainLength:  1,
					TTL:          int64(arg % 8),
				})
			case 1: // departure of the arg-th live lease
				if leases := solver.Leases(); len(leases) > 0 {
					_ = solver.Leave(leases[int(arg)%len(leases)].ID)
				}
			case 2: // clock advance
				clock += int64(arg%4) + 1
				if _, err := solver.AdvanceTime(clock); err != nil {
					t.Fatalf("AdvanceTime: %v", err)
				}
			case 3: // fail an element
				if arg%2 == 0 {
					solver.FailLink(EdgeID(int(arg/2) % g.NumEdges()))
				} else {
					solver.FailVM(NodeID(int(arg/2) % g.NumNodes()))
				}
			case 4: // restore everything
				solver.RestoreAllFailures()
			default: // repair sweep (errors allowed: losses are surfaced)
				_, _ = solver.RepairAll(ctx)
			}
		}

		for i := 0; i+1 < len(data) && i < 128; i += 2 {
			step(data[i], data[i+1])
			if err := conservationError(solver); err != nil {
				t.Fatalf("op %d (byte %d): %v", i/2, data[i], err)
			}
			if acc := solver.Accumulated(); acc < lastAcc {
				t.Fatalf("op %d: Accumulated went backwards (%v -> %v)", i/2, lastAcc, acc)
			} else {
				lastAcc = acc
			}
		}
	})
}
