package sof

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"sof/internal/topology"
)

// lifecycleHarness drives a capacitated recovery session with a seeded
// random schedule of embeds, departures, clock advances, failures,
// restores, and repair sweeps — the full lifecycle interleaving space the
// conservation invariant must survive.
type lifecycleHarness struct {
	t        *testing.T
	rng      *rand.Rand
	net      *topology.Network
	solver   *Solver
	clock    int64
	lastAcc  float64
	accepted int
}

func newLifecycleHarness(t *testing.T, seed int64) *lifecycleHarness {
	t.Helper()
	net := topology.SoftLayer(topology.Config{NumVMs: 8, Seed: seed})
	solver := NewSolver(FromGraph(net.G),
		WithCapacity(6, 3),
		WithRecovery(),
		WithParallelism(1))
	return &lifecycleHarness{
		t:      t,
		rng:    rand.New(rand.NewSource(seed)),
		net:    net,
		solver: solver,
	}
}

// step applies one random lifecycle operation and returns its label.
func (h *lifecycleHarness) step(ctx context.Context) string {
	g := h.net.G
	switch op := h.rng.Intn(10); {
	case op < 4: // embed, possibly with TTL
		k := 1 + h.rng.Intn(2)
		nodes := h.net.RandomNodes(h.rng, k+1+h.rng.Intn(2))
		req := Request{
			Sources:      nodes[:1],
			Destinations: nodes[1:],
			ChainLength:  1 + h.rng.Intn(2),
			TTL:          int64(h.rng.Intn(8)), // 0 = stays until Leave
		}
		if _, err := h.solver.Embed(ctx, req); err == nil {
			h.accepted++
		}
		return "embed"
	case op < 6: // depart a random live lease
		if leases := h.solver.Leases(); len(leases) > 0 {
			id := leases[h.rng.Intn(len(leases))].ID
			if err := h.solver.Leave(id); err != nil {
				h.t.Fatalf("Leave(%d): %v", id, err)
			}
		}
		return "leave"
	case op < 7: // advance the virtual clock (expiring TTLs)
		h.clock += int64(1 + h.rng.Intn(3))
		if _, err := h.solver.AdvanceTime(h.clock); err != nil {
			h.t.Fatalf("AdvanceTime(%d): %v", h.clock, err)
		}
		return "advance"
	case op < 8: // fail a random element
		if h.rng.Intn(2) == 0 {
			h.solver.FailLink(EdgeID(h.rng.Intn(g.NumEdges())))
		} else {
			h.solver.FailVM(h.net.VMs[h.rng.Intn(len(h.net.VMs))])
		}
		return "fail"
	case op < 9: // restore everything failed so far
		h.solver.RestoreAllFailures()
		return "restore"
	default: // repair sweep
		if _, err := h.solver.RepairAll(ctx); err != nil && !errors.Is(err, ErrUnrecoverable) {
			h.t.Fatalf("RepairAll: %v", err)
		}
		return "repair"
	}
}

// verify asserts the invariants that must hold after every step.
func (h *lifecycleHarness) verify(label string) {
	h.t.Helper()
	if err := conservationError(h.solver); err != nil {
		h.t.Fatalf("after %s: %v", label, err)
	}
	if acc := h.solver.Accumulated(); acc < h.lastAcc {
		h.t.Fatalf("after %s: Accumulated went backwards (%v -> %v)", label, h.lastAcc, acc)
	} else {
		h.lastAcc = acc
	}
}

// TestLoadConservationProperty is the PR's anchor property: after ANY
// interleaving of accepted embeds, departures, TTL expiries, failures, and
// repairs, every tracker's load equals the sum of the live leases'
// demands. Seeded schedules keep failures reproducible; run it under
// -race together with TestConcurrentLifecycleRace for the concurrent
// interleavings.
func TestLoadConservationProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13}
	steps := 120
	if testing.Short() {
		seeds = seeds[:2]
		steps = 60
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			h := newLifecycleHarness(t, seed)
			ctx := context.Background()
			for i := 0; i < steps; i++ {
				label := h.step(ctx)
				h.verify(label)
			}
			if h.accepted == 0 {
				t.Fatal("schedule accepted no embeds; the property was vacuous")
			}
			// Drain: depart everything, expire everything — the books must
			// return to exactly zero.
			for _, l := range h.solver.Leases() {
				if err := h.solver.Leave(l.ID); err != nil {
					t.Fatalf("drain Leave(%d): %v", l.ID, err)
				}
			}
			if _, err := h.solver.AdvanceTime(h.clock + 1000); err != nil {
				t.Fatal(err)
			}
			h.verify("drain")
			g := h.net.G
			for e := 0; e < g.NumEdges(); e++ {
				if load := h.solver.LinkLoad(EdgeID(e)); load != 0 {
					t.Fatalf("link %d: residual load %v after full drain", e, load)
				}
			}
			for v := 0; v < g.NumNodes(); v++ {
				if load := h.solver.VMLoad(NodeID(v)); load != 0 {
					t.Fatalf("vm %d: residual load %v after full drain", v, load)
				}
			}
		})
	}
}

// TestConservationCheckerDetectsDrift is the mutation check on the
// property: corrupting the link tracker the way a silently-clamping Remove
// would (load left behind that no live lease explains) must trip the
// checker. If this test fails, TestLoadConservationProperty is decorative.
func TestConservationCheckerDetectsDrift(t *testing.T) {
	net, s, d := buildLine(t)
	solver := NewSolver(net, WithCapacity(10, 5))
	if _, err := solver.Embed(context.Background(), Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}); err != nil {
		t.Fatal(err)
	}
	if err := conservationError(solver); err != nil {
		t.Fatalf("clean session reported drift: %v", err)
	}
	// Simulate a Remove that under-released: phantom load on link 0.
	solver.capacity.links.Add(0, 0.5)
	if err := conservationError(solver); err == nil {
		t.Fatal("checker missed injected tracker drift")
	}
	solver.capacity.links.SetLoad(0, solver.capacity.links.Load(0)-0.5)
	if err := conservationError(solver); err != nil {
		t.Fatalf("drift repair not detected as clean: %v", err)
	}
}

// TestConcurrentLifecycleRace interleaves embeds, departures, and clock
// advances from concurrent goroutines with a failure/repair sweeper (one
// sweeper — RepairAll's documented contract is one sweep at a time; embeds
// and departures may race it freely, which is exactly the mid-repair
// departure path). Run under -race; after quiescence the conservation
// invariant must hold and a full drain must zero the books.
func TestConcurrentLifecycleRace(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 8, Seed: 99})
	solver := NewSolver(FromGraph(net.G), WithCapacity(8, 4), WithRecovery())
	ctx := context.Background()

	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					nodes := graphSample(rng, net, 3)
					_, _ = solver.Embed(ctx, Request{
						Sources:      nodes[:1],
						Destinations: nodes[1:],
						ChainLength:  1,
						TTL:          int64(rng.Intn(5)),
					})
				case 2:
					if leases := solver.Leases(); len(leases) > 0 {
						_ = solver.Leave(leases[rng.Intn(len(leases))].ID)
					}
				default:
					_, _ = solver.AdvanceTime(solver.Now() + 1)
				}
			}
		}(int64(w + 1))
	}
	// The single sweeper: fail, repair, restore, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < perWorker; i++ {
			solver.FailLink(EdgeID(rng.Intn(net.G.NumEdges())))
			_, _ = solver.RepairAll(ctx)
			solver.RestoreAllFailures()
		}
	}()
	wg.Wait()

	checkConservation(t, solver)
	for _, l := range solver.Leases() {
		if err := solver.Leave(l.ID); err != nil {
			t.Fatalf("drain Leave(%d): %v", l.ID, err)
		}
	}
	for e := 0; e < net.G.NumEdges(); e++ {
		if load := solver.LinkLoad(EdgeID(e)); load != 0 {
			t.Fatalf("link %d: residual load %v after drain", e, load)
		}
	}
}

// graphSample draws distinct access nodes via the topology helper.
func graphSample(rng *rand.Rand, net *topology.Network, n int) []NodeID {
	return net.RandomNodes(rng, n)
}
