// Package sof is the public API of the Service Overlay Forest library, a
// reproduction of "Service Overlay Forest Embedding for Software-Defined
// Cloud Networks" (Kuo et al., ICDCS 2017).
//
// A service overlay forest connects every destination of a multicast
// service to a source through an ordered chain of virtual network
// functions, using multiple trees when that is cheaper. The primary entry
// point is the Solver, a long-lived session over one network:
//
//	b := sof.NewNetworkBuilder()
//	s := b.AddSwitch("src")
//	v1 := b.AddVM("vm1", 2)
//	v2 := b.AddVM("vm2", 3)
//	d := b.AddSwitch("dst")
//	b.Link(s, v1, 1); b.Link(v1, v2, 1); b.Link(v2, d, 1)
//	net, _ := b.Build()
//	solver := sof.NewSolver(net)
//	forest, _ := solver.Embed(ctx, sof.Request{
//		Sources: []sof.NodeID{s}, Destinations: []sof.NodeID{d}, ChainLength: 2,
//	})
//	fmt.Println(forest.TotalCost())
//
// The Solver owns a shortest-path cache shared by every request of the
// session, keyed by the network's cost epoch: SetLinkCost/SetVMCost advance
// the epoch only when a cost actually changes, so request streams under
// unchanged costs (the online scenario of Section VIII-C) are answered from
// warm state instead of re-deriving all candidate chains per request.
// Beyond single embeds the session offers EmbedBatch (many requests, one
// fan-out) and EmbedStream (online arrivals on a channel).
//
// Algorithms: SOFDA (the paper's 3ρST-approximation), SOFDASS (single
// source), the baselines eNEMP/eST/ST, and Exact (optimal, small instances
// only). Dynamic operations (join/leave/VNF changes) are exposed on the
// Forest type and reuse the session cache of the Solver that embedded it.
//
// # Compatibility
//
// Network.Embed and Network.EmbedContext remain as thin wrappers that open
// a one-shot Solver per call — existing callers keep working, but they pay
// the full candidate-chain derivation on every request and should migrate
// to a shared Solver.
package sof

import (
	"context"

	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
)

// NodeID identifies a node in a Network.
type NodeID = graph.NodeID

// EdgeID identifies a link in a Network.
type EdgeID = graph.EdgeID

// Algorithm selects an embedding algorithm.
type Algorithm string

// Available algorithms.
const (
	AlgorithmSOFDA   Algorithm = "SOFDA"
	AlgorithmSOFDASS Algorithm = "SOFDA-SS"
	AlgorithmENEMP   Algorithm = "eNEMP"
	AlgorithmEST     Algorithm = "eST"
	AlgorithmST      Algorithm = "ST"
	AlgorithmExact   Algorithm = "Exact"
)

// Request is an embedding request: all destinations demand the same
// ordered chain of ChainLength VNFs, served from any subset of Sources.
type Request struct {
	Sources      []NodeID
	Destinations []NodeID
	ChainLength  int
	// TTL is the service's lifetime in virtual time units on a capacitated
	// session: the lease expires TTL units after the session clock at accept
	// time and AdvanceTime releases its resources. 0 (or any non-positive
	// value) means the service stays until an explicit Leave. Ignored by
	// sessions built without WithCapacity.
	TTL int64
}

// NetworkBuilder assembles a Network.
type NetworkBuilder struct {
	g   *graph.Graph
	err error
}

// NewNetworkBuilder returns an empty builder.
func NewNetworkBuilder() *NetworkBuilder {
	return &NetworkBuilder{g: graph.New(16, 32)}
}

// AddSwitch adds a forwarding-only node.
func (b *NetworkBuilder) AddSwitch(name string) NodeID { return b.g.AddSwitch(name) }

// AddVM adds a node able to host one VNF at the given setup cost.
func (b *NetworkBuilder) AddVM(name string, setupCost float64) NodeID {
	return b.g.AddVM(name, setupCost)
}

// Link connects two nodes with the given connection cost.
func (b *NetworkBuilder) Link(u, v NodeID, cost float64) EdgeID {
	id, err := b.g.AddEdge(u, v, cost)
	if err != nil && b.err == nil {
		b.err = err
	}
	return id
}

// Build finalizes the network. It returns an error if any Link call was
// invalid or the graph fails validation.
func (b *NetworkBuilder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return &Network{g: b.g}, nil
}

// Network is an immutable-topology network (costs may be updated).
type Network struct {
	g *graph.Graph
}

// FromGraph wraps an existing internal graph (used by the example
// programs and the experiment harness).
func FromGraph(g *graph.Graph) *Network { return &Network{g: g} }

// Graph exposes the underlying graph for advanced use.
func (n *Network) Graph() *graph.Graph { return n.g }

// SetLinkCost updates a link's connection cost. If the value actually
// changes, the network's cost epoch advances and every Solver session's
// cached shortest-path state over this network becomes stale — it is
// refreshed lazily, one tree at a time, as the next embeds touch it.
// Setting a cost to its current value is a no-op and keeps caches warm.
func (n *Network) SetLinkCost(e EdgeID, cost float64) { n.g.SetEdgeCost(e, cost) }

// SetVMCost updates a VM's setup cost, with the same epoch semantics as
// SetLinkCost: only an actual change invalidates (lazily) the session
// caches.
func (n *Network) SetVMCost(v NodeID, cost float64) { n.g.SetNodeCost(v, cost) }

// VMs lists the VM nodes.
func (n *Network) VMs() []NodeID { return n.g.VMs() }

// EmbedOptions tune how an embedding is computed without changing the
// problem it solves. They are the one-shot counterpart of the Solver
// construction options.
type EmbedOptions struct {
	// Parallelism bounds the worker pool used for candidate-chain
	// generation: GOMAXPROCS when <= 0 (or when EmbedOptions is nil),
	// sequential when 1. Only SOFDA and SOFDA-SS generate candidates
	// through the pool; the baselines and the exact solver ignore it.
	Parallelism int
	// VMs restricts the candidate VM set; all VMs of the network when nil.
	VMs []NodeID
}

// Embed computes a service overlay forest for the request.
//
// Compatibility wrapper: it opens a one-shot Solver per call, so nothing
// is cached across requests. Callers embedding more than once on the same
// network should hold a Solver instead.
func (n *Network) Embed(req Request, algo Algorithm) (*Forest, error) {
	return n.EmbedContext(context.Background(), req, algo, nil)
}

// EmbedContext computes a service overlay forest with cancellation and
// execution options: the embedding aborts with ctx.Err() once ctx is done,
// and for SOFDA and SOFDA-SS candidate-chain generation fans out across
// opts.Parallelism workers. A nil opts uses the defaults. AlgorithmExact
// observes cancellation at every branch-and-bound node expansion.
//
// Compatibility wrapper: like Embed, it opens a one-shot Solver per call.
func (n *Network) EmbedContext(ctx context.Context, req Request, algo Algorithm, opts *EmbedOptions) (*Forest, error) {
	sopts := []Option{WithAlgorithm(algo)}
	if opts != nil {
		sopts = append(sopts, WithParallelism(opts.Parallelism))
		if opts.VMs != nil {
			// Not WithVMs: the wrapper must preserve EmbedOptions semantics
			// exactly, where a non-nil empty slice means "no candidate VMs"
			// (and fails the embed) rather than "no restriction".
			vms := opts.VMs
			sopts = append(sopts, func(s *Solver) { s.vms = vms })
		}
	}
	return NewSolver(n, sopts...).Embed(ctx, req)
}

// Forest is an embedded service overlay forest with its dynamic
// reconfiguration operations (Section VII-C of the paper). A forest keeps
// the Solver session state it was embedded under: the shared shortest-path
// cache (dynamic operations run warm when costs have not changed since the
// embed) and the candidate-VM restriction (Join, InsertVNF, and MigrateVM
// never graft onto VMs the original embed was forbidden to use).
type Forest struct {
	f      *core.Forest
	net    *Network
	req    core.Request
	oracle *chain.Oracle
	// vms is the embed-time candidate restriction; nil means every VM of
	// the network is eligible.
	vms []NodeID
	// owner is the session that embedded the forest; recovery sweeps and
	// Release go through it.
	owner *Solver
	// lease is the forest's resource reservation on a capacitated session
	// (0 = none); see Lease.
	lease LeaseID
}

// candidateVMs returns the VM set dynamic operations may draw from.
func (f *Forest) candidateVMs() []NodeID {
	if f.vms != nil {
		return f.vms
	}
	return f.net.g.VMs()
}

// TotalCost returns setup + connection cost.
func (f *Forest) TotalCost() float64 { return f.f.TotalCost() }

// Cost returns the setup and connection costs separately.
func (f *Forest) Cost() (setup, connection float64) { return f.f.Cost() }

// Trees returns the number of service trees in the forest.
func (f *Forest) Trees() int { return f.f.NumTrees() }

// UsedVMs returns the VMs running a VNF.
func (f *Forest) UsedVMs() []NodeID { return f.f.UsedVMs() }

// Destinations returns the currently served destinations.
func (f *Forest) Destinations() []NodeID { return f.f.Destinations() }

// Validate re-checks feasibility for the forest's current destinations.
func (f *Forest) Validate() error {
	return f.f.Validate(f.req.Sources, f.f.Destinations())
}

// Join grafts a new destination onto the forest at minimum extension cost,
// returning the cost increase. Only VMs the original embed was allowed to
// use are candidates for newly installed VNFs. The session cache is reused
// as-is: if no cost changed since the last query, the extension walks are
// computed from warm shortest-path trees (cost changes invalidate them
// through the epoch, no explicit flush needed).
func (f *Forest) Join(d NodeID) (float64, error) {
	return f.f.Join(f.oracle, f.candidateVMs(), d)
}

// Leave removes a destination, pruning the branch it exclusively used, and
// returns the (non-positive) cost change.
func (f *Forest) Leave(d NodeID) (float64, error) { return f.f.Leave(d) }

// InsertVNF adds a VNF at 1-based chain position j, drawing the new VM
// from the embed-time candidate set.
func (f *Forest) InsertVNF(j int) error {
	return f.f.InsertVNF(f.oracle, f.candidateVMs(), j)
}

// RemoveVNF deletes the VNF at 1-based chain position j.
func (f *Forest) RemoveVNF(j int) error { return f.f.RemoveVNF(j) }

// RerouteCongestedLink re-routes every forest segment using link e over
// the current cheapest paths; update costs first (the cost change itself
// invalidates the session's stale trees via the epoch). Segments that
// cannot be moved (e.g. severed by failures) stay on e and their causes
// come back joined in the error, alongside the count that did move — a
// partial reroute is progress, not an abort.
func (f *Forest) RerouteCongestedLink(e EdgeID) (int, error) {
	return f.f.RerouteCongestedEdge(f.oracle, e)
}

// MigrateVM moves the VNF off an overloaded VM to the best replacement
// from the embed-time candidate set; update costs first.
func (f *Forest) MigrateVM(v NodeID) error {
	return f.f.MigrateOverloadedVM(f.oracle, f.candidateVMs(), v)
}

// Internal returns the underlying core forest for advanced inspection.
func (f *Forest) Internal() *core.Forest { return f.f }

// Request returns the embedding request behind the forest, with the
// destination list as it stands now (joins, leaves, and repairs move it
// away from the original). Useful for re-embedding the same service from
// scratch, e.g. to compare against a repaired forest.
func (f *Forest) Request() Request {
	return Request{
		Sources:      append([]NodeID(nil), f.req.Sources...),
		Destinations: f.f.Destinations(),
		ChainLength:  f.req.ChainLen,
	}
}
