// Package sof is the public API of the Service Overlay Forest library, a
// reproduction of "Service Overlay Forest Embedding for Software-Defined
// Cloud Networks" (Kuo et al., ICDCS 2017).
//
// A service overlay forest connects every destination of a multicast
// service to a source through an ordered chain of virtual network
// functions, using multiple trees when that is cheaper. The package wraps
// the internal solvers behind a small surface:
//
//	b := sof.NewNetworkBuilder()
//	s := b.AddSwitch("src")
//	v1 := b.AddVM("vm1", 2)
//	v2 := b.AddVM("vm2", 3)
//	d := b.AddSwitch("dst")
//	b.Link(s, v1, 1); b.Link(v1, v2, 1); b.Link(v2, d, 1)
//	net := b.Build()
//	forest, _ := net.Embed(sof.Request{
//		Sources: []sof.NodeID{s}, Destinations: []sof.NodeID{d}, ChainLength: 2,
//	}, sof.AlgorithmSOFDA)
//	fmt.Println(forest.TotalCost())
//
// Algorithms: SOFDA (the paper's 3ρST-approximation), SOFDASS (single
// source), the baselines eNEMP/eST/ST, and Exact (optimal, small instances
// only). Dynamic operations (join/leave/VNF changes) are exposed on the
// Forest type.
package sof

import (
	"context"
	"errors"
	"fmt"

	"sof/internal/baseline"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/graph"
	"sof/internal/sofexact"
)

// NodeID identifies a node in a Network.
type NodeID = graph.NodeID

// EdgeID identifies a link in a Network.
type EdgeID = graph.EdgeID

// Algorithm selects an embedding algorithm.
type Algorithm string

// Available algorithms.
const (
	AlgorithmSOFDA   Algorithm = "SOFDA"
	AlgorithmSOFDASS Algorithm = "SOFDA-SS"
	AlgorithmENEMP   Algorithm = "eNEMP"
	AlgorithmEST     Algorithm = "eST"
	AlgorithmST      Algorithm = "ST"
	AlgorithmExact   Algorithm = "Exact"
)

// Request is an embedding request: all destinations demand the same
// ordered chain of ChainLength VNFs, served from any subset of Sources.
type Request struct {
	Sources      []NodeID
	Destinations []NodeID
	ChainLength  int
}

// NetworkBuilder assembles a Network.
type NetworkBuilder struct {
	g   *graph.Graph
	err error
}

// NewNetworkBuilder returns an empty builder.
func NewNetworkBuilder() *NetworkBuilder {
	return &NetworkBuilder{g: graph.New(16, 32)}
}

// AddSwitch adds a forwarding-only node.
func (b *NetworkBuilder) AddSwitch(name string) NodeID { return b.g.AddSwitch(name) }

// AddVM adds a node able to host one VNF at the given setup cost.
func (b *NetworkBuilder) AddVM(name string, setupCost float64) NodeID {
	return b.g.AddVM(name, setupCost)
}

// Link connects two nodes with the given connection cost.
func (b *NetworkBuilder) Link(u, v NodeID, cost float64) EdgeID {
	id, err := b.g.AddEdge(u, v, cost)
	if err != nil && b.err == nil {
		b.err = err
	}
	return id
}

// Build finalizes the network. It returns an error if any Link call was
// invalid or the graph fails validation.
func (b *NetworkBuilder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return &Network{g: b.g}, nil
}

// Network is an immutable-topology network (costs may be updated).
type Network struct {
	g *graph.Graph
}

// FromGraph wraps an existing internal graph (used by the example
// programs and the experiment harness).
func FromGraph(g *graph.Graph) *Network { return &Network{g: g} }

// Graph exposes the underlying graph for advanced use.
func (n *Network) Graph() *graph.Graph { return n.g }

// SetLinkCost updates a link's connection cost.
func (n *Network) SetLinkCost(e EdgeID, cost float64) { n.g.SetEdgeCost(e, cost) }

// SetVMCost updates a VM's setup cost.
func (n *Network) SetVMCost(v NodeID, cost float64) { n.g.SetNodeCost(v, cost) }

// VMs lists the VM nodes.
func (n *Network) VMs() []NodeID { return n.g.VMs() }

// EmbedOptions tune how an embedding is computed without changing the
// problem it solves.
type EmbedOptions struct {
	// Parallelism bounds the worker pool used for candidate-chain
	// generation: GOMAXPROCS when <= 0 (or when EmbedOptions is nil),
	// sequential when 1. Only SOFDA and SOFDA-SS generate candidates
	// through the pool; the baselines and the exact solver ignore it.
	Parallelism int
	// VMs restricts the candidate VM set; all VMs of the network when nil.
	VMs []NodeID
}

// Embed computes a service overlay forest for the request.
func (n *Network) Embed(req Request, algo Algorithm) (*Forest, error) {
	return n.EmbedContext(context.Background(), req, algo, nil)
}

// EmbedContext computes a service overlay forest with cancellation and
// execution options: the embedding aborts with ctx.Err() once ctx is done,
// and for SOFDA and SOFDA-SS candidate-chain generation fans out across
// opts.Parallelism workers. A nil opts uses the defaults. AlgorithmExact
// checks ctx only on entry: its branch-and-bound search does not observe
// cancellation mid-run.
func (n *Network) EmbedContext(ctx context.Context, req Request, algo Algorithm, opts *EmbedOptions) (*Forest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	creq := core.Request{Sources: req.Sources, Dests: req.Destinations, ChainLen: req.ChainLength}
	copts := &core.Options{}
	if opts != nil {
		copts.Parallelism = opts.Parallelism
		copts.VMs = opts.VMs
	}
	var (
		f   *core.Forest
		err error
	)
	switch algo {
	case AlgorithmSOFDA:
		f, err = core.SOFDACtx(ctx, n.g, creq, copts)
	case AlgorithmSOFDASS:
		if len(req.Sources) != 1 {
			return nil, errors.New("sof: SOFDA-SS requires exactly one source")
		}
		f, err = core.SOFDASSCtx(ctx, n.g, req.Sources[0], req.Destinations, req.ChainLength, copts)
	case AlgorithmENEMP:
		f, err = baseline.SolveCtx(ctx, n.g, creq, copts, baseline.KindENEMP)
	case AlgorithmEST:
		f, err = baseline.SolveCtx(ctx, n.g, creq, copts, baseline.KindEST)
	case AlgorithmST:
		f, err = baseline.SolveCtx(ctx, n.g, creq, copts, baseline.KindST)
	case AlgorithmExact:
		f, err = sofexact.Solve(n.g, creq, &sofexact.Options{VMs: copts.VMs})
	default:
		return nil, fmt.Errorf("sof: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	return &Forest{
		f:      f,
		net:    n,
		req:    creq,
		oracle: chain.NewOracle(n.g, chain.Options{}),
	}, nil
}

// Forest is an embedded service overlay forest with its dynamic
// reconfiguration operations (Section VII-C of the paper).
type Forest struct {
	f      *core.Forest
	net    *Network
	req    core.Request
	oracle *chain.Oracle
}

// TotalCost returns setup + connection cost.
func (f *Forest) TotalCost() float64 { return f.f.TotalCost() }

// Cost returns the setup and connection costs separately.
func (f *Forest) Cost() (setup, connection float64) { return f.f.Cost() }

// Trees returns the number of service trees in the forest.
func (f *Forest) Trees() int { return f.f.NumTrees() }

// UsedVMs returns the VMs running a VNF.
func (f *Forest) UsedVMs() []NodeID { return f.f.UsedVMs() }

// Destinations returns the currently served destinations.
func (f *Forest) Destinations() []NodeID { return f.f.Destinations() }

// Validate re-checks feasibility for the forest's current destinations.
func (f *Forest) Validate() error {
	return f.f.Validate(f.req.Sources, f.f.Destinations())
}

// Join grafts a new destination onto the forest at minimum extension cost,
// returning the cost increase.
func (f *Forest) Join(d NodeID) (float64, error) {
	f.oracle.InvalidateCache()
	return f.f.Join(f.oracle, f.net.g.VMs(), d)
}

// Leave removes a destination, pruning the branch it exclusively used, and
// returns the (non-positive) cost change.
func (f *Forest) Leave(d NodeID) (float64, error) { return f.f.Leave(d) }

// InsertVNF adds a VNF at 1-based chain position j.
func (f *Forest) InsertVNF(j int) error {
	f.oracle.InvalidateCache()
	return f.f.InsertVNF(f.oracle, f.net.g.VMs(), j)
}

// RemoveVNF deletes the VNF at 1-based chain position j.
func (f *Forest) RemoveVNF(j int) error { return f.f.RemoveVNF(j) }

// RerouteCongestedLink re-routes every forest segment using link e over
// the current cheapest paths; update costs first.
func (f *Forest) RerouteCongestedLink(e EdgeID) (int, error) {
	f.oracle.InvalidateCache()
	return f.f.RerouteCongestedEdge(f.oracle, e)
}

// MigrateVM moves the VNF off an overloaded VM to the best replacement;
// update costs first.
func (f *Forest) MigrateVM(v NodeID) error {
	f.oracle.InvalidateCache()
	return f.f.MigrateOverloadedVM(f.oracle, f.net.g.VMs(), v)
}

// Internal returns the underlying core forest for advanced inspection.
func (f *Forest) Internal() *core.Forest { return f.f }
