package sof

import (
	"context"
	"math"
	"runtime"
	"testing"
)

func buildLine(t *testing.T) (*Network, NodeID, NodeID) {
	t.Helper()
	b := NewNetworkBuilder()
	s := b.AddSwitch("s")
	v1 := b.AddVM("v1", 2)
	v2 := b.AddVM("v2", 3)
	d := b.AddSwitch("d")
	b.Link(s, v1, 1)
	b.Link(v1, v2, 1)
	b.Link(v2, d, 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, s, d
}

func TestPublicAPIQuickstart(t *testing.T) {
	net, s, d := buildLine(t)
	for _, algo := range []Algorithm{AlgorithmSOFDA, AlgorithmSOFDASS, AlgorithmENEMP, AlgorithmEST, AlgorithmST, AlgorithmExact} {
		f, err := net.Embed(Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		switch algo {
		case AlgorithmSOFDA, AlgorithmSOFDASS, AlgorithmExact:
			if math.Abs(f.TotalCost()-8) > 1e-9 {
				t.Errorf("%s cost = %v, want 8", algo, f.TotalCost())
			}
		default:
			// Baselines keep their source-rooted tree branch and may pay
			// more, but never less than the optimum.
			if f.TotalCost() < 8-1e-9 {
				t.Errorf("%s cost = %v, below the optimum 8", algo, f.TotalCost())
			}
		}
		if f.Trees() != 1 || len(f.UsedVMs()) != 2 {
			t.Errorf("%s: trees=%d vms=%d", algo, f.Trees(), len(f.UsedVMs()))
		}
	}
}

func TestPublicAPIEmbedContext(t *testing.T) {
	net, s, d := buildLine(t)
	req := Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}

	seq, err := net.Embed(req, AlgorithmSOFDA)
	if err != nil {
		t.Fatal(err)
	}
	par, err := net.EmbedContext(context.Background(), req, AlgorithmSOFDA,
		&EmbedOptions{Parallelism: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCost() != seq.TotalCost() {
		t.Errorf("parallel embed cost %v != sequential %v", par.TotalCost(), seq.TotalCost())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{AlgorithmSOFDA, AlgorithmSOFDASS, AlgorithmENEMP, AlgorithmEST, AlgorithmST, AlgorithmExact} {
		if _, err := net.EmbedContext(ctx, req, algo, nil); err == nil {
			t.Errorf("%s: cancelled context accepted", algo)
		}
	}
}

func TestPublicAPIErrors(t *testing.T) {
	net, s, d := buildLine(t)
	if _, err := net.Embed(Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := net.Embed(Request{Sources: []NodeID{s, d}, Destinations: []NodeID{d}, ChainLength: 1}, AlgorithmSOFDASS); err == nil {
		t.Error("SOFDA-SS with two sources accepted")
	}
	b := NewNetworkBuilder()
	a := b.AddSwitch("a")
	b.Link(a, a, 1)
	if _, err := b.Build(); err == nil {
		t.Error("self-loop accepted by builder")
	}
}

func TestPublicAPIDynamics(t *testing.T) {
	b := NewNetworkBuilder()
	s := b.AddSwitch("s")
	v1 := b.AddVM("v1", 1)
	v2 := b.AddVM("v2", 1)
	v3 := b.AddVM("v3", 1)
	mid := b.AddSwitch("mid")
	d1 := b.AddSwitch("d1")
	d2 := b.AddSwitch("d2")
	b.Link(s, v1, 1)
	b.Link(v1, v2, 1)
	b.Link(v2, mid, 1)
	b.Link(mid, d1, 1)
	b.Link(mid, d2, 1)
	b.Link(v1, v3, 1)
	b.Link(v3, mid, 2)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := net.Embed(Request{Sources: []NodeID{s}, Destinations: []NodeID{d1}, ChainLength: 2}, AlgorithmSOFDA)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := f.Join(d2)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Errorf("join delta = %v", delta)
	}
	if _, err := f.Leave(d1); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Destinations()); got != 1 {
		t.Fatalf("destinations = %d, want 1", got)
	}
}
